// Property-style parameterized sweeps over simulation seeds: for every
// seed, the whole CATS system must (a) converge its ring, (b) complete its
// operations, and (c) produce a linearizable history — the paper's §4
// guarantees as universally-quantified properties rather than single runs.

#include <gtest/gtest.h>

#include <random>

#include "cats/cats_simulator.hpp"
#include "cats/linearizability.hpp"
#include "sim/simulation.hpp"

namespace kompics::cats::test {
namespace {

using sim::LinkModel;
using sim::SimNetworkHub;
using sim::SimNetworkHubPtr;
using sim::Simulation;

class SimMain : public ComponentDefinition {
 public:
  SimMain(sim::SimulatorCore* core, SimNetworkHubPtr hub, CatsParams params) {
    simulator = create<CatsSimulator>(core, hub, params);
  }
  Component simulator;
};

struct SweepWorld {
  SweepWorld(std::uint64_t seed, LinkModel model) : simulation(Config{}, seed) {
    hub = std::make_shared<SimNetworkHub>(&simulation.core(), seed * 31 + 7, model);
    CatsParams params;
    params.op_timeout_ms = 800;
    main = simulation.bootstrap<SimMain>(&simulation.core(), hub, params);
    simulation.run_until(1);
    cats = &main.definition_as<SimMain>().simulator.definition_as<CatsSimulator>();
  }
  Simulation simulation;
  SimNetworkHubPtr hub;
  Component main;
  CatsSimulator* cats;
};

class SeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedSweep, RingConvergesForEverySeed) {
  SweepWorld r(GetParam(), LinkModel{1, 15, 0.0, false});
  std::mt19937_64 ids(GetParam());
  std::set<std::uint64_t> chosen;
  while (chosen.size() < 8) chosen.insert(ids() % 65536);
  for (auto id : chosen) {
    r.cats->join(id);
    r.simulation.run_until(r.simulation.now() + 200);
  }
  r.simulation.run_until(r.simulation.now() + 10000);
  EXPECT_EQ(r.cats->ready_count(), 8u) << "seed " << GetParam();

  // Ring order property: every node's first successor is the clockwise
  // next alive key.
  std::vector<std::uint64_t> sorted(chosen.begin(), chosen.end());
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    const auto& ring = r.cats->node(sorted[i]).ring.definition_as<CatsRing>();
    ASSERT_FALSE(ring.successors().empty());
    EXPECT_EQ(ring.successors()[0].key,
              CatsSimulator::node_ring_key(sorted[(i + 1) % sorted.size()]))
        << "seed " << GetParam() << " node " << sorted[i];
  }
}

TEST_P(SeedSweep, ConcurrentHistoryIsLinearizableForEverySeed) {
  // Jitter + light loss; concurrent mixed workload on two keys.
  SweepWorld r(GetParam(), LinkModel{1, 25, 0.01, false});
  for (std::uint64_t id : {5, 15, 25, 35, 45}) {
    r.cats->join(id);
    r.simulation.run_until(r.simulation.now() + 250);
  }
  r.simulation.run_until(r.simulation.now() + 9000);
  ASSERT_EQ(r.cats->ready_count(), 5u);

  std::mt19937_64 rng(GetParam() ^ 0xfeed);
  const std::vector<std::uint64_t> nodes{5, 15, 25, 35, 45};
  const std::vector<RingKey> keys{hash_to_ring("p"), hash_to_ring("q")};
  int vc = 0;
  for (int round = 0; round < 30; ++round) {
    for (int j = 0; j < 2; ++j) {
      const auto node = nodes[rng() % nodes.size()];
      const auto key = keys[rng() % keys.size()];
      if (rng() % 2 == 0) {
        r.cats->put(node, key, Value{static_cast<std::uint8_t>(++vc),
                                     static_cast<std::uint8_t>(vc >> 8)});
      } else {
        r.cats->get(node, key);
      }
    }
    r.simulation.run_until(r.simulation.now() + static_cast<DurationMs>(rng() % 150));
  }
  r.simulation.run_until(r.simulation.now() + 15000);

  std::size_t completed = 0;
  for (const auto& rec : r.cats->history()) completed += rec.responded >= 0 ? 1 : 0;
  EXPECT_EQ(completed, r.cats->history().size()) << "stable ring: everything completes";

  const auto lin = check_history(r.cats->history());
  EXPECT_TRUE(lin.linearizable) << "seed " << GetParam() << ": " << lin.explanation;
}

TEST_P(SeedSweep, HistoryLinearizableAcrossOneFailure) {
  SweepWorld r(GetParam(), LinkModel{1, 10, 0.0, false});
  for (std::uint64_t id : {10, 20, 30, 40, 50, 60}) {
    r.cats->join(id);
    r.simulation.run_until(r.simulation.now() + 250);
  }
  r.simulation.run_until(r.simulation.now() + 9000);

  std::mt19937_64 rng(GetParam() ^ 0xdead);
  const RingKey k = hash_to_ring("fk");
  int vc = 0;
  r.cats->put(10, k, Value{static_cast<std::uint8_t>(++vc)});
  r.simulation.run_until(r.simulation.now() + 2000);
  // Ops straddle one crash.
  for (int i = 0; i < 6; ++i) {
    const auto ids = r.cats->alive_ids();
    r.cats->put(ids[rng() % ids.size()], k, Value{static_cast<std::uint8_t>(++vc)});
    r.cats->get(ids[rng() % ids.size()], k);
    if (i == 2) {
      const auto victims = r.cats->alive_ids();
      r.cats->fail(victims[rng() % victims.size()]);
    }
    r.simulation.run_until(r.simulation.now() + 700);
  }
  r.simulation.run_until(r.simulation.now() + 25000);

  const auto lin = check_history(r.cats->history());
  EXPECT_TRUE(lin.linearizable) << "seed " << GetParam() << ": " << lin.explanation;
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace kompics::cats::test
