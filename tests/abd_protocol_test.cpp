// White-box tests of the ConsistentABD protocol machine: quorum counting,
// the read-impose write-back, replica tag ordering, retry semantics (same
// tag retransmission — the checker-found invariant), stale-attempt
// filtering, and the consistent-quorum plumbing (view-stamped phases, the
// replica view gate, per-replica ack dedup, nack-driven fast retry, and the
// find()-based read path that keeps the store from growing under read
// storms of absent keys). A scripted harness plays router + network + timer
// so every message is injected deterministically.

#include <gtest/gtest.h>

#include <deque>

#include "cats/abd.hpp"
#include "sim/sim_timer.hpp"
#include "sim/simulation.hpp"

namespace kompics::cats::test {
namespace {

using sim::SimTimer;
using sim::Simulation;

/// Plays the world around one ConsistentABD instance: answers (or ignores)
/// its lookups, records its network sends, and lets tests inject replies.
class Harness : public ComponentDefinition {
 public:
  Harness() {
    subscribe<LookupRequest>(router_, [this](const LookupRequest& req) {
      lookups.push_back(req);
      if (auto_answer_lookups) {
        trigger(make_event<LookupResponse>(req.id, req.key, group, view_version), router_);
      }
    });
    subscribe<AbdReadMsg>(network_, [this](const AbdReadMsg& m) { reads.push_back(m); });
    subscribe<AbdWriteMsg>(network_, [this](const AbdWriteMsg& m) { writes.push_back(m); });
    // Replica-side acknowledgements sent by the ABD (when WE inject
    // reads/writes at it as if we were a remote coordinator).
    subscribe<AbdReadAckMsg>(network_, [this](const AbdReadAckMsg& m) {
      replica_read_acks.push_back(m);
    });
    subscribe<AbdWriteAckMsg>(network_, [this](const AbdWriteAckMsg& m) {
      replica_write_acks.push_back(m);
    });
    subscribe<AbdNackMsg>(network_, [this](const AbdNackMsg& m) { replica_nacks.push_back(m); });
    subscribe<ViewPromiseMsg>(network_, [this](const ViewPromiseMsg& m) {
      promises.push_back(m);
    });
    // Client-side responses come back on the ABD's PutGet port; the harness
    // subscribes there via the parent below.
  }

  // Inject replies as if they came from replicas (echoing the phase view,
  // as a correct replica does).
  void read_ack(const AbdReadMsg& to, VersionTag tag, bool exists, Value v,
                Address from_replica) {
    trigger(make_event<AbdReadAckMsg>(from_replica, to.source(), to.op, to.key, to.view, tag,
                                      exists, std::move(v)),
            network_);
  }
  void write_ack(const AbdWriteMsg& to, Address from_replica) {
    trigger(make_event<AbdWriteAckMsg>(from_replica, to.source(), to.op, to.key, to.view),
            network_);
  }
  /// A *wrong* ack: view version different from the phase message's.
  void read_ack_with_view(const AbdReadMsg& to, std::uint64_t view, Address from_replica) {
    trigger(make_event<AbdReadAckMsg>(from_replica, to.source(), to.op, to.key, view,
                                      VersionTag{}, false, Value{}),
            network_);
  }
  void nack(const AbdReadMsg& to, std::uint64_t current_version, Address from_replica) {
    trigger(make_event<AbdNackMsg>(from_replica, to.source(), to.op, to.key, current_version),
            network_);
  }

  // Drive the ABD's *replica* role, as a remote coordinator would.
  void inject_replica_write(Address from, Address to, OpId op, RingKey key, std::uint64_t view,
                            VersionTag tag, Value v) {
    trigger(make_event<AbdWriteMsg>(from, to, op, key, view, tag, true, std::move(v)),
            network_);
  }
  void inject_replica_read(Address from, Address to, OpId op, RingKey key, std::uint64_t view) {
    trigger(make_event<AbdReadMsg>(from, to, op, key, view), network_);
  }
  /// Hand the ABD an installed view, as a decided reconfiguration would.
  void install_view(Address to, GroupView view, std::vector<KeyState> state = {}) {
    trigger(make_event<ViewInstallMsg>(Address::node(200), to, /*parent_hi=*/view.hi,
                                       std::move(view), std::move(state)),
            network_);
  }
  /// Fence a range at the ABD, as a competing reconfiguration's Prepare would.
  void prepare(Address to, RingKey lo, RingKey hi, std::uint64_t target, Ballot ballot) {
    trigger(make_event<ViewPrepareMsg>(Address::node(200), to, lo, hi, target, ballot),
            network_);
  }

  Negative<Router> router_ = provide<Router>();
  Negative<Ring> ring_ = provide<Ring>();
  Negative<net::Network> network_ = provide<net::Network>();

  bool auto_answer_lookups = true;
  std::uint64_t view_version = 1;  ///< stamped on auto-answered lookups
  std::vector<NodeRef> group;
  std::vector<LookupRequest> lookups;
  std::vector<AbdReadMsg> reads;
  std::vector<AbdWriteMsg> writes;
  std::vector<AbdReadAckMsg> replica_read_acks;
  std::vector<AbdWriteAckMsg> replica_write_acks;
  std::vector<AbdNackMsg> replica_nacks;
  std::vector<ViewPromiseMsg> promises;
};

class World : public ComponentDefinition {
 public:
  explicit World(sim::SimulatorCore* core) {
    CatsParams params;
    params.op_timeout_ms = 1000;
    params.op_max_retries = 2;
    self = NodeRef{100, Address::node(1)};
    abd = create<ConsistentABD>();
    abd.control()->trigger(make_event<ConsistentABD::Init>(self, params));
    harness = create<Harness>();
    timer = create<SimTimer>();
    timer.control()->trigger(make_event<SimTimer::Init>(core));

    connect(abd.required<Router>(), harness.provided<Router>());
    connect(abd.required<Ring>(), harness.provided<Ring>());
    connect(abd.required<net::Network>(), harness.provided<net::Network>());
    connect(abd.required<timing::Timer>(), timer.provided<timing::Timer>());

    subscribe<PutResponse>(abd.provided<PutGet>(),
                           [this](const PutResponse& r) { put_responses.push_back(r); });
    subscribe<GetResponse>(abd.provided<PutGet>(),
                           [this](const GetResponse& r) { get_responses.push_back(r); });
    subscribe<StatusResponse>(abd.provided<Status>(),
                              [this](const StatusResponse& r) { statuses.push_back(r); });
  }

  void put(OpId id, RingKey key, Value v) {
    trigger(make_event<PutRequest>(id, key, std::move(v)), abd.provided<PutGet>());
  }
  void get(OpId id, RingKey key) {
    trigger(make_event<GetRequest>(id, key), abd.provided<PutGet>());
  }
  void request_status(std::uint64_t id) {
    trigger(make_event<StatusRequest>(id), abd.provided<Status>());
  }

  Harness& h() { return harness.definition_as<Harness>(); }
  ConsistentABD& abd_def() { return abd.definition_as<ConsistentABD>(); }

  NodeRef self;
  Component abd, harness, timer;
  std::vector<PutResponse> put_responses;
  std::vector<GetResponse> get_responses;
  std::vector<StatusResponse> statuses;
};

struct AbdFixture : ::testing::Test {
  AbdFixture() : sim(Config{}, 9) {
    main = sim.bootstrap<World>(&sim.core());
    sim.run_until(1);
    world = &main.definition_as<World>();
    // Default group of 3 replicas (the coordinator is NOT a member here —
    // the protocol must not care).
    world->h().group = {NodeRef{10, Address::node(10)}, NodeRef{20, Address::node(20)},
                        NodeRef{30, Address::node(30)}};
  }
  void step() { sim.run_until(sim.now() + 1); }

  Simulation sim;
  Component main;
  World* world = nullptr;
};

// The happy-path quorum tests (PutRunsReadThenWritePhaseAndAcksAtQuorum,
// GetImposesMaxValueBeforeResponding, DuplicatedAcksFromOneReplicaDoNot-
// CompleteQuorum) and the reconfiguration-gate tests (ReplicaGateNacksWrong-
// ViewsAndFencedRanges, NackMajorityTriggersFastRetryAfterBackoff) moved to
// the TestKit event-stream DSL: tests/testkit_abd_test.cpp and
// tests/testkit_reconfig_test.cpp. What stays here are the white-box cases
// that poke protocol internals the DSL deliberately doesn't expose.

TEST_F(AbdFixture, PutCounterDominatesMaxReadTag) {
  world->put(2, 7, Value{9});
  step();
  world->h().read_ack(world->h().reads[0], VersionTag{41, 77}, true, Value{1},
                      Address::node(10));
  world->h().read_ack(world->h().reads[1], VersionTag{5, 99}, true, Value{2},
                      Address::node(20));
  step();
  ASSERT_EQ(world->h().writes.size(), 3u);
  EXPECT_EQ(world->h().writes[0].tag.counter, 42u) << "max counter 41 + 1";
}

TEST_F(AbdFixture, GetOfAbsentKeySkipsImpose) {
  world->get(4, 8);
  step();
  world->h().read_ack(world->h().reads[0], VersionTag{}, false, {}, Address::node(10));
  world->h().read_ack(world->h().reads[1], VersionTag{}, false, {}, Address::node(20));
  step();
  EXPECT_TRUE(world->h().writes.empty()) << "nothing to impose";
  ASSERT_EQ(world->get_responses.size(), 1u);
  EXPECT_TRUE(world->get_responses[0].ok);
  EXPECT_FALSE(world->get_responses[0].found);
}

TEST_F(AbdFixture, RetriedPutRetransmitsTheSameTag) {
  world->put(5, 9, Value{7});
  step();
  world->h().read_ack(world->h().reads[0], VersionTag{}, false, {}, Address::node(10));
  world->h().read_ack(world->h().reads[1], VersionTag{}, false, {}, Address::node(20));
  step();
  ASSERT_EQ(world->h().writes.size(), 3u);
  const VersionTag first_tag = world->h().writes[0].tag;

  // Withhold write acks: the op times out and retries (fresh lookup).
  const auto lookups_before = world->h().lookups.size();
  sim.run_until(sim.now() + 1500);
  EXPECT_GT(world->h().lookups.size(), lookups_before) << "retry re-resolves the group";
  ASSERT_GE(world->h().writes.size(), 6u) << "retry retransmits the write phase";
  EXPECT_EQ(world->h().writes[3].tag, first_tag)
      << "a put's tag is chosen once; retries must not re-tag (linearizability)";
  EXPECT_EQ(world->h().writes[3].value, Value{7});

  world->h().write_ack(world->h().writes[3], Address::node(10));
  world->h().write_ack(world->h().writes[4], Address::node(20));
  step();
  ASSERT_EQ(world->put_responses.size(), 1u);
  EXPECT_TRUE(world->put_responses[0].ok);
}

TEST_F(AbdFixture, StaleAttemptAcksDoNotCountTowardRetryQuorum) {
  world->put(6, 11, Value{3});
  step();
  const auto attempt0_reads = world->h().reads;
  // Let the whole attempt time out (no acks at all), forcing a retry.
  sim.run_until(sim.now() + 1500);
  ASSERT_GE(world->h().reads.size(), 6u);

  // Now deliver TWO stale read acks from attempt 0: they must be ignored.
  world->h().read_ack(attempt0_reads[0], VersionTag{}, false, {}, Address::node(10));
  world->h().read_ack(attempt0_reads[1], VersionTag{}, false, {}, Address::node(20));
  step();
  EXPECT_TRUE(world->h().writes.empty())
      << "stale-attempt acks must not complete the fresh attempt's read phase";

  // Fresh acks complete it.
  world->h().read_ack(world->h().reads[3], VersionTag{}, false, {}, Address::node(10));
  world->h().read_ack(world->h().reads[4], VersionTag{}, false, {}, Address::node(20));
  step();
  EXPECT_EQ(world->h().writes.size(), 3u);
}

TEST_F(AbdFixture, ExhaustedRetriesFailTheOperation) {
  world->h().auto_answer_lookups = false;  // the router never answers
  world->put(7, 12, Value{1});
  // 1 initial + 2 retries, 1000 ms each.
  sim.run_until(sim.now() + 5000);
  ASSERT_EQ(world->put_responses.size(), 1u);
  EXPECT_FALSE(world->put_responses[0].ok);
  EXPECT_EQ(world->h().lookups.size(), 3u);
}

TEST_F(AbdFixture, UnversionedLookupAnswersNeverStartQuorumPhases) {
  // A group resolved without an installed view (view_version 0) is exactly
  // the split-brain window: the coordinator must wait and retry, not run
  // ABD phases against it.
  world->h().view_version = 0;
  world->put(8, 13, Value{2});
  sim.run_until(sim.now() + 5000);
  EXPECT_TRUE(world->h().reads.empty());
  EXPECT_TRUE(world->h().writes.empty());
  ASSERT_EQ(world->put_responses.size(), 1u);
  EXPECT_FALSE(world->put_responses[0].ok);
}

TEST_F(AbdFixture, ReplicaAppliesOnlyNewerTags) {
  auto& h = world->h();
  const Address peer = Address::node(99);
  const Address self = world->self.addr;
  const OpId foreign_op = 0xABC0000;  // never collides with local internal ids

  // The replica serves phases only under an installed view it is a member of.
  h.install_view(self, GroupView{0, 0, 1, {world->self}});
  step();

  // A remote coordinator writes (tag 5) then a stale (tag 3): the replica
  // must keep the newer value, and must ack both writes regardless.
  h.inject_replica_write(peer, self, foreign_op + 1, 77, 1, VersionTag{5, 1}, Value{0x55});
  step();
  h.inject_replica_read(peer, self, foreign_op + 2, 77, 1);
  step();
  h.inject_replica_write(peer, self, foreign_op + 3, 77, 1, VersionTag{3, 9}, Value{0x33});
  step();
  h.inject_replica_read(peer, self, foreign_op + 4, 77, 1);
  step();

  ASSERT_EQ(h.replica_write_acks.size(), 2u) << "replicas ack every write";
  ASSERT_EQ(h.replica_read_acks.size(), 2u);
  EXPECT_EQ(h.replica_read_acks[0].tag, (VersionTag{5, 1}));
  EXPECT_EQ(h.replica_read_acks[0].value, Value{0x55});
  EXPECT_EQ(h.replica_read_acks[1].tag, (VersionTag{5, 1})) << "stale write must be ignored";
  EXPECT_EQ(h.replica_read_acks[1].value, Value{0x55});

  // And a newer tag does overwrite.
  h.inject_replica_write(peer, self, foreign_op + 5, 77, 1, VersionTag{8, 2}, Value{0x88});
  step();
  h.inject_replica_read(peer, self, foreign_op + 6, 77, 1);
  step();
  ASSERT_EQ(h.replica_read_acks.size(), 3u);
  EXPECT_EQ(h.replica_read_acks[2].tag, (VersionTag{8, 2}));
  EXPECT_EQ(h.replica_read_acks[2].value, Value{0x88});
}

// ---- satellite regressions -------------------------------------------------

TEST_F(AbdFixture, MissingKeyReadStormDoesNotGrowStore) {
  // Pre-fix, the replica read path did store_[key] and default-inserted an
  // empty replica per miss: a storm of reads for absent keys grew the store
  // without bound. Reads must answer exists=false without inserting.
  auto& h = world->h();
  const Address peer = Address::node(99);
  const Address self = world->self.addr;
  h.install_view(self, GroupView{0, 0, 1, {world->self}});
  step();

  for (OpId i = 0; i < 64; ++i) {
    h.inject_replica_read(peer, self, 0xBEE0000 + i, /*key=*/5000 + i, /*view=*/1);
  }
  step();
  ASSERT_EQ(h.replica_read_acks.size(), 64u) << "every read is answered";
  for (const auto& ack : h.replica_read_acks) EXPECT_FALSE(ack.exists);

  EXPECT_EQ(world->abd_def().store_size(), 0u) << "reads must not insert";
  world->request_status(1);
  step();
  ASSERT_EQ(world->statuses.size(), 1u);
  EXPECT_EQ(world->statuses[0].fields.at("store_size"), "0")
      << "store growth is observable via the Status surface";
}

TEST_F(AbdFixture, AcksUnderMismatchedViewAreDroppedAndCounted) {
  world->put(10, 22, Value{5});
  step();
  ASSERT_EQ(world->h().reads.size(), 3u);

  // Acks stamped with a different view version than the op's: dropped.
  world->h().read_ack_with_view(world->h().reads[0], /*view=*/2, Address::node(10));
  world->h().read_ack_with_view(world->h().reads[1], /*view=*/2, Address::node(20));
  step();
  EXPECT_TRUE(world->h().writes.empty());
  EXPECT_EQ(world->abd_def().counters().stale_view_acks_dropped, 2u);

  // Matching acks complete the phase as usual.
  world->h().read_ack(world->h().reads[0], VersionTag{}, false, {}, Address::node(10));
  world->h().read_ack(world->h().reads[1], VersionTag{}, false, {}, Address::node(20));
  step();
  EXPECT_EQ(world->h().writes.size(), 3u);
}

}  // namespace
}  // namespace kompics::cats::test
