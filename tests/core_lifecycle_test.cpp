// Life-cycle semantics of paper §2.4-§2.5: Init-first guarantee, passive
// event queueing, recursive activation/passivation, and Erlang-style fault
// isolation with escalation through the containment hierarchy.

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>

#include "kompics/kompics.hpp"

namespace kompics::test {
namespace {

class Poke : public Event {
 public:
  explicit Poke(int n) : n(n) {}
  int n;
};

class PokePort : public PortType {
 public:
  PokePort() {
    set_name("PokePort");
    negative<Poke>();
  }
};

std::unique_ptr<Runtime> make_runtime() { return Runtime::threaded(Config{}, 2, 7); }

// ---- Init-first guarantee ---------------------------------------------------

class NeedsInit : public ComponentDefinition {
 public:
  struct MyInit : Init {
    explicit MyInit(int parameter) : parameter(parameter) {}
    int parameter;
  };

  NeedsInit() {
    subscribe<MyInit>(control(), [this](const MyInit& init) {
      trace.push_back(1000 + init.parameter);
    });
    subscribe<Poke>(pokes_, [this](const Poke& p) { trace.push_back(p.n); });
    subscribe<Start>(control(), [this](const Start&) { trace.push_back(-1); });
  }

  Negative<PokePort> pokes_ = provide<PokePort>();
  std::vector<int> trace;
};

class InitMain : public ComponentDefinition {
 public:
  InitMain() { child = create<NeedsInit>(); }
  Component child;
};

TEST(Lifecycle, ControlPortRejectsForeignEvents) {
  auto rt = make_runtime();
  auto main = rt->bootstrap<InitMain>();
  auto& def = main.definition_as<InitMain>();
  rt->await_quiescence();
  EXPECT_THROW(def.child.control()->trigger(make_event<Poke>(1)), std::logic_error);
}

TEST(Lifecycle, InitOrderingWithQueuedWork) {
  auto rt = make_runtime();
  auto main = rt->bootstrap<InitMain>();
  auto& def = main.definition_as<InitMain>();

  // Events races: pokes + Start are queued, Init arrives last — yet it must
  // be handled first.
  auto poke_port = def.child.core()->find_port(std::type_index(typeid(PokePort)), true);
  poke_port->outside->trigger(make_event<Poke>(1));
  poke_port->outside->trigger(make_event<Poke>(2));
  def.child.control()->trigger(make_event<NeedsInit::MyInit>(7));
  rt->await_quiescence();

  const auto& trace = def.child.definition_as<NeedsInit>().trace;
  ASSERT_GE(trace.size(), 4u);
  EXPECT_EQ(trace[0], 1007) << "Init must be first";
  // Start (-1) and pokes follow in some order, with pokes in FIFO order.
  std::vector<int> pokes;
  for (int t : trace) {
    if (t > 0 && t < 100) pokes.push_back(t);
  }
  EXPECT_EQ(pokes, (std::vector<int>{1, 2}));
}

// ---- passive queueing --------------------------------------------------------

class Sink : public ComponentDefinition {
 public:
  Sink() {
    subscribe<Poke>(pokes_, [this](const Poke&) { count.fetch_add(1); });
  }
  Negative<PokePort> pokes_ = provide<PokePort>();
  std::atomic<int> count{0};
};

class PassiveMain : public ComponentDefinition {
 public:
  PassiveMain() { sink = create<Sink>(); }
  // NOTE: sink is created but never started here (the parent starts, but we
  // test manual Stop/Start cycles).
  Component sink;
};

TEST(Lifecycle, EventsQueueWhilePassiveAndReplayOnStart) {
  auto rt = make_runtime();
  auto main = rt->bootstrap<PassiveMain>();
  auto& def = main.definition_as<PassiveMain>();
  rt->await_quiescence();
  auto& sink = def.sink.definition_as<Sink>();
  ASSERT_EQ(def.sink.core()->state(), LifecycleState::kActive);

  // Passivate, deliver, verify nothing runs, reactivate, verify replay.
  def.sink.control()->trigger(make_event<Stop>());
  rt->await_quiescence();
  ASSERT_EQ(def.sink.core()->state(), LifecycleState::kPassive);

  auto* port = def.sink.core()->find_port(std::type_index(typeid(PokePort)), true);
  for (int i = 0; i < 5; ++i) port->outside->trigger(make_event<Poke>(i));
  rt->await_quiescence();
  EXPECT_EQ(sink.count.load(), 0) << "passive component must not execute events";

  def.sink.control()->trigger(make_event<Start>());
  rt->await_quiescence();
  EXPECT_EQ(sink.count.load(), 5) << "queued events replay on activation";
}

// ---- recursive activation ------------------------------------------------------

class Grandchild : public ComponentDefinition {
 public:
  Grandchild() {
    subscribe<Start>(control(), [this](const Start&) { started.fetch_add(1); });
    subscribe<Stop>(control(), [this](const Stop&) { stopped.fetch_add(1); });
  }
  std::atomic<int> started{0};
  std::atomic<int> stopped{0};
};

class Middle : public ComponentDefinition {
 public:
  Middle() { inner = create<Grandchild>(); }
  Component inner;
};

class Outer : public ComponentDefinition {
 public:
  Outer() { mid = create<Middle>(); }
  Component mid;
};

TEST(Lifecycle, StartAndStopCascadeRecursively) {
  auto rt = make_runtime();
  auto main = rt->bootstrap<Outer>();
  rt->await_quiescence();
  auto& mid = main.definition_as<Outer>().mid;
  auto& inner = mid.definition_as<Middle>().inner;
  EXPECT_EQ(inner.definition_as<Grandchild>().started.load(), 1);
  EXPECT_EQ(inner.core()->state(), LifecycleState::kActive);

  main.control()->trigger(make_event<Stop>());
  rt->await_quiescence();
  EXPECT_EQ(inner.definition_as<Grandchild>().stopped.load(), 1);
  EXPECT_EQ(inner.core()->state(), LifecycleState::kPassive);
}

// ---- fault isolation and escalation (§2.5) ---------------------------------------

class Faulty : public ComponentDefinition {
 public:
  Faulty() {
    subscribe<Poke>(pokes_, [](const Poke& p) {
      if (p.n == 13) throw std::runtime_error("unlucky poke");
    });
  }
  Negative<PokePort> pokes_ = provide<PokePort>();
};

class Supervisor : public ComponentDefinition {
 public:
  Supervisor() {
    child = create<Faulty>();
    supervise();
  }
  void supervise() {
    subscribe<Fault>(child.control(), [this](const Fault& f) {
      caught.push_back(f.what());
      // Supervision action (§2.5): replace the faulty child, and supervise
      // the replacement too — its faults must not escalate past us either.
      destroy(child);
      child = create<Faulty>();
      supervise();
      child.control()->trigger(make_event<Start>());
    });
  }
  Component child;
  std::vector<std::string> caught;
};

TEST(Faults, ParentSupervisesAndReplacesFaultyChild) {
  auto rt = make_runtime();
  auto main = rt->bootstrap<Supervisor>();
  auto& sup = main.definition_as<Supervisor>();
  rt->await_quiescence();

  sup.child.core()->find_port(std::type_index(typeid(PokePort)), true)
      ->outside->trigger(make_event<Poke>(13));
  rt->await_quiescence();

  ASSERT_EQ(sup.caught.size(), 1u);
  EXPECT_EQ(sup.caught[0], "unlucky poke");
  // Don't compare core addresses to prove the swap: the allocator may hand
  // the replacement the exact block the destroyed child just vacated.
  // Instead show the replacement is live and supervised — it is active and
  // a second unlucky poke escalates through it again, which a destroyed
  // component could never deliver.
  EXPECT_EQ(sup.child.core()->state(), LifecycleState::kActive);
  sup.child.core()->find_port(std::type_index(typeid(PokePort)), true)
      ->outside->trigger(make_event<Poke>(13));
  rt->await_quiescence();
  ASSERT_EQ(sup.caught.size(), 2u) << "replacement child must be live and supervised";
  EXPECT_FALSE(rt->faulted()) << "handled fault must not reach the top";
}

class Uncaring : public ComponentDefinition {
 public:
  Uncaring() { child = create<Faulty>(); }
  Component child;
};

TEST(Faults, UnhandledFaultEscalatesToRuntimePolicy) {
  auto rt = make_runtime();
  std::atomic<int> policy_calls{0};
  std::string what;
  rt->set_fault_policy([&](const Fault& f) {
    ++policy_calls;
    what = f.what();
  });
  auto main = rt->bootstrap<Uncaring>();
  rt->await_quiescence();

  main.definition_as<Uncaring>()
      .child.core()
      ->find_port(std::type_index(typeid(PokePort)), true)
      ->outside->trigger(make_event<Poke>(13));
  rt->await_quiescence();

  EXPECT_EQ(policy_calls.load(), 1);
  EXPECT_EQ(what, "unlucky poke");
  EXPECT_TRUE(rt->faulted());
}

class GrandSupervisor : public ComponentDefinition {
 public:
  GrandSupervisor() {
    mid = create<Uncaring>();
    subscribe<Fault>(mid.control(), [this](const Fault& f) { caught.push_back(f.what()); });
  }
  Component mid;
  std::vector<std::string> caught;
};

TEST(Faults, FaultPropagatesUpThroughUncaringParents) {
  auto rt = make_runtime();
  auto main = rt->bootstrap<GrandSupervisor>();
  auto& sup = main.definition_as<GrandSupervisor>();
  rt->await_quiescence();

  sup.mid.definition_as<Uncaring>()
      .child.core()
      ->find_port(std::type_index(typeid(PokePort)), true)
      ->outside->trigger(make_event<Poke>(13));
  rt->await_quiescence();

  ASSERT_EQ(sup.caught.size(), 1u);
  EXPECT_EQ(sup.caught[0], "unlucky poke");
  EXPECT_FALSE(rt->faulted());
}

}  // namespace
}  // namespace kompics::test

namespace kompics::test {
namespace {

// ---- Stopped confirmation (the quiescence signal behind §2.6) ----------------

TEST(Lifecycle, StoppedIsEmittedAfterSubtreeQuiesces) {
  class Tree : public ComponentDefinition {
   public:
    Tree() {
      mid = create<Middle>();
      subscribe<Stopped>(mid.control(), [this](const Stopped&) { stopped_seen.fetch_add(1); });
    }
    Component mid;
    std::atomic<int> stopped_seen{0};
  };

  auto rt = make_runtime();
  auto main = rt->bootstrap<Tree>();
  auto& def = main.definition_as<Tree>();
  rt->await_quiescence();
  ASSERT_EQ(def.stopped_seen.load(), 0);

  def.mid.control()->trigger(make_event<Stop>());
  rt->await_quiescence();
  EXPECT_EQ(def.stopped_seen.load(), 1) << "Stopped fires once the whole subtree is passive";
  EXPECT_EQ(def.mid.core()->state(), LifecycleState::kPassive);
  EXPECT_EQ(def.mid.definition_as<Middle>().inner.core()->state(), LifecycleState::kPassive);
}

TEST(Lifecycle, StopOfAlreadyPassiveComponentConfirmsImmediately) {
  class Holder : public ComponentDefinition {
   public:
    Holder() {
      leaf = create<Grandchild>();
      subscribe<Stopped>(leaf.control(), [this](const Stopped&) { confirmations.fetch_add(1); });
    }
    Component leaf;
    std::atomic<int> confirmations{0};
  };
  auto rt = make_runtime();
  auto main = rt->bootstrap<Holder>();
  auto& def = main.definition_as<Holder>();
  rt->await_quiescence();

  def.leaf.control()->trigger(make_event<Stop>());
  rt->await_quiescence();
  def.leaf.control()->trigger(make_event<Stop>());  // second stop: still confirms
  rt->await_quiescence();
  EXPECT_EQ(def.confirmations.load(), 2);
}

}  // namespace
}  // namespace kompics::test

namespace kompics::test {
namespace {

TEST(Lifecycle, StartedIsEmittedAfterSubtreeActivates) {
  class Tree : public ComponentDefinition {
   public:
    Tree() {
      mid = create<Middle>();
      subscribe<Started>(mid.control(), [this](const Started&) { started_seen.fetch_add(1); });
    }
    Component mid;
    std::atomic<int> started_seen{0};
  };
  auto rt = make_runtime();
  auto main = rt->bootstrap<Tree>();
  rt->await_quiescence();
  auto& def = main.definition_as<Tree>();
  EXPECT_EQ(def.started_seen.load(), 1) << "bootstrap start cascades and confirms";
  EXPECT_EQ(def.mid.definition_as<Middle>().inner.core()->state(), LifecycleState::kActive);

  // Stop then restart: Started must confirm again.
  def.mid.control()->trigger(make_event<Stop>());
  rt->await_quiescence();
  def.mid.control()->trigger(make_event<Start>());
  rt->await_quiescence();
  EXPECT_EQ(def.started_seen.load(), 2);
}

}  // namespace
}  // namespace kompics::test
