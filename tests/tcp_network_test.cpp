// TcpNetwork integration tests: real kernel sockets on 127.0.0.1 —
// connection management, framing across partial reads, serialization, the
// compression path, bidirectional traffic, and failure reporting.

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <random>
#include <thread>

#include "kompics/kompics.hpp"
#include "net/loopback.hpp"
#include "net/tcp_network.hpp"

namespace kompics::net::test {
namespace {

// Test message with variable-size payload.
class Blob : public Message {
 public:
  Blob(Address s, Address d, std::uint64_t seq, Bytes payload)
      : Message(s, d), seq(seq), payload(std::move(payload)) {}
  std::uint64_t seq;
  Bytes payload;
};

KOMPICS_REGISTER_MESSAGE(
    Blob, 9100,
    [](const Message& m, BufferWriter& w) {
      const auto& b = static_cast<const Blob&>(m);
      w.var_u64(b.seq);
      w.bytes(b.payload);
    },
    [](BufferReader& r, Address src, Address dst) -> MessagePtr {
      const std::uint64_t seq = r.var_u64();
      return std::make_shared<const Blob>(src, dst, seq, r.bytes());
    });

class Endpoint : public ComponentDefinition {
 public:
  Endpoint() {
    subscribe<Blob>(network_, [this](const Blob& b) {
      bytes_received.fetch_add(b.payload.size());
      received.fetch_add(1);
      last_seq.store(b.seq);
    });
    subscribe<SendFailed>(netctl_, [this](const SendFailed&) { failures.fetch_add(1); });
  }
  void send(Address from, Address to, std::uint64_t seq, Bytes payload) {
    trigger(make_event<Blob>(from, to, seq, std::move(payload)), network_);
  }
  Positive<Network> network_ = require<Network>();
  Positive<NetworkControl> netctl_ = require<NetworkControl>();
  std::atomic<std::uint64_t> received{0};
  std::atomic<std::uint64_t> bytes_received{0};
  std::atomic<std::uint64_t> last_seq{0};
  std::atomic<std::uint64_t> failures{0};
};

class Node : public ComponentDefinition {
 public:
  Node(Address self, TcpNetwork::Options opts) {
    net = create<TcpNetwork>();
    trigger(make_event<TcpNetwork::Init>(self, opts), net.control());
    app = create<Endpoint>();
    connect(net.provided<Network>(), app.required<Network>());
    connect(net.provided<NetworkControl>(), app.required<NetworkControl>());
  }
  Component net, app;
};

class TwoNodeMain : public ComponentDefinition {
 public:
  TwoNodeMain(Address a, Address b, TcpNetwork::Options opts) {
    node_a = create<Node>(a, opts);
    node_b = create<Node>(b, opts);
  }
  Component node_a, node_b;
};

std::uint16_t pick_port() {
  // Base derived from the pid: ctest runs each test in its own process and
  // may run several concurrently, so a fixed base collides across processes
  // (bind: Address already in use). Consecutive pids land ~131 ports apart.
  static std::atomic<std::uint16_t> next{
      static_cast<std::uint16_t>(24000 + (static_cast<unsigned>(::getpid()) * 131u) % 4000u)};
  return next.fetch_add(1);
}

void wait_for(std::function<bool()> cond, int budget_ms = 5000) {
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::milliseconds(budget_ms);
  while (!cond() && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

TEST(TcpNetwork, RoundTripSmallMessages) {
  const Address a = Address::loopback(pick_port());
  const Address b = Address::loopback(pick_port());
  auto rt = Runtime::threaded(Config{}, 2, 1);
  auto main = rt->bootstrap<TwoNodeMain>(a, b, TcpNetwork::Options{});
  auto& def = main.definition_as<TwoNodeMain>();
  rt->await_quiescence();

  auto& app_a = def.node_a.definition_as<Node>().app.definition_as<Endpoint>();
  auto& app_b = def.node_b.definition_as<Node>().app.definition_as<Endpoint>();
  for (std::uint64_t i = 1; i <= 100; ++i) app_a.send(a, b, i, Bytes{1, 2, 3});
  wait_for([&] { return app_b.received.load() == 100; });
  EXPECT_EQ(app_b.received.load(), 100u);
  EXPECT_EQ(app_b.last_seq.load(), 100u) << "TCP must preserve order";

  // And back on the same connection pair.
  for (std::uint64_t i = 1; i <= 50; ++i) app_b.send(b, a, i, Bytes{9});
  wait_for([&] { return app_a.received.load() == 50; });
  EXPECT_EQ(app_a.received.load(), 50u);
}

TEST(TcpNetwork, LargeMessagesCrossFrameBoundaries) {
  const Address a = Address::loopback(pick_port());
  const Address b = Address::loopback(pick_port());
  auto rt = Runtime::threaded(Config{}, 2, 1);
  auto main = rt->bootstrap<TwoNodeMain>(a, b, TcpNetwork::Options{});
  auto& def = main.definition_as<TwoNodeMain>();
  rt->await_quiescence();

  auto& app_a = def.node_a.definition_as<Node>().app.definition_as<Endpoint>();
  auto& app_b = def.node_b.definition_as<Node>().app.definition_as<Endpoint>();

  std::mt19937_64 rng(5);
  std::uint64_t total = 0;
  for (std::uint64_t i = 1; i <= 20; ++i) {
    Bytes payload(64 * 1024 + i * 1000);
    for (auto& byte : payload) byte = static_cast<std::uint8_t>(rng());
    total += payload.size();
    app_a.send(a, b, i, std::move(payload));
  }
  wait_for([&] { return app_b.received.load() == 20; }, 10000);
  EXPECT_EQ(app_b.received.load(), 20u);
  EXPECT_EQ(app_b.bytes_received.load(), total);
}

TEST(TcpNetwork, CompressionPathRoundTrips) {
  const Address a = Address::loopback(pick_port());
  const Address b = Address::loopback(pick_port());
  TcpNetwork::Options opts;
  opts.compress = true;
  opts.compress_threshold = 64;
  auto rt = Runtime::threaded(Config{}, 2, 1);
  auto main = rt->bootstrap<TwoNodeMain>(a, b, opts);
  auto& def = main.definition_as<TwoNodeMain>();
  rt->await_quiescence();

  auto& app_a = def.node_a.definition_as<Node>().app.definition_as<Endpoint>();
  auto& app_b = def.node_b.definition_as<Node>().app.definition_as<Endpoint>();

  // Highly compressible payload.
  Bytes payload(32 * 1024, 0x42);
  app_a.send(a, b, 1, payload);
  wait_for([&] { return app_b.received.load() == 1; });
  ASSERT_EQ(app_b.received.load(), 1u);
  EXPECT_EQ(app_b.bytes_received.load(), payload.size());

  // The wire carried far fewer bytes than the payload.
  const auto counters = def.node_a.definition_as<Node>().net.definition_as<TcpNetwork>().counters();
  EXPECT_LT(counters.bytes_sent, payload.size() / 4);
}

TEST(TcpNetwork, ConnectionRefusedReportsSendFailed) {
  const Address a = Address::loopback(pick_port());
  const Address dead = Address::loopback(pick_port());  // nobody listens
  auto rt = Runtime::threaded(Config{}, 2, 1);
  auto main = rt->bootstrap<TwoNodeMain>(a, Address::loopback(pick_port()),
                                         TcpNetwork::Options{});
  auto& def = main.definition_as<TwoNodeMain>();
  rt->await_quiescence();

  auto& app_a = def.node_a.definition_as<Node>().app.definition_as<Endpoint>();
  app_a.send(a, dead, 1, Bytes{1});
  wait_for([&] { return app_a.failures.load() >= 1; });
  EXPECT_GE(app_a.failures.load(), 1u);
}

// ---- loopback codec path -----------------------------------------------------

class LoopNode : public ComponentDefinition {
 public:
  LoopNode(Address self, LoopbackHubPtr hub, bool codec, bool compress) {
    net = create<LoopbackNetwork>();
    trigger(make_event<LoopbackNetwork::Init>(self, hub, codec, compress), net.control());
    app = create<Endpoint>();
    connect(net.provided<Network>(), app.required<Network>());
    connect(net.provided<NetworkControl>(), app.required<NetworkControl>());
  }
  Component net, app;
};

class LoopMain : public ComponentDefinition {
 public:
  LoopMain(LoopbackHubPtr hub, bool codec, bool compress) {
    a = create<LoopNode>(Address::node(1), hub, codec, compress);
    b = create<LoopNode>(Address::node(2), hub, codec, compress);
  }
  Component a, b;
};

TEST(Loopback, CodecExercisingPathDeliversEqualMessages) {
  auto hub = std::make_shared<LoopbackHub>();
  auto rt = Runtime::threaded(Config{}, 2, 1);
  auto main = rt->bootstrap<LoopMain>(hub, /*codec=*/true, /*compress=*/true);
  auto& def = main.definition_as<LoopMain>();
  rt->await_quiescence();

  auto& app_a = def.a.definition_as<LoopNode>().app.definition_as<Endpoint>();
  auto& app_b = def.b.definition_as<LoopNode>().app.definition_as<Endpoint>();
  Bytes payload(1024);
  for (std::size_t i = 0; i < payload.size(); ++i) payload[i] = static_cast<std::uint8_t>(i);
  for (std::uint64_t i = 1; i <= 10; ++i) {
    app_a.send(Address::node(1), Address::node(2), i, payload);
  }
  rt->await_quiescence();
  EXPECT_EQ(app_b.received.load(), 10u);
  EXPECT_EQ(app_b.bytes_received.load(), 10 * payload.size());
  EXPECT_EQ(app_b.last_seq.load(), 10u);
  EXPECT_GT(def.a.definition_as<LoopNode>().net.definition_as<LoopbackNetwork>().bytes_on_wire(),
            0u);
}

TEST(Loopback, UnroutableDestinationCountsAsDropped) {
  auto hub = std::make_shared<LoopbackHub>();
  auto rt = Runtime::threaded(Config{}, 2, 1);
  auto main = rt->bootstrap<LoopMain>(hub, false, false);
  auto& def = main.definition_as<LoopMain>();
  rt->await_quiescence();

  auto& app_a = def.a.definition_as<LoopNode>().app.definition_as<Endpoint>();
  app_a.send(Address::node(1), Address::node(99), 1, Bytes{});
  rt->await_quiescence();
  EXPECT_EQ(def.a.definition_as<LoopNode>().net.definition_as<LoopbackNetwork>().dropped(), 1u);
}

}  // namespace
}  // namespace kompics::net::test
