// Tests for the event type registry (event.hpp) and the typed-dispatch hot
// path built on it: TypeId ancestor chains, cross-TU id stability,
// registered-vs-unregistered parity with dynamic_cast, the memoized
// PortType::allows, trigger-rejection diagnostics, the epoch-validated
// match cache (subscribe/unsubscribe during handling), and — in debug
// builds — RCU table reclamation.

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>

#include "kompics/kompics.hpp"
#include "registry_events.hpp"

namespace kompics::test {
namespace {

using namespace reg;

// ---- registry core --------------------------------------------------------

TEST(Registry, AssignsDistinctNonSentinelIds) {
  const EventTypeId base = BaseEv::kompics_static_type_id();
  const EventTypeId mid = MidEv::kompics_static_type_id();
  const EventTypeId leaf = LeafEv::kompics_static_type_id();
  const EventTypeId other = OtherEv::kompics_static_type_id();
  for (EventTypeId id : {base, mid, leaf, other}) {
    EXPECT_NE(id, kEventTypeInvalid);
    EXPECT_NE(id, kEventTypeRoot);
  }
  EXPECT_NE(base, mid);
  EXPECT_NE(mid, leaf);
  EXPECT_NE(leaf, other);
  EXPECT_NE(base, other);
}

TEST(Registry, CrossTranslationUnitIdsAgree) {
  EXPECT_EQ(BaseEv::kompics_static_type_id(), tu2_base_id());
  EXPECT_EQ(MidEv::kompics_static_type_id(), tu2_mid_id());
  EXPECT_EQ(LeafEv::kompics_static_type_id(), tu2_leaf_id());
  EXPECT_EQ(SkipMid::kompics_static_type_id(), tu2_skip_mid_id());
  // And the other TU's event_is agrees on instances built here.
  LeafEv leaf;
  OtherEv other;
  EXPECT_TRUE(tu2_event_is_mid(leaf));
  EXPECT_FALSE(tu2_event_is_mid(other));
}

TEST(Registry, MultiLevelAncestorChain) {
  LeafEv leaf;
  MidEv mid;
  BaseEv base;
  OtherEv other;

  EXPECT_TRUE(event_is<Event>(leaf));
  EXPECT_TRUE(event_is<BaseEv>(leaf));
  EXPECT_TRUE(event_is<MidEv>(leaf));
  EXPECT_TRUE(event_is<LeafEv>(leaf));

  EXPECT_TRUE(event_is<BaseEv>(mid));
  EXPECT_FALSE(event_is<LeafEv>(mid));
  EXPECT_FALSE(event_is<MidEv>(base));

  EXPECT_TRUE(event_is<BaseEv>(other));
  EXPECT_FALSE(event_is<MidEv>(other));
  EXPECT_FALSE(event_is<OtherEv>(leaf));
}

TEST(Registry, SkippingUnregisteredBaseCollapsesParentToRoot) {
  // SkipMid's declared base (PlainBase) never registered, so its registry
  // parent is the root — and the RTTI check still sees the real chain.
  SkipMid sm;
  EXPECT_TRUE(event_is<Event>(sm));
  EXPECT_TRUE(event_is<SkipMid>(sm));
  EXPECT_TRUE(event_is<PlainBase>(sm));  // RTTI fallback: PlainBase unregistered
  EXPECT_FALSE(event_is<BaseEv>(sm));
}

TEST(Registry, UnregisteredSubclassReportsNearestRegisteredAncestor) {
  PlainLeaf pl;
  EXPECT_EQ(pl.kompics_type_id(), MidEv::kompics_static_type_id());
  PlainDerived pd;
  EXPECT_EQ(pd.kompics_type_id(), kEventTypeRoot);
  // Inherited ids are not "exact", so per-type caches must skip them.
  EXPECT_FALSE(detail::type_id_is_exact(pl.kompics_type_id(), pl));
  MidEv mid;
  EXPECT_TRUE(detail::type_id_is_exact(mid.kompics_type_id(), mid));
}

// event_is must give exactly dynamic_cast's answer over the whole grid of
// {registered, unregistered} x {registered, unregistered} combinations.
TEST(Registry, ParityWithDynamicCast) {
  BaseEv base;
  MidEv mid;
  LeafEv leaf;
  OtherEv other;
  PlainLeaf plain_leaf;
  PlainBase plain_base;
  PlainDerived plain_derived;
  SkipMid skip_mid;
  const Event* events[] = {&base,       &mid,        &leaf,          &other,
                           &plain_leaf, &plain_base, &plain_derived, &skip_mid};
  for (const Event* e : events) {
    EXPECT_EQ(event_is<BaseEv>(*e), dynamic_cast<const BaseEv*>(e) != nullptr);
    EXPECT_EQ(event_is<MidEv>(*e), dynamic_cast<const MidEv*>(e) != nullptr);
    EXPECT_EQ(event_is<LeafEv>(*e), dynamic_cast<const LeafEv*>(e) != nullptr);
    EXPECT_EQ(event_is<OtherEv>(*e), dynamic_cast<const OtherEv*>(e) != nullptr);
    EXPECT_EQ(event_is<PlainLeaf>(*e), dynamic_cast<const PlainLeaf*>(e) != nullptr);
    EXPECT_EQ(event_is<PlainBase>(*e), dynamic_cast<const PlainBase*>(e) != nullptr);
    EXPECT_EQ(event_is<PlainDerived>(*e),
              dynamic_cast<const PlainDerived*>(e) != nullptr);
    EXPECT_EQ(event_is<SkipMid>(*e), dynamic_cast<const SkipMid*>(e) != nullptr);
    EXPECT_TRUE(event_is<Event>(*e));
  }
}

// ---- PortType::allows memo ------------------------------------------------

class MixedPort : public PortType {
 public:
  MixedPort() {
    set_name("Mixed");
    request<MidEv>();      // registered entry -> memoized verdicts
    request<PlainBase>();  // unregistered entry -> RTTI path, never memoized
    indication<OtherEv>();
  }
};

TEST(Registry, AllowsMemoAndRttiEntriesAgreeAcrossRepeats) {
  const auto& pt = port_type<MixedPort>();
  MidEv mid;
  LeafEv leaf;
  PlainLeaf plain_leaf;
  OtherEv other;
  PlainBase plain_base;
  PlainDerived plain_derived;
  // Two identical rounds: first populates the memo, second must serve the
  // same verdicts from it.
  for (int round = 0; round < 2; ++round) {
    EXPECT_TRUE(pt.allows(Direction::kNegative, mid));
    EXPECT_TRUE(pt.allows(Direction::kNegative, leaf));
    EXPECT_TRUE(pt.allows(Direction::kNegative, plain_leaf));   // inherited id
    EXPECT_TRUE(pt.allows(Direction::kNegative, plain_base));   // RTTI entry
    EXPECT_TRUE(pt.allows(Direction::kNegative, plain_derived));
    EXPECT_FALSE(pt.allows(Direction::kNegative, other));
    EXPECT_TRUE(pt.allows(Direction::kPositive, other));
    EXPECT_FALSE(pt.allows(Direction::kPositive, mid));
    EXPECT_FALSE(pt.allows(Direction::kPositive, plain_base));
  }
}

// ---- runtime-level tests --------------------------------------------------

class Svc : public PortType {
 public:
  Svc() {
    set_name("Svc");
    request<BaseEv>();
    indication<OtherEv>();
  }
};

/// Consumer providing Svc; handler wiring is driven by each test.
class Sink : public ComponentDefinition {
 public:
  Sink() {
    main_sub = subscribe<BaseEv>(svc, [this](const BaseEv&) {
      ++seen;
      if (unsubscribe_on_first && seen == 1) unsubscribe(main_sub);
      if (subscribe_extra_on_first && seen == 1) {
        extra_sub = subscribe<BaseEv>(svc, [this](const BaseEv&) { ++extra_seen; });
      }
    });
    mid_sub = subscribe<MidEv>(svc, [this](const MidEv&) { ++mid_seen; });
  }

  // Public wrappers: subscribe/unsubscribe are protected on the definition.
  SubscriptionRef add_throwaway() {
    return subscribe<BaseEv>(svc, [](const BaseEv&) {});
  }
  void drop(const SubscriptionRef& s) { unsubscribe(s); }

  Negative<Svc> svc = provide<Svc>();
  SubscriptionRef main_sub, mid_sub, extra_sub;
  std::atomic<int> seen{0};
  std::atomic<int> mid_seen{0};
  std::atomic<int> extra_seen{0};
  bool unsubscribe_on_first = false;
  bool subscribe_extra_on_first = false;
};

/// Producer requiring Svc.
class Source : public ComponentDefinition {
 public:
  void send(const EventPtr& e) { trigger(e, svc); }
  Positive<Svc> svc = require<Svc>();
};

class RegMain : public ComponentDefinition {
 public:
  RegMain() {
    sink = create<Sink>();
    source = create<Source>();
    channel = connect(sink.provided<Svc>(), source.required<Svc>());
  }
  Component sink, source;
  ChannelRef channel;
};

std::unique_ptr<Runtime> make_runtime() { return Runtime::threaded(Config{}, 2, /*seed=*/7); }

TEST(RegistryDispatch, SubtypeDeliveryMatchesHierarchy) {
  auto rt = make_runtime();
  auto main = rt->bootstrap<RegMain>();
  auto& def = main.definition_as<RegMain>();
  rt->await_quiescence();
  auto& sink = def.sink.definition_as<Sink>();
  auto& source = def.source.definition_as<Source>();

  source.send(make_event<BaseEv>(1));
  source.send(make_event<MidEv>(2));
  source.send(make_event<LeafEv>(3));
  source.send(make_event<OtherEv>(4));
  source.send(make_event<PlainLeaf>(5));  // unregistered subtype of MidEv
  rt->await_quiescence();

  EXPECT_EQ(sink.seen.load(), 5);      // BaseEv subscription sees all five
  EXPECT_EQ(sink.mid_seen.load(), 3);  // MidEv, LeafEv, PlainLeaf
  rt->shutdown();
}

TEST(RegistryDispatch, RepeatedDispatchServedFromMatchCacheStaysExact) {
  auto rt = make_runtime();
  auto main = rt->bootstrap<RegMain>();
  auto& def = main.definition_as<RegMain>();
  rt->await_quiescence();
  auto& sink = def.sink.definition_as<Sink>();
  auto& source = def.source.definition_as<Source>();

  for (int i = 0; i < 100; ++i) source.send(make_event<MidEv>(i));
  rt->await_quiescence();
  EXPECT_EQ(sink.seen.load(), 100);
  EXPECT_EQ(sink.mid_seen.load(), 100);
  rt->shutdown();
}

TEST(RegistryDispatch, UnsubscribeDuringHandlingHonoredByMatchCache) {
  auto rt = make_runtime();
  auto main = rt->bootstrap<RegMain>();
  auto& def = main.definition_as<RegMain>();
  rt->await_quiescence();
  auto& sink = def.sink.definition_as<Sink>();
  auto& source = def.source.definition_as<Source>();
  sink.unsubscribe_on_first = true;

  // Warm the (port, TypeId) cache entry, then unsubscribe from inside the
  // handler: the epoch bump must invalidate the warmed entry.
  source.send(make_event<BaseEv>(1));
  source.send(make_event<BaseEv>(2));
  source.send(make_event<BaseEv>(3));
  rt->await_quiescence();
  EXPECT_EQ(sink.seen.load(), 1);
  EXPECT_EQ(sink.mid_seen.load(), 0);
  rt->shutdown();
}

TEST(RegistryDispatch, SubscribeDuringHandlingSeesOnlyLaterEvents) {
  auto rt = make_runtime();
  auto main = rt->bootstrap<RegMain>();
  auto& def = main.definition_as<RegMain>();
  rt->await_quiescence();
  auto& sink = def.sink.definition_as<Sink>();
  auto& source = def.source.definition_as<Source>();
  sink.subscribe_extra_on_first = true;

  source.send(make_event<BaseEv>(1));  // subscribes extra mid-handling
  rt->await_quiescence();
  EXPECT_EQ(sink.extra_seen.load(), 0);  // not the event that added it
  source.send(make_event<BaseEv>(2));
  rt->await_quiescence();
  EXPECT_EQ(sink.seen.load(), 2);
  EXPECT_EQ(sink.extra_seen.load(), 1);  // but every later one
  rt->shutdown();
}

TEST(RegistryDispatch, TriggerRejectionNamesEventAndAllowedTypes) {
  auto rt = make_runtime();
  auto main = rt->bootstrap<RegMain>();
  auto& def = main.definition_as<RegMain>();
  rt->await_quiescence();
  auto& source = def.source.definition_as<Source>();

  // PlainBase is not declared (nor a subtype of anything declared) in the
  // request direction of Svc: triggering it must be rejected with a message
  // naming the port, the event's type, and the allowed set.
  try {
    source.send(make_event<PlainBase>(9));
    FAIL() << "expected std::logic_error";
  } catch (const std::logic_error& ex) {
    const std::string msg = ex.what();
    EXPECT_NE(msg.find("Svc"), std::string::npos) << msg;
    EXPECT_NE(msg.find("PlainBase"), std::string::npos) << msg;
    EXPECT_NE(msg.find("BaseEv"), std::string::npos) << msg;  // the allowed list
  }
  rt->shutdown();
}

#if defined(KOMPICS_DEBUG_ASSERTS)
// Debug builds census every live RCU table: after tearing a runtime (and
// its ports/channels) down, every superseded AND current table must have
// been reclaimed — no reader leak, no writer leak.
TEST(RegistryDispatch, RcuTablesAreReclaimed) {
  const std::int64_t before = detail::rcu_live_objects();
  {
    auto rt = make_runtime();
    auto main = rt->bootstrap<RegMain>();
    auto& def = main.definition_as<RegMain>();
    rt->await_quiescence();
    auto& sink = def.sink.definition_as<Sink>();
    auto& source = def.source.definition_as<Source>();
    // Churn: every subscribe/unsubscribe and channel op swaps tables.
    for (int i = 0; i < 50; ++i) {
      auto s = sink.add_throwaway();
      source.send(make_event<LeafEv>(i));
      sink.drop(s);
      def.channel->hold();
      def.channel->resume();
    }
    rt->await_quiescence();
    EXPECT_GT(sink.seen.load(), 0);
    rt->shutdown();
  }
  EXPECT_EQ(detail::rcu_live_objects(), before);
}
#endif

}  // namespace
}  // namespace kompics::test
