// Second translation unit of the registry tests: reads the TypeIds through
// its own instantiations of the KOMPICS_EVENT function-local statics.

#include "registry_events.hpp"

namespace kompics::test::reg {

EventTypeId tu2_base_id() { return BaseEv::kompics_static_type_id(); }
EventTypeId tu2_mid_id() { return MidEv::kompics_static_type_id(); }
EventTypeId tu2_leaf_id() { return LeafEv::kompics_static_type_id(); }
EventTypeId tu2_skip_mid_id() { return SkipMid::kompics_static_type_id(); }
bool tu2_event_is_mid(const Event& e) { return event_is<MidEv>(e); }

}  // namespace kompics::test::reg
