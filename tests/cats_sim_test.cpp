// Whole-system CATS tests in deterministic simulation (paper §4.2): ring
// convergence, linearizable put/get under message jitter and loss, behavior
// under churn and partitions, and deterministic replay. These are the
// "integration tests implemented as unit tests running the tested subsystem
// in simulation mode" of paper §3.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "cats/cats_simulator.hpp"
#include "cats/linearizability.hpp"
#include "sim/scenario.hpp"
#include "sim/simulation.hpp"

namespace kompics::cats::test {
namespace {

using sim::Dist;
using sim::LinkModel;
using sim::Scenario;
using sim::SimNetworkHub;
using sim::SimNetworkHubPtr;
using sim::Simulation;

class SimMain : public ComponentDefinition {
 public:
  SimMain(sim::SimulatorCore* core, SimNetworkHubPtr hub, CatsParams params) {
    simulator = create<CatsSimulator>(core, hub, params);
  }
  Component simulator;
};

struct World {
  explicit World(std::uint64_t seed = 1, LinkModel model = LinkModel{1, 5, 0.0, false},
                 CatsParams params = CatsParams{})
      : simulation(Config{}, seed) {
    hub = std::make_shared<SimNetworkHub>(&simulation.core(), seed ^ 0xc0ffee, model);
    main = simulation.bootstrap<SimMain>(&simulation.core(), hub, params);
    // run_until, not run(): periodic timers keep the event queue non-empty
    // forever, so whole-system simulations are driven by virtual deadlines.
    simulation.run_until(1);
    cats = &main.definition_as<SimMain>().simulator.definition_as<CatsSimulator>();
  }

  /// Joins nodes one at a time, giving each a slice of virtual time.
  void boot(const std::vector<std::uint64_t>& ids, DurationMs spacing = 300) {
    for (auto id : ids) {
      cats->join(id);
      simulation.run_until(simulation.now() + spacing);
    }
  }

  void settle(DurationMs t) { simulation.run_until(simulation.now() + t); }

  Simulation simulation;
  SimNetworkHubPtr hub;
  Component main;
  CatsSimulator* cats = nullptr;
};

Value val(const std::string& s) { return Value(s.begin(), s.end()); }

// ---- ring convergence --------------------------------------------------------

TEST(CatsRingSim, NodesJoinAndConverge) {
  World w;
  w.boot({10, 20, 30, 40, 50});
  w.settle(8000);
  EXPECT_EQ(w.cats->alive_count(), 5u);
  EXPECT_EQ(w.cats->ready_count(), 5u);

  // Every node's first successor must be the next node clockwise.
  std::vector<std::uint64_t> ids = w.cats->alive_ids();
  std::sort(ids.begin(), ids.end());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const auto& ring = w.cats->node(ids[i]).ring.definition_as<CatsRing>();
    ASSERT_FALSE(ring.successors().empty()) << "node " << ids[i];
    const RingKey expect = CatsSimulator::node_ring_key(ids[(i + 1) % ids.size()]);
    EXPECT_EQ(ring.successors()[0].key, expect) << "node " << ids[i];
    ASSERT_TRUE(ring.has_predecessor()) << "node " << ids[i];
    const RingKey expect_pred =
        CatsSimulator::node_ring_key(ids[(i + ids.size() - 1) % ids.size()]);
    EXPECT_EQ(ring.predecessor().key, expect_pred) << "node " << ids[i];
  }
}

TEST(CatsRingSim, LateJoinerIsAdopted) {
  World w;
  w.boot({100, 200, 300});
  w.settle(6000);
  EXPECT_EQ(w.cats->ready_count(), 3u);

  w.cats->join(250);  // lands between 200 and 300
  w.settle(8000);
  EXPECT_EQ(w.cats->ready_count(), 4u);
  const auto& ring200 = w.cats->node(200).ring.definition_as<CatsRing>();
  EXPECT_EQ(ring200.successors()[0].key, CatsSimulator::node_ring_key(250));
  const auto& ring250 = w.cats->node(250).ring.definition_as<CatsRing>();
  EXPECT_EQ(ring250.successors()[0].key, CatsSimulator::node_ring_key(300));
}

TEST(CatsRingSim, FailureIsDetectedAndRingHeals) {
  World w;
  w.boot({1, 2, 3, 4, 5});
  w.settle(8000);
  ASSERT_EQ(w.cats->ready_count(), 5u);

  w.cats->fail(3);
  w.settle(15000);  // FD timeout + stabilization
  EXPECT_EQ(w.cats->alive_count(), 4u);
  const auto& ring2 = w.cats->node(2).ring.definition_as<CatsRing>();
  EXPECT_EQ(ring2.successors()[0].key, CatsSimulator::node_ring_key(4))
      << "node 2 should route around the failed node 3";
}

// ---- put / get ------------------------------------------------------------------

TEST(CatsStoreSim, PutThenGetFromAnotherNode) {
  World w;
  w.boot({10, 20, 30, 40, 50});
  w.settle(8000);

  w.cats->put(10, hash_to_ring("alpha"), val("v1"));
  w.settle(2000);
  w.cats->get(40, hash_to_ring("alpha"));
  w.settle(2000);

  const auto& h = w.cats->history();
  ASSERT_EQ(h.size(), 2u);
  EXPECT_TRUE(h[0].ok) << "put should complete";
  ASSERT_TRUE(h[1].ok) << "get should complete";
  EXPECT_TRUE(h[1].found);
  EXPECT_EQ(h[1].got_value, val("v1"));
}

TEST(CatsStoreSim, GetOfMissingKeyReturnsNotFound) {
  World w;
  w.boot({10, 20, 30});
  w.settle(8000);
  w.cats->get(20, hash_to_ring("never-written"));
  w.settle(2000);
  const auto& h = w.cats->history();
  ASSERT_EQ(h.size(), 1u);
  EXPECT_TRUE(h[0].ok);
  EXPECT_FALSE(h[0].found);
}

TEST(CatsStoreSim, OverwriteReturnsLatestValue) {
  World w;
  w.boot({10, 20, 30, 40, 50});
  w.settle(8000);
  const RingKey k = hash_to_ring("counter");
  for (int i = 1; i <= 5; ++i) {
    w.cats->put(10 * (1 + (i % 5)), k, val("v" + std::to_string(i)));
    w.settle(1500);
  }
  w.cats->get(30, k);
  w.settle(2000);
  const auto& h = w.cats->history();
  ASSERT_EQ(h.size(), 6u);
  ASSERT_TRUE(h[5].ok);
  EXPECT_EQ(h[5].got_value, val("v5"));
}

// ---- linearizability ---------------------------------------------------------------

TEST(CatsLinearizability, ConcurrentMixedWorkloadIsLinearizable) {
  // Heavy jitter makes message interleavings adversarial; loss forces
  // retries. 5 nodes, replication degree 3, many concurrent ops on few keys.
  // A short op timeout keeps retried operations' windows narrow (and the
  // linearizability search tractable).
  CatsParams params;
  params.op_timeout_ms = 800;
  World w(/*seed=*/77, LinkModel{1, 40, 0.02, false}, params);
  w.boot({11, 22, 33, 44, 55});
  w.settle(10000);
  ASSERT_EQ(w.cats->ready_count(), 5u);

  const std::vector<std::uint64_t> nodes{11, 22, 33, 44, 55};
  const std::vector<RingKey> keys{hash_to_ring("x"), hash_to_ring("y")};
  std::mt19937_64 rng(42);
  int value_counter = 0;
  for (int round = 0; round < 60; ++round) {
    // Launch a small burst of concurrent operations, then let some finish.
    for (int j = 0; j < 3; ++j) {
      const auto node = nodes[rng() % nodes.size()];
      const auto key = keys[rng() % keys.size()];
      if (rng() % 2 == 0) {
        w.cats->put(node, key, val("w" + std::to_string(++value_counter)));
      } else {
        w.cats->get(node, key);
      }
    }
    w.settle(static_cast<DurationMs>(rng() % 120));
  }
  w.settle(20000);  // drain

  const auto& h = w.cats->history();
  std::size_t completed = 0;
  for (const auto& rec : h) completed += rec.responded >= 0 ? 1 : 0;
  EXPECT_GT(completed, h.size() * 3 / 4) << "most operations should complete";

  const auto result = check_history(h);
  EXPECT_TRUE(result.linearizable) << result.explanation;
}

TEST(CatsLinearizability, LinearizableUnderChurn) {
  CatsParams params;
  params.op_timeout_ms = 800;
  World w(/*seed=*/5, LinkModel{1, 10, 0.0, false}, params);
  w.boot({10, 20, 30, 40, 50, 60, 70});
  w.settle(10000);

  const RingKey k = hash_to_ring("churn-key");
  std::mt19937_64 rng(9);
  int vc = 0;
  w.cats->put(10, k, val("v0"));
  w.settle(3000);

  // Interleave ops with a node failure and a fresh join.
  w.cats->put(20, k, val("v" + std::to_string(++vc)));
  w.settle(500);
  w.cats->fail(40);
  w.cats->get(50, k);
  w.settle(2000);
  w.cats->join(45);
  w.cats->put(60, k, val("v" + std::to_string(++vc)));
  w.settle(1000);
  w.cats->get(70, k);
  w.settle(30000);  // let everything (including retries) finish

  const auto result = check_history(w.cats->history());
  EXPECT_TRUE(result.linearizable) << result.explanation;
}

// ---- determinism ---------------------------------------------------------------------

std::vector<std::pair<TimeMs, bool>> run_replay(std::uint64_t seed) {
  CatsParams params;
  params.op_timeout_ms = 800;
  World w(seed, LinkModel{1, 30, 0.1, false}, params);
  w.boot({1, 2, 3, 4, 5, 6});
  w.settle(9000);
  std::mt19937_64 rng(seed);
  for (int i = 0; i < 40; ++i) {
    const auto ids = w.cats->alive_ids();
    const auto node = ids[rng() % ids.size()];
    if (rng() % 2 == 0) {
      w.cats->put(node, hash_to_ring("k" + std::to_string(rng() % 4)), val("v"));
    } else {
      w.cats->get(node, hash_to_ring("k" + std::to_string(rng() % 4)));
    }
    w.settle(static_cast<DurationMs>(rng() % 200));
  }
  w.settle(15000);
  std::vector<std::pair<TimeMs, bool>> trace;
  for (const auto& rec : w.cats->history()) trace.push_back({rec.responded, rec.ok});
  return trace;
}

TEST(CatsDeterminism, IdenticalSeedsReplayIdentically) {
  EXPECT_EQ(run_replay(1234), run_replay(1234));
}

// ---- scenario DSL end-to-end (the paper's §4.4 experiment, scaled down) -------------

TEST(CatsScenario, BootChurnLookupScenarioRuns) {
  World w(/*seed=*/21);
  CatsSimulator* cats = w.cats;
  Simulation& simulation = w.simulation;

  Scenario scenario(21);
  auto boot = scenario.process("boot");
  boot->inter_arrival(Dist::exponential(400))
      .raise(30, [cats](std::uint64_t id) { cats->join(id); }, Dist::uniform_bits(16));
  auto churn = scenario.process("churn");
  churn->inter_arrival(Dist::exponential(500))
      .raise(5, [cats](std::uint64_t id) { cats->join(id); }, Dist::uniform_bits(16))
      .raise(5, [cats](std::uint64_t id) {
        // Fail a *random alive* node: uniform ids rarely hit live ones.
        (void)id;
        if (auto victim = cats->random_alive()) cats->fail(*victim);
      }, Dist::uniform_bits(16));
  auto lookups = scenario.process("lookups");
  lookups->inter_arrival(Dist::normal(50, 10))
      .raise(200,
             [cats](std::uint64_t node, std::uint64_t key) {
               if (auto n = cats->random_alive()) {
                 (void)node;
                 cats->lookup(*n, CatsSimulator::node_ring_key(key % (1 << 14)));
               }
             },
             Dist::uniform_bits(16), Dist::uniform_bits(14));

  scenario.start(boot);
  scenario.start_after_termination_of(2000, boot, churn);
  scenario.start_after_start_of(3000, churn, lookups);
  scenario.terminate_after_termination_of(30000, lookups);
  scenario.run(simulation);

  EXPECT_TRUE(scenario.terminated());
  EXPECT_GE(cats->alive_count(), 20u);
  EXPECT_EQ(cats->ready_count(), cats->alive_count());
  // The lookups (mapped to gets) mostly completed.
  std::size_t done = 0;
  for (const auto& rec : cats->history()) done += rec.responded >= 0 ? 1 : 0;
  EXPECT_GT(done, cats->history().size() * 8 / 10);
}

}  // namespace
}  // namespace kompics::cats::test

namespace kompics::cats::test {
namespace {

// ---- the CatsExperiment port (paper's experiment-command abstraction) --------

TEST(CatsExperimentPort, CommandsDriveTheSimulatorLikeMethodCalls) {
  World w;
  // Drive joins/puts/gets purely through the port, as the paper's
  // NetworkEmulator/ExperimentDriver does.
  auto exp = w.main.definition_as<SimMain>().simulator.provided<CatsExperiment>();
  for (std::uint64_t id : {100, 200, 300}) {
    exp.core->trigger(make_event<ExpJoin>(id));
    w.settle(400);
  }
  w.settle(8000);
  EXPECT_EQ(w.cats->ready_count(), 3u);

  exp.core->trigger(make_event<ExpPut>(100, hash_to_ring("via-port"), val("pv")));
  w.settle(2000);
  exp.core->trigger(make_event<ExpGet>(300, hash_to_ring("via-port")));
  w.settle(2000);
  exp.core->trigger(make_event<ExpFail>(200));
  w.settle(500);
  EXPECT_EQ(w.cats->alive_count(), 2u);

  const auto& h = w.cats->history();
  ASSERT_EQ(h.size(), 2u);
  EXPECT_TRUE(h[0].ok);
  ASSERT_TRUE(h[1].ok);
  EXPECT_EQ(h[1].got_value, val("pv"));
}

}  // namespace
}  // namespace kompics::cats::test
