// White-box tests of the OneHopRouter: responsibility gating on ring views,
// group construction from successor lists, table learning from samples,
// TTL-based eviction of stale entries, greedy forwarding, ring fallback,
// and TTL-hop exhaustion. A harness plays ring + sampling + network.

#include <gtest/gtest.h>

#include "cats/router.hpp"
#include "sim/sim_timer.hpp"
#include "sim/simulation.hpp"

namespace kompics::cats::test {
namespace {

using sim::Simulation;

class Harness : public ComponentDefinition {
 public:
  Harness() {
    subscribe<LookupResponse>(router_, [this](const LookupResponse& r) {
      responses.push_back(r);
    });
    subscribe<RouteLookupMsg>(network_, [this](const RouteLookupMsg& m) {
      forwarded.push_back(m);
    });
    subscribe<LookupResultMsg>(network_, [this](const LookupResultMsg& m) {
      results.push_back(m);
    });
  }

  void view(NodeRef self, bool has_pred, NodeRef pred, std::vector<NodeRef> succs,
            bool sole_member = false) {
    trigger(make_event<RingView>(self, pred, has_pred, std::move(succs), sole_member), ring_);
  }
  void sample(std::vector<NodeRef> nodes) {
    trigger(make_event<NodeSample>(std::move(nodes)), sampling_);
  }
  void lookup(OpId id, RingKey key, std::size_t group) {
    trigger(make_event<LookupRequest>(id, key, group), router_);
  }
  void remote_lookup(Address from, Address to, NodeRef origin, OpId op, RingKey key,
                     std::uint32_t ttl) {
    trigger(make_event<RouteLookupMsg>(from, to, origin, op, key, 3, ttl), network_);
  }
  void inject_result(Address from, Address to, OpId op, RingKey key,
                     std::vector<NodeRef> group, std::uint64_t view_version = 0) {
    trigger(make_event<LookupResultMsg>(from, to, op, key, std::move(group), view_version),
            network_);
  }
  /// Publish an installed quorum view, as the local ABD's view manager does.
  void publish_view(GroupView view) {
    trigger(make_event<ViewUpdate>(std::move(view)), views_);
  }

  Positive<Router> router_ = require<Router>();
  Negative<Ring> ring_ = provide<Ring>();
  Negative<NodeSampling> sampling_ = provide<NodeSampling>();
  Negative<net::Network> network_ = provide<net::Network>();
  Negative<QuorumViews> views_ = provide<QuorumViews>();

  std::vector<LookupResponse> responses;
  std::vector<RouteLookupMsg> forwarded;
  std::vector<LookupResultMsg> results;
};

NodeRef node(std::uint64_t id) { return NodeRef{id << 48, Address::node(static_cast<std::uint32_t>(id))}; }

class World : public ComponentDefinition {
 public:
  explicit World(sim::SimulatorCore* core) {
    self = node(50);
    router = create<OneHopRouter>();
    router.control()->trigger(make_event<OneHopRouter::Init>(self, CatsParams{}));
    harness = create<Harness>();
    timer = create<sim::SimTimer>();
    timer.control()->trigger(make_event<sim::SimTimer::Init>(core));
    connect(router.provided<Router>(), harness.required<Router>());
    connect(router.required<Ring>(), harness.provided<Ring>());
    connect(router.required<NodeSampling>(), harness.provided<NodeSampling>());
    connect(router.required<net::Network>(), harness.provided<net::Network>());
    connect(router.required<QuorumViews>(), harness.provided<QuorumViews>());
    connect(router.required<timing::Timer>(), timer.provided<timing::Timer>());
  }
  Harness& h() { return harness.definition_as<Harness>(); }
  OneHopRouter& r() { return router.definition_as<OneHopRouter>(); }
  NodeRef self;
  Component router, harness, timer;
};

struct RouterFixture : ::testing::Test {
  RouterFixture() : sim(Config{}, 3) {
    main = sim.bootstrap<World>(&sim.core());
    sim.run_until(1);
    world = &main.definition_as<World>();
  }
  void step() { sim.run_until(sim.now() + 1); }
  Simulation sim;
  Component main;
  World* world = nullptr;
};

TEST_F(RouterFixture, NotResponsibleBeforeFirstRingView) {
  // Pre-join lookups must never be answered authoritatively: with no table
  // and no successors, the router reports an empty group (caller retries).
  world->h().lookup(1, 123, 3);
  step();
  ASSERT_EQ(world->h().responses.size(), 1u);
  EXPECT_TRUE(world->h().responses[0].group.empty());
}

TEST_F(RouterFixture, AuthoritativeAnswerUsesRingSuccessorList) {
  // Ring view: pred=40, self=50, succs=60,70,80. Keys in (40,50] are ours.
  world->h().view(world->self, true, node(40), {node(60), node(70), node(80)});
  step();
  world->h().lookup(2, (45ull << 48), 3);
  step();
  ASSERT_EQ(world->h().responses.size(), 1u);
  const auto& g = world->h().responses[0].group;
  ASSERT_EQ(g.size(), 3u);
  EXPECT_EQ(g[0].key, world->self.key) << "responsible node heads the group";
  EXPECT_EQ(g[1].key, node(60).key);
  EXPECT_EQ(g[2].key, node(70).key);
  EXPECT_EQ(world->h().responses[0].view_version, 0u)
      << "a ring-successor fallback answer carries no view version";
}

TEST_F(RouterFixture, AuthoritativeAnswerPrefersInstalledView) {
  world->h().view(world->self, true, node(40), {node(60), node(70), node(80)});
  world->h().publish_view(GroupView{node(40).key, node(50).key, 7,
                                    {world->self, node(60), node(70)}});
  step();
  world->h().lookup(2, (45ull << 48), 3);
  step();
  ASSERT_EQ(world->h().responses.size(), 1u);
  EXPECT_EQ(world->h().responses[0].view_version, 7u)
      << "answers are stamped with the installed view's version";
  ASSERT_EQ(world->h().responses[0].group.size(), 3u);
  EXPECT_EQ(world->h().responses[0].group[0].key, world->self.key);
}

TEST_F(RouterFixture, NewerViewSupersedesCachedOlderOne) {
  world->h().view(world->self, true, node(40), {node(60), node(70)});
  world->h().publish_view(GroupView{node(40).key, node(50).key, 7,
                                    {world->self, node(60), node(70)}});
  // A member change to version 8 drops node(70) for node(80).
  world->h().publish_view(GroupView{node(40).key, node(50).key, 8,
                                    {world->self, node(60), node(80)}});
  step();
  world->h().lookup(3, (45ull << 48), 3);
  step();
  ASSERT_EQ(world->h().responses.size(), 1u);
  EXPECT_EQ(world->h().responses[0].view_version, 8u);
  ASSERT_EQ(world->h().responses[0].group.size(), 3u);
  EXPECT_EQ(world->h().responses[0].group[2].key, node(80).key);
}

TEST_F(RouterFixture, LoneRingIsResponsibleForEverything) {
  world->h().view(world->self, false, NodeRef{}, {}, /*sole_member=*/true);
  step();
  world->h().lookup(3, (7ull << 48), 3);
  step();
  ASSERT_EQ(world->h().responses.size(), 1u);
  ASSERT_EQ(world->h().responses[0].group.size(), 1u);
  EXPECT_EQ(world->h().responses[0].group[0].key, world->self.key);
}

TEST_F(RouterFixture, ForwardsToClosestPrecedingTableEntry) {
  world->h().view(world->self, true, node(40), {node(60)});
  world->h().sample({node(10), node(20), node(30), node(60), node(70)});
  step();
  // Key 25<<48: not ours. Closest preceding candidates are 10 and 20 (and
  // 25 itself is absent); the pick is randomized among the top 3 preceding
  // — all of which precede the key and exclude later nodes.
  world->h().lookup(4, (25ull << 48), 3);
  step();
  ASSERT_EQ(world->h().forwarded.size(), 1u);
  const auto dest = world->h().forwarded[0].destination();
  EXPECT_TRUE(dest == node(10).addr || dest == node(20).addr)
      << "next hop must precede the key";
  EXPECT_EQ(world->h().forwarded[0].op, 4u);
  EXPECT_EQ(world->h().forwarded[0].origin.addr, world->self.addr);
}

TEST_F(RouterFixture, FallsBackToRingSuccessorWithEmptyTable) {
  world->h().view(world->self, true, node(40), {node(60), node(70)});
  step();
  // Key 65<<48 is past us; table empty -> next hop is succ[0].
  world->h().lookup(5, (65ull << 48), 3);
  step();
  ASSERT_EQ(world->h().forwarded.size(), 1u);
  EXPECT_EQ(world->h().forwarded[0].destination(), node(60).addr);
}

TEST_F(RouterFixture, StaleTableEntriesExpire) {
  world->h().view(world->self, true, node(40), {node(60)});
  world->h().sample({node(20)});
  step();
  EXPECT_GE(world->r().table_size(), 1u);
  // Let the entry pass its TTL in virtual time; a lookup then falls back to
  // the ring successor instead of the stale node 20.
  sim.run_until(sim.now() + OneHopRouter::kEntryTtlMs + 1000);
  world->h().lookup(6, (25ull << 48), 3);
  step();
  ASSERT_EQ(world->h().forwarded.size(), 1u);
  EXPECT_EQ(world->h().forwarded[0].destination(), node(60).addr)
      << "expired entries must not be used as hops";
}

TEST_F(RouterFixture, RemoteLookupAnsweredDirectlyToOrigin) {
  world->h().view(world->self, true, node(40), {node(60), node(70)});
  step();
  const NodeRef origin = node(5);
  world->h().remote_lookup(node(20).addr, world->self.addr, origin, 77, (45ull << 48), 8);
  step();
  ASSERT_EQ(world->h().results.size(), 1u);
  EXPECT_EQ(world->h().results[0].destination(), origin.addr);
  EXPECT_EQ(world->h().results[0].op, 77u);
  ASSERT_FALSE(world->h().results[0].group.empty());
  EXPECT_EQ(world->h().results[0].group[0].key, world->self.key);
}

TEST_F(RouterFixture, OrphanedNodeRefusesWholeRingAuthority) {
  // A node that HAD neighbors and lost them all (partition) must not claim
  // the whole ring — that would be split-brain (quorum-of-one writes).
  world->h().view(world->self, true, node(40), {node(60)});
  step();
  world->h().view(world->self, false, NodeRef{}, {}, /*sole_member=*/false);
  step();
  world->h().lookup(42, (45ull << 48), 3);
  step();
  // It may forward to last-known peers (fine) or answer with an empty
  // group; what it must NEVER do is answer authoritatively with itself.
  for (const auto& r : world->h().responses) {
    ASSERT_TRUE(r.group.empty() || r.group[0].addr != world->self.addr)
        << "orphaned node claimed whole-ring authority (split-brain)";
  }
}

TEST_F(RouterFixture, TtlExhaustionDropsTheLookup) {
  world->h().view(world->self, true, node(40), {node(60)});
  step();
  world->h().remote_lookup(node(20).addr, world->self.addr, node(5), 88, (65ull << 48), 0);
  step();
  EXPECT_TRUE(world->h().forwarded.empty()) << "ttl=0 must not be forwarded";
  EXPECT_TRUE(world->h().results.empty());
}

TEST_F(RouterFixture, LookupResultFeedsTableAndAnswersPort) {
  world->h().view(world->self, true, node(40), {node(60)});
  step();
  // Start a relayed lookup: the relay frame parks awaiting the correlated
  // LookupResultMsg (op 99), having forwarded along the ring.
  world->h().lookup(99, (25ull << 48), 3);
  step();
  ASSERT_EQ(world->h().forwarded.size(), 1u);
  const std::size_t before = world->r().table_size();
  world->h().inject_result(node(30).addr, world->self.addr, 99, (25ull << 48),
                           {node(30), node(35)});
  step();
  ASSERT_EQ(world->h().responses.size(), 1u);
  EXPECT_EQ(world->h().responses[0].id, 99u);
  EXPECT_GT(world->r().table_size(), before) << "group members are learned";
}

TEST_F(RouterFixture, UnsolicitedLookupResultIsIgnored) {
  // A result with no matching in-flight relay (e.g. a duplicate delivered
  // after the relay frame timed out and unwound) must not reach the client
  // port or poison the table.
  world->h().view(world->self, true, node(40), {node(60)});
  step();
  const std::size_t before = world->r().table_size();
  world->h().inject_result(node(30).addr, world->self.addr, 123, (25ull << 48),
                           {node(30), node(35)});
  step();
  EXPECT_TRUE(world->h().responses.empty());
  EXPECT_EQ(world->r().table_size(), before);
}

}  // namespace
}  // namespace kompics::cats::test
