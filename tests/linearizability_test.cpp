// Unit tests for the linearizability checker itself — crafted histories
// with known verdicts, including the classic stale-read violation and the
// ambiguity of pending writes.

#include <gtest/gtest.h>

#include "cats/linearizability.hpp"

namespace kompics::cats::test {
namespace {

LinOp put(std::int64_t inv, std::int64_t resp, std::uint32_t v, bool optional = false) {
  LinOp op;
  op.is_put = true;
  op.invoked = inv;
  op.responded = resp;
  op.optional = optional;
  op.value = v;
  return op;
}

LinOp get(std::int64_t inv, std::int64_t resp, std::optional<std::uint32_t> v) {
  LinOp op;
  op.is_put = false;
  op.invoked = inv;
  op.responded = resp;
  op.value = v;
  return op;
}

TEST(LinCheck, EmptyAndTrivialHistories) {
  EXPECT_TRUE(check_register_history({}).linearizable);
  EXPECT_TRUE(check_register_history({put(0, 1, 1)}).linearizable);
  EXPECT_TRUE(check_register_history({get(0, 1, std::nullopt)}).linearizable);
}

TEST(LinCheck, SequentialReadYourWrite) {
  EXPECT_TRUE(check_register_history({put(0, 1, 1), get(2, 3, 1)}).linearizable);
  EXPECT_FALSE(check_register_history({put(0, 1, 1), get(2, 3, std::nullopt)}).linearizable)
      << "reading 'not found' after a completed put is a stale read";
  EXPECT_FALSE(check_register_history({put(0, 1, 1), get(2, 3, 2)}).linearizable)
      << "reading a never-written value is invalid";
}

TEST(LinCheck, ConcurrentReadMayObserveEitherSide) {
  // Get overlaps the put: both old (not found) and new value are legal.
  EXPECT_TRUE(check_register_history({put(0, 10, 1), get(5, 6, 1)}).linearizable);
  EXPECT_TRUE(check_register_history({put(0, 10, 1), get(5, 6, std::nullopt)}).linearizable);
}

TEST(LinCheck, StaleReadAfterNewValueObserved) {
  // Classic violation: g1 sees v2, then g2 (strictly after g1) sees v1.
  const auto h = std::vector<LinOp>{
      put(0, 1, 1),
      put(2, 3, 2),
      get(4, 5, 2),
      get(6, 7, 1),  // stale: 1 was overwritten and already observed as such
  };
  EXPECT_FALSE(check_register_history(h).linearizable);
}

TEST(LinCheck, WriteOrderConstrainedByReads) {
  // Two concurrent puts; reads pin their order: first 1 then 2 is fine...
  EXPECT_TRUE(check_register_history({
                                         put(0, 10, 1),
                                         put(0, 10, 2),
                                         get(11, 12, 2),
                                     })
                  .linearizable);
  // ...but observing 2 then 1 then 2 again is impossible with two puts.
  EXPECT_FALSE(check_register_history({
                                          put(0, 10, 1),
                                          put(0, 10, 2),
                                          get(11, 12, 2),
                                          get(13, 14, 1),
                                          get(15, 16, 2),
                                      })
                   .linearizable);
}

TEST(LinCheck, PendingPutMayOrMayNotTakeEffect) {
  // A put with no response (crashed client): reads may see it or not —
  // but once seen, it cannot be unseen.
  EXPECT_TRUE(check_register_history({
                                         put(0, -1, 1, /*optional=*/true),
                                         get(5, 6, 1),
                                     })
                  .linearizable);
  EXPECT_TRUE(check_register_history({
                                         put(0, -1, 1, /*optional=*/true),
                                         get(5, 6, std::nullopt),
                                     })
                  .linearizable);
  EXPECT_FALSE(check_register_history({
                                          put(0, -1, 1, /*optional=*/true),
                                          get(5, 6, 1),
                                          get(7, 8, std::nullopt),
                                      })
                   .linearizable)
      << "a pending put cannot be observed and then disappear";
}

TEST(LinCheck, RealTimeOrderIsRespected) {
  // p2 starts after p1 completes, so p1 < p2 always; a later read of 1 is
  // stale even though both values were written.
  EXPECT_FALSE(check_register_history({
                                          put(0, 1, 1),
                                          put(2, 3, 2),
                                          get(10, 11, 1),
                                      })
                   .linearizable);
  // If p2 overlaps p1, either final value works.
  EXPECT_TRUE(check_register_history({
                                         put(0, 5, 1),
                                         put(1, 6, 2),
                                         get(10, 11, 1),
                                     })
                  .linearizable);
}

TEST(LinCheck, LongSequentialHistoryIsFast) {
  std::vector<LinOp> h;
  std::int64_t t = 0;
  for (std::uint32_t i = 0; i < 500; ++i) {
    h.push_back(put(t, t + 1, i));
    t += 2;
    h.push_back(get(t, t + 1, i));
    t += 2;
  }
  const auto r = check_register_history(h);
  EXPECT_TRUE(r.linearizable);
  EXPECT_FALSE(r.budget_exceeded);
}

TEST(LinCheck, BudgetExhaustionIsReportedNotWrong) {
  // Pathological: many fully-concurrent puts with no reads — huge search
  // space, low information. A tiny budget must be reported as exceeded.
  std::vector<LinOp> h;
  for (std::uint32_t i = 0; i < 24; ++i) h.push_back(put(0, 1000, i));
  h.push_back(get(2000, 2001, 5));
  const auto r = check_register_history(h, /*max_states=*/10);
  // Either it finishes fast (greedy paths) or reports the budget; it must
  // never claim non-linearizable for this linearizable history.
  if (!r.linearizable) EXPECT_TRUE(r.budget_exceeded);
}

TEST(LinCheck, CheckHistoryIntegration) {
  std::vector<OpRecord> history;
  OpRecord p;
  p.kind = OpRecord::Kind::kPut;
  p.key = 1;
  p.put_value = {1, 2, 3};
  p.invoked = 0;
  p.responded = 1;
  p.ok = true;
  history.push_back(p);
  OpRecord g;
  g.kind = OpRecord::Kind::kGet;
  g.key = 1;
  g.invoked = 2;
  g.responded = 3;
  g.ok = true;
  g.found = true;
  g.got_value = {1, 2, 3};
  history.push_back(g);
  EXPECT_TRUE(check_history(history).linearizable);

  history[1].got_value = {9};  // value never written
  EXPECT_FALSE(check_history(history).linearizable);
}

}  // namespace
}  // namespace kompics::cats::test
