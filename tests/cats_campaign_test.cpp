// Campaign smoke sweep (ISSUE 7): the 50-seed preset that replaces the old
// cats_quorum_sweep_test. Every seed expands deterministically into a fault
// schedule (staggered joins, op volleys, partial partitions with the four
// split families, heals, churn, timer skew, lossy/duplicating/reordering
// links), replays on the simulator, and is checked with the Wing & Gong
// linearizability checker plus the per-component invariant hooks. Failures
// print the exact single-seed repro command.
//
// Runs sequentially (jobs=1) so the same binary is TSan-clean; the parallel
// fork-based sweep path is covered by campaign_shrink_test and exercised at
// scale by scripts/campaign.sh / the nightly lane.

#include <gtest/gtest.h>

#include <sstream>

#include "testkit/campaign.hpp"

namespace kompics::testkit::test {
namespace {

TEST(CatsCampaign, GeneratorIsDeterministic) {
  const FaultSchedule a = generate_schedule(7);
  const FaultSchedule b = generate_schedule(7);
  EXPECT_EQ(to_text(a), to_text(b));
  const FaultSchedule c = generate_schedule(8);
  EXPECT_NE(to_text(a), to_text(c)) << "different seeds must differ";
}

TEST(CatsCampaign, GeneratorProducesRichSchedules) {
  // The shrinker needs real material to cut: every seed must carry joins,
  // workload, and at least one partition/heal cycle.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const FaultSchedule s = generate_schedule(seed);
    EXPECT_GE(s.length(), 20u) << "seed " << seed;
    std::size_t joins = 0, ops = 0, partitions = 0, heals = 0;
    for (const ScheduleEvent& e : s.events) {
      joins += e.kind == ScheduleEvent::Kind::kJoin;
      ops += e.kind == ScheduleEvent::Kind::kPut || e.kind == ScheduleEvent::Kind::kGet;
      partitions += e.kind == ScheduleEvent::Kind::kPartition ||
                    e.kind == ScheduleEvent::Kind::kPartitionOneWay;
      heals += e.kind == ScheduleEvent::Kind::kHeal;
    }
    EXPECT_GE(joins, 4u) << "seed " << seed;
    EXPECT_GE(ops, 10u) << "seed " << seed;
    EXPECT_GE(partitions, 1u) << "seed " << seed;
    EXPECT_EQ(partitions, heals) << "every cut heals (seed " << seed << ")";
    EXPECT_GT(s.horizon, s.events.back().at) << "horizon leaves settle time";
  }
}

TEST(CatsCampaign, GeneratorEmitsOneWayCutsAcrossTheSeedSpace) {
  // ~1/3 of cuts are asymmetric; over 30 seeds both kinds must appear, and
  // every one-way cut must be a well-formed from>to pair. With the knob off,
  // none appear (the PR 6-compatible symmetric-only mode).
  std::size_t oneway = 0, symmetric = 0;
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    for (const ScheduleEvent& e : generate_schedule(seed).events) {
      if (e.kind == ScheduleEvent::Kind::kPartitionOneWay) {
        ++oneway;
        ASSERT_EQ(e.groups.size(), 2u) << "seed " << seed;
        EXPECT_FALSE(e.groups[0].empty());
        EXPECT_FALSE(e.groups[1].empty());
      }
      symmetric += e.kind == ScheduleEvent::Kind::kPartition;
    }
  }
  EXPECT_GE(oneway, 3u);
  EXPECT_GE(symmetric, 10u) << "symmetric cuts must remain the majority";

  GeneratorConfig no_oneway;
  no_oneway.enable_oneway = false;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    for (const ScheduleEvent& e : generate_schedule(seed, no_oneway).events) {
      EXPECT_NE(e.kind, ScheduleEvent::Kind::kPartitionOneWay) << "seed " << seed;
    }
  }
}

TEST(CatsCampaign, OneWayEventsParseAndRoundTrip) {
  const std::string text =
      "catscampaign v1\n"
      "seed 9\n"
      "link 1 5 0 1 0\n"
      "horizon 5000\n"
      "bug 0\n"
      "event oneway 100 3,4>1,2\n"
      "end\n";
  FaultSchedule s;
  std::string error;
  ASSERT_TRUE(parse_schedule_text(text, &s, &error)) << error;
  ASSERT_EQ(s.events.size(), 1u);
  EXPECT_EQ(s.events[0].kind, ScheduleEvent::Kind::kPartitionOneWay);
  ASSERT_EQ(s.events[0].groups.size(), 2u);
  EXPECT_EQ(s.events[0].groups[0], (std::vector<std::uint32_t>{3, 4}));
  EXPECT_EQ(s.events[0].groups[1], (std::vector<std::uint32_t>{1, 2}));
  EXPECT_NE(to_text(s).find("event oneway 100 3,4>1,2"), std::string::npos);

  // A one-way spec without both sides is malformed.
  EXPECT_FALSE(parse_schedule_text(
      "catscampaign v1\nevent oneway 100 3,4\nend\n", &s, &error));
  EXPECT_NE(error.find("oneway"), std::string::npos);
}

TEST(CatsCampaign, SchedulesRoundTripThroughText) {
  for (std::uint64_t seed : {1ull, 3ull, 5ull, 12ull}) {
    const FaultSchedule s = generate_schedule(seed);
    FaultSchedule parsed;
    std::string error;
    ASSERT_TRUE(parse_schedule_text(to_text(s), &parsed, &error)) << error;
    EXPECT_EQ(to_text(parsed), to_text(s)) << "seed " << seed;
  }
}

TEST(CatsCampaign, ParserRejectsMalformedInput) {
  FaultSchedule out;
  std::string error;
  EXPECT_FALSE(parse_schedule_text("not a schedule\n", &out, &error));
  EXPECT_NE(error.find("catscampaign v1"), std::string::npos);

  EXPECT_FALSE(parse_schedule_text("catscampaign v1\nevent warp 5 10\nend\n", &out, &error));
  EXPECT_NE(error.find("unknown event kind"), std::string::npos);
  EXPECT_NE(error.find("line 2"), std::string::npos) << "errors carry line numbers: " << error;

  EXPECT_FALSE(parse_schedule_text("catscampaign v1\nseed 1\n", &out, &error));
  EXPECT_NE(error.find("missing 'end'"), std::string::npos);
}

TEST(CatsCampaign, ReproCommandNamesSeedAndBugFlag) {
  GeneratorConfig gen;
  EXPECT_EQ(seed_repro_command("campaign_runner", 42, gen), "campaign_runner --seed 42");
  gen.inject_stale_view_bug = true;
  EXPECT_EQ(seed_repro_command("campaign_runner", 42, gen),
            "campaign_runner --seed 42 --inject-stale-view-bug");
}

TEST(CatsCampaign, FiftySeedSmokeSweepIsLinearizableWithInvariantsClean) {
  // The smoke preset: same seed count as the retired PR 6 sweep, but every
  // schedule now also carries churn and timer skew, and every run is
  // additionally checked against the component invariants.
  const GeneratorConfig gen;
  const SweepResult sweep = sweep_seeds(1, 50, /*jobs=*/1, gen, default_run_config());
  std::ostringstream all;
  for (const SeedOutcome& f : sweep.failures) {
    all << "seed " << f.seed << ":\n" << f.failure
        << "repro: " << seed_repro_command("campaign_runner", f.seed, gen) << "\n";
  }
  EXPECT_TRUE(sweep.all_passed()) << all.str();
  EXPECT_EQ(sweep.passed, 50u);
}

TEST(CatsCampaign, RunRecordsHistoryAndSteps) {
  const RunResult r = run_schedule(generate_schedule(1), default_run_config());
  EXPECT_TRUE(r.ok) << r.failure;
  EXPECT_GE(r.ops, 10u) << "the workload volleys were applied";
  EXPECT_GT(r.steps, 1000u) << "the simulation actually executed timed actions";
}

}  // namespace
}  // namespace kompics::testkit::test
