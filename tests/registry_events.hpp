#pragma once

// Shared event hierarchy for the event-type-registry tests. Deliberately
// included from TWO translation units (event_registry_test.cpp and
// event_registry_tu2.cpp) to prove that lazy registration hands the same
// class the same TypeId no matter which TU touches it first.

#include "kompics/kompics.hpp"

namespace kompics::test::reg {

// Registered three-level chain: BaseEv -> MidEv -> LeafEv.
class BaseEv : public Event {
  KOMPICS_EVENT(BaseEv, Event);

 public:
  explicit BaseEv(int v = 0) : v(v) {}
  int v;
};

class MidEv : public BaseEv {
  KOMPICS_EVENT(MidEv, BaseEv);

 public:
  using BaseEv::BaseEv;
};

class LeafEv : public MidEv {
  KOMPICS_EVENT(LeafEv, MidEv);

 public:
  using MidEv::MidEv;
};

// Registered sibling branch off BaseEv.
class OtherEv : public BaseEv {
  KOMPICS_EVENT(OtherEv, BaseEv);

 public:
  using BaseEv::BaseEv;
};

// UNREGISTERED subclass of a registered type: reports MidEv's TypeId and
// must still behave exactly like dynamic_cast everywhere.
class PlainLeaf : public MidEv {
 public:
  using MidEv::MidEv;
};

// Fully unregistered chain: both report the root id.
class PlainBase : public Event {
 public:
  explicit PlainBase(int v = 0) : v(v) {}
  int v;
};

class PlainDerived : public PlainBase {
 public:
  using PlainBase::PlainBase;
};

// Registered type whose declared base is unregistered: its registry parent
// collapses to PlainBase's nearest registered ancestor (the root).
class SkipMid : public PlainBase {
  KOMPICS_EVENT(SkipMid, PlainBase);

 public:
  using PlainBase::PlainBase;
};

// TypeIds as observed by the OTHER translation unit.
EventTypeId tu2_base_id();
EventTypeId tu2_mid_id();
EventTypeId tu2_leaf_id();
EventTypeId tu2_skip_mid_id();
bool tu2_event_is_mid(const Event& e);

}  // namespace kompics::test::reg
