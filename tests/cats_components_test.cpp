// Per-component unit tests of the CATS protocols in small, controlled
// simulated worlds: ping failure detector (suspect / restore / adaptive
// timeout), Cyclon (dissemination, bounded cache), bootstrap server
// (registration, sampling, eviction), and the monitoring service.

#include <gtest/gtest.h>

#include "cats/bootstrap.hpp"
#include "cats/cyclon.hpp"
#include "cats/failure_detector.hpp"
#include "cats/monitor.hpp"
#include "sim/network_emulator.hpp"
#include "sim/sim_timer.hpp"
#include "sim/simulation.hpp"

namespace kompics::cats::test {
namespace {

using sim::LinkModel;
using sim::NetworkEmulator;
using sim::SimNetworkHub;
using sim::SimNetworkHubPtr;
using sim::SimTimer;
using sim::Simulation;

// One simulated machine hosting a single protocol component.
template <class Proto>
class Machine : public ComponentDefinition {
 public:
  Machine(Address self, SimNetworkHubPtr hub, sim::SimulatorCore* core) {
    net = create<NetworkEmulator>();
    trigger(make_event<NetworkEmulator::Init>(self, hub), net.control());
    timer = create<SimTimer>();
    trigger(make_event<SimTimer::Init>(core), timer.control());
    proto = create<Proto>();
    // Connect only the abstractions the protocol actually requires.
    if (proto.core()->find_port(std::type_index(typeid(net::Network)), false) != nullptr) {
      connect(proto.template required<net::Network>(), net.template provided<net::Network>());
    }
    if (proto.core()->find_port(std::type_index(typeid(timing::Timer)), false) != nullptr) {
      connect(proto.template required<timing::Timer>(), timer.template provided<timing::Timer>());
    }
  }
  Component net, timer, proto;
};

// ---- ping failure detector ---------------------------------------------------

class FdMain : public ComponentDefinition {
 public:
  FdMain(SimNetworkHubPtr hub, sim::SimulatorCore* core, CatsParams params) {
    a = create<Machine<PingFailureDetector>>(Address::node(1), hub, core);
    b = create<Machine<PingFailureDetector>>(Address::node(2), hub, core);
    a.definition_as<Machine<PingFailureDetector>>().proto.control()->trigger(
        make_event<PingFailureDetector::Init>(Address::node(1), params));
    b.definition_as<Machine<PingFailureDetector>>().proto.control()->trigger(
        make_event<PingFailureDetector::Init>(Address::node(2), params));
    auto fd_a = a.definition_as<Machine<PingFailureDetector>>()
                    .proto.provided<EventuallyPerfectFD>();
    subscribe<Suspect>(fd_a, [this](const Suspect& s) { suspects.push_back(s.node); });
    subscribe<Restore>(fd_a, [this](const Restore& r) { restores.push_back(r.node); });
  }
  void monitor() {
    trigger(make_event<MonitorNode>(Address::node(2)),
            a.definition_as<Machine<PingFailureDetector>>()
                .proto.provided<EventuallyPerfectFD>());
  }
  Component a, b;
  std::vector<Address> suspects, restores;
};

struct FdWorld {
  explicit FdWorld(LinkModel model = LinkModel{1, 2, 0.0, false}) : simulation(Config{}, 11) {
    hub = std::make_shared<SimNetworkHub>(&simulation.core(), 3, model);
    CatsParams params;
    params.fd_ping_period_ms = 100;
    params.fd_initial_timeout_ms = 400;
    params.fd_timeout_increment_ms = 200;
    main = simulation.bootstrap<FdMain>(hub, &simulation.core(), params);
    simulation.run_until(1);
  }
  Simulation simulation;
  SimNetworkHubPtr hub;
  Component main;
};

TEST(FailureDetector, NoSuspicionWhileAlive) {
  FdWorld w;
  w.main.definition_as<FdMain>().monitor();
  w.simulation.run_until(5000);
  EXPECT_TRUE(w.main.definition_as<FdMain>().suspects.empty());
}

TEST(FailureDetector, SuspectsPartitionedNodeAndRestoresAfterHeal) {
  FdWorld w;
  w.main.definition_as<FdMain>().monitor();
  w.simulation.run_until(1000);

  w.hub->partition({{1}, {2}});
  w.simulation.run_until(3000);
  ASSERT_EQ(w.main.definition_as<FdMain>().suspects.size(), 1u);
  EXPECT_EQ(w.main.definition_as<FdMain>().suspects[0], Address::node(2));

  w.hub->heal();
  w.simulation.run_until(6000);
  ASSERT_EQ(w.main.definition_as<FdMain>().restores.size(), 1u);
  EXPECT_EQ(w.main.definition_as<FdMain>().restores[0], Address::node(2));
}

TEST(FailureDetector, TimeoutAdaptsAfterFalseSuspicion) {
  FdWorld w;
  auto& fd_def = w.main.definition_as<FdMain>()
                     .a.definition_as<Machine<PingFailureDetector>>()
                     .proto.definition_as<PingFailureDetector>();
  w.main.definition_as<FdMain>().monitor();
  w.simulation.run_until(1000);

  // Two suspect/restore cycles: the second suspicion must take longer
  // because the timeout grew.
  w.hub->partition({{1}, {2}});
  w.simulation.run_until(3000);
  EXPECT_TRUE(fd_def.is_suspected(Address::node(2)));
  w.hub->heal();
  w.simulation.run_until(6000);
  EXPECT_FALSE(fd_def.is_suspected(Address::node(2)));

  const auto suspected_again_at = [&]() -> TimeMs {
    w.hub->partition({{1}, {2}});
    const TimeMs start = w.simulation.now();
    while (!fd_def.is_suspected(Address::node(2)) && w.simulation.now() < start + 20000) {
      w.simulation.run_until(w.simulation.now() + 50);
    }
    return w.simulation.now() - start;
  }();
  EXPECT_GT(suspected_again_at, 400) << "adapted timeout must exceed the initial 400ms";
}

// ---- Cyclon -------------------------------------------------------------------

class CyclonMain : public ComponentDefinition {
 public:
  CyclonMain(SimNetworkHubPtr hub, sim::SimulatorCore* core, int n, CatsParams params) {
    for (int i = 0; i < n; ++i) {
      machines.push_back(create<Machine<CyclonOverlay>>(Address::node(1 + i), hub, core));
      machines.back().definition_as<Machine<CyclonOverlay>>().proto.control()->trigger(
          make_event<CyclonOverlay::Init>(
              NodeRef{static_cast<RingKey>(i) << 32, Address::node(1 + i)}, params));
    }
  }
  CyclonOverlay& overlay(int i) {
    return machines[static_cast<std::size_t>(i)]
        .definition_as<Machine<CyclonOverlay>>()
        .proto.definition_as<CyclonOverlay>();
  }
  void seed(int i, const std::vector<NodeRef>& contacts) {
    trigger(make_event<SamplingSeed>(
                NodeRef{static_cast<RingKey>(i) << 32, Address::node(1 + i)}, contacts),
            machines[static_cast<std::size_t>(i)]
                .definition_as<Machine<CyclonOverlay>>()
                .proto.provided<NodeSampling>());
  }
  std::vector<Component> machines;
};

TEST(Cyclon, GossipSpreadsMembershipLineTopology) {
  Simulation simulation(Config{}, 17);
  auto hub = std::make_shared<SimNetworkHub>(&simulation.core(), 5, LinkModel{1, 2, 0.0, false});
  CatsParams params;
  params.shuffle_period_ms = 100;
  params.cyclon_cache_size = 12;
  params.cyclon_shuffle_length = 4;
  constexpr int kN = 10;
  auto main = simulation.bootstrap<CyclonMain>(hub, &simulation.core(), kN, params);
  simulation.run_until(1);
  auto& def = main.definition_as<CyclonMain>();

  // Seed a line: node i knows only node i-1. Gossip must spread knowledge.
  for (int i = 1; i < kN; ++i) {
    def.seed(i, {NodeRef{static_cast<RingKey>(i - 1) << 32, Address::node(i)}});
  }
  simulation.run_until(20000);

  for (int i = 0; i < kN; ++i) {
    const auto& cache = def.overlay(i).cache();
    EXPECT_GE(cache.size(), 4u) << "node " << i << " should have discovered several peers";
    EXPECT_LE(cache.size(), params.cyclon_cache_size);
    for (const auto& e : cache) {
      EXPECT_NE(e.node.addr, Address::node(1 + i)) << "cache must not contain self";
    }
  }
}

// ---- bootstrap -------------------------------------------------------------------

class BootMain : public ComponentDefinition {
 public:
  BootMain(SimNetworkHubPtr hub, sim::SimulatorCore* core, CatsParams params) {
    server = create<Machine<BootstrapServer>>(Address::node(1), hub, core);
    server.definition_as<Machine<BootstrapServer>>().proto.control()->trigger(
        make_event<BootstrapServer::Init>(Address::node(1), params));
    for (int i = 0; i < 3; ++i) {
      clients.push_back(create<Machine<BootstrapClient>>(Address::node(10 + i), hub, core));
      clients.back().definition_as<Machine<BootstrapClient>>().proto.control()->trigger(
          make_event<BootstrapClient::Init>(
              NodeRef{static_cast<RingKey>(i), Address::node(10 + i)}, Address::node(1),
              params));
      auto port = clients.back()
                      .definition_as<Machine<BootstrapClient>>()
                      .proto.provided<Bootstrap>();
      subscribe<BootstrapResponse>(port, [this, i](const BootstrapResponse& resp) {
        responses.emplace_back(i, resp.peers.size());
      });
    }
  }
  void request(int i) {
    auto& m = clients[static_cast<std::size_t>(i)].definition_as<Machine<BootstrapClient>>();
    trigger(make_event<BootstrapRequest>(NodeRef{static_cast<RingKey>(i),
                                                 Address::node(10 + i)}),
            m.proto.provided<Bootstrap>());
  }
  void done(int i) {
    auto& m = clients[static_cast<std::size_t>(i)].definition_as<Machine<BootstrapClient>>();
    trigger(make_event<BootstrapDone>(), m.proto.provided<Bootstrap>());
  }
  BootstrapServer& server_def() {
    return server.definition_as<Machine<BootstrapServer>>().proto
        .definition_as<BootstrapServer>();
  }
  Component server;
  std::vector<Component> clients;
  std::vector<std::pair<int, std::size_t>> responses;
};

TEST(Bootstrap, SequentialJoinersLearnAboutEarlierOnes) {
  Simulation simulation(Config{}, 23);
  auto hub = std::make_shared<SimNetworkHub>(&simulation.core(), 9, LinkModel{1, 1, 0.0, false});
  CatsParams params;
  params.keepalive_period_ms = 500;
  params.bootstrap_eviction_ms = 2000;
  auto main = simulation.bootstrap<BootMain>(hub, &simulation.core(), params);
  simulation.run_until(1);
  auto& def = main.definition_as<BootMain>();

  def.request(0);
  simulation.run_until(100);
  def.request(1);
  simulation.run_until(200);
  def.request(2);
  simulation.run_until(300);

  ASSERT_EQ(def.responses.size(), 3u);
  EXPECT_EQ(def.responses[0], std::make_pair(0, std::size_t{0}));  // first: empty world
  EXPECT_EQ(def.responses[1], std::make_pair(1, std::size_t{1}));
  EXPECT_EQ(def.responses[2], std::make_pair(2, std::size_t{2}));
}

TEST(Bootstrap, KeepAlivesPreventEvictionAndSilenceCausesIt) {
  Simulation simulation(Config{}, 23);
  auto hub = std::make_shared<SimNetworkHub>(&simulation.core(), 9, LinkModel{1, 1, 0.0, false});
  CatsParams params;
  params.keepalive_period_ms = 500;
  params.bootstrap_eviction_ms = 2000;
  auto main = simulation.bootstrap<BootMain>(hub, &simulation.core(), params);
  simulation.run_until(1);
  auto& def = main.definition_as<BootMain>();

  def.request(0);
  def.request(1);
  simulation.run_until(100);
  def.done(0);  // node 0 keeps sending keep-alives; node 1 goes silent
  simulation.run_until(10000);
  EXPECT_EQ(def.server_def().alive_count(), 1u)
      << "only the keep-alive sender survives eviction";
  EXPECT_EQ(def.server_def().alive_nodes()[0].addr, Address::node(10));
}

// ---- monitoring ------------------------------------------------------------------

TEST(Monitor, ClientAggregatesStatusAndServerBuildsGlobalView) {
  Simulation simulation(Config{}, 31);
  auto hub = std::make_shared<SimNetworkHub>(&simulation.core(), 2, LinkModel{1, 1, 0.0, false});

  // Assemble by hand: monitor server machine + one client machine whose
  // Status port is served by a failure detector.
  class World : public ComponentDefinition {
   public:
    World(SimNetworkHubPtr hub, sim::SimulatorCore* core) {
      CatsParams params;
      params.monitor_period_ms = 200;
      server = create<Machine<MonitorServer>>(Address::node(1), hub, core);
      server.definition_as<Machine<MonitorServer>>().proto.control()->trigger(
          make_event<MonitorServer::Init>(Address::node(1)));

      client_machine = create<Machine<MonitorClient>>(Address::node(2), hub, core);
      auto& m = client_machine.definition_as<Machine<MonitorClient>>();
      m.proto.control()->trigger(make_event<MonitorClient::Init>(
          NodeRef{42, Address::node(2)}, Address::node(1), params));

      // Status provider: a failure detector inside the same machine scope.
      fd = create<PingFailureDetector>();
      fd.control()->trigger(make_event<PingFailureDetector::Init>(Address::node(2), params));
      connect(fd.required<net::Network>(), m.net.provided<net::Network>());
      connect(fd.required<timing::Timer>(), m.timer.provided<timing::Timer>());
      connect(fd.provided<Status>(), m.proto.required<Status>());
    }
    Component server, client_machine, fd;
  };

  auto main = simulation.bootstrap<World>(hub, &simulation.core());
  simulation.run_until(2000);

  auto& server = main.definition_as<World>()
                     .server.definition_as<Machine<MonitorServer>>()
                     .proto.definition_as<MonitorServer>();
  const auto view = server.global_view();  // snapshot copy
  ASSERT_EQ(view.size(), 1u);
  const auto& report = view.begin()->second;
  EXPECT_EQ(report.node.key, 42u);
  EXPECT_EQ(report.fields.count("PingFailureDetector.monitored"), 1u);

  // The rendered view reports each node's report age; within the default
  // 2000 ms staleness window nothing is flagged.
  const std::string fresh = server.render_text();
  EXPECT_NE(fresh.find("node-2"), std::string::npos);
  EXPECT_NE(fresh.find(" age="), std::string::npos) << fresh;
  EXPECT_EQ(fresh.find("STALE"), std::string::npos) << fresh;

  // Re-arm the server with a zero staleness window: any nonzero age (the
  // last report landed ~100 ms ago mid-round) now flags the node STALE.
  main.definition_as<World>()
      .server.definition_as<Machine<MonitorServer>>()
      .proto.control()
      ->trigger(make_event<MonitorServer::Init>(Address::node(1), /*stale_after_ms=*/0));
  simulation.run_until(2050);
  EXPECT_NE(server.render_text().find("STALE"), std::string::npos);
}

}  // namespace
}  // namespace kompics::cats::test
