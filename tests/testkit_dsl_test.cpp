// Self-tests of the TestKit event-stream DSL (ISSUE 7 satellite): ordering
// of expect/trigger resolution, either-branch selection, unordered sets,
// virtual-time timeout expiry, and — the negative test — that a mismatch
// fails with a readable diff-style message naming both the expectation and
// the observed event. The CUT is a tiny echo component so every test is
// about the DSL itself, not a protocol.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "testkit/event_stream.hpp"
#include "timing/timer_port.hpp"

namespace kompics::testkit::test {
namespace {

class TkPing : public Event {
  KOMPICS_EVENT(TkPing, Event);

 public:
  explicit TkPing(int n, int fanout = 1, DurationMs delay_ms = 0)
      : n(n), fanout(fanout), delay_ms(delay_ms) {}
  int n;
  int fanout;          ///< emit pongs n, n+1, ..., n+fanout-1
  DurationMs delay_ms; ///< > 0: emit via a one-shot timer instead
};

class TkPong : public Event {
  KOMPICS_EVENT(TkPong, Event);

 public:
  explicit TkPong(int n) : n(n) {}
  int n;
};

class EchoPort : public PortType {
 public:
  EchoPort() {
    set_name("TkEcho");
    request<TkPing>();
    indication<TkPong>();
  }
};

/// Answers every TkPing with TkPong(s), immediately or after a timer delay.
class Echo : public ComponentDefinition {
 public:
  Echo() {
    subscribe<TkPing>(echo_, [this](const TkPing& p) {
      if (p.delay_ms > 0) {
        trigger(timing::schedule<DelayedPong>(p.delay_ms, p.n), timer_);
        return;
      }
      for (int i = 0; i < p.fanout; ++i) trigger(make_event<TkPong>(p.n + i), echo_);
    });
    subscribe<DelayedPong>(timer_, [this](const DelayedPong& t) {
      trigger(make_event<TkPong>(t.n), echo_);
    });
  }

 private:
  struct DelayedPong : timing::Timeout {
    DelayedPong(timing::TimeoutId id, int n) : Timeout(id), n(n) {}
    int n;
  };

  Negative<EchoPort> echo_ = provide<EchoPort>();
  Positive<timing::Timer> timer_ = require<timing::Timer>();
};

TestProbe::Build build_echo() {
  return [](TestProbe& p, sim::SimulatorCore&) { return p.make<Echo>(); };
}

TEST(TestKitDsl, ExpectsResolveInTriggerOrder) {
  TestContext ctx(1, build_echo());
  auto echo = ctx.monitor_provided<EchoPort>();

  std::vector<int> got;
  ctx.trigger(echo, make_event<TkPing>(1))
      .trigger(echo, make_event<TkPing>(2))
      .expect<TkPong>(echo, [&](const TkPong& p) { got.push_back(p.n); })
      .expect<TkPong>(echo, [&](const TkPong& p) { return p.n == 2; });
  const Result r = ctx.check();
  EXPECT_TRUE(r.ok) << r.message;
  EXPECT_EQ(got, (std::vector<int>{1}));
  EXPECT_EQ(ctx.buffered(), 0u) << "both pongs were consumed";
}

TEST(TestKitDsl, RepeatExpandsItsBody) {
  TestContext ctx(2, build_echo());
  auto echo = ctx.monitor_provided<EchoPort>();

  std::vector<int> got;
  ctx.trigger(echo, make_event<TkPing>(10, /*fanout=*/3))
      .repeat(3)
      .expect<TkPong>(echo, [&](const TkPong& p) { got.push_back(p.n); })
      .end_repeat();
  const Result r = ctx.check();
  EXPECT_TRUE(r.ok) << r.message;
  EXPECT_EQ(got, (std::vector<int>{10, 11, 12}));
}

TEST(TestKitDsl, EitherRunsTheBranchWhoseHeadMatches) {
  TestContext ctx(3, build_echo());
  auto echo = ctx.monitor_provided<EchoPort>();

  bool took_nine = false, took_seven = false;
  ctx.trigger(echo, make_event<TkPing>(7))
      .either()
      .expect<TkPong>(echo, [](const TkPong& p) { return p.n == 9; })
      .exec([&] { took_nine = true; })
      .or_else()
      .expect<TkPong>(echo, [](const TkPong& p) { return p.n == 7; })
      .exec([&] { took_seven = true; })
      .end_either();
  const Result r = ctx.check();
  EXPECT_TRUE(r.ok) << r.message;
  EXPECT_TRUE(took_seven);
  EXPECT_FALSE(took_nine);
}

TEST(TestKitDsl, UnorderedResolvesRegardlessOfArrivalOrder) {
  TestContext ctx(4, build_echo());
  auto echo = ctx.monitor_provided<EchoPort>();

  // Pongs arrive 1, 2, 3; the set is declared 3, 1, 2.
  std::vector<int> resolved;
  ctx.trigger(echo, make_event<TkPing>(1, /*fanout=*/3))
      .unordered()
      .expect<TkPong>(echo, [&](const TkPong& p) { return p.n == 3 && (resolved.push_back(3), true); })
      .expect<TkPong>(echo, [&](const TkPong& p) { return p.n == 1 && (resolved.push_back(1), true); })
      .expect<TkPong>(echo, [&](const TkPong& p) { return p.n == 2 && (resolved.push_back(2), true); })
      .end_unordered();
  const Result r = ctx.check();
  EXPECT_TRUE(r.ok) << r.message;
  EXPECT_EQ(resolved, (std::vector<int>{1, 2, 3})) << "resolution follows arrival order";
}

TEST(TestKitDsl, ExpectTimesOutInVirtualTime) {
  TestContext ctx(5, build_echo());
  auto echo = ctx.monitor_provided<EchoPort>();
  ctx.attach_sim_timer();

  // The pong is scheduled for t=+2000ms; a 100ms expect must expire first —
  // in virtual time, so the test itself is instant.
  ctx.trigger(echo, make_event<TkPing>(5, 1, /*delay_ms=*/2000))
      .expect_within<TkPong>(100, echo);
  const Result r = ctx.check();
  ASSERT_FALSE(r.ok);
  EXPECT_NE(r.message.find("timeout after 100ms"), std::string::npos) << r.message;
  EXPECT_NE(r.message.find("TkPong"), std::string::npos) << r.message;

  // The context stays usable: the delayed pong is still coming.
  const Result r2 = ctx.expect<TkPong>(echo, [](const TkPong& p) { return p.n == 5; }).check();
  EXPECT_TRUE(r2.ok) << r2.message;
  EXPECT_GE(ctx.now(), 2000) << "resolution advanced the virtual clock to the pong";
}

TEST(TestKitDsl, MismatchFailsWithDiffStyleMessage) {
  TestContext ctx(6, build_echo());
  auto echo = ctx.monitor_provided<EchoPort>();

  ctx.trigger(echo, make_event<TkPing>(7))
      .expect<TkPong>(echo, [](const TkPong& p) { return p.n == 8; });
  const Result r = ctx.check();
  ASSERT_FALSE(r.ok);
  // The message must carry the full diff anatomy: the expectation, the
  // observed head, the predicate hint, and the annotated stream tail.
  EXPECT_NE(r.message.find("expected: TkPong out@TkEcho [predicate]"), std::string::npos)
      << r.message;
  EXPECT_NE(r.message.find("observed: TkPong out@TkEcho"), std::string::npos) << r.message;
  EXPECT_NE(r.message.find("predicate rejected"), std::string::npos) << r.message;
  EXPECT_NE(r.message.find("recent stream"), std::string::npos) << r.message;
  EXPECT_NE(r.message.find("IN  TkPing"), std::string::npos)
      << "the stream tail shows the injected ping too:\n" << r.message;
}

TEST(TestKitDsl, WrongTypeMismatchNamesBothTypes) {
  TestContext ctx(7, build_echo());
  auto echo = ctx.monitor_provided<EchoPort>();

  ctx.trigger(echo, make_event<TkPing>(1)).expect<TkPing>(echo);
  const Result r = ctx.check();
  ASSERT_FALSE(r.ok);
  EXPECT_NE(r.message.find("expected: TkPing"), std::string::npos) << r.message;
  EXPECT_NE(r.message.find("observed: TkPong"), std::string::npos) << r.message;
}

TEST(TestKitDsl, ExpectSilenceFlagsStrayEvents) {
  TestContext ctx(8, build_echo());
  auto echo = ctx.monitor_provided<EchoPort>();

  const Result quiet = ctx.expect_silence(100).check();
  EXPECT_TRUE(quiet.ok) << quiet.message;

  ctx.trigger(echo, make_event<TkPing>(1)).expect_silence(100);
  const Result r = ctx.check();
  ASSERT_FALSE(r.ok);
  EXPECT_NE(r.message.find("expected silence"), std::string::npos) << r.message;
  EXPECT_NE(r.message.find("TkPong"), std::string::npos) << r.message;
}

TEST(TestKitDsl, ForbidFailsTheScriptOnObservation) {
  TestContext ctx(9, build_echo());
  auto echo = ctx.monitor_provided<EchoPort>();

  ctx.forbid<TkPong>(echo);
  ctx.trigger(echo, make_event<TkPing>(3)).settle(50);
  const Result r = ctx.check();
  ASSERT_FALSE(r.ok);
  EXPECT_NE(r.message.find("forbidden event observed"), std::string::npos) << r.message;
}

TEST(TestKitDsl, UnclosedBlockIsAScriptError) {
  TestContext ctx(10, build_echo());
  auto echo = ctx.monitor_provided<EchoPort>();

  ctx.repeat(2).expect<TkPong>(echo);  // no end_repeat()
  const Result r = ctx.check();
  ASSERT_FALSE(r.ok);
  EXPECT_NE(r.message.find("unclosed block"), std::string::npos) << r.message;
}

}  // namespace
}  // namespace kompics::testkit::test
