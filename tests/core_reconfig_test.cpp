// Dynamic reconfiguration (paper §2.6): channel hold/resume/plug/unplug and
// the component-replacement recipe, verified to not drop a single event
// ("Kompics enables the dynamic reconfiguration of the component
// architecture without dropping any of the triggered events").

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "kompics/kompics.hpp"

namespace kompics::test {
namespace {

class Num : public Event {
 public:
  explicit Num(int n) : n(n) {}
  int n;
};

class NumPort : public PortType {
 public:
  NumPort() {
    set_name("NumPort");
    negative<Num>();   // downstream (requests)
    positive<Num>();   // upstream (indications)
  }
};

/// Emits Num(i) for i in [0, n) on demand.
class Source : public ComponentDefinition {
 public:
  Source() = default;
  void emit(int from, int count) {
    for (int i = 0; i < count; ++i) trigger(make_event<Num>(from + i), out_);
  }
  Negative<NumPort> out_ = provide<NumPort>();
};

/// Records every received Num.
class Collector : public ComponentDefinition {
 public:
  Collector() {
    subscribe<Num>(in_, [this](const Num& m) { seen.push_back(m.n); });
  }
  Positive<NumPort> in_ = require<NumPort>();
  std::vector<int> seen;
};

class PairMain : public ComponentDefinition {
 public:
  PairMain() {
    source = create<Source>();
    collector = create<Collector>();
    channel = connect(source.provided<NumPort>(), collector.required<NumPort>());
  }
  Component source, collector;
  ChannelRef channel;
};

std::unique_ptr<Runtime> make_runtime() { return Runtime::threaded(Config{}, 2, 3); }

TEST(Channels, HoldQueuesAndResumeFlushesInFifoOrder) {
  auto rt = make_runtime();
  auto main = rt->bootstrap<PairMain>();
  auto& def = main.definition_as<PairMain>();
  rt->await_quiescence();

  def.channel->hold();
  def.source.definition_as<Source>().emit(0, 50);
  rt->await_quiescence();
  EXPECT_TRUE(def.collector.definition_as<Collector>().seen.empty());
  EXPECT_EQ(def.channel->queued(), 50u);

  def.channel->resume();
  rt->await_quiescence();
  std::vector<int> expect(50);
  std::iota(expect.begin(), expect.end(), 0);
  EXPECT_EQ(def.collector.definition_as<Collector>().seen, expect);
  EXPECT_EQ(def.channel->queued(), 0u);
}

TEST(Channels, HoldQueuesBothDirections) {
  auto rt = make_runtime();
  auto main = rt->bootstrap<PairMain>();
  auto& def = main.definition_as<PairMain>();
  rt->await_quiescence();

  // Subscribe the source to upstream traffic too.
  auto& src = def.source.definition_as<Source>();
  (void)src;
  def.channel->hold();
  def.source.definition_as<Source>().emit(0, 3);
  // Upstream direction: trigger a request from the collector side.
  def.collector.definition_as<Collector>();
  auto* up = def.collector.core()->find_port(std::type_index(typeid(NumPort)), false);
  up->inside->trigger(make_event<Num>(100));
  rt->await_quiescence();
  EXPECT_EQ(def.channel->queued(), 4u);
  def.channel->resume();
  rt->await_quiescence();
  EXPECT_EQ(def.channel->queued(), 0u);
  EXPECT_EQ(def.collector.definition_as<Collector>().seen.size(), 3u);
}

TEST(Channels, UnplugQueuesTowardMissingEndAndPlugRedirects) {
  auto rt = make_runtime();
  auto main = rt->bootstrap<PairMain>();
  auto& def = main.definition_as<PairMain>();
  rt->await_quiescence();

  // Unplug the collector end; traffic toward it must queue, not drop.
  auto* collector_port =
      def.collector.core()->find_port(std::type_index(typeid(NumPort)), false);
  def.channel->unplug(collector_port->outside.get());
  def.source.definition_as<Source>().emit(0, 10);
  rt->await_quiescence();
  EXPECT_TRUE(def.collector.definition_as<Collector>().seen.empty());
  EXPECT_EQ(def.channel->queued(), 10u);

  // Plug into a brand-new collector: the queue flushes there.
  auto fresh = rt->create_component<Collector>(main.core());
  fresh.control()->trigger(make_event<Start>());
  def.channel->plug(
      fresh.core()->find_port(std::type_index(typeid(NumPort)), false)->outside.get());
  rt->await_quiescence();
  std::vector<int> expect(10);
  std::iota(expect.begin(), expect.end(), 0);
  EXPECT_EQ(fresh.definition_as<Collector>().seen, expect);
  EXPECT_TRUE(def.collector.definition_as<Collector>().seen.empty());
}

TEST(Channels, PlugRejectsTypeAndPolarityMismatch) {
  auto rt = make_runtime();
  auto main = rt->bootstrap<PairMain>();
  auto& def = main.definition_as<PairMain>();
  rt->await_quiescence();

  auto* collector_port =
      def.collector.core()->find_port(std::type_index(typeid(NumPort)), false);
  def.channel->unplug(collector_port->outside.get());
  // Same polarity as the remaining (positive) end: must be rejected.
  auto* source_port = def.source.core()->find_port(std::type_index(typeid(NumPort)), true);
  EXPECT_THROW(def.channel->plug(source_port->outside.get()), std::logic_error);
}

TEST(Channels, DisconnectDropsSubsequentTraffic) {
  auto rt = make_runtime();
  auto main = rt->bootstrap<PairMain>();
  auto& def = main.definition_as<PairMain>();
  rt->await_quiescence();

  def.channel->destroy();
  def.source.definition_as<Source>().emit(0, 5);
  rt->await_quiescence();
  EXPECT_TRUE(def.collector.definition_as<Collector>().seen.empty());
  EXPECT_EQ(def.channel->state(), Channel::State::kDead);
}

// ---- full replacement recipe (§2.6) ------------------------------------------

/// A relay that transforms Num(n) -> Num(n + delta) downstream.
class Relay : public ComponentDefinition {
 public:
  struct SetDelta : Init {
    explicit SetDelta(int d) : delta(d) {}
    int delta;
  };

  Relay() {
    subscribe<SetDelta>(control(), [this](const SetDelta& init) { delta_ = init.delta; });
    subscribe<Num>(upstream_, [this](const Num& m) {
      trigger(make_event<Num>(m.n + delta_), downstream_);
    });
  }

  int delta() const { return delta_; }

 private:
  Positive<NumPort> upstream_ = require<NumPort>();
  Negative<NumPort> downstream_ = provide<NumPort>();
  int delta_ = 0;
};

class RelayMain : public ComponentDefinition {
 public:
  RelayMain() {
    source = create<Source>();
    relay = create<Relay>();
    relay.control()->trigger(make_event<Relay::SetDelta>(1000));
    collector = create<Collector>();
    connect(source.provided<NumPort>(), relay.required<NumPort>());
    connect(relay.provided<NumPort>(), collector.required<NumPort>());
  }

  /// Replaces the relay with one carrying a different delta, §2.6-style.
  void swap_relay(int new_delta) {
    relay = replace<Relay>(relay, make_event<Relay::SetDelta>(new_delta));
  }

  Component source, relay, collector;
};

TEST(Reconfiguration, ReplaceRelayLosesNoEvents) {
  auto rt = make_runtime();
  auto main = rt->bootstrap<RelayMain>();
  auto& def = main.definition_as<RelayMain>();
  rt->await_quiescence();

  // Traffic before the swap flows through delta=1000.
  def.source.definition_as<Source>().emit(0, 100);
  rt->await_quiescence();
  ASSERT_EQ(def.collector.definition_as<Collector>().seen.size(), 100u);
  EXPECT_EQ(def.collector.definition_as<Collector>().seen[0], 1000);

  // Swap while idle: all channels are held, unplugged, re-plugged, resumed.
  def.swap_relay(2000);
  rt->await_quiescence();
  EXPECT_EQ(def.relay.definition_as<Relay>().delta(), 2000);

  def.source.definition_as<Source>().emit(100, 100);
  rt->await_quiescence();
  const auto& seen = def.collector.definition_as<Collector>().seen;
  ASSERT_EQ(seen.size(), 200u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(seen[i], 1000 + i);
  for (int i = 100; i < 200; ++i) EXPECT_EQ(seen[i], 2000 + i);
}

TEST(Reconfiguration, ReplaceUnderLiveTrafficDropsNothing) {
  auto rt = make_runtime();
  auto main = rt->bootstrap<RelayMain>();
  auto& def = main.definition_as<RelayMain>();
  rt->await_quiescence();

  // The payload-recovery scheme below (v % 1'000'000) must work no matter
  // which relay incarnation handled an in-flight event — a burst emitted
  // just before a swap may race the Stop and be handled by either the old
  // or the new relay; the protocol only promises exactly-once delivery,
  // not which incarnation does the work. Make the *initial* relay's delta
  // a multiple of 1'000'000 too (the ctor default of 1000 would alias
  // round-0 payloads into round 1's range).
  def.relay.control()->trigger(make_event<Relay::SetDelta>(1'000'000));
  rt->await_quiescence();

  // Interleave bursts with swaps: each swap starts while the burst's events
  // are still in flight (in channels, in the old relay's queues, or mid-
  // handler). Held channels + the Stopped protocol + retire-forwarding must
  // deliver every single one exactly once.
  int emitted = 0;
  for (int round = 0; round < 20; ++round) {
    def.source.definition_as<Source>().emit(round * 1000, 50);
    emitted += 50;
    def.swap_relay(1'000'000 * (round + 2));
    rt->await_quiescence();  // swap protocol completion is counted work
  }

  const auto& seen = def.collector.definition_as<Collector>().seen;
  ASSERT_EQ(seen.size(), static_cast<std::size_t>(emitted));
  // Recover original payloads (delta is a multiple of 1'000'000; payloads
  // are < 20'000) and verify each emitted number arrived exactly once.
  std::vector<int> payloads;
  payloads.reserve(seen.size());
  for (int v : seen) payloads.push_back(v % 1'000'000);
  std::sort(payloads.begin(), payloads.end());
  std::vector<int> expect;
  for (int round = 0; round < 20; ++round) {
    for (int i = 0; i < 50; ++i) expect.push_back(round * 1000 + i);
  }
  std::sort(expect.begin(), expect.end());
  EXPECT_EQ(payloads, expect);
}

}  // namespace
}  // namespace kompics::test

namespace kompics::test {
namespace {

// ---- channel selectors (per-channel event filtering, §2.3) -------------------

TEST(Channels, SelectorFiltersPerChannel) {
  auto rt = make_runtime();
  // One source fanned out to two collectors; a selector on each channel
  // splits the stream by parity — the Java implementation's
  // ChannelSelector mechanism.
  class SplitMain : public ComponentDefinition {
   public:
    SplitMain() {
      source = create<Source>();
      even = create<Collector>();
      odd = create<Collector>();
      auto even_ch = connect(source.provided<NumPort>(), even.required<NumPort>());
      auto odd_ch = connect(source.provided<NumPort>(), odd.required<NumPort>());
      even_ch->set_filter(Direction::kPositive, [](const Event& e) {
        return event_as<Num>(e).n % 2 == 0;
      });
      odd_ch->set_filter(Direction::kPositive, [](const Event& e) {
        return event_as<Num>(e).n % 2 == 1;
      });
    }
    Component source, even, odd;
  };

  auto main = rt->bootstrap<SplitMain>();
  auto& def = main.definition_as<SplitMain>();
  rt->await_quiescence();

  def.source.definition_as<Source>().emit(0, 10);
  rt->await_quiescence();
  EXPECT_EQ(def.even.definition_as<Collector>().seen, (std::vector<int>{0, 2, 4, 6, 8}));
  EXPECT_EQ(def.odd.definition_as<Collector>().seen, (std::vector<int>{1, 3, 5, 7, 9}));
}

TEST(Channels, SelectorClearedResumesFullDelivery) {
  auto rt = make_runtime();
  auto main = rt->bootstrap<PairMain>();
  auto& def = main.definition_as<PairMain>();
  rt->await_quiescence();

  def.channel->set_filter(Direction::kPositive, [](const Event&) { return false; });
  def.source.definition_as<Source>().emit(0, 5);
  rt->await_quiescence();
  EXPECT_TRUE(def.collector.definition_as<Collector>().seen.empty());

  def.channel->set_filter(Direction::kPositive, nullptr);
  def.source.definition_as<Source>().emit(100, 3);
  rt->await_quiescence();
  EXPECT_EQ(def.collector.definition_as<Collector>().seen, (std::vector<int>{100, 101, 102}));
}

}  // namespace
}  // namespace kompics::test
