// Web substrate tests: the embedded HttpServer (Jetty stand-in) bridging a
// raw TCP client to the Web port, and the CatsWebApp status page.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <chrono>
#include <string>
#include <thread>

#include "kompics/kompics.hpp"
#include "timing/thread_timer.hpp"
#include "web/cats_web.hpp"
#include "web/http_server.hpp"

namespace kompics::web::test {
namespace {

/// Minimal blocking HTTP client for the tests.
std::string http_get(std::uint32_t host, std::uint16_t port, const std::string& path) {
  int fd = -1;
  // The accept thread starts asynchronously; retry briefly.
  for (int attempt = 0; attempt < 20; ++attempt) {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(host);
    addr.sin_port = htons(port);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) break;
    ::close(fd);
    fd = -1;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  if (fd < 0) return "";
  const std::string req = "GET " + path + " HTTP/1.0\r\nHost: test\r\n\r\n";
  (void)!::send(fd, req.data(), req.size(), MSG_NOSIGNAL);
  std::string out;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) out.append(buf, static_cast<std::size_t>(n));
  ::close(fd);
  return out;
}

/// Trivial Web application: echoes the request path.
class EchoApp : public ComponentDefinition {
 public:
  EchoApp() {
    subscribe<WebRequest>(web_, [this](const WebRequest& req) {
      ++requests;
      trigger(make_event<WebResponse>(req.id, 200, "text/plain",
                                      "you asked for " + req.path + "?" + req.query),
              web_);
    });
  }
  Negative<Web> web_ = provide<Web>();
  int requests = 0;
};

class EchoMain : public ComponentDefinition {
 public:
  explicit EchoMain(net::Address listen) {
    server = create<HttpServer>();
    server.control()->trigger(make_event<HttpServer::Init>(listen));
    app = create<EchoApp>();
    connect(app.provided<Web>(), server.required<Web>());
  }
  Component server, app;
};

TEST(HttpServer, ServesWebAppResponses) {
  auto rt = Runtime::threaded(Config{}, 2, 1);
  auto main = rt->bootstrap<EchoMain>(net::Address::loopback(0));  // ephemeral port
  rt->await_quiescence();
  auto& server = main.definition_as<EchoMain>().server.definition_as<HttpServer>();
  ASSERT_NE(server.port(), 0);

  const std::string reply = http_get(0x7f000001, server.port(), "/hello?x=1");
  EXPECT_NE(reply.find("200 OK"), std::string::npos);
  EXPECT_NE(reply.find("you asked for /hello?x=1"), std::string::npos);
  // The served counter is bumped by the worker after it closes the socket,
  // so the client can observe EOF slightly before the increment: poll.
  for (int i = 0; i < 100 && server.requests_served() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(server.requests_served(), 1u);
}

TEST(HttpServer, TimesOutWhenAppStaysSilent) {
  class SilentApp : public ComponentDefinition {
   public:
    SilentApp() {
      subscribe<WebRequest>(web_, [](const WebRequest&) { /* never answer */ });
    }
    Negative<Web> web_ = provide<Web>();
  };
  class SilentMain : public ComponentDefinition {
   public:
    explicit SilentMain(net::Address listen) {
      server = create<HttpServer>();
      server.control()->trigger(make_event<HttpServer::Init>(listen, /*timeout=*/100));
      app = create<SilentApp>();
      connect(app.provided<Web>(), server.required<Web>());
    }
    Component server, app;
  };

  auto rt = Runtime::threaded(Config{}, 2, 1);
  auto main = rt->bootstrap<SilentMain>(net::Address::loopback(0));
  rt->await_quiescence();
  auto& server = main.definition_as<SilentMain>().server.definition_as<HttpServer>();
  const std::string reply = http_get(0x7f000001, server.port(), "/");
  EXPECT_NE(reply.find("504"), std::string::npos);
}

// ---- CATS web application ------------------------------------------------------

class FakeStatusProvider : public ComponentDefinition {
 public:
  FakeStatusProvider() {
    subscribe<cats::StatusRequest>(status_, [this](const cats::StatusRequest& req) {
      trigger(make_event<cats::StatusResponse>(
                  req.id, "FakeComponent",
                  std::map<std::string, std::string>{{"answer", "fortytwo"},
                                                     {"ring_epoch", "7"},
                                                     {"views_installed", "3"}}),
              status_);
    });
  }
  Negative<cats::Status> status_ = provide<cats::Status>();
};

class CatsWebMain : public ComponentDefinition {
 public:
  explicit CatsWebMain(net::Address listen) {
    timer = create<timing::ThreadTimer>();
    app = create<CatsWebApp>();
    app.control()->trigger(
        make_event<CatsWebApp::Init>(cats::NodeRef{7, net::Address::node(7)}, 50));
    provider = create<FakeStatusProvider>();
    server = create<HttpServer>();
    server.control()->trigger(make_event<HttpServer::Init>(listen));
    connect(app.required<timing::Timer>(), timer.provided<timing::Timer>());
    connect(provider.provided<cats::Status>(), app.required<cats::Status>());
    connect(app.provided<Web>(), server.required<Web>());
  }
  Component timer, app, provider, server;
};

TEST(CatsWebApp, RendersComponentStatusTables) {
  auto rt = Runtime::threaded(Config{}, 2, 1);
  auto main = rt->bootstrap<CatsWebMain>(net::Address::loopback(0));
  rt->await_quiescence();
  // Give the refresh timer a moment to pull status.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  auto& server = main.definition_as<CatsWebMain>().server.definition_as<HttpServer>();
  const std::string reply = http_get(0x7f000001, server.port(), "/status");
  EXPECT_NE(reply.find("FakeComponent"), std::string::npos);
  EXPECT_NE(reply.find("fortytwo"), std::string::npos);
  EXPECT_NE(reply.find("node-7"), std::string::npos);
}

TEST(CatsWebApp, ServesProtocolCountersAsPrometheusMetrics) {
  auto rt = Runtime::threaded(Config{}, 2, 1);
  auto main = rt->bootstrap<CatsWebMain>(net::Address::loopback(0));
  rt->await_quiescence();
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  auto& server = main.definition_as<CatsWebMain>().server.definition_as<HttpServer>();
  const std::string reply = http_get(0x7f000001, server.port(), "/metrics");
  EXPECT_NE(reply.find("text/plain"), std::string::npos);
  // Numeric status fields become labelled Prometheus samples...
  EXPECT_NE(reply.find("cats_fakecomponent_ring_epoch{node=\"7\"} 7"), std::string::npos)
      << reply;
  EXPECT_NE(reply.find("cats_fakecomponent_views_installed{node=\"7\"} 3"), std::string::npos);
  // ...while string-valued fields stay off the metrics surface.
  EXPECT_EQ(reply.find("fortytwo"), std::string::npos);
}

}  // namespace
}  // namespace kompics::web::test
