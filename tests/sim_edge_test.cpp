// Edge cases of the simulation substrate: tombstoned cancellations, stop()
// from inside actions, virtual-time advancement with empty windows, timer
// cancellation races, emulator self-sends, and the real-time scenario mode.

#include <gtest/gtest.h>

#include <chrono>

#include "net/network_port.hpp"
#include "sim/network_emulator.hpp"
#include "sim/scenario.hpp"
#include "sim/sim_timer.hpp"
#include "sim/simulation.hpp"
#include "timing/timer_port.hpp"

namespace kompics::sim::test {
namespace {

using net::Address;
using net::Message;
using net::Network;

TEST(SimulatorCoreEdge, CancelAfterFireIsHarmless) {
  SimulatorCore core;
  int fired = 0;
  const ActionId a = core.schedule(1, [&] { ++fired; });
  EXPECT_TRUE(core.advance_one());
  core.cancel(a);  // already fired: tombstone must not break anything
  core.schedule(2, [&] { ++fired; });
  EXPECT_TRUE(core.advance_one());
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorCoreEdge, CancelFromInsideAnAction) {
  SimulatorCore core;
  int fired = 0;
  ActionId later = 0;
  core.schedule(1, [&] { core.cancel(later); });
  later = core.schedule(5, [&] { ++fired; });
  while (core.advance_one()) {
  }
  EXPECT_EQ(fired, 0);
}

TEST(SimulatorCoreEdge, AdvanceToMovesTimeWithoutEvents) {
  SimulatorCore core;
  core.advance_to(1000);
  EXPECT_EQ(core.now(), 1000);
  core.advance_to(500);  // never backwards
  EXPECT_EQ(core.now(), 1000);
}

TEST(SimulationEdge, StopFromInsideAnActionHaltsTheLoop) {
  Simulation sim;
  int after_stop = 0;
  sim.core().schedule(10, [&] { sim.stop(); });
  sim.core().schedule(20, [&] { ++after_stop; });
  sim.run();
  EXPECT_EQ(after_stop, 0);
  EXPECT_EQ(sim.now(), 10);
  // The remaining action is still pending and runs if resumed.
  sim.run();
  EXPECT_EQ(after_stop, 1);
}

TEST(SimulationEdge, RunUntilAdvancesClockThroughEmptyWindows) {
  Simulation sim;
  EXPECT_FALSE(sim.run_until(5000)) << "ran dry";
  EXPECT_EQ(sim.now(), 5000) << "virtual time still passes";
  sim.core().schedule(1000, [] {});
  EXPECT_TRUE(sim.run_until(5500));
  EXPECT_EQ(sim.now(), 5500);
}

// ---- SimTimer edges -----------------------------------------------------------

struct Tk : timing::Timeout {
  using Timeout::Timeout;
};

class TimerUser : public ComponentDefinition {
 public:
  TimerUser() {
    subscribe<Tk>(timer_, [this](const Tk&) { ++fired; });
  }
  timing::TimeoutId periodic(DurationMs initial, DurationMs period) {
    auto ev = timing::schedule_periodic<Tk>(initial, period);
    trigger(ev, timer_);
    return ev->timeout_id();
  }
  void cancel(timing::TimeoutId id) {
    trigger(make_event<timing::CancelTimeout>(id), timer_);
  }
  Positive<timing::Timer> timer_ = require<timing::Timer>();
  int fired = 0;
};

class TimerWorld : public ComponentDefinition {
 public:
  explicit TimerWorld(SimulatorCore* core) {
    timer = create<SimTimer>();
    timer.control()->trigger(make_event<SimTimer::Init>(core));
    user = create<TimerUser>();
    connect(timer.provided<timing::Timer>(), user.required<timing::Timer>());
  }
  Component timer, user;
};

TEST(SimTimerEdge, CancelPeriodicBeforeFirstFire) {
  Simulation sim;
  auto main = sim.bootstrap<TimerWorld>(&sim.core());
  sim.run_until(1);
  auto& user = main.definition_as<TimerWorld>().user.definition_as<TimerUser>();
  const auto id = user.periodic(100, 100);
  sim.run_until(50);
  user.cancel(id);
  sim.run_until(2000);
  EXPECT_EQ(user.fired, 0);
}

TEST(SimTimerEdge, ZeroPeriodIsClampedNotInfinite) {
  Simulation sim;
  auto main = sim.bootstrap<TimerWorld>(&sim.core());
  sim.run_until(1);
  auto& user = main.definition_as<TimerWorld>().user.definition_as<TimerUser>();
  const auto id = user.periodic(1, 0);  // degenerate period
  sim.run_until(50);
  user.cancel(id);
  EXPECT_GT(user.fired, 10);
  EXPECT_LT(user.fired, 100) << "a zero period must not create a same-instant livelock";
}

// ---- emulator edges --------------------------------------------------------------

class Echo : public Message {
 public:
  Echo(Address s, Address d, int n) : Message(s, d), n(n) {}
  int n;
};

class SelfSender : public ComponentDefinition {
 public:
  SelfSender() {
    subscribe<Echo>(network_, [this](const Echo& e) { got.push_back(e.n); });
  }
  void send_self(Address self, int n) {
    trigger(make_event<Echo>(self, self, n), network_);
  }
  void send_to(Address self, Address dest, int n) {
    trigger(make_event<Echo>(self, dest, n), network_);
  }
  Positive<Network> network_ = require<Network>();
  std::vector<int> got;
};

TEST(EmulatorEdge, MessageToSelfIsDeliveredThroughTheModel) {
  Simulation sim;
  auto hub = std::make_shared<SimNetworkHub>(&sim.core(), 1, LinkModel{3, 3, 0.0, false});
  class W : public ComponentDefinition {
   public:
    explicit W(SimNetworkHubPtr hub) {
      net = create<NetworkEmulator>();
      net.control()->trigger(make_event<NetworkEmulator::Init>(Address::node(1), hub));
      app = create<SelfSender>();
      connect(net.provided<Network>(), app.required<Network>());
    }
    Component net, app;
  };
  auto main = sim.bootstrap<W>(hub);
  sim.run_until(1);
  main.definition_as<W>().app.definition_as<SelfSender>().send_self(Address::node(1), 5);
  sim.run_until(2);
  EXPECT_TRUE(main.definition_as<W>().app.definition_as<SelfSender>().got.empty())
      << "self-sends also pay the modeled latency";
  sim.run_until(10);
  EXPECT_EQ(main.definition_as<W>().app.definition_as<SelfSender>().got,
            (std::vector<int>{5}));
}

TEST(EmulatorEdge, OneWayPartitionBlocksOnlyTheNamedDirection) {
  Simulation sim;
  auto hub = std::make_shared<SimNetworkHub>(&sim.core(), 1, LinkModel{1, 1, 0.0, false});
  class W : public ComponentDefinition {
   public:
    explicit W(SimNetworkHubPtr hub) {
      for (int i = 0; i < 2; ++i) {
        net[i] = create<NetworkEmulator>();
        net[i].control()->trigger(
            make_event<NetworkEmulator::Init>(Address::node(1 + i), hub));
        app[i] = create<SelfSender>();
        connect(net[i].provided<Network>(), app[i].required<Network>());
      }
    }
    Component net[2], app[2];
  };
  auto main = sim.bootstrap<W>(hub);
  sim.run_until(1);
  auto& w = main.definition_as<W>();
  auto send = [&](int from, int to, int n) {
    w.app[from].definition_as<SelfSender>().send_to(Address::node(1 + from),
                                                    Address::node(1 + to), n);
  };

  // Mute host 1 toward host 2; the reverse direction must still deliver.
  hub->partition_oneway({1}, {2});
  send(0, 1, 10);
  send(1, 0, 20);
  sim.run_until(10);
  EXPECT_TRUE(w.app[1].definition_as<SelfSender>().got.empty())
      << "blocked direction must drop";
  EXPECT_EQ(w.app[0].definition_as<SelfSender>().got, (std::vector<int>{20}))
      << "reverse direction must flow";
  EXPECT_EQ(hub->stats().partitioned, 1u);

  // heal() clears directional rules too.
  hub->heal();
  send(0, 1, 11);
  sim.run_until(20);
  EXPECT_EQ(w.app[1].definition_as<SelfSender>().got, (std::vector<int>{11}));
}

// ---- real-time scenario mode (Fig. 12 right) ---------------------------------------

TEST(ScenarioRealtime, RunsTheSameCompositionOnWallClock) {
  Scenario scenario(5);
  std::vector<int> order;
  auto a = scenario.process("a");
  a->inter_arrival(Dist::constant(5)).raise(3, [&] { order.push_back(1); });
  auto b = scenario.process("b");
  b->inter_arrival(Dist::constant(5)).raise(2, [&] { order.push_back(2); });
  scenario.start(a);
  scenario.start_after_termination_of(5, a, b);
  scenario.terminate_after_termination_of(5, b);

  const auto t0 = std::chrono::steady_clock::now();
  scenario.run_realtime(/*time_scale=*/0.2);  // 5x faster than specified
  const auto wall =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0).count();

  EXPECT_TRUE(scenario.terminated());
  EXPECT_EQ(order, (std::vector<int>{1, 1, 1, 2, 2}));
  // Specified span: 15+10+5 = 30 ms scaled by 0.2 => ~6 ms (generous bound).
  EXPECT_LT(wall, 2000.0);
}

}  // namespace
}  // namespace kompics::sim::test
