// The ConsistentABD coordinator path, rewritten on the TestKit event-stream
// DSL (ISSUE 7 satellite; originals lived in abd_protocol_test.cpp as
// hand-rolled harness tests). The DSL versions assert strictly *more* than
// the originals: the exact emission order of every protocol message enters
// the expectation stream, and the "must not respond yet" checks are real
// timed silence windows instead of point-in-time empty-vector probes.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "cats/abd.hpp"
#include "cats/bootstrap.hpp"
#include "testkit/event_stream.hpp"

namespace kompics::cats::test {
namespace {

using testkit::PortHandle;
using testkit::Result;
using testkit::TestContext;
using testkit::TestProbe;

struct AbdDslTest : ::testing::Test {
  AbdDslTest() {
    CatsParams params;
    params.op_timeout_ms = 1000;
    params.op_max_retries = 2;
    ctx = std::make_unique<TestContext>(9, [this, params](TestProbe& p, sim::SimulatorCore&) {
      Component abd = p.make<ConsistentABD>();
      abd.control()->trigger(make_event<ConsistentABD::Init>(self, params));
      return abd;
    });
    router = ctx->monitor_required<Router>();
    net = ctx->monitor_required<net::Network>();
    putget = ctx->monitor_provided<PutGet>();
    ctx->attach_sim_timer();
  }

  // Replica replies, echoing the phase view as a correct replica does.
  EventPtr read_ack(const AbdReadMsg& to, VersionTag tag, bool exists, Value v, Address from) {
    return make_event<AbdReadAckMsg>(from, to.source(), to.op, to.key, to.view, tag, exists,
                                     std::move(v));
  }
  EventPtr write_ack(const AbdWriteMsg& to, Address from) {
    return make_event<AbdWriteAckMsg>(from, to.source(), to.op, to.key, to.view);
  }
  EventPtr lookup_answer(const LookupRequest& req, std::uint64_t view_version) {
    return make_event<LookupResponse>(req.id, req.key, group, view_version);
  }

  ConsistentABD& abd() { return ctx->cut().definition_as<ConsistentABD>(); }

  NodeRef self{100, Address::node(1)};
  // The coordinator is NOT a group member here — the protocol must not care.
  std::vector<NodeRef> group{NodeRef{10, Address::node(10)}, NodeRef{20, Address::node(20)},
                             NodeRef{30, Address::node(30)}};
  std::unique_ptr<TestContext> ctx;
  PortHandle router, net, putget;
};

TEST_F(AbdDslTest, PutRunsReadThenWritePhaseAndAcksAtQuorum) {
  LookupRequest lookup{0, 0, 0};
  std::vector<AbdReadMsg> reads;
  std::vector<AbdWriteMsg> writes;

  ctx->trigger(putget, make_event<PutRequest>(1, 555, Value{1}))
      .expect<LookupRequest>(router, [&](const LookupRequest& r) { lookup = r; })
      .trigger(router, [&] { return lookup_answer(lookup, 1); })
      // Read phase queries the whole group — exactly three reads, no more.
      .repeat(3)
      .expect<AbdReadMsg>(net, [&](const AbdReadMsg& m) { reads.push_back(m); })
      .end_repeat()
      .exec([&] {
        ASSERT_EQ(reads.size(), 3u);
        EXPECT_EQ(reads[0].view, 1u) << "phases carry the lookup's view version";
      })
      // Two read acks (= quorum of 3) with empty replicas start the write
      // phase; until then the coordinator must emit nothing further.
      .trigger(net, [&] { return read_ack(reads[0], VersionTag{}, false, {}, Address::node(10)); })
      .trigger(net, [&] { return read_ack(reads[1], VersionTag{}, false, {}, Address::node(20)); })
      .repeat(3)
      .expect<AbdWriteMsg>(net, [&](const AbdWriteMsg& m) { writes.push_back(m); })
      .end_repeat()
      .exec([&] {
        ASSERT_EQ(writes.size(), 3u);
        EXPECT_EQ(writes[0].tag.counter, 1u) << "fresh key: counter 0+1";
        EXPECT_TRUE(writes[0].exists);
      })
      .trigger(net, [&] { return write_ack(writes[0], Address::node(10)); })
      .expect_silence(200)  // 1 of 3 is not a quorum: no response may appear
      .trigger(net, [&] { return write_ack(writes[1], Address::node(20)); })
      .expect<PutResponse>(putget, [](const PutResponse& r) { return r.ok && r.id == 1; });

  const Result result = ctx->check();
  EXPECT_TRUE(result.ok) << result.message;
}

TEST_F(AbdDslTest, GetImposesMaxValueBeforeResponding) {
  LookupRequest lookup{0, 0, 0};
  std::vector<AbdReadMsg> reads;
  std::vector<AbdWriteMsg> writes;

  ctx->trigger(putget, make_event<GetRequest>(3, 7))
      .expect<LookupRequest>(router, [&](const LookupRequest& r) { lookup = r; })
      .trigger(router, [&] { return lookup_answer(lookup, 1); })
      .repeat(3)
      .expect<AbdReadMsg>(net, [&](const AbdReadMsg& m) { reads.push_back(m); })
      .end_repeat()
      // Replicas disagree: {3,50}->0xA vs {5,60}->0xB. The get must impose
      // (write back) the max tag/value before answering.
      .trigger(net, [&] {
        return read_ack(reads[0], VersionTag{3, 50}, true, Value{0xA}, Address::node(10));
      })
      .trigger(net, [&] {
        return read_ack(reads[1], VersionTag{5, 60}, true, Value{0xB}, Address::node(20));
      })
      .repeat(3)
      .expect<AbdWriteMsg>(net, [&](const AbdWriteMsg& m) { writes.push_back(m); })
      .end_repeat()
      .exec([&] {
        ASSERT_EQ(writes.size(), 3u);
        EXPECT_EQ(writes[0].tag, (VersionTag{5, 60})) << "impose retransmits the max tag";
        EXPECT_EQ(writes[0].value, Value{0xB});
      })
      .expect_silence(200)  // must not respond before the impose quorum
      .trigger(net, [&] { return write_ack(writes[0], Address::node(10)); })
      .trigger(net, [&] { return write_ack(writes[1], Address::node(20)); })
      .expect<GetResponse>(putget, [](const GetResponse& r) {
        return r.ok && r.found && r.value == Value{0xB};
      });

  const Result result = ctx->check();
  EXPECT_TRUE(result.ok) << result.message;
}

TEST_F(AbdDslTest, DuplicatedAcksFromOneReplicaDoNotCompleteQuorum) {
  // Pre-fix, quorum progress was a raw counter (++acks): duplicated
  // deliveries of one replica's ack (retransmitting transports do that)
  // could "complete" a 2-of-3 quorum with a single replica's answer.
  LookupRequest lookup{0, 0, 0};
  std::vector<AbdReadMsg> reads;
  std::vector<AbdWriteMsg> writes;

  ctx->trigger(putget, make_event<PutRequest>(9, 21, Value{4}))
      .expect<LookupRequest>(router, [&](const LookupRequest& r) { lookup = r; })
      .trigger(router, [&] { return lookup_answer(lookup, 1); })
      .repeat(3)
      .expect<AbdReadMsg>(net, [&](const AbdReadMsg& m) { reads.push_back(m); })
      .end_repeat()
      // Three copies of ONE replica's read ack: not a quorum, so the write
      // phase must not start inside the silence window.
      .trigger(net, [&] { return read_ack(reads[0], VersionTag{}, false, {}, Address::node(10)); })
      .trigger(net, [&] { return read_ack(reads[0], VersionTag{}, false, {}, Address::node(10)); })
      .trigger(net, [&] { return read_ack(reads[0], VersionTag{}, false, {}, Address::node(10)); })
      .expect_silence(150)
      .trigger(net, [&] { return read_ack(reads[1], VersionTag{}, false, {}, Address::node(20)); })
      .repeat(3)
      .expect<AbdWriteMsg>(net, [&](const AbdWriteMsg& m) { writes.push_back(m); })
      .end_repeat()
      // Same for the write phase: duplicated write acks from one replica.
      .trigger(net, [&] { return write_ack(writes[0], Address::node(10)); })
      .trigger(net, [&] { return write_ack(writes[0], Address::node(10)); })
      .expect_silence(150)
      .trigger(net, [&] { return write_ack(writes[1], Address::node(20)); })
      .expect<PutResponse>(putget, [](const PutResponse& r) { return r.ok && r.id == 9; });

  const Result result = ctx->check();
  EXPECT_TRUE(result.ok) << result.message;
}

// ---- a coroutine protocol end-to-end under the DSL -----------------------
//
// The BootstrapClient handshake is a pure protocol.hpp coroutine (open the
// response stream, retransmit every keep-alive period, relay the answer).
// This drives it through the event-stream DSL: the retransmission loop, the
// relay of the first response, idempotence of a second handshake request,
// and the periodic keep-alive frame started by BootstrapDone — each a
// co_await suspension resumed by an injected event or the virtual clock.

TEST(BootstrapDsl, CoroutineHandshakeRetransmitsRelaysAndHeartbeats) {
  CatsParams params;
  params.keepalive_period_ms = 400;
  const NodeRef self{100, Address::node(1)};
  const Address server = Address::node(9);
  TestContext ctx(11, [&](TestProbe& p, sim::SimulatorCore&) {
    Component c = p.make<BootstrapClient>();
    c.control()->trigger(make_event<BootstrapClient::Init>(self, server, params));
    return c;
  });
  const PortHandle net = ctx.monitor_required<net::Network>();
  const PortHandle bootstrap = ctx.monitor_provided<Bootstrap>();
  ctx.attach_sim_timer();

  const std::vector<NodeRef> peers{NodeRef{10, Address::node(10)},
                                   NodeRef{20, Address::node(20)}};
  ctx.trigger(bootstrap, make_event<BootstrapRequest>(self))
      .expect<BootstrapRequestMsg>(net,
                                   [&](const BootstrapRequestMsg& m) {
                                     return m.destination() == server && m.self.key == self.key;
                                   })
      // The server stays silent for one period: the parked frame's timer
      // fires and the loop retransmits.
      .expect<BootstrapRequestMsg>(net)
      // A second BootstrapRequest while the handshake frame is in flight
      // must NOT spawn a second retransmission loop.
      .trigger(bootstrap, make_event<BootstrapRequest>(self))
      .trigger(net, [&] { return make_event<BootstrapResponseMsg>(server, self.addr, peers); })
      .expect<BootstrapResponse>(bootstrap,
                                 [&](const BootstrapResponse& r) { return r.peers.size() == 2; })
      // The frame finished: no stray retransmission (and no duplicate
      // response from the second trigger) inside two full periods.
      .expect_silence(2 * params.keepalive_period_ms)
      // BootstrapDone starts the keep-alive heartbeat coroutine: one beat
      // immediately, then one per period.
      .trigger(bootstrap, make_event<BootstrapDone>())
      .expect<KeepAliveMsg>(net, [&](const KeepAliveMsg& m) { return m.destination() == server; })
      .expect<KeepAliveMsg>(net)
      .expect<KeepAliveMsg>(net);
  const Result result = ctx.check();
  EXPECT_TRUE(result.ok) << result.message;
}

}  // namespace
}  // namespace kompics::cats::test
