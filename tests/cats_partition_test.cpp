// Failure injection: network partitions (the "partitionable" part of §4's
// environment). CATS must fail cleanly — not hang and not lie — while
// partitioned, and recover after healing, with the overall history still
// linearizable.

#include <gtest/gtest.h>

#include "cats/abd.hpp"
#include "cats/cats_simulator.hpp"
#include "cats/linearizability.hpp"
#include "sim/simulation.hpp"

namespace kompics::cats::test {
namespace {

using sim::LinkModel;
using sim::SimNetworkHub;
using sim::SimNetworkHubPtr;
using sim::Simulation;

class SimMain : public ComponentDefinition {
 public:
  SimMain(sim::SimulatorCore* core, SimNetworkHubPtr hub, CatsParams params) {
    simulator = create<CatsSimulator>(core, hub, params);
  }
  Component simulator;
};

struct PartitionWorld {
  PartitionWorld() : simulation(Config{}, 99) {
    hub = std::make_shared<SimNetworkHub>(&simulation.core(), 4, LinkModel{1, 5, 0.0, false});
    CatsParams params;
    params.op_timeout_ms = 600;
    params.op_max_retries = 2;
    params.bootstrap_refresh_ms = 2000;  // fast partition healing for the test
    main = simulation.bootstrap<SimMain>(&simulation.core(), hub, params);
    simulation.run_until(1);
    cats = &main.definition_as<SimMain>().simulator.definition_as<CatsSimulator>();
    for (std::uint64_t id : {10, 20, 30, 40, 50}) {
      cats->join(id);
      simulation.run_until(simulation.now() + 300);
    }
    simulation.run_until(simulation.now() + 8000);
  }
  void settle(DurationMs t) { simulation.run_until(simulation.now() + t); }
  // Hosts as the hub sees them: node id + 2 (CatsSimulator's addressing),
  // host 1 is the bootstrap server.
  static std::uint32_t host(std::uint64_t id) { return static_cast<std::uint32_t>(id) + 2; }

  Simulation simulation;
  SimNetworkHubPtr hub;
  Component main;
  CatsSimulator* cats = nullptr;
};

TEST(CatsPartition, IsolatedCoordinatorFailsCleanlyAndRecovers) {
  PartitionWorld w;
  ASSERT_EQ(w.cats->ready_count(), 5u);
  const RingKey k = hash_to_ring("pk");
  w.cats->put(10, k, Value{1});
  w.settle(2000);
  ASSERT_TRUE(w.cats->history()[0].ok);

  // Cut node 30 off from everyone (including the bootstrap server).
  w.hub->partition({{PartitionWorld::host(30)},
                    {1, PartitionWorld::host(10), PartitionWorld::host(20),
                     PartitionWorld::host(40), PartitionWorld::host(50)}});
  w.cats->put(30, k, Value{2});  // coordinated by the isolated node
  w.settle(5000);                // > timeout * (retries + 1)
  const auto& h = w.cats->history();
  ASSERT_EQ(h.size(), 2u);
  EXPECT_GE(h[1].responded, 0) << "the op must terminate, not hang";
  EXPECT_FALSE(h[1].ok) << "an isolated coordinator cannot reach a quorum";

  // Majority side keeps serving meanwhile.
  w.cats->get(10, k);
  w.settle(2000);
  ASSERT_EQ(w.cats->history().size(), 3u);
  EXPECT_TRUE(w.cats->history()[2].ok);
  EXPECT_EQ(w.cats->history()[2].got_value, Value{1})
      << "the partitioned put must not be visible (it never reached quorum)";

  // Heal; the isolated node re-bootstraps, re-seeds gossip, and merges back.
  w.hub->heal();
  w.settle(15000);
  w.cats->put(30, k, Value{3});
  w.settle(3000);
  w.cats->get(20, k);
  w.settle(2000);
  const auto& h2 = w.cats->history();
  ASSERT_EQ(h2.size(), 5u);
  EXPECT_TRUE(h2[3].ok) << "after healing, the node serves again";
  ASSERT_TRUE(h2[4].ok);
  EXPECT_EQ(h2[4].got_value, Value{3});

  const auto lin = check_history(h2);
  EXPECT_TRUE(lin.linearizable) << lin.explanation;
}

TEST(CatsPartition, PartialPartitionCannotCommitOnBothSides) {
  // The consistent-quorum regression test. Pre-fix, ABD quorums were drawn
  // from whatever successor list each side's ring converged to, so a partial
  // partition let BOTH sides assemble a "quorum" for the same key and commit
  // divergent writes. With versioned views, the key's replica group {10,20,30}
  // splits so that only the {10,20} side retains a majority of the installed
  // view; the {30,40,50} side can never fence that view's majority, so every
  // write it coordinates must fail — there is one view lineage, never two.
  PartitionWorld w;
  const RingKey k = hash_to_ring("qq");
  int vc = 0;
  w.cats->put(10, k, Value{static_cast<std::uint8_t>(++vc)});
  w.settle(2000);
  ASSERT_TRUE(w.cats->history()[0].ok);

  // Partition 2 vs 3 nodes. Let each side's ring converge on itself first —
  // only then does the minority side answer lookups from its own successor
  // list, which is the divergence window the view gate must close.
  w.hub->partition({{PartitionWorld::host(10), PartitionWorld::host(20)},
                    {1, PartitionWorld::host(30), PartitionWorld::host(40),
                     PartitionWorld::host(50)}});
  w.settle(6000);
  w.cats->put(10, k, Value{static_cast<std::uint8_t>(++vc)});
  w.cats->put(40, k, Value{static_cast<std::uint8_t>(++vc)});
  w.cats->get(20, k);
  w.cats->get(50, k);
  w.settle(6000);
  w.hub->heal();
  w.settle(20000);  // re-bootstrap refresh + gossip + stabilization merge
  w.cats->put(30, k, Value{static_cast<std::uint8_t>(++vc)});
  w.settle(3000);
  w.cats->get(10, k);
  w.cats->get(50, k);
  w.settle(5000);

  const auto& h = w.cats->history();
  for (const auto& rec : h) {
    EXPECT_GE(rec.responded, 0) << "operations must terminate";
  }
  // h[1] = put@10 (view-majority side), h[2] = put@40 (minority side). The
  // minority side holds only one member of the installed view, cannot fence
  // its majority, and therefore must NOT commit. Pre-fix this put succeeded
  // against the minority ring's own successor list — the divergent commit.
  EXPECT_FALSE(h[2].ok)
      << "a side without a majority of the installed view committed a write";
  // Post-merge: the healed ring serves again and agrees on one value.
  const auto& read_a = h[h.size() - 2];
  const auto& read_b = h[h.size() - 1];
  ASSERT_TRUE(read_a.ok && read_b.ok) << "post-merge reads must succeed";
  EXPECT_EQ(read_a.got_value, read_b.got_value)
      << "post-merge reads from different coordinators must agree";
  EXPECT_EQ(read_a.got_value, Value{static_cast<std::uint8_t>(vc)})
      << "the post-merge write is the visible value";

  // Zero commits under stale views: the per-node commit counters must match
  // the history exactly. An ack accepted under a mismatched view or counted
  // twice from one replica would commit an operation the (linearizable)
  // history can't account for and break this tally.
  std::uint64_t puts_ok = 0, gets_ok = 0;
  for (std::uint64_t id : {10, 20, 30, 40, 50}) {
    const auto& c = w.cats->node(id).abd.definition_as<ConsistentABD>().counters();
    puts_ok += c.puts_ok;
    gets_ok += c.gets_ok;
  }
  std::uint64_t hist_puts_ok = 0, hist_gets_ok = 0;
  for (const auto& rec : h) {
    if (!rec.ok) continue;
    (rec.kind == OpRecord::Kind::kPut ? hist_puts_ok : hist_gets_ok) += 1;
  }
  EXPECT_EQ(puts_ok, hist_puts_ok);
  EXPECT_EQ(gets_ok, hist_gets_ok);
  const auto lin = check_history(h);
  EXPECT_TRUE(lin.linearizable) << lin.explanation;
}

}  // namespace
}  // namespace kompics::cats::test
