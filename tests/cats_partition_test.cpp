// Failure injection: network partitions (the "partitionable" part of §4's
// environment). CATS must fail cleanly — not hang and not lie — while
// partitioned, and recover after healing, with the overall history still
// linearizable.

#include <gtest/gtest.h>

#include "cats/cats_simulator.hpp"
#include "cats/linearizability.hpp"
#include "sim/simulation.hpp"

namespace kompics::cats::test {
namespace {

using sim::LinkModel;
using sim::SimNetworkHub;
using sim::SimNetworkHubPtr;
using sim::Simulation;

class SimMain : public ComponentDefinition {
 public:
  SimMain(sim::SimulatorCore* core, SimNetworkHubPtr hub, CatsParams params) {
    simulator = create<CatsSimulator>(core, hub, params);
  }
  Component simulator;
};

struct PartitionWorld {
  PartitionWorld() : simulation(Config{}, 99) {
    hub = std::make_shared<SimNetworkHub>(&simulation.core(), 4, LinkModel{1, 5, 0.0, false});
    CatsParams params;
    params.op_timeout_ms = 600;
    params.op_max_retries = 2;
    params.bootstrap_refresh_ms = 2000;  // fast partition healing for the test
    main = simulation.bootstrap<SimMain>(&simulation.core(), hub, params);
    simulation.run_until(1);
    cats = &main.definition_as<SimMain>().simulator.definition_as<CatsSimulator>();
    for (std::uint64_t id : {10, 20, 30, 40, 50}) {
      cats->join(id);
      simulation.run_until(simulation.now() + 300);
    }
    simulation.run_until(simulation.now() + 8000);
  }
  void settle(DurationMs t) { simulation.run_until(simulation.now() + t); }
  // Hosts as the hub sees them: node id + 2 (CatsSimulator's addressing),
  // host 1 is the bootstrap server.
  static std::uint32_t host(std::uint64_t id) { return static_cast<std::uint32_t>(id) + 2; }

  Simulation simulation;
  SimNetworkHubPtr hub;
  Component main;
  CatsSimulator* cats = nullptr;
};

TEST(CatsPartition, IsolatedCoordinatorFailsCleanlyAndRecovers) {
  PartitionWorld w;
  ASSERT_EQ(w.cats->ready_count(), 5u);
  const RingKey k = hash_to_ring("pk");
  w.cats->put(10, k, Value{1});
  w.settle(2000);
  ASSERT_TRUE(w.cats->history()[0].ok);

  // Cut node 30 off from everyone (including the bootstrap server).
  w.hub->partition({{PartitionWorld::host(30)},
                    {1, PartitionWorld::host(10), PartitionWorld::host(20),
                     PartitionWorld::host(40), PartitionWorld::host(50)}});
  w.cats->put(30, k, Value{2});  // coordinated by the isolated node
  w.settle(5000);                // > timeout * (retries + 1)
  const auto& h = w.cats->history();
  ASSERT_EQ(h.size(), 2u);
  EXPECT_GE(h[1].responded, 0) << "the op must terminate, not hang";
  EXPECT_FALSE(h[1].ok) << "an isolated coordinator cannot reach a quorum";

  // Majority side keeps serving meanwhile.
  w.cats->get(10, k);
  w.settle(2000);
  ASSERT_EQ(w.cats->history().size(), 3u);
  EXPECT_TRUE(w.cats->history()[2].ok);
  EXPECT_EQ(w.cats->history()[2].got_value, Value{1})
      << "the partitioned put must not be visible (it never reached quorum)";

  // Heal; the isolated node re-bootstraps, re-seeds gossip, and merges back.
  w.hub->heal();
  w.settle(15000);
  w.cats->put(30, k, Value{3});
  w.settle(3000);
  w.cats->get(20, k);
  w.settle(2000);
  const auto& h2 = w.cats->history();
  ASSERT_EQ(h2.size(), 5u);
  EXPECT_TRUE(h2[3].ok) << "after healing, the node serves again";
  ASSERT_TRUE(h2[4].ok);
  EXPECT_EQ(h2[4].got_value, Value{3});

  const auto lin = check_history(h2);
  EXPECT_TRUE(lin.linearizable) << lin.explanation;
}

TEST(CatsPartition, HistoryAcrossPartitionIsLinearizable) {
  PartitionWorld w;
  const RingKey k = hash_to_ring("qq");
  int vc = 0;
  w.cats->put(10, k, Value{static_cast<std::uint8_t>(++vc)});
  w.settle(2000);

  // Partition 2 vs 3 nodes; fire ops from both sides, heal, fire more.
  w.hub->partition({{PartitionWorld::host(10), PartitionWorld::host(20)},
                    {1, PartitionWorld::host(30), PartitionWorld::host(40),
                     PartitionWorld::host(50)}});
  w.cats->put(10, k, Value{static_cast<std::uint8_t>(++vc)});
  w.cats->put(40, k, Value{static_cast<std::uint8_t>(++vc)});
  w.cats->get(20, k);
  w.cats->get(50, k);
  w.settle(6000);
  w.hub->heal();
  w.settle(20000);  // re-bootstrap refresh + gossip + stabilization merge
  w.cats->put(30, k, Value{static_cast<std::uint8_t>(++vc)});
  w.settle(3000);
  w.cats->get(10, k);
  w.cats->get(50, k);
  w.settle(5000);

  // KNOWN LIMITATION (documented, DESIGN.md): during a partial partition
  // both sides can retain ring quorums and commit divergent writes — the
  // real CATS closes this with consistent quorums [11], which is beyond
  // this reproduction. What we DO guarantee and test: every operation
  // terminates (no hangs), the rings merge after healing, and post-merge
  // reads converge (same value from different coordinators).
  for (const auto& rec : w.cats->history()) {
    EXPECT_GE(rec.responded, 0) << "operations must terminate";
  }
  const auto& h = w.cats->history();
  const auto& read_a = h[h.size() - 2];
  const auto& read_b = h[h.size() - 1];
  ASSERT_TRUE(read_a.ok && read_b.ok) << "post-merge reads must succeed";
  EXPECT_EQ(read_a.got_value, read_b.got_value)
      << "post-merge reads from different coordinators must agree";
  EXPECT_EQ(read_a.got_value, Value{static_cast<std::uint8_t>(vc)})
      << "the post-merge write is the visible value";
}

}  // namespace
}  // namespace kompics::cats::test
