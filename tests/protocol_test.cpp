// Coroutine protocol layer (protocol.hpp, DESIGN.md §9): request/response
// correlation, one-shot next with predicates, buffered streams, timeouts and
// deadlines on the Timer port, when_any/when_all fan-out, nested Proto
// composition, fault escalation, and the halt-cancellation contract (an
// in-flight frame destroyed with its component must cancel its armed
// timeouts — the PR 1 ThreadTimer-leak class).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <stdexcept>
#include <thread>

#include "kompics/kompics.hpp"
#include "kompics/protocol.hpp"
#include "timing/thread_timer.hpp"

namespace kompics::test {
namespace {

using timing::ThreadTimer;
using timing::Timer;

class Ping : public Event {
  KOMPICS_EVENT(Ping, Event);

 public:
  explicit Ping(int id, int replies = 1) : id(id), replies(replies) {}
  int id;
  int replies;
};

class Pong : public Event {
  KOMPICS_EVENT(Pong, Event);

 public:
  explicit Pong(int id) : id(id) {}
  int id;
};

class PingPongPort : public PortType {
 public:
  PingPongPort() {
    set_name("PingPong");
    request<Ping>();
    indication<Pong>();
  }
};

/// Answers Ping(id, n) with Pong(id), Pong(id+1), ..., Pong(id+n-1).
/// With reply_odd false, pings with odd ids are silently dropped (the
/// "server never answers" case for timeout tests).
class PongService : public ComponentDefinition {
 public:
  PongService() {
    subscribe<Ping>(svc_, [this](const Ping& p) {
      if (p.id % 2 != 0 && !reply_odd.load()) return;
      for (int i = 0; i < p.replies; ++i) trigger(make_event<Pong>(p.id + i), svc_);
    });
  }

  void emit(int id) { trigger(make_event<Pong>(id), svc_); }

  Negative<PingPongPort> svc_ = provide<PingPongPort>();
  std::atomic<bool> reply_odd{true};
};

class ProtoClient : public ComponentDefinition {
 public:
  Positive<PingPongPort> svc_ = require<PingPongPort>();
  Positive<Timer> timer_ = require<Timer>();

  std::atomic<int> last{-1};
  std::atomic<int> outcome{0};  // 1 = response, 2 = timeout, 3 = caught child error
  std::atomic<int> sum{0};
  std::atomic<int> done{0};

  protocol::Proto<void> request_once(int id) {
    auto pong =
        co_await svc_.request<Pong>(Ping(id), [id](const Pong& p) { return p.id == id; });
    last.store(pong->id);
    done.fetch_add(1);
  }

  protocol::Proto<void> await_next_matching(int want) {
    auto pong = co_await svc_.next<Pong>([want](const Pong& p) { return p.id == want; });
    last.store(pong->id);
    done.fetch_add(1);
  }

  protocol::Proto<void> request_with_timeout(int id, std::int64_t ms) {
    auto r = co_await protocol::when_any(
        svc_.request<Pong>(Ping(id), [id](const Pong& p) { return p.id == id; }),
        protocol::sleep(timer_, ms));
    if (r.index() == 0) {
      last.store(std::get<0>(r)->id);
      outcome.store(1);
    } else {
      outcome.store(2);
    }
    done.fetch_add(1);
  }

  protocol::Proto<void> request_pair(int a, int b) {
    auto [ra, rb] = co_await protocol::when_all(
        svc_.request<Pong>(Ping(a), [a](const Pong& p) { return p.id == a; }),
        svc_.request<Pong>(Ping(b), [b](const Pong& p) { return p.id == b; }));
    sum.store(ra->id + rb->id);
    done.fetch_add(1);
  }

  protocol::Proto<void> consume_burst(int id, int n) {
    auto pongs = co_await svc_.open<Pong>(
        [id, n](const Pong& p) { return p.id >= id && p.id < id + n; });
    trigger(make_event<Ping>(id, n), svc_);
    int total = 0;
    for (int i = 0; i < n; ++i) {
      auto p = co_await pongs.next();
      total += p->id;
    }
    sum.store(total);
    done.fetch_add(1);
  }

  /// One deadline spanning two request phases (the per-attempt-timeout
  /// shape every retried quorum protocol needs).
  protocol::Proto<void> two_phases_one_deadline(int a, int b, std::int64_t ms) {
    auto deadline = co_await protocol::arm_timer(timer_, ms);
    auto r1 = co_await protocol::when_any(
        svc_.request<Pong>(Ping(a), [a](const Pong& p) { return p.id == a; }),
        deadline.wait());
    if (r1.index() == 1) {
      outcome.store(2);
      done.fetch_add(1);
      co_return;
    }
    auto r2 = co_await protocol::when_any(
        svc_.request<Pong>(Ping(b), [b](const Pong& p) { return p.id == b; }),
        deadline.wait());
    outcome.store(r2.index() == 0 ? 1 : 2);
    done.fetch_add(1);
  }

  protocol::Proto<int> child_fetch(int id) {
    auto pong =
        co_await svc_.request<Pong>(Ping(id), [id](const Pong& p) { return p.id == id; });
    co_return pong->id;
  }

  protocol::Proto<void> nested(int a, int b) {
    int x = co_await child_fetch(a);
    int y = co_await child_fetch(b);
    sum.store(x + y);
    done.fetch_add(1);
  }

  protocol::Proto<int> throwing_child() {
    co_await protocol::sleep(timer_, 5);
    throw std::runtime_error("child failed");
    co_return 0;  // unreachable
  }

  protocol::Proto<void> nested_catch() {
    try {
      (void)co_await throwing_child();
      outcome.store(-1);
    } catch (const std::runtime_error&) {
      outcome.store(3);
    }
    done.fetch_add(1);
  }

  /// Parks on an event that never arrives, with an armed timeout: the
  /// shape destroyed mid-flight by the halt-cancellation tests.
  protocol::Proto<void> park_with_timeout(std::int64_t ms) {
    auto r = co_await protocol::when_any(
        svc_.next<Pong>([](const Pong& p) { return p.id == 999999; }),
        protocol::sleep(timer_, ms));
    (void)r;
    done.fetch_add(1);
  }

  protocol::Proto<void> faulting_frame() {
    co_await protocol::sleep(timer_, 5);
    throw std::runtime_error("frame fault");
  }
};

class ProtoMain : public ComponentDefinition {
 public:
  ProtoMain() {
    timer = create<ThreadTimer>();
    service = create<PongService>();
    client = create<ProtoClient>();
    connect(service.provided<PingPongPort>(), client.required<PingPongPort>());
    connect(timer.provided<Timer>(), client.required<Timer>());
  }
  void kill_client() { destroy(client); }
  Component timer, service, client;
};

struct ProtocolFixture : ::testing::Test {
  void SetUp() override {
    rt = Runtime::threaded(Config{}, 2, 1);
    main = rt->bootstrap<ProtoMain>();
    rt->await_quiescence();
    client = &main.definition_as<ProtoMain>().client.definition_as<ProtoClient>();
    service = &main.definition_as<ProtoMain>().service.definition_as<PongService>();
    timer = &main.definition_as<ProtoMain>().timer.definition_as<ThreadTimer>();
  }
  void wait_until(std::function<bool()> cond, int ms_budget) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(ms_budget);
    while (!cond() && std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }
  std::size_t live_frames() const {
    auto* host = client->protocol_host();
    return host == nullptr ? 0 : host->live_frame_count();
  }

  std::unique_ptr<Runtime> rt;
  Component main;
  ProtoClient* client = nullptr;
  PongService* service = nullptr;
  ThreadTimer* timer = nullptr;
};

TEST_F(ProtocolFixture, RequestResponseRoundTrip) {
  protocol::spawn(client->request_once(4));
  wait_until([&] { return client->done.load() >= 1; }, 2000);
  EXPECT_EQ(client->done.load(), 1);
  EXPECT_EQ(client->last.load(), 4);
  rt->await_quiescence();
  EXPECT_EQ(live_frames(), 0u) << "completed frame must retire";
}

TEST_F(ProtocolFixture, NextWithPredicateSkipsNonMatching) {
  protocol::spawn(client->await_next_matching(5));
  EXPECT_EQ(live_frames(), 1u) << "frame must be live after spawn returns";
  // spawn() from a test thread defers the frame's first segment onto the
  // component's work queue; quiesce so its subscription is registered
  // before the pongs fly (events with no matching subscription are dropped).
  rt->await_quiescence();
  service->emit(3);
  service->emit(4);
  service->emit(5);
  wait_until([&] { return client->done.load() >= 1; }, 2000);
  EXPECT_EQ(client->last.load(), 5);
  rt->await_quiescence();
  EXPECT_EQ(live_frames(), 0u);
}

TEST_F(ProtocolFixture, WhenAnyTimesOutWhenServiceStaysSilent) {
  service->reply_odd.store(false);
  protocol::spawn(client->request_with_timeout(3, 40));
  wait_until([&] { return client->done.load() >= 1; }, 3000);
  EXPECT_EQ(client->outcome.load(), 2);
  // The fired timeout must leave no bookkeeping behind.
  wait_until([&] { return timer->armed_timeouts() == 0; }, 2000);
  EXPECT_EQ(timer->armed_timeouts(), 0u);
}

TEST_F(ProtocolFixture, WhenAnyWinnerCancelsLosingTimeout) {
  protocol::spawn(client->request_with_timeout(4, 1500));
  wait_until([&] { return client->done.load() >= 1; }, 2000);
  EXPECT_EQ(client->outcome.load(), 1);
  EXPECT_EQ(client->last.load(), 4);
  // The losing sleep must be cancelled through the Timer port, not left to
  // fire into a dead subscription (PR 1 leak class). ThreadTimer records
  // the cancel and consumes the entry at its deadline, so: first the
  // cancel is visible, then the bookkeeping drains completely.
  wait_until([&] { return timer->pending_cancellations() == 1; }, 1000);
  EXPECT_EQ(timer->pending_cancellations(), 1u) << "loser timeout was not cancelled";
  wait_until(
      [&] { return timer->armed_timeouts() == 0 && timer->pending_cancellations() == 0; },
      4000);
  EXPECT_EQ(timer->armed_timeouts(), 0u) << "loser timeout left armed";
  EXPECT_EQ(timer->pending_cancellations(), 0u);
}

TEST_F(ProtocolFixture, WhenAllCollectsEveryArm) {
  protocol::spawn(client->request_pair(2, 8));
  wait_until([&] { return client->done.load() >= 1; }, 2000);
  EXPECT_EQ(client->sum.load(), 10);
}

TEST_F(ProtocolFixture, StreamBuffersBurstAcrossSuspensions) {
  // 50 responses arrive in one burst while the frame is parked; the open
  // stream must hand over every single one (the quorum-collection property).
  protocol::spawn(client->consume_burst(100, 50));
  wait_until([&] { return client->done.load() >= 1; }, 3000);
  int expected = 0;
  for (int i = 100; i < 150; ++i) expected += i;
  EXPECT_EQ(client->sum.load(), expected);
}

TEST_F(ProtocolFixture, ArmedDeadlineSpansPhasesAndCancelsOnDrop) {
  protocol::spawn(client->two_phases_one_deadline(2, 4, 1500));
  wait_until([&] { return client->done.load() >= 1; }, 2000);
  EXPECT_EQ(client->outcome.load(), 1);
  // Deadline never fired; ArmedTimer destruction must cancel it.
  wait_until([&] { return timer->pending_cancellations() == 1; }, 1000);
  EXPECT_EQ(timer->pending_cancellations(), 1u) << "dropped deadline was not cancelled";
  wait_until(
      [&] { return timer->armed_timeouts() == 0 && timer->pending_cancellations() == 0; },
      4000);
  EXPECT_EQ(timer->armed_timeouts(), 0u) << "unfired deadline left armed";
}

TEST_F(ProtocolFixture, ArmedDeadlineFiresAcrossPhases) {
  service->reply_odd.store(false);
  protocol::spawn(client->two_phases_one_deadline(3, 5, 50));
  wait_until([&] { return client->done.load() >= 1; }, 3000);
  EXPECT_EQ(client->outcome.load(), 2);
}

TEST_F(ProtocolFixture, NestedProtoChildrenComposeOnOneFrame) {
  protocol::spawn(client->nested(10, 20));
  wait_until([&] { return client->done.load() >= 1; }, 2000);
  EXPECT_EQ(client->sum.load(), 30);
  rt->await_quiescence();
  EXPECT_EQ(live_frames(), 0u);
}

TEST_F(ProtocolFixture, ChildExceptionPropagatesToAwaitingParent) {
  protocol::spawn(client->nested_catch());
  wait_until([&] { return client->done.load() >= 1; }, 2000);
  EXPECT_EQ(client->outcome.load(), 3);
}

TEST_F(ProtocolFixture, LiveFrameAccountingTracksParkedFrames) {
  protocol::spawn(client->await_next_matching(201));
  protocol::spawn(client->await_next_matching(202));
  protocol::spawn(client->await_next_matching(203));
  EXPECT_EQ(live_frames(), 3u);
  rt->await_quiescence();  // all three subscriptions registered before any emit
  service->emit(202);
  wait_until([&] { return client->done.load() >= 1; }, 2000);
  rt->await_quiescence();
  EXPECT_EQ(live_frames(), 2u);
  service->emit(201);
  service->emit(203);
  wait_until([&] { return client->done.load() >= 3; }, 2000);
  rt->await_quiescence();
  EXPECT_EQ(live_frames(), 0u);
}

// ---- halt cancellation (ISSUE 8 satellite: timer leak regression) ----------

TEST_F(ProtocolFixture, DestroyCancelsParkedFrameAndItsArmedTimeout) {
  protocol::spawn(client->park_with_timeout(1500));
  rt->await_quiescence();
  EXPECT_EQ(live_frames(), 1u);
  wait_until([&] { return timer->armed_timeouts() >= 1; }, 2000);
  ASSERT_GE(timer->armed_timeouts(), 1u);

  // Destroying the component mid-await must cancel the armed timeout via
  // the Timer port while channels are still attached: the cancel becomes
  // visible, then heap and cancellation set both drain at the deadline.
  // The frame itself is destroyed, never resumed, with no use-after-free
  // (ASan) or race (TSan).
  main.definition_as<ProtoMain>().kill_client();
  client = nullptr;  // dangling after destroy
  wait_until([&] { return timer->pending_cancellations() == 1; }, 1000);
  EXPECT_EQ(timer->pending_cancellations(), 1u)
      << "destroy did not cancel the frame's armed timeout";
  wait_until(
      [&] { return timer->armed_timeouts() == 0 && timer->pending_cancellations() == 0; },
      4000);
  EXPECT_EQ(timer->armed_timeouts(), 0u) << "halt leaked the frame's armed timeout";
  EXPECT_EQ(timer->pending_cancellations(), 0u);
}

// ---- fault escalation -------------------------------------------------------

class FaultMain : public ComponentDefinition {
 public:
  FaultMain() {
    timer = create<ThreadTimer>();
    service = create<PongService>();
    client = create<ProtoClient>();
    connect(service.provided<PingPongPort>(), client.required<PingPongPort>());
    connect(timer.provided<Timer>(), client.required<Timer>());
    subscribe<Fault>(client.control(), [this](const Fault& f) {
      last_fault = f.what();
      faults.fetch_add(1);  // release: publishes last_fault to the test thread
    });
  }
  Component timer, service, client;
  std::string last_fault;
  std::atomic<int> faults{0};
};

TEST(ProtocolFaults, FrameExceptionEscalatesLikeHandlerFault) {
  auto rt = Runtime::threaded(Config{}, 2, 1);
  auto main = rt->bootstrap<FaultMain>();
  rt->await_quiescence();
  auto& m = main.definition_as<FaultMain>();

  protocol::spawn(m.client.definition_as<ProtoClient>().faulting_frame());
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(3);
  while (m.faults.load() < 1 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_EQ(m.faults.load(), 1);
  EXPECT_EQ(m.last_fault, "frame fault");
  EXPECT_FALSE(rt->faulted()) << "supervised frame fault must not reach the top";
}

}  // namespace
}  // namespace kompics::test
