// API-contract tests: the runtime must reject malformed architectures with
// clear errors (port type/polarity mismatches, duplicate ports, missing
// ports) rather than silently mis-wiring — paper §2.1's "a subscription is
// allowed only if..." style rules, enforced at the C++ API boundary.

#include <gtest/gtest.h>

#include "kompics/kompics.hpp"

namespace kompics::test {
namespace {

class EvA : public Event {};
class EvB : public Event {};

class PortA : public PortType {
 public:
  PortA() {
    set_name("PortA");
    negative<EvA>();
    positive<EvA>();
  }
};

class PortB : public PortType {
 public:
  PortB() {
    set_name("PortB");
    negative<EvB>();
  }
};

class ProviderA : public ComponentDefinition {
 public:
  Negative<PortA> a = provide<PortA>();
};
class RequirerA : public ComponentDefinition {
 public:
  Positive<PortA> a = require<PortA>();
};
class RequirerB : public ComponentDefinition {
 public:
  Positive<PortB> b = require<PortB>();
};

class Empty : public ComponentDefinition {};

TEST(ApiContract, ConnectRejectsTypeMismatch) {
  class Main : public ComponentDefinition {
   public:
    Main() {
      auto p = create<ProviderA>();
      auto r = create<RequirerB>();
      // Untyped connect with mismatched port types must throw.
      EXPECT_THROW(
          connect(p.core()->find_port(std::type_index(typeid(PortA)), true)->outside.get(),
                  r.core()->find_port(std::type_index(typeid(PortB)), false)->outside.get()),
          std::logic_error);
    }
  };
  auto rt = Runtime::threaded(Config{}, 1, 1);
  rt->bootstrap<Main>();
  rt->await_quiescence();
}

TEST(ApiContract, ConnectRejectsSamePolarity) {
  class Main : public ComponentDefinition {
   public:
    Main() {
      auto p1 = create<ProviderA>();
      auto p2 = create<ProviderA>();
      EXPECT_THROW(
          connect(p1.core()->find_port(std::type_index(typeid(PortA)), true)->outside.get(),
                  p2.core()->find_port(std::type_index(typeid(PortA)), true)->outside.get()),
          std::logic_error);
    }
  };
  auto rt = Runtime::threaded(Config{}, 1, 1);
  rt->bootstrap<Main>();
  rt->await_quiescence();
}

TEST(ApiContract, DuplicatePortDeclarationThrows) {
  class Doubled : public ComponentDefinition {
   public:
    Doubled() {
      provide<PortA>();
      EXPECT_THROW(provide<PortA>(), std::logic_error);
      // A required port of the same type is a different (type, kind) and OK.
      EXPECT_NO_THROW(require<PortA>());
    }
  };
  class Main : public ComponentDefinition {
   public:
    Main() { create<Doubled>(); }
  };
  auto rt = Runtime::threaded(Config{}, 1, 1);
  rt->bootstrap<Main>();
  rt->await_quiescence();
}

TEST(ApiContract, MissingPortAccessThrows) {
  class Main : public ComponentDefinition {
   public:
    Main() { child = create<Empty>(); }
    Component child;
  };
  auto rt = Runtime::threaded(Config{}, 1, 1);
  auto main = rt->bootstrap<Main>();
  rt->await_quiescence();
  EXPECT_THROW(main.definition_as<Main>().child.provided<PortA>(), std::logic_error);
  EXPECT_THROW(main.definition_as<Main>().child.required<PortA>(), std::logic_error);
}

TEST(ApiContract, DefinitionTypeMismatchThrows) {
  class Main : public ComponentDefinition {
   public:
    Main() { child = create<Empty>(); }
    Component child;
  };
  auto rt = Runtime::threaded(Config{}, 1, 1);
  auto main = rt->bootstrap<Main>();
  rt->await_quiescence();
  EXPECT_THROW(main.definition_as<Main>().child.definition_as<ProviderA>(), std::logic_error);
  EXPECT_NO_THROW(main.definition_as<Main>().child.definition_as<Empty>());
}

TEST(ApiContract, ComponentDefinitionOutsideRuntimeThrows) {
  EXPECT_THROW(ProviderA{}, std::logic_error);
}

TEST(ApiContract, TriggerNullEventThrows) {
  class Main : public ComponentDefinition {
   public:
    Main() { child = create<ProviderA>(); }
    Component child;
  };
  auto rt = Runtime::threaded(Config{}, 1, 1);
  auto main = rt->bootstrap<Main>();
  rt->await_quiescence();
  EXPECT_THROW(main.definition_as<Main>().child.provided<PortA>().core->trigger(nullptr),
               std::invalid_argument);
}

TEST(ApiContract, ConfigTypedAccess) {
  Config cfg;
  cfg.set("name", std::string("cats"));
  cfg.set("workers", std::int64_t{8});
  cfg.set("ratio", 0.5);
  cfg.set("verbose", true);
  EXPECT_EQ(cfg.get<std::string>("name"), "cats");
  EXPECT_EQ(cfg.get<std::int64_t>("workers"), 8);
  EXPECT_EQ(cfg.get<double>("ratio"), 0.5);
  EXPECT_EQ(cfg.get<bool>("verbose"), true);
  EXPECT_FALSE(cfg.get<std::int64_t>("name").has_value()) << "type mismatch yields nullopt";
  EXPECT_FALSE(cfg.get<bool>("missing").has_value());
  EXPECT_EQ(cfg.get_or<std::int64_t>("missing", 42), 42);
  EXPECT_THROW(cfg.require_value<bool>("missing"), std::out_of_range);
  EXPECT_TRUE(cfg.contains("ratio"));
}

}  // namespace
}  // namespace kompics::test
