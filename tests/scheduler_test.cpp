// Execution-model tests (paper §3): lock-free MPSC work queues, mutual
// exclusion of a component's handlers under the multi-core scheduler, work
// stealing, and runtime quiescence accounting.

#include <gtest/gtest.h>

#include <atomic>
#include <deque>
#include <thread>
#include <vector>

#include "kompics/kompics.hpp"
#include "kompics/mpsc_queue.hpp"
#include "kompics/work_stealing_scheduler.hpp"

namespace kompics::test {
namespace {

// ---- MPSC queue -------------------------------------------------------------

struct Node {
  std::atomic<Node*> next{nullptr};
  int producer = 0;
  int seq = 0;
};

TEST(MpscQueue, SingleThreadFifo) {
  MpscQueue<Node> q;
  std::vector<Node> nodes(100);
  for (int i = 0; i < 100; ++i) {
    nodes[i].seq = i;
    q.push(&nodes[i]);
  }
  for (int i = 0; i < 100; ++i) {
    Node* n = q.pop();
    ASSERT_NE(n, nullptr);
    EXPECT_EQ(n->seq, i);
  }
  EXPECT_EQ(q.pop(), nullptr);
  EXPECT_TRUE(q.empty());
}

TEST(MpscQueue, MultiProducerDeliversEverythingInPerProducerOrder) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 20000;
  MpscQueue<Node> q;
  // deque: nodes contain atomics (immovable), and deque never relocates.
  std::deque<Node> storage(kProducers * kPerProducer);

  std::atomic<bool> go{false};
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      while (!go.load()) std::this_thread::yield();
      for (int i = 0; i < kPerProducer; ++i) {
        Node& n = storage[static_cast<std::size_t>(p * kPerProducer + i)];
        n.producer = p;
        n.seq = i;
        q.push(&n);
      }
    });
  }
  go.store(true);

  std::vector<int> last_seq(kProducers, -1);
  int received = 0;
  while (received < kProducers * kPerProducer) {
    Node* n = q.pop();
    if (n == nullptr) {
      std::this_thread::yield();
      continue;
    }
    EXPECT_EQ(n->seq, last_seq[n->producer] + 1) << "per-producer FIFO violated";
    last_seq[n->producer] = n->seq;
    ++received;
  }
  for (auto& t : producers) t.join();
  EXPECT_EQ(q.pop(), nullptr);
}

// ---- handler mutual exclusion (§3) -----------------------------------------

class Tick : public Event {};
class TickPort : public PortType {
 public:
  TickPort() {
    set_name("TickPort");
    negative<Tick>();
    positive<Tick>();
  }
};

/// Detects concurrent handler execution with an intentionally non-atomic
/// critical section guarded by an atomic "inside" flag.
class ExclusionProbe : public ComponentDefinition {
 public:
  ExclusionProbe() {
    subscribe<Tick>(port_, [this](const Tick&) {
      if (inside.exchange(true)) violations.fetch_add(1);
      // Widen the race window.
      for (volatile int i = 0; i < 50; ++i) {
      }
      counter = counter + 1;  // non-atomic on purpose
      inside.store(false);
    });
  }
  Negative<TickPort> port_ = provide<TickPort>();
  std::atomic<bool> inside{false};
  std::atomic<int> violations{0};
  int counter = 0;
};

class ProbeMain : public ComponentDefinition {
 public:
  ProbeMain() { probe = create<ExclusionProbe>(); }
  Component probe;
};

TEST(Execution, HandlersOfOneComponentAreMutuallyExclusive) {
  auto rt = Runtime::threaded(Config{}, 8, 1);
  auto main = rt->bootstrap<ProbeMain>();
  auto& def = main.definition_as<ProbeMain>();
  rt->await_quiescence();

  constexpr int kEvents = 20000;
  auto* port = def.probe.core()->find_port(std::type_index(typeid(TickPort)), true);
  // Hammer from several external threads to force contention.
  std::vector<std::thread> senders;
  for (int t = 0; t < 4; ++t) {
    senders.emplace_back([port] {
      for (int i = 0; i < kEvents / 4; ++i) port->outside->trigger(make_event<Tick>());
    });
  }
  for (auto& t : senders) t.join();
  rt->await_quiescence();

  auto& probe = def.probe.definition_as<ExclusionProbe>();
  EXPECT_EQ(probe.violations.load(), 0);
  EXPECT_EQ(probe.counter, kEvents) << "every event handled exactly once";
}

// ---- multi-core execution and work stealing ----------------------------------

class Worker : public ComponentDefinition {
 public:
  Worker() {
    subscribe<Tick>(port_, [this](const Tick&) {
      // A bit of CPU work so parallelism matters.
      volatile double x = 1.0;
      for (int i = 0; i < 300; ++i) x = x * 1.0000001 + 0.5;
      (void)x;
      done.fetch_add(1);
    });
  }
  Negative<TickPort> port_ = provide<TickPort>();
  std::atomic<int> done{0};
};

class FarmMain : public ComponentDefinition {
 public:
  explicit FarmMain(int n) {
    for (int i = 0; i < n; ++i) workers.push_back(create<Worker>());
  }
  std::vector<Component> workers;
};

TEST(Execution, ManyComponentsAllMakeProgressAcrossWorkers) {
  auto rt = Runtime::threaded(Config{}, 4, 1);
  auto main = rt->bootstrap<FarmMain>(32);
  auto& def = main.definition_as<FarmMain>();
  rt->await_quiescence();

  constexpr int kPerComponent = 200;
  for (auto& w : def.workers) {
    auto* port = w.core()->find_port(std::type_index(typeid(TickPort)), true);
    for (int i = 0; i < kPerComponent; ++i) port->outside->trigger(make_event<Tick>());
  }
  rt->await_quiescence();
  for (auto& w : def.workers) {
    EXPECT_EQ(w.definition_as<Worker>().done.load(), kPerComponent);
  }
}

/// Fans one upstream Tick out to every connected Worker: all the resulting
/// ready-tokens are born on the spreader's own worker thread, creating the
/// imbalance that forces the other workers to steal.
class Spreader : public ComponentDefinition {
 public:
  Spreader() {
    subscribe<Tick>(out_, [this](const Tick&) { trigger(make_event<Tick>(), out_); });
  }
  void burst() { trigger(make_event<Tick>(), out_); }
  Negative<TickPort> out_ = provide<TickPort>();
};

/// Worker variant on the consuming side of a channel.
class SinkWorker : public ComponentDefinition {
 public:
  SinkWorker() {
    subscribe<Tick>(port_, [this](const Tick&) {
      volatile double x = 1.0;
      for (int i = 0; i < 300; ++i) x = x * 1.0000001 + 0.5;
      (void)x;
      done.fetch_add(1);
    });
  }
  Positive<TickPort> port_ = require<TickPort>();
  std::atomic<int> done{0};
};

class ImbalancedMain : public ComponentDefinition {
 public:
  explicit ImbalancedMain(int n) {
    spreader = create<Spreader>();
    for (int i = 0; i < n; ++i) {
      workers.push_back(create<SinkWorker>());
      connect(spreader.provided<TickPort>(), workers.back().required<TickPort>());
    }
  }
  Component spreader;
  std::vector<Component> workers;
};

TEST(WorkStealing, ImbalancedLoadTriggersSteals) {
  WorkStealingScheduler::Options opts;
  opts.workers = 4;
  auto scheduler = std::make_unique<WorkStealingScheduler>(opts);
  auto* sched = scheduler.get();
  Runtime rt(Config{}, std::move(scheduler), std::make_unique<WallClock>(), 1);

  auto main = rt.bootstrap<ImbalancedMain>(32);
  auto& def = main.definition_as<ImbalancedMain>();
  rt.await_quiescence();

  // Each burst fans out to 32 workers from one component; repeat.
  for (int i = 0; i < 200; ++i) {
    def.spreader.definition_as<Spreader>().burst();
    if (i % 20 == 0) rt.await_quiescence();
  }
  rt.await_quiescence();

  int total = 0;
  for (auto& w : def.workers) total += w.definition_as<SinkWorker>().done.load();
  EXPECT_EQ(total, 32 * 200);
  const auto stats = sched->stats();
  EXPECT_GT(stats.steals, 0u) << "fan-out imbalance should force work stealing";
}

TEST(WorkStealing, DisabledStealingStillCompletes) {
  WorkStealingScheduler::Options opts;
  opts.workers = 4;
  opts.stealing = false;
  Runtime rt(Config{}, std::make_unique<WorkStealingScheduler>(opts),
             std::make_unique<WallClock>(), 1);
  auto main = rt.bootstrap<FarmMain>(16);
  auto& def = main.definition_as<FarmMain>();
  rt.await_quiescence();
  for (auto& w : def.workers) {
    auto* port = w.core()->find_port(std::type_index(typeid(TickPort)), true);
    for (int i = 0; i < 100; ++i) port->outside->trigger(make_event<Tick>());
  }
  rt.await_quiescence();
  for (auto& w : def.workers) {
    EXPECT_EQ(w.definition_as<Worker>().done.load(), 100);
  }
}

// ---- stats consistency -------------------------------------------------------

TEST(Stats, ExecutedMatchesScheduledAfterMultiThreadedBurst) {
  WorkStealingScheduler::Options opts;
  opts.workers = 4;
  auto scheduler = std::make_unique<WorkStealingScheduler>(opts);
  auto* sched = scheduler.get();
  Runtime rt(Config{}, std::move(scheduler), std::make_unique<WallClock>(), 1);
  auto main = rt.bootstrap<FarmMain>(8);
  auto& def = main.definition_as<FarmMain>();
  rt.await_quiescence();

  // Baseline after bootstrap so lifecycle work units don't skew the ledger.
  const auto baseline = sched->stats();

  constexpr int kThreads = 4;
  constexpr int kPerThread = 2000;
  std::vector<PortCore*> ports;
  for (auto& w : def.workers) {
    ports.push_back(w.core()->find_port(std::type_index(typeid(TickPort)), true)->outside.get());
  }
  std::vector<std::thread> senders;
  for (int t = 0; t < kThreads; ++t) {
    senders.emplace_back([&ports, t] {
      for (int i = 0; i < kPerThread; ++i) {
        ports[static_cast<std::size_t>((t + i) % ports.size())]->trigger(make_event<Tick>());
      }
    });
  }
  for (auto& t : senders) t.join();
  rt.await_quiescence();

  constexpr std::uint64_t kTotal = kThreads * kPerThread;
  int done = 0;
  for (auto& w : def.workers) done += w.definition_as<Worker>().done.load();
  EXPECT_EQ(done, static_cast<int>(kTotal));
  // Every scheduled work unit is executed exactly once, and the per-worker
  // counters (read concurrently, written by worker threads) add up exactly.
  const auto stats = sched->stats();
  EXPECT_EQ(stats.executed - baseline.executed, kTotal)
      << "stats() must account every scheduled unit exactly once";
}

// ---- quiescence accounting -----------------------------------------------------

class ChainRelay : public ComponentDefinition {
 public:
  ChainRelay() {
    subscribe<Tick>(in_, [this](const Tick&) {
      ++relayed;
      trigger(make_event<Tick>(), out_);
    });
  }
  Positive<TickPort> in_ = require<TickPort>();
  Negative<TickPort> out_ = provide<TickPort>();
  int relayed = 0;
};

class ChainMain : public ComponentDefinition {
 public:
  explicit ChainMain(int n) {
    for (int i = 0; i < n; ++i) relays.push_back(create<ChainRelay>());
    for (int i = 0; i + 1 < n; ++i) {
      connect(relays[i].provided<TickPort>(), relays[i + 1].required<TickPort>());
    }
  }
  std::vector<Component> relays;
};

TEST(Quiescence, AwaitCoversCascadedWork) {
  auto rt = Runtime::threaded(Config{}, 4, 1);
  auto main = rt->bootstrap<ChainMain>(64);
  auto& def = main.definition_as<ChainMain>();
  rt->await_quiescence();

  // Inject at the head; a 64-deep cascade must be fully counted: when
  // await_quiescence returns, every relay has fired. (Triggering on the
  // *outside* half of a required port sends the event inward, as a channel
  // delivery would.)
  auto* head = def.relays[0].core()->find_port(std::type_index(typeid(TickPort)), false);
  for (int i = 0; i < 100; ++i) head->outside->trigger(make_event<Tick>());
  rt->await_quiescence();
  for (std::size_t i = 1; i < def.relays.size(); ++i) {
    EXPECT_EQ(def.relays[i].definition_as<ChainRelay>().relayed, 100) << "relay " << i;
  }
}

}  // namespace
}  // namespace kompics::test
