// Unit tests for the fundamental Kompics concepts of paper §2.1-§2.3:
// events, ports, components, handlers, subscriptions, channels, and
// publish-subscribe dissemination.

#include <gtest/gtest.h>

#include <atomic>

#include "kompics/kompics.hpp"
#include "kompics/work_stealing_scheduler.hpp"

namespace kompics::test {
namespace {

// ---- a tiny protocol ------------------------------------------------------

struct Address {
  int value = 0;
};

class Message : public Event {
 public:
  Message(int src, int dst) : source(src), destination(dst) {}
  int source;
  int destination;
};

class DataMessage : public Message {
 public:
  DataMessage(int src, int dst, int seq) : Message(src, dst), sequence(seq) {}
  int sequence;
};

class Network : public PortType {
 public:
  Network() {
    set_name("Network");
    positive<Message>();
    negative<Message>();
  }
};

// Counts messages arriving on a required Network port.
class Counter : public ComponentDefinition {
 public:
  Counter() {
    subscribe<Message>(network_, [this](const Message& m) {
      ++count_;
      last_source_ = m.source;
    });
  }

  void send(const EventPtr& e) { trigger(e, network_); }

  Positive<Network> network_ = require<Network>();
  std::atomic<int> count_{0};
  std::atomic<int> last_source_{0};
};

// Echoes every received message back out its provided Network port.
class Echo : public ComponentDefinition {
 public:
  Echo() {
    subscribe<Message>(network_, [this](const Message& m) {
      ++received_;
      trigger(make_event<Message>(m.destination, m.source), network_);
    });
  }

  void trigger_out(const EventPtr& e) { trigger(e, network_); }

  Negative<Network> network_ = provide<Network>();
  std::atomic<int> received_{0};
};

class EmptyMain : public ComponentDefinition {
 public:
  EmptyMain() = default;
};

std::unique_ptr<Runtime> make_runtime(std::size_t workers = 2) {
  return Runtime::threaded(Config{}, workers, /*seed=*/42);
}

// ---- event subtyping ------------------------------------------------------

TEST(Events, SubtypeMatching) {
  DataMessage dm(1, 2, 7);
  EXPECT_TRUE(event_is<Message>(dm));
  EXPECT_TRUE(event_is<DataMessage>(dm));
  EXPECT_TRUE(event_is<Event>(dm));
  Message m(1, 2);
  EXPECT_FALSE(event_is<DataMessage>(m));
}

TEST(Events, PortTypeAllows) {
  const auto& net = port_type<Network>();
  Message m(1, 2);
  DataMessage dm(1, 2, 3);
  Start s;
  EXPECT_TRUE(net.allows(Direction::kPositive, m));
  EXPECT_TRUE(net.allows(Direction::kNegative, dm));  // subtype passes
  EXPECT_FALSE(net.allows(Direction::kPositive, s));

  const auto& ctl = port_type<ControlPort>();
  EXPECT_TRUE(ctl.allows(Direction::kNegative, s));
  EXPECT_FALSE(ctl.allows(Direction::kPositive, s));
}

// ---- basic delivery through a channel (Fig. 2 topology) -------------------

class PairMain : public ComponentDefinition {
 public:
  PairMain() {
    echo = create<Echo>();
    counter = create<Counter>();
    channel = connect(echo.provided<Network>(), counter.required<Network>());
  }
  Component echo, counter;
  ChannelRef channel;
};

TEST(Delivery, ProviderToRequirer) {
  auto rt = make_runtime();
  auto main = rt->bootstrap<PairMain>();
  auto& def = main.definition_as<PairMain>();
  rt->await_quiescence();

  // Trigger an indication out of Echo's provided port: Counter must see it.
  def.echo.definition_as<Echo>().trigger_out(make_event<Message>(5, 6));
  rt->await_quiescence();
  EXPECT_EQ(def.counter.definition_as<Counter>().count_.load(), 1);
  EXPECT_EQ(def.counter.definition_as<Counter>().last_source_.load(), 5);
}

TEST(Delivery, RequesterToProvider) {
  auto rt = make_runtime();
  auto main = rt->bootstrap<PairMain>();
  auto& def = main.definition_as<PairMain>();
  rt->await_quiescence();

  // Send a request from the requirer side: Echo receives it and replies;
  // the reply comes back to Counter through the same channel.
  def.counter.definition_as<Counter>().send(make_event<Message>(10, 20));
  rt->await_quiescence();
  EXPECT_EQ(def.echo.definition_as<Echo>().received_.load(), 1);
  EXPECT_EQ(def.counter.definition_as<Counter>().count_.load(), 1);
  EXPECT_EQ(def.counter.definition_as<Counter>().last_source_.load(), 20);
}

// ---- fan-out (Fig. 6): one provider, two subscribers -----------------------

class FanOutMain : public ComponentDefinition {
 public:
  FanOutMain() {
    echo = create<Echo>();
    c1 = create<Counter>();
    c2 = create<Counter>();
    connect(echo.provided<Network>(), c1.required<Network>());
    connect(echo.provided<Network>(), c2.required<Network>());
  }
  Component echo, c1, c2;
};

TEST(Delivery, FanOutToAllChannels) {
  auto rt = make_runtime();
  auto main = rt->bootstrap<FanOutMain>();
  auto& def = main.definition_as<FanOutMain>();
  rt->await_quiescence();

  def.echo.definition_as<Echo>().trigger_out(make_event<Message>(1, 2));
  rt->await_quiescence();
  EXPECT_EQ(def.c1.definition_as<Counter>().count_.load(), 1);
  EXPECT_EQ(def.c2.definition_as<Counter>().count_.load(), 1);
}

// ---- multiple handlers on one port (Fig. 7) --------------------------------

class TwoHandlers : public ComponentDefinition {
 public:
  TwoHandlers() {
    subscribe<Message>(network_, [this](const Message&) { order.push_back(1); });
    subscribe<Message>(network_, [this](const Message&) { order.push_back(2); });
  }
  Positive<Network> network_ = require<Network>();
  std::vector<int> order;
};

class TwoHandlerMain : public ComponentDefinition {
 public:
  TwoHandlerMain() {
    echo = create<Echo>();
    two = create<TwoHandlers>();
    connect(echo.provided<Network>(), two.required<Network>());
  }
  Component echo, two;
};

TEST(Delivery, AllCompatibleHandlersRunInSubscriptionOrder) {
  auto rt = make_runtime();
  auto main = rt->bootstrap<TwoHandlerMain>();
  auto& def = main.definition_as<TwoHandlerMain>();
  rt->await_quiescence();

  def.echo.definition_as<Echo>().trigger_out(make_event<Message>(1, 2));
  rt->await_quiescence();
  ASSERT_EQ(def.two.definition_as<TwoHandlers>().order.size(), 2u);
  EXPECT_EQ(def.two.definition_as<TwoHandlers>().order[0], 1);
  EXPECT_EQ(def.two.definition_as<TwoHandlers>().order[1], 2);
}

// ---- unsubscribe during handling (§2.2's reply-once example) ---------------

class ReplyOnce : public ComponentDefinition {
 public:
  ReplyOnce() {
    sub_ = subscribe<Message>(network_, [this](const Message& m) {
      ++handled_;
      trigger(make_event<Message>(m.destination, m.source), network_);
      unsubscribe(sub_);
    });
  }
  Positive<Network> network_ = require<Network>();
  SubscriptionRef sub_;
  int handled_ = 0;
};

class ReplyOnceMain : public ComponentDefinition {
 public:
  ReplyOnceMain() {
    echo = create<Echo>();
    once = create<ReplyOnce>();
    connect(echo.provided<Network>(), once.required<Network>());
  }
  Component echo, once;
};

TEST(Subscriptions, UnsubscribeStopsFurtherDelivery) {
  auto rt = make_runtime();
  auto main = rt->bootstrap<ReplyOnceMain>();
  auto& def = main.definition_as<ReplyOnceMain>();
  rt->await_quiescence();

  auto& echo = def.echo.definition_as<Echo>();
  echo.trigger_out(make_event<Message>(1, 2));
  rt->await_quiescence();
  echo.trigger_out(make_event<Message>(3, 4));
  rt->await_quiescence();

  EXPECT_EQ(def.once.definition_as<ReplyOnce>().handled_, 1);
  // ReplyOnce replied exactly once; Echo receives the reply and echoes it
  // back, but by then ReplyOnce is unsubscribed.
  EXPECT_EQ(echo.received_.load(), 1);
}

// ---- direction enforcement -------------------------------------------------

class BadTrigger : public ComponentDefinition {
 public:
  BadTrigger() = default;
  void attempt() {
    // Start is not allowed on Network in any direction.
    trigger(make_event<Start>(), network_);
  }
  Positive<Network> network_ = require<Network>();
};

TEST(Ports, TriggerRejectsDisallowedEventTypes) {
  auto rt = make_runtime();
  auto main = rt->bootstrap<EmptyMain>();
  rt->await_quiescence();
  auto child = rt->create_component<BadTrigger>(main.core());
  EXPECT_THROW(child.definition_as<BadTrigger>().attempt(), std::logic_error);
}

}  // namespace
}  // namespace kompics::test
