// Stress driver: TcpNetwork connect/teardown loops on 127.0.0.1. Each
// round boots a fresh runtime with two nodes, pushes bidirectional traffic
// (forcing connect-on-first-send both ways), then tears everything down
// with frames potentially still in flight. ASan patrols the teardown for
// use-after-free/leaks; TSan patrols handler-thread vs. I/O-thread
// hand-off. A refused-connection round exercises the failure path.

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <random>
#include <thread>

#include "kompics/kompics.hpp"
#include "net/serialization.hpp"
#include "net/tcp_network.hpp"
#include "stress_util.hpp"

namespace kompics::net::test {
namespace {

class Blob : public Message {
 public:
  Blob(Address s, Address d, std::uint64_t seq, Bytes payload)
      : Message(s, d), seq(seq), payload(std::move(payload)) {}
  std::uint64_t seq;
  Bytes payload;
};

KOMPICS_REGISTER_MESSAGE(
    Blob, 9200,
    [](const Message& m, BufferWriter& w) {
      const auto& b = static_cast<const Blob&>(m);
      w.var_u64(b.seq);
      w.bytes(b.payload);
    },
    [](BufferReader& r, Address src, Address dst) -> MessagePtr {
      const std::uint64_t seq = r.var_u64();
      return std::make_shared<const Blob>(src, dst, seq, r.bytes());
    });

class Endpoint : public ComponentDefinition {
 public:
  Endpoint() {
    subscribe<Blob>(network_, [this](const Blob&) { received.fetch_add(1); });
    subscribe<SendFailed>(netctl_, [this](const SendFailed&) { failures.fetch_add(1); });
  }
  void send(Address from, Address to, std::uint64_t seq, Bytes payload) {
    trigger(make_event<Blob>(from, to, seq, std::move(payload)), network_);
  }
  Positive<Network> network_ = require<Network>();
  Positive<NetworkControl> netctl_ = require<NetworkControl>();
  std::atomic<std::uint64_t> received{0};
  std::atomic<std::uint64_t> failures{0};
};

class Node : public ComponentDefinition {
 public:
  explicit Node(Address self) {
    net = create<TcpNetwork>();
    trigger(make_event<TcpNetwork::Init>(self, TcpNetwork::Options{}), net.control());
    app = create<Endpoint>();
    connect(net.provided<Network>(), app.required<Network>());
    connect(net.provided<NetworkControl>(), app.required<NetworkControl>());
  }
  Component net, app;
};

class TwoNodeMain : public ComponentDefinition {
 public:
  TwoNodeMain(Address a, Address b) {
    node_a = create<Node>(a);
    node_b = create<Node>(b);
  }
  Component node_a, node_b;
};

std::uint16_t pick_port() {
  // Pid-spread base (see tcp_network_test.cpp): concurrent ctest processes
  // must not hand out overlapping ports, or "refused connection" targets in
  // one test turn out to be live listeners of another.
  static std::atomic<std::uint16_t> next{
      static_cast<std::uint16_t>(33000 + (static_cast<unsigned>(::getpid()) * 131u) % 4000u)};
  return next.fetch_add(1);
}

TEST(StressTcp, ConnectTeardownLoops) {
  const std::uint64_t seed = stress::announce_seed("StressTcp.Loops");
  const int kRounds = 6 * stress::scale();
  const std::uint64_t kMessages = 150;

  std::mt19937_64 rng(seed);
  for (int round = 0; round < kRounds; ++round) {
    const Address a = Address::loopback(pick_port());
    const Address b = Address::loopback(pick_port());
    auto rt = Runtime::threaded(Config{}, 2, 1);
    auto main = rt->bootstrap<TwoNodeMain>(a, b);
    auto& def = main.definition_as<TwoNodeMain>();
    rt->await_quiescence();

    auto& app_a = def.node_a.definition_as<Node>().app.definition_as<Endpoint>();
    auto& app_b = def.node_b.definition_as<Node>().app.definition_as<Endpoint>();

    // Bidirectional so both sides run connect-on-first-send and accept.
    for (std::uint64_t i = 1; i <= kMessages; ++i) {
      Bytes payload(rng() % 2048);
      for (auto& byte : payload) byte = static_cast<std::uint8_t>(rng());
      app_a.send(a, b, i, payload);
      app_b.send(b, a, i, std::move(payload));
    }
    const bool delivered = stress::spin_until(
        [&] { return app_a.received.load() == kMessages && app_b.received.load() == kMessages; },
        15000);
    EXPECT_TRUE(delivered) << "round " << round << ": a=" << app_a.received.load()
                           << " b=" << app_b.received.load();

    if ((rng() & 1) != 0) {
      // Half the rounds: tear down with the last frames barely settled and
      // no graceful drain period at all.
      rt->shutdown();
    }
    // Runtime destructor handles the rest of the teardown.
  }
}

TEST(StressTcp, TeardownWithFramesInFlight) {
  const std::uint64_t seed = stress::announce_seed("StressTcp.InFlight");
  const int kRounds = 6 * stress::scale();

  std::mt19937_64 rng(seed);
  for (int round = 0; round < kRounds; ++round) {
    const Address a = Address::loopback(pick_port());
    const Address b = Address::loopback(pick_port());
    auto rt = Runtime::threaded(Config{}, 2, 1);
    auto main = rt->bootstrap<TwoNodeMain>(a, b);
    auto& def = main.definition_as<TwoNodeMain>();
    rt->await_quiescence();

    auto& app_a = def.node_a.definition_as<Node>().app.definition_as<Endpoint>();
    // Blast larger frames and destroy the runtime mid-stream: receivers may
    // see an arbitrary prefix; nothing may crash, leak, or double-free.
    for (std::uint64_t i = 1; i <= 80; ++i) {
      app_a.send(a, b, i, Bytes(16 * 1024, static_cast<std::uint8_t>(i)));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(rng() % 20));
  }
}

TEST(StressTcp, RefusedConnectionStorm) {
  stress::announce_seed("StressTcp.Refused");
  const int kTargets = 20;

  const Address self = Address::loopback(pick_port());
  auto rt = Runtime::threaded(Config{}, 2, 1);
  auto main = rt->bootstrap<TwoNodeMain>(self, Address::loopback(pick_port()));
  auto& def = main.definition_as<TwoNodeMain>();
  rt->await_quiescence();

  auto& app = def.node_a.definition_as<Node>().app.definition_as<Endpoint>();
  // A burst of sends to ports nobody listens on: every one must come back
  // as SendFailed instead of wedging the I/O thread or leaking conns.
  for (int i = 0; i < kTargets; ++i) {
    app.send(self, Address::loopback(pick_port()), static_cast<std::uint64_t>(i), Bytes{1, 2});
  }
  const bool reported = stress::spin_until(
      [&] { return app.failures.load() >= static_cast<std::uint64_t>(kTargets); }, 15000);
  EXPECT_TRUE(reported) << "failures=" << app.failures.load();
}

}  // namespace
}  // namespace kompics::net::test
