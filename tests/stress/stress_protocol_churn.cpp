// Stress driver: the coroutine protocol layer under scale and churn. Ten
// thousand frames park concurrently, each awaiting a correlated response
// with an armed timeout (when_any(request, sleep) — the quorum-protocol
// shape), while most of their owning components are destroyed mid-flight.
// Verifies, at scale, the halt-cancellation contract (destroy cancels every
// parked frame AND its armed timeout; a fired-after-death timeout resuming
// a dead frame would crash or trip TSan), that survivors keep completing
// through the churn, and that the timer ends the run with zero armed
// timeouts and zero unconsumed cancellations — the PR 1 leak class.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <vector>

#include "kompics/kompics.hpp"
#include "kompics/protocol.hpp"
#include "stress_util.hpp"
#include "timing/thread_timer.hpp"

namespace kompics::test {
namespace {

using timing::ThreadTimer;
using timing::Timer;

class CPing : public Event {
  KOMPICS_EVENT(CPing, Event);

 public:
  explicit CPing(std::int64_t id) : id(id) {}
  std::int64_t id;
};

class CPong : public Event {
  KOMPICS_EVENT(CPong, Event);

 public:
  explicit CPong(std::int64_t id) : id(id) {}
  std::int64_t id;
};

class ChurnPort : public PortType {
 public:
  ChurnPort() {
    set_name("ProtoChurn");
    request<CPing>();
    indication<CPong>();
  }
};

/// Deliberately mute: pings park their frames; the driver answers by id.
class MuteService : public ComponentDefinition {
 public:
  MuteService() {
    subscribe<CPing>(svc_, [](const CPing&) {});
  }
  void answer(std::int64_t id) { trigger(make_event<CPong>(id), svc_); }
  Negative<ChurnPort> svc_ = provide<ChurnPort>();
};

class AwaitClient : public ComponentDefinition {
 public:
  Positive<ChurnPort> svc_ = require<ChurnPort>();
  Positive<Timer> timer_ = require<Timer>();

  std::atomic<long> responses{0};
  std::atomic<long> timeouts{0};

  long done() const { return responses.load() + timeouts.load(); }

  protocol::Proto<void> one_await(std::int64_t id, std::int64_t timeout_ms) {
    auto r = co_await protocol::when_any(
        svc_.request<CPong>(CPing(id), [id](const CPong& p) { return p.id == id; }),
        protocol::sleep(timer_, timeout_ms));
    (r.index() == 0 ? responses : timeouts).fetch_add(1);
  }

  std::size_t live_frames() const {
    auto* host = protocol_host();
    return host == nullptr ? 0 : host->live_frame_count();
  }
};

class ChurnMain : public ComponentDefinition {
 public:
  static constexpr int kClients = 8;

  ChurnMain() {
    timer = create<ThreadTimer>();
    service = create<MuteService>();
    for (int i = 0; i < kClients; ++i) {
      clients[i] = create<AwaitClient>();
      connect(service.provided<ChurnPort>(), clients[i].required<ChurnPort>());
      connect(timer.provided<Timer>(), clients[i].required<Timer>());
    }
  }
  void kill(int i) { destroy(clients[i]); }

  Component timer, service;
  Component clients[kClients];
};

TEST(StressProtocol, TenThousandConcurrentAwaitsSurviveDestroyChurn) {
  stress::announce_seed("StressProtocol.AwaitChurn");
  const int kPerClient = 1250 * stress::scale();  // 8 clients -> 10k frames
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
  // Sanitizer builds run an order of magnitude slower: queueing 10k frame
  // starts can outlast a 2s deadline, so early frames would time out and
  // retire before the parked-count assert. Stretch the deadline, keep the
  // workload.
  const std::int64_t kTimeoutMs = 20000;
#else
  const std::int64_t kTimeoutMs = 2000;
#endif
  const int kUnanswered = 100;  // per survivor: frames left to their timeout

  auto rt = Runtime::threaded(Config{}, 4, 1);
  auto main = rt->bootstrap<ChurnMain>();
  rt->await_quiescence();
  auto& world = main.definition_as<ChurnMain>();
  auto& timer = world.timer.definition_as<ThreadTimer>();
  auto& service = world.service.definition_as<MuteService>();
  AwaitClient* clients[ChurnMain::kClients];
  for (int i = 0; i < ChurnMain::kClients; ++i) {
    clients[i] = &world.clients[i].definition_as<AwaitClient>();
  }
  auto id_of = [](int client, int k) {
    return static_cast<std::int64_t>(client) * 1'000'000 + k;
  };

  // Park 10k frames, each holding a correlated-response subscription and an
  // armed timeout.
  for (int c = 0; c < ChurnMain::kClients; ++c) {
    for (int k = 0; k < kPerClient; ++k) {
      protocol::spawn(clients[c]->one_await(id_of(c, k), kTimeoutMs));
    }
  }
  rt->await_quiescence();
  std::size_t parked = 0;
  for (int c = 0; c < ChurnMain::kClients; ++c) parked += clients[c]->live_frames();
  ASSERT_EQ(parked, static_cast<std::size_t>(ChurnMain::kClients) * kPerClient)
      << "every await must be parked before the churn starts";

  // Destroy six of the eight clients mid-flight: 7500 parked frames unwind,
  // each cancelling its armed timeout through the port.
  for (int c = 2; c < ChurnMain::kClients; ++c) world.kill(c);
  rt->await_quiescence();

  // Survivors keep working through the wreckage: a second wave on top of
  // the first, then answers for everything except the last kUnanswered ids
  // of each wave (those must complete via their timeout instead).
  for (int c = 0; c < 2; ++c) {
    for (int k = kPerClient; k < 2 * kPerClient; ++k) {
      protocol::spawn(clients[c]->one_await(id_of(c, k), kTimeoutMs));
    }
  }
  // External-thread spawns start on the work queue; quiesce so every
  // second-wave frame holds its correlated subscription before the answers
  // arrive (an unmatched CPong is dropped, not buffered).
  rt->await_quiescence();
  for (int c = 0; c < 2; ++c) {
    for (int k = 0; k < 2 * kPerClient; ++k) {
      const bool starve = k % kPerClient >= kPerClient - kUnanswered;
      if (!starve) service.answer(id_of(c, k));
    }
  }

  const long expect_responses = 2L * 2 * (kPerClient - kUnanswered);
  const long expect_timeouts = 2L * 2 * kUnanswered;
  ASSERT_TRUE(stress::spin_until(
      [&] {
        return clients[0]->done() + clients[1]->done() ==
               expect_responses + expect_timeouts;
      },
      static_cast<int>(kTimeoutMs) + 30000))
      << "survivor awaits must all complete (got "
      << clients[0]->done() + clients[1]->done() << " of "
      << expect_responses + expect_timeouts << ")";
  EXPECT_EQ(clients[0]->responses.load() + clients[1]->responses.load(), expect_responses);
  EXPECT_EQ(clients[0]->timeouts.load() + clients[1]->timeouts.load(), expect_timeouts);

  rt->await_quiescence();
  EXPECT_EQ(clients[0]->live_frames(), 0u) << "completed frames must retire";
  EXPECT_EQ(clients[1]->live_frames(), 0u);

  // The leak-class check at scale: once every deadline has passed, the
  // timer must hold zero armed timeouts and zero unconsumed cancellations —
  // every one of the ~12.5k armed sleeps either fired or was cancelled by
  // frame unwind (destroy churn or when_any loser cleanup).
  ASSERT_TRUE(stress::spin_until([&] { return timer.armed_timeouts() == 0; },
                                 static_cast<int>(kTimeoutMs) + 30000))
      << "armed timeouts leaked: " << timer.armed_timeouts();
  ASSERT_TRUE(stress::spin_until([&] { return timer.pending_cancellations() == 0; },
                                 static_cast<int>(kTimeoutMs) + 30000))
      << "cancellations never consumed: " << timer.pending_cancellations();
}

}  // namespace
}  // namespace kompics::test
