// Stress driver: lock-free snapshot dispatch racing channel reconfiguration
// and subscription churn. One thread publishes at full rate through a
// channel (exercising Channel::forward's snapshot fast path and PortCore's
// RCU subscription tables) while a reconfiguration thread loops the §2.6
// command set — hold / resume / unplug / plug — on that same channel and a
// churn stream adds/removes subscriptions on the receiving port. Under the
// no-loss guarantees of §2.6, the permanent subscription must still see
// every published event exactly once.

#include <gtest/gtest.h>

#include <atomic>
#include <random>
#include <thread>
#include <vector>

#include "kompics/kompics.hpp"
#include "stress_util.hpp"

namespace kompics::test {
namespace {

class Tick : public Event {
  KOMPICS_EVENT(Tick, Event);
};
class Churn : public Event {
  KOMPICS_EVENT(Churn, Event);

 public:
  explicit Churn(bool add) : add(add) {}
  bool add;
};
class SPort : public PortType {
 public:
  SPort() {
    set_name("StressDispatchPort");
    negative<Tick>();
    negative<Churn>();
  }
};

class Sink : public ComponentDefinition {
 public:
  Sink() {
    subscribe<Tick>(port_, [this](const Tick&) { seen.fetch_add(1); });
    subscribe<Churn>(port_, [this](const Churn& c) {
      if (c.add && dynamic_.size() < 8) {
        dynamic_.push_back(
            subscribe<Tick>(port_, [this](const Tick&) { dynamic_seen.fetch_add(1); }));
      } else if (!c.add && !dynamic_.empty()) {
        unsubscribe(dynamic_.back());
        dynamic_.pop_back();
      }
    });
  }
  std::size_t dynamic_count() const { return dynamic_.size(); }

  Negative<SPort> port_ = provide<SPort>();
  std::atomic<long> seen{0};
  std::atomic<long> dynamic_seen{0};

 private:
  std::vector<SubscriptionRef> dynamic_;
};

class Source : public ComponentDefinition {
 public:
  Positive<SPort> port_ = require<SPort>();
};

class Main : public ComponentDefinition {
 public:
  Main() {
    sink = create<Sink>();
    source = create<Source>();
    channel = connect(sink.provided<SPort>(), source.required<SPort>());
  }
  Component sink, source;
  ChannelRef channel;
};

TEST(StressDispatchReconfig, PublisherAtFullRateVsReconfigStorm) {
  const std::uint64_t seed = stress::announce_seed("StressDispatchReconfig.Storm");
  const long kTicks = 20000 * stress::scale();
  const int kChurns = 2000 * stress::scale();
  const int kReconfigCycles = 1500 * stress::scale();

  auto rt = Runtime::threaded(Config{}, 2, 1);
  auto main = rt->bootstrap<Main>();
  auto& def = main.definition_as<Main>();
  rt->await_quiescence();
  auto& sink = def.sink.definition_as<Sink>();

  // The publisher triggers on the source's inside half: events cross to the
  // outside half and reach the sink only THROUGH the channel under attack.
  PortCore* pub =
      def.source.core()->find_port(std::type_index(typeid(SPort)), false)->inside.get();
  // The channel's positive end (the sink's provided outside half) is the
  // end the reconfiguration thread unplugs: the publisher side stays
  // attached, so in-flight events queue in the channel instead of missing
  // it — the §2.6 no-loss discipline.
  PortCore* sink_end = def.channel->positive_end();
  ASSERT_NE(sink_end, nullptr);

  std::atomic<bool> go{false};
  std::vector<std::thread> threads;

  threads.emplace_back([&] {  // publisher, full rate
    while (!go.load()) std::this_thread::yield();
    for (long i = 0; i < kTicks; ++i) pub->trigger(make_event<Tick>());
  });

  threads.emplace_back([&] {  // subscription churn (through the same channel)
    std::mt19937_64 rng(seed ^ 0xc0ffee);
    while (!go.load()) std::this_thread::yield();
    for (int i = 0; i < kChurns; ++i) {
      pub->trigger(make_event<Churn>((rng() & 1) != 0));
      if ((rng() & 0x1f) == 0) std::this_thread::yield();
    }
  });

  threads.emplace_back([&] {  // §2.6 reconfiguration storm
    std::mt19937_64 rng(seed ^ 0xdead);
    while (!go.load()) std::this_thread::yield();
    for (int i = 0; i < kReconfigCycles; ++i) {
      switch (rng() & 3) {
        case 0:
          def.channel->hold();
          std::this_thread::yield();
          def.channel->resume();
          break;
        case 1:
          def.channel->unplug(sink_end);
          std::this_thread::yield();
          def.channel->plug(sink_end);
          break;
        case 2:
          def.channel->hold();
          def.channel->unplug(sink_end);
          def.channel->plug(sink_end);
          def.channel->resume();
          break;
        default:
          def.channel->hold();
          def.channel->resume();
          def.channel->unplug(sink_end);
          std::this_thread::yield();
          def.channel->plug(sink_end);
          break;
      }
      if ((rng() & 0xf) == 0) std::this_thread::yield();
    }
  });

  go.store(true);
  for (auto& t : threads) t.join();
  rt->await_quiescence();

  // Channel back to a fully-plugged active state with nothing queued.
  EXPECT_EQ(def.channel->state(), Channel::State::kActive);
  EXPECT_EQ(def.channel->positive_end(), sink_end);
  EXPECT_EQ(def.channel->queued(), 0u);

  // No-loss, no-duplication: the permanent subscription saw every tick.
  EXPECT_EQ(sink.seen.load(), kTicks)
      << "events lost or duplicated across hold/resume/unplug/plug storm";

  // Drain dynamic subscriptions; a quiesced unsubscribe must be final.
  for (int i = 0; i < 8; ++i) pub->trigger(make_event<Churn>(false));
  rt->await_quiescence();
  ASSERT_EQ(sink.dynamic_count(), 0u);
  const long dynamic_before = sink.dynamic_seen.load();
  for (int i = 0; i < 500; ++i) pub->trigger(make_event<Tick>());
  rt->await_quiescence();
  EXPECT_EQ(sink.dynamic_seen.load(), dynamic_before);
  EXPECT_EQ(sink.seen.load(), kTicks + 500);
}

}  // namespace
}  // namespace kompics::test
