// Stress driver: ThreadTimer arm/cancel/fire storms. Multiple threads arm
// one-shot and periodic timeouts with tiny delays and cancel them at
// adversarial moments (before fire, after fire, twice, never-armed ids).
// Afterwards the timer's bookkeeping must drain to empty — the regression
// surface of the cancellation leak, where cancel-after-fire ids sat in the
// cancelled set forever.

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <random>
#include <thread>
#include <vector>

#include "kompics/kompics.hpp"
#include "stress_util.hpp"
#include "timing/thread_timer.hpp"

namespace kompics::timing::test {
namespace {

struct Beep : Timeout {
  explicit Beep(TimeoutId id) : Timeout(id) {}
};

class TimerUser : public ComponentDefinition {
 public:
  TimerUser() {
    subscribe<Beep>(timer_, [this](const Beep&) { fired.fetch_add(1); });
  }
  TimeoutId one_shot(DurationMs d) {
    auto ev = schedule<Beep>(d);
    trigger(ev, timer_);
    return ev->timeout_id();
  }
  TimeoutId periodic(DurationMs initial, DurationMs period) {
    auto ev = schedule_periodic<Beep>(initial, period);
    trigger(ev, timer_);
    return ev->timeout_id();
  }
  void cancel(TimeoutId id) { trigger(make_event<CancelTimeout>(id), timer_); }

  Positive<Timer> timer_ = require<Timer>();
  std::atomic<long> fired{0};
};

class Main : public ComponentDefinition {
 public:
  Main() {
    timer = create<ThreadTimer>();
    for (int i = 0; i < 3; ++i) {
      users.push_back(create<TimerUser>());
      connect(timer.provided<Timer>(), users.back().required<Timer>());
    }
  }
  Component timer;
  std::vector<Component> users;
};

TEST(StressTimer, ArmCancelFireStormDrainsAllBookkeeping) {
  const std::uint64_t seed = stress::announce_seed("StressTimer.Storm");
  const int kThreads = 3;  // one per user component
  const int kItersPerThread = 600 * stress::scale();

  auto rt = Runtime::threaded(Config{}, 2, 1);
  auto main = rt->bootstrap<Main>();
  auto& def = main.definition_as<Main>();
  rt->await_quiescence();
  auto& timer = def.timer.definition_as<ThreadTimer>();

  std::mutex periodics_mu;
  std::vector<std::pair<int, TimeoutId>> periodics;  // (user, id) to cancel at the end

  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto& user = def.users[static_cast<std::size_t>(t)].definition_as<TimerUser>();
      std::mt19937_64 rng(seed + static_cast<std::uint64_t>(t));
      std::vector<TimeoutId> my_oneshots;
      while (!go.load()) std::this_thread::yield();
      for (int i = 0; i < kItersPerThread; ++i) {
        switch (rng() % 8) {
          case 0:
          case 1:
          case 2: {  // arm a one-shot, delay 0-15 ms
            my_oneshots.push_back(user.one_shot(static_cast<DurationMs>(rng() % 16)));
            break;
          }
          case 3: {  // arm a periodic, to be cancelled in the drain phase
            const TimeoutId id = user.periodic(static_cast<DurationMs>(rng() % 8),
                                               1 + static_cast<DurationMs>(rng() % 4));
            std::lock_guard<std::mutex> g(periodics_mu);
            periodics.emplace_back(t, id);
            break;
          }
          case 4: {  // cancel a recent one-shot (may race its fire)
            if (!my_oneshots.empty()) user.cancel(my_oneshots.back());
            break;
          }
          case 5: {  // cancel an OLD one-shot — almost surely fired already
            if (!my_oneshots.empty()) user.cancel(my_oneshots[rng() % my_oneshots.size()]);
            break;
          }
          case 6: {  // double-cancel
            if (!my_oneshots.empty()) {
              const TimeoutId id = my_oneshots[rng() % my_oneshots.size()];
              user.cancel(id);
              user.cancel(id);
            }
            break;
          }
          default: {  // cancel an id that was never armed
            user.cancel(1'000'000'000ULL + rng() % 1000);
            break;
          }
        }
        if ((rng() & 0x1f) == 0) {
          std::this_thread::sleep_for(std::chrono::microseconds(200));
        }
      }
    });
  }
  go.store(true);
  for (auto& t : threads) t.join();

  // Drain phase: cancel every periodic, then the heap and both id tables
  // must empty out (each recorded cancellation is consumed by its entry's
  // next pop; one-shots fire or get consumed the same way).
  for (const auto& [user_idx, id] : periodics) {
    def.users[static_cast<std::size_t>(user_idx)].definition_as<TimerUser>().cancel(id);
  }
  rt->await_quiescence();
  const bool drained = stress::spin_until(
      [&] { return timer.armed_timeouts() == 0 && timer.pending_cancellations() == 0; },
      15000);
  EXPECT_TRUE(drained) << "armed=" << timer.armed_timeouts()
                       << " pending_cancellations=" << timer.pending_cancellations()
                       << " — cancellation bookkeeping leaked";

  long fired = 0;
  for (auto& u : def.users) fired += u.definition_as<TimerUser>().fired.load();
  EXPECT_GT(fired, 0L) << "the storm should actually fire timeouts";
}

TEST(StressTimer, StartStopChurnWithInflightTimeouts) {
  const std::uint64_t seed = stress::announce_seed("StressTimer.StartStop");
  const int kRounds = 25 * stress::scale();

  std::mt19937_64 rng(seed);
  for (int round = 0; round < kRounds; ++round) {
    auto rt = Runtime::threaded(Config{}, 2, 1);
    auto main = rt->bootstrap<Main>();
    auto& def = main.definition_as<Main>();
    rt->await_quiescence();

    // Arm a pile of timers, then tear the whole runtime down while many are
    // still pending — the timer thread must stop cleanly, never touching
    // freed state (ASan's surface) or racing shutdown (TSan's surface).
    for (auto& u : def.users) {
      auto& user = u.definition_as<TimerUser>();
      for (int i = 0; i < 20; ++i) {
        user.one_shot(static_cast<DurationMs>(rng() % 10));
        user.periodic(static_cast<DurationMs>(rng() % 5), 1 + static_cast<DurationMs>(rng() % 3));
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(rng() % 8));
    rt->shutdown();
  }
}

}  // namespace
}  // namespace kompics::timing::test
