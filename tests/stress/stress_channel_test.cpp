// Stress driver: Channel hold/resume/unplug/plug racing forward (§2.6).
// The paper's reconfiguration claim is that the hold+unplug+plug+resume
// discipline loses no events; here trigger threads pump traffic through a
// channel while a reconfiguration thread churns its state, and the test
// checks exact conservation at the end. A destroy-race variant checks the
// teardown path never crashes or double-delivers.

#include <gtest/gtest.h>

#include <atomic>
#include <random>
#include <thread>
#include <vector>

#include "kompics/kompics.hpp"
#include "stress_util.hpp"

namespace kompics::test {
namespace {

class Tick : public Event {};
class TickPort : public PortType {
 public:
  TickPort() {
    set_name("StressChanTickPort");
    negative<Tick>();
    positive<Tick>();
  }
};

class Source : public ComponentDefinition {
 public:
  Negative<TickPort> out_ = provide<TickPort>();
};

class Sink : public ComponentDefinition {
 public:
  Sink() {
    subscribe<Tick>(in_, [this](const Tick&) { received.fetch_add(1); });
  }
  Positive<TickPort> in_ = require<TickPort>();
  std::atomic<long> received{0};
};

class Main : public ComponentDefinition {
 public:
  Main() {
    source = create<Source>();
    sink = create<Sink>();
    channel = connect(source.provided<TickPort>(), sink.required<TickPort>());
  }
  Component source, sink;
  ChannelRef channel;
};

PortCore* injection_port(const Component& source) {
  // Inside half of the provided port: triggering here sends the event
  // outward, through the channel, exactly like a handler's trigger().
  return source.core()->find_port(std::type_index(typeid(TickPort)), true)->inside.get();
}

TEST(StressChannel, HoldResumeStormConservesEvents) {
  const std::uint64_t seed = stress::announce_seed("StressChannel.HoldResume");
  const int kThreads = 2;
  const int kPerThread = 4000 * stress::scale();
  const int kOps = 1500 * stress::scale();

  auto rt = Runtime::threaded(Config{}, 2, 1);
  auto main = rt->bootstrap<Main>();
  auto& def = main.definition_as<Main>();
  rt->await_quiescence();

  PortCore* inject = injection_port(def.source);
  std::atomic<bool> go{false};
  std::vector<std::thread> triggers;
  for (int t = 0; t < kThreads; ++t) {
    triggers.emplace_back([&, t] {
      std::mt19937_64 rng(seed + static_cast<std::uint64_t>(t));
      while (!go.load()) std::this_thread::yield();
      for (int i = 0; i < kPerThread; ++i) {
        inject->trigger(make_event<Tick>());
        if ((rng() & 0x7f) == 0) std::this_thread::yield();
      }
    });
  }

  std::thread reconfigurer([&] {
    std::mt19937_64 rng(seed ^ 0xdead);
    go.store(true);
    bool held = false;
    for (int i = 0; i < kOps; ++i) {
      if (held) {
        def.channel->resume();
      } else {
        def.channel->hold();
      }
      held = !held;
      for (std::uint64_t spin = rng() % 64; spin > 0; --spin) std::this_thread::yield();
    }
    if (held) def.channel->resume();
  });

  for (auto& t : triggers) t.join();
  reconfigurer.join();
  def.channel->resume();  // idempotent; guarantees a final flush
  rt->await_quiescence();

  EXPECT_EQ(def.sink.definition_as<Sink>().received.load(),
            static_cast<long>(kThreads) * kPerThread)
      << "hold/resume must queue, never drop";
  EXPECT_EQ(def.channel->queued(), 0u);
}

TEST(StressChannel, UnplugPlugStormConservesEvents) {
  const std::uint64_t seed = stress::announce_seed("StressChannel.UnplugPlug");
  const int kThreads = 2;
  const int kPerThread = 3000 * stress::scale();
  const int kOps = 800 * stress::scale();

  auto rt = Runtime::threaded(Config{}, 2, 1);
  auto main = rt->bootstrap<Main>();
  auto& def = main.definition_as<Main>();
  rt->await_quiescence();

  PortCore* inject = injection_port(def.source);
  PortCore* sink_end =
      def.sink.core()->find_port(std::type_index(typeid(TickPort)), false)->outside.get();

  std::atomic<bool> go{false};
  std::vector<std::thread> triggers;
  for (int t = 0; t < kThreads; ++t) {
    triggers.emplace_back([&, t] {
      std::mt19937_64 rng(seed + 31 * static_cast<std::uint64_t>(t));
      while (!go.load()) std::this_thread::yield();
      for (int i = 0; i < kPerThread; ++i) {
        inject->trigger(make_event<Tick>());
        if ((rng() & 0x7f) == 0) std::this_thread::yield();
      }
    });
  }

  std::thread reconfigurer([&] {
    std::mt19937_64 rng(seed ^ 0xbeef);
    go.store(true);
    bool held = false;
    bool unplugged = false;
    for (int i = 0; i < kOps; ++i) {
      switch (rng() % 4) {
        case 0:
          if (!held) {
            def.channel->hold();
            held = true;
          }
          break;
        case 1:
          if (held) {
            def.channel->resume();
            held = false;
          }
          break;
        case 2:
          if (!unplugged) {
            def.channel->unplug(sink_end);
            unplugged = true;
          }
          break;
        default:
          if (unplugged) {
            def.channel->plug(sink_end);
            unplugged = false;
          }
          break;
      }
      for (std::uint64_t spin = rng() % 64; spin > 0; --spin) std::this_thread::yield();
    }
    if (unplugged) def.channel->plug(sink_end);
    if (held) def.channel->resume();
  });

  for (auto& t : triggers) t.join();
  reconfigurer.join();
  rt->await_quiescence();

  EXPECT_EQ(def.sink.definition_as<Sink>().received.load(),
            static_cast<long>(kThreads) * kPerThread)
      << "unplug/plug must queue toward the missing end, never drop";
  EXPECT_EQ(def.channel->queued(), 0u);
}

TEST(StressChannel, DestroyRacingForwardNeverCrashesOrDuplicates) {
  const std::uint64_t seed = stress::announce_seed("StressChannel.Destroy");
  const int kRounds = 60 * stress::scale();
  const int kPerRound = 500;

  std::mt19937_64 rng(seed);
  for (int round = 0; round < kRounds; ++round) {
    auto rt = Runtime::threaded(Config{}, 2, 1);
    auto main = rt->bootstrap<Main>();
    auto& def = main.definition_as<Main>();
    rt->await_quiescence();

    PortCore* inject = injection_port(def.source);
    std::atomic<bool> go{false};
    std::thread trigger_thread([&] {
      while (!go.load()) std::this_thread::yield();
      for (int i = 0; i < kPerRound; ++i) inject->trigger(make_event<Tick>());
    });
    go.store(true);
    // Destroy the channel at a random point during the trigger storm.
    for (std::uint64_t spin = rng() % 2000; spin > 0; --spin) std::this_thread::yield();
    def.channel->destroy();
    trigger_thread.join();
    rt->await_quiescence();

    // Events forwarded before destruction arrive once; the rest are
    // dropped by the dead channel — never duplicated, never crashing.
    const long got = def.sink.definition_as<Sink>().received.load();
    EXPECT_GE(got, 0L);
    EXPECT_LE(got, static_cast<long>(kPerRound));
    rt->shutdown();
  }
}

}  // namespace
}  // namespace kompics::test
