// Stress driver: PortCore subscribe/unsubscribe racing dispatch. Trigger
// threads dispatch on a port while the owning component — driven by Churn
// events — adds and removes subscriptions on that same port. This races
// add_subscription/remove_subscription (under the port lock) against
// dispatch-time matching and the executing worker's lock-free re-check of
// Subscription::active. Verifies the §2.2 semantics: the permanent handler
// sees every event; a handler unsubscribed-and-quiesced never fires again.

#include <gtest/gtest.h>

#include <atomic>
#include <random>
#include <thread>
#include <vector>

#include "kompics/kompics.hpp"
#include "stress_util.hpp"

namespace kompics::test {
namespace {

class Tick : public Event {};
class Churn : public Event {
 public:
  explicit Churn(bool add) : add(add) {}
  bool add;
};
class ChurnPort : public PortType {
 public:
  ChurnPort() {
    set_name("StressChurnPort");
    negative<Tick>();
    negative<Churn>();
  }
};

class Churny : public ComponentDefinition {
 public:
  Churny() {
    subscribe<Tick>(port_, [this](const Tick&) { base_seen.fetch_add(1); });
    subscribe<Churn>(port_, [this](const Churn& c) {
      // Handlers of one component are mutually exclusive, so the vector is
      // safe; the races of interest are inside the port, between these
      // (un)subscribes and the trigger threads' dispatches.
      if (c.add && dynamic_.size() < 8) {
        dynamic_.push_back(
            subscribe<Tick>(port_, [this](const Tick&) { dynamic_seen.fetch_add(1); }));
      } else if (!c.add && !dynamic_.empty()) {
        unsubscribe(dynamic_.back());
        dynamic_.pop_back();
      }
    });
  }
  std::size_t dynamic_count() const { return dynamic_.size(); }

  Negative<ChurnPort> port_ = provide<ChurnPort>();
  std::atomic<long> base_seen{0};
  std::atomic<long> dynamic_seen{0};

 private:
  std::vector<SubscriptionRef> dynamic_;
};

class Main : public ComponentDefinition {
 public:
  Main() { churny = create<Churny>(); }
  Component churny;
};

TEST(StressPort, SubscriptionChurnRacingDispatch) {
  const std::uint64_t seed = stress::announce_seed("StressPort.Churn");
  const int kTickThreads = 2;
  const int kTicksPerThread = 5000 * stress::scale();
  const int kChurns = 4000 * stress::scale();

  auto rt = Runtime::threaded(Config{}, 2, 1);
  auto main = rt->bootstrap<Main>();
  auto& def = main.definition_as<Main>();
  rt->await_quiescence();
  auto& churny = def.churny.definition_as<Churny>();

  PortCore* port =
      def.churny.core()->find_port(std::type_index(typeid(ChurnPort)), true)->outside.get();

  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kTickThreads; ++t) {
    threads.emplace_back([&, t] {
      std::mt19937_64 rng(seed + static_cast<std::uint64_t>(t));
      while (!go.load()) std::this_thread::yield();
      for (int i = 0; i < kTicksPerThread; ++i) {
        port->trigger(make_event<Tick>());
        if ((rng() & 0xff) == 0) std::this_thread::yield();
      }
    });
  }
  threads.emplace_back([&] {
    std::mt19937_64 rng(seed ^ 0xfeed);
    while (!go.load()) std::this_thread::yield();
    for (int i = 0; i < kChurns; ++i) {
      port->trigger(make_event<Churn>((rng() & 1) != 0));
      if ((rng() & 0x3f) == 0) std::this_thread::yield();
    }
  });
  go.store(true);
  for (auto& t : threads) t.join();
  rt->await_quiescence();

  const long total_ticks = static_cast<long>(kTickThreads) * kTicksPerThread;
  EXPECT_EQ(churny.base_seen.load(), total_ticks)
      << "the permanent subscription must see every tick despite churn";

  // Drain all dynamic subscriptions, then verify none ever fires again.
  for (int i = 0; i < 8; ++i) port->trigger(make_event<Churn>(false));
  rt->await_quiescence();
  ASSERT_EQ(churny.dynamic_count(), 0u);
  const long dynamic_before = churny.dynamic_seen.load();
  for (int i = 0; i < 500; ++i) port->trigger(make_event<Tick>());
  rt->await_quiescence();
  EXPECT_EQ(churny.dynamic_seen.load(), dynamic_before)
      << "an unsubscribed-and-quiesced handler fired again";
  EXPECT_EQ(churny.base_seen.load(), total_ticks + 500);
}

}  // namespace
}  // namespace kompics::test
