#pragma once

// Shared plumbing for the stress drivers in tests/stress/.
//
// Every driver is seeded, bounded, and reproducible:
//   - the seed comes from $KOMPICS_STRESS_SEED or std::random_device and is
//     ALWAYS printed, so a failing interleaving can be replayed;
//   - $KOMPICS_STRESS_SCALE multiplies iteration counts (default 1) so CI
//     can soak without changing code.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <random>
#include <thread>

namespace kompics::stress {

/// Resolves and announces the run's seed. Call once per test.
inline std::uint64_t announce_seed(const char* test_name) {
  std::uint64_t seed;
  if (const char* s = std::getenv("KOMPICS_STRESS_SEED")) {
    seed = std::strtoull(s, nullptr, 10);
  } else {
    std::random_device rd;
    seed = (static_cast<std::uint64_t>(rd()) << 32) ^ rd();
  }
  std::printf("[stress] %s seed=%llu  (replay: KOMPICS_STRESS_SEED=%llu)\n", test_name,
              static_cast<unsigned long long>(seed), static_cast<unsigned long long>(seed));
  std::fflush(stdout);
  return seed;
}

/// Iteration multiplier from $KOMPICS_STRESS_SCALE, >= 1.
inline int scale() {
  if (const char* s = std::getenv("KOMPICS_STRESS_SCALE")) {
    return std::max(1, std::atoi(s));
  }
  return 1;
}

/// Spins (yielding) until `cond` or the budget elapses; returns cond().
inline bool spin_until(const std::function<bool()>& cond, int budget_ms) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(budget_ms);
  while (!cond()) {
    if (std::chrono::steady_clock::now() >= deadline) return cond();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

}  // namespace kompics::stress
