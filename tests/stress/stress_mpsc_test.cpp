// Stress driver: MpscQueue under multi-producer push vs. single-consumer
// pop/empty. The Vyukov queue's dangerous windows are (a) the push gap
// between head-exchange and next-store, (b) the stub re-insertion when the
// queue momentarily holds exactly one real node. Bursty producers with
// seeded jitter hammer both; the consumer interleaves empty() probes the
// way ComponentCore does between pops.

#include <gtest/gtest.h>

#include <atomic>
#include <deque>
#include <random>
#include <thread>
#include <vector>

#include "kompics/mpsc_queue.hpp"
#include "stress_util.hpp"

namespace kompics::test {
namespace {

struct Node {
  std::atomic<Node*> next{nullptr};
  int producer = 0;
  int seq = 0;
};

TEST(StressMpsc, ContinuousProducersFifoAndNoLoss) {
  const std::uint64_t seed = stress::announce_seed("StressMpsc.Continuous");
  const int kProducers = 4;
  const int kPerProducer = 15000 * stress::scale();

  MpscQueue<Node> q;
  std::deque<Node> storage(static_cast<std::size_t>(kProducers) * kPerProducer);

  std::atomic<bool> go{false};
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      std::mt19937_64 rng(seed + static_cast<std::uint64_t>(p));
      while (!go.load()) std::this_thread::yield();
      for (int i = 0; i < kPerProducer; ++i) {
        Node& n = storage[static_cast<std::size_t>(p) * kPerProducer + i];
        n.producer = p;
        n.seq = i;
        q.push(&n);
        if ((rng() & 0x3f) == 0) std::this_thread::yield();
      }
    });
  }
  go.store(true);

  std::mt19937_64 rng(seed ^ 0xc0ffee);
  std::vector<int> last_seq(kProducers, -1);
  long received = 0;
  const long expected = static_cast<long>(kProducers) * kPerProducer;
  while (received < expected) {
    if ((rng() & 0x1f) == 0) (void)q.empty();  // consumer-side probe, as the core does
    Node* n = q.pop();
    if (n == nullptr) {
      std::this_thread::yield();
      continue;
    }
    ASSERT_EQ(n->seq, last_seq[n->producer] + 1) << "per-producer FIFO violated";
    last_seq[n->producer] = n->seq;
    ++received;
  }
  for (auto& t : producers) t.join();
  EXPECT_EQ(q.pop(), nullptr);
  EXPECT_TRUE(q.empty());
}

TEST(StressMpsc, BurstyProducersExerciseEmptyTransitions) {
  // Small bursts separated by pauses keep the queue crossing the
  // empty <-> one-node <-> many boundary, where the stub juggling lives.
  const std::uint64_t seed = stress::announce_seed("StressMpsc.Bursty");
  const int kProducers = 2;
  const int kBursts = 300 * stress::scale();
  const int kBurst = 16;

  MpscQueue<Node> q;
  std::deque<Node> storage(static_cast<std::size_t>(kProducers) * kBursts * kBurst);

  std::atomic<long> pushed{0};
  std::atomic<bool> done{false};
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      std::mt19937_64 rng(seed + 17 * static_cast<std::uint64_t>(p));
      int seq = 0;
      for (int b = 0; b < kBursts; ++b) {
        for (int i = 0; i < kBurst; ++i) {
          Node& n = storage[(static_cast<std::size_t>(p) * kBursts + b) * kBurst + i];
          n.producer = p;
          n.seq = seq++;
          q.push(&n);
          pushed.fetch_add(1);
        }
        // Pause long enough for the consumer to drain to empty sometimes.
        for (std::uint64_t spin = rng() % 200; spin > 0; --spin) std::this_thread::yield();
      }
    });
  }

  std::vector<int> last_seq(kProducers, -1);
  long received = 0;
  const long expected = static_cast<long>(kProducers) * kBursts * kBurst;
  std::thread consumer([&] {
    while (received < expected) {
      Node* n = q.pop();
      if (n == nullptr) {
        (void)q.empty();
        std::this_thread::yield();
        continue;
      }
      ASSERT_EQ(n->seq, last_seq[n->producer] + 1);
      last_seq[n->producer] = n->seq;
      ++received;
    }
    done.store(true);
  });
  for (auto& t : producers) t.join();
  consumer.join();
  EXPECT_TRUE(done.load());
  EXPECT_EQ(received, pushed.load());
  EXPECT_TRUE(q.empty());
}

}  // namespace
}  // namespace kompics::test
