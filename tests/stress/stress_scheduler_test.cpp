// Stress driver: the work-stealing scheduler under park/wake churn and
// forced steal pressure. Small bursts separated by quiescence make every
// worker park between rounds, hitting the sleep/notify/epoch machinery on
// each burst — the surface of the missed-wakeup fix. The imbalanced
// variant fans all work out from one worker so the others must steal to
// finish. Both check the executed-vs-scheduled ledger of stats().

#include <gtest/gtest.h>

#include <atomic>
#include <random>
#include <thread>
#include <vector>

#include "kompics/kompics.hpp"
#include "kompics/work_stealing_scheduler.hpp"
#include "stress_util.hpp"

namespace kompics::test {
namespace {

class Tick : public Event {};
class TickPort : public PortType {
 public:
  TickPort() {
    set_name("StressTickPort");
    negative<Tick>();
    positive<Tick>();
  }
};

class CountingSink : public ComponentDefinition {
 public:
  CountingSink() {
    subscribe<Tick>(port_, [this](const Tick&) {
      volatile double x = 1.0;
      for (int i = 0; i < 100; ++i) x = x * 1.0000001 + 0.5;
      (void)x;
      done.fetch_add(1);
    });
  }
  Negative<TickPort> port_ = provide<TickPort>();
  std::atomic<long> done{0};
};

class FarmMain : public ComponentDefinition {
 public:
  explicit FarmMain(int n) {
    for (int i = 0; i < n; ++i) sinks.push_back(create<CountingSink>());
  }
  std::vector<Component> sinks;
};

PortCore* tick_port(const Component& c) {
  return c.core()->find_port(std::type_index(typeid(TickPort)), true)->outside.get();
}

TEST(StressScheduler, ParkWakeChurnLosesNoWork) {
  const std::uint64_t seed = stress::announce_seed("StressScheduler.ParkWake");
  const int kComponents = 8;
  const int kRounds = 300 * stress::scale();

  WorkStealingScheduler::Options opts;
  opts.workers = 4;
  auto scheduler = std::make_unique<WorkStealingScheduler>(opts);
  auto* sched = scheduler.get();
  Runtime rt(Config{}, std::move(scheduler), std::make_unique<WallClock>(), 1);
  auto main = rt.bootstrap<FarmMain>(kComponents);
  auto& def = main.definition_as<FarmMain>();
  rt.await_quiescence();

  const auto baseline = sched->stats();
  std::mt19937_64 rng(seed);
  long sent = 0;
  for (int round = 0; round < kRounds; ++round) {
    // 1-3 events to random components: too little work for every worker,
    // so most park and must be woken (or steal) next round.
    const int burst = 1 + static_cast<int>(rng() % 3);
    for (int i = 0; i < burst; ++i) {
      tick_port(def.sinks[rng() % kComponents])->trigger(make_event<Tick>());
      ++sent;
    }
    rt.await_quiescence();
  }

  long done = 0;
  for (auto& s : def.sinks) done += s.definition_as<CountingSink>().done.load();
  EXPECT_EQ(done, sent) << "park/wake churn dropped or duplicated work";
  const auto stats = sched->stats();
  EXPECT_EQ(stats.executed - baseline.executed, static_cast<std::uint64_t>(sent))
      << "stats ledger must match scheduled work exactly";
  // Idle workers park within ~1 ms of running dry, but on a loaded (or
  // single-CPU) host the whole burst loop can finish before any worker
  // accumulates enough empty probes — so wait for the first park rather
  // than assuming one already happened.
  stress::spin_until([&] { return sched->stats().parks > baseline.parks; }, 5000);
  EXPECT_GT(sched->stats().parks, baseline.parks) << "idle workers should park";
}

/// Fans one Tick out to every connected sink, so all resulting ready
/// components are born on the spreader's worker.
class Spreader : public ComponentDefinition {
 public:
  Spreader() {
    subscribe<Tick>(out_, [this](const Tick&) { trigger(make_event<Tick>(), out_); });
  }
  Negative<TickPort> out_ = provide<TickPort>();
};

class StealSink : public ComponentDefinition {
 public:
  StealSink() {
    subscribe<Tick>(port_, [this](const Tick&) {
      volatile double x = 1.0;
      for (int i = 0; i < 200; ++i) x = x * 1.0000001 + 0.5;
      (void)x;
      done.fetch_add(1);
    });
  }
  Positive<TickPort> port_ = require<TickPort>();
  std::atomic<long> done{0};
};

class ImbalancedMain : public ComponentDefinition {
 public:
  explicit ImbalancedMain(int n) {
    spreader = create<Spreader>();
    for (int i = 0; i < n; ++i) {
      sinks.push_back(create<StealSink>());
      connect(spreader.provided<TickPort>(), sinks.back().required<TickPort>());
    }
  }
  Component spreader;
  std::vector<Component> sinks;
};

TEST(StressScheduler, StealChurnUnderParkWakePressure) {
  const std::uint64_t seed = stress::announce_seed("StressScheduler.Steal");
  const int kSinks = 16;
  const int kBursts = 120 * stress::scale();

  WorkStealingScheduler::Options opts;
  opts.workers = 4;
  auto scheduler = std::make_unique<WorkStealingScheduler>(opts);
  auto* sched = scheduler.get();
  Runtime rt(Config{}, std::move(scheduler), std::make_unique<WallClock>(), 1);
  auto main = rt.bootstrap<ImbalancedMain>(kSinks);
  auto& def = main.definition_as<ImbalancedMain>();
  rt.await_quiescence();

  auto* spread = def.spreader.core()->find_port(std::type_index(typeid(TickPort)), true);
  std::mt19937_64 rng(seed);
  for (int b = 0; b < kBursts; ++b) {
    spread->inside->trigger(make_event<Tick>());
    // Random quiescence points force full drain + re-park between some
    // bursts and back-to-back injection between others.
    if ((rng() & 3) == 0) rt.await_quiescence();
  }
  rt.await_quiescence();

  long done = 0;
  for (auto& s : def.sinks) done += s.definition_as<StealSink>().done.load();
  EXPECT_EQ(done, static_cast<long>(kSinks) * kBursts);
  const auto stats = sched->stats();
  EXPECT_GT(stats.steals, 0u) << "fan-out imbalance should force steals";
}

/// Multi-threaded external producers: schedule() racing from outside the
/// worker pool while workers park and wake.
TEST(StressScheduler, ExternalProducersRaceParkedWorkers) {
  const std::uint64_t seed = stress::announce_seed("StressScheduler.External");
  const int kComponents = 4;
  const int kThreads = 4;
  const int kPerThread = 2000 * stress::scale();

  auto rt = Runtime::threaded(Config{}, 4, 1);
  auto main = rt->bootstrap<FarmMain>(kComponents);
  auto& def = main.definition_as<FarmMain>();
  rt->await_quiescence();

  std::vector<PortCore*> ports;
  for (auto& s : def.sinks) ports.push_back(tick_port(s));

  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::mt19937_64 rng(seed + static_cast<std::uint64_t>(t));
      while (!go.load()) std::this_thread::yield();
      for (int i = 0; i < kPerThread; ++i) {
        ports[rng() % kComponents]->trigger(make_event<Tick>());
        // Occasional long pauses let workers park mid-stream.
        if ((rng() & 0xff) == 0) {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
      }
    });
  }
  go.store(true);
  for (auto& t : threads) t.join();
  rt->await_quiescence();

  long done = 0;
  for (auto& s : def.sinks) done += s.definition_as<CountingSink>().done.load();
  EXPECT_EQ(done, static_cast<long>(kThreads) * kPerThread);
}

}  // namespace
}  // namespace kompics::test
