// Tests for the simulation substrate: SimulatorCore ordering, virtual-time
// timers, the network emulator (latency/loss/partitions), deterministic
// replay, and the scenario DSL composition semantics (paper §3, §4.2, §4.4).

#include <gtest/gtest.h>

#include <vector>

#include "net/network_port.hpp"
#include "sim/network_emulator.hpp"
#include "sim/scenario.hpp"
#include "sim/sim_timer.hpp"
#include "sim/simulation.hpp"
#include "timing/timer_port.hpp"

namespace kompics::sim::test {
namespace {

using net::Address;
using net::Message;
using net::Network;

// ---- SimulatorCore ----------------------------------------------------------

TEST(SimulatorCore, ExecutesInTimeOrderWithFifoTies) {
  SimulatorCore core;
  std::vector<int> order;
  core.schedule(10, [&] { order.push_back(2); });
  core.schedule(5, [&] { order.push_back(1); });
  core.schedule(10, [&] { order.push_back(3); });  // same time: insertion order
  core.schedule(20, [&] { order.push_back(4); });
  while (core.advance_one()) {
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
  EXPECT_EQ(core.now(), 20);
}

TEST(SimulatorCore, CancelPreventsExecution) {
  SimulatorCore core;
  int fired = 0;
  const ActionId a = core.schedule(5, [&] { ++fired; });
  core.schedule(10, [&] { ++fired; });
  core.cancel(a);
  while (core.advance_one()) {
  }
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(core.now(), 10);
}

TEST(SimulatorCore, ActionsCanScheduleMoreActions) {
  SimulatorCore core;
  std::vector<TimeMs> times;
  std::function<void()> tick = [&] {
    times.push_back(core.now());
    if (times.size() < 5) core.schedule(7, tick);
  };
  core.schedule(0, tick);
  while (core.advance_one()) {
  }
  EXPECT_EQ(times, (std::vector<TimeMs>{0, 7, 14, 21, 28}));
}

// ---- SimTimer through a consumer component ---------------------------------

struct TickTimeout : timing::Timeout {
  using Timeout::Timeout;
};

class TimerUser : public ComponentDefinition {
 public:
  TimerUser() {
    subscribe<TickTimeout>(timer_, [this](const TickTimeout& t) {
      fire_times.push_back(now());
      last_id = t.id();
    });
  }
  void one_shot(DurationMs d) { trigger(timing::schedule<TickTimeout>(d), timer_); }
  timing::TimeoutId periodic(DurationMs initial, DurationMs period) {
    auto ev = timing::schedule_periodic<TickTimeout>(initial, period);
    trigger(ev, timer_);
    return ev->timeout_id();
  }
  void cancel(timing::TimeoutId id) { trigger(make_event<timing::CancelTimeout>(id), timer_); }

  Positive<timing::Timer> timer_ = require<timing::Timer>();
  std::vector<TimeMs> fire_times;
  timing::TimeoutId last_id = 0;
};

class TimerMain : public ComponentDefinition {
 public:
  explicit TimerMain(SimulatorCore* core) {
    timer = create<SimTimer>();
    trigger(make_event<SimTimer::Init>(core), timer.control());
    user = create<TimerUser>();
    connect(timer.provided<timing::Timer>(), user.required<timing::Timer>());
  }
  Component timer, user;
};

TEST(SimTimer, OneShotFiresAtVirtualDeadline) {
  Simulation sim;
  auto main = sim.bootstrap<TimerMain>(&sim.core());
  sim.run();
  auto& user = main.definition_as<TimerMain>().user.definition_as<TimerUser>();
  user.one_shot(123);
  sim.run();
  ASSERT_EQ(user.fire_times.size(), 1u);
  EXPECT_EQ(user.fire_times[0], 123);
}

TEST(SimTimer, PeriodicFiresUntilCancelled) {
  Simulation sim;
  auto main = sim.bootstrap<TimerMain>(&sim.core());
  sim.run();
  auto& user = main.definition_as<TimerMain>().user.definition_as<TimerUser>();
  const auto id = user.periodic(10, 50);
  sim.run_until(180);
  EXPECT_EQ(user.fire_times, (std::vector<TimeMs>{10, 60, 110, 160}));
  user.cancel(id);
  sim.run_until(1000);
  EXPECT_EQ(user.fire_times.size(), 4u);
}

// ---- network emulator -------------------------------------------------------

class SimPing : public Message {
 public:
  SimPing(Address s, Address d, int n) : Message(s, d), n(n) {}
  int n;
};

class SimNode : public ComponentDefinition {
 public:
  SimNode() {
    subscribe<SimPing>(network_, [this](const SimPing& p) {
      received.push_back({p.n, now()});
    });
  }
  void send(Address from, Address to, int n) {
    trigger(make_event<SimPing>(from, to, n), network_);
  }
  Positive<Network> network_ = require<Network>();
  std::vector<std::pair<int, TimeMs>> received;
};

class EmuPairMain : public ComponentDefinition {
 public:
  explicit EmuPairMain(SimNetworkHubPtr hub) {
    netA = create<NetworkEmulator>();
    trigger(make_event<NetworkEmulator::Init>(Address::node(1), hub), netA.control());
    netB = create<NetworkEmulator>();
    trigger(make_event<NetworkEmulator::Init>(Address::node(2), hub), netB.control());
    nodeA = create<SimNode>();
    nodeB = create<SimNode>();
    connect(netA.provided<Network>(), nodeA.required<Network>());
    connect(netB.provided<Network>(), nodeB.required<Network>());
  }
  Component netA, netB, nodeA, nodeB;
};

TEST(NetworkEmulator, DeliversWithModelLatency) {
  Simulation sim;
  LinkModel model;
  model.min_latency = 7;
  model.max_latency = 7;
  auto hub = std::make_shared<SimNetworkHub>(&sim.core(), 99, model);
  auto main = sim.bootstrap<EmuPairMain>(hub);
  sim.run();
  auto& def = main.definition_as<EmuPairMain>();
  def.nodeA.definition_as<SimNode>().send(Address::node(1), Address::node(2), 42);
  sim.run();
  auto& received = def.nodeB.definition_as<SimNode>().received;
  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(received[0].first, 42);
  EXPECT_EQ(received[0].second, 7);
  EXPECT_EQ(hub->stats().delivered, 1u);
}

TEST(NetworkEmulator, FullLossDropsEverything) {
  Simulation sim;
  LinkModel model;
  model.loss = 1.0;
  auto hub = std::make_shared<SimNetworkHub>(&sim.core(), 99, model);
  auto main = sim.bootstrap<EmuPairMain>(hub);
  sim.run();
  auto& def = main.definition_as<EmuPairMain>();
  for (int i = 0; i < 10; ++i) {
    def.nodeA.definition_as<SimNode>().send(Address::node(1), Address::node(2), i);
  }
  sim.run();
  EXPECT_TRUE(def.nodeB.definition_as<SimNode>().received.empty());
  EXPECT_EQ(hub->stats().lost, 10u);
}

TEST(NetworkEmulator, PartitionBlocksCrossGroupTraffic) {
  Simulation sim;
  auto hub = std::make_shared<SimNetworkHub>(&sim.core(), 99);
  auto main = sim.bootstrap<EmuPairMain>(hub);
  sim.run();
  auto& def = main.definition_as<EmuPairMain>();

  hub->partition({{1}, {2}});
  def.nodeA.definition_as<SimNode>().send(Address::node(1), Address::node(2), 1);
  sim.run();
  EXPECT_TRUE(def.nodeB.definition_as<SimNode>().received.empty());
  EXPECT_EQ(hub->stats().partitioned, 1u);

  hub->heal();
  def.nodeA.definition_as<SimNode>().send(Address::node(1), Address::node(2), 2);
  sim.run();
  EXPECT_EQ(def.nodeB.definition_as<SimNode>().received.size(), 1u);
}

TEST(NetworkEmulator, FifoLinksPreserveSendOrder) {
  Simulation sim;
  LinkModel model;
  model.min_latency = 1;
  model.max_latency = 50;  // heavy jitter
  model.fifo = true;
  auto hub = std::make_shared<SimNetworkHub>(&sim.core(), 7, model);
  auto main = sim.bootstrap<EmuPairMain>(hub);
  sim.run();
  auto& def = main.definition_as<EmuPairMain>();
  for (int i = 0; i < 50; ++i) {
    def.nodeA.definition_as<SimNode>().send(Address::node(1), Address::node(2), i);
  }
  sim.run();
  const auto& received = def.nodeB.definition_as<SimNode>().received;
  ASSERT_EQ(received.size(), 50u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(received[i].first, i);
}

// Determinism: identical seeds produce identical delivery traces; different
// seeds (with jitter) produce different ones.
std::vector<std::pair<int, TimeMs>> run_jitter_trace(std::uint64_t seed) {
  Simulation sim(Config{}, seed);
  LinkModel model;
  model.min_latency = 1;
  model.max_latency = 100;
  model.loss = 0.2;
  auto hub = std::make_shared<SimNetworkHub>(&sim.core(), seed, model);
  auto main = sim.bootstrap<EmuPairMain>(hub);
  sim.run();
  auto& def = main.definition_as<EmuPairMain>();
  for (int i = 0; i < 100; ++i) {
    def.nodeA.definition_as<SimNode>().send(Address::node(1), Address::node(2), i);
  }
  sim.run();
  return def.nodeB.definition_as<SimNode>().received;
}

TEST(Determinism, SameSeedSameTrace) {
  const auto t1 = run_jitter_trace(12345);
  const auto t2 = run_jitter_trace(12345);
  EXPECT_EQ(t1, t2);
}

TEST(Determinism, DifferentSeedDifferentTrace) {
  const auto t1 = run_jitter_trace(1);
  const auto t2 = run_jitter_trace(2);
  EXPECT_NE(t1, t2);
}

// ---- scenario DSL -----------------------------------------------------------

TEST(Scenario, RaisesExactCountsWithInterArrival) {
  Simulation sim;
  Scenario scenario(7);
  int count = 0;
  auto p = scenario.process("boot");
  p->inter_arrival(Dist::constant(10)).raise(25, [&] { ++count; });
  scenario.start(p);
  scenario.run(sim);
  EXPECT_EQ(count, 25);
  EXPECT_EQ(sim.now(), 250);  // 25 events, 10 ms apart, first at t=10
}

TEST(Scenario, OperandsComeFromDistributions) {
  Simulation sim;
  Scenario scenario(7);
  std::vector<std::uint64_t> ids;
  auto p = scenario.process("joins");
  p->inter_arrival(Dist::constant(1))
      .raise(200, [&](std::uint64_t id) { ids.push_back(id); }, Dist::uniform_bits(8));
  scenario.start(p);
  scenario.run(sim);
  ASSERT_EQ(ids.size(), 200u);
  for (auto v : ids) EXPECT_LT(v, 256u);
  // Not all identical (it is a distribution).
  EXPECT_NE(*std::min_element(ids.begin(), ids.end()),
            *std::max_element(ids.begin(), ids.end()));
}

TEST(Scenario, GroupsInterleaveRandomly) {
  Simulation sim;
  Scenario scenario(11);
  std::vector<int> sequence;
  auto churn = scenario.process("churn");
  churn->inter_arrival(Dist::constant(1))
      .raise(50, [&] { sequence.push_back(1); })
      .raise(50, [&] { sequence.push_back(2); });
  scenario.start(churn);
  scenario.run(sim);
  ASSERT_EQ(sequence.size(), 100u);
  EXPECT_EQ(std::count(sequence.begin(), sequence.end(), 1), 50);
  // Interleaved, not two solid blocks.
  bool mixed = false;
  for (std::size_t i = 1; i < 50; ++i) {
    if (sequence[i] != sequence[0]) mixed = true;
  }
  EXPECT_TRUE(mixed);
}

TEST(Scenario, SequentialAndParallelComposition) {
  Simulation sim;
  Scenario scenario(3);
  std::vector<std::pair<char, TimeMs>> trace;
  auto boot = scenario.process("boot");
  boot->inter_arrival(Dist::constant(5)).raise(3, [&] { trace.push_back({'b', sim.now()}); });
  auto churn = scenario.process("churn");
  churn->inter_arrival(Dist::constant(5)).raise(3, [&] { trace.push_back({'c', sim.now()}); });
  auto lookups = scenario.process("lookups");
  lookups->inter_arrival(Dist::constant(2)).raise(4, [&] { trace.push_back({'l', sim.now()}); });

  scenario.start(boot);
  scenario.start_after_termination_of(100, boot, churn);          // sequential
  scenario.start_after_start_of(4, churn, lookups);               // parallel
  scenario.terminate_after_termination_of(50, lookups);
  scenario.run(sim);

  // boot: t=5,10,15. churn starts at 115: fires 120,125,130.
  // lookups start at 119: fires 121,123,125,127. Termination: 127+50=177.
  ASSERT_EQ(trace.size(), 10u);
  EXPECT_EQ(trace[0], std::make_pair('b', TimeMs{5}));
  EXPECT_EQ(trace[2], std::make_pair('b', TimeMs{15}));
  TimeMs churn_start = 0, lookup_start = 0;
  for (auto& [c, t] : trace) {
    if (c == 'c' && churn_start == 0) churn_start = t;
    if (c == 'l' && lookup_start == 0) lookup_start = t;
  }
  EXPECT_EQ(churn_start, 120);
  EXPECT_EQ(lookup_start, 121);
  EXPECT_TRUE(scenario.terminated());
  EXPECT_EQ(sim.now(), 177);
}

TEST(Scenario, SameSeedReplaysIdentically) {
  auto run_once = [](std::uint64_t seed) {
    Simulation sim;
    Scenario scenario(seed);
    std::vector<std::pair<std::uint64_t, TimeMs>> trace;
    auto p = scenario.process("ops");
    p->inter_arrival(Dist::exponential(20))
        .raise(100, [&](std::uint64_t v) { trace.push_back({v, sim.now()}); },
               Dist::uniform_bits(16));
    scenario.start(p);
    scenario.run(sim);
    return trace;
  };
  EXPECT_EQ(run_once(42), run_once(42));
  EXPECT_NE(run_once(42), run_once(43));
}

}  // namespace
}  // namespace kompics::sim::test
