// Deep tests of the event-propagation rule (DESIGN.md §2.2 / paper §2.3):
// composite pass-through across multiple hierarchy levels, parent
// subscriptions on child ports, absence of loop-back, per-direction
// filtering by port types, and subtype-based delivery.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "kompics/kompics.hpp"

namespace kompics::test {
namespace {

class Req : public Event {
 public:
  explicit Req(int n) : n(n) {}
  int n;
};
class Ind : public Event {
 public:
  explicit Ind(int n) : n(n) {}
  int n;
};
class SpecialInd : public Ind {
 public:
  explicit SpecialInd(int n) : Ind(n) {}
};

class Svc : public PortType {
 public:
  Svc() {
    set_name("Svc");
    request<Req>();
    indication<Ind>();
  }
};

/// Leaf server: answers Req(n) with Ind(n * 10); odd n get a SpecialInd.
class Leaf : public ComponentDefinition {
 public:
  Leaf() {
    subscribe<Req>(svc_, [this](const Req& r) {
      ++served;
      if (r.n % 2 == 1) {
        trigger(make_event<SpecialInd>(r.n * 10), svc_);
      } else {
        trigger(make_event<Ind>(r.n * 10), svc_);
      }
    });
  }
  Negative<Svc> svc_ = provide<Svc>();
  int served = 0;
};

/// Composite that simply re-exports a child's provided Svc (pass-through).
class Wrapper : public ComponentDefinition {
 public:
  Wrapper() {
    inner = create<Leaf>();
    connect(inner.provided<Svc>(), svc_);  // child's outside + to own inside -
  }
  Negative<Svc> svc_ = provide<Svc>();
  Component inner;
};

/// Two levels of wrapping: requests must descend 2 composite boundaries,
/// indications must ascend them.
class DoubleWrapper : public ComponentDefinition {
 public:
  DoubleWrapper() {
    mid = create<Wrapper>();
    connect(mid.provided<Svc>(), svc_);
  }
  Negative<Svc> svc_ = provide<Svc>();
  Component mid;
};

class Client : public ComponentDefinition {
 public:
  Client() {
    subscribe<Ind>(svc_, [this](const Ind& i) { inds.push_back(i.n); });
    subscribe<SpecialInd>(svc_, [this](const SpecialInd& i) { specials.push_back(i.n); });
  }
  void ask(int n) { trigger(make_event<Req>(n), svc_); }
  Positive<Svc> svc_ = require<Svc>();
  std::vector<int> inds;
  std::vector<int> specials;
};

class DeepMain : public ComponentDefinition {
 public:
  DeepMain() {
    server = create<DoubleWrapper>();
    client = create<Client>();
    connect(server.provided<Svc>(), client.required<Svc>());

    // Parent-scope subscription on a child's port (paper §2.3: "the ports
    // visible in a component's scope are its own ports and the ports of its
    // immediate sub-components").
    subscribe<Ind>(server.provided<Svc>(), [this](const Ind& i) { observed.push_back(i.n); });
  }
  Component server, client;
  std::vector<int> observed;
};

std::unique_ptr<Runtime> make_runtime() { return Runtime::threaded(Config{}, 2, 5); }

TEST(PortSemantics, RequestsDescendAndIndicationsAscendTwoCompositeLevels) {
  auto rt = make_runtime();
  auto main = rt->bootstrap<DeepMain>();
  auto& def = main.definition_as<DeepMain>();
  rt->await_quiescence();

  def.client.definition_as<Client>().ask(2);
  def.client.definition_as<Client>().ask(4);
  rt->await_quiescence();

  auto& leaf = def.server.definition_as<DoubleWrapper>()
                   .mid.definition_as<Wrapper>()
                   .inner.definition_as<Leaf>();
  EXPECT_EQ(leaf.served, 2) << "requests must reach the leaf through 2 composites";
  EXPECT_EQ(def.client.definition_as<Client>().inds, (std::vector<int>{20, 40}));
}

TEST(PortSemantics, ParentObservesChildPortTraffic) {
  auto rt = make_runtime();
  auto main = rt->bootstrap<DeepMain>();
  auto& def = main.definition_as<DeepMain>();
  rt->await_quiescence();

  def.client.definition_as<Client>().ask(6);
  rt->await_quiescence();
  // Main's own handler subscribed on the composite's provided port sees the
  // outgoing indication, in addition to the client receiving it.
  EXPECT_EQ(def.observed, (std::vector<int>{60}));
  EXPECT_EQ(def.client.definition_as<Client>().inds, (std::vector<int>{60}));
}

TEST(PortSemantics, SubtypeHandlersFireAlongsideBaseHandlers) {
  auto rt = make_runtime();
  auto main = rt->bootstrap<DeepMain>();
  auto& def = main.definition_as<DeepMain>();
  rt->await_quiescence();

  def.client.definition_as<Client>().ask(3);  // odd -> SpecialInd
  rt->await_quiescence();
  auto& client = def.client.definition_as<Client>();
  // SpecialInd IS-A Ind: both subscriptions fire for the one event.
  EXPECT_EQ(client.inds, (std::vector<int>{30}));
  EXPECT_EQ(client.specials, (std::vector<int>{30}));
}

// ---- no loop-back ------------------------------------------------------------

class Chatty : public ComponentDefinition {
 public:
  Chatty() {
    // Subscribes to requests on its own *provided* port AND triggers
    // requests... no: it provides Svc and also handles Ind? A provider
    // receives Req; if its own triggered Ind looped back, this handler
    // chain would recurse. Count any Req received.
    subscribe<Req>(svc_, [this](const Req&) {
      ++requests_seen;
      trigger(make_event<Ind>(1), svc_);
    });
  }
  Negative<Svc> svc_ = provide<Svc>();
  int requests_seen = 0;
};

TEST(PortSemantics, TriggeredEventsDoNotLoopBackToTheTriggeringComponent) {
  class Main : public ComponentDefinition {
   public:
    Main() {
      chatty = create<Chatty>();
      client = create<Client>();
      connect(chatty.provided<Svc>(), client.required<Svc>());
    }
    Component chatty, client;
  };
  auto rt = make_runtime();
  auto main = rt->bootstrap<Main>();
  auto& def = main.definition_as<Main>();
  rt->await_quiescence();

  def.client.definition_as<Client>().ask(1);
  rt->await_quiescence();
  EXPECT_EQ(def.chatty.definition_as<Chatty>().requests_seen, 1)
      << "the provider's own Ind must not re-enter its Req handler";
  EXPECT_EQ(def.client.definition_as<Client>().inds.size(), 1u);
}

// ---- direction filtering ------------------------------------------------------

TEST(PortSemantics, HandlersOnlySeeEventsOfTheirDirection) {
  // A component that provides Svc and (illegally for its role) subscribes a
  // handler for Ind on that provided port: indications it TRIGGERS flow
  // outward and must not be dispatched to that handler.
  class Confused : public ComponentDefinition {
   public:
    Confused() {
      subscribe<Ind>(svc_, [this](const Ind&) { ++ind_seen; });
      subscribe<Req>(svc_, [this](const Req&) {
        trigger(make_event<Ind>(9), svc_);
      });
    }
    Negative<Svc> svc_ = provide<Svc>();
    int ind_seen = 0;
  };
  class Main : public ComponentDefinition {
   public:
    Main() {
      confused = create<Confused>();
      client = create<Client>();
      connect(confused.provided<Svc>(), client.required<Svc>());
    }
    Component confused, client;
  };
  auto rt = make_runtime();
  auto main = rt->bootstrap<Main>();
  auto& def = main.definition_as<Main>();
  rt->await_quiescence();

  def.client.definition_as<Client>().ask(5);
  rt->await_quiescence();
  EXPECT_EQ(def.confused.definition_as<Confused>().ind_seen, 0)
      << "a provided port's inside half dispatches only negative-direction events";
  EXPECT_EQ(def.client.definition_as<Client>().inds, (std::vector<int>{9}));
}

// ---- one provider, many requirers; requests stay point-to-point upward --------

TEST(PortSemantics, RequestsFromOneClientReachProviderOnceIndicationsFanOut) {
  class Main : public ComponentDefinition {
   public:
    Main() {
      leaf = create<Leaf>();
      c1 = create<Client>();
      c2 = create<Client>();
      connect(leaf.provided<Svc>(), c1.required<Svc>());
      connect(leaf.provided<Svc>(), c2.required<Svc>());
    }
    Component leaf, c1, c2;
  };
  auto rt = make_runtime();
  auto main = rt->bootstrap<Main>();
  auto& def = main.definition_as<Main>();
  rt->await_quiescence();

  def.c1.definition_as<Client>().ask(2);
  rt->await_quiescence();
  // The provider serves exactly one request...
  EXPECT_EQ(def.leaf.definition_as<Leaf>().served, 1);
  // ...but its indication fans out through ALL channels on the provided
  // port (paper Fig. 6 — responses are broadcast to every connected
  // requirer; request/response correlation is the application's job).
  EXPECT_EQ(def.c1.definition_as<Client>().inds, (std::vector<int>{20}));
  EXPECT_EQ(def.c2.definition_as<Client>().inds, (std::vector<int>{20}));
}

// ---- unsubscribe during dispatch (§2.2 re-matching) ---------------------------

/// Two handlers for the same event on one port. While handling the first
/// event, the first handler (gated so a second event is already enqueued)
/// unsubscribes the second. Subscription matching happens twice: at
/// dispatch time (to enqueue work) and again at execution time — so the
/// unsubscribed handler must not run for either the in-flight event
/// (unsubscribed by an earlier handler of the same round) or the queued one
/// (re-match finds it gone).
class SelfPruner : public ComponentDefinition {
 public:
  SelfPruner() {
    first_ = subscribe<Req>(svc_, [this](const Req& r) {
      ++first_seen;
      if (r.n == 1) {
        inside_handler.store(true);
        while (!proceed.load()) std::this_thread::yield();
        unsubscribe(second_);
      }
    });
    second_ = subscribe<Req>(svc_, [this](const Req&) { ++second_seen; });
  }
  Negative<Svc> svc_ = provide<Svc>();
  SubscriptionRef first_, second_;
  std::atomic<bool> inside_handler{false};
  std::atomic<bool> proceed{false};
  int first_seen = 0;
  int second_seen = 0;
};

TEST(PortSemantics, UnsubscribeDuringDispatchRematchesAtExecutionTime) {
  class Main : public ComponentDefinition {
   public:
    Main() { pruner = create<SelfPruner>(); }
    Component pruner;
  };
  auto rt = make_runtime();
  auto main = rt->bootstrap<Main>();
  auto& def = main.definition_as<Main>();
  rt->await_quiescence();
  auto& pruner = def.pruner.definition_as<SelfPruner>();

  auto* port =
      def.pruner.core()->find_port(std::type_index(typeid(Svc)), true)->outside.get();
  port->trigger(make_event<Req>(1));
  // Wait until the first handler is mid-flight, then enqueue a second event
  // — its dispatch-time match still sees both subscriptions active.
  while (!pruner.inside_handler.load()) std::this_thread::yield();
  port->trigger(make_event<Req>(2));
  pruner.proceed.store(true);
  rt->await_quiescence();

  EXPECT_EQ(pruner.first_seen, 2) << "the surviving handler sees both events";
  EXPECT_EQ(pruner.second_seen, 0)
      << "a handler unsubscribed by an earlier handler must not run again — not for the "
         "event being handled, nor for already-enqueued ones (execution-time re-match)";
}

}  // namespace
}  // namespace kompics::test
