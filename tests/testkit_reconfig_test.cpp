// The consistent-quorum reconfiguration gates, rewritten on the TestKit
// event-stream DSL (ISSUE 7 satellite; originals lived in
// abd_protocol_test.cpp). Replica side: the view gate must nack unversioned
// phases, wrong view versions, and fenced ranges — in exactly that order on
// the wire. Coordinator side: a nack majority must trigger the fast retry
// only after the backoff. The DSL versions pin the full message order and
// measure the backoff in virtual time, which the hand-rolled originals
// could only approximate with coarse run_until windows.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "cats/abd.hpp"
#include "testkit/event_stream.hpp"

namespace kompics::cats::test {
namespace {

using testkit::PortHandle;
using testkit::Result;
using testkit::TestContext;
using testkit::TestProbe;

struct ReconfigDslTest : ::testing::Test {
  ReconfigDslTest() {
    CatsParams params;
    params.op_timeout_ms = 1000;
    params.op_max_retries = 2;
    ctx = std::make_unique<TestContext>(9, [this, params](TestProbe& p, sim::SimulatorCore&) {
      Component abd = p.make<ConsistentABD>();
      abd.control()->trigger(make_event<ConsistentABD::Init>(self, params));
      return abd;
    });
    router = ctx->monitor_required<Router>();
    net = ctx->monitor_required<net::Network>();
    putget = ctx->monitor_provided<PutGet>();
    ctx->attach_sim_timer();
  }

  EventPtr replica_read(OpId op, RingKey key, std::uint64_t view) {
    return make_event<AbdReadMsg>(peer, self.addr, op, key, view);
  }

  ConsistentABD& abd() { return ctx->cut().definition_as<ConsistentABD>(); }

  NodeRef self{100, Address::node(1)};
  Address peer = Address::node(99);
  Address reconfigurer = Address::node(200);
  std::vector<NodeRef> group{NodeRef{10, Address::node(10)}, NodeRef{20, Address::node(20)},
                             NodeRef{30, Address::node(30)}};
  std::unique_ptr<TestContext> ctx;
  PortHandle router, net, putget;
};

TEST_F(ReconfigDslTest, ReplicaGateNacksWrongViewsAndFencedRanges) {
  // Installing a view answers the parent with an ack — protocol noise for
  // this test's expectations.
  ctx->allow<ViewInstallAckMsg>(net);

  ctx
      // No installed view at all: nack names current_version 0.
      ->trigger(net, replica_read(0xCAF0001, 77, 1))
      .expect<AbdNackMsg>(net, [](const AbdNackMsg& m) { return m.current_version == 0; })
      // Hand the replica an installed view (version 3), as a decided
      // reconfiguration would.
      .trigger(net, make_event<ViewInstallMsg>(reconfigurer, self.addr, /*parent_hi=*/0,
                                               GroupView{0, 0, 3, {self}},
                                               std::vector<KeyState>{}))
      // Wrong view version: the nack names the installed version.
      .trigger(net, replica_read(0xCAF0002, 77, 2))
      .expect<AbdNackMsg>(net, [](const AbdNackMsg& m) { return m.current_version == 3; })
      // Matching version: served.
      .trigger(net, replica_read(0xCAF0003, 77, 3))
      .expect<AbdReadAckMsg>(net, [](const AbdReadAckMsg& m) { return !m.exists; })
      // A Prepare for the next version fences the range: even correctly
      // versioned phases are refused from then on (this is what guarantees
      // a majority-promised old view can never assemble another quorum).
      .trigger(net,
               make_event<ViewPrepareMsg>(reconfigurer, self.addr, 0, 0, /*target=*/4,
                                          Ballot{7, 42}))
      .expect<ViewPromiseMsg>(net, [](const ViewPromiseMsg& m) { return m.ok; })
      .trigger(net, replica_read(0xCAF0004, 77, 3))
      .expect<AbdNackMsg>(net)
      .exec([&] { EXPECT_EQ(abd().counters().view_fences, 1u); });

  const Result result = ctx->check();
  EXPECT_TRUE(result.ok) << result.message;
}

TEST_F(ReconfigDslTest, NackMajorityTriggersFastRetryAfterBackoff) {
  LookupRequest lookup{0, 0, 0};
  LookupRequest retry_lookup{0, 0, 0};
  std::vector<AbdReadMsg> reads;
  TimeMs nacked_at = 0;

  ctx->trigger(putget, make_event<PutRequest>(11, 23, Value{6}))
      .expect<LookupRequest>(router, [&](const LookupRequest& r) { lookup = r; })
      .trigger(router,
               [&] { return make_event<LookupResponse>(lookup.id, lookup.key, group, 1); })
      .repeat(3)
      .expect<AbdReadMsg>(net, [&](const AbdReadMsg& m) { reads.push_back(m); })
      .end_repeat()
      // Two of three replicas refuse the view: a quorum can never form under
      // it, so the coordinator schedules the fast retry.
      .trigger(net, [&] {
        return make_event<AbdNackMsg>(Address::node(10), reads[0].source(), reads[0].op,
                                      reads[0].key, /*current_version=*/9);
      })
      .trigger(net, [&] {
        return make_event<AbdNackMsg>(Address::node(20), reads[1].source(), reads[1].op,
                                      reads[1].key, /*current_version=*/9);
      })
      .settle(0)  // drain the nack deliveries before inspecting counters
      .exec([&] {
        EXPECT_EQ(abd().counters().fast_retries, 1u);
        nacked_at = ctx->now();
      })
      // The retry re-resolves the group — but only after the 50 ms backoff
      // (an instant retry would exhaust every attempt inside the fence
      // window of a single in-flight view change), and far before the
      // 1000 ms op timeout.
      .expect<LookupRequest>(router, [&](const LookupRequest& r) { retry_lookup = r; })
      .exec([&] {
        EXPECT_GE(ctx->now(), nacked_at + 50) << "retry must wait out the backoff";
        EXPECT_LT(ctx->now(), nacked_at + 1000) << "fast retry beats the op timeout";
      })
      .trigger(router,
               [&] {
                 return make_event<LookupResponse>(retry_lookup.id, retry_lookup.key, group, 9);
               })
      // A fresh read phase goes out under the new view.
      .repeat(3)
      .expect<AbdReadMsg>(net, [](const AbdReadMsg& m) { return m.view == 9; })
      .end_repeat();

  const Result result = ctx->check();
  EXPECT_TRUE(result.ok) << result.message;
}

}  // namespace
}  // namespace kompics::cats::test
