// Seeded schedule sweep for consistent quorums: every schedule runs a small
// cluster through a scripted partial partition (composition, link loss,
// reordering, duplication, and churn all varied by seed), fires operations
// from both sides, heals, and then checks the complete history with the
// Wing & Gong linearizability checker. Pre-fix — quorums drawn straight from
// each side's ring successor lists — a large fraction of these seeds commit
// divergent writes; with versioned quorum views every seed must linearize.
//
// The suite carries the `partition` ctest label so CI can run the whole
// sweep as one lane (`ctest -L partition`), including under TSan.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "cats/abd.hpp"
#include "cats/cats_simulator.hpp"
#include "cats/linearizability.hpp"
#include "sim/simulation.hpp"

namespace kompics::cats::test {
namespace {

using sim::LinkModel;
using sim::SimNetworkHub;
using sim::SimNetworkHubPtr;
using sim::Simulation;

class SimMain : public ComponentDefinition {
 public:
  SimMain(sim::SimulatorCore* core, SimNetworkHubPtr hub, CatsParams params) {
    simulator = create<CatsSimulator>(core, hub, params);
  }
  Component simulator;
};

std::uint32_t host(std::uint64_t id) { return static_cast<std::uint32_t>(id) + 2; }

class QuorumSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(QuorumSweep, ScheduleIsLinearizable) {
  const std::uint64_t seed = GetParam();

  // Schedule knobs, all derived deterministically from the seed.
  LinkModel link{1, 5, 0.0, /*fifo=*/seed % 2 == 0};
  if (seed % 3 == 0) link.loss = 0.05;          // every third seed drops packets
  link.duplicate = seed % 5 == 0 ? 0.05 : 0.0;  // every fifth also duplicates

  Simulation simulation(Config{}, seed);
  auto hub = std::make_shared<SimNetworkHub>(&simulation.core(), seed * 7 + 1, link);
  CatsParams params;
  params.op_timeout_ms = 600;
  params.op_max_retries = 2;
  params.bootstrap_refresh_ms = 2000;
  auto main_c = simulation.bootstrap<SimMain>(&simulation.core(), hub, params);
  simulation.run_until(1);
  auto& cats = main_c.definition_as<SimMain>().simulator.definition_as<CatsSimulator>();
  auto settle = [&](DurationMs t) { simulation.run_until(simulation.now() + t); };

  const std::vector<std::uint64_t> ids = {10, 20, 30, 40, 50};
  for (std::uint64_t id : ids) {
    cats.join(id);
    settle(300);
  }
  settle(8000);

  const RingKey k1 = hash_to_ring("sweep-a");
  const RingKey k2 = hash_to_ring("sweep-b");
  std::uint8_t vc = 0;

  // Pre-partition baseline writes from rotating coordinators.
  cats.put(ids[seed % 5], k1, Value{++vc});
  cats.put(ids[(seed + 2) % 5], k2, Value{++vc});
  settle(3000);

  // Partition composition varies by seed: an isolated node, a 2|3 split, or
  // a 3|2 split with the bootstrap server on the minority side.
  switch (seed % 4) {
    case 0:  // one node cut off from everyone, bootstrap with the rest
      hub->partition({{host(ids[seed % 5])},
                      {1, host(ids[(seed + 1) % 5]), host(ids[(seed + 2) % 5]),
                       host(ids[(seed + 3) % 5]), host(ids[(seed + 4) % 5])}});
      break;
    case 1:  // 2|3, bootstrap with the majority
      hub->partition({{host(ids[seed % 5]), host(ids[(seed + 1) % 5])},
                      {1, host(ids[(seed + 2) % 5]), host(ids[(seed + 3) % 5]),
                       host(ids[(seed + 4) % 5])}});
      break;
    case 2:  // 2|3, bootstrap with the two
      hub->partition({{1, host(ids[seed % 5]), host(ids[(seed + 1) % 5])},
                      {host(ids[(seed + 2) % 5]), host(ids[(seed + 3) % 5]),
                       host(ids[(seed + 4) % 5])}});
      break;
    default:  // adjacent 2|3 — maximizes shared replica groups across the cut
      hub->partition({{host(10), host(20)},
                      {1, host(30), host(40), host(50)}});
      break;
  }

  // A first volley lands mid-cut, while the failure detectors are still
  // evicting the far side; a second volley lands after each side's ring has
  // converged on itself — the window where, pre-fix, both sides answer
  // lookups from their own successor lists and commit divergently.
  cats.put(ids[seed % 5], k1, Value{++vc});
  cats.get(ids[(seed + 4) % 5], k1);
  settle(6000);
  cats.put(ids[seed % 5], k1, Value{++vc});
  cats.put(ids[(seed + 3) % 5], k1, Value{++vc});
  cats.get(ids[(seed + 1) % 5], k1);
  cats.get(ids[(seed + 4) % 5], k1);
  cats.put(ids[(seed + 2) % 5], k2, Value{++vc});
  cats.put(ids[(seed + 1) % 5], k2, Value{++vc});
  cats.get(ids[(seed + 2) % 5], k2);
  settle(4000);

  hub->heal();
  settle(12000);

  // Churn after healing on some seeds: a fresh join or a crash.
  if (seed % 3 == 1) {
    cats.join(60);
    settle(5000);
  } else if (seed % 3 == 2) {
    cats.fail(ids[(seed + 4) % 5]);
    settle(5000);
  }
  settle(10000);

  // Post-heal operations from whoever is still alive.
  auto alive = cats.alive_ids();
  ASSERT_FALSE(alive.empty());
  cats.put(alive[seed % alive.size()], k1, Value{++vc});
  settle(2000);
  cats.get(alive[(seed + 1) % alive.size()], k1);
  cats.get(alive[(seed + 2) % alive.size()], k2);
  settle(5000);

  // Every operation terminates, and the full history — divergence candidates
  // included — linearizes. Pre-fix, partition-side commits make this fail.
  const auto& h = cats.history();
  for (const auto& rec : h) {
    EXPECT_GE(rec.responded, 0) << "operation hung (seed " << seed << ")";
  }
  const auto lin = check_history(h);
  EXPECT_TRUE(lin.linearizable) << "seed " << seed << ": " << lin.explanation;
  EXPECT_FALSE(lin.budget_exceeded) << "seed " << seed << " checker budget exceeded";
}

INSTANTIATE_TEST_SUITE_P(Seeds, QuorumSweep, ::testing::Range<std::uint64_t>(1, 51));

}  // namespace
}  // namespace kompics::cats::test
