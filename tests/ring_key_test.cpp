// Property tests for ring-interval arithmetic — the foundation of
// responsibility intervals, routing, and replica placement. Wrap-around
// intervals are a classic source of off-by-one bugs, so these are swept
// parametrically.

#include <gtest/gtest.h>

#include <random>

#include "cats/ring_key.hpp"

namespace kompics::cats::test {
namespace {

TEST(RingInterval, BasicNonWrapped) {
  EXPECT_TRUE(in_interval_oc(10, 20, 15));
  EXPECT_TRUE(in_interval_oc(10, 20, 20));   // closed at 'to'
  EXPECT_FALSE(in_interval_oc(10, 20, 10));  // open at 'from'
  EXPECT_FALSE(in_interval_oc(10, 20, 21));
  EXPECT_FALSE(in_interval_oc(10, 20, 5));

  EXPECT_TRUE(in_interval_oo(10, 20, 15));
  EXPECT_FALSE(in_interval_oo(10, 20, 20));
  EXPECT_FALSE(in_interval_oo(10, 20, 10));
}

TEST(RingInterval, Wrapped) {
  // (100, 10]: wraps through 0.
  EXPECT_TRUE(in_interval_oc(100, 10, 105));
  EXPECT_TRUE(in_interval_oc(100, 10, 0));
  EXPECT_TRUE(in_interval_oc(100, 10, 10));
  EXPECT_FALSE(in_interval_oc(100, 10, 50));
  EXPECT_FALSE(in_interval_oc(100, 10, 100));

  EXPECT_TRUE(in_interval_oc(~0ull - 5, 5, ~0ull));
  EXPECT_TRUE(in_interval_oc(~0ull - 5, 5, 0));
}

TEST(RingInterval, DegenerateFullRing) {
  // from == to: (x, x] is the full ring — a lone node owns everything.
  EXPECT_TRUE(in_interval_oc(7, 7, 7));
  EXPECT_TRUE(in_interval_oc(7, 7, 8));
  EXPECT_TRUE(in_interval_oc(7, 7, 0));
  // Open-open excludes the endpoint itself.
  EXPECT_FALSE(in_interval_oo(7, 7, 7));
  EXPECT_TRUE(in_interval_oo(7, 7, 8));
}

class RingIntervalProperty : public ::testing::TestWithParam<int> {};

TEST_P(RingIntervalProperty, PartitionProperty) {
  // For any from != to, every key k lies in exactly one of (from, to] and
  // (to, from] — the two arcs partition the ring.
  std::mt19937_64 rng(GetParam());
  for (int i = 0; i < 2000; ++i) {
    const RingKey from = rng();
    RingKey to = rng();
    if (to == from) ++to;
    const RingKey k = rng();
    const bool in_a = in_interval_oc(from, to, k);
    const bool in_b = in_interval_oc(to, from, k);
    EXPECT_NE(in_a, in_b) << "from=" << from << " to=" << to << " k=" << k;
  }
}

TEST_P(RingIntervalProperty, OpenClosedConsistency) {
  std::mt19937_64 rng(GetParam() + 1000);
  for (int i = 0; i < 2000; ++i) {
    const RingKey from = rng();
    const RingKey to = rng();
    const RingKey k = rng();
    if (from == to) continue;
    // oo == oc minus the right endpoint.
    const bool oc = in_interval_oc(from, to, k);
    const bool oo = in_interval_oo(from, to, k);
    if (k == to) {
      EXPECT_TRUE(oc);
      EXPECT_FALSE(oo);
    } else {
      EXPECT_EQ(oc, oo);
    }
  }
}

TEST_P(RingIntervalProperty, DistanceIsCompatibleWithMembership) {
  std::mt19937_64 rng(GetParam() + 2000);
  for (int i = 0; i < 2000; ++i) {
    const RingKey from = rng();
    const RingKey to = rng();
    const RingKey k = rng();
    if (from == to) continue;
    // k in (from, to] iff walking clockwise from 'from', k comes no later
    // than 'to'.
    const bool member = ring_distance(from, k) <= ring_distance(from, to) && k != from;
    EXPECT_EQ(member, in_interval_oc(from, to, k));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RingIntervalProperty, ::testing::Range(0, 8));

TEST(RingHash, StableAndDispersed) {
  EXPECT_EQ(hash_to_ring("alpha"), hash_to_ring("alpha"));
  EXPECT_NE(hash_to_ring("alpha"), hash_to_ring("beta"));
  // Cheap dispersion check: 1000 sequential keys land in many distinct
  // 1/16th slices of the ring.
  std::set<std::uint64_t> slices;
  for (int i = 0; i < 1000; ++i) {
    slices.insert(hash_to_ring("key-" + std::to_string(i)) >> 60);
  }
  EXPECT_EQ(slices.size(), 16u);
}

}  // namespace
}  // namespace kompics::cats::test
