// Unit + property tests for the wire substrate: buffers, varints, the kz
// compressor, and the serialization registry.

#include <gtest/gtest.h>

#include <random>

#include "net/buffer.hpp"
#include "net/compression.hpp"
#include "net/serialization.hpp"

namespace kompics::net::test {
namespace {

TEST(Buffer, FixedWidthRoundTrip) {
  Bytes b;
  BufferWriter w(b);
  w.u8(0xab);
  w.u16(0xbeef);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefULL);
  w.f64(3.14159);
  w.boolean(true);
  w.str("kompics");

  BufferReader r(b);
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0xbeef);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_DOUBLE_EQ(r.f64(), 3.14159);
  EXPECT_TRUE(r.boolean());
  EXPECT_EQ(r.str(), "kompics");
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(Buffer, VarIntBoundaries) {
  const std::uint64_t values[] = {0,    1,    127,  128,   16383, 16384,
                                  1u << 21, 1ull << 35, 1ull << 63, ~0ull};
  Bytes b;
  BufferWriter w(b);
  for (auto v : values) w.var_u64(v);
  BufferReader r(b);
  for (auto v : values) EXPECT_EQ(r.var_u64(), v);
}

TEST(Buffer, ZigZagSigned) {
  const std::int64_t values[] = {0, -1, 1, -64, 63, -65, 1000000, -1000000,
                                 INT64_MAX, INT64_MIN};
  Bytes b;
  BufferWriter w(b);
  for (auto v : values) w.var_i64(v);
  BufferReader r(b);
  for (auto v : values) EXPECT_EQ(r.var_i64(), v);
}

TEST(Buffer, UnderflowThrows) {
  Bytes b{0x01};
  BufferReader r(b);
  EXPECT_EQ(r.u8(), 1);
  EXPECT_THROW(r.u32(), std::runtime_error);
}

TEST(Buffer, PatchU32) {
  Bytes b;
  BufferWriter w(b);
  w.u32(0);
  w.str("body");
  w.patch_u32(0, 42);
  BufferReader r(b);
  EXPECT_EQ(r.u32(), 42u);
}

// ---- kz compression --------------------------------------------------------

Bytes roundtrip(const Bytes& in) {
  Bytes packed;
  kz::compress(in, packed);
  return kz::decompress(packed);
}

TEST(Kz, EmptyInput) { EXPECT_EQ(roundtrip({}), Bytes{}); }

TEST(Kz, ShortInput) {
  Bytes in{1, 2, 3};
  EXPECT_EQ(roundtrip(in), in);
}

TEST(Kz, RepetitiveInputCompresses) {
  Bytes in;
  for (int i = 0; i < 4096; ++i) in.push_back(static_cast<std::uint8_t>(i % 7));
  Bytes packed;
  kz::compress(in, packed);
  EXPECT_LT(packed.size(), in.size() / 4) << "periodic data should compress well";
  EXPECT_EQ(kz::decompress(packed), in);
}

TEST(Kz, OverlappingMatchReplication) {
  // 'aaaa...' forces distance-1 matches with length > distance.
  Bytes in(1000, 'a');
  EXPECT_EQ(roundtrip(in), in);
}

TEST(Kz, MalformedInputThrows) {
  Bytes bogus{0x05, 0x02, 0xff, 0xff};  // claims 5 bytes, bad token
  EXPECT_THROW(kz::decompress(bogus), std::runtime_error);
}

class KzRandomRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(KzRandomRoundTrip, RoundTripsExactly) {
  std::mt19937_64 rng(GetParam());
  // Mixture of random and structured content, random length.
  const std::size_t n = rng() % 20000;
  Bytes in(n);
  std::size_t i = 0;
  while (i < n) {
    if (rng() % 2 == 0) {
      const std::size_t run = std::min<std::size_t>(n - i, 1 + rng() % 64);
      const std::uint8_t byte = static_cast<std::uint8_t>(rng());
      for (std::size_t k = 0; k < run; ++k) in[i++] = byte;
    } else {
      in[i++] = static_cast<std::uint8_t>(rng());
    }
  }
  EXPECT_EQ(roundtrip(in), in);
}

INSTANTIATE_TEST_SUITE_P(Seeds, KzRandomRoundTrip, ::testing::Range(0, 25));

// ---- serialization registry -------------------------------------------------

class TestPing : public Message {
 public:
  TestPing(Address s, Address d, std::uint64_t n, std::string text)
      : Message(s, d), n(n), text(std::move(text)) {}
  std::uint64_t n;
  std::string text;
};

KOMPICS_REGISTER_MESSAGE(
    TestPing, 9001,
    [](const Message& m, BufferWriter& w) {
      const auto& p = static_cast<const TestPing&>(m);
      w.var_u64(p.n);
      w.str(p.text);
    },
    [](BufferReader& r, Address src, Address dst) -> MessagePtr {
      const std::uint64_t n = r.var_u64();
      std::string text = r.str();
      return std::make_shared<const TestPing>(src, dst, n, std::move(text));
    });

TEST(Serialization, RoundTrip) {
  TestPing p(Address::node(1, 10), Address::node(2, 20), 77, "hello");
  Bytes wire;
  SerializationRegistry::instance().serialize(p, wire);
  auto back = SerializationRegistry::instance().deserialize(wire);
  const auto* q = dynamic_cast<const TestPing*>(back.get());
  ASSERT_NE(q, nullptr);
  EXPECT_EQ(q->source(), p.source());
  EXPECT_EQ(q->destination(), p.destination());
  EXPECT_EQ(q->n, 77u);
  EXPECT_EQ(q->text, "hello");
}

class Unregistered : public Message {
 public:
  using Message::Message;
};

TEST(Serialization, UnregisteredTypeThrows) {
  Unregistered u(Address::node(1), Address::node(2));
  Bytes wire;
  EXPECT_THROW(SerializationRegistry::instance().serialize(u, wire), std::logic_error);
}

TEST(Serialization, UnknownWireIdThrows) {
  Bytes wire;
  BufferWriter w(wire);
  w.var_u64(123456789);  // never registered
  Address::node(1).write(w);
  Address::node(2).write(w);
  EXPECT_THROW(SerializationRegistry::instance().deserialize(wire), std::runtime_error);
}

TEST(Address, KeyOrderingAndFormat) {
  Address a{0x7f000001, 80};
  EXPECT_EQ(a.to_string(), "127.0.0.1:80");
  EXPECT_LT(Address::node(1).key(), Address::node(2).key());
  EXPECT_TRUE(Address::node(1) < Address::node(2));
  EXPECT_FALSE(Address{}.valid());
}

}  // namespace
}  // namespace kompics::net::test
