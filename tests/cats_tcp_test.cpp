// Full-stack deployment-mode integration test: a small CATS cluster over
// the real TcpNetwork (kernel sockets on 127.0.0.1), exercising the entire
// Fig. 10 deployment architecture — Grizzly-equivalent NIO stack, message
// serialization, bootstrap over the network, ring convergence, and
// linearizable get/put — under the multi-core scheduler.

#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <thread>

#include "cats/bootstrap.hpp"
#include "cats/cats_client.hpp"
#include "cats/cats_node.hpp"
#include "kompics/kompics.hpp"
#include "net/tcp_network.hpp"
#include "timing/thread_timer.hpp"

namespace kompics::cats::test {
namespace {

using net::Address;
using net::TcpNetwork;

CatsParams fast_params() {
  CatsParams params;
  params.stabilization_period_ms = 100;
  params.shuffle_period_ms = 100;
  params.fd_ping_period_ms = 100;
  params.fd_initial_timeout_ms = 600;
  params.op_timeout_ms = 2000;
  params.keepalive_period_ms = 300;
  params.bootstrap_eviction_ms = 2000;
  return params;
}

class TcpMachine : public ComponentDefinition {
 public:
  TcpMachine(NodeRef self, Address boot) {
    net = create<TcpNetwork>();
    TcpNetwork::Options opts;
    opts.compress = true;  // exercise the compression path over real sockets
    opts.compress_threshold = 128;
    trigger(make_event<TcpNetwork::Init>(self.addr, opts), net.control());
    timer = create<timing::ThreadTimer>();
    node = create<CatsNode>(self, boot, Address{}, fast_params());
    client = create<CatsClient>();
    connect(node.required<net::Network>(), net.provided<net::Network>());
    connect(node.required<timing::Timer>(), timer.provided<timing::Timer>());
    connect(node.provided<PutGet>(), client.required<PutGet>());
  }
  Component net, timer, node, client;
};

class TcpClusterMain : public ComponentDefinition {
 public:
  TcpClusterMain(std::uint16_t base_port, int n) {
    const Address boot_addr = Address::loopback(base_port);
    boot_net = create<TcpNetwork>();
    trigger(make_event<TcpNetwork::Init>(boot_addr), boot_net.control());
    boot_timer = create<timing::ThreadTimer>();
    boot_server = create<BootstrapServer>();
    trigger(make_event<BootstrapServer::Init>(boot_addr, fast_params()),
            boot_server.control());
    connect(boot_server.required<net::Network>(), boot_net.provided<net::Network>());
    connect(boot_server.required<timing::Timer>(), boot_timer.provided<timing::Timer>());

    for (int i = 0; i < n; ++i) {
      const NodeRef self{static_cast<RingKey>(i) * (~0ull / static_cast<RingKey>(n)),
                         Address::loopback(static_cast<std::uint16_t>(base_port + 1 + i))};
      machines.push_back(create<TcpMachine>(self, boot_addr));
    }
  }
  Component boot_net, boot_timer, boot_server;
  std::vector<Component> machines;
};

TEST(CatsOverTcp, ClusterConvergesAndServesLinearizableOps) {
  constexpr int kNodes = 4;
  auto rt = Runtime::threaded(Config{}, 4, 1);
  auto main = rt->bootstrap<TcpClusterMain>(31400, kNodes);
  auto& cluster = main.definition_as<TcpClusterMain>();

  // Wait for ring convergence over real sockets.
  bool converged = false;
  for (int waited = 0; waited < 20000 && !converged; waited += 100) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    int ready = 0;
    for (auto& m : cluster.machines) {
      ready += m.definition_as<TcpMachine>().node.definition_as<CatsNode>().ready() ? 1 : 0;
    }
    converged = ready == kNodes;
  }
  ASSERT_TRUE(converged) << "TCP cluster did not converge";

  // Put on node 0, read on node 3 — values traverse real TCP with
  // serialization and compression.
  auto& writer =
      cluster.machines[0].definition_as<TcpMachine>().client.definition_as<CatsClient>();
  auto& reader =
      cluster.machines[3].definition_as<TcpMachine>().client.definition_as<CatsClient>();

  const Value big(4096, 0x61);  // compressible 4 KB value
  for (int i = 0; i < 10; ++i) {
    std::promise<bool> put_done;
    writer.put(hash_to_ring("tcp-key-" + std::to_string(i)), big,
               [&](bool ok) { put_done.set_value(ok); });
    ASSERT_TRUE(put_done.get_future().get()) << "put " << i;
  }
  for (int i = 0; i < 10; ++i) {
    std::promise<std::pair<bool, Value>> get_done;
    reader.get(hash_to_ring("tcp-key-" + std::to_string(i)),
               [&](bool ok, bool found, const Value& v) {
                 get_done.set_value({ok && found, v});
               });
    auto [ok, v] = get_done.get_future().get();
    ASSERT_TRUE(ok) << "get " << i;
    EXPECT_EQ(v, big);
  }

  // The wire really was TCP: the network components counted traffic.
  const auto counters =
      cluster.machines[0].definition_as<TcpMachine>().net.definition_as<TcpNetwork>().counters();
  EXPECT_GT(counters.messages_sent, 20u);
  EXPECT_GT(counters.bytes_received, 0u);
  EXPECT_GT(counters.connections_opened + counters.connections_accepted, 0u);
}

}  // namespace
}  // namespace kompics::cats::test
