// /metrics and /trace endpoint tests: the HttpServer answers both directly
// from kernel telemetry (no Web-port round trip), so the monitoring surface
// works even when the application layer never responds.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <string>
#include <thread>

#include "kompics/kompics.hpp"
#include "kompics/telemetry.hpp"
#include "web/http_server.hpp"

namespace kompics::web::test {
namespace {

/// Minimal blocking HTTP client (same shape as web_test.cpp's).
std::string http_get(std::uint32_t host, std::uint16_t port, const std::string& path) {
  int fd = -1;
  for (int attempt = 0; attempt < 20; ++attempt) {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(host);
    addr.sin_port = htons(port);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) break;
    ::close(fd);
    fd = -1;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  if (fd < 0) return "";
  const std::string req = "GET " + path + " HTTP/1.0\r\nHost: test\r\n\r\n";
  (void)!::send(fd, req.data(), req.size(), MSG_NOSIGNAL);
  std::string out;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) out.append(buf, static_cast<std::size_t>(n));
  ::close(fd);
  return out;
}

/// A deliberately wedged Web application: never answers WebRequest. The
/// telemetry endpoints must still respond — that is the whole point of
/// serving them from the kernel.
class WedgedApp : public ComponentDefinition {
 public:
  WedgedApp() {
    subscribe<WebRequest>(web_, [](const WebRequest&) { /* drop it */ });
  }
  Negative<Web> web_ = provide<Web>();
};

class ScrapeMain : public ComponentDefinition {
 public:
  explicit ScrapeMain(net::Address listen, bool telemetry_endpoints = true) {
    server = create<HttpServer>();
    server.control()->trigger(make_event<HttpServer::Init>(listen, /*request_timeout_ms=*/200,
                                                           telemetry_endpoints));
    app = create<WedgedApp>();
    connect(app.provided<Web>(), server.required<Web>());
  }
  Component server, app;
};

class ScrapeFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    rt = Runtime::threaded(Config{}, 2, 1);
    rt->telemetry().enable_all(/*sample=*/1.0);
    main = rt->bootstrap<ScrapeMain>(net::Address::loopback(0));
    rt->await_quiescence();
    port = main.definition_as<ScrapeMain>().server.definition_as<HttpServer>().port();
    ASSERT_NE(port, 0);
  }

  std::shared_ptr<Runtime> rt;
  Component main;
  std::uint16_t port = 0;
};

TEST_F(ScrapeFixture, MetricsEndpointServesPrometheusText) {
  const std::string resp = http_get(0x7f000001, port, "/metrics");
  ASSERT_NE(resp.find("200 OK"), std::string::npos) << resp;
  EXPECT_NE(resp.find("Content-Type: text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(resp.find("kompics_scheduler_total{counter=\"executed\"}"), std::string::npos);
  EXPECT_NE(resp.find("kompics_component_dispatches_total{"), std::string::npos);
  EXPECT_NE(resp.find("kompics_handler_latency_ns_bucket{"), std::string::npos);
  EXPECT_NE(resp.find("kompics_events_published_total"), std::string::npos);
}

TEST_F(ScrapeFixture, TraceEndpointServesSpanJson) {
  // Bootstrap itself generates traced control dispatches at sampling 1.0;
  // scrape twice so the first scrape's own activity is surely visible.
  http_get(0x7f000001, port, "/metrics");
  const std::string resp = http_get(0x7f000001, port, "/trace");
  ASSERT_NE(resp.find("200 OK"), std::string::npos) << resp;
  EXPECT_NE(resp.find("Content-Type: application/json"), std::string::npos);
  EXPECT_NE(resp.find("\"spans\": ["), std::string::npos);
  EXPECT_NE(resp.find("\"traces_started\": "), std::string::npos);
}

TEST_F(ScrapeFixture, TelemetryEndpointsBypassWedgedApp) {
  // A normal request hits the wedged app and times out with 504 …
  const std::string app_resp = http_get(0x7f000001, port, "/anything");
  EXPECT_NE(app_resp.find("504"), std::string::npos) << app_resp;
  // … but /metrics still answers instantly from the kernel.
  const std::string metrics = http_get(0x7f000001, port, "/metrics");
  EXPECT_NE(metrics.find("200 OK"), std::string::npos);
}

TEST(MetricsEndpoint, CanBeDisabledViaInit) {
  auto rt = Runtime::threaded(Config{}, 2, 1);
  // With telemetry endpoints off, /metrics falls through to the (wedged)
  // app and times out instead of answering from the kernel.
  auto main = rt->bootstrap<ScrapeMain>(net::Address::loopback(0), /*telemetry_endpoints=*/false);
  rt->await_quiescence();
  auto& server = main.definition_as<ScrapeMain>().server.definition_as<HttpServer>();
  const std::string resp = http_get(0x7f000001, server.port(), "/metrics");
  EXPECT_EQ(resp.find("kompics_scheduler_total"), std::string::npos);
  EXPECT_NE(resp.find("504"), std::string::npos) << resp;
}

}  // namespace
}  // namespace kompics::web::test
