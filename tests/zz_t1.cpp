#include <chrono>
#include <cstdio>
#include "cats/cats_simulator.hpp"
#include "sim/simulation.hpp"
using namespace kompics; using namespace kompics::cats; using namespace kompics::sim;
class M : public ComponentDefinition {
 public:
  M(SimulatorCore* c, SimNetworkHubPtr h, CatsParams p) { s = create<CatsSimulator>(c, h, p); }
  Component s;
};
int main(int argc, char** argv) {
  const int peers = argc > 1 ? atoi(argv[1]) : 128;
  Simulation sim(Config{}, 42);
  auto hub = std::make_shared<SimNetworkHub>(&sim.core(), 7, LinkModel{1, 10, 0.0, false});
  auto mc = sim.bootstrap<M>(&sim.core(), hub, CatsParams{});
  sim.run_until(1);
  auto& cats = mc.definition_as<M>().s.definition_as<CatsSimulator>();
  for (int i = 0; i < peers; ++i) {
    cats.join((std::uint64_t)i * 65536 / peers);
    sim.run_until(sim.now() + 20);
  }
  sim.run_until(sim.now() + 20000);  // settle
  printf("N=%d ready=%zu/%zu boot_events=%llu\n", peers, cats.ready_count(), cats.alive_count(),
         (unsigned long long)sim.core().executed());
  const auto e0 = sim.core().executed();
  const auto t0 = sim.now();
  sim.run_until(t0 + 100000);  // 100 s steady state
  const auto de = sim.core().executed() - e0;
  printf("steady: %llu events in 100 s -> %.1f events/peer/s\n",
         (unsigned long long)de, (double)de / peers / 100.0);
  return 0;
}
