// Shrinking acceptance test (ISSUE 7): re-introduce the PR 6 bug — stale
// view acks counted toward quorums (plus the rest of the pre-consistent-
// quorums window the params_.inject_stale_view_bug flag re-opens) — and
// prove the campaign harness (a) catches it within the first seeds, and
// (b) delta-debugs the failing schedule down to <= 25% of its original
// length while the minimal schedule still reproduces the failure, also
// after a serialize/parse round trip (the replay artifact is faithful).

#include <gtest/gtest.h>

#include "testkit/campaign.hpp"

namespace kompics::testkit::test {
namespace {

/// Finds the first seed in [1, 30] whose schedule fails under the injected
/// bug. The fixed protocol passes all of these (cats_campaign_test); the
/// divergence window re-opened by the flag historically fails ~1 in 4.
std::uint64_t first_failing_seed(const GeneratorConfig& gen, FaultSchedule* schedule,
                                 RunResult* result) {
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    *schedule = generate_schedule(seed, gen);
    *result = run_schedule(*schedule, default_run_config());
    if (!result->ok) return seed;
  }
  return 0;
}

TEST(CampaignShrink, InjectedStaleViewBugIsCaughtAndShrunkToMinimalTrace) {
  GeneratorConfig gen;
  gen.inject_stale_view_bug = true;

  FaultSchedule failing;
  RunResult original;
  const std::uint64_t seed = first_failing_seed(gen, &failing, &original);
  ASSERT_NE(seed, 0u) << "the re-introduced stale-view bug must be caught within 30 seeds";
  ASSERT_FALSE(original.failure.empty());

  const ShrinkResult shrunk = shrink_schedule(failing, default_run_config());
  // Acceptance: the trace shrinks to <= 25% of the original, or all the way
  // down to the bug's irreducible skeleton — nothing left but joins, one
  // cut, one put and at most one get. (The divergence needs four members so
  // both partition sides can assemble a "quorum"; on a compact original 25%
  // can sit below that floor.)
  const bool skeleton = [&] {
    std::size_t cuts = 0, puts = 0, gets = 0, other = 0;
    for (const ScheduleEvent& e : shrunk.minimal.events) {
      switch (e.kind) {
        case ScheduleEvent::Kind::kJoin:
          break;
        case ScheduleEvent::Kind::kPartition:
        case ScheduleEvent::Kind::kPartitionOneWay:
          ++cuts;
          break;
        case ScheduleEvent::Kind::kPut:
          ++puts;
          break;
        case ScheduleEvent::Kind::kGet:
          ++gets;
          break;
        default:
          ++other;
          break;
      }
    }
    return other == 0 && cuts == 1 && puts == 1 && gets <= 1;
  }();
  EXPECT_TRUE(shrunk.minimal_length * 4 <= shrunk.original_length || skeleton)
      << "acceptance: minimal trace <= 25% of the original schedule or the bare "
      << "bug skeleton (" << shrunk.minimal_length << " of " << shrunk.original_length
      << " events, " << shrunk.runs << " shrink runs):\n" << to_text(shrunk.minimal);
  EXPECT_FALSE(shrunk.failure.empty());

  // The minimal schedule must still fail on a fresh run...
  const RunResult replay = run_schedule(shrunk.minimal, default_run_config());
  EXPECT_FALSE(replay.ok) << "shrunk schedule no longer reproduces";

  // ...and after the serialize/parse round trip a replay artifact goes
  // through (this is exactly what campaign_runner --replay executes).
  FaultSchedule parsed;
  std::string error;
  ASSERT_TRUE(parse_schedule_text(to_text(shrunk.minimal), &parsed, &error)) << error;
  const RunResult from_artifact = run_schedule(parsed, default_run_config());
  EXPECT_FALSE(from_artifact.ok) << "artifact replay no longer reproduces";
}

TEST(CampaignShrink, ParallelSweepCatchesTheBugAndAgreesWithSequential) {
  // The fork-based parallel sweep path must report the same verdicts as the
  // inline path (workers only partition the seed space).
  GeneratorConfig gen;
  gen.inject_stale_view_bug = true;

  const SweepResult seq = sweep_seeds(1, 12, /*jobs=*/1, gen, default_run_config());
  const SweepResult par = sweep_seeds(1, 12, /*jobs=*/3, gen, default_run_config());
  EXPECT_FALSE(seq.all_passed()) << "the injected bug must surface in the first dozen seeds";
  ASSERT_EQ(par.failures.size(), seq.failures.size());
  EXPECT_EQ(par.passed, seq.passed);
  for (std::size_t i = 0; i < seq.failures.size(); ++i) {
    EXPECT_EQ(par.failures[i].seed, seq.failures[i].seed);
  }
}

TEST(CampaignShrink, ShrinkingAPassingScheduleIsRejectedGracefully) {
  // shrink_schedule contracts on a failing input; on a passing one it must
  // come back with the input (nothing smaller can "still fail") and report
  // the empty failure from its final verification run.
  const FaultSchedule passing = generate_schedule(1);
  ASSERT_TRUE(run_schedule(passing, default_run_config()).ok);
  const ShrinkResult r = shrink_schedule(passing, default_run_config(),
                                         ShrinkOptions{/*max_runs=*/40, /*tail_ms=*/7000});
  EXPECT_EQ(r.minimal_length, r.original_length);
  EXPECT_TRUE(r.failure.empty());
}

}  // namespace
}  // namespace kompics::testkit::test
