// Kernel telemetry tests: histogram bucket boundaries, sharded counters,
// causal trace propagation across a request→indication round trip, the
// flight recorder's §2.5 crash dump on an injected handler fault, and the
// Prometheus/JSON render surface.

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <thread>
#include <vector>

#include "kompics/kompics.hpp"
#include "kompics/telemetry.hpp"

namespace kompics::test {
namespace {

using telemetry::LatencyHistogram;
using telemetry::ShardedCounter;

// ---- histogram -----------------------------------------------------------

TEST(LatencyHistogram, BucketBoundariesAreLog2) {
  EXPECT_EQ(LatencyHistogram::bucket_of(0), 0);
  EXPECT_EQ(LatencyHistogram::bucket_of(1), 0);
  EXPECT_EQ(LatencyHistogram::bucket_of(2), 1);
  EXPECT_EQ(LatencyHistogram::bucket_of(3), 1);
  EXPECT_EQ(LatencyHistogram::bucket_of(4), 2);
  EXPECT_EQ(LatencyHistogram::bucket_of(7), 2);
  EXPECT_EQ(LatencyHistogram::bucket_of(8), 3);
  EXPECT_EQ(LatencyHistogram::bucket_of(1ULL << 20), 20);
  // Everything past the last bucket boundary clamps into the last bucket.
  EXPECT_EQ(LatencyHistogram::bucket_of(~0ULL), LatencyHistogram::kBuckets - 1);

  // Bucket b holds [2^b, 2^(b+1)): its inclusive upper bound is 2^(b+1)-1.
  EXPECT_EQ(LatencyHistogram::bucket_upper_bound(0), 1ULL);
  EXPECT_EQ(LatencyHistogram::bucket_upper_bound(1), 3ULL);
  EXPECT_EQ(LatencyHistogram::bucket_upper_bound(2), 7ULL);
  EXPECT_EQ(LatencyHistogram::bucket_upper_bound(10), 2047ULL);
  EXPECT_EQ(LatencyHistogram::bucket_upper_bound(LatencyHistogram::kBuckets - 1), ~0ULL);
}

TEST(LatencyHistogram, RecordsAndQuantiles) {
  LatencyHistogram h;
  h.record(0);
  h.record(1);    // bucket 0
  h.record(5);    // bucket 2
  h.record(100);  // bucket 6 ([64,128))
  const auto s = h.snapshot();
  EXPECT_EQ(s.count, 4u);
  EXPECT_EQ(s.sum_ns, 106u);
  EXPECT_EQ(s.buckets[0], 2u);
  EXPECT_EQ(s.buckets[2], 1u);
  EXPECT_EQ(s.buckets[6], 1u);
  EXPECT_EQ(s.quantile_upper_ns(0.5), 1ULL);    // 2 of 4 within bucket 0
  EXPECT_EQ(s.quantile_upper_ns(0.75), 7ULL);   // 3 of 4 within bucket 2
  EXPECT_EQ(s.quantile_upper_ns(1.0), 127ULL);  // all within bucket 6
  EXPECT_EQ(LatencyHistogram().snapshot().quantile_upper_ns(0.99), 0ULL);
}

TEST(ShardedCounter, SumsConcurrentWriters) {
  ShardedCounter c;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < 10000; ++i) c.add();
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(c.value(), 80000u);
}

TEST(TraceWord, PacksAndUnpacks) {
  const std::uint64_t w = telemetry::pack_trace_word(0xABCD1234u, 0x77u);
  EXPECT_EQ(telemetry::trace_of_word(w), 0xABCD1234u);
  EXPECT_EQ(telemetry::parent_of_word(w), 0x77u);
}

// ---- fixture components --------------------------------------------------

class Ping : public Event {
  KOMPICS_EVENT(Ping, Event);

 public:
  explicit Ping(int n) : n(n) {}
  int n;
};

class Pong : public Event {
  KOMPICS_EVENT(Pong, Event);

 public:
  explicit Pong(int n) : n(n) {}
  int n;
};

class PingPort : public PortType {
 public:
  PingPort() {
    set_name("PingPort");
    negative<Ping>();  // request
    positive<Pong>();  // indication
  }
};

/// Provider: answers every Ping with a Pong (request→indication round trip).
class Responder : public ComponentDefinition {
 public:
  Responder() {
    subscribe<Ping>(port_, [this](const Ping& p) { trigger(make_event<Pong>(p.n), port_); });
  }
  Negative<PingPort> port_ = provide<PingPort>();
};

/// Requester: records the trace word riding the Pong it gets back.
class Requester : public ComponentDefinition {
 public:
  Requester() {
    subscribe<Pong>(port_, [this](const Pong&) {
      pong_trace_word.store(current_event()->kompics_trace_word(), std::memory_order_release);
      ++pongs;
    });
  }
  void ping(int n) { trigger(make_event<Ping>(n), port_); }
  Positive<PingPort> port_ = require<PingPort>();
  std::atomic<std::uint64_t> pong_trace_word{0};
  int pongs = 0;
};

class PingMain : public ComponentDefinition {
 public:
  PingMain() {
    responder = create<Responder>();
    requester = create<Requester>();
    connect(responder.provided<PingPort>(), requester.required<PingPort>());
  }
  Component responder, requester;
};

/// A handler that always throws — the §2.5 fault-injection fixture.
class Bomb : public ComponentDefinition {
 public:
  Bomb() {
    subscribe<Ping>(port_, [](const Ping&) { throw std::runtime_error("injected boom"); });
  }
  Negative<PingPort> port_ = provide<PingPort>();
};

class BombMain : public ComponentDefinition {
 public:
  BombMain() { bomb = create<Bomb>(); }
  Component bomb;
};

// ---- tracing -------------------------------------------------------------

TEST(Tracing, PropagatesAcrossRequestIndicationRoundTrip) {
  auto rt = Runtime::threaded(Config{}, 2, 1);
  rt->telemetry().set_trace_sampling(1.0);
  auto main = rt->bootstrap<PingMain>();
  rt->await_quiescence();
  auto& req = main.definition_as<PingMain>().requester.definition_as<Requester>();

  req.ping(7);
  rt->await_quiescence();
  ASSERT_EQ(req.pongs, 1);

  // The Pong was created inside the Responder's Ping handler, so it must
  // carry the same trace id as the Ping — with the Responder's span as its
  // causal parent, not a fresh root.
  const std::uint64_t pong_word = req.pong_trace_word.load(std::memory_order_acquire);
  ASSERT_NE(pong_word, 0u);
  const std::uint32_t trace = telemetry::trace_of_word(pong_word);
  const std::uint32_t pong_parent = telemetry::parent_of_word(pong_word);
  EXPECT_NE(trace, 0u);
  EXPECT_NE(pong_parent, 0u);

  // The span buffer reconstructs the chain: a Ping span on the Responder
  // whose id is the Pong's parent, and a Pong span on the Requester.
  const auto spans = rt->telemetry().trace_snapshot();
  bool saw_ping_span = false, saw_pong_span = false;
  for (const auto& s : spans) {
    if (s.trace_id != trace) continue;
    if (s.span_id == pong_parent) saw_ping_span = true;
    if (s.parent_span == pong_parent) saw_pong_span = true;
  }
  EXPECT_TRUE(saw_ping_span);
  EXPECT_TRUE(saw_pong_span);
  EXPECT_GE(rt->telemetry().traces_started().value(), 1u);
}

TEST(Tracing, DisabledLeavesEventsUnstamped) {
  auto rt = Runtime::threaded(Config{}, 2, 1);  // all telemetry off
  auto main = rt->bootstrap<PingMain>();
  rt->await_quiescence();
  auto& req = main.definition_as<PingMain>().requester.definition_as<Requester>();
  req.ping(1);
  rt->await_quiescence();
  ASSERT_EQ(req.pongs, 1);
  EXPECT_EQ(req.pong_trace_word.load(), 0u);
  EXPECT_TRUE(rt->telemetry().trace_snapshot().empty());
  EXPECT_EQ(rt->telemetry().traces_started().value(), 0u);
}

// ---- metrics -------------------------------------------------------------

TEST(Metrics, PerComponentStatsAreLazyAndCounted) {
  auto rt = Runtime::threaded(Config{}, 2, 1);
  auto main = rt->bootstrap<PingMain>();
  rt->await_quiescence();
  auto& req_comp = main.definition_as<PingMain>().requester;
  // Metrics were off during bootstrap: no stats block was allocated.
  EXPECT_EQ(req_comp.core()->telemetry_stats(), nullptr);

  rt->telemetry().enable_metrics(true);
  auto& req = req_comp.definition_as<Requester>();
  for (int i = 0; i < 10; ++i) req.ping(i);
  rt->await_quiescence();
  ASSERT_EQ(req.pongs, 10);

  const telemetry::ComponentStats* st = req_comp.core()->telemetry_stats();
  ASSERT_NE(st, nullptr);
  EXPECT_GE(st->dispatches.load(), 10u);
  EXPECT_GE(st->handler_invocations.load(), 10u);
  EXPECT_EQ(st->handler_ns.snapshot().count, st->dispatches.load());
  EXPECT_GE(rt->telemetry().events_published().value(), 20u);  // pings + pongs
}

TEST(Metrics, ConfigKeysEnableGatesAtConstruction) {
  Config cfg;
  cfg.set("telemetry.metrics", true);
  cfg.set("telemetry.trace_sampling", 0.5);
  cfg.set("telemetry.flight_recorder", true);
  auto rt = Runtime::threaded(std::move(cfg), 1, 1);
  EXPECT_TRUE(rt->telemetry().metrics_enabled());
  EXPECT_TRUE(rt->telemetry().tracing_enabled());
  EXPECT_TRUE(rt->telemetry().recorder_enabled());
  auto off = Runtime::threaded(Config{}, 1, 1);
  EXPECT_FALSE(off->telemetry().metrics_enabled());
  EXPECT_FALSE(off->telemetry().tracing_enabled());
  EXPECT_FALSE(off->telemetry().recorder_enabled());
}

TEST(Metrics, PrometheusRenderCarriesKernelMetrics) {
  auto rt = Runtime::threaded(Config{}, 2, 1);
  rt->telemetry().enable_metrics(true);
  auto main = rt->bootstrap<PingMain>();
  rt->await_quiescence();
  auto& req = main.definition_as<PingMain>().requester.definition_as<Requester>();
  for (int i = 0; i < 5; ++i) req.ping(i);
  rt->await_quiescence();

  const std::string text = telemetry::render_prometheus(*rt);
  EXPECT_NE(text.find("kompics_scheduler_total{counter=\"executed\"}"), std::string::npos);
  EXPECT_NE(text.find("kompics_scheduler_total{counter=\"wakes\"}"), std::string::npos);
  EXPECT_NE(text.find("kompics_component_dispatches_total{"), std::string::npos);
  EXPECT_NE(text.find("kompics_handler_latency_ns_bucket{"), std::string::npos);
  EXPECT_NE(text.find("le=\"+Inf\""), std::string::npos);
  EXPECT_NE(text.find("kompics_port_publishes_total{"), std::string::npos);
  EXPECT_NE(text.find("port=\"PingPort\""), std::string::npos);
  EXPECT_NE(text.find("kompics_events_published_total"), std::string::npos);

  const auto fields = telemetry::kernel_status_fields(*rt);
  bool has_executed = false, has_published = false;
  for (const auto& [k, v] : fields) {
    if (k == "kernel.sched.executed") has_executed = true;
    if (k == "kernel.events_published") has_published = true;
  }
  EXPECT_TRUE(has_executed);
  EXPECT_TRUE(has_published);
}

// ---- flight recorder -----------------------------------------------------

TEST(FlightRecorder, FaultEscalationCapturesDispatchHistory) {
  auto rt = Runtime::threaded(Config{}, 2, 1);
  rt->telemetry().enable_flight_recorder(true);
  std::atomic<int> faults_seen{0};
  rt->set_fault_policy([&faults_seen](const Fault&) { ++faults_seen; });
  auto main = rt->bootstrap<BombMain>();
  rt->await_quiescence();

  auto bomb_port = main.definition_as<BombMain>().bomb.provided<PingPort>();
  bomb_port.core->trigger(make_event<Ping>(42));
  rt->await_quiescence();
  for (int i = 0; i < 100 && faults_seen.load() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_EQ(faults_seen.load(), 1);

  const std::string dump = rt->telemetry().last_crash_dump();
  ASSERT_FALSE(dump.empty());
  EXPECT_NE(dump.find("injected boom"), std::string::npos);
  EXPECT_NE(dump.find("[FAULTED]"), std::string::npos);
  EXPECT_NE(dump.find("Ping"), std::string::npos);  // event type of the fatal dispatch
  EXPECT_EQ(rt->telemetry().crash_dumps().value(), 1u);

  // The raw ring contains the faulted record too, newest last.
  const auto records = rt->telemetry().flight_snapshot();
  ASSERT_FALSE(records.empty());
  bool any_faulted = false;
  for (const auto& r : records) any_faulted |= r.faulted;
  EXPECT_TRUE(any_faulted);
}

TEST(FlightRecorder, DisabledRecordsNothing) {
  auto rt = Runtime::threaded(Config{}, 2, 1);
  std::atomic<int> faults_seen{0};
  rt->set_fault_policy([&faults_seen](const Fault&) { ++faults_seen; });
  auto main = rt->bootstrap<BombMain>();
  rt->await_quiescence();
  main.definition_as<BombMain>().bomb.provided<PingPort>().core->trigger(make_event<Ping>(1));
  rt->await_quiescence();
  for (int i = 0; i < 100 && faults_seen.load() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_EQ(faults_seen.load(), 1);
  EXPECT_TRUE(rt->telemetry().last_crash_dump().empty());
  EXPECT_TRUE(rt->telemetry().flight_snapshot().empty());
}

// ---- trace JSON ----------------------------------------------------------

TEST(Tracing, JsonRenderListsSpans) {
  auto rt = Runtime::threaded(Config{}, 2, 1);
  rt->telemetry().set_trace_sampling(1.0);
  auto main = rt->bootstrap<PingMain>();
  rt->await_quiescence();
  main.definition_as<PingMain>().requester.definition_as<Requester>().ping(3);
  rt->await_quiescence();

  const std::string json = telemetry::render_trace_json(*rt);
  EXPECT_NE(json.find("\"spans\": ["), std::string::npos);
  EXPECT_NE(json.find("\"trace\": "), std::string::npos);
  EXPECT_NE(json.find("\"parent\": "), std::string::npos);
  EXPECT_NE(json.find("Pong"), std::string::npos);
}

}  // namespace
}  // namespace kompics::test
