// ThreadTimer tests (real time, kept short): one-shot delivery, periodic
// re-arming, cancellation, and correlation ids.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "kompics/kompics.hpp"
#include "timing/thread_timer.hpp"

namespace kompics::timing::test {
namespace {

struct Beep : Timeout {
  Beep(TimeoutId id, int tag) : Timeout(id), tag(tag) {}
  int tag;
};

class TimerUser : public ComponentDefinition {
 public:
  TimerUser() {
    subscribe<Beep>(timer_, [this](const Beep& b) {
      last_tag.store(b.tag);
      last_id.store(b.id());
      fired.fetch_add(1);
    });
  }

  TimeoutId one_shot(DurationMs d, int tag) {
    auto ev = schedule<Beep>(d, tag);
    trigger(ev, timer_);
    return ev->timeout_id();
  }
  TimeoutId periodic(DurationMs initial, DurationMs period, int tag) {
    auto ev = schedule_periodic<Beep>(initial, period, tag);
    trigger(ev, timer_);
    return ev->timeout_id();
  }
  void cancel(TimeoutId id) { trigger(make_event<CancelTimeout>(id), timer_); }

  Positive<Timer> timer_ = require<Timer>();
  std::atomic<int> fired{0};
  std::atomic<int> last_tag{0};
  std::atomic<TimeoutId> last_id{0};
};

class TimerMain : public ComponentDefinition {
 public:
  TimerMain() {
    timer = create<ThreadTimer>();
    user = create<TimerUser>();
    connect(timer.provided<Timer>(), user.required<Timer>());
  }
  Component timer, user;
};

struct TimerFixture : ::testing::Test {
  void SetUp() override {
    rt = Runtime::threaded(Config{}, 2, 1);
    main = rt->bootstrap<TimerMain>();
    rt->await_quiescence();
    user = &main.definition_as<TimerMain>().user.definition_as<TimerUser>();
  }
  void wait_until(std::function<bool()> cond, int ms_budget) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(ms_budget);
    while (!cond() && std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }
  std::unique_ptr<Runtime> rt;
  Component main;
  TimerUser* user = nullptr;
};

TEST_F(TimerFixture, OneShotFiresOnceWithCorrelationId) {
  const TimeoutId id = user->one_shot(30, 42);
  wait_until([&] { return user->fired.load() >= 1; }, 2000);
  EXPECT_EQ(user->fired.load(), 1);
  EXPECT_EQ(user->last_tag.load(), 42);
  EXPECT_EQ(user->last_id.load(), id);
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  EXPECT_EQ(user->fired.load(), 1) << "one-shot must not re-fire";
}

TEST_F(TimerFixture, PeriodicFiresRepeatedlyUntilCancelled) {
  const TimeoutId id = user->periodic(10, 20, 7);
  wait_until([&] { return user->fired.load() >= 4; }, 3000);
  EXPECT_GE(user->fired.load(), 4);
  user->cancel(id);
  rt->await_quiescence();
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  const int after_cancel = user->fired.load();
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_LE(user->fired.load(), after_cancel + 1) << "cancellation must stop the stream";
}

TEST_F(TimerFixture, CancelBeforeExpiryPreventsDelivery) {
  const TimeoutId id = user->one_shot(150, 9);
  user->cancel(id);
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  EXPECT_EQ(user->fired.load(), 0);
}

TEST_F(TimerFixture, ManyTimersFireInDeadlineOrderApproximately) {
  // Schedule in reverse order; the earliest deadline must fire first.
  user->one_shot(120, 3);
  user->one_shot(60, 2);
  user->one_shot(20, 1);
  wait_until([&] { return user->fired.load() >= 1; }, 2000);
  EXPECT_EQ(user->last_tag.load(), 1);
  wait_until([&] { return user->fired.load() >= 3; }, 2000);
  EXPECT_EQ(user->fired.load(), 3);
  EXPECT_EQ(user->last_tag.load(), 3);
}

// ---- cancellation bookkeeping (leak regression) -----------------------------

TEST_F(TimerFixture, CancelAfterFireDoesNotLeakBookkeeping) {
  auto& timer = main.definition_as<TimerMain>().timer.definition_as<ThreadTimer>();
  const TimeoutId id = user->one_shot(10, 1);
  wait_until([&] { return user->fired.load() >= 1; }, 2000);
  ASSERT_EQ(user->fired.load(), 1);

  // Cancelling a timeout that already fired must be a no-op, not a
  // permanent entry in the cancelled set.
  user->cancel(id);
  rt->await_quiescence();
  EXPECT_EQ(timer.pending_cancellations(), 0u) << "cancel-after-fire leaked the id";
  EXPECT_EQ(timer.armed_timeouts(), 0u);

  // Double-cancel after fire: still nothing retained.
  user->cancel(id);
  user->cancel(id);
  rt->await_quiescence();
  EXPECT_EQ(timer.pending_cancellations(), 0u) << "double-cancel leaked the id";
}

TEST_F(TimerFixture, CancelOfNeverArmedIdDoesNotLeak) {
  auto& timer = main.definition_as<TimerMain>().timer.definition_as<ThreadTimer>();
  user->cancel(fresh_timeout_id());  // valid id, but never scheduled
  user->cancel(424242424242ULL);     // arbitrary junk id
  rt->await_quiescence();
  EXPECT_EQ(timer.pending_cancellations(), 0u) << "never-armed cancels must be ignored";
}

TEST_F(TimerFixture, CancelBeforeExpiryIsConsumedAtDeadline) {
  auto& timer = main.definition_as<TimerMain>().timer.definition_as<ThreadTimer>();
  const TimeoutId id = user->one_shot(150, 5);
  user->cancel(id);
  rt->await_quiescence();
  // Recorded while the entry is still armed (unless the machine stalled
  // past the deadline, in which case it is already consumed)...
  EXPECT_LE(timer.pending_cancellations(), 1u);
  // ...and consumed (not delivered) when the deadline passes.
  wait_until([&] { return timer.pending_cancellations() == 0; }, 3000);
  EXPECT_EQ(timer.pending_cancellations(), 0u);
  EXPECT_EQ(timer.armed_timeouts(), 0u);
  EXPECT_EQ(user->fired.load(), 0);
}

TEST_F(TimerFixture, PeriodicCancelDrainsBookkeeping) {
  auto& timer = main.definition_as<TimerMain>().timer.definition_as<ThreadTimer>();
  const TimeoutId id = user->periodic(5, 10, 3);
  wait_until([&] { return user->fired.load() >= 2; }, 3000);
  user->cancel(id);
  wait_until(
      [&] { return timer.pending_cancellations() == 0 && timer.armed_timeouts() == 0; }, 3000);
  EXPECT_EQ(timer.pending_cancellations(), 0u);
  EXPECT_EQ(timer.armed_timeouts(), 0u) << "cancelled periodic must leave the heap";
}

TEST(TimerIds, FreshTimeoutIdsAreUnique) {
  const auto a = fresh_timeout_id();
  const auto b = fresh_timeout_id();
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace kompics::timing::test
