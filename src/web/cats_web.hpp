#pragma once

// CatsWebApp (Fig. 10/11's "CATS Web Application"): provides the Web
// abstraction for one CATS node — an HTML page dumping the status of the
// node's components, with hyperlinks to its ring neighbors, "enabling
// users/developers to browse the set of nodes over the web and inspect the
// state of each remote node" (§4.1).
//
// The app keeps a periodically refreshed cache of StatusResponses (its
// required Status port is connected to every functional component of the
// node) and serves pages from the cache, so HTTP worker threads never wait
// on protocol components.

#include <cctype>
#include <map>
#include <string>

#include "cats/ports.hpp"
#include "kompics/component.hpp"
#include "kompics/kompics.hpp"
#include "timing/timer_port.hpp"
#include "web/web_port.hpp"

namespace kompics::web {

class CatsWebApp : public ComponentDefinition {
 public:
  struct Init : kompics::Init {
    Init(cats::NodeRef self, DurationMs refresh_ms = 1000) : self(self), refresh_ms(refresh_ms) {}
    cats::NodeRef self;
    DurationMs refresh_ms;
  };

  CatsWebApp() {
    subscribe<Init>(control(), [this](const Init& init) {
      self_ = init.self;
      refresh_ms_ = init.refresh_ms;
    });
    subscribe<Start>(control(), [this](const Start&) {
      trigger(timing::schedule_periodic<Refresh>(1, refresh_ms_), timer_);
    });
    subscribe<Refresh>(timer_, [this](const Refresh&) {
      ++round_;
      trigger(make_event<cats::StatusRequest>(round_), status_);
    });
    subscribe<cats::StatusResponse>(status_, [this](const cats::StatusResponse& resp) {
      cache_[resp.component] = resp.fields;
    });
    subscribe<WebRequest>(web_, [this](const WebRequest& req) {
      if (req.path == "/metrics") {
        // Protocol-level counters (ring epoch, view installs/fences, quorum
        // retries, ...) in Prometheus text format — the kernel's own
        // /metrics covers the component runtime, this covers CATS itself.
        trigger(make_event<WebResponse>(req.id, 200, "text/plain; version=0.0.4",
                                        render_metrics()),
                web_);
        return;
      }
      trigger(make_event<WebResponse>(req.id, 200, "text/html", render(req.path)), web_);
    });
  }

  std::string render_metrics() const {
    std::string out;
    const std::string node = std::to_string(self_.addr.host);
    for (const auto& [component, fields] : cache_) {
      std::string comp;
      for (char c : component) {
        comp += (std::isalnum(static_cast<unsigned char>(c)) != 0)
                    ? static_cast<char>(std::tolower(static_cast<unsigned char>(c)))
                    : '_';
      }
      for (const auto& [k, v] : fields) {
        // Only numeric gauges/counters belong on the metrics surface; status
        // strings (ring keys, successor lists) stay on the HTML page.
        if (v.empty() || v.find_first_not_of("0123456789") != std::string::npos) continue;
        out += "cats_" + comp + "_" + k + "{node=\"" + node + "\"} " + v + "\n";
      }
    }
    return out;
  }

  std::string render(const std::string& path) const {
    std::string html = "<html><head><title>CATS node " +
                       std::to_string(self_.addr.host) + "</title></head><body>";
    html += "<h1>CATS node " + self_.addr.to_node_string() + "</h1>";
    html += "<p>ring key: " + cats::ring_key_str(self_.key) + "</p>";
    html += "<p>path: " + path + "</p>";
    for (const auto& [component, fields] : cache_) {
      html += "<h2>" + component + "</h2><table border=1>";
      for (const auto& [k, v] : fields) {
        html += "<tr><td>" + k + "</td><td>" + v + "</td></tr>";
      }
      html += "</table>";
    }
    html += "</body></html>";
    return html;
  }

 private:
  struct Refresh : timing::Timeout {
    using Timeout::Timeout;
  };

  Negative<Web> web_ = provide<Web>();
  Positive<cats::Status> status_ = require<cats::Status>();
  Positive<timing::Timer> timer_ = require<timing::Timer>();

  cats::NodeRef self_;
  DurationMs refresh_ms_ = 1000;
  cats::OpId round_ = 0;
  std::map<std::string, std::map<std::string, std::string>> cache_;
};

}  // namespace kompics::web
