#pragma once

// CatsWebApp (Fig. 10/11's "CATS Web Application"): provides the Web
// abstraction for one CATS node — an HTML page dumping the status of the
// node's components, with hyperlinks to its ring neighbors, "enabling
// users/developers to browse the set of nodes over the web and inspect the
// state of each remote node" (§4.1).
//
// The app keeps a periodically refreshed cache of StatusResponses (its
// required Status port is connected to every functional component of the
// node) and serves pages from the cache, so HTTP worker threads never wait
// on protocol components.

#include <map>
#include <string>

#include "cats/ports.hpp"
#include "kompics/component.hpp"
#include "kompics/kompics.hpp"
#include "timing/timer_port.hpp"
#include "web/web_port.hpp"

namespace kompics::web {

class CatsWebApp : public ComponentDefinition {
 public:
  struct Init : kompics::Init {
    Init(cats::NodeRef self, DurationMs refresh_ms = 1000) : self(self), refresh_ms(refresh_ms) {}
    cats::NodeRef self;
    DurationMs refresh_ms;
  };

  CatsWebApp() {
    subscribe<Init>(control(), [this](const Init& init) {
      self_ = init.self;
      refresh_ms_ = init.refresh_ms;
    });
    subscribe<Start>(control(), [this](const Start&) {
      trigger(timing::schedule_periodic<Refresh>(1, refresh_ms_), timer_);
    });
    subscribe<Refresh>(timer_, [this](const Refresh&) {
      ++round_;
      trigger(make_event<cats::StatusRequest>(round_), status_);
    });
    subscribe<cats::StatusResponse>(status_, [this](const cats::StatusResponse& resp) {
      cache_[resp.component] = resp.fields;
    });
    subscribe<WebRequest>(web_, [this](const WebRequest& req) {
      trigger(make_event<WebResponse>(req.id, 200, "text/html", render(req.path)), web_);
    });
  }

  std::string render(const std::string& path) const {
    std::string html = "<html><head><title>CATS node " +
                       std::to_string(self_.addr.host) + "</title></head><body>";
    html += "<h1>CATS node " + self_.addr.to_node_string() + "</h1>";
    html += "<p>ring key: " + cats::ring_key_str(self_.key) + "</p>";
    html += "<p>path: " + path + "</p>";
    for (const auto& [component, fields] : cache_) {
      html += "<h2>" + component + "</h2><table border=1>";
      for (const auto& [k, v] : fields) {
        html += "<tr><td>" + k + "</td><td>" + v + "</td></tr>";
      }
      html += "</table>";
    }
    html += "</body></html>";
    return html;
  }

 private:
  struct Refresh : timing::Timeout {
    using Timeout::Timeout;
  };

  Negative<Web> web_ = provide<Web>();
  Positive<cats::Status> status_ = require<cats::Status>();
  Positive<timing::Timer> timer_ = require<timing::Timer>();

  cats::NodeRef self_;
  DurationMs refresh_ms_ = 1000;
  cats::OpId round_ = 0;
  std::map<std::string, std::map<std::string, std::string>> cache_;
};

}  // namespace kompics::web
