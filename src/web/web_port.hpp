#pragma once

// The Web abstraction (paper §4.1): applications *provide* a Web port,
// "accepting WebRequests and delivering WebResponses containing HTML
// pages". The HttpServer component (web/http_server.hpp) is the embedded
// Jetty stand-in: it parses HTTP from a TCP socket, triggers a WebRequest
// on its required Web port, and writes the matching WebResponse back to the
// client.

#include <cstdint>
#include <string>

#include "kompics/event.hpp"
#include "kompics/port_type.hpp"

namespace kompics::web {

class WebRequest : public Event {
  KOMPICS_EVENT(WebRequest, Event);

 public:
  WebRequest(std::uint64_t id, std::string method, std::string path, std::string query)
      : id(id), method(std::move(method)), path(std::move(path)), query(std::move(query)) {}
  std::uint64_t id;
  std::string method;
  std::string path;
  std::string query;
};

class WebResponse : public Event {
  KOMPICS_EVENT(WebResponse, Event);

 public:
  WebResponse(std::uint64_t id, int status, std::string content_type, std::string body)
      : id(id), status(status), content_type(std::move(content_type)), body(std::move(body)) {}
  std::uint64_t id;
  int status;
  std::string content_type;
  std::string body;
};

/// Provided by web applications; required by HttpServer.
class Web : public PortType {
 public:
  Web() {
    set_name("Web");
    request<WebRequest>();      // toward the application
    indication<WebResponse>();  // back toward the HTTP front-end
  }
};

}  // namespace kompics::web
