#include "web/http_server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>

#include "kompics/telemetry.hpp"

namespace kompics::web {

HttpServer::HttpServer() {
  subscribe<Init>(control(), [this](const Init& init) {
    listen_ = init.listen;
    request_timeout_ms_ = init.request_timeout_ms;
    telemetry_endpoints_ = init.telemetry_endpoints;
  });
  subscribe<Start>(control(), [this](const Start&) { boot(); });
  subscribe<Stop>(control(), [this](const Stop&) { stop_accepting(); });

  subscribe<WebResponse>(web_, [this](const WebResponse& resp) {
    std::shared_ptr<PendingResponse> p;
    {
      std::lock_guard<std::mutex> g(pending_mu_);
      auto it = pending_.find(resp.id);
      if (it == pending_.end()) return;  // request already timed out
      p = it->second;
      pending_.erase(it);
    }
    std::lock_guard<std::mutex> g(p->mu);
    p->done = true;
    p->status = resp.status;
    p->content_type = resp.content_type;
    p->body = resp.body;
    p->cv.notify_all();
  });
}

HttpServer::~HttpServer() { stop_accepting(); }

void HttpServer::boot() {
  if (running_.exchange(true)) return;
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(listen_.host);
  addr.sin_port = htons(listen_.port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 16) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    running_.store(false);
    throw std::runtime_error("HttpServer: cannot listen on " + listen_.to_string());
  }
  // Recover an ephemeral port choice so callers can connect.
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  listen_.port = ntohs(addr.sin_port);
  accept_thread_ = std::thread([this] { accept_main(); });
}

void HttpServer::stop_accepting() {
  if (!running_.exchange(false)) return;
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  if (accept_thread_.joinable()) accept_thread_.join();
  listen_fd_ = -1;
  // Fail every request still parked in serve_connection: the application
  // will not answer once the server is stopping, and the joins below must
  // not sit out each request's full timeout.
  {
    std::lock_guard<std::mutex> g(pending_mu_);
    for (auto& [id, p] : pending_) {
      std::lock_guard<std::mutex> pg(p->mu);
      p->done = true;
      p->status = 503;
      p->content_type = "text/plain";
      p->body = "server shutting down";
      p->cv.notify_all();
    }
    pending_.clear();
  }
  // The accept thread is gone, so conn_threads_ can only shrink from here.
  std::vector<std::thread> conns;
  {
    std::lock_guard<std::mutex> g(conn_mu_);
    conns.swap(conn_threads_);
  }
  for (auto& t : conns) {
    if (t.joinable()) t.join();
  }
}

void HttpServer::accept_main() {
  while (running_.load(std::memory_order_acquire)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (!running_.load(std::memory_order_acquire)) break;
      continue;
    }
    // Connections are short-lived (HTTP/1.0, Connection: close); serve each
    // in its own worker so a slow client cannot stall the accept loop. The
    // handle is kept — never detached — so stop_accepting() can join it:
    // a detached worker could outlive the server and write freed memory.
    std::thread conn([this, fd] { serve_connection(fd); });
    {
      std::lock_guard<std::mutex> g(conn_mu_);
      conn_threads_.push_back(std::move(conn));
    }
  }
}

void HttpServer::serve_connection(int fd) {
  char buf[8192];
  std::string raw;
  // Read until the end of headers (or a bounded amount).
  while (raw.find("\r\n\r\n") == std::string::npos && raw.size() < sizeof(buf)) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    raw.append(buf, static_cast<std::size_t>(n));
  }
  std::string method = "GET", path = "/", query;
  const auto eol = raw.find("\r\n");
  if (eol != std::string::npos) {
    const std::string line = raw.substr(0, eol);
    const auto sp1 = line.find(' ');
    const auto sp2 = line.find(' ', sp1 + 1);
    if (sp1 != std::string::npos && sp2 != std::string::npos) {
      method = line.substr(0, sp1);
      std::string target = line.substr(sp1 + 1, sp2 - sp1 - 1);
      const auto qpos = target.find('?');
      path = target.substr(0, qpos);
      if (qpos != std::string::npos) query = target.substr(qpos + 1);
    }
  }

  // The trace endpoint answers directly from the kernel (no Web-port round
  // trip): the monitoring surface must work even when the application layer
  // is wedged — that is precisely when it is needed.
  if (telemetry_endpoints_ && path == "/trace") {
    send_direct(fd, 200, "application/json", telemetry::render_trace_json(runtime()));
    return;
  }

  const std::uint64_t id = next_id_.fetch_add(1, std::memory_order_relaxed);
  auto pending = std::make_shared<PendingResponse>();
  {
    std::lock_guard<std::mutex> g(pending_mu_);
    pending_[id] = pending;
  }
  trigger(make_event<WebRequest>(id, method, path, query), web_);

  {
    std::unique_lock<std::mutex> lock(pending->mu);
    pending->cv.wait_for(lock, std::chrono::milliseconds(request_timeout_ms_),
                         [&pending] { return pending->done; });
  }
  {
    std::lock_guard<std::mutex> g(pending_mu_);
    pending_.erase(id);
  }

  // /metrics is one combined surface: kernel telemetry first (rendered here,
  // so it is served even when the application layer is wedged and the round
  // trip above timed out), then whatever protocol-level samples the web app
  // answered for the same path (e.g. CATS ring-epoch and view counters).
  if (telemetry_endpoints_ && path == "/metrics") {
    std::string body = telemetry::render_prometheus(runtime());
    if (pending->done && pending->status == 200 &&
        pending->content_type.rfind("text/plain", 0) == 0) {
      body += pending->body;
    }
    send_direct(fd, 200, "text/plain; version=0.0.4", body);
    return;
  }

  send_direct(fd, pending->status, pending->content_type, pending->body);
}

void HttpServer::send_direct(int fd, int status, const std::string& content_type,
                             const std::string& body) {
  std::string head = "HTTP/1.0 " + std::to_string(status) + (status == 200 ? " OK" : " ERROR") +
                     "\r\nContent-Type: " + content_type +
                     "\r\nContent-Length: " + std::to_string(body.size()) +
                     "\r\nConnection: close\r\n\r\n";
  head += body;
  std::size_t off = 0;
  while (off < head.size()) {
    const ssize_t n = ::send(fd, head.data() + off, head.size() - off, MSG_NOSIGNAL);
    if (n <= 0) break;
    off += static_cast<std::size_t>(n);
  }
  ::close(fd);
  served_.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace kompics::web
