#pragma once

// HttpServer: minimal embedded HTTP/1.0 server component — the stand-in for
// the paper's embedded Jetty (§4.1). One accept thread; each connection is
// served by a short-lived worker that parses the request line, triggers a
// WebRequest on the required Web port, and blocks (bounded) for the
// application's WebResponse, bridging the synchronous socket world to the
// asynchronous component world.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "kompics/component.hpp"
#include "kompics/kompics.hpp"
#include "net/address.hpp"
#include "web/web_port.hpp"

namespace kompics::web {

class HttpServer : public ComponentDefinition {
 public:
  struct Init : kompics::Init {
    explicit Init(net::Address listen, DurationMs request_timeout_ms = 2000,
                  bool telemetry_endpoints = true)
        : listen(listen),
          request_timeout_ms(request_timeout_ms),
          telemetry_endpoints(telemetry_endpoints) {}
    net::Address listen;
    DurationMs request_timeout_ms;
    /// Serve /metrics (Prometheus text) and /trace (span JSON) directly
    /// from kernel telemetry, bypassing the Web port.
    bool telemetry_endpoints;
  };

  HttpServer();
  ~HttpServer() override;

  /// Joins the accept thread and every connection worker; a worker that
  /// outlived the server used to touch freed state when answering slowly.
  void halt() override { stop_accepting(); }

  std::uint16_t port() const { return listen_.port; }
  std::uint64_t requests_served() const { return served_.load(std::memory_order_relaxed); }

 private:
  struct PendingResponse {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    int status = 504;
    std::string content_type = "text/plain";
    std::string body = "timeout";
  };

  void boot();
  void stop_accepting();
  void accept_main();
  void serve_connection(int fd);
  void send_direct(int fd, int status, const std::string& content_type,
                   const std::string& body);

  Positive<Web> web_ = require<Web>();

  net::Address listen_{};
  DurationMs request_timeout_ms_ = 2000;
  bool telemetry_endpoints_ = true;
  int listen_fd_ = -1;
  std::atomic<bool> running_{false};
  std::thread accept_thread_;
  // One handle per connection served; all joined in stop_accepting(). Kept
  // instead of detaching so no worker can outlive the server object.
  std::mutex conn_mu_;
  std::vector<std::thread> conn_threads_;

  std::mutex pending_mu_;
  std::map<std::uint64_t, std::shared_ptr<PendingResponse>> pending_;
  std::atomic<std::uint64_t> next_id_{1};
  std::atomic<std::uint64_t> served_{0};
};

}  // namespace kompics::web
