#pragma once

// Network messages of the CATS protocols (Fig. 11), all registered with the
// serialization registry so the same components run over TcpNetwork,
// LoopbackNetwork (codec-exercising mode), or the NetworkEmulator.
// Wire ids 100..149 are reserved for CATS.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "cats/ports.hpp"
#include "net/buffer.hpp"
#include "net/network_port.hpp"

namespace kompics::cats {

using net::BufferReader;
using net::BufferWriter;
using net::Message;

/// Call once (idempotent, thread-safe) before using CATS over a serializing
/// network provider. Component constructors call it automatically.
void register_cats_serializers();

// ---- helpers ---------------------------------------------------------------

inline void write_node_ref(BufferWriter& w, const NodeRef& n) {
  w.u64(n.key);
  n.addr.write(w);
}
inline NodeRef read_node_ref(BufferReader& r) {
  NodeRef n;
  n.key = r.u64();
  n.addr = Address::read(r);
  return n;
}
inline void write_node_refs(BufferWriter& w, const std::vector<NodeRef>& v) {
  w.var_u64(v.size());
  for (const auto& n : v) write_node_ref(w, n);
}
inline std::vector<NodeRef> read_node_refs(BufferReader& r) {
  std::vector<NodeRef> v(r.var_u64());
  for (auto& n : v) n = read_node_ref(r);
  return v;
}

// ---- failure detector ------------------------------------------------------

class PingMsg : public Message {
  KOMPICS_EVENT(PingMsg, Message);

 public:
  PingMsg(Address s, Address d, std::uint64_t seq) : Message(s, d), seq(seq) {}
  std::uint64_t seq;
};

class PongMsg : public Message {
  KOMPICS_EVENT(PongMsg, Message);

 public:
  PongMsg(Address s, Address d, std::uint64_t seq) : Message(s, d), seq(seq) {}
  std::uint64_t seq;
};

// ---- Cyclon ------------------------------------------------------------------

struct CyclonEntry {
  NodeRef node;
  std::uint32_t age = 0;
};

class ShuffleRequestMsg : public Message {
  KOMPICS_EVENT(ShuffleRequestMsg, Message);

 public:
  ShuffleRequestMsg(Address s, Address d, std::vector<CyclonEntry> entries)
      : Message(s, d), entries(std::move(entries)) {}
  std::vector<CyclonEntry> entries;
};

class ShuffleResponseMsg : public Message {
  KOMPICS_EVENT(ShuffleResponseMsg, Message);

 public:
  ShuffleResponseMsg(Address s, Address d, std::vector<CyclonEntry> entries)
      : Message(s, d), entries(std::move(entries)) {}
  std::vector<CyclonEntry> entries;
};

// ---- ring maintenance --------------------------------------------------------

/// Iteratively routed join lookup: find the successor of `target`. The hop
/// budget bounds forwarding: successor lists disagree while a partition
/// heals, so the "monotonic progress" forwarding rule can cycle — and on a
/// duplicating link an unbounded cycle is an exponential message storm
/// (campaign finding, seeds 565/805/940/1915). An exhausted budget drops the
/// lookup; the joiner's retry timer issues a fresh one.
class FindSuccessorMsg : public Message {
  KOMPICS_EVENT(FindSuccessorMsg, Message);

 public:
  FindSuccessorMsg(Address s, Address d, NodeRef joiner, RingKey target, std::uint32_t hops_left)
      : Message(s, d), joiner(joiner), target(target), hops_left(hops_left) {}
  NodeRef joiner;
  RingKey target;
  std::uint32_t hops_left;
};

class FoundSuccessorMsg : public Message {
  KOMPICS_EVENT(FoundSuccessorMsg, Message);

 public:
  FoundSuccessorMsg(Address s, Address d, NodeRef successor, std::vector<NodeRef> successor_list)
      : Message(s, d), successor(successor), successor_list(std::move(successor_list)) {}
  NodeRef successor;
  std::vector<NodeRef> successor_list;
};

/// Periodic stabilization probe to our successor.
class GetRingStateMsg : public Message {
  KOMPICS_EVENT(GetRingStateMsg, Message);

 public:
  GetRingStateMsg(Address s, Address d, NodeRef from) : Message(s, d), from(from) {}
  NodeRef from;
};

class RingStateMsg : public Message {
  KOMPICS_EVENT(RingStateMsg, Message);

 public:
  RingStateMsg(Address s, Address d, NodeRef self, bool has_pred, NodeRef pred,
               std::vector<NodeRef> succs)
      : Message(s, d), self(self), has_pred(has_pred), pred(pred), succs(std::move(succs)) {}
  NodeRef self;
  bool has_pred;
  NodeRef pred;
  std::vector<NodeRef> succs;
};

/// Chord-style notify: "I believe I am your predecessor".
class NotifyMsg : public Message {
  KOMPICS_EVENT(NotifyMsg, Message);

 public:
  NotifyMsg(Address s, Address d, NodeRef from) : Message(s, d), from(from) {}
  NodeRef from;
};

// ---- ABD quorum replication ----------------------------------------------------

struct VersionTag {
  std::uint64_t counter = 0;
  std::uint64_t writer = 0;  // tie-break
  bool operator<(const VersionTag& o) const {
    return counter != o.counter ? counter < o.counter : writer < o.writer;
  }
  bool operator==(const VersionTag& o) const {
    return counter == o.counter && writer == o.writer;
  }
};

/// Every ABD phase message carries the consistent-quorum view version the
/// coordinator resolved its replica group under (`view`); replicas reject
/// phase messages whose version does not match their installed view, which
/// is what makes two concurrent quorums for the same range impossible.
class AbdReadMsg : public Message {
  KOMPICS_EVENT(AbdReadMsg, Message);

 public:
  AbdReadMsg(Address s, Address d, OpId op, RingKey key, std::uint64_t view)
      : Message(s, d), op(op), key(key), view(view) {}
  OpId op;
  RingKey key;
  std::uint64_t view;
};

class AbdReadAckMsg : public Message {
  KOMPICS_EVENT(AbdReadAckMsg, Message);

 public:
  AbdReadAckMsg(Address s, Address d, OpId op, RingKey key, std::uint64_t view, VersionTag tag,
                bool exists, Value value)
      : Message(s, d), op(op), key(key), view(view), tag(tag), exists(exists),
        value(std::move(value)) {}
  OpId op;
  RingKey key;
  std::uint64_t view;  ///< echo of the phase message's view version
  VersionTag tag;
  bool exists;
  Value value;
};

class AbdWriteMsg : public Message {
  KOMPICS_EVENT(AbdWriteMsg, Message);

 public:
  AbdWriteMsg(Address s, Address d, OpId op, RingKey key, std::uint64_t view, VersionTag tag,
              bool exists, Value value)
      : Message(s, d), op(op), key(key), view(view), tag(tag), exists(exists),
        value(std::move(value)) {}
  OpId op;
  RingKey key;
  std::uint64_t view;
  VersionTag tag;
  bool exists;  ///< false only for write-backs of "no value" (no-op impose)
  Value value;
};

class AbdWriteAckMsg : public Message {
  KOMPICS_EVENT(AbdWriteAckMsg, Message);

 public:
  AbdWriteAckMsg(Address s, Address d, OpId op, RingKey key, std::uint64_t view)
      : Message(s, d), op(op), key(key), view(view) {}
  OpId op;
  RingKey key;
  std::uint64_t view;
};

/// Replica refusal of an ABD phase message sent under a stale (or not yet
/// installed) view. Lets the coordinator abandon an unreachable quorum
/// early and retry with a fresh lookup instead of waiting out the timeout.
class AbdNackMsg : public Message {
  KOMPICS_EVENT(AbdNackMsg, Message);

 public:
  AbdNackMsg(Address s, Address d, OpId op, RingKey key, std::uint64_t current_version)
      : Message(s, d), op(op), key(key), current_version(current_version) {}
  OpId op;
  RingKey key;
  std::uint64_t current_version;  ///< replica's installed version (0 = none)
};

// ---- one-hop routing ---------------------------------------------------------

/// Greedily forwarded lookup: find the replication group of `key` on behalf
/// of `origin`. The responsible node answers the origin directly with a
/// LookupResultMsg — one forwarding hop in the common (warm-table) case.
class RouteLookupMsg : public Message {
  KOMPICS_EVENT(RouteLookupMsg, Message);

 public:
  RouteLookupMsg(Address s, Address d, NodeRef origin, OpId op, RingKey key,
                 std::uint32_t group_size, std::uint32_t ttl)
      : Message(s, d), origin(origin), op(op), key(key), group_size(group_size), ttl(ttl) {}
  NodeRef origin;
  OpId op;
  RingKey key;
  std::uint32_t group_size;
  std::uint32_t ttl;
};

class LookupResultMsg : public Message {
  KOMPICS_EVENT(LookupResultMsg, Message);

 public:
  LookupResultMsg(Address s, Address d, OpId op, RingKey key, std::vector<NodeRef> group,
                  std::uint64_t view_version = 0)
      : Message(s, d), op(op), key(key), group(std::move(group)), view_version(view_version) {}
  OpId op;
  RingKey key;
  std::vector<NodeRef> group;
  std::uint64_t view_version;
};

// ---- consistent-quorum view reconfiguration ---------------------------------
//
// A key range's replica group only changes through a single-decree consensus
// instance run over the members of the OLD view (the paper's consistent
// quorums [11]). Promising a proposal FENCES the old view at the acceptor:
// it stops acknowledging ABD phase messages for that version. A new view is
// installed only after a majority of the old view accepted it — i.e. only
// once the old view can no longer assemble an ABD quorum — so a partial
// partition can never commit divergent writes under two views of one range.

/// Proposal ballot: totally ordered, proposer key breaks ties.
struct Ballot {
  std::uint64_t round = 0;
  std::uint64_t proposer = 0;
  bool operator<(const Ballot& o) const {
    return round != o.round ? round < o.round : proposer < o.proposer;
  }
  bool operator==(const Ballot& o) const { return round == o.round && proposer == o.proposer; }
  bool operator<=(const Ballot& o) const { return *this < o || *this == o; }
};

/// One stored key shipped during view installation / catch-up.
struct KeyState {
  RingKey key = 0;
  VersionTag tag{};
  Value value;
};

/// Phase 1a: fence the range (range_lo, range_hi] at version target-1 and
/// ask its members to promise ballot for the reconfiguration to `target`.
class ViewPrepareMsg : public Message {
  KOMPICS_EVENT(ViewPrepareMsg, Message);

 public:
  ViewPrepareMsg(Address s, Address d, RingKey range_lo, RingKey range_hi, std::uint64_t target,
                 Ballot ballot)
      : Message(s, d), range_lo(range_lo), range_hi(range_hi), target(target), ballot(ballot) {}
  RingKey range_lo;
  RingKey range_hi;
  std::uint64_t target;
  Ballot ballot;
};

/// Phase 1b. ok=true carries any previously accepted proposal (Paxos adopt
/// rule) plus the acceptor's replica state for the range (the state-transfer
/// source). ok=false with a non-empty `catchup` view tells a stale proposer
/// which newer view is already installed.
class ViewPromiseMsg : public Message {
  KOMPICS_EVENT(ViewPromiseMsg, Message);

 public:
  ViewPromiseMsg(Address s, Address d, RingKey range_hi, std::uint64_t target, Ballot ballot,
                 bool ok, Ballot promised, bool has_accepted, Ballot accepted_ballot,
                 std::vector<GroupView> accepted_children, std::vector<GroupView> catchup,
                 std::vector<KeyState> state)
      : Message(s, d), range_hi(range_hi), target(target), ballot(ballot), ok(ok),
        promised(promised), has_accepted(has_accepted), accepted_ballot(accepted_ballot),
        accepted_children(std::move(accepted_children)), catchup(std::move(catchup)),
        state(std::move(state)) {}
  RingKey range_hi;
  std::uint64_t target;
  Ballot ballot;  ///< the prepare's ballot, echoed for matching
  bool ok;
  Ballot promised;
  bool has_accepted;
  Ballot accepted_ballot;
  std::vector<GroupView> accepted_children;
  std::vector<GroupView> catchup;  ///< 0 or 1 newer installed views (ok=false)
  std::vector<KeyState> state;
};

/// Phase 2a: the children views (1 = member change, 2 = range split) that
/// replace the parent range at `target`.
class ViewAcceptMsg : public Message {
  KOMPICS_EVENT(ViewAcceptMsg, Message);

 public:
  ViewAcceptMsg(Address s, Address d, RingKey range_lo, RingKey range_hi, std::uint64_t target,
                Ballot ballot, std::vector<GroupView> children)
      : Message(s, d), range_lo(range_lo), range_hi(range_hi), target(target), ballot(ballot),
        children(std::move(children)) {}
  RingKey range_lo;
  RingKey range_hi;
  std::uint64_t target;
  Ballot ballot;
  std::vector<GroupView> children;
};

/// Phase 2b.
class ViewAcceptedMsg : public Message {
  KOMPICS_EVENT(ViewAcceptedMsg, Message);

 public:
  ViewAcceptedMsg(Address s, Address d, RingKey range_hi, std::uint64_t target, Ballot ballot,
                  bool ok)
      : Message(s, d), range_hi(range_hi), target(target), ballot(ballot), ok(ok) {}
  RingKey range_hi;
  std::uint64_t target;
  Ballot ballot;
  bool ok;
};

/// Decision + state transfer: install one child view (sent to every member
/// of the child; also answers a ViewFetchMsg for catch-up). The receiver
/// merges `state` by max tag, drops any overlapping older range, and
/// publishes the view to its router.
class ViewInstallMsg : public Message {
  KOMPICS_EVENT(ViewInstallMsg, Message);

 public:
  ViewInstallMsg(Address s, Address d, RingKey parent_hi, GroupView child,
                 std::vector<KeyState> state)
      : Message(s, d), parent_hi(parent_hi), child(std::move(child)), state(std::move(state)) {}
  RingKey parent_hi;
  GroupView child;
  std::vector<KeyState> state;
};

class ViewInstallAckMsg : public Message {
  KOMPICS_EVENT(ViewInstallAckMsg, Message);

 public:
  ViewInstallAckMsg(Address s, Address d, RingKey parent_hi, RingKey child_hi,
                    std::uint64_t version)
      : Message(s, d), parent_hi(parent_hi), child_hi(child_hi), version(version) {}
  RingKey parent_hi;
  RingKey child_hi;
  std::uint64_t version;
};

/// Catch-up pull: "send me the views covering (lo, hi]". A node that is
/// ring-responsible for an interval no installed view covers (e.g. a healed
/// boundary node that was evicted from its old group) asks a successor —
/// replicas of its ranges — for copies, then proposes a member change to
/// re-enter the group. Answered with ViewInstallMsg per overlapping view.
class ViewFetchMsg : public Message {
  KOMPICS_EVENT(ViewFetchMsg, Message);

 public:
  ViewFetchMsg(Address s, Address d, RingKey lo, RingKey hi)
      : Message(s, d), lo(lo), hi(hi) {}
  RingKey lo;
  RingKey hi;
};

// ---- bootstrap ------------------------------------------------------------------

class BootstrapRequestMsg : public Message {
  KOMPICS_EVENT(BootstrapRequestMsg, Message);

 public:
  BootstrapRequestMsg(Address s, Address d, NodeRef self) : Message(s, d), self(self) {}
  NodeRef self;
};

class BootstrapResponseMsg : public Message {
  KOMPICS_EVENT(BootstrapResponseMsg, Message);

 public:
  BootstrapResponseMsg(Address s, Address d, std::vector<NodeRef> peers)
      : Message(s, d), peers(std::move(peers)) {}
  std::vector<NodeRef> peers;
};

class KeepAliveMsg : public Message {
  KOMPICS_EVENT(KeepAliveMsg, Message);

 public:
  KeepAliveMsg(Address s, Address d, NodeRef self) : Message(s, d), self(self) {}
  NodeRef self;
};

// ---- monitoring ------------------------------------------------------------------

class StatusReportMsg : public Message {
  KOMPICS_EVENT(StatusReportMsg, Message);

 public:
  StatusReportMsg(Address s, Address d, NodeRef node,
                  std::map<std::string, std::string> fields)
      : Message(s, d), node(node), fields(std::move(fields)) {}
  NodeRef node;
  std::map<std::string, std::string> fields;
};

}  // namespace kompics::cats
