#pragma once

// Network messages of the CATS protocols (Fig. 11), all registered with the
// serialization registry so the same components run over TcpNetwork,
// LoopbackNetwork (codec-exercising mode), or the NetworkEmulator.
// Wire ids 100..149 are reserved for CATS.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "cats/ports.hpp"
#include "net/buffer.hpp"
#include "net/network_port.hpp"

namespace kompics::cats {

using net::BufferReader;
using net::BufferWriter;
using net::Message;

/// Call once (idempotent, thread-safe) before using CATS over a serializing
/// network provider. Component constructors call it automatically.
void register_cats_serializers();

// ---- helpers ---------------------------------------------------------------

inline void write_node_ref(BufferWriter& w, const NodeRef& n) {
  w.u64(n.key);
  n.addr.write(w);
}
inline NodeRef read_node_ref(BufferReader& r) {
  NodeRef n;
  n.key = r.u64();
  n.addr = Address::read(r);
  return n;
}
inline void write_node_refs(BufferWriter& w, const std::vector<NodeRef>& v) {
  w.var_u64(v.size());
  for (const auto& n : v) write_node_ref(w, n);
}
inline std::vector<NodeRef> read_node_refs(BufferReader& r) {
  std::vector<NodeRef> v(r.var_u64());
  for (auto& n : v) n = read_node_ref(r);
  return v;
}

// ---- failure detector ------------------------------------------------------

class PingMsg : public Message {
  KOMPICS_EVENT(PingMsg, Message);

 public:
  PingMsg(Address s, Address d, std::uint64_t seq) : Message(s, d), seq(seq) {}
  std::uint64_t seq;
};

class PongMsg : public Message {
  KOMPICS_EVENT(PongMsg, Message);

 public:
  PongMsg(Address s, Address d, std::uint64_t seq) : Message(s, d), seq(seq) {}
  std::uint64_t seq;
};

// ---- Cyclon ------------------------------------------------------------------

struct CyclonEntry {
  NodeRef node;
  std::uint32_t age = 0;
};

class ShuffleRequestMsg : public Message {
  KOMPICS_EVENT(ShuffleRequestMsg, Message);

 public:
  ShuffleRequestMsg(Address s, Address d, std::vector<CyclonEntry> entries)
      : Message(s, d), entries(std::move(entries)) {}
  std::vector<CyclonEntry> entries;
};

class ShuffleResponseMsg : public Message {
  KOMPICS_EVENT(ShuffleResponseMsg, Message);

 public:
  ShuffleResponseMsg(Address s, Address d, std::vector<CyclonEntry> entries)
      : Message(s, d), entries(std::move(entries)) {}
  std::vector<CyclonEntry> entries;
};

// ---- ring maintenance --------------------------------------------------------

/// Iteratively routed join lookup: find the successor of `target`.
class FindSuccessorMsg : public Message {
  KOMPICS_EVENT(FindSuccessorMsg, Message);

 public:
  FindSuccessorMsg(Address s, Address d, NodeRef joiner, RingKey target)
      : Message(s, d), joiner(joiner), target(target) {}
  NodeRef joiner;
  RingKey target;
};

class FoundSuccessorMsg : public Message {
  KOMPICS_EVENT(FoundSuccessorMsg, Message);

 public:
  FoundSuccessorMsg(Address s, Address d, NodeRef successor, std::vector<NodeRef> successor_list)
      : Message(s, d), successor(successor), successor_list(std::move(successor_list)) {}
  NodeRef successor;
  std::vector<NodeRef> successor_list;
};

/// Periodic stabilization probe to our successor.
class GetRingStateMsg : public Message {
  KOMPICS_EVENT(GetRingStateMsg, Message);

 public:
  GetRingStateMsg(Address s, Address d, NodeRef from) : Message(s, d), from(from) {}
  NodeRef from;
};

class RingStateMsg : public Message {
  KOMPICS_EVENT(RingStateMsg, Message);

 public:
  RingStateMsg(Address s, Address d, NodeRef self, bool has_pred, NodeRef pred,
               std::vector<NodeRef> succs)
      : Message(s, d), self(self), has_pred(has_pred), pred(pred), succs(std::move(succs)) {}
  NodeRef self;
  bool has_pred;
  NodeRef pred;
  std::vector<NodeRef> succs;
};

/// Chord-style notify: "I believe I am your predecessor".
class NotifyMsg : public Message {
  KOMPICS_EVENT(NotifyMsg, Message);

 public:
  NotifyMsg(Address s, Address d, NodeRef from) : Message(s, d), from(from) {}
  NodeRef from;
};

// ---- ABD quorum replication ----------------------------------------------------

struct VersionTag {
  std::uint64_t counter = 0;
  std::uint64_t writer = 0;  // tie-break
  bool operator<(const VersionTag& o) const {
    return counter != o.counter ? counter < o.counter : writer < o.writer;
  }
  bool operator==(const VersionTag& o) const {
    return counter == o.counter && writer == o.writer;
  }
};

class AbdReadMsg : public Message {
  KOMPICS_EVENT(AbdReadMsg, Message);

 public:
  AbdReadMsg(Address s, Address d, OpId op, RingKey key) : Message(s, d), op(op), key(key) {}
  OpId op;
  RingKey key;
};

class AbdReadAckMsg : public Message {
  KOMPICS_EVENT(AbdReadAckMsg, Message);

 public:
  AbdReadAckMsg(Address s, Address d, OpId op, RingKey key, VersionTag tag, bool exists,
                Value value)
      : Message(s, d), op(op), key(key), tag(tag), exists(exists), value(std::move(value)) {}
  OpId op;
  RingKey key;
  VersionTag tag;
  bool exists;
  Value value;
};

class AbdWriteMsg : public Message {
  KOMPICS_EVENT(AbdWriteMsg, Message);

 public:
  AbdWriteMsg(Address s, Address d, OpId op, RingKey key, VersionTag tag, bool exists,
              Value value)
      : Message(s, d), op(op), key(key), tag(tag), exists(exists), value(std::move(value)) {}
  OpId op;
  RingKey key;
  VersionTag tag;
  bool exists;  ///< false only for write-backs of "no value" (no-op impose)
  Value value;
};

class AbdWriteAckMsg : public Message {
  KOMPICS_EVENT(AbdWriteAckMsg, Message);

 public:
  AbdWriteAckMsg(Address s, Address d, OpId op, RingKey key) : Message(s, d), op(op), key(key) {}
  OpId op;
  RingKey key;
};

// ---- one-hop routing ---------------------------------------------------------

/// Greedily forwarded lookup: find the replication group of `key` on behalf
/// of `origin`. The responsible node answers the origin directly with a
/// LookupResultMsg — one forwarding hop in the common (warm-table) case.
class RouteLookupMsg : public Message {
  KOMPICS_EVENT(RouteLookupMsg, Message);

 public:
  RouteLookupMsg(Address s, Address d, NodeRef origin, OpId op, RingKey key,
                 std::uint32_t group_size, std::uint32_t ttl)
      : Message(s, d), origin(origin), op(op), key(key), group_size(group_size), ttl(ttl) {}
  NodeRef origin;
  OpId op;
  RingKey key;
  std::uint32_t group_size;
  std::uint32_t ttl;
};

class LookupResultMsg : public Message {
  KOMPICS_EVENT(LookupResultMsg, Message);

 public:
  LookupResultMsg(Address s, Address d, OpId op, RingKey key, std::vector<NodeRef> group)
      : Message(s, d), op(op), key(key), group(std::move(group)) {}
  OpId op;
  RingKey key;
  std::vector<NodeRef> group;
};

// ---- bootstrap ------------------------------------------------------------------

class BootstrapRequestMsg : public Message {
  KOMPICS_EVENT(BootstrapRequestMsg, Message);

 public:
  BootstrapRequestMsg(Address s, Address d, NodeRef self) : Message(s, d), self(self) {}
  NodeRef self;
};

class BootstrapResponseMsg : public Message {
  KOMPICS_EVENT(BootstrapResponseMsg, Message);

 public:
  BootstrapResponseMsg(Address s, Address d, std::vector<NodeRef> peers)
      : Message(s, d), peers(std::move(peers)) {}
  std::vector<NodeRef> peers;
};

class KeepAliveMsg : public Message {
  KOMPICS_EVENT(KeepAliveMsg, Message);

 public:
  KeepAliveMsg(Address s, Address d, NodeRef self) : Message(s, d), self(self) {}
  NodeRef self;
};

// ---- monitoring ------------------------------------------------------------------

class StatusReportMsg : public Message {
  KOMPICS_EVENT(StatusReportMsg, Message);

 public:
  StatusReportMsg(Address s, Address d, NodeRef node,
                  std::map<std::string, std::string> fields)
      : Message(s, d), node(node), fields(std::move(fields)) {}
  NodeRef node;
  std::map<std::string, std::string> fields;
};

}  // namespace kompics::cats
