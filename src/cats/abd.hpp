#pragma once

// ConsistentABD (Fig. 11): quorum-based linearizable reads and writes — a
// multi-writer multi-reader atomic register per key (Attiya-Bar-Noy-Dolev),
// layered over the One-Hop Router (to discover the replication group of a
// key) and the Network (for the quorum phases).
//
// Put(k, v):  phase 1 queries a majority of the group for version tags and
//             picks max; phase 2 writes (max.counter + 1, self) to a
//             majority.
// Get(k):     phase 1 reads (tag, value) from a majority; phase 2 imposes
//             the maximum back onto a majority before responding (the ABD
//             write-back, which is what makes concurrent reads linearizable).
//
// Consistent quorums (CATS tech report [11]): every replica group is a
// versioned view over a key range. Phase messages carry the view version
// the coordinator looked the group up under; replicas acknowledge only if
// the version matches their installed, unfenced view and they are members.
// View changes run as a single-decree consensus per (range, version) over
// the OLD view's members, and promising a proposal fences the old view —
// so by the time a new view activates, the old one can no longer assemble
// an ABD quorum, and a partial partition cannot commit divergent writes.
//
// Replicas are otherwise passive: they answer reads with their stored
// (tag, value) and apply writes only when the incoming tag is newer.
// Operations time out and retry with a fresh group lookup (bounded), then
// fail — CATS targets "partially synchronous, lossy, partitionable and
// dynamic networks" (§4).

#include <functional>
#include <map>
#include <optional>
#include <unordered_map>

#include "cats/messages.hpp"
#include "cats/params.hpp"
#include "cats/ports.hpp"
#include "kompics/component.hpp"
#include "kompics/kompics.hpp"
#include "kompics/protocol.hpp"
#include "net/network_port.hpp"
#include "timing/timer_port.hpp"

namespace kompics::cats {

class ConsistentABD : public ComponentDefinition {
 public:
  struct Init : kompics::Init {
    Init(NodeRef self, CatsParams params) : self(self), params(params) {}
    NodeRef self;
    CatsParams params;
  };

  ConsistentABD();

  struct Counters {
    std::uint64_t puts_ok = 0;
    std::uint64_t gets_ok = 0;
    std::uint64_t ops_failed = 0;
    std::uint64_t retries = 0;
    // Phase the op was in when it finally gave up (diagnosis of failures).
    std::uint64_t failed_in_lookup = 0;
    std::uint64_t failed_in_read = 0;
    std::uint64_t failed_in_write = 0;
    // Consistent-quorum views.
    std::uint64_t views_installed = 0;       ///< views (re)installed locally
    std::uint64_t view_fences = 0;           ///< ranges fenced by a promise
    std::uint64_t view_fetches = 0;          ///< catch-up pulls sent
    std::uint64_t reconfigs_proposed = 0;    ///< prepare rounds started
    std::uint64_t reconfigs_decided = 0;     ///< proposals that reached accept quorum
    std::uint64_t stale_view_nacks = 0;      ///< replica: phase msgs rejected
    std::uint64_t fast_retries = 0;          ///< coordinator: nack-driven retries
    // Coordinator-side divergence guard: acks whose view version did not
    // match the operation's view. Replicas echo the phase version, so this
    // MUST stay 0 — the partition tests assert it (no op may count an ack,
    // let alone commit, under a stale view).
    std::uint64_t stale_view_acks_dropped = 0;
  };
  const Counters& counters() const { return counters_; }
  std::size_t store_size() const { return store_.size(); }
  std::size_t ranges_held() const { return ranges_.size(); }
  /// Installed view covering `key`, if any (tests / introspection).
  std::optional<GroupView> view_covering(RingKey key) const;

  /// Protocol invariants for the campaign harness (ISSUE 7): recorded
  /// violations (an op counting acks under a view other than the one it was
  /// coordinated under — the exact PR 6 bug class) plus on-demand checks of
  /// the current state (installed views must partition the key space
  /// disjointly; no in-flight op may hold more acks than group members).
  /// Empty on every healthy run; the campaign runner polls this per node.
  std::vector<std::string> invariant_violations() const;

 private:
  struct Replica {
    VersionTag tag{};
    bool exists = false;
    Value value;
  };

  enum class OpType { kPut, kGet };
  enum class Phase { kLookup, kRead, kWrite };

  struct Op {
    OpType type;
    Phase phase = Phase::kLookup;
    OpId client_id = 0;  // id from the PutGet request
    RingKey key = 0;
    Value put_value;
    std::vector<NodeRef> group;
    std::uint64_t view = 0;  ///< view version the group was resolved under
    std::size_t quorum = 0;
    // Ack/nack sources for the current phase of the current attempt:
    // duplicated deliveries must not double-count toward the quorum.
    std::vector<Address> acked;
    std::vector<Address> nacked;
    VersionTag max_tag{};
    bool max_exists = false;
    Value max_value;
    int retries_left = 0;
    std::uint8_t attempt = 0;  ///< retry epoch, embedded in wire op ids
    // A put chooses its version tag exactly once. Retries retransmit the
    // SAME (tag, value): re-choosing a fresh (higher) tag would let one put
    // take effect at two different linearization points (its value could be
    // observed, overwritten, and then resurrect — a checker-found bug).
    bool tag_chosen = false;
    VersionTag chosen_tag{};
  };

  struct ReconfigTick : timing::Timeout {
    using Timeout::Timeout;
  };

  // ---- consistent-quorum view state ------------------------------------

  /// A range this node holds (as member or catch-up copy). Fenced ranges no
  /// longer acknowledge ABD phase messages: a majority of fenced members is
  /// what de-activates an old view.
  struct RangeState {
    GroupView view;
    bool fenced = false;
    TimeMs fenced_at = 0;  ///< when the fence dropped (recovery re-proposal timer)
  };

  /// Single-decree acceptor slot for one (range_hi, target version).
  struct Slot {
    Ballot promised{};
    bool has_accepted = false;
    Ballot accepted_ballot{};
    std::vector<GroupView> accepted_children;
  };

  /// Proposer state for reconfiguring the range with hi == key of map.
  struct Reconfig {
    enum class Stage { kPrepare, kAccept, kInstall };
    Stage stage = Stage::kPrepare;
    std::uint64_t target = 0;
    Ballot ballot{};
    GroupView parent;                  // old view (acceptors = parent.members)
    std::vector<GroupView> proposed;   // what we want
    std::vector<GroupView> children;   // what got decided (after adoption)
    std::vector<Address> promises;
    std::vector<Address> accepts;
    bool adopted = false;
    Ballot max_accepted{};
    std::uint64_t highest_rejection = 0;  ///< highest promised.round seen in nacks
    std::map<RingKey, Replica> merged_state;  // max-tag merge of promise dumps
    std::map<RingKey, std::vector<Address>> install_acks;  // child hi -> ackers
    TimeMs last_driven = 0;  ///< pace retransmits/ballot bumps to the tick period
  };

  // Wire op ids embed the retry attempt so acknowledgements from a
  // timed-out attempt can never count toward a later attempt's quorum (an
  // attempt's correlation predicates match the exact wire id).
  static OpId wire_id(OpId internal, std::uint8_t attempt) { return internal * 16 + attempt; }

  // ---- coordinator: one coroutine frame per client operation -------------
  //
  // run_op drives the whole retry loop; each attempt arms one deadline that
  // spans the lookup/read/write rounds. A round co_returns true on quorum,
  // false when the deadline (or the nack-infeasibility fast-retry backoff)
  // fires first. The ops_ entry is erased by RAII when the frame ends —
  // including when the component is destroyed mid-operation.
  protocol::Proto<void> run_op(OpId internal);
  protocol::Proto<bool> lookup_round(OpId internal, protocol::ArmedTimer& deadline);
  protocol::Proto<bool> read_round(OpId internal, protocol::ArmedTimer& deadline);
  protocol::Proto<bool> write_round(OpId internal, protocol::ArmedTimer& deadline);
  /// The shared ack/nack quorum loop of the read and write phases: sends the
  /// phase messages, counts view-gated deduplicated acks (folding each newly
  /// counted one through `fold`), and arms the fast-retry backoff when nacks
  /// make this view's quorum infeasible.
  template <class AckMsg>
  protocol::Proto<bool> quorum_round(OpId internal, protocol::ArmedTimer& deadline,
                                     Phase phase, std::function<void(OpId wid)> send_phase,
                                     std::function<void(const AckMsg&)> fold);
  /// View-gates and dedups a phase ack; true if it newly counts toward the
  /// quorum. (Shared by the read and write rounds: the view gate, the
  /// mixed-view violation recorder, and the source dedup are identical.)
  bool count_ack(OpId internal, Op& op, const Address& source, std::uint64_t ack_view);
  /// Counts a deduplicated nack; true when so many members rejected this
  /// view that a quorum can never form (callers then arm the fast retry).
  bool count_nack(Op& op, const Address& source);
  /// Replies to the client and bumps the outcome counters (the ops_ entry
  /// itself is owned by run_op's RAII guard).
  void complete_op(Op& op, bool ok);
  OpId fresh_id() { return next_op_++; }
  /// Dedup-insert `a` into `v`; true if newly inserted.
  static bool note_address(std::vector<Address>& v, const Address& a);
  /// Records the mixed-view-quorum invariant violation (only reachable with
  /// params_.inject_stale_view_bug — the healthy coordinator drops the ack).
  void note_mixed_view_ack(OpId internal, const Op& op, std::uint64_t ack_view);

  // ---- view manager (abd_views.cpp) ------------------------------------

  /// Wires up the consistent-quorum view protocol: the single-decree
  /// consensus (prepare/promise/accept/accepted), installs, and catch-up
  /// fetches. Lives in abd_views.cpp with the rest of the view manager.
  void subscribe_view_protocol();
  bool ring_responsible_for(RingKey key) const;
  const RangeState* covering_range(RingKey key) const;
  std::vector<KeyState> dump_range(RingKey lo, RingKey hi) const;
  std::vector<NodeRef> group_headed_by(const NodeRef& head) const;
  static bool same_member_set(const std::vector<NodeRef>& a, const std::vector<NodeRef>& b);
  std::uint64_t next_ballot_round(const Reconfig* prev) const;
  void install_view(const GroupView& view, const std::vector<KeyState>& state);
  void evaluate_reconfigurations();
  void drive_reconfig(Reconfig& rec);
  void send_installs(Reconfig& rec);
  /// Who must ack a child's install: the child's members plus the parent's —
  /// evicted members learn the view that superseded (and unfences) theirs.
  std::vector<NodeRef> install_recipients(const Reconfig& rec, const GroupView& child) const;
  void merge_promise_state(Reconfig& rec, const std::vector<KeyState>& state);
  void replica_nack(const Address& to, OpId op, RingKey key);

  Negative<PutGet> putget_ = provide<PutGet>();
  Negative<Status> status_ = provide<Status>();
  Negative<QuorumViews> views_ = provide<QuorumViews>();
  Positive<Router> router_ = require<Router>();
  Positive<Ring> ring_ = require<Ring>();
  Positive<net::Network> network_ = require<net::Network>();
  Positive<timing::Timer> timer_ = require<timing::Timer>();

  NodeRef self_;
  CatsParams params_;
  std::unordered_map<RingKey, Replica> store_;
  std::unordered_map<OpId, Op> ops_;  // keyed by internal op id
  OpId next_op_ = 1;
  Counters counters_;
  std::vector<std::string> recorded_violations_;

  // Cached ring neighborhood (drives reconfiguration proposals).
  bool ring_view_received_ = false;
  bool sole_member_ = false;
  bool has_pred_ = false;
  NodeRef pred_{};
  std::vector<NodeRef> succs_;
  std::uint64_t ring_epoch_ = 0;
  std::uint64_t fetch_attempts_ = 0;

  std::map<RingKey, RangeState> ranges_;                      // keyed by view.hi
  std::map<std::pair<RingKey, std::uint64_t>, Slot> slots_;   // (hi, target)
  std::map<RingKey, Reconfig> reconfigs_;                     // keyed by parent.hi
};

}  // namespace kompics::cats
