#pragma once

// ConsistentABD (Fig. 11): quorum-based linearizable reads and writes — a
// multi-writer multi-reader atomic register per key (Attiya-Bar-Noy-Dolev),
// layered over the One-Hop Router (to discover the replication group of a
// key) and the Network (for the quorum phases).
//
// Put(k, v):  phase 1 queries a majority of the group for version tags and
//             picks max; phase 2 writes (max.counter + 1, self) to a
//             majority.
// Get(k):     phase 1 reads (tag, value) from a majority; phase 2 imposes
//             the maximum back onto a majority before responding (the ABD
//             write-back, which is what makes concurrent reads linearizable).
//
// Replicas are passive: they answer reads with their stored (tag, value)
// and apply writes only when the incoming tag is newer. Operations time out
// and retry with a fresh group lookup (bounded), then fail — CATS targets
// "partially synchronous, lossy, partitionable and dynamic networks" (§4).

#include <unordered_map>

#include "cats/messages.hpp"
#include "cats/params.hpp"
#include "cats/ports.hpp"
#include "kompics/component.hpp"
#include "kompics/kompics.hpp"
#include "net/network_port.hpp"
#include "timing/timer_port.hpp"

namespace kompics::cats {

class ConsistentABD : public ComponentDefinition {
 public:
  struct Init : kompics::Init {
    Init(NodeRef self, CatsParams params) : self(self), params(params) {}
    NodeRef self;
    CatsParams params;
  };

  ConsistentABD();

  struct Counters {
    std::uint64_t puts_ok = 0;
    std::uint64_t gets_ok = 0;
    std::uint64_t ops_failed = 0;
    std::uint64_t retries = 0;
    // Phase the op was in when it finally gave up (diagnosis of failures).
    std::uint64_t failed_in_lookup = 0;
    std::uint64_t failed_in_read = 0;
    std::uint64_t failed_in_write = 0;
  };
  const Counters& counters() const { return counters_; }
  std::size_t store_size() const { return store_.size(); }

 private:
  struct Replica {
    VersionTag tag{};
    bool exists = false;
    Value value;
  };

  enum class OpType { kPut, kGet };
  enum class Phase { kLookup, kRead, kWrite };

  struct Op {
    OpType type;
    Phase phase = Phase::kLookup;
    OpId client_id = 0;  // id from the PutGet request
    RingKey key = 0;
    Value put_value;
    std::vector<NodeRef> group;
    std::size_t quorum = 0;
    std::size_t acks = 0;
    VersionTag max_tag{};
    bool max_exists = false;
    Value max_value;
    int retries_left = 0;
    std::uint8_t attempt = 0;  ///< retry epoch, embedded in wire op ids
    // A put chooses its version tag exactly once. Retries retransmit the
    // SAME (tag, value): re-choosing a fresh (higher) tag would let one put
    // take effect at two different linearization points (its value could be
    // observed, overwritten, and then resurrect — a checker-found bug).
    bool tag_chosen = false;
    VersionTag chosen_tag{};
    timing::TimeoutId timeout_id = 0;
  };

  struct OpTimeout : timing::Timeout {
    OpTimeout(timing::TimeoutId id, OpId op) : Timeout(id), op(op) {}
    OpId op;
  };

  // Wire op ids embed the retry attempt so acknowledgements from a
  // timed-out attempt can never count toward a later attempt's quorum.
  static OpId wire_id(OpId internal, std::uint8_t attempt) { return internal * 16 + attempt; }
  static OpId internal_of(OpId wire) { return wire / 16; }
  static std::uint8_t attempt_of(OpId wire) { return static_cast<std::uint8_t>(wire % 16); }

  void start_op(OpId internal, Op op);
  void begin_lookup(OpId internal, Op& op);
  void begin_read_phase(OpId internal, Op& op);
  void begin_write_phase(OpId internal, Op& op);
  void finish_op(OpId internal, Op& op, bool ok);
  void retry_or_fail(OpId internal);
  OpId fresh_id() { return next_op_++; }

  Negative<PutGet> putget_ = provide<PutGet>();
  Negative<Status> status_ = provide<Status>();
  Positive<Router> router_ = require<Router>();
  Positive<net::Network> network_ = require<net::Network>();
  Positive<timing::Timer> timer_ = require<timing::Timer>();

  NodeRef self_;
  CatsParams params_;
  std::unordered_map<RingKey, Replica> store_;
  std::unordered_map<OpId, Op> ops_;  // keyed by internal op id
  OpId next_op_ = 1;
  Counters counters_;
};

}  // namespace kompics::cats
