#pragma once

// PingFailureDetector (Fig. 11): an eventually-perfect failure detector.
// Periodically pings each monitored node; a node that misses its (adaptive)
// timeout is Suspected, and Restored when a pong finally arrives — at which
// point the timeout is increased, so in a partially synchronous system every
// false suspicion eventually stops (the classic <>P construction).

#include <cstdint>
#include <unordered_map>

#include "cats/messages.hpp"
#include "cats/params.hpp"
#include "cats/ports.hpp"
#include "kompics/component.hpp"
#include "kompics/kompics.hpp"
#include "net/network_port.hpp"
#include "timing/timer_port.hpp"

namespace kompics::cats {

class PingFailureDetector : public ComponentDefinition {
 public:
  struct Init : kompics::Init {
    Init(Address self, CatsParams params) : self(self), params(params) {}
    Address self;
    CatsParams params;
  };

  PingFailureDetector();

  // Introspection for tests.
  bool is_suspected(const Address& a) const {
    auto it = monitored_.find(a);
    return it != monitored_.end() && it->second.suspected;
  }
  std::size_t monitored_count() const { return monitored_.size(); }

 private:
  struct Mon {
    std::uint64_t seq_sent = 0;
    std::uint64_t seq_acked = 0;
    TimeMs last_ping_time = 0;
    DurationMs timeout;
    bool suspected = false;
  };

  struct PingRound : timing::Timeout {
    using Timeout::Timeout;
  };

  void on_round();

  Negative<EventuallyPerfectFD> fd_ = provide<EventuallyPerfectFD>();
  Negative<Status> status_ = provide<Status>();
  Positive<net::Network> network_ = require<net::Network>();
  Positive<timing::Timer> timer_ = require<timing::Timer>();

  Address self_;
  CatsParams params_;
  std::unordered_map<Address, Mon> monitored_;
  std::uint64_t suspicions_ = 0;
  std::uint64_t restores_ = 0;
};

}  // namespace kompics::cats
