#pragma once

// CatsSimulator (Fig. 12, left): the whole-system simulation assembly. One
// component dynamically creates and destroys entire CATS nodes — each node
// a subtree of {NetworkEmulator, SimTimer, CatsNode} — driven by commands
// on its CatsExperiment port (or the equivalent public methods, which the
// scenario-DSL operations call). "The ability to create and destroy node
// subcomponents in CATS Simulator is clearly facilitated by Kompics'
// support for dynamic reconfiguration and hierarchical composition" (§4.2).
//
// Every put/get is recorded in an operation history (invocation/response
// virtual times, results) for offline linearizability checking.

#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "cats/cats_node.hpp"
#include "cats/params.hpp"
#include "cats/ports.hpp"
#include "kompics/component.hpp"
#include "kompics/kompics.hpp"
#include "sim/network_emulator.hpp"
#include "sim/sim_timer.hpp"

namespace kompics::cats {

// ---- CatsExperiment port (paper's "CATS Experiment" abstraction) -----------

class ExpJoin : public Event {
  KOMPICS_EVENT(ExpJoin, Event);

 public:
  explicit ExpJoin(std::uint64_t node_id) : node_id(node_id) {}
  std::uint64_t node_id;
};

class ExpFail : public Event {
  KOMPICS_EVENT(ExpFail, Event);

 public:
  explicit ExpFail(std::uint64_t node_id) : node_id(node_id) {}
  std::uint64_t node_id;
};

class ExpPut : public Event {
  KOMPICS_EVENT(ExpPut, Event);

 public:
  ExpPut(std::uint64_t node_id, RingKey key, Value value)
      : node_id(node_id), key(key), value(std::move(value)) {}
  std::uint64_t node_id;
  RingKey key;
  Value value;
};

class ExpGet : public Event {
  KOMPICS_EVENT(ExpGet, Event);

 public:
  ExpGet(std::uint64_t node_id, RingKey key) : node_id(node_id), key(key) {}
  std::uint64_t node_id;
  RingKey key;
};

/// The paper's catsLookup(node, key): resolve the key's replication group.
class ExpLookup : public Event {
  KOMPICS_EVENT(ExpLookup, Event);

 public:
  ExpLookup(std::uint64_t node_id, RingKey key) : node_id(node_id), key(key) {}
  std::uint64_t node_id;
  RingKey key;
};

class CatsExperiment : public PortType {
 public:
  CatsExperiment() {
    set_name("CatsExperiment");
    request<ExpJoin>();
    request<ExpFail>();
    request<ExpPut>();
    request<ExpGet>();
    request<ExpLookup>();
  }
};

// ---- operation history for linearizability checking --------------------------

struct OpRecord {
  enum class Kind { kPut, kGet };
  Kind kind;
  std::uint64_t node_id = 0;
  RingKey key = 0;
  Value put_value;          // puts
  TimeMs invoked = 0;
  TimeMs responded = -1;    // -1 => pending at end of run
  bool ok = false;
  bool found = false;       // gets
  Value got_value;          // gets
};

// ---- the simulator component ---------------------------------------------------

class CatsSimulator : public ComponentDefinition {
 public:
  /// Spreads 16-bit scenario node ids uniformly over the 64-bit ring.
  static RingKey node_ring_key(std::uint64_t node_id) { return node_id << 48; }

  CatsSimulator(sim::SimulatorCore* core, sim::SimNetworkHubPtr hub, CatsParams params);

  // Commands (also reachable via the CatsExperiment port).
  void join(std::uint64_t node_id);
  void fail(std::uint64_t node_id);
  std::optional<std::size_t> put(std::uint64_t node_id, RingKey key, Value value);
  std::optional<std::size_t> get(std::uint64_t node_id, RingKey key);
  void lookup(std::uint64_t node_id, RingKey key) { get(node_id, key); }

  // Inspection.
  std::size_t alive_count() const { return nodes_.size(); }
  bool is_alive(std::uint64_t node_id) const { return nodes_.count(node_id) != 0; }
  std::vector<std::uint64_t> alive_ids() const;
  const std::vector<OpRecord>& history() const { return history_; }
  CatsNode& node(std::uint64_t node_id);
  std::size_t ready_count() const;
  const sim::SimNetworkHub& hub() const { return *hub_; }

  /// The node's SimTimer (campaign harness: timer-skew fault injection).
  sim::SimTimer& node_timer(std::uint64_t node_id);

  /// Sweeps every alive node's per-component invariants (ABD, ring, router;
  /// ISSUE 7) and returns all violations, prefixed with the node id. Empty
  /// on healthy runs — the campaign runner checks this after every schedule.
  std::vector<std::string> invariant_violations() const;

  /// Pick a random alive node id (for scenario ops addressed to "any node").
  std::optional<std::uint64_t> random_alive();

 private:
  struct NodeHandle {
    Component emulator;
    Component timer;
    Component node;
    NodeRef ref;
  };

  Address addr_of(std::uint64_t node_id) const {
    return Address::node(static_cast<std::uint32_t>(node_id) + 2, 1);
  }

  Negative<CatsExperiment> experiment_ = provide<CatsExperiment>();

  sim::SimulatorCore* core_;
  sim::SimNetworkHubPtr hub_;
  CatsParams params_;

  Component boot_emulator_, boot_timer_, boot_server_;
  Address boot_addr_ = Address::node(1, 1);

  std::map<std::uint64_t, NodeHandle> nodes_;
  std::vector<OpRecord> history_;
  std::map<OpId, std::size_t> inflight_;  // client op id -> history index
  OpId next_client_op_ = 1;
};

}  // namespace kompics::cats
