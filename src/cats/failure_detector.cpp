#include "cats/failure_detector.hpp"

namespace kompics::cats {

PingFailureDetector::PingFailureDetector() {
  register_cats_serializers();

  subscribe<Init>(control(), [this](const Init& init) {
    self_ = init.self;
    params_ = init.params;
  });

  subscribe<Start>(control(), [this](const Start&) {
    trigger(timing::schedule_periodic<PingRound>(params_.fd_ping_period_ms,
                                                 params_.fd_ping_period_ms),
            timer_);
  });

  subscribe<MonitorNode>(fd_, [this](const MonitorNode& m) {
    if (m.node == self_ || monitored_.count(m.node) != 0) return;
    Mon mon;
    mon.timeout = params_.fd_initial_timeout_ms;
    monitored_.emplace(m.node, mon);
  });

  subscribe<UnmonitorNode>(fd_, [this](const UnmonitorNode& m) { monitored_.erase(m.node); });

  subscribe<PingRound>(timer_, [this](const PingRound&) { on_round(); });

  subscribe<PingMsg>(network_, [this](const PingMsg& ping) {
    trigger(make_event<PongMsg>(self_, ping.source(), ping.seq), network_);
  });

  subscribe<PongMsg>(network_, [this](const PongMsg& pong) {
    auto it = monitored_.find(pong.source());
    if (it == monitored_.end()) return;
    Mon& mon = it->second;
    if (pong.seq <= mon.seq_acked) return;  // stale
    mon.seq_acked = pong.seq;
    if (mon.suspected) {
      // False suspicion: restore and back off the timeout (<>P adaptation).
      mon.suspected = false;
      mon.timeout += params_.fd_timeout_increment_ms;
      ++restores_;
      trigger(make_event<Restore>(pong.source()), fd_);
    }
  });

  subscribe<StatusRequest>(status_, [this](const StatusRequest& req) {
    std::map<std::string, std::string> fields;
    fields["monitored"] = std::to_string(monitored_.size());
    std::size_t suspected = 0;
    for (const auto& [addr, mon] : monitored_) suspected += mon.suspected ? 1 : 0;
    fields["suspected"] = std::to_string(suspected);
    fields["suspicions_total"] = std::to_string(suspicions_);
    fields["restores_total"] = std::to_string(restores_);
    trigger(make_event<StatusResponse>(req.id, "PingFailureDetector", std::move(fields)),
            status_);
  });
}

void PingFailureDetector::on_round() {
  const TimeMs current = now();
  for (auto& [addr, mon] : monitored_) {
    // Suspect nodes whose latest ping went unanswered past their timeout.
    if (!mon.suspected && mon.seq_acked < mon.seq_sent &&
        current - mon.last_ping_time >= mon.timeout) {
      mon.suspected = true;
      ++suspicions_;
      trigger(make_event<Suspect>(addr), fd_);
    }
    // Ping again only when the previous round was answered or timed out;
    // this keeps one outstanding probe per peer.
    if (mon.seq_acked == mon.seq_sent || mon.suspected ||
        current - mon.last_ping_time >= mon.timeout) {
      ++mon.seq_sent;
      mon.last_ping_time = current;
      trigger(make_event<PingMsg>(self_, addr, mon.seq_sent), network_);
    }
  }
}

}  // namespace kompics::cats
