#pragma once

// Bootstrap service (paper §4.1): a BootstrapServer keeps a list of online
// nodes for a system instance; every node embeds a BootstrapClient that
// fetches alive peers at startup and — after the node has joined — sends
// periodic keep-alives. The server evicts nodes whose keep-alives stop.

#include <unordered_map>
#include <vector>

#include "cats/messages.hpp"
#include "cats/params.hpp"
#include "cats/ports.hpp"
#include "kompics/component.hpp"
#include "kompics/kompics.hpp"
#include "kompics/protocol.hpp"
#include "net/network_port.hpp"
#include "timing/timer_port.hpp"

namespace kompics::cats {

class BootstrapServer : public ComponentDefinition {
 public:
  struct Init : kompics::Init {
    Init(Address self, CatsParams params) : self(self), params(params) {}
    Address self;
    CatsParams params;
  };

  BootstrapServer();

  std::size_t alive_count() const { return alive_.size(); }
  std::vector<NodeRef> alive_nodes() const;

 private:
  struct EvictionRound : timing::Timeout {
    using Timeout::Timeout;
  };

  Negative<Status> status_ = provide<Status>();
  Positive<net::Network> network_ = require<net::Network>();
  Positive<timing::Timer> timer_ = require<timing::Timer>();

  Address self_;
  CatsParams params_;
  struct AliveEntry {
    NodeRef node;
    TimeMs last_seen = 0;
  };
  std::unordered_map<Address, AliveEntry> alive_;
  std::uint64_t requests_served_ = 0;
  std::uint64_t evictions_ = 0;
};

class BootstrapClient : public ComponentDefinition {
 public:
  struct Init : kompics::Init {
    Init(NodeRef self, Address server, CatsParams params)
        : self(self), server(server), params(params) {}
    NodeRef self;
    Address server;
    CatsParams params;
  };

  BootstrapClient();

 private:
  /// Send-the-request/await-the-answer loop, retrying every keep-alive
  /// period until the server responds (the server may not be up yet).
  protocol::Proto<void> run_handshake();
  /// Infinite keep-alive heartbeat; dies with the component.
  protocol::Proto<void> run_keepalive();

  Negative<Bootstrap> bootstrap_ = provide<Bootstrap>();
  Positive<net::Network> network_ = require<net::Network>();
  Positive<timing::Timer> timer_ = require<timing::Timer>();

  NodeRef self_;
  Address server_;
  CatsParams params_;
  bool handshaking_ = false;
  bool done_ = false;
};

}  // namespace kompics::cats
