#pragma once

// Ring-key arithmetic for CATS's consistent-hashing identifier ring (§4.1).
// Keys live on a circular 64-bit space; interval membership must respect
// wrap-around. These helpers are the foundation for ring maintenance,
// one-hop routing, and replica placement, and are property-tested heavily.

#include <cstdint>
#include <string>

namespace kompics::cats {

using RingKey = std::uint64_t;

/// True when k lies in the half-open ring interval (from, to].
/// Conventions: if from == to the interval is the full ring (every key is a
/// member) — this makes a 1-node ring responsible for everything.
inline bool in_interval_oc(RingKey from, RingKey to, RingKey k) {
  if (from == to) return true;
  if (from < to) return k > from && k <= to;
  return k > from || k <= to;  // wrapped
}

/// True when k lies in the open ring interval (from, to).
inline bool in_interval_oo(RingKey from, RingKey to, RingKey k) {
  if (from == to) return k != from;  // full ring minus the endpoint
  if (from < to) return k > from && k < to;
  return k > from || k < to;
}

/// Clockwise distance from a to b on the ring.
inline std::uint64_t ring_distance(RingKey a, RingKey b) { return b - a; }  // mod 2^64 wrap

/// Hashes an arbitrary application key (e.g., a string) onto the ring.
/// FNV-1a accumulation followed by a splitmix64-style finalizer: FNV alone
/// disperses its high bits poorly, and the ring's placement logic keys off
/// exactly those bits.
inline RingKey hash_to_ring(const std::string& s) {
  std::uint64_t h = 1469598103934665603ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
  return h ^ (h >> 31);
}

inline std::string ring_key_str(RingKey k) { return std::to_string(k); }

}  // namespace kompics::cats
