// ConsistentABD's view manager: the consistent-quorum half of the component
// (CATS tech report [11]). Replica groups are versioned views over key
// ranges; changing one runs a single-decree consensus per (range, version)
// over the OLD view's members, fencing the old view on promise so a partial
// partition can never assemble quorums under two views at once. The ABD
// register protocol itself — coordinator coroutines and replica handlers —
// lives in abd.cpp; this file owns everything about views: the acceptor and
// proposer sides of the consensus, installs and catch-up transfers, and the
// ring-driven reconfiguration policy.

#include <algorithm>

#include "cats/abd.hpp"
#include "cats/ring_key.hpp"

namespace kompics::cats {

void ConsistentABD::subscribe_view_protocol() {
  // ---- acceptor side -------------------------------------------------------

  subscribe<ViewPrepareMsg>(network_, [this](const ViewPrepareMsg& msg) {
    auto refuse = [&](Ballot promised, std::vector<GroupView> catchup,
                      std::vector<KeyState> state) {
      trigger(make_event<ViewPromiseMsg>(self_.addr, msg.source(), msg.range_hi, msg.target,
                                         msg.ballot, false, promised, false, Ballot{},
                                         std::vector<GroupView>{}, std::move(catchup),
                                         std::move(state)),
              network_);
    };
    auto it = ranges_.find(msg.range_hi);
    if (it == ranges_.end() || it->second.view.version + 1 < msg.target) {
      // We do not hold this range (it may have been superseded by a newer
      // view after a split): if a newer installed view covers the proposer's
      // hi, ship it so the stale proposer can catch up.
      const RangeState* cover = covering_range(msg.range_hi);
      if (cover != nullptr && cover->view.version >= msg.target) {
        refuse(Ballot{}, {cover->view}, dump_range(cover->view.lo, cover->view.hi));
      } else {
        refuse(Ballot{}, {}, {});
      }
      return;
    }
    RangeState& r = it->second;
    if (r.view.version >= msg.target) {  // already reconfigured past the target
      refuse(Ballot{}, {r.view}, dump_range(r.view.lo, r.view.hi));
      return;
    }
    // r.view.version == msg.target - 1: we are an acceptor for this decree.
    Slot& slot = slots_[{msg.range_hi, msg.target}];
    if (msg.ballot < slot.promised) {
      refuse(slot.promised, {}, {});
      return;
    }
    slot.promised = msg.ballot;
    // THE FENCE: from this promise on, the old view refuses ABD phases for
    // the range. Once a majority of the old view has promised, the old view
    // can never again assemble a quorum — which is the precondition for the
    // new view taking over without a divergence window.
    if (!r.fenced) {
      r.fenced = true;
      r.fenced_at = now();
      ++counters_.view_fences;
    }
    trigger(make_event<ViewPromiseMsg>(self_.addr, msg.source(), msg.range_hi, msg.target,
                                       msg.ballot, true, slot.promised, slot.has_accepted,
                                       slot.accepted_ballot, slot.accepted_children,
                                       std::vector<GroupView>{},
                                       dump_range(r.view.lo, r.view.hi)),
            network_);
  });

  subscribe<ViewAcceptMsg>(network_, [this](const ViewAcceptMsg& msg) {
    auto it = ranges_.find(msg.range_hi);
    const bool have_old = it != ranges_.end() && it->second.view.version + 1 == msg.target;
    if (!have_old) {
      trigger(make_event<ViewAcceptedMsg>(self_.addr, msg.source(), msg.range_hi, msg.target,
                                          msg.ballot, false),
              network_);
      return;
    }
    Slot& slot = slots_[{msg.range_hi, msg.target}];
    if (msg.ballot < slot.promised) {
      trigger(make_event<ViewAcceptedMsg>(self_.addr, msg.source(), msg.range_hi, msg.target,
                                          msg.ballot, false),
              network_);
      return;
    }
    slot.promised = msg.ballot;
    slot.has_accepted = true;
    slot.accepted_ballot = msg.ballot;
    slot.accepted_children = msg.children;
    if (!it->second.fenced) {
      it->second.fenced = true;
      it->second.fenced_at = now();
      ++counters_.view_fences;
    }
    trigger(make_event<ViewAcceptedMsg>(self_.addr, msg.source(), msg.range_hi, msg.target,
                                        msg.ballot, true),
            network_);
  });

  // ---- proposer side -------------------------------------------------------

  subscribe<ViewPromiseMsg>(network_, [this](const ViewPromiseMsg& msg) {
    // A catch-up hint is useful whether or not the proposal it answers is
    // still current: install (install_view no-ops unless strictly newer).
    if (!msg.ok && !msg.catchup.empty()) {
      install_view(msg.catchup[0], msg.state);
    }
    auto it = reconfigs_.find(msg.range_hi);
    if (it == reconfigs_.end()) return;
    Reconfig& rec = it->second;
    if (rec.target != msg.target || !(rec.ballot == msg.ballot) ||
        rec.stage != Reconfig::Stage::kPrepare) {
      return;
    }
    if (!msg.ok) {
      if (!msg.catchup.empty()) {
        reconfigs_.erase(it);  // superseded; re-evaluated from the new view
      } else {
        rec.highest_rejection = std::max(rec.highest_rejection, msg.promised.round);
      }
      return;  // next tick re-proposes with a higher ballot if still needed
    }
    if (!rec.parent.has_member(msg.source())) return;
    if (!note_address(rec.promises, msg.source())) return;
    // Paxos adopt rule: if any acceptor already accepted children for this
    // decree, the highest-ballot such proposal is the only one we may pass.
    if (msg.has_accepted && (!rec.adopted || rec.max_accepted < msg.accepted_ballot)) {
      rec.adopted = true;
      rec.max_accepted = msg.accepted_ballot;
      rec.children = msg.accepted_children;
    }
    merge_promise_state(rec, msg.state);
    if (rec.promises.size() >= rec.parent.members.size() / 2 + 1) {
      if (!rec.adopted) rec.children = rec.proposed;
      rec.stage = Reconfig::Stage::kAccept;
      for (const auto& m : rec.parent.members) {
        trigger(make_event<ViewAcceptMsg>(self_.addr, m.addr, rec.parent.lo, rec.parent.hi,
                                          rec.target, rec.ballot, rec.children),
                network_);
      }
    }
  });

  subscribe<ViewAcceptedMsg>(network_, [this](const ViewAcceptedMsg& msg) {
    auto it = reconfigs_.find(msg.range_hi);
    if (it == reconfigs_.end()) return;
    Reconfig& rec = it->second;
    if (rec.target != msg.target || !(rec.ballot == msg.ballot) ||
        rec.stage != Reconfig::Stage::kAccept) {
      return;
    }
    if (!msg.ok) {
      rec.highest_rejection = std::max(rec.highest_rejection, rec.ballot.round);
      return;
    }
    if (!rec.parent.has_member(msg.source())) return;
    if (!note_address(rec.accepts, msg.source())) return;
    if (rec.accepts.size() >= rec.parent.members.size() / 2 + 1) {
      // Decided: the children replace the parent. Activate them by shipping
      // installs (with the max-tag state merged from the promise dumps) to
      // every child member; retransmitted each tick until all ack.
      rec.stage = Reconfig::Stage::kInstall;
      ++counters_.reconfigs_decided;
      send_installs(rec);
    }
  });

  // ---- installation & catch-up ---------------------------------------------

  subscribe<ViewInstallMsg>(network_, [this](const ViewInstallMsg& msg) {
    install_view(msg.child, msg.state);
    trigger(make_event<ViewInstallAckMsg>(self_.addr, msg.source(), msg.parent_hi, msg.child.hi,
                                          msg.child.version),
            network_);
  });

  subscribe<ViewInstallAckMsg>(network_, [this](const ViewInstallAckMsg& msg) {
    auto it = reconfigs_.find(msg.parent_hi);
    if (it == reconfigs_.end() || it->second.stage != Reconfig::Stage::kInstall) return;
    Reconfig& rec = it->second;
    const auto child = std::find_if(rec.children.begin(), rec.children.end(),
                                    [&](const GroupView& c) {
                                      return c.hi == msg.child_hi && c.version == msg.version;
                                    });
    if (child == rec.children.end()) return;
    note_address(rec.install_acks[msg.child_hi], msg.source());
    for (const auto& c : rec.children) {
      auto acked = rec.install_acks.find(c.hi);
      const std::size_t got = acked == rec.install_acks.end() ? 0 : acked->second.size();
      if (got < install_recipients(rec, c).size()) return;
    }
    reconfigs_.erase(it);  // every old and new member holds the view
  });

  subscribe<ViewFetchMsg>(network_, [this](const ViewFetchMsg& msg) {
    for (const auto& [hi, r] : ranges_) {
      const bool overlaps =
          in_interval_oc(msg.lo, msg.hi, r.view.hi) || r.view.covers(msg.hi);
      if (!overlaps) continue;
      trigger(make_event<ViewInstallMsg>(self_.addr, msg.source(), r.view.hi, r.view,
                                         dump_range(r.view.lo, r.view.hi)),
              network_);
    }
  });
}

// ---- view state & policy ----------------------------------------------------

bool ConsistentABD::ring_responsible_for(RingKey key) const {
  if (!ring_view_received_) return false;
  if (has_pred_) return in_interval_oc(pred_.key, self_.key, key);
  return sole_member_;
}

const ConsistentABD::RangeState* ConsistentABD::covering_range(RingKey key) const {
  const RangeState* best = nullptr;
  for (const auto& [hi, r] : ranges_) {
    if (!r.view.covers(key)) continue;
    if (best == nullptr || best->view.version < r.view.version) best = &r;
  }
  return best;
}

std::optional<GroupView> ConsistentABD::view_covering(RingKey key) const {
  const RangeState* r = covering_range(key);
  if (r == nullptr) return std::nullopt;
  return r->view;
}

std::vector<KeyState> ConsistentABD::dump_range(RingKey lo, RingKey hi) const {
  std::vector<KeyState> out;
  for (const auto& [k, rep] : store_) {
    if (rep.exists && in_interval_oc(lo, hi, k)) out.push_back(KeyState{k, rep.tag, rep.value});
  }
  return out;
}

std::vector<NodeRef> ConsistentABD::group_headed_by(const NodeRef& head) const {
  std::vector<NodeRef> g{head};
  auto push = [this, &g](const NodeRef& n) {
    if (g.size() >= params_.replication_degree) return;
    const bool dup = std::any_of(g.begin(), g.end(),
                                 [&n](const NodeRef& m) { return m.addr == n.addr; });
    if (!dup) g.push_back(n);
  };
  push(self_);
  for (const auto& s : succs_) push(s);
  return g;
}

bool ConsistentABD::same_member_set(const std::vector<NodeRef>& a,
                                    const std::vector<NodeRef>& b) {
  if (a.size() != b.size()) return false;
  for (const auto& n : a) {
    const bool found = std::any_of(b.begin(), b.end(),
                                   [&n](const NodeRef& m) { return m.addr == n.addr; });
    if (!found) return false;
  }
  return true;
}

std::uint64_t ConsistentABD::next_ballot_round(const Reconfig* prev) const {
  std::uint64_t round = ring_epoch_ > 0 ? ring_epoch_ : 1;
  if (prev != nullptr) {
    round = std::max(round, std::max(prev->ballot.round, prev->highest_rejection) + 1);
  }
  return round;
}

void ConsistentABD::install_view(const GroupView& view, const std::vector<KeyState>& state) {
  auto have = ranges_.find(view.hi);
  if (have != ranges_.end() && have->second.view.version >= view.version) return;
  // Merge the transferred state by max tag: never regress a replica.
  for (const auto& ks : state) {
    Replica& rep = store_[ks.key];
    if (!rep.exists || rep.tag < ks.tag) {
      rep.tag = ks.tag;
      rep.exists = true;
      rep.value = ks.value;
    }
  }
  // Drop every older range this view supersedes: the same hi (member change)
  // or a parent that covered this child's interval before a split. GC the
  // consensus slots and proposals that belonged to the superseded ranges.
  for (auto it = ranges_.begin(); it != ranges_.end();) {
    if (it->second.view.version < view.version && it->second.view.covers(view.hi)) {
      const RingKey hi = it->first;
      for (auto s = slots_.begin(); s != slots_.end();) {
        s = (s->first.first == hi && s->first.second <= view.version) ? slots_.erase(s)
                                                                      : std::next(s);
      }
      auto rc = reconfigs_.find(hi);
      if (rc != reconfigs_.end() && rc->second.target < view.version) reconfigs_.erase(rc);
      it = ranges_.erase(it);
    } else {
      ++it;
    }
  }
  ranges_[view.hi] = RangeState{view, /*fenced=*/false};
  ++counters_.views_installed;
  trigger(make_event<ViewUpdate>(view), views_);
}

void ConsistentABD::evaluate_reconfigurations() {
  if (!ring_view_received_) return;
  // Genesis: the first node of a fresh ring installs the full-circle view
  // unilaterally — there is no old view to fence.
  if (sole_member_ && ranges_.empty()) {
    install_view(GroupView{self_.key, self_.key, 1, {self_}}, {});
    return;
  }
  // Catch-up: ring-responsible for our own key but no installed view covers
  // it — e.g. a healed boundary node whose old group evicted it while it was
  // partitioned away. Pull copies from a successor (a replica of our
  // ranges); once installed, the member-change path below re-proposes us in.
  if (has_pred_ && covering_range(self_.key) == nullptr && !succs_.empty()) {
    const NodeRef& target = succs_[fetch_attempts_++ % succs_.size()];
    ++counters_.view_fetches;
    trigger(make_event<ViewFetchMsg>(self_.addr, target.addr, pred_.key, self_.key), network_);
  }
  // Drop proposals for ranges the ring no longer makes us responsible for.
  for (auto it = reconfigs_.begin(); it != reconfigs_.end();) {
    it = !ring_responsible_for(it->first) ? reconfigs_.erase(it) : std::next(it);
  }
  std::vector<RingKey> held;
  for (const auto& [hi, r] : ranges_) held.push_back(hi);
  for (RingKey hi : held) {
    auto rit = ranges_.find(hi);
    if (rit == ranges_.end() || !ring_responsible_for(hi)) continue;
    const GroupView& cur = rit->second.view;
    auto rc = reconfigs_.find(hi);
    // A decided reconfiguration keeps retransmitting installs until every
    // child member acked — even after our own install replaced the range.
    if (rc != reconfigs_.end() && rc->second.stage == Reconfig::Stage::kInstall) {
      if (now() - rc->second.last_driven >= params_.view_reconfig_period_ms) {
        send_installs(rc->second);
        rc->second.last_driven = now();
      }
      continue;
    }
    const std::uint64_t target = cur.version + 1;
    std::vector<GroupView> want;
    if (has_pred_ && in_interval_oo(cur.lo, cur.hi, pred_.key)) {
      // A node joined inside the range: split at the predecessor. The
      // predecessor heads the lower child; we keep the upper.
      want.push_back(GroupView{cur.lo, pred_.key, target, group_headed_by(pred_)});
      want.push_back(GroupView{pred_.key, cur.hi, target, group_headed_by(self_)});
    } else {
      std::vector<NodeRef> desired = group_headed_by(self_);
      if (same_member_set(desired, cur.members)) {
        if (rc != reconfigs_.end()) {
          // The ring flapped back to the current membership while a proposal
          // is in flight. Its Prepare may already have fenced acceptors, so
          // abandoning it would leave the range fenced with nobody driving
          // the decision that unfences it (observed as second-long
          // unavailability windows under failure-detector flapping). Keep
          // driving the existing goal to a decision; if the ring still
          // disagrees with the decided view afterwards, the next evaluation
          // proposes a correction.
          want = rc->second.proposed;
        } else if (rit->second.fenced &&
                   now() - rit->second.fenced_at >= params_.view_reconfig_period_ms) {
          // Fenced for a whole reconfiguration round with no local proposal:
          // a remote proposal stalled, or it decided and the install that
          // would supersede this range never reached us. Re-propose the
          // current membership at the next version — Paxos' adopt rule
          // completes the remote decision if any acceptor accepted one, and
          // either way the resulting install unfences the range.
          want.push_back(GroupView{cur.lo, cur.hi, target, std::move(desired)});
        } else {
          continue;  // view matches the ring; nothing to do
        }
      } else {
        want.push_back(GroupView{cur.lo, cur.hi, target, std::move(desired)});
      }
    }
    const bool same_goal =
        rc != reconfigs_.end() && rc->second.target == target &&
        rc->second.proposed.size() == want.size() &&
        std::equal(want.begin(), want.end(), rc->second.proposed.begin(),
                   [](const GroupView& a, const GroupView& b) {
                     return a.lo == b.lo && a.hi == b.hi && same_member_set(a.members, b.members);
                   });
    if (same_goal && now() - rc->second.last_driven < params_.view_reconfig_period_ms) {
      continue;  // in flight; give it a tick before bumping the ballot
    }
    Reconfig fresh;
    fresh.target = target;
    fresh.parent = cur;
    fresh.proposed = std::move(want);
    if (rc != reconfigs_.end()) fresh.highest_rejection = rc->second.highest_rejection;
    fresh.ballot = Ballot{next_ballot_round(rc == reconfigs_.end() ? nullptr : &rc->second),
                          self_.key};
    reconfigs_[hi] = std::move(fresh);
    drive_reconfig(reconfigs_[hi]);
  }
}

void ConsistentABD::drive_reconfig(Reconfig& rec) {
  ++counters_.reconfigs_proposed;
  rec.last_driven = now();
  for (const auto& m : rec.parent.members) {
    trigger(make_event<ViewPrepareMsg>(self_.addr, m.addr, rec.parent.lo, rec.parent.hi,
                                       rec.target, rec.ballot),
            network_);
  }
}

std::vector<NodeRef> ConsistentABD::install_recipients(const Reconfig& rec,
                                                       const GroupView& child) const {
  std::vector<NodeRef> recipients = child.members;
  for (const auto& m : rec.parent.members) {
    const bool present = std::any_of(recipients.begin(), recipients.end(),
                                     [&](const NodeRef& n) { return n.addr == m.addr; });
    if (!present) recipients.push_back(m);
  }
  return recipients;
}

void ConsistentABD::send_installs(Reconfig& rec) {
  for (const auto& child : rec.children) {
    std::vector<KeyState> state;
    for (const auto& [k, rep] : rec.merged_state) {
      if (rep.exists && in_interval_oc(child.lo, child.hi, k)) {
        state.push_back(KeyState{k, rep.tag, rep.value});
      }
    }
    // Installs go to the old members too, not just the new ones: a member
    // evicted by this decision is fenced (it promised the decree) and stays
    // unavailable until it learns the view that superseded its own.
    for (const auto& m : install_recipients(rec, child)) {
      const auto acked = rec.install_acks.find(child.hi);
      const bool has_acked =
          acked != rec.install_acks.end() &&
          std::find(acked->second.begin(), acked->second.end(), m.addr) != acked->second.end();
      if (has_acked) continue;
      trigger(make_event<ViewInstallMsg>(self_.addr, m.addr, rec.parent.hi, child, state),
              network_);
    }
  }
}

void ConsistentABD::merge_promise_state(Reconfig& rec, const std::vector<KeyState>& state) {
  for (const auto& ks : state) {
    Replica& rep = rec.merged_state[ks.key];
    if (!rep.exists || rep.tag < ks.tag) {
      rep.tag = ks.tag;
      rep.exists = true;
      rep.value = ks.value;
    }
  }
}

}  // namespace kompics::cats
