#include "cats/cyclon.hpp"

#include <algorithm>

namespace kompics::cats {

CyclonOverlay::CyclonOverlay() {
  register_cats_serializers();

  subscribe<Init>(control(), [this](const Init& init) {
    self_ = init.self;
    params_ = init.params;
  });

  subscribe<Start>(control(), [this](const Start&) {
    trigger(timing::schedule_periodic<ShuffleRound>(params_.shuffle_period_ms,
                                                    params_.shuffle_period_ms),
            timer_);
  });

  subscribe<SamplingSeed>(sampling_, [this](const SamplingSeed& seed) {
    self_ = seed.self;
    for (const auto& c : seed.contacts) {
      if (c.addr != self_.addr && !known(c.addr) && cache_.size() < params_.cyclon_cache_size) {
        cache_.push_back(CyclonEntry{c, 0});
      }
    }
    publish_sample();
  });

  subscribe<ShuffleRound>(timer_, [this](const ShuffleRound&) { on_shuffle_round(); });

  subscribe<ShuffleRequestMsg>(network_, [this](const ShuffleRequestMsg& req) {
    // Passive shuffle: answer with a random subset (not including self —
    // the requester obviously knows us) and merge the received entries.
    auto reply_entries = select_subset(params_.cyclon_shuffle_length, /*include_self=*/false);
    trigger(make_event<ShuffleResponseMsg>(self_.addr, req.source(), reply_entries), network_);
    merge(req.entries, reply_entries);
    publish_sample();
  });

  subscribe<ShuffleResponseMsg>(network_, [this](const ShuffleResponseMsg& resp) {
    if (resp.source() != shuffle_target_) return;  // stale response
    shuffle_target_ = Address{};
    merge(resp.entries, last_sent_);
    // The target answered, so it is alive: re-admit it with age 0 if there
    // is room. Without this, sparse caches (fresh joiners, tiny overlays)
    // can lose their last edge and disconnect.
    if (!known(target_entry_.node.addr) && target_entry_.node.addr.valid() &&
        cache_.size() < params_.cyclon_cache_size) {
      cache_.push_back(CyclonEntry{target_entry_.node, 0});
    }
    target_entry_ = CyclonEntry{};
    last_sent_.clear();
    publish_sample();
  });

  subscribe<StatusRequest>(status_, [this](const StatusRequest& req) {
    std::map<std::string, std::string> fields;
    fields["cache_size"] = std::to_string(cache_.size());
    fields["shuffles_total"] = std::to_string(shuffles_);
    trigger(make_event<StatusResponse>(req.id, "CyclonOverlay", std::move(fields)), status_);
  });
}

bool CyclonOverlay::known(const Address& a) const {
  return std::any_of(cache_.begin(), cache_.end(),
                     [&a](const CyclonEntry& e) { return e.node.addr == a; });
}

void CyclonOverlay::on_shuffle_round() {
  ++shuffles_;
  if (cache_.empty()) return;
  // Age all entries; purge those past the age cap (dead-descriptor bound);
  // pick the oldest survivor as the shuffle target and remove it (it is
  // replaced by the target's answer — Cyclon's implicit eviction of dead
  // peers).
  for (auto& e : cache_) ++e.age;
  cache_.erase(std::remove_if(cache_.begin(), cache_.end(),
                              [this](const CyclonEntry& e) {
                                return e.age > params_.cyclon_max_age;
                              }),
               cache_.end());
  if (cache_.empty()) return;
  std::size_t oldest = 0;
  for (std::size_t i = 0; i < cache_.size(); ++i) {
    if (cache_[i].age > cache_[oldest].age) oldest = i;
  }
  const NodeRef target = cache_[oldest].node;
  target_entry_ = cache_[oldest];
  cache_.erase(cache_.begin() + static_cast<long>(oldest));

  auto to_send = select_subset(params_.cyclon_shuffle_length - 1, /*include_self=*/true);
  shuffle_target_ = target.addr;
  last_sent_ = to_send;
  trigger(make_event<ShuffleRequestMsg>(self_.addr, target.addr, std::move(to_send)), network_);
}

std::vector<CyclonEntry> CyclonOverlay::select_subset(std::size_t n, bool include_self) {
  std::vector<CyclonEntry> out;
  if (include_self) out.push_back(CyclonEntry{self_, 0});
  // Random sample without replacement from the cache.
  std::vector<std::size_t> idx(cache_.size());
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  for (std::size_t i = 0; i < idx.size() && out.size() < n + (include_self ? 1u : 0u); ++i) {
    const std::size_t j = i + rng().next_below(idx.size() - i);
    std::swap(idx[i], idx[j]);
    out.push_back(cache_[idx[i]]);
  }
  return out;
}

void CyclonOverlay::merge(const std::vector<CyclonEntry>& received,
                          const std::vector<CyclonEntry>& sent) {
  for (const auto& e : received) {
    if (e.node.addr == self_.addr || known(e.node.addr)) continue;
    if (cache_.size() < params_.cyclon_cache_size) {
      cache_.push_back(e);
      continue;
    }
    // Cache full: replace one of the entries we shipped to the peer.
    bool replaced = false;
    for (auto& mine : cache_) {
      const bool was_sent = std::any_of(sent.begin(), sent.end(), [&](const CyclonEntry& s) {
        return s.node.addr == mine.node.addr;
      });
      if (was_sent) {
        mine = e;
        replaced = true;
        break;
      }
    }
    if (!replaced) {
      // Fall back to replacing the oldest entry.
      auto oldest = std::max_element(
          cache_.begin(), cache_.end(),
          [](const CyclonEntry& a, const CyclonEntry& b) { return a.age < b.age; });
      *oldest = e;
    }
  }
}

void CyclonOverlay::publish_sample() {
  std::vector<NodeRef> nodes;
  nodes.reserve(cache_.size());
  for (const auto& e : cache_) nodes.push_back(e.node);
  trigger(make_event<NodeSample>(std::move(nodes)), sampling_);
}

}  // namespace kompics::cats
