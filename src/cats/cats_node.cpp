#include "cats/cats_node.hpp"

namespace kompics::cats {

CatsNode::CatsNode(NodeRef self, Address bootstrap_server, Address monitor_server,
                   CatsParams params)
    : self_(self), params_(params) {
  register_cats_serializers();

  fd = create<PingFailureDetector>();
  trigger(make_event<PingFailureDetector::Init>(self.addr, params), fd.control());
  cyclon = create<CyclonOverlay>();
  trigger(make_event<CyclonOverlay::Init>(self, params), cyclon.control());
  ring = create<CatsRing>();
  trigger(make_event<CatsRing::Init>(self, params), ring.control());
  router = create<OneHopRouter>();
  trigger(make_event<OneHopRouter::Init>(self, params), router.control());
  abd = create<ConsistentABD>();
  trigger(make_event<ConsistentABD::Init>(self, params), abd.control());
  bootstrap_client = create<BootstrapClient>();
  trigger(make_event<BootstrapClient::Init>(self, bootstrap_server, params),
          bootstrap_client.control());

  // Network and Timer pass-through: the node's own required ports fan in to
  // every protocol component (Fig. 11: "all provided ports are connected to
  // all required ports of the same type" within the node's scope).
  for (const Component& c : {fd, cyclon, ring, router, abd, bootstrap_client}) {
    connect(c.required<net::Network>(), network_);
  }
  for (const Component& c : {fd, cyclon, ring, router, abd, bootstrap_client}) {
    connect(c.required<timing::Timer>(), timer_);
  }

  // Service wiring.
  connect(fd.provided<EventuallyPerfectFD>(), ring.required<EventuallyPerfectFD>());
  connect(cyclon.provided<NodeSampling>(), router.required<NodeSampling>());
  connect(cyclon.provided<NodeSampling>(), ring.required<NodeSampling>());
  connect(ring.provided<Ring>(), router.required<Ring>());
  connect(ring.provided<Ring>(), abd.required<Ring>());
  connect(router.provided<Router>(), ring.required<Router>());
  connect(router.provided<Router>(), abd.required<Router>());
  // The ABD's view manager feeds installed quorum views back to the router,
  // which answers lookups with (members, view version) for consistent-quorum
  // phases.
  connect(abd.provided<QuorumViews>(), router.required<QuorumViews>());

  // Expose ABD's PutGet as the node's own PutGet (composite pass-through).
  connect(abd.provided<PutGet>(), putget_);

  // Optional monitoring: the client polls every functional component's
  // Status port and ships aggregated reports to the monitor server.
  if (monitor_server.valid()) {
    monitor_client = create<MonitorClient>();
    trigger(make_event<MonitorClient::Init>(self, monitor_server, params),
            monitor_client.control());
    connect(monitor_client.required<net::Network>(), network_);
    connect(monitor_client.required<timing::Timer>(), timer_);
    for (const Component& c : {fd, cyclon, ring, router, abd}) {
      connect(c.provided<Status>(), monitor_client.required<Status>());
    }
  }

  // Join orchestration glue (§4.1): bootstrap -> seed sampling -> join ring
  // -> report BootstrapDone once the ring is ready.
  subscribe<Start>(control(), [this](const Start&) {
    trigger(make_event<BootstrapRequest>(self_), bootstrap_client.provided<Bootstrap>());
    // Liveness guard, always armed: (a) a stalled join (every sampled
    // contact died under churn) re-bootstraps for fresh contacts; (b) an
    // orphaned node (lost all neighbors to suspicion) re-bootstraps to find
    // the ring again; (c) a low-frequency refresh re-seeds gossip so
    // disjoint rings left by a healed partition merge.
    auto check = timing::schedule_periodic<JoinCheck>(4 * params_.stabilization_period_ms,
                                                      4 * params_.stabilization_period_ms);
    join_check_id_ = check->timeout_id();
    trigger(check, timer_);
  });

  subscribe<JoinCheck>(timer_, [this](const JoinCheck&) {
    const bool refresh_due =
        params_.bootstrap_refresh_ms > 0 && now() - last_refresh_ >= params_.bootstrap_refresh_ms;
    if (!ready_ || orphaned_ || refresh_due) {
      last_refresh_ = now();
      trigger(make_event<BootstrapRequest>(self_), bootstrap_client.provided<Bootstrap>());
    }
  });

  // Track orphaning: a ready node whose view lost every successor without
  // being a genuine sole member needs to find the ring again.
  subscribe<RingView>(ring.provided<Ring>(), [this](const RingView& view) {
    orphaned_ = ready_ && view.successors.empty() && !view.sole_member;
  });

  subscribe<BootstrapResponse>(bootstrap_client.provided<Bootstrap>(),
                               [this](const BootstrapResponse& resp) {
                                 contacts_ = resp.peers;
                                 if (ready_) {
                                   // Refresh / orphan recovery: re-seed gossip
                                   // with live peers; ring merge rides on the
                                   // resulting samples.
                                   trigger(make_event<SamplingSeed>(self_, contacts_),
                                           cyclon.provided<NodeSampling>());
                                   return;
                                 }
                                 std::vector<Address> contacts;
                                 contacts.reserve(resp.peers.size());
                                 for (const auto& p : resp.peers) contacts.push_back(p.addr);
                                 trigger(make_event<JoinRing>(std::move(contacts)),
                                         ring.provided<Ring>());
                               });

  subscribe<RingReady>(ring.provided<Ring>(), [this](const RingReady&) {
    ready_ = true;
    // Seed the sampling overlay only now: an unjoined node must never become
    // routable (its descriptor would poison one-hop tables, see router.cpp).
    trigger(make_event<SamplingSeed>(self_, contacts_), cyclon.provided<NodeSampling>());
    trigger(make_event<BootstrapDone>(), bootstrap_client.provided<Bootstrap>());
  });
}

}  // namespace kompics::cats
