#pragma once

// Monitoring service (paper §4.1): "a client component at each node
// periodically inspects the status of various internal components ... and
// sends reports to a monitoring server that can aggregate the status of
// nodes and present a global view of the system."
//
// MonitorClient's required Status port is connected to every functional
// component of the node; a StatusRequest fans out to all of them and the
// responses for one round are aggregated into a single StatusReportMsg.

#include <map>
#include <mutex>
#include <string>

#include "cats/messages.hpp"
#include "cats/params.hpp"
#include "cats/ports.hpp"
#include "kompics/component.hpp"
#include "kompics/kompics.hpp"
#include "net/network_port.hpp"
#include "timing/timer_port.hpp"

namespace kompics::cats {

class MonitorClient : public ComponentDefinition {
 public:
  struct Init : kompics::Init {
    Init(NodeRef self, Address server, CatsParams params)
        : self(self), server(server), params(params) {}
    NodeRef self;
    Address server;
    CatsParams params;
  };

  MonitorClient();

 private:
  struct ReportRound : timing::Timeout {
    using Timeout::Timeout;
  };
  struct RoundClose : timing::Timeout {
    RoundClose(timing::TimeoutId id, OpId round) : Timeout(id), round(round) {}
    OpId round;
  };

  Positive<Status> status_ = require<Status>();
  Positive<net::Network> network_ = require<net::Network>();
  Positive<timing::Timer> timer_ = require<timing::Timer>();

  NodeRef self_;
  Address server_;
  CatsParams params_;
  OpId round_ = 0;
  std::map<std::string, std::string> collected_;
};

/// Aggregates per-node reports into a global view (queried by tests, the
/// web front-end, and examples).
class MonitorServer : public ComponentDefinition {
 public:
  struct Init : kompics::Init {
    explicit Init(Address self, DurationMs stale_after_ms = 2000)
        : self(self), stale_after_ms(stale_after_ms) {}
    Address self;
    /// A node whose last report is older than this is flagged STALE in
    /// render_text() — the global view says so instead of silently showing
    /// the last snapshot of a node that stopped reporting.
    DurationMs stale_after_ms;
  };

  MonitorServer();

  struct NodeReport {
    NodeRef node;
    TimeMs received = 0;
    std::map<std::string, std::string> fields;
  };

  /// Snapshot of the aggregated view. Returns a copy: callers poll this
  /// from outside the component (status pages, examples, tests) while the
  /// report handler keeps mutating the map on a worker thread.
  std::map<Address, NodeReport> global_view() const {
    std::lock_guard<std::mutex> g(view_mu_);
    return view_;
  }
  std::string render_text() const;

 private:
  Negative<Status> status_ = provide<Status>();
  Positive<net::Network> network_ = require<net::Network>();

  Address self_;
  DurationMs stale_after_ms_ = 2000;
  // Guards view_ and reports_received_ against external readers; handlers
  // are already serialized per component but render_text()/global_view()
  // run on whatever thread owns the MonitorServer handle.
  mutable std::mutex view_mu_;
  std::map<Address, NodeReport> view_;
  std::uint64_t reports_received_ = 0;
};

}  // namespace kompics::cats
