#pragma once

// Service abstractions (port types + request/indication events) of the CATS
// architecture, one per "abstraction package" of paper §3 / Fig. 11:
//
//   PutGet              — the store's client API (linearizable get/put)
//   Ring                — ring membership / view maintenance (CATS Ring)
//   Router              — key -> replication group lookup (One-Hop Router)
//   NodeSampling        — random peer samples (Cyclon Overlay)
//   EventuallyPerfectFD — ping failure detector (Suspect / Restore)
//   Bootstrap           — node discovery at join time
//   Status              — per-component introspection for monitoring / web
//   QuorumViews         — installed consistent-quorum views (replica groups
//                         versioned per key range; CATS tech report [11])

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "kompics/event.hpp"
#include "kompics/port_type.hpp"
#include "net/address.hpp"
#include "cats/ring_key.hpp"

namespace kompics::cats {

using net::Address;
using Value = std::vector<std::uint8_t>;
using OpId = std::uint64_t;

// ---------------------------------------------------------------------------
// PutGet (§4.1: "a simple API to get and put key-value pairs, while
// guaranteeing linearizable consistency")
// ---------------------------------------------------------------------------

class PutRequest : public Event {
  KOMPICS_EVENT(PutRequest, Event);

 public:
  PutRequest(OpId id, RingKey key, Value value) : id(id), key(key), value(std::move(value)) {}
  OpId id;
  RingKey key;
  Value value;
};

class PutResponse : public Event {
  KOMPICS_EVENT(PutResponse, Event);

 public:
  PutResponse(OpId id, RingKey key, bool ok) : id(id), key(key), ok(ok) {}
  OpId id;
  RingKey key;
  bool ok;
};

class GetRequest : public Event {
  KOMPICS_EVENT(GetRequest, Event);

 public:
  GetRequest(OpId id, RingKey key) : id(id), key(key) {}
  OpId id;
  RingKey key;
};

class GetResponse : public Event {
  KOMPICS_EVENT(GetResponse, Event);

 public:
  GetResponse(OpId id, RingKey key, bool ok, bool found, Value value)
      : id(id), key(key), ok(ok), found(found), value(std::move(value)) {}
  OpId id;
  RingKey key;
  bool ok;     ///< false => operation failed/timed out
  bool found;  ///< key had a value
  Value value;
};

class PutGet : public PortType {
 public:
  PutGet() {
    set_name("PutGet");
    request<PutRequest>();
    request<GetRequest>();
    indication<PutResponse>();
    indication<GetResponse>();
  }
};

// ---------------------------------------------------------------------------
// Ring (CATS Ring: topology maintenance)
// ---------------------------------------------------------------------------

struct NodeRef {
  RingKey key = 0;
  Address addr{};
  bool operator==(const NodeRef& o) const { return key == o.key && addr == o.addr; }
  bool operator!=(const NodeRef& o) const { return !(*this == o); }
};

/// Instructs the ring to join via the given contact nodes (empty = found a
/// fresh ring).
class JoinRing : public Event {
  KOMPICS_EVENT(JoinRing, Event);

 public:
  explicit JoinRing(std::vector<Address> contacts) : contacts(std::move(contacts)) {}
  std::vector<Address> contacts;
};

/// Current ring neighborhood of this node. Emitted on every change.
class RingView : public Event {
  KOMPICS_EVENT(RingView, Event);

 public:
  RingView(NodeRef self, NodeRef predecessor, bool has_predecessor,
           std::vector<NodeRef> successors, bool sole_member, std::uint64_t epoch = 0)
      : self(self),
        predecessor(predecessor),
        has_predecessor(has_predecessor),
        successors(std::move(successors)),
        sole_member(sole_member),
        epoch(epoch) {}
  NodeRef self;
  NodeRef predecessor;
  bool has_predecessor;
  std::vector<NodeRef> successors;
  /// True only for a node that bootstrapped a fresh ring and has never had
  /// a peer. A node that LOST all its neighbors (suspected under a
  /// partition) is NOT a sole member: claiming whole-ring authority there
  /// would be split-brain (see router.cpp).
  bool sole_member;
  /// Monotonic count of local view changes. Quorum-view reconfiguration
  /// ballots fold it in so proposal rounds advance with ring churn.
  std::uint64_t epoch;
};

/// Indication that this node has completed its join protocol.
class RingReady : public Event {
  KOMPICS_EVENT(RingReady, Event);

 public:
  explicit RingReady(NodeRef self) : self(self) {}
  NodeRef self;
};

class Ring : public PortType {
 public:
  Ring() {
    set_name("Ring");
    request<JoinRing>();
    indication<RingView>();
    indication<RingReady>();
  }
};

// ---------------------------------------------------------------------------
// Router (One-Hop Router: key -> replication group)
// ---------------------------------------------------------------------------

class LookupRequest : public Event {
  KOMPICS_EVENT(LookupRequest, Event);

 public:
  LookupRequest(OpId id, RingKey key, std::size_t group_size)
      : id(id), key(key), group_size(group_size) {}
  OpId id;
  RingKey key;
  std::size_t group_size;
};

class LookupResponse : public Event {
  KOMPICS_EVENT(LookupResponse, Event);

 public:
  LookupResponse(OpId id, RingKey key, std::vector<NodeRef> group,
                 std::uint64_t view_version = 0)
      : id(id), key(key), group(std::move(group)), view_version(view_version) {}
  OpId id;
  RingKey key;
  std::vector<NodeRef> group;  ///< responsible node first, then its successors
  /// Version of the consistent-quorum view the group was taken from. ABD
  /// operations stamp it on every phase message; replicas reject stale
  /// versions. 0 => no installed view backs this answer (empty group).
  std::uint64_t view_version;
};

class Router : public PortType {
 public:
  Router() {
    set_name("Router");
    request<LookupRequest>();
    indication<LookupResponse>();
  }
};

// ---------------------------------------------------------------------------
// QuorumViews (consistent quorums, CATS tech report [11]): versioned replica
// groups per key range. The ABD layer owns view installation (it runs the
// reconfiguration consensus) and publishes every installed view; the router
// answers lookups from the installed views so operations always carry the
// view version their replica group was read under.
// ---------------------------------------------------------------------------

/// A versioned replica group for the ring range (lo, hi]. lo == hi means the
/// full ring (genesis view of a lone ring). members[0] is the primary (the
/// ring node responsible for the range).
struct GroupView {
  RingKey lo = 0;
  RingKey hi = 0;
  std::uint64_t version = 0;
  std::vector<NodeRef> members;
  bool covers(RingKey k) const { return in_interval_oc(lo, hi, k); }
  bool has_member(const Address& a) const {
    for (const auto& m : members) {
      if (m.addr == a) return true;
    }
    return false;
  }
};

/// Indication that a view was installed locally (new range, new version, or
/// a catch-up copy fetched from a peer).
class ViewUpdate : public Event {
  KOMPICS_EVENT(ViewUpdate, Event);

 public:
  explicit ViewUpdate(GroupView view) : view(std::move(view)) {}
  GroupView view;
};

class QuorumViews : public PortType {
 public:
  QuorumViews() {
    set_name("QuorumViews");
    indication<ViewUpdate>();
  }
};

// ---------------------------------------------------------------------------
// NodeSampling (Cyclon Overlay)
// ---------------------------------------------------------------------------

/// Periodic random sample of live nodes, with their ring keys.
class NodeSample : public Event {
  KOMPICS_EVENT(NodeSample, Event);

 public:
  explicit NodeSample(std::vector<NodeRef> nodes) : nodes(std::move(nodes)) {}
  std::vector<NodeRef> nodes;
};

/// Seeds the sampling overlay with initial contacts.
class SamplingSeed : public Event {
  KOMPICS_EVENT(SamplingSeed, Event);

 public:
  SamplingSeed(NodeRef self, std::vector<NodeRef> contacts)
      : self(self), contacts(std::move(contacts)) {}
  NodeRef self;
  std::vector<NodeRef> contacts;
};

class NodeSampling : public PortType {
 public:
  NodeSampling() {
    set_name("NodeSampling");
    request<SamplingSeed>();
    indication<NodeSample>();
  }
};

// ---------------------------------------------------------------------------
// EventuallyPerfectFD (Ping Failure Detector)
// ---------------------------------------------------------------------------

class MonitorNode : public Event {
  KOMPICS_EVENT(MonitorNode, Event);

 public:
  explicit MonitorNode(Address node) : node(node) {}
  Address node;
};

class UnmonitorNode : public Event {
  KOMPICS_EVENT(UnmonitorNode, Event);

 public:
  explicit UnmonitorNode(Address node) : node(node) {}
  Address node;
};

class Suspect : public Event {
  KOMPICS_EVENT(Suspect, Event);

 public:
  explicit Suspect(Address node) : node(node) {}
  Address node;
};

class Restore : public Event {
  KOMPICS_EVENT(Restore, Event);

 public:
  explicit Restore(Address node) : node(node) {}
  Address node;
};

class EventuallyPerfectFD : public PortType {
 public:
  EventuallyPerfectFD() {
    set_name("EventuallyPerfectFD");
    request<MonitorNode>();
    request<UnmonitorNode>();
    indication<Suspect>();
    indication<Restore>();
  }
};

// ---------------------------------------------------------------------------
// Bootstrap (§4.1)
// ---------------------------------------------------------------------------

class BootstrapRequest : public Event {
  KOMPICS_EVENT(BootstrapRequest, Event);

 public:
  explicit BootstrapRequest(NodeRef self) : self(self) {}
  NodeRef self;
};

class BootstrapResponse : public Event {
  KOMPICS_EVENT(BootstrapResponse, Event);

 public:
  explicit BootstrapResponse(std::vector<NodeRef> peers) : peers(std::move(peers)) {}
  std::vector<NodeRef> peers;
};

/// Sent by the node after it finished joining: the client starts sending
/// periodic keep-alives to the bootstrap server (§4.1).
class BootstrapDone : public Event {
  KOMPICS_EVENT(BootstrapDone, Event);

 public:
  BootstrapDone() = default;
};

class Bootstrap : public PortType {
 public:
  Bootstrap() {
    set_name("Bootstrap");
    request<BootstrapRequest>();
    request<BootstrapDone>();
    indication<BootstrapResponse>();
  }
};

// ---------------------------------------------------------------------------
// Status (monitoring / web introspection, §4.1)
// ---------------------------------------------------------------------------

class StatusRequest : public Event {
  KOMPICS_EVENT(StatusRequest, Event);

 public:
  explicit StatusRequest(OpId id) : id(id) {}
  OpId id;
};

class StatusResponse : public Event {
  KOMPICS_EVENT(StatusResponse, Event);

 public:
  StatusResponse(OpId id, std::string component, std::map<std::string, std::string> fields)
      : id(id), component(std::move(component)), fields(std::move(fields)) {}
  OpId id;
  std::string component;
  std::map<std::string, std::string> fields;
};

class Status : public PortType {
 public:
  Status() {
    set_name("Status");
    request<StatusRequest>();
    indication<StatusResponse>();
  }
};

}  // namespace kompics::cats
