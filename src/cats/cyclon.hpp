#pragma once

// CyclonOverlay (Fig. 11): the peer-sampling service. Maintains a small
// cache of node descriptors and periodically shuffles a random subset with
// the oldest cached peer; after every exchange it publishes a NodeSample on
// its NodeSampling port. The One-Hop Router consumes these samples to learn
// the global node set (paper §4.1: "a node sampling service called Cyclon
// Overlay to periodically provide random samples of nodes in the system").

#include <vector>

#include "cats/messages.hpp"
#include "cats/params.hpp"
#include "cats/ports.hpp"
#include "kompics/component.hpp"
#include "kompics/kompics.hpp"
#include "net/network_port.hpp"
#include "timing/timer_port.hpp"

namespace kompics::cats {

class CyclonOverlay : public ComponentDefinition {
 public:
  struct Init : kompics::Init {
    Init(NodeRef self, CatsParams params) : self(self), params(params) {}
    NodeRef self;
    CatsParams params;
  };

  CyclonOverlay();

  const std::vector<CyclonEntry>& cache() const { return cache_; }

 private:
  struct ShuffleRound : timing::Timeout {
    using Timeout::Timeout;
  };

  void on_shuffle_round();
  void merge(const std::vector<CyclonEntry>& received, const std::vector<CyclonEntry>& sent);
  std::vector<CyclonEntry> select_subset(std::size_t n, bool include_self);
  void publish_sample();
  bool known(const Address& a) const;

  Negative<NodeSampling> sampling_ = provide<NodeSampling>();
  Negative<Status> status_ = provide<Status>();
  Positive<net::Network> network_ = require<net::Network>();
  Positive<timing::Timer> timer_ = require<timing::Timer>();

  NodeRef self_;
  CatsParams params_;
  std::vector<CyclonEntry> cache_;
  std::vector<CyclonEntry> last_sent_;  // entries offered in the active shuffle
  CyclonEntry target_entry_{};          // the evicted target, re-added if it answers
  Address shuffle_target_{};
  std::uint64_t shuffles_ = 0;
};

}  // namespace kompics::cats
