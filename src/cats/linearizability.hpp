#pragma once

// Offline linearizability checker for per-key register histories (our
// machine-checkable rendering of §4's "guaranteeing linearizable
// consistency"). Wing & Gong-style exhaustive search with memoization:
// a history is linearizable iff there exists a total order of operations,
// consistent with real-time precedence, under which every Get returns the
// value of the latest preceding Put (or "not found" when there is none).
//
// Operations that never completed (crashed coordinator, timeout) are
// *optional*: the checker may linearize them at any point after invocation
// or drop them entirely — a timed-out Put may or may not have taken effect.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "cats/cats_simulator.hpp"
#include "cats/ring_key.hpp"

namespace kompics::cats {

struct LinOp {
  bool is_put = false;
  std::int64_t invoked = 0;
  std::int64_t responded = -1;  ///< -1 or beyond horizon => pending forever
  bool optional = false;        ///< pending/failed: may or may not take effect
  // Put: the written value id. Get: the observed value id (or nullopt for
  // "not found"). Values are interned to small ids by the caller.
  std::optional<std::uint32_t> value;
};

struct LinResult {
  bool linearizable = true;
  std::string explanation;   ///< non-empty on failure
  std::size_t states = 0;    ///< search states explored (diagnostics)
  bool budget_exceeded = false;
};

/// Checks one key's history. `ops` need not be sorted. `max_states` bounds
/// the memoized search; on exhaustion the result is "not linearizable" with
/// budget_exceeded set (the caller should treat it as inconclusive).
LinResult check_register_history(std::vector<LinOp> ops, std::size_t max_states = 50'000'000);

/// Convenience: splits a CatsSimulator history by key, interns values, and
/// checks every key. Failed or pending operations become optional ops.
LinResult check_history(const std::vector<OpRecord>& history);

}  // namespace kompics::cats
