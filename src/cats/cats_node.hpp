#pragma once

// CatsNode (Fig. 10/11): the composite component encapsulating one CATS
// node. Clients see only the PutGet port; internally the node wires up the
// bootstrap client, ping failure detector, Cyclon overlay, CATS ring,
// one-hop router, consistent-ABD replication, and (optionally) a monitor
// client — "by encapsulating many components behind the PutGet port,
// clients are hidden from the complexity and event-driven control flow
// internal to the component" (§4.1).

#include <atomic>

#include "cats/abd.hpp"
#include "cats/bootstrap.hpp"
#include "cats/cyclon.hpp"
#include "cats/failure_detector.hpp"
#include "cats/monitor.hpp"
#include "cats/params.hpp"
#include "cats/ports.hpp"
#include "cats/ring.hpp"
#include "cats/router.hpp"
#include "kompics/component.hpp"
#include "kompics/kompics.hpp"
#include "net/network_port.hpp"
#include "timing/timer_port.hpp"

namespace kompics::cats {

class CatsNode : public ComponentDefinition {
 public:
  /// monitor_server may be invalid (Address{}) to disable monitoring.
  CatsNode(NodeRef self, Address bootstrap_server, Address monitor_server, CatsParams params);

  const NodeRef& self() const { return self_; }
  /// Safe to poll from outside the component (tests, status pages) while
  /// handlers flip it on a worker thread.
  bool ready() const { return ready_.load(std::memory_order_acquire); }

  // Child handles exposed for tests and status inspection.
  Component fd, cyclon, ring, router, abd, bootstrap_client, monitor_client;

 private:
  Negative<PutGet> putget_ = provide<PutGet>();
  Positive<net::Network> network_ = require<net::Network>();
  Positive<timing::Timer> timer_ = require<timing::Timer>();

  struct JoinCheck : timing::Timeout {
    using Timeout::Timeout;
  };

  NodeRef self_;
  CatsParams params_;
  timing::TimeoutId join_check_id_ = 0;
  // Atomic: read by ready() from arbitrary threads; written in handlers.
  std::atomic<bool> ready_{false};
  bool orphaned_ = false;
  TimeMs last_refresh_ = 0;
  std::vector<NodeRef> contacts_;
};

}  // namespace kompics::cats
