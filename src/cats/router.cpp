#include "cats/router.hpp"

#include <algorithm>

namespace kompics::cats {

OneHopRouter::OneHopRouter() {
  register_cats_serializers();

  subscribe<Init>(control(), [this](const Init& init) {
    self_ = init.self;
    params_ = init.params;
  });

  subscribe<NodeSample>(sampling_, [this](const NodeSample& sample) {
    for (const auto& n : sample.nodes) learn(n);
  });

  subscribe<RingView>(ring_, [this](const RingView& view) {
    view_received_ = true;
    sole_member_ = view.sole_member;
    self_ = view.self;
    has_pred_ = view.has_predecessor;
    pred_ = view.predecessor;
    succs_ = view.successors;
    if (view.has_predecessor) learn(view.predecessor);
    for (const auto& s : view.successors) learn(s);
  });

  // Mirror the local ABD's installed quorum views: a newly installed view
  // supersedes any older cached view it covers (same range after a member
  // change, or the parent of a split).
  subscribe<ViewUpdate>(quorum_views_, [this](const ViewUpdate& vu) {
    for (auto it = views_.begin(); it != views_.end();) {
      const bool superseded =
          it->second.version < vu.view.version && it->second.covers(vu.view.hi);
      it = superseded ? views_.erase(it) : std::next(it);
    }
    auto have = views_.find(vu.view.hi);
    if (have == views_.end() || have->second.version < vu.view.version) {
      views_[vu.view.hi] = vu.view;
      for (const auto& m : vu.view.members) learn(m);
    }
  });

  subscribe<LookupRequest>(router_, [this](const LookupRequest& req) {
    evict_stale();
    if (responsible_for(req.key)) {
      ++lookups_served_;
      const GroupView* v = covering_view(req.key);
      if (v != nullptr) {
        trigger(make_event<LookupResponse>(req.id, req.key, v->members, v->version), router_);
      } else {
        trigger(make_event<LookupResponse>(req.id, req.key, build_group(req.key, req.group_size)),
                router_);
      }
      return;
    }
    protocol::spawn(relay_lookup(req.id, req.key, req.group_size));
  });

  subscribe<RouteLookupMsg>(network_, [this](const RouteLookupMsg& msg) {
    // Note: the origin is deliberately NOT learned here — join lookups come
    // from nodes that are not ring members yet, and routing to a non-member
    // can livelock a lookup for that node's own key.
    if (responsible_for(msg.key)) {
      handle_lookup_at_responsible(msg.origin, msg.op, msg.key, msg.group_size);
      return;
    }
    if (msg.ttl > 0) forward(msg.origin, msg.op, msg.key, msg.group_size, msg.ttl - 1);
    // TTL exhausted: drop; the origin's operation timeout handles it.
  });

  subscribe<StatusRequest>(status_, [this](const StatusRequest& req) {
    std::map<std::string, std::string> fields;
    fields["table_size"] = std::to_string(table_.size());
    fields["lookups_served"] = std::to_string(lookups_served_);
    fields["lookups_forwarded"] = std::to_string(lookups_forwarded_);
    fields["views_cached"] = std::to_string(views_.size());
    trigger(make_event<StatusResponse>(req.id, "OneHopRouter", std::move(fields)), status_);
  });
}

protocol::Proto<void> OneHopRouter::relay_lookup(OpId op, RingKey key, std::size_t group_size) {
  // Open the result stream BEFORE forwarding: a same-process responsible
  // node can answer inline.
  auto results = co_await network_.open<LookupResultMsg>(
      [op](const LookupResultMsg& m) { return m.op == op; });
  if (!forward(self_, op, key, static_cast<std::uint32_t>(group_size), kMaxHops)) {
    // Nowhere to route: answer with an empty group; the caller retries.
    trigger(make_event<LookupResponse>(op, key, std::vector<NodeRef>{}), router_);
    co_return;
  }
  auto got = co_await protocol::when_any(results.next(),
                                         protocol::sleep(timer_, params_.op_timeout_ms));
  if (got.index() == 1) co_return;  // no answer: the origin's deadline retries
  const LookupResultMsg& msg = *std::get<0>(got);
  for (const auto& n : msg.group) learn(n);
  trigger(make_event<LookupResponse>(msg.op, msg.key, msg.group, msg.view_version), router_);
}

void OneHopRouter::learn(const NodeRef& n) {
  if (n.addr == self_.addr || !n.addr.valid()) return;
  Entry& e = table_[n.key];
  e.node = n;
  e.last_heard = now();
}

void OneHopRouter::evict_stale() {
  const TimeMs cutoff = now() - kEntryTtlMs;
  for (auto it = table_.begin(); it != table_.end();) {
    it = it->second.last_heard < cutoff ? table_.erase(it) : std::next(it);
  }
}

bool OneHopRouter::responsible_for(RingKey key) const {
  if (!view_received_) return false;  // not a ring member yet
  if (has_pred_) return in_interval_oc(pred_.key, self_.key, key);
  // Whole-ring authority belongs only to a genuine sole member (a fresh
  // ring's first node). A node that merely LOST all neighbors — e.g. cut
  // off by a partition — must refuse authority, otherwise it would commit
  // split-brain writes at quorum 1 (found by the partition tests).
  return sole_member_;
}

const GroupView* OneHopRouter::covering_view(RingKey key) const {
  // Bug emulation (params.hpp): the pre-consistent-quorums router answered
  // lookups from the raw ring neighborhood, never from installed views.
  if (params_.inject_stale_view_bug) return nullptr;
  const GroupView* best = nullptr;
  for (const auto& [hi, v] : views_) {
    if (!v.covers(key)) continue;
    if (best == nullptr || best->version < v.version) best = &v;
  }
  return best;
}

std::vector<std::string> OneHopRouter::invariant_violations() const {
  std::vector<std::string> out;
  // Routing-table sanity: every entry must be keyed by its node's own ring
  // key, carry a routable address, and never describe this node itself
  // (learn() filters all three; an entry violating them would forward
  // lookups to the wrong place or loop them back here forever).
  for (const auto& [k, e] : table_) {
    if (e.node.key != k) {
      out.push_back("router: table entry keyed " + std::to_string(k) +
                    " holds node with key " + std::to_string(e.node.key));
    }
    if (!e.node.addr.valid()) {
      out.push_back("router: table entry " + std::to_string(k) + " has an invalid address");
    }
    if (e.node.addr == self_.addr) {
      out.push_back("router: table contains this node itself (key " + std::to_string(k) + ")");
    }
  }
  // Cached installed views must be mutually disjoint: overlapping cached
  // views would let two lookups for the same key resolve to different
  // replica groups (split-brain at the routing layer).
  for (const auto& [hi, v] : views_) {
    for (const auto& [other_hi, other] : views_) {
      if (other_hi != hi && other.covers(hi) && v.covers(other_hi)) {
        out.push_back("router: cached views overlap: (" + std::to_string(v.lo) + ", " +
                      std::to_string(hi) + "]@v" + std::to_string(v.version) + " and (" +
                      std::to_string(other.lo) + ", " + std::to_string(other_hi) + "]@v" +
                      std::to_string(other.version));
      }
    }
  }
  return out;
}

std::vector<NodeRef> OneHopRouter::build_group(RingKey, std::size_t group_size) const {
  // The responsible node heads the group; its ring successors replicate.
  std::vector<NodeRef> group{self_};
  for (const auto& s : succs_) {
    if (group.size() >= group_size) break;
    const bool dup = std::any_of(group.begin(), group.end(),
                                 [&s](const NodeRef& g) { return g.addr == s.addr; });
    if (!dup) group.push_back(s);
  }
  return group;
}

bool OneHopRouter::forward(const NodeRef& origin, OpId op, RingKey key,
                           std::uint32_t group_size, std::uint32_t ttl) {
  // Candidates: nodes in (self, key] — at or preceding the target (Chord
  // rule: progress toward the key is guaranteed). Among the closest three
  // we pick randomly: a retried lookup then explores a different path, so a
  // stale table entry pointing at a dead node cannot black-hole the same
  // operation forever.
  const TimeMs cutoff = now() - kEntryTtlMs;
  struct Cand {
    std::uint64_t dist;
    NodeRef node;
  };
  std::vector<Cand> candidates;
  for (const auto& [k, e] : table_) {
    if (e.last_heard < cutoff) continue;
    if (!in_interval_oc(self_.key, key, k)) continue;
    candidates.push_back(Cand{ring_distance(k, key), e.node});
  }
  NodeRef best{};
  bool found = false;
  if (!candidates.empty()) {
    std::sort(candidates.begin(), candidates.end(),
              [](const Cand& a, const Cand& b) { return a.dist < b.dist; });
    const std::size_t pool = std::min<std::size_t>(candidates.size(), 3);
    best = candidates[rng().next_below(pool)].node;
    found = true;
  }
  if (!found) {
    // Fallback: route along the ring through our successor.
    for (const auto& s : succs_) {
      if (s.addr != self_.addr) {
        best = s;
        found = true;
        break;
      }
    }
  }
  if (!found) return false;
  ++lookups_forwarded_;
  trigger(make_event<RouteLookupMsg>(self_.addr, best.addr, origin, op, key, group_size, ttl),
          network_);
  return true;
}

void OneHopRouter::handle_lookup_at_responsible(const NodeRef& origin, OpId op, RingKey key,
                                                std::size_t group_size) {
  ++lookups_served_;
  const GroupView* v = covering_view(key);
  auto group = v != nullptr ? v->members : build_group(key, group_size);
  const std::uint64_t version = v != nullptr ? v->version : 0;
  if (origin.addr == self_.addr) {
    trigger(make_event<LookupResponse>(op, key, std::move(group), version), router_);
  } else {
    trigger(make_event<LookupResultMsg>(self_.addr, origin.addr, op, key, std::move(group),
                                        version),
            network_);
  }
}

}  // namespace kompics::cats
