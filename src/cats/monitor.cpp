#include "cats/monitor.hpp"

#include "kompics/telemetry.hpp"

namespace kompics::cats {

MonitorClient::MonitorClient() {
  register_cats_serializers();

  subscribe<Init>(control(), [this](const Init& init) {
    self_ = init.self;
    server_ = init.server;
    params_ = init.params;
  });

  subscribe<Start>(control(), [this](const Start&) {
    trigger(timing::schedule_periodic<ReportRound>(params_.monitor_period_ms,
                                                   params_.monitor_period_ms),
            timer_);
  });

  subscribe<ReportRound>(timer_, [this](const ReportRound&) {
    // Open a new collection round: query all local components, close the
    // round (and ship the report) shortly before the next one.
    ++round_;
    collected_.clear();
    trigger(make_event<StatusRequest>(round_), status_);
    trigger(timing::schedule<RoundClose>(params_.monitor_period_ms / 2 + 1, round_), timer_);
  });

  subscribe<StatusResponse>(status_, [this](const StatusResponse& resp) {
    if (resp.id != round_) return;  // late answer from a previous round
    for (const auto& [k, v] : resp.fields) collected_[resp.component + "." + k] = v;
  });

  subscribe<RoundClose>(timer_, [this](const RoundClose& rc) {
    if (rc.round != round_ || collected_.empty()) return;
    // Kernel telemetry rides the same §4.1 report as the app-level status:
    // scheduler counters, event/trace totals, pending work (kernel.* keys).
    if (runtime().telemetry().metrics_enabled()) {
      for (const auto& [k, v] : telemetry::kernel_status_fields(runtime())) {
        collected_[k] = v;
      }
    }
    trigger(make_event<StatusReportMsg>(self_.addr, server_, self_, collected_), network_);
  });
}

MonitorServer::MonitorServer() {
  register_cats_serializers();

  subscribe<Init>(control(), [this](const Init& init) {
    self_ = init.self;
    stale_after_ms_ = init.stale_after_ms;
  });

  subscribe<StatusReportMsg>(network_, [this](const StatusReportMsg& msg) {
    std::lock_guard<std::mutex> g(view_mu_);
    ++reports_received_;
    NodeReport& r = view_[msg.node.addr];
    r.node = msg.node;
    r.received = now();
    r.fields = msg.fields;
  });

  subscribe<StatusRequest>(status_, [this](const StatusRequest& req) {
    std::map<std::string, std::string> fields;
    {
      std::lock_guard<std::mutex> g(view_mu_);
      fields["nodes_reporting"] = std::to_string(view_.size());
      fields["reports_received"] = std::to_string(reports_received_);
    }
    trigger(make_event<StatusResponse>(req.id, "MonitorServer", std::move(fields)), status_);
  });
}

std::string MonitorServer::render_text() const {
  const TimeMs at = now();
  std::lock_guard<std::mutex> g(view_mu_);
  std::string out = "=== CATS global view: " + std::to_string(view_.size()) + " node(s) ===\n";
  for (const auto& [addr, report] : view_) {
    const TimeMs age = at >= report.received ? at - report.received : 0;
    out += report.node.addr.to_node_string() + " (key " + ring_key_str(report.node.key) +
           ") age=" + std::to_string(age) + "ms";
    if (age > stale_after_ms_) out += " STALE";
    out += "\n";
    for (const auto& [k, v] : report.fields) {
      out += "  " + k + " = " + v + "\n";
    }
  }
  return out;
}

}  // namespace kompics::cats
