#include "cats/bootstrap.hpp"

#include <algorithm>

namespace kompics::cats {

// ---------------------------------------------------------------------------
// BootstrapServer
// ---------------------------------------------------------------------------

BootstrapServer::BootstrapServer() {
  register_cats_serializers();

  subscribe<Init>(control(), [this](const Init& init) {
    self_ = init.self;
    params_ = init.params;
  });

  subscribe<Start>(control(), [this](const Start&) {
    trigger(timing::schedule_periodic<EvictionRound>(params_.bootstrap_eviction_ms,
                                                     params_.bootstrap_eviction_ms),
            timer_);
  });

  subscribe<BootstrapRequestMsg>(network_, [this](const BootstrapRequestMsg& req) {
    ++requests_served_;
    // Return a bounded random sample of alive peers (excluding the asker).
    std::vector<NodeRef> peers;
    for (const auto& [addr, entry] : alive_) {
      if (addr != req.self.addr) peers.push_back(entry.node);
    }
    for (std::size_t i = 0; i < peers.size(); ++i) {
      std::swap(peers[i], peers[i + rng().next_below(peers.size() - i)]);
    }
    if (peers.size() > params_.bootstrap_sample_size) {
      peers.resize(params_.bootstrap_sample_size);
    }
    trigger(make_event<BootstrapResponseMsg>(self_, req.source(), std::move(peers)), network_);
    // Register the requester provisionally: a node that asks right after is
    // then guaranteed to learn about it, so only the very first requester
    // ever bootstraps a fresh (lone) ring. Keep-alives (or eviction) take
    // over from here.
    AliveEntry& e = alive_[req.self.addr];
    e.node = req.self;
    e.last_seen = now();
  });

  subscribe<KeepAliveMsg>(network_, [this](const KeepAliveMsg& ka) {
    AliveEntry& e = alive_[ka.self.addr];
    e.node = ka.self;
    e.last_seen = now();
  });

  subscribe<EvictionRound>(timer_, [this](const EvictionRound&) {
    const TimeMs cutoff = now() - params_.bootstrap_eviction_ms;
    for (auto it = alive_.begin(); it != alive_.end();) {
      if (it->second.last_seen < cutoff) {
        ++evictions_;
        it = alive_.erase(it);
      } else {
        ++it;
      }
    }
  });

  subscribe<StatusRequest>(status_, [this](const StatusRequest& req) {
    std::map<std::string, std::string> fields;
    fields["alive"] = std::to_string(alive_.size());
    fields["requests_served"] = std::to_string(requests_served_);
    fields["evictions"] = std::to_string(evictions_);
    trigger(make_event<StatusResponse>(req.id, "BootstrapServer", std::move(fields)), status_);
  });
}

std::vector<NodeRef> BootstrapServer::alive_nodes() const {
  std::vector<NodeRef> out;
  out.reserve(alive_.size());
  for (const auto& [addr, e] : alive_) out.push_back(e.node);
  return out;
}

// ---------------------------------------------------------------------------
// BootstrapClient
// ---------------------------------------------------------------------------

BootstrapClient::BootstrapClient() {
  register_cats_serializers();

  subscribe<Init>(control(), [this](const Init& init) {
    self_ = init.self;
    server_ = init.server;
    params_ = init.params;
  });

  subscribe<BootstrapRequest>(bootstrap_, [this](const BootstrapRequest& req) {
    self_ = req.self;
    if (handshaking_) return;  // retransmission loop already running
    handshaking_ = true;
    protocol::spawn(run_handshake());
  });

  subscribe<BootstrapDone>(bootstrap_, [this](const BootstrapDone&) {
    if (done_) return;
    done_ = true;
    protocol::spawn(run_keepalive());
  });
}

protocol::Proto<void> BootstrapClient::run_handshake() {
  struct Flag {  // allow a fresh handshake once this one ends, however it ends
    bool* f;
    ~Flag() { *f = false; }
  } guard{&handshaking_};
  auto responses = co_await network_.open<BootstrapResponseMsg>();
  for (;;) {
    trigger(make_event<BootstrapRequestMsg>(self_.addr, server_, self_), network_);
    auto got = co_await protocol::when_any(
        responses.next(), protocol::sleep(timer_, params_.keepalive_period_ms));
    if (got.index() == 0) {  // index 1: server silent — retransmit
      trigger(make_event<BootstrapResponse>(std::get<0>(got)->peers), bootstrap_);
      co_return;
    }
  }
}

protocol::Proto<void> BootstrapClient::run_keepalive() {
  // First keep-alive immediately (registers us with the server), then
  // periodically, until the component is halted.
  for (;;) {
    trigger(make_event<KeepAliveMsg>(self_.addr, server_, self_), network_);
    co_await protocol::sleep(timer_, params_.keepalive_period_ms);
  }
}

}  // namespace kompics::cats
