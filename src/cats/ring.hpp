#pragma once

// CatsRing (Fig. 11): builds and maintains the consistent-hashing ring.
// Chord-style protocol: a joiner resolves its successor through the router,
// adopts the successor's list, and announces itself with Notify; periodic
// stabilization reconciles predecessor/successor pointers and refreshes the
// successor list; the ping failure detector evicts dead neighbors. The ring
// emits RingView indications consumed by the router (responsibility
// intervals, replica groups) and RingReady once the join completes.

#include <map>
#include <string>
#include <vector>

#include "cats/messages.hpp"
#include "cats/params.hpp"
#include "cats/ports.hpp"
#include "cats/router.hpp"
#include "kompics/component.hpp"
#include "kompics/kompics.hpp"
#include "net/network_port.hpp"
#include "timing/timer_port.hpp"

namespace kompics::cats {

class CatsRing : public ComponentDefinition {
 public:
  struct Init : kompics::Init {
    Init(NodeRef self, CatsParams params) : self(self), params(params) {}
    NodeRef self;
    CatsParams params;
  };

  CatsRing();

  // Introspection for tests / monitoring.
  const std::vector<NodeRef>& successors() const { return succs_; }
  bool has_predecessor() const { return has_pred_; }
  const NodeRef& predecessor() const { return pred_; }
  bool ready() const { return ready_; }
  std::uint64_t epoch() const { return epoch_; }

  /// Campaign-harness invariants (ISSUE 7): the successor list never
  /// contains this node itself and never holds duplicate addresses. Empty
  /// on healthy runs.
  std::vector<std::string> invariant_violations() const {
    std::vector<std::string> out;
    for (std::size_t i = 0; i < succs_.size(); ++i) {
      if (succs_[i].addr == self_.addr) {
        out.push_back("ring: successor list contains self at index " + std::to_string(i));
      }
      for (std::size_t j = i + 1; j < succs_.size(); ++j) {
        if (succs_[i].addr == succs_[j].addr) {
          out.push_back("ring: duplicate successor " + succs_[i].addr.to_string());
        }
      }
    }
    return out;
  }

 private:
  struct StabilizeRound : timing::Timeout {
    using Timeout::Timeout;
  };
  struct JoinRetry : timing::Timeout {
    using Timeout::Timeout;
  };

  void send_join_lookup();
  void complete_join(const std::vector<NodeRef>& group);
  void on_stabilize();
  void adopt_successor_list(const NodeRef& head, const std::vector<NodeRef>& rest);
  void set_monitoring();
  void publish_view();
  void remove_node(const Address& a);

  Negative<Ring> ring_ = provide<Ring>();
  Negative<Status> status_ = provide<Status>();
  Positive<net::Network> network_ = require<net::Network>();
  Positive<timing::Timer> timer_ = require<timing::Timer>();
  Positive<EventuallyPerfectFD> fd_ = require<EventuallyPerfectFD>();
  Positive<NodeSampling> sampling_ = require<NodeSampling>();
  Positive<Router> router_ = require<Router>();

  NodeRef self_;
  CatsParams params_;
  bool joining_ = false;
  bool ready_ = false;
  bool lone_ = false;  ///< bootstrapped fresh and never saw a peer
  OpId join_lookup_id_ = 0;
  std::size_t join_attempt_ = 0;
  std::vector<Address> join_contacts_;
  bool has_pred_ = false;
  NodeRef pred_{};
  std::vector<NodeRef> succs_;       // nearest first; never contains self
  std::vector<Address> monitored_;   // current FD watch set
  // Quarantine for sample-driven merge: gossip keeps echoing descriptors of
  // a dead node for a few shuffle rounds, and re-adopting one as successor
  // right after the FD evicted it would make the ring flap.
  std::map<Address, TimeMs> recently_suspected_;
  std::uint64_t stabilizations_ = 0;
  std::uint64_t epoch_ = 0;  ///< bumped on every published view change
};

}  // namespace kompics::cats
