#pragma once

// OneHopRouter (Fig. 11): resolves a ring key to its replication group in
// (expectedly) one forwarding hop. The router accumulates a full routing
// table from Cyclon node samples and ring views; a lookup is answered
// authoritatively by the responsible node itself (the only node that knows
// its predecessor, hence its exact responsibility interval), so group
// answers track ring agreement rather than possibly-stale tables.
//
// Forwarding rule (Chord's closest-preceding-node over the full table):
// guarantees progress; the ring successor is the fallback next hop, so
// routing degenerates to correct O(n) ring traversal when tables are cold.
// Entries carry a last-heard timestamp and expire, which evicts dead nodes
// under churn (samples keep refreshing live ones).

#include <map>
#include <unordered_map>

#include "cats/messages.hpp"
#include "cats/params.hpp"
#include "cats/ports.hpp"
#include "kompics/component.hpp"
#include "kompics/kompics.hpp"
#include "kompics/protocol.hpp"
#include "net/network_port.hpp"
#include "timing/timer_port.hpp"

namespace kompics::cats {

class OneHopRouter : public ComponentDefinition {
 public:
  struct Init : kompics::Init {
    Init(NodeRef self, CatsParams params) : self(self), params(params) {}
    NodeRef self;
    CatsParams params;
  };

  /// Entries older than this many milliseconds are ignored/evicted. Live
  /// nodes are re-announced by every Cyclon sample (one per shuffle period),
  /// so a few periods of headroom suffice; a short TTL is what flushes
  /// descriptors of dead nodes out of the forwarding path.
  static constexpr DurationMs kEntryTtlMs = 6000;
  static constexpr std::uint32_t kMaxHops = 64;

  OneHopRouter();

  std::size_t table_size() const { return table_.size(); }

  /// Campaign-harness invariants (ISSUE 7): cached installed views must be
  /// mutually disjoint. Empty on healthy runs.
  std::vector<std::string> invariant_violations() const;

 private:
  /// Forwards a lookup we are not responsible for, awaits the remote answer
  /// (correlated by op id), learns the group and relays it to the local
  /// client port. The frame garbage-collects itself after one op-timeout
  /// period: the origin's operation deadline owns the retry policy.
  protocol::Proto<void> relay_lookup(OpId op, RingKey key, std::size_t group_size);
  void learn(const NodeRef& n);
  void handle_lookup_at_responsible(const NodeRef& origin, OpId op, RingKey key,
                                    std::size_t group_size);
  bool responsible_for(RingKey key) const;
  const GroupView* covering_view(RingKey key) const;
  std::vector<NodeRef> build_group(RingKey key, std::size_t group_size) const;
  bool forward(const NodeRef& origin, OpId op, RingKey key, std::uint32_t group_size,
               std::uint32_t ttl);
  void evict_stale();

  Negative<Router> router_ = provide<Router>();
  Negative<Status> status_ = provide<Status>();
  Positive<net::Network> network_ = require<net::Network>();
  Positive<NodeSampling> sampling_ = require<NodeSampling>();
  Positive<Ring> ring_ = require<Ring>();
  Positive<QuorumViews> quorum_views_ = require<QuorumViews>();
  Positive<timing::Timer> timer_ = require<timing::Timer>();

  NodeRef self_;
  CatsParams params_;
  struct Entry {
    NodeRef node;
    TimeMs last_heard = 0;
  };
  std::map<RingKey, Entry> table_;  // ordered by ring key for successor scans
  // Latest ring view (authoritative responsibility + fallback next hop).
  // Until the first view arrives the node has not joined the ring and must
  // never claim responsibility (a pre-join node would otherwise answer
  // lookups as a lone ring).
  bool view_received_ = false;
  bool sole_member_ = false;
  bool has_pred_ = false;
  NodeRef pred_{};
  std::vector<NodeRef> succs_;
  // Installed quorum views published by the local ABD's view manager. A
  // lookup this node is responsible for is answered from the covering view
  // (members + version) when one exists: those are the only groups replicas
  // will acknowledge phases for. Without one, the ring-successor group is
  // answered with view_version 0 — usable for ring joins, but coordinators
  // must not run quorum phases under it.
  std::map<RingKey, GroupView> views_;
  std::uint64_t lookups_served_ = 0;
  std::uint64_t lookups_forwarded_ = 0;
};

}  // namespace kompics::cats
