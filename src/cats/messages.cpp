#include "cats/messages.hpp"

#include <mutex>

#include "net/serialization.hpp"

namespace kompics::cats {

namespace {

using net::MessagePtr;
using net::SerializationRegistry;

void write_value(BufferWriter& w, const Value& v) { w.bytes(v.data(), v.size()); }
Value read_value(BufferReader& r) { return r.bytes(); }

void write_tag(BufferWriter& w, const VersionTag& t) {
  w.var_u64(t.counter);
  w.u64(t.writer);
}
VersionTag read_tag(BufferReader& r) {
  VersionTag t;
  t.counter = r.var_u64();
  t.writer = r.u64();
  return t;
}

void write_ballot(BufferWriter& w, const Ballot& b) {
  w.var_u64(b.round);
  w.u64(b.proposer);
}
Ballot read_ballot(BufferReader& r) {
  Ballot b;
  b.round = r.var_u64();
  b.proposer = r.u64();
  return b;
}

void write_group_view(BufferWriter& w, const GroupView& v) {
  w.u64(v.lo);
  w.u64(v.hi);
  w.var_u64(v.version);
  write_node_refs(w, v.members);
}
GroupView read_group_view(BufferReader& r) {
  GroupView v;
  v.lo = r.u64();
  v.hi = r.u64();
  v.version = r.var_u64();
  v.members = read_node_refs(r);
  return v;
}

void write_group_views(BufferWriter& w, const std::vector<GroupView>& vs) {
  w.var_u64(vs.size());
  for (const auto& v : vs) write_group_view(w, v);
}
std::vector<GroupView> read_group_views(BufferReader& r) {
  std::vector<GroupView> vs(r.var_u64());
  for (auto& v : vs) v = read_group_view(r);
  return vs;
}

void write_key_states(BufferWriter& w, const std::vector<KeyState>& ks) {
  w.var_u64(ks.size());
  for (const auto& k : ks) {
    w.u64(k.key);
    write_tag(w, k.tag);
    write_value(w, k.value);
  }
}
std::vector<KeyState> read_key_states(BufferReader& r) {
  std::vector<KeyState> ks(r.var_u64());
  for (auto& k : ks) {
    k.key = r.u64();
    k.tag = read_tag(r);
    k.value = read_value(r);
  }
  return ks;
}

void write_entries(BufferWriter& w, const std::vector<CyclonEntry>& es) {
  w.var_u64(es.size());
  for (const auto& e : es) {
    write_node_ref(w, e.node);
    w.var_u64(e.age);
  }
}
std::vector<CyclonEntry> read_entries(BufferReader& r) {
  std::vector<CyclonEntry> es(r.var_u64());
  for (auto& e : es) {
    e.node = read_node_ref(r);
    e.age = static_cast<std::uint32_t>(r.var_u64());
  }
  return es;
}

void do_register() {
  auto& reg = SerializationRegistry::instance();

  reg.register_message<PingMsg>(
      100,
      [](const Message& m, BufferWriter& w) {
        w.var_u64(static_cast<const PingMsg&>(m).seq);
      },
      [](BufferReader& r, Address s, Address d) -> MessagePtr {
        return std::make_shared<const PingMsg>(s, d, r.var_u64());
      });

  reg.register_message<PongMsg>(
      101,
      [](const Message& m, BufferWriter& w) {
        w.var_u64(static_cast<const PongMsg&>(m).seq);
      },
      [](BufferReader& r, Address s, Address d) -> MessagePtr {
        return std::make_shared<const PongMsg>(s, d, r.var_u64());
      });

  reg.register_message<ShuffleRequestMsg>(
      102,
      [](const Message& m, BufferWriter& w) {
        write_entries(w, static_cast<const ShuffleRequestMsg&>(m).entries);
      },
      [](BufferReader& r, Address s, Address d) -> MessagePtr {
        return std::make_shared<const ShuffleRequestMsg>(s, d, read_entries(r));
      });

  reg.register_message<ShuffleResponseMsg>(
      103,
      [](const Message& m, BufferWriter& w) {
        write_entries(w, static_cast<const ShuffleResponseMsg&>(m).entries);
      },
      [](BufferReader& r, Address s, Address d) -> MessagePtr {
        return std::make_shared<const ShuffleResponseMsg>(s, d, read_entries(r));
      });

  reg.register_message<FindSuccessorMsg>(
      104,
      [](const Message& m, BufferWriter& w) {
        const auto& fs = static_cast<const FindSuccessorMsg&>(m);
        write_node_ref(w, fs.joiner);
        w.u64(fs.target);
        w.u32(fs.hops_left);
      },
      [](BufferReader& r, Address s, Address d) -> MessagePtr {
        NodeRef joiner = read_node_ref(r);
        const RingKey target = r.u64();
        const std::uint32_t hops_left = r.u32();
        return std::make_shared<const FindSuccessorMsg>(s, d, joiner, target, hops_left);
      });

  reg.register_message<FoundSuccessorMsg>(
      105,
      [](const Message& m, BufferWriter& w) {
        const auto& fs = static_cast<const FoundSuccessorMsg&>(m);
        write_node_ref(w, fs.successor);
        write_node_refs(w, fs.successor_list);
      },
      [](BufferReader& r, Address s, Address d) -> MessagePtr {
        NodeRef succ = read_node_ref(r);
        return std::make_shared<const FoundSuccessorMsg>(s, d, succ, read_node_refs(r));
      });

  reg.register_message<GetRingStateMsg>(
      106,
      [](const Message& m, BufferWriter& w) {
        write_node_ref(w, static_cast<const GetRingStateMsg&>(m).from);
      },
      [](BufferReader& r, Address s, Address d) -> MessagePtr {
        return std::make_shared<const GetRingStateMsg>(s, d, read_node_ref(r));
      });

  reg.register_message<RingStateMsg>(
      107,
      [](const Message& m, BufferWriter& w) {
        const auto& rs = static_cast<const RingStateMsg&>(m);
        write_node_ref(w, rs.self);
        w.boolean(rs.has_pred);
        write_node_ref(w, rs.pred);
        write_node_refs(w, rs.succs);
      },
      [](BufferReader& r, Address s, Address d) -> MessagePtr {
        NodeRef self = read_node_ref(r);
        const bool has_pred = r.boolean();
        NodeRef pred = read_node_ref(r);
        return std::make_shared<const RingStateMsg>(s, d, self, has_pred, pred,
                                                    read_node_refs(r));
      });

  reg.register_message<NotifyMsg>(
      108,
      [](const Message& m, BufferWriter& w) {
        write_node_ref(w, static_cast<const NotifyMsg&>(m).from);
      },
      [](BufferReader& r, Address s, Address d) -> MessagePtr {
        return std::make_shared<const NotifyMsg>(s, d, read_node_ref(r));
      });

  reg.register_message<AbdReadMsg>(
      110,
      [](const Message& m, BufferWriter& w) {
        const auto& msg = static_cast<const AbdReadMsg&>(m);
        w.var_u64(msg.op);
        w.u64(msg.key);
        w.var_u64(msg.view);
      },
      [](BufferReader& r, Address s, Address d) -> MessagePtr {
        const OpId op = r.var_u64();
        const RingKey key = r.u64();
        return std::make_shared<const AbdReadMsg>(s, d, op, key, r.var_u64());
      });

  reg.register_message<AbdReadAckMsg>(
      111,
      [](const Message& m, BufferWriter& w) {
        const auto& msg = static_cast<const AbdReadAckMsg&>(m);
        w.var_u64(msg.op);
        w.u64(msg.key);
        w.var_u64(msg.view);
        write_tag(w, msg.tag);
        w.boolean(msg.exists);
        write_value(w, msg.value);
      },
      [](BufferReader& r, Address s, Address d) -> MessagePtr {
        const OpId op = r.var_u64();
        const RingKey key = r.u64();
        const std::uint64_t view = r.var_u64();
        const VersionTag tag = read_tag(r);
        const bool exists = r.boolean();
        return std::make_shared<const AbdReadAckMsg>(s, d, op, key, view, tag, exists,
                                                     read_value(r));
      });

  reg.register_message<AbdWriteMsg>(
      112,
      [](const Message& m, BufferWriter& w) {
        const auto& msg = static_cast<const AbdWriteMsg&>(m);
        w.var_u64(msg.op);
        w.u64(msg.key);
        w.var_u64(msg.view);
        write_tag(w, msg.tag);
        w.boolean(msg.exists);
        write_value(w, msg.value);
      },
      [](BufferReader& r, Address s, Address d) -> MessagePtr {
        const OpId op = r.var_u64();
        const RingKey key = r.u64();
        const std::uint64_t view = r.var_u64();
        const VersionTag tag = read_tag(r);
        const bool exists = r.boolean();
        return std::make_shared<const AbdWriteMsg>(s, d, op, key, view, tag, exists,
                                                   read_value(r));
      });

  reg.register_message<AbdWriteAckMsg>(
      113,
      [](const Message& m, BufferWriter& w) {
        const auto& msg = static_cast<const AbdWriteAckMsg&>(m);
        w.var_u64(msg.op);
        w.u64(msg.key);
        w.var_u64(msg.view);
      },
      [](BufferReader& r, Address s, Address d) -> MessagePtr {
        const OpId op = r.var_u64();
        const RingKey key = r.u64();
        return std::make_shared<const AbdWriteAckMsg>(s, d, op, key, r.var_u64());
      });

  reg.register_message<AbdNackMsg>(
      114,
      [](const Message& m, BufferWriter& w) {
        const auto& msg = static_cast<const AbdNackMsg&>(m);
        w.var_u64(msg.op);
        w.u64(msg.key);
        w.var_u64(msg.current_version);
      },
      [](BufferReader& r, Address s, Address d) -> MessagePtr {
        const OpId op = r.var_u64();
        const RingKey key = r.u64();
        return std::make_shared<const AbdNackMsg>(s, d, op, key, r.var_u64());
      });

  reg.register_message<ViewPrepareMsg>(
      115,
      [](const Message& m, BufferWriter& w) {
        const auto& msg = static_cast<const ViewPrepareMsg&>(m);
        w.u64(msg.range_lo);
        w.u64(msg.range_hi);
        w.var_u64(msg.target);
        write_ballot(w, msg.ballot);
      },
      [](BufferReader& r, Address s, Address d) -> MessagePtr {
        const RingKey lo = r.u64();
        const RingKey hi = r.u64();
        const std::uint64_t target = r.var_u64();
        return std::make_shared<const ViewPrepareMsg>(s, d, lo, hi, target, read_ballot(r));
      });

  reg.register_message<ViewPromiseMsg>(
      116,
      [](const Message& m, BufferWriter& w) {
        const auto& msg = static_cast<const ViewPromiseMsg&>(m);
        w.u64(msg.range_hi);
        w.var_u64(msg.target);
        write_ballot(w, msg.ballot);
        w.boolean(msg.ok);
        write_ballot(w, msg.promised);
        w.boolean(msg.has_accepted);
        write_ballot(w, msg.accepted_ballot);
        write_group_views(w, msg.accepted_children);
        write_group_views(w, msg.catchup);
        write_key_states(w, msg.state);
      },
      [](BufferReader& r, Address s, Address d) -> MessagePtr {
        const RingKey hi = r.u64();
        const std::uint64_t target = r.var_u64();
        const Ballot ballot = read_ballot(r);
        const bool ok = r.boolean();
        const Ballot promised = read_ballot(r);
        const bool has_accepted = r.boolean();
        const Ballot accepted_ballot = read_ballot(r);
        auto accepted_children = read_group_views(r);
        auto catchup = read_group_views(r);
        return std::make_shared<const ViewPromiseMsg>(s, d, hi, target, ballot, ok, promised,
                                                      has_accepted, accepted_ballot,
                                                      std::move(accepted_children),
                                                      std::move(catchup), read_key_states(r));
      });

  reg.register_message<ViewAcceptMsg>(
      117,
      [](const Message& m, BufferWriter& w) {
        const auto& msg = static_cast<const ViewAcceptMsg&>(m);
        w.u64(msg.range_lo);
        w.u64(msg.range_hi);
        w.var_u64(msg.target);
        write_ballot(w, msg.ballot);
        write_group_views(w, msg.children);
      },
      [](BufferReader& r, Address s, Address d) -> MessagePtr {
        const RingKey lo = r.u64();
        const RingKey hi = r.u64();
        const std::uint64_t target = r.var_u64();
        const Ballot ballot = read_ballot(r);
        return std::make_shared<const ViewAcceptMsg>(s, d, lo, hi, target, ballot,
                                                     read_group_views(r));
      });

  reg.register_message<ViewAcceptedMsg>(
      118,
      [](const Message& m, BufferWriter& w) {
        const auto& msg = static_cast<const ViewAcceptedMsg&>(m);
        w.u64(msg.range_hi);
        w.var_u64(msg.target);
        write_ballot(w, msg.ballot);
        w.boolean(msg.ok);
      },
      [](BufferReader& r, Address s, Address d) -> MessagePtr {
        const RingKey hi = r.u64();
        const std::uint64_t target = r.var_u64();
        const Ballot ballot = read_ballot(r);
        return std::make_shared<const ViewAcceptedMsg>(s, d, hi, target, ballot, r.boolean());
      });

  reg.register_message<ViewInstallMsg>(
      119,
      [](const Message& m, BufferWriter& w) {
        const auto& msg = static_cast<const ViewInstallMsg&>(m);
        w.u64(msg.parent_hi);
        write_group_view(w, msg.child);
        write_key_states(w, msg.state);
      },
      [](BufferReader& r, Address s, Address d) -> MessagePtr {
        const RingKey parent_hi = r.u64();
        GroupView child = read_group_view(r);
        return std::make_shared<const ViewInstallMsg>(s, d, parent_hi, std::move(child),
                                                      read_key_states(r));
      });

  reg.register_message<ViewInstallAckMsg>(
      142,
      [](const Message& m, BufferWriter& w) {
        const auto& msg = static_cast<const ViewInstallAckMsg&>(m);
        w.u64(msg.parent_hi);
        w.u64(msg.child_hi);
        w.var_u64(msg.version);
      },
      [](BufferReader& r, Address s, Address d) -> MessagePtr {
        const RingKey parent_hi = r.u64();
        const RingKey child_hi = r.u64();
        return std::make_shared<const ViewInstallAckMsg>(s, d, parent_hi, child_hi, r.var_u64());
      });

  reg.register_message<ViewFetchMsg>(
      143,
      [](const Message& m, BufferWriter& w) {
        const auto& msg = static_cast<const ViewFetchMsg&>(m);
        w.u64(msg.lo);
        w.u64(msg.hi);
      },
      [](BufferReader& r, Address s, Address d) -> MessagePtr {
        const RingKey lo = r.u64();
        return std::make_shared<const ViewFetchMsg>(s, d, lo, r.u64());
      });

  reg.register_message<RouteLookupMsg>(
      140,
      [](const Message& m, BufferWriter& w) {
        const auto& msg = static_cast<const RouteLookupMsg&>(m);
        write_node_ref(w, msg.origin);
        w.var_u64(msg.op);
        w.u64(msg.key);
        w.var_u64(msg.group_size);
        w.var_u64(msg.ttl);
      },
      [](BufferReader& r, Address s, Address d) -> MessagePtr {
        NodeRef origin = read_node_ref(r);
        const OpId op = r.var_u64();
        const RingKey key = r.u64();
        const auto group_size = static_cast<std::uint32_t>(r.var_u64());
        const auto ttl = static_cast<std::uint32_t>(r.var_u64());
        return std::make_shared<const RouteLookupMsg>(s, d, origin, op, key, group_size, ttl);
      });

  reg.register_message<LookupResultMsg>(
      141,
      [](const Message& m, BufferWriter& w) {
        const auto& msg = static_cast<const LookupResultMsg&>(m);
        w.var_u64(msg.op);
        w.u64(msg.key);
        write_node_refs(w, msg.group);
        w.var_u64(msg.view_version);
      },
      [](BufferReader& r, Address s, Address d) -> MessagePtr {
        const OpId op = r.var_u64();
        const RingKey key = r.u64();
        auto group = read_node_refs(r);
        return std::make_shared<const LookupResultMsg>(s, d, op, key, std::move(group),
                                                       r.var_u64());
      });

  reg.register_message<BootstrapRequestMsg>(
      120,
      [](const Message& m, BufferWriter& w) {
        write_node_ref(w, static_cast<const BootstrapRequestMsg&>(m).self);
      },
      [](BufferReader& r, Address s, Address d) -> MessagePtr {
        return std::make_shared<const BootstrapRequestMsg>(s, d, read_node_ref(r));
      });

  reg.register_message<BootstrapResponseMsg>(
      121,
      [](const Message& m, BufferWriter& w) {
        write_node_refs(w, static_cast<const BootstrapResponseMsg&>(m).peers);
      },
      [](BufferReader& r, Address s, Address d) -> MessagePtr {
        return std::make_shared<const BootstrapResponseMsg>(s, d, read_node_refs(r));
      });

  reg.register_message<KeepAliveMsg>(
      122,
      [](const Message& m, BufferWriter& w) {
        write_node_ref(w, static_cast<const KeepAliveMsg&>(m).self);
      },
      [](BufferReader& r, Address s, Address d) -> MessagePtr {
        return std::make_shared<const KeepAliveMsg>(s, d, read_node_ref(r));
      });

  reg.register_message<StatusReportMsg>(
      130,
      [](const Message& m, BufferWriter& w) {
        const auto& msg = static_cast<const StatusReportMsg&>(m);
        write_node_ref(w, msg.node);
        w.var_u64(msg.fields.size());
        for (const auto& [k, v] : msg.fields) {
          w.str(k);
          w.str(v);
        }
      },
      [](BufferReader& r, Address s, Address d) -> MessagePtr {
        NodeRef node = read_node_ref(r);
        const std::uint64_t n = r.var_u64();
        std::map<std::string, std::string> fields;
        for (std::uint64_t i = 0; i < n; ++i) {
          std::string k = r.str();
          fields[k] = r.str();
        }
        return std::make_shared<const StatusReportMsg>(s, d, node, std::move(fields));
      });
}

}  // namespace

void register_cats_serializers() {
  static std::once_flag flag;
  std::call_once(flag, do_register);
}

}  // namespace kompics::cats
