#include "cats/ring.hpp"

#include <algorithm>

namespace kompics::cats {

namespace {
// Join lookups use ids far away from ABD's op-id space so that responses
// fanned out on a shared Router port are trivially distinguishable.
constexpr OpId kJoinIdBase = 0xF0000000000000ULL;
}  // namespace

CatsRing::CatsRing() {
  register_cats_serializers();

  subscribe<Init>(control(), [this](const Init& init) {
    self_ = init.self;
    params_ = init.params;
  });

  subscribe<Start>(control(), [this](const Start&) {
    trigger(timing::schedule_periodic<StabilizeRound>(params_.stabilization_period_ms,
                                                      params_.stabilization_period_ms),
            timer_);
  });

  subscribe<JoinRing>(ring_, [this](const JoinRing& join) {
    if (ready_) return;
    if (joining_) {
      // Refreshed contact list (e.g., the node re-bootstrapped because its
      // original contacts died): adopt it; the retry timer keeps cycling.
      if (!join.contacts.empty()) join_contacts_ = join.contacts;
      return;
    }
    join_contacts_ = join.contacts;
    if (join_contacts_.empty()) {
      // First node: a lone ring, responsible for the whole key space.
      ready_ = true;
      lone_ = true;
      publish_view();
      trigger(make_event<RingReady>(self_), ring_);
      return;
    }
    joining_ = true;
    join_lookup_id_ = kJoinIdBase + self_.key;
    send_join_lookup();
  });

  subscribe<LookupResponse>(router_, [this](const LookupResponse& resp) {
    if (!joining_ || resp.id != join_lookup_id_) return;  // not ours (shared port)
    if (resp.group.empty()) return;                       // retry timer pending
    if (resp.group[0].addr == self_.addr) {
      // The ring already wove us in (a neighbor's Notify/stabilization ran
      // while our lookup was in flight), so the responsible node for our
      // own key is... us. If we have neighbors, the join IS complete;
      // rejecting this answer would retry forever.
      if (!succs_.empty() || has_pred_) {
        joining_ = false;
        ready_ = true;
        lone_ = false;
        set_monitoring();
        publish_view();
        trigger(make_event<RingReady>(self_), ring_);
      }
      return;
    }
    complete_join(resp.group);
  });

  subscribe<JoinRetry>(timer_, [this](const JoinRetry&) {
    if (!joining_) return;
    ++join_attempt_;  // rotate to the next bootstrap contact
    send_join_lookup();
  });

  subscribe<StabilizeRound>(timer_, [this](const StabilizeRound&) { on_stabilize(); });

  // Ring-level successor lookup — the fallback join path. Unlike the
  // router's table-driven forwarding (which can be poisoned by descriptors
  // of dead nodes still circulating in gossip), this only traverses
  // successor lists, which the failure detector keeps live.
  subscribe<FindSuccessorMsg>(network_, [this](const FindSuccessorMsg& msg) {
    if (!ready_) return;  // not a member: cannot answer or route
    const bool responsible =
        succs_.empty() || (has_pred_ && in_interval_oc(pred_.key, self_.key, msg.target));
    if (responsible) {
      trigger(make_event<FoundSuccessorMsg>(self_.addr, msg.joiner.addr, self_, succs_),
              network_);
      return;
    }
    if (msg.hops_left == 0) return;  // hop budget spent: drop, joiner retries
    // Forward to the farthest successor that still precedes the target
    // (monotonic progress along the ring — but only while successor lists
    // agree, hence the hop budget above).
    NodeRef next = succs_[0];
    for (const auto& s : succs_) {
      if (in_interval_oo(self_.key, msg.target, s.key)) {
        next = s;
      } else {
        break;
      }
    }
    trigger(make_event<FindSuccessorMsg>(self_.addr, next.addr, msg.joiner, msg.target,
                                         msg.hops_left - 1),
            network_);
  });

  subscribe<FoundSuccessorMsg>(network_, [this](const FoundSuccessorMsg& msg) {
    if (!joining_ || msg.successor.addr == self_.addr) return;
    std::vector<NodeRef> group{msg.successor};
    group.insert(group.end(), msg.successor_list.begin(), msg.successor_list.end());
    complete_join(group);
  });

  subscribe<GetRingStateMsg>(network_, [this](const GetRingStateMsg& msg) {
    trigger(make_event<RingStateMsg>(self_.addr, msg.source(), self_, has_pred_, pred_, succs_),
            network_);
  });

  subscribe<RingStateMsg>(network_, [this](const RingStateMsg& msg) {
    if (succs_.empty() || msg.self.addr != succs_[0].addr) return;  // stale probe answer
    ++stabilizations_;
    if (msg.has_pred && msg.pred.addr != self_.addr &&
        in_interval_oo(self_.key, msg.self.key, msg.pred.key)) {
      // A node slipped in between us and our successor: adopt it.
      std::vector<NodeRef> rest{msg.self};
      rest.insert(rest.end(), msg.succs.begin(), msg.succs.end());
      adopt_successor_list(msg.pred, rest);
    } else {
      adopt_successor_list(msg.self, msg.succs);
    }
    if (!succs_.empty()) {
      trigger(make_event<NotifyMsg>(self_.addr, succs_[0].addr, self_), network_);
    }
  });

  // Ring merge / orphan recovery: random samples of live nodes let a node
  // (re)discover peers that its successor chain cannot reach — e.g. after a
  // healed partition left two disjoint rings, or after a node lost every
  // neighbor to suspicion. Stabilization then reconciles the pointers.
  subscribe<NodeSample>(sampling_, [this](const NodeSample& sample) {
    if (!ready_) return;
    // Drop expired quarantine entries.
    const TimeMs quarantine = 3 * params_.fd_initial_timeout_ms;
    for (auto it = recently_suspected_.begin(); it != recently_suspected_.end();) {
      it = now() - it->second > quarantine ? recently_suspected_.erase(it) : std::next(it);
    }
    bool changed = false;
    for (const auto& n : sample.nodes) {
      if (n.addr == self_.addr || !n.addr.valid()) continue;
      if (recently_suspected_.count(n.addr) != 0) continue;  // quarantined
      if (succs_.empty()) {
        succs_.push_back(n);
        changed = true;
      } else if (in_interval_oo(self_.key, succs_[0].key, n.key) &&
                 n.addr != succs_[0].addr) {
        // After churn the tail of the list can be stale enough that n
        // already sits deeper in it — drop that entry before promoting,
        // or the list ends up holding the node twice.
        succs_.erase(std::remove_if(succs_.begin(), succs_.end(),
                                    [&n](const NodeRef& s) { return s.addr == n.addr; }),
                     succs_.end());
        succs_.insert(succs_.begin(), n);
        if (succs_.size() > params_.successor_list_size) succs_.pop_back();
        changed = true;
      }
    }
    if (changed) {
      lone_ = false;
      set_monitoring();
      publish_view();
      if (!succs_.empty()) {
        trigger(make_event<NotifyMsg>(self_.addr, succs_[0].addr, self_), network_);
      }
    }
  });

  subscribe<NotifyMsg>(network_, [this](const NotifyMsg& msg) {
    bool changed = false;
    if (!has_pred_ || in_interval_oo(pred_.key, self_.key, msg.from.key)) {
      has_pred_ = true;
      pred_ = msg.from;
      changed = true;
    }
    if (succs_.empty() && msg.from.addr != self_.addr) {
      // Lone ring learning of its first peer: it is also our successor.
      succs_.push_back(msg.from);
      lone_ = false;
      changed = true;
    }
    if (changed) {
      set_monitoring();
      publish_view();
    }
  });

  subscribe<Suspect>(fd_, [this](const Suspect& s) { remove_node(s.node); });

  subscribe<StatusRequest>(status_, [this](const StatusRequest& req) {
    std::map<std::string, std::string> fields;
    fields["key"] = ring_key_str(self_.key);
    fields["ready"] = ready_ ? "true" : "false";
    fields["predecessor"] = has_pred_ ? ring_key_str(pred_.key) : "(none)";
    std::string succs;
    for (const auto& s : succs_) succs += ring_key_str(s.key) + " ";
    fields["successors"] = succs;
    fields["stabilizations"] = std::to_string(stabilizations_);
    fields["ring_epoch"] = std::to_string(epoch_);
    trigger(make_event<StatusResponse>(req.id, "CatsRing", std::move(fields)), status_);
  });
}

void CatsRing::send_join_lookup() {
  // The joiner is not a ring member yet, so it cannot rely on (or pollute)
  // any routing table: the successor lookup is shipped directly to one of
  // the bootstrap contacts. Even attempts resolve through the contact's
  // one-hop router (fast); odd attempts fall back to ring-level
  // FindSuccessor routing, which is immune to routing tables poisoned by
  // gossip about dead nodes. Retries rotate contacts.
  const Address contact = join_contacts_[join_attempt_ % join_contacts_.size()];
  if (join_attempt_ % 2 == 0) {
    trigger(make_event<RouteLookupMsg>(self_.addr, contact, self_, join_lookup_id_, self_.key,
                                       static_cast<std::uint32_t>(params_.successor_list_size),
                                       OneHopRouter::kMaxHops),
            network_);
  } else {
    trigger(make_event<FindSuccessorMsg>(self_.addr, contact, self_, self_.key,
                                         OneHopRouter::kMaxHops),
            network_);
  }
  trigger(timing::schedule<JoinRetry>(params_.stabilization_period_ms / 2 + 1), timer_);
}

void CatsRing::complete_join(const std::vector<NodeRef>& group) {
  joining_ = false;
  ready_ = true;
  lone_ = false;
  succs_.clear();
  for (const auto& n : group) {
    if (n.addr == self_.addr) continue;
    const bool dup = std::any_of(succs_.begin(), succs_.end(),
                                 [&n](const NodeRef& s) { return s.addr == n.addr; });
    if (!dup) succs_.push_back(n);  // lookup answers may repeat the head
  }
  if (!succs_.empty()) {
    trigger(make_event<NotifyMsg>(self_.addr, succs_[0].addr, self_), network_);
  }
  set_monitoring();
  publish_view();
  trigger(make_event<RingReady>(self_), ring_);
}

void CatsRing::on_stabilize() {
  if (!ready_ || succs_.empty()) return;
  trigger(make_event<GetRingStateMsg>(self_.addr, succs_[0].addr, self_), network_);
}

void CatsRing::adopt_successor_list(const NodeRef& head, const std::vector<NodeRef>& rest) {
  std::vector<NodeRef> fresh;
  auto push = [this, &fresh](const NodeRef& n) {
    if (n.addr == self_.addr || !n.addr.valid()) return;
    if (fresh.size() >= params_.successor_list_size) return;
    const bool dup = std::any_of(fresh.begin(), fresh.end(),
                                 [&n](const NodeRef& f) { return f.addr == n.addr; });
    if (!dup) fresh.push_back(n);
  };
  push(head);
  for (const auto& n : rest) push(n);
  if (fresh != succs_) {
    succs_ = std::move(fresh);
    set_monitoring();
    publish_view();
  }
}

void CatsRing::remove_node(const Address& a) {
  recently_suspected_[a] = now();
  bool changed = false;
  if (has_pred_ && pred_.addr == a) {
    has_pred_ = false;
    changed = true;
  }
  const auto before = succs_.size();
  succs_.erase(std::remove_if(succs_.begin(), succs_.end(),
                              [&a](const NodeRef& n) { return n.addr == a; }),
               succs_.end());
  changed = changed || succs_.size() != before;
  if (succs_.empty() && has_pred_) {
    // Last-resort repair: close the ring through our predecessor.
    succs_.push_back(pred_);
    changed = true;
  }
  if (changed) {
    set_monitoring();
    publish_view();
  }
}

void CatsRing::set_monitoring() {
  std::vector<Address> desired;
  if (has_pred_) desired.push_back(pred_.addr);
  for (const auto& s : succs_) desired.push_back(s.addr);
  for (const auto& a : desired) {
    if (std::find(monitored_.begin(), monitored_.end(), a) == monitored_.end()) {
      trigger(make_event<MonitorNode>(a), fd_);
    }
  }
  for (const auto& a : monitored_) {
    if (std::find(desired.begin(), desired.end(), a) == desired.end()) {
      trigger(make_event<UnmonitorNode>(a), fd_);
    }
  }
  monitored_ = std::move(desired);
}

void CatsRing::publish_view() {
  ++epoch_;
  trigger(make_event<RingView>(self_, pred_, has_pred_, succs_,
                               /*sole_member=*/lone_ && succs_.empty(), epoch_),
          ring_);
}

}  // namespace kompics::cats
