#pragma once

// Tunable protocol parameters for one CATS node. Defaults are sized for the
// simulated scenarios (milliseconds of virtual time); deployments override
// per Init event.

#include "kompics/clock.hpp"

#include <cstddef>

namespace kompics::cats {

struct CatsParams {
  // Replication (paper §4.1 used degree 5 on the LAN deployment).
  std::size_t replication_degree = 3;

  // CATS Ring.
  DurationMs stabilization_period_ms = 1000;
  std::size_t successor_list_size = 8;

  // Cyclon overlay.
  DurationMs shuffle_period_ms = 1000;
  std::size_t cyclon_cache_size = 16;
  std::size_t cyclon_shuffle_length = 8;
  // Entries older than this many shuffle rounds are purged: bounds how long
  // gossip keeps echoing descriptors of dead nodes (live nodes re-inject
  // themselves with age 0 on every shuffle they initiate).
  std::uint32_t cyclon_max_age = 5;

  // Ping failure detector.
  DurationMs fd_ping_period_ms = 1000;
  DurationMs fd_initial_timeout_ms = 4000;
  DurationMs fd_timeout_increment_ms = 1000;

  // ABD operations.
  DurationMs op_timeout_ms = 3000;
  int op_max_retries = 3;
  // When replicas nack enough of a phase that a quorum is impossible (the
  // view is being reconfigured), the coordinator retries after this short
  // backoff instead of the full op timeout. Instant retry would burn every
  // attempt inside the fence window of a single in-flight view change.
  DurationMs fast_retry_backoff_ms = 50;

  // Consistent-quorum view reconfiguration: how often a node re-evaluates
  // whether the views it is responsible for match the ring (drives splits on
  // join, member changes after eviction, catch-up fetches, and retransmits
  // of stalled proposals).
  DurationMs view_reconfig_period_ms = 500;

  // Bootstrap.
  DurationMs keepalive_period_ms = 5000;
  DurationMs bootstrap_eviction_ms = 15000;
  std::size_t bootstrap_sample_size = 8;
  // Periodic re-bootstrap: fresh peer samples re-seed the gossip overlay,
  // which is what lets disjoint rings (after a healed partition) or an
  // orphaned node (all neighbors suspected) find each other again and merge.
  DurationMs bootstrap_refresh_ms = 10000;

  // Monitoring.
  DurationMs monitor_period_ms = 5000;

  // Fault injection for the campaign harness' own regression test
  // (tests/campaign_shrink_test.cpp): re-opens the pre-consistent-quorums
  // divergence window that PR 6 closed. With this set, replicas acknowledge
  // ABD phase messages regardless of view version/fencing/membership,
  // coordinators accept unversioned lookups and count stale-view acks
  // toward quorums, and the router bypasses its installed-view cache —
  // exactly the "gate disabled" emulation measured in EXPERIMENTS.md
  // (13/50 sweep seeds produce divergent commits). MUST stay false outside
  // the harness self-test; the campaign asserts it catches and shrinks the
  // resulting violations.
  bool inject_stale_view_bug = false;
};

}  // namespace kompics::cats
