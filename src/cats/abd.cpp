#include "cats/abd.hpp"

#include <algorithm>

#include "cats/ring_key.hpp"

namespace kompics::cats {

ConsistentABD::ConsistentABD() {
  register_cats_serializers();

  subscribe<Init>(control(), [this](const Init& init) {
    self_ = init.self;
    params_ = init.params;
  });

  subscribe<Start>(control(), [this](const Start&) {
    trigger(timing::schedule_periodic<ReconfigTick>(params_.view_reconfig_period_ms,
                                                    params_.view_reconfig_period_ms),
            timer_);
  });

  // ---- client API ----------------------------------------------------------

  subscribe<PutRequest>(putget_, [this](const PutRequest& req) {
    Op op;
    op.type = OpType::kPut;
    op.client_id = req.id;
    op.key = req.key;
    op.put_value = req.value;
    op.retries_left = params_.op_max_retries;
    const OpId id = fresh_id();
    ops_.emplace(id, std::move(op));
    protocol::spawn(run_op(id));
  });

  subscribe<GetRequest>(putget_, [this](const GetRequest& req) {
    Op op;
    op.type = OpType::kGet;
    op.client_id = req.id;
    op.key = req.key;
    op.retries_left = params_.op_max_retries;
    const OpId id = fresh_id();
    ops_.emplace(id, std::move(op));
    protocol::spawn(run_op(id));
  });

  // ---- replica side --------------------------------------------------------
  //
  // The consistent-quorum gate: a replica acknowledges an ABD phase message
  // only if the view version it was coordinated under is exactly the
  // replica's installed, unfenced view for that key and the replica is a
  // member of it. Everything else is nacked with the replica's current
  // version, so the coordinator can retry under a fresh lookup.

  subscribe<AbdReadMsg>(network_, [this](const AbdReadMsg& msg) {
    const RangeState* r = covering_range(msg.key);
    if (!params_.inject_stale_view_bug &&
        (r == nullptr || r->fenced || r->view.version != msg.view ||
         !r->view.has_member(self_.addr))) {
      replica_nack(msg.source(), msg.op, msg.key);
      return;
    }
    // find(), not operator[]: a read of a missing key answers exists=false
    // without default-inserting an empty replica — otherwise a read storm of
    // absent keys grows the store without bound.
    auto sit = store_.find(msg.key);
    const bool exists = sit != store_.end() && sit->second.exists;
    trigger(make_event<AbdReadAckMsg>(self_.addr, msg.source(), msg.op, msg.key, msg.view,
                                      exists ? sit->second.tag : VersionTag{}, exists,
                                      exists ? sit->second.value : Value{}),
            network_);
  });

  subscribe<AbdWriteMsg>(network_, [this](const AbdWriteMsg& msg) {
    const RangeState* r = covering_range(msg.key);
    if (!params_.inject_stale_view_bug &&
        (r == nullptr || r->fenced || r->view.version != msg.view ||
         !r->view.has_member(self_.addr))) {
      replica_nack(msg.source(), msg.op, msg.key);
      return;
    }
    if (msg.exists) {
      Replica& rep = store_[msg.key];
      if (!rep.exists || rep.tag < msg.tag) {
        rep.tag = msg.tag;
        rep.exists = true;
        rep.value = msg.value;
      }
    }
    trigger(make_event<AbdWriteAckMsg>(self_.addr, msg.source(), msg.op, msg.key, msg.view),
            network_);
  });

  subscribe_view_protocol();  // consensus + installs + catch-up (abd_views.cpp)

  // ---- ring & timers -------------------------------------------------------

  subscribe<RingView>(ring_, [this](const RingView& v) {
    ring_view_received_ = true;
    self_ = v.self;
    sole_member_ = v.sole_member;
    has_pred_ = v.has_predecessor;
    pred_ = v.predecessor;
    succs_ = v.successors;
    ring_epoch_ = std::max(ring_epoch_, v.epoch);
    evaluate_reconfigurations();
  });

  subscribe<ReconfigTick>(timer_, [this](const ReconfigTick&) { evaluate_reconfigurations(); });

  subscribe<StatusRequest>(status_, [this](const StatusRequest& req) {
    std::map<std::string, std::string> fields;
    fields["store_size"] = std::to_string(store_.size());
    fields["ops_inflight"] = std::to_string(ops_.size());
    fields["puts_ok"] = std::to_string(counters_.puts_ok);
    fields["gets_ok"] = std::to_string(counters_.gets_ok);
    fields["ops_failed"] = std::to_string(counters_.ops_failed);
    fields["retries"] = std::to_string(counters_.retries);
    fields["ranges_held"] = std::to_string(ranges_.size());
    fields["views_installed"] = std::to_string(counters_.views_installed);
    fields["view_fences"] = std::to_string(counters_.view_fences);
    fields["view_fetches"] = std::to_string(counters_.view_fetches);
    fields["reconfigs_proposed"] = std::to_string(counters_.reconfigs_proposed);
    fields["reconfigs_decided"] = std::to_string(counters_.reconfigs_decided);
    fields["stale_view_nacks"] = std::to_string(counters_.stale_view_nacks);
    fields["fast_retries"] = std::to_string(counters_.fast_retries);
    fields["stale_view_acks_dropped"] = std::to_string(counters_.stale_view_acks_dropped);
    trigger(make_event<StatusResponse>(req.id, "ConsistentABD", std::move(fields)), status_);
  });
}

// ---- op coordinator (one coroutine frame per client operation) -------------
//
// The op "state machine" is now just control flow: run_op's loop IS the retry
// policy, and the three round coroutines each suspend on the responses they
// correlate by exact wire op id. Phase transitions, the per-attempt timeout,
// ack bookkeeping resets and op-table cleanup — previously spread over five
// subscriptions and six helpers — all live in the frames below.

protocol::Proto<void> ConsistentABD::run_op(OpId internal) {
  // Whatever ends this frame — completion, exhausted retries, or the
  // component being destroyed mid-await — releases the op-table entry.
  // (unordered_map never moves values, so op stays valid across co_awaits:
  // only this guard erases the entry.)
  struct OpGuard {
    ConsistentABD* abd;
    OpId id;
    ~OpGuard() { abd->ops_.erase(id); }
  } guard{this, internal};
  Op& op = ops_.at(internal);
  for (;;) {
    // One deadline spans the whole attempt (lookup + read + write); arming a
    // fresh one auto-cancels the previous attempt's through the Timer port.
    auto deadline = co_await protocol::arm_timer(timer_, params_.op_timeout_ms);
    bool ok = co_await lookup_round(internal, deadline);
    if (ok && !(op.type == OpType::kPut && op.tag_chosen)) {
      // (A retried put whose tag is already fixed goes straight to idempotent
      // write retransmission; a fresh read phase must not re-tag the value.)
      ok = co_await read_round(internal, deadline);
      if (ok && op.type == OpType::kGet && !op.max_exists) {
        complete_op(op, true);  // nothing to impose: answer "not found"
        co_return;
      }
    }
    if (ok) ok = co_await write_round(internal, deadline);
    if (ok) {
      complete_op(op, true);
      co_return;
    }
    if (op.retries_left > 0) {
      --op.retries_left;
      ++op.attempt;  // stale wire ids stop matching any round's predicates
      ++counters_.retries;
      continue;  // fresh group lookup, fresh quorum rounds
    }
    switch (op.phase) {
      case Phase::kLookup:
        ++counters_.failed_in_lookup;
        break;
      case Phase::kRead:
        ++counters_.failed_in_read;
        break;
      case Phase::kWrite:
        ++counters_.failed_in_write;
        break;
    }
    complete_op(op, false);
    co_return;
  }
}

protocol::Proto<bool> ConsistentABD::lookup_round(OpId internal,
                                                  protocol::ArmedTimer& deadline) {
  Op& op = ops_.at(internal);
  op.phase = Phase::kLookup;
  op.acked.clear();
  op.nacked.clear();
  op.max_tag = VersionTag{};
  op.max_exists = false;
  op.max_value.clear();
  const OpId wid = wire_id(internal, op.attempt);
  // Open the stream BEFORE asking: a same-thread router can answer inline.
  auto responses = co_await router_.open<LookupResponse>(
      [wid](const LookupResponse& r) { return r.id == wid; });
  trigger(make_event<LookupRequest>(wid, op.key, params_.replication_degree), router_);
  for (;;) {
    auto got = co_await protocol::when_any(responses.next(), deadline.wait());
    if (got.index() == 1) co_return false;  // attempt deadline
    const LookupResponse& resp = *std::get<0>(got);
    if (resp.group.empty() ||
        (resp.view_version == 0 && !params_.inject_stale_view_bug)) {
      // Ring not converged around the key, or the responsible node has no
      // installed view yet; keep waiting — the deadline retries with a fresh
      // lookup. An unversioned group must never run quorum phases: that is
      // exactly the window where two sides of a partition could each
      // assemble an (inconsistent) quorum. (The inject_stale_view_bug
      // emulation deliberately re-opens that window, params.hpp.)
      continue;
    }
    op.group = resp.group;
    op.view = resp.view_version;
    op.quorum = op.group.size() / 2 + 1;
    co_return true;
  }
}

template <class AckMsg>
protocol::Proto<bool> ConsistentABD::quorum_round(OpId internal,
                                                  protocol::ArmedTimer& deadline, Phase phase,
                                                  std::function<void(OpId wid)> send_phase,
                                                  std::function<void(const AckMsg&)> fold) {
  Op& op = ops_.at(internal);
  op.phase = phase;
  op.acked.clear();
  op.nacked.clear();
  const OpId wid = wire_id(internal, op.attempt);
  // Open the streams BEFORE sending: an in-process replica can answer inline.
  auto acks = co_await network_.open<AckMsg>([wid](const AckMsg& a) { return a.op == wid; });
  auto nacks = co_await network_.open<AbdNackMsg>(
      [wid](const AbdNackMsg& n) { return n.op == wid; });
  send_phase(wid);
  protocol::ArmedTimer fast;  // armed once nacks make this view's quorum infeasible
  for (;;) {
    auto got = co_await protocol::when_any(acks.next(), nacks.next(), deadline.wait(),
                                           fast.wait());
    if (got.index() >= 2) co_return false;  // attempt deadline or fast-retry backoff
    if (got.index() == 0) {
      const AckMsg& ack = *std::get<0>(got);
      if (!count_ack(internal, op, ack.source(), ack.view)) continue;
      fold(ack);
      if (op.acked.size() >= op.quorum) co_return true;
    } else if (count_nack(op, std::get<1>(got)->source()) && !fast.armed()) {
      // Too many replicas reject this view for a quorum to ever form: the
      // view is being reconfigured under us. Shortcut the attempt deadline
      // to a short backoff — long enough for the in-flight view change to
      // install, unlike an instant retry, which would burn every attempt
      // inside one fence window.
      ++counters_.fast_retries;
      fast = co_await protocol::arm_timer(timer_, params_.fast_retry_backoff_ms);
    }
  }
}

protocol::Proto<bool> ConsistentABD::read_round(OpId internal,
                                                protocol::ArmedTimer& deadline) {
  Op& op = ops_.at(internal);
  return quorum_round<AbdReadAckMsg>(
      internal, deadline, Phase::kRead,
      [this, &op](OpId wid) {
        for (const auto& n : op.group) {
          trigger(make_event<AbdReadMsg>(self_.addr, n.addr, wid, op.key, op.view), network_);
        }
      },
      [&op](const AbdReadAckMsg& ack) {
        if (op.max_tag < ack.tag || (!op.max_exists && ack.exists)) {
          op.max_tag = ack.tag;
          op.max_exists = ack.exists;
          op.max_value = ack.value;
        }
      });
}

protocol::Proto<bool> ConsistentABD::write_round(OpId internal,
                                                 protocol::ArmedTimer& deadline) {
  Op& op = ops_.at(internal);
  if (op.type == OpType::kPut && !op.tag_chosen) {
    // Writer tiebreak must be unique per *operation*: one node can run
    // concurrent puts for the same key, and if both picked (c+1, node_key)
    // the replicas would disagree about the value stored under one tag — a
    // real linearizability violation found by the history checker. Mixing
    // the internal op id in keeps tags totally ordered and (with
    // overwhelming probability) collision-free across writers.
    op.chosen_tag = VersionTag{op.max_tag.counter + 1, derive_seed(self_.key, internal)};
    op.tag_chosen = true;
  }
  const bool put = op.type == OpType::kPut;
  const VersionTag tag = put ? op.chosen_tag : op.max_tag;
  const bool exists = put ? true : op.max_exists;
  const Value& value = put ? op.put_value : op.max_value;
  return quorum_round<AbdWriteAckMsg>(
      internal, deadline, Phase::kWrite,
      [this, &op, tag, exists, &value](OpId wid) {
        for (const auto& n : op.group) {
          trigger(make_event<AbdWriteMsg>(self_.addr, n.addr, wid, op.key, op.view, tag,
                                          exists, value),
                  network_);
        }
      },
      [](const AbdWriteAckMsg&) {});
}

bool ConsistentABD::count_ack(OpId internal, Op& op, const Address& source,
                              std::uint64_t ack_view) {
  if (ack_view != op.view) {
    if (!params_.inject_stale_view_bug) {
      ++counters_.stale_view_acks_dropped;
      return false;
    }
    note_mixed_view_ack(internal, op, ack_view);
  }
  return note_address(op.acked, source);  // false: duplicated delivery
}

bool ConsistentABD::count_nack(Op& op, const Address& source) {
  const bool member = std::any_of(op.group.begin(), op.group.end(),
                                  [&](const NodeRef& n) { return n.addr == source; });
  if (!member || !note_address(op.nacked, source)) return false;
  return op.group.size() - op.nacked.size() < op.quorum;
}

void ConsistentABD::complete_op(Op& op, bool ok) {
  if (op.type == OpType::kPut) {
    if (ok) {
      ++counters_.puts_ok;
    } else {
      ++counters_.ops_failed;
    }
    trigger(make_event<PutResponse>(op.client_id, op.key, ok), putget_);
  } else {
    if (ok) {
      ++counters_.gets_ok;
    } else {
      ++counters_.ops_failed;
    }
    trigger(make_event<GetResponse>(op.client_id, op.key, ok, op.max_exists, op.max_value),
            putget_);
  }
}

bool ConsistentABD::note_address(std::vector<Address>& v, const Address& a) {
  if (std::find(v.begin(), v.end(), a) != v.end()) return false;
  v.push_back(a);
  return true;
}

void ConsistentABD::note_mixed_view_ack(OpId internal, const Op& op, std::uint64_t ack_view) {
  if (recorded_violations_.size() >= 64) return;  // bounded; first hits matter
  recorded_violations_.push_back(
      "abd: op " + std::to_string(internal) + " (key " + std::to_string(op.key) +
      ") counted an ack under view v" + std::to_string(ack_view) +
      " but was coordinated under v" + std::to_string(op.view) +
      " — quorum mixes replica views");
}

std::vector<std::string> ConsistentABD::invariant_violations() const {
  std::vector<std::string> out = recorded_violations_;
  // Installed views must partition the key space: every range's own hi key
  // must be covered by no other installed range (overlap means two replica
  // groups both believe they own a key — the divergence precondition).
  for (const auto& [hi, r] : ranges_) {
    for (const auto& [other_hi, other] : ranges_) {
      if (other_hi != hi && other.view.covers(hi) && r.view.covers(other_hi)) {
        out.push_back("abd: installed views overlap: (" + std::to_string(r.view.lo) + ", " +
                      std::to_string(hi) + "]@v" + std::to_string(r.view.version) + " and (" +
                      std::to_string(other.view.lo) + ", " + std::to_string(other_hi) + "]@v" +
                      std::to_string(other.view.version));
      }
    }
  }
  // No in-flight op may hold more (deduplicated) acks than its group has
  // members, and its quorum must be a majority of that group.
  for (const auto& [id, op] : ops_) {
    if (!op.group.empty() && op.acked.size() > op.group.size()) {
      out.push_back("abd: op " + std::to_string(id) + " holds " +
                    std::to_string(op.acked.size()) + " acks from a group of " +
                    std::to_string(op.group.size()));
    }
    if (!op.group.empty() && op.quorum != op.group.size() / 2 + 1) {
      out.push_back("abd: op " + std::to_string(id) + " quorum " + std::to_string(op.quorum) +
                    " is not a majority of its group of " + std::to_string(op.group.size()));
    }
  }
  // Ops and coroutine frames must pair exactly: an op parked in a suspended
  // run_op frame still counts as pending, and a finished (or destroyed)
  // frame must have released its op-table entry — a mismatch either way is
  // a leak in the protocol layer's RAII cleanup.
  if (protocol_host() != nullptr && ops_.size() != protocol_host()->live_frame_count()) {
    out.push_back("abd: " + std::to_string(ops_.size()) + " in-flight ops but " +
                  std::to_string(protocol_host()->live_frame_count()) +
                  " live protocol frames — op table and coroutine frames leak apart");
  }
  return out;
}

void ConsistentABD::replica_nack(const Address& to, OpId op, RingKey key) {
  ++counters_.stale_view_nacks;
  const RangeState* r = covering_range(key);
  trigger(make_event<AbdNackMsg>(self_.addr, to, op, key, r == nullptr ? 0 : r->view.version),
          network_);
}

}  // namespace kompics::cats
