#include "cats/abd.hpp"

namespace kompics::cats {

ConsistentABD::ConsistentABD() {
  register_cats_serializers();

  subscribe<Init>(control(), [this](const Init& init) {
    self_ = init.self;
    params_ = init.params;
  });

  // ---- client API ----------------------------------------------------------

  subscribe<PutRequest>(putget_, [this](const PutRequest& req) {
    Op op;
    op.type = OpType::kPut;
    op.client_id = req.id;
    op.key = req.key;
    op.put_value = req.value;
    op.retries_left = params_.op_max_retries;
    start_op(fresh_id(), std::move(op));
  });

  subscribe<GetRequest>(putget_, [this](const GetRequest& req) {
    Op op;
    op.type = OpType::kGet;
    op.client_id = req.id;
    op.key = req.key;
    op.retries_left = params_.op_max_retries;
    start_op(fresh_id(), std::move(op));
  });

  // ---- router answers --------------------------------------------------------

  subscribe<LookupResponse>(router_, [this](const LookupResponse& resp) {
    auto it = ops_.find(internal_of(resp.id));
    if (it == ops_.end() || it->second.phase != Phase::kLookup ||
        it->second.attempt != attempt_of(resp.id)) {
      return;  // not ours (shared Router port) or a stale attempt
    }
    Op& op = it->second;
    if (resp.group.empty()) {
      // Ring not converged around the key yet; the armed op timeout will
      // retry with a fresh lookup.
      return;
    }
    op.group = resp.group;
    op.quorum = op.group.size() / 2 + 1;
    if (op.type == OpType::kPut && op.tag_chosen) {
      // Retried put whose tag is already fixed: go straight to (idempotent)
      // write retransmission; a fresh read phase must not re-tag the value.
      begin_write_phase(it->first, op);
    } else {
      begin_read_phase(it->first, op);
    }
  });

  // ---- replica side ------------------------------------------------------------

  subscribe<AbdReadMsg>(network_, [this](const AbdReadMsg& msg) {
    const Replica& r = store_[msg.key];  // default: tag {0,0}, no value
    trigger(make_event<AbdReadAckMsg>(self_.addr, msg.source(), msg.op, msg.key, r.tag,
                                      r.exists, r.value),
            network_);
  });

  subscribe<AbdWriteMsg>(network_, [this](const AbdWriteMsg& msg) {
    Replica& r = store_[msg.key];
    if (msg.exists && r.tag < msg.tag) {
      r.tag = msg.tag;
      r.exists = true;
      r.value = msg.value;
    }
    trigger(make_event<AbdWriteAckMsg>(self_.addr, msg.source(), msg.op, msg.key), network_);
  });

  // ---- coordinator side ----------------------------------------------------------

  subscribe<AbdReadAckMsg>(network_, [this](const AbdReadAckMsg& ack) {
    auto it = ops_.find(internal_of(ack.op));
    if (it == ops_.end() || it->second.phase != Phase::kRead ||
        it->second.attempt != attempt_of(ack.op)) {
      return;
    }
    Op& op = it->second;
    ++op.acks;
    if (op.max_tag < ack.tag || (!op.max_exists && ack.exists)) {
      op.max_tag = ack.tag;
      op.max_exists = ack.exists;
      op.max_value = ack.value;
    }
    if (op.acks >= op.quorum) {
      if (op.type == OpType::kGet && !op.max_exists) {
        // Nothing to impose: answer "not found" directly.
        finish_op(it->first, op, true);
      } else {
        begin_write_phase(it->first, op);
      }
    }
  });

  subscribe<AbdWriteAckMsg>(network_, [this](const AbdWriteAckMsg& ack) {
    auto it = ops_.find(internal_of(ack.op));
    if (it == ops_.end() || it->second.phase != Phase::kWrite ||
        it->second.attempt != attempt_of(ack.op)) {
      return;
    }
    Op& op = it->second;
    ++op.acks;
    if (op.acks >= op.quorum) finish_op(it->first, op, true);
  });

  // ---- timeouts --------------------------------------------------------------------

  subscribe<OpTimeout>(timer_, [this](const OpTimeout& t) { retry_or_fail(t.op); });

  subscribe<StatusRequest>(status_, [this](const StatusRequest& req) {
    std::map<std::string, std::string> fields;
    fields["store_size"] = std::to_string(store_.size());
    fields["ops_inflight"] = std::to_string(ops_.size());
    fields["puts_ok"] = std::to_string(counters_.puts_ok);
    fields["gets_ok"] = std::to_string(counters_.gets_ok);
    fields["ops_failed"] = std::to_string(counters_.ops_failed);
    fields["retries"] = std::to_string(counters_.retries);
    trigger(make_event<StatusResponse>(req.id, "ConsistentABD", std::move(fields)), status_);
  });
}

void ConsistentABD::start_op(OpId internal, Op op) {
  auto [it, inserted] = ops_.emplace(internal, std::move(op));
  begin_lookup(internal, it->second);
}

void ConsistentABD::begin_lookup(OpId internal, Op& op) {
  op.phase = Phase::kLookup;
  op.acks = 0;
  op.max_tag = VersionTag{};
  op.max_exists = false;
  op.max_value.clear();
  auto timeout = timing::schedule<OpTimeout>(params_.op_timeout_ms, internal);
  op.timeout_id = timeout->timeout_id();
  trigger(timeout, timer_);
  trigger(make_event<LookupRequest>(wire_id(internal, op.attempt), op.key,
                                    params_.replication_degree),
          router_);
}

void ConsistentABD::begin_read_phase(OpId internal, Op& op) {
  op.phase = Phase::kRead;
  op.acks = 0;
  for (const auto& n : op.group) {
    trigger(make_event<AbdReadMsg>(self_.addr, n.addr, wire_id(internal, op.attempt), op.key),
            network_);
  }
}

void ConsistentABD::begin_write_phase(OpId internal, Op& op) {
  op.phase = Phase::kWrite;
  op.acks = 0;
  VersionTag tag;
  bool exists;
  const Value* value;
  if (op.type == OpType::kPut) {
    if (!op.tag_chosen) {
      // Writer tiebreak must be unique per *operation*: one node can run
      // concurrent puts for the same key, and if both picked (c+1, node_key)
      // the replicas would disagree about the value stored under one tag — a
      // real linearizability violation found by the history checker. Mixing
      // the internal op id in keeps tags totally ordered and (with
      // overwhelming probability) collision-free across writers.
      op.chosen_tag = VersionTag{op.max_tag.counter + 1, derive_seed(self_.key, internal)};
      op.tag_chosen = true;
    }
    tag = op.chosen_tag;
    exists = true;
    value = &op.put_value;
  } else {
    tag = op.max_tag;
    exists = op.max_exists;
    value = &op.max_value;
  }
  for (const auto& n : op.group) {
    trigger(make_event<AbdWriteMsg>(self_.addr, n.addr, wire_id(internal, op.attempt), op.key,
                                    tag, exists, *value),
            network_);
  }
}

void ConsistentABD::finish_op(OpId internal, Op& op, bool ok) {
  trigger(make_event<timing::CancelTimeout>(op.timeout_id), timer_);
  if (op.type == OpType::kPut) {
    if (ok) {
      ++counters_.puts_ok;
    } else {
      ++counters_.ops_failed;
    }
    trigger(make_event<PutResponse>(op.client_id, op.key, ok), putget_);
  } else {
    if (ok) {
      ++counters_.gets_ok;
    } else {
      ++counters_.ops_failed;
    }
    trigger(make_event<GetResponse>(op.client_id, op.key, ok, op.max_exists, op.max_value),
            putget_);
  }
  ops_.erase(internal);
}

void ConsistentABD::retry_or_fail(OpId internal) {
  auto it = ops_.find(internal);
  if (it == ops_.end()) return;  // completed already
  Op& op = it->second;
  if (op.retries_left > 0) {
    --op.retries_left;
    ++op.attempt;
    ++counters_.retries;
    begin_lookup(internal, op);  // fresh group lookup, fresh quorum rounds
    return;
  }
  switch (op.phase) {
    case Phase::kLookup:
      ++counters_.failed_in_lookup;
      break;
    case Phase::kRead:
      ++counters_.failed_in_read;
      break;
    case Phase::kWrite:
      ++counters_.failed_in_write;
      break;
  }
  finish_op(internal, op, false);
}

}  // namespace kompics::cats
