#include "cats/abd.hpp"

#include <algorithm>

#include "cats/ring_key.hpp"

namespace kompics::cats {

ConsistentABD::ConsistentABD() {
  register_cats_serializers();

  subscribe<Init>(control(), [this](const Init& init) {
    self_ = init.self;
    params_ = init.params;
  });

  subscribe<Start>(control(), [this](const Start&) {
    trigger(timing::schedule_periodic<ReconfigTick>(params_.view_reconfig_period_ms,
                                                    params_.view_reconfig_period_ms),
            timer_);
  });

  // ---- client API ----------------------------------------------------------

  subscribe<PutRequest>(putget_, [this](const PutRequest& req) {
    Op op;
    op.type = OpType::kPut;
    op.client_id = req.id;
    op.key = req.key;
    op.put_value = req.value;
    op.retries_left = params_.op_max_retries;
    start_op(fresh_id(), std::move(op));
  });

  subscribe<GetRequest>(putget_, [this](const GetRequest& req) {
    Op op;
    op.type = OpType::kGet;
    op.client_id = req.id;
    op.key = req.key;
    op.retries_left = params_.op_max_retries;
    start_op(fresh_id(), std::move(op));
  });

  // ---- router answers ------------------------------------------------------

  subscribe<LookupResponse>(router_, [this](const LookupResponse& resp) {
    auto it = ops_.find(internal_of(resp.id));
    if (it == ops_.end() || it->second.phase != Phase::kLookup ||
        it->second.attempt != attempt_of(resp.id)) {
      return;  // not ours (shared Router port) or a stale attempt
    }
    Op& op = it->second;
    if (resp.group.empty() ||
        (resp.view_version == 0 && !params_.inject_stale_view_bug)) {
      // Ring not converged around the key, or the responsible node has no
      // installed view yet; the armed op timeout will retry with a fresh
      // lookup. An unversioned group must never run quorum phases: that is
      // exactly the window where two sides of a partition could each
      // assemble an (inconsistent) quorum. (The inject_stale_view_bug
      // emulation deliberately re-opens that window, params.hpp.)
      return;
    }
    op.group = resp.group;
    op.view = resp.view_version;
    op.quorum = op.group.size() / 2 + 1;
    if (op.type == OpType::kPut && op.tag_chosen) {
      // Retried put whose tag is already fixed: go straight to (idempotent)
      // write retransmission; a fresh read phase must not re-tag the value.
      begin_write_phase(it->first, op);
    } else {
      begin_read_phase(it->first, op);
    }
  });

  // ---- replica side --------------------------------------------------------
  //
  // The consistent-quorum gate: a replica acknowledges an ABD phase message
  // only if the view version it was coordinated under is exactly the
  // replica's installed, unfenced view for that key and the replica is a
  // member of it. Everything else is nacked with the replica's current
  // version, so the coordinator can retry under a fresh lookup.

  subscribe<AbdReadMsg>(network_, [this](const AbdReadMsg& msg) {
    const RangeState* r = covering_range(msg.key);
    if (!params_.inject_stale_view_bug &&
        (r == nullptr || r->fenced || r->view.version != msg.view ||
         !r->view.has_member(self_.addr))) {
      replica_nack(msg.source(), msg.op, msg.key);
      return;
    }
    // find(), not operator[]: a read of a missing key answers exists=false
    // without default-inserting an empty replica — otherwise a read storm of
    // absent keys grows the store without bound.
    auto sit = store_.find(msg.key);
    const bool exists = sit != store_.end() && sit->second.exists;
    trigger(make_event<AbdReadAckMsg>(self_.addr, msg.source(), msg.op, msg.key, msg.view,
                                      exists ? sit->second.tag : VersionTag{}, exists,
                                      exists ? sit->second.value : Value{}),
            network_);
  });

  subscribe<AbdWriteMsg>(network_, [this](const AbdWriteMsg& msg) {
    const RangeState* r = covering_range(msg.key);
    if (!params_.inject_stale_view_bug &&
        (r == nullptr || r->fenced || r->view.version != msg.view ||
         !r->view.has_member(self_.addr))) {
      replica_nack(msg.source(), msg.op, msg.key);
      return;
    }
    if (msg.exists) {
      Replica& rep = store_[msg.key];
      if (!rep.exists || rep.tag < msg.tag) {
        rep.tag = msg.tag;
        rep.exists = true;
        rep.value = msg.value;
      }
    }
    trigger(make_event<AbdWriteAckMsg>(self_.addr, msg.source(), msg.op, msg.key, msg.view),
            network_);
  });

  // ---- coordinator side ----------------------------------------------------

  subscribe<AbdReadAckMsg>(network_, [this](const AbdReadAckMsg& ack) {
    auto it = ops_.find(internal_of(ack.op));
    if (it == ops_.end() || it->second.phase != Phase::kRead ||
        it->second.attempt != attempt_of(ack.op)) {
      return;
    }
    Op& op = it->second;
    if (ack.view != op.view) {
      if (!params_.inject_stale_view_bug) {
        ++counters_.stale_view_acks_dropped;
        return;
      }
      note_mixed_view_ack(it->first, op, ack.view);
    }
    if (!note_address(op.acked, ack.source())) return;  // duplicated delivery
    if (op.max_tag < ack.tag || (!op.max_exists && ack.exists)) {
      op.max_tag = ack.tag;
      op.max_exists = ack.exists;
      op.max_value = ack.value;
    }
    if (op.acked.size() >= op.quorum) {
      if (op.type == OpType::kGet && !op.max_exists) {
        // Nothing to impose: answer "not found" directly.
        finish_op(it->first, op, true);
      } else {
        begin_write_phase(it->first, op);
      }
    }
  });

  subscribe<AbdWriteAckMsg>(network_, [this](const AbdWriteAckMsg& ack) {
    auto it = ops_.find(internal_of(ack.op));
    if (it == ops_.end() || it->second.phase != Phase::kWrite ||
        it->second.attempt != attempt_of(ack.op)) {
      return;
    }
    Op& op = it->second;
    if (ack.view != op.view) {
      if (!params_.inject_stale_view_bug) {
        ++counters_.stale_view_acks_dropped;
        return;
      }
      note_mixed_view_ack(it->first, op, ack.view);
    }
    if (!note_address(op.acked, ack.source())) return;  // duplicated delivery
    if (op.acked.size() >= op.quorum) finish_op(it->first, op, true);
  });

  subscribe<AbdNackMsg>(network_, [this](const AbdNackMsg& nack) {
    auto it = ops_.find(internal_of(nack.op));
    if (it == ops_.end() || it->second.phase == Phase::kLookup ||
        it->second.attempt != attempt_of(nack.op)) {
      return;
    }
    Op& op = it->second;
    const bool member = std::any_of(op.group.begin(), op.group.end(), [&](const NodeRef& n) {
      return n.addr == nack.source();
    });
    if (!member || !note_address(op.nacked, nack.source())) return;
    if (op.group.size() - op.nacked.size() < op.quorum) {
      // Too many replicas reject this view for a quorum to ever form: the
      // view is being reconfigured under us. Shortcut the op timeout to a
      // short backoff — long enough for the in-flight view change to
      // install, unlike an instant retry, which would burn every attempt
      // inside one fence window.
      ++counters_.fast_retries;
      trigger(make_event<timing::CancelTimeout>(op.timeout_id), timer_);
      auto timeout = timing::schedule<OpTimeout>(params_.fast_retry_backoff_ms, it->first,
                                                 op.attempt);
      op.timeout_id = timeout->timeout_id();
      trigger(timeout, timer_);
    }
  });

  // ---- view reconfiguration: acceptor side ---------------------------------

  subscribe<ViewPrepareMsg>(network_, [this](const ViewPrepareMsg& msg) {
    auto refuse = [&](Ballot promised, std::vector<GroupView> catchup,
                      std::vector<KeyState> state) {
      trigger(make_event<ViewPromiseMsg>(self_.addr, msg.source(), msg.range_hi, msg.target,
                                         msg.ballot, false, promised, false, Ballot{},
                                         std::vector<GroupView>{}, std::move(catchup),
                                         std::move(state)),
              network_);
    };
    auto it = ranges_.find(msg.range_hi);
    if (it == ranges_.end() || it->second.view.version + 1 < msg.target) {
      // We do not hold this range (it may have been superseded by a newer
      // view after a split): if a newer installed view covers the proposer's
      // hi, ship it so the stale proposer can catch up.
      const RangeState* cover = covering_range(msg.range_hi);
      if (cover != nullptr && cover->view.version >= msg.target) {
        refuse(Ballot{}, {cover->view}, dump_range(cover->view.lo, cover->view.hi));
      } else {
        refuse(Ballot{}, {}, {});
      }
      return;
    }
    RangeState& r = it->second;
    if (r.view.version >= msg.target) {  // already reconfigured past the target
      refuse(Ballot{}, {r.view}, dump_range(r.view.lo, r.view.hi));
      return;
    }
    // r.view.version == msg.target - 1: we are an acceptor for this decree.
    Slot& slot = slots_[{msg.range_hi, msg.target}];
    if (msg.ballot < slot.promised) {
      refuse(slot.promised, {}, {});
      return;
    }
    slot.promised = msg.ballot;
    // THE FENCE: from this promise on, the old view refuses ABD phases for
    // the range. Once a majority of the old view has promised, the old view
    // can never again assemble a quorum — which is the precondition for the
    // new view taking over without a divergence window.
    if (!r.fenced) {
      r.fenced = true;
      r.fenced_at = now();
      ++counters_.view_fences;
    }
    trigger(make_event<ViewPromiseMsg>(self_.addr, msg.source(), msg.range_hi, msg.target,
                                       msg.ballot, true, slot.promised, slot.has_accepted,
                                       slot.accepted_ballot, slot.accepted_children,
                                       std::vector<GroupView>{},
                                       dump_range(r.view.lo, r.view.hi)),
            network_);
  });

  subscribe<ViewAcceptMsg>(network_, [this](const ViewAcceptMsg& msg) {
    auto it = ranges_.find(msg.range_hi);
    const bool have_old = it != ranges_.end() && it->second.view.version + 1 == msg.target;
    if (!have_old) {
      trigger(make_event<ViewAcceptedMsg>(self_.addr, msg.source(), msg.range_hi, msg.target,
                                          msg.ballot, false),
              network_);
      return;
    }
    Slot& slot = slots_[{msg.range_hi, msg.target}];
    if (msg.ballot < slot.promised) {
      trigger(make_event<ViewAcceptedMsg>(self_.addr, msg.source(), msg.range_hi, msg.target,
                                          msg.ballot, false),
              network_);
      return;
    }
    slot.promised = msg.ballot;
    slot.has_accepted = true;
    slot.accepted_ballot = msg.ballot;
    slot.accepted_children = msg.children;
    if (!it->second.fenced) {
      it->second.fenced = true;
      it->second.fenced_at = now();
      ++counters_.view_fences;
    }
    trigger(make_event<ViewAcceptedMsg>(self_.addr, msg.source(), msg.range_hi, msg.target,
                                        msg.ballot, true),
            network_);
  });

  // ---- view reconfiguration: proposer side ---------------------------------

  subscribe<ViewPromiseMsg>(network_, [this](const ViewPromiseMsg& msg) {
    // A catch-up hint is useful whether or not the proposal it answers is
    // still current: install (install_view no-ops unless strictly newer).
    if (!msg.ok && !msg.catchup.empty()) {
      install_view(msg.catchup[0], msg.state);
    }
    auto it = reconfigs_.find(msg.range_hi);
    if (it == reconfigs_.end()) return;
    Reconfig& rec = it->second;
    if (rec.target != msg.target || !(rec.ballot == msg.ballot) ||
        rec.stage != Reconfig::Stage::kPrepare) {
      return;
    }
    if (!msg.ok) {
      if (!msg.catchup.empty()) {
        reconfigs_.erase(it);  // superseded; re-evaluated from the new view
      } else {
        rec.highest_rejection = std::max(rec.highest_rejection, msg.promised.round);
      }
      return;  // next tick re-proposes with a higher ballot if still needed
    }
    if (!rec.parent.has_member(msg.source())) return;
    if (!note_address(rec.promises, msg.source())) return;
    // Paxos adopt rule: if any acceptor already accepted children for this
    // decree, the highest-ballot such proposal is the only one we may pass.
    if (msg.has_accepted && (!rec.adopted || rec.max_accepted < msg.accepted_ballot)) {
      rec.adopted = true;
      rec.max_accepted = msg.accepted_ballot;
      rec.children = msg.accepted_children;
    }
    merge_promise_state(rec, msg.state);
    if (rec.promises.size() >= rec.parent.members.size() / 2 + 1) {
      if (!rec.adopted) rec.children = rec.proposed;
      rec.stage = Reconfig::Stage::kAccept;
      for (const auto& m : rec.parent.members) {
        trigger(make_event<ViewAcceptMsg>(self_.addr, m.addr, rec.parent.lo, rec.parent.hi,
                                          rec.target, rec.ballot, rec.children),
                network_);
      }
    }
  });

  subscribe<ViewAcceptedMsg>(network_, [this](const ViewAcceptedMsg& msg) {
    auto it = reconfigs_.find(msg.range_hi);
    if (it == reconfigs_.end()) return;
    Reconfig& rec = it->second;
    if (rec.target != msg.target || !(rec.ballot == msg.ballot) ||
        rec.stage != Reconfig::Stage::kAccept) {
      return;
    }
    if (!msg.ok) {
      rec.highest_rejection = std::max(rec.highest_rejection, rec.ballot.round);
      return;
    }
    if (!rec.parent.has_member(msg.source())) return;
    if (!note_address(rec.accepts, msg.source())) return;
    if (rec.accepts.size() >= rec.parent.members.size() / 2 + 1) {
      // Decided: the children replace the parent. Activate them by shipping
      // installs (with the max-tag state merged from the promise dumps) to
      // every child member; retransmitted each tick until all ack.
      rec.stage = Reconfig::Stage::kInstall;
      ++counters_.reconfigs_decided;
      send_installs(rec);
    }
  });

  // ---- view installation & catch-up ----------------------------------------

  subscribe<ViewInstallMsg>(network_, [this](const ViewInstallMsg& msg) {
    install_view(msg.child, msg.state);
    trigger(make_event<ViewInstallAckMsg>(self_.addr, msg.source(), msg.parent_hi, msg.child.hi,
                                          msg.child.version),
            network_);
  });

  subscribe<ViewInstallAckMsg>(network_, [this](const ViewInstallAckMsg& msg) {
    auto it = reconfigs_.find(msg.parent_hi);
    if (it == reconfigs_.end() || it->second.stage != Reconfig::Stage::kInstall) return;
    Reconfig& rec = it->second;
    const auto child = std::find_if(rec.children.begin(), rec.children.end(),
                                    [&](const GroupView& c) {
                                      return c.hi == msg.child_hi && c.version == msg.version;
                                    });
    if (child == rec.children.end()) return;
    note_address(rec.install_acks[msg.child_hi], msg.source());
    for (const auto& c : rec.children) {
      auto acked = rec.install_acks.find(c.hi);
      const std::size_t got = acked == rec.install_acks.end() ? 0 : acked->second.size();
      if (got < install_recipients(rec, c).size()) return;
    }
    reconfigs_.erase(it);  // every old and new member holds the view
  });

  subscribe<ViewFetchMsg>(network_, [this](const ViewFetchMsg& msg) {
    for (const auto& [hi, r] : ranges_) {
      const bool overlaps =
          in_interval_oc(msg.lo, msg.hi, r.view.hi) || r.view.covers(msg.hi);
      if (!overlaps) continue;
      trigger(make_event<ViewInstallMsg>(self_.addr, msg.source(), r.view.hi, r.view,
                                         dump_range(r.view.lo, r.view.hi)),
              network_);
    }
  });

  // ---- ring & timers -------------------------------------------------------

  subscribe<RingView>(ring_, [this](const RingView& v) {
    ring_view_received_ = true;
    self_ = v.self;
    sole_member_ = v.sole_member;
    has_pred_ = v.has_predecessor;
    pred_ = v.predecessor;
    succs_ = v.successors;
    ring_epoch_ = std::max(ring_epoch_, v.epoch);
    evaluate_reconfigurations();
  });

  subscribe<ReconfigTick>(timer_, [this](const ReconfigTick&) { evaluate_reconfigurations(); });

  subscribe<OpTimeout>(timer_, [this](const OpTimeout& t) {
    auto it = ops_.find(t.op);
    if (it == ops_.end() || it->second.attempt != t.attempt) return;  // stale/canceled
    retry_or_fail(t.op);
  });

  subscribe<StatusRequest>(status_, [this](const StatusRequest& req) {
    std::map<std::string, std::string> fields;
    fields["store_size"] = std::to_string(store_.size());
    fields["ops_inflight"] = std::to_string(ops_.size());
    fields["puts_ok"] = std::to_string(counters_.puts_ok);
    fields["gets_ok"] = std::to_string(counters_.gets_ok);
    fields["ops_failed"] = std::to_string(counters_.ops_failed);
    fields["retries"] = std::to_string(counters_.retries);
    fields["ranges_held"] = std::to_string(ranges_.size());
    fields["views_installed"] = std::to_string(counters_.views_installed);
    fields["view_fences"] = std::to_string(counters_.view_fences);
    fields["view_fetches"] = std::to_string(counters_.view_fetches);
    fields["reconfigs_proposed"] = std::to_string(counters_.reconfigs_proposed);
    fields["reconfigs_decided"] = std::to_string(counters_.reconfigs_decided);
    fields["stale_view_nacks"] = std::to_string(counters_.stale_view_nacks);
    fields["fast_retries"] = std::to_string(counters_.fast_retries);
    fields["stale_view_acks_dropped"] = std::to_string(counters_.stale_view_acks_dropped);
    trigger(make_event<StatusResponse>(req.id, "ConsistentABD", std::move(fields)), status_);
  });
}

// ---- op state machine ------------------------------------------------------

void ConsistentABD::start_op(OpId internal, Op op) {
  auto [it, inserted] = ops_.emplace(internal, std::move(op));
  begin_lookup(internal, it->second);
}

void ConsistentABD::begin_lookup(OpId internal, Op& op) {
  op.phase = Phase::kLookup;
  op.acked.clear();
  op.nacked.clear();
  op.max_tag = VersionTag{};
  op.max_exists = false;
  op.max_value.clear();
  auto timeout = timing::schedule<OpTimeout>(params_.op_timeout_ms, internal, op.attempt);
  op.timeout_id = timeout->timeout_id();
  trigger(timeout, timer_);
  trigger(make_event<LookupRequest>(wire_id(internal, op.attempt), op.key,
                                    params_.replication_degree),
          router_);
}

void ConsistentABD::begin_read_phase(OpId internal, Op& op) {
  op.phase = Phase::kRead;
  op.acked.clear();
  op.nacked.clear();
  for (const auto& n : op.group) {
    trigger(make_event<AbdReadMsg>(self_.addr, n.addr, wire_id(internal, op.attempt), op.key,
                                   op.view),
            network_);
  }
}

void ConsistentABD::begin_write_phase(OpId internal, Op& op) {
  op.phase = Phase::kWrite;
  op.acked.clear();
  op.nacked.clear();
  VersionTag tag;
  bool exists;
  const Value* value;
  if (op.type == OpType::kPut) {
    if (!op.tag_chosen) {
      // Writer tiebreak must be unique per *operation*: one node can run
      // concurrent puts for the same key, and if both picked (c+1, node_key)
      // the replicas would disagree about the value stored under one tag — a
      // real linearizability violation found by the history checker. Mixing
      // the internal op id in keeps tags totally ordered and (with
      // overwhelming probability) collision-free across writers.
      op.chosen_tag = VersionTag{op.max_tag.counter + 1, derive_seed(self_.key, internal)};
      op.tag_chosen = true;
    }
    tag = op.chosen_tag;
    exists = true;
    value = &op.put_value;
  } else {
    tag = op.max_tag;
    exists = op.max_exists;
    value = &op.max_value;
  }
  for (const auto& n : op.group) {
    trigger(make_event<AbdWriteMsg>(self_.addr, n.addr, wire_id(internal, op.attempt), op.key,
                                    op.view, tag, exists, *value),
            network_);
  }
}

void ConsistentABD::finish_op(OpId internal, Op& op, bool ok) {
  trigger(make_event<timing::CancelTimeout>(op.timeout_id), timer_);
  if (op.type == OpType::kPut) {
    if (ok) {
      ++counters_.puts_ok;
    } else {
      ++counters_.ops_failed;
    }
    trigger(make_event<PutResponse>(op.client_id, op.key, ok), putget_);
  } else {
    if (ok) {
      ++counters_.gets_ok;
    } else {
      ++counters_.ops_failed;
    }
    trigger(make_event<GetResponse>(op.client_id, op.key, ok, op.max_exists, op.max_value),
            putget_);
  }
  ops_.erase(internal);
}

void ConsistentABD::retry_or_fail(OpId internal) {
  auto it = ops_.find(internal);
  if (it == ops_.end()) return;  // completed already
  Op& op = it->second;
  if (op.retries_left > 0) {
    --op.retries_left;
    ++op.attempt;
    ++counters_.retries;
    begin_lookup(internal, op);  // fresh group lookup, fresh quorum rounds
    return;
  }
  switch (op.phase) {
    case Phase::kLookup:
      ++counters_.failed_in_lookup;
      break;
    case Phase::kRead:
      ++counters_.failed_in_read;
      break;
    case Phase::kWrite:
      ++counters_.failed_in_write;
      break;
  }
  finish_op(internal, op, false);
}

bool ConsistentABD::note_address(std::vector<Address>& v, const Address& a) {
  if (std::find(v.begin(), v.end(), a) != v.end()) return false;
  v.push_back(a);
  return true;
}

void ConsistentABD::note_mixed_view_ack(OpId internal, const Op& op, std::uint64_t ack_view) {
  if (recorded_violations_.size() >= 64) return;  // bounded; first hits matter
  recorded_violations_.push_back(
      "abd: op " + std::to_string(internal) + " (key " + std::to_string(op.key) +
      ") counted an ack under view v" + std::to_string(ack_view) +
      " but was coordinated under v" + std::to_string(op.view) +
      " — quorum mixes replica views");
}

std::vector<std::string> ConsistentABD::invariant_violations() const {
  std::vector<std::string> out = recorded_violations_;
  // Installed views must partition the key space: every range's own hi key
  // must be covered by no other installed range (overlap means two replica
  // groups both believe they own a key — the divergence precondition).
  for (const auto& [hi, r] : ranges_) {
    for (const auto& [other_hi, other] : ranges_) {
      if (other_hi != hi && other.view.covers(hi) && r.view.covers(other_hi)) {
        out.push_back("abd: installed views overlap: (" + std::to_string(r.view.lo) + ", " +
                      std::to_string(hi) + "]@v" + std::to_string(r.view.version) + " and (" +
                      std::to_string(other.view.lo) + ", " + std::to_string(other_hi) + "]@v" +
                      std::to_string(other.view.version));
      }
    }
  }
  // No in-flight op may hold more (deduplicated) acks than its group has
  // members, and its quorum must be a majority of that group.
  for (const auto& [id, op] : ops_) {
    if (!op.group.empty() && op.acked.size() > op.group.size()) {
      out.push_back("abd: op " + std::to_string(id) + " holds " +
                    std::to_string(op.acked.size()) + " acks from a group of " +
                    std::to_string(op.group.size()));
    }
    if (!op.group.empty() && op.quorum != op.group.size() / 2 + 1) {
      out.push_back("abd: op " + std::to_string(id) + " quorum " + std::to_string(op.quorum) +
                    " is not a majority of its group of " + std::to_string(op.group.size()));
    }
  }
  return out;
}

void ConsistentABD::replica_nack(const Address& to, OpId op, RingKey key) {
  ++counters_.stale_view_nacks;
  const RangeState* r = covering_range(key);
  trigger(make_event<AbdNackMsg>(self_.addr, to, op, key, r == nullptr ? 0 : r->view.version),
          network_);
}

// ---- view manager ----------------------------------------------------------

bool ConsistentABD::ring_responsible_for(RingKey key) const {
  if (!ring_view_received_) return false;
  if (has_pred_) return in_interval_oc(pred_.key, self_.key, key);
  return sole_member_;
}

const ConsistentABD::RangeState* ConsistentABD::covering_range(RingKey key) const {
  const RangeState* best = nullptr;
  for (const auto& [hi, r] : ranges_) {
    if (!r.view.covers(key)) continue;
    if (best == nullptr || best->view.version < r.view.version) best = &r;
  }
  return best;
}

std::optional<GroupView> ConsistentABD::view_covering(RingKey key) const {
  const RangeState* r = covering_range(key);
  if (r == nullptr) return std::nullopt;
  return r->view;
}

std::vector<KeyState> ConsistentABD::dump_range(RingKey lo, RingKey hi) const {
  std::vector<KeyState> out;
  for (const auto& [k, rep] : store_) {
    if (rep.exists && in_interval_oc(lo, hi, k)) out.push_back(KeyState{k, rep.tag, rep.value});
  }
  return out;
}

std::vector<NodeRef> ConsistentABD::group_headed_by(const NodeRef& head) const {
  std::vector<NodeRef> g{head};
  auto push = [this, &g](const NodeRef& n) {
    if (g.size() >= params_.replication_degree) return;
    const bool dup = std::any_of(g.begin(), g.end(),
                                 [&n](const NodeRef& m) { return m.addr == n.addr; });
    if (!dup) g.push_back(n);
  };
  push(self_);
  for (const auto& s : succs_) push(s);
  return g;
}

bool ConsistentABD::same_member_set(const std::vector<NodeRef>& a,
                                    const std::vector<NodeRef>& b) {
  if (a.size() != b.size()) return false;
  for (const auto& n : a) {
    const bool found = std::any_of(b.begin(), b.end(),
                                   [&n](const NodeRef& m) { return m.addr == n.addr; });
    if (!found) return false;
  }
  return true;
}

std::uint64_t ConsistentABD::next_ballot_round(const Reconfig* prev) const {
  std::uint64_t round = ring_epoch_ > 0 ? ring_epoch_ : 1;
  if (prev != nullptr) {
    round = std::max(round, std::max(prev->ballot.round, prev->highest_rejection) + 1);
  }
  return round;
}

void ConsistentABD::install_view(const GroupView& view, const std::vector<KeyState>& state) {
  auto have = ranges_.find(view.hi);
  if (have != ranges_.end() && have->second.view.version >= view.version) return;
  // Merge the transferred state by max tag: never regress a replica.
  for (const auto& ks : state) {
    Replica& rep = store_[ks.key];
    if (!rep.exists || rep.tag < ks.tag) {
      rep.tag = ks.tag;
      rep.exists = true;
      rep.value = ks.value;
    }
  }
  // Drop every older range this view supersedes: the same hi (member change)
  // or a parent that covered this child's interval before a split. GC the
  // consensus slots and proposals that belonged to the superseded ranges.
  for (auto it = ranges_.begin(); it != ranges_.end();) {
    if (it->second.view.version < view.version && it->second.view.covers(view.hi)) {
      const RingKey hi = it->first;
      for (auto s = slots_.begin(); s != slots_.end();) {
        s = (s->first.first == hi && s->first.second <= view.version) ? slots_.erase(s)
                                                                      : std::next(s);
      }
      auto rc = reconfigs_.find(hi);
      if (rc != reconfigs_.end() && rc->second.target < view.version) reconfigs_.erase(rc);
      it = ranges_.erase(it);
    } else {
      ++it;
    }
  }
  ranges_[view.hi] = RangeState{view, /*fenced=*/false};
  ++counters_.views_installed;
  trigger(make_event<ViewUpdate>(view), views_);
}

void ConsistentABD::evaluate_reconfigurations() {
  if (!ring_view_received_) return;
  // Genesis: the first node of a fresh ring installs the full-circle view
  // unilaterally — there is no old view to fence.
  if (sole_member_ && ranges_.empty()) {
    install_view(GroupView{self_.key, self_.key, 1, {self_}}, {});
    return;
  }
  // Catch-up: ring-responsible for our own key but no installed view covers
  // it — e.g. a healed boundary node whose old group evicted it while it was
  // partitioned away. Pull copies from a successor (a replica of our
  // ranges); once installed, the member-change path below re-proposes us in.
  if (has_pred_ && covering_range(self_.key) == nullptr && !succs_.empty()) {
    const NodeRef& target = succs_[fetch_attempts_++ % succs_.size()];
    ++counters_.view_fetches;
    trigger(make_event<ViewFetchMsg>(self_.addr, target.addr, pred_.key, self_.key), network_);
  }
  // Drop proposals for ranges the ring no longer makes us responsible for.
  for (auto it = reconfigs_.begin(); it != reconfigs_.end();) {
    it = !ring_responsible_for(it->first) ? reconfigs_.erase(it) : std::next(it);
  }
  std::vector<RingKey> held;
  for (const auto& [hi, r] : ranges_) held.push_back(hi);
  for (RingKey hi : held) {
    auto rit = ranges_.find(hi);
    if (rit == ranges_.end() || !ring_responsible_for(hi)) continue;
    const GroupView& cur = rit->second.view;
    auto rc = reconfigs_.find(hi);
    // A decided reconfiguration keeps retransmitting installs until every
    // child member acked — even after our own install replaced the range.
    if (rc != reconfigs_.end() && rc->second.stage == Reconfig::Stage::kInstall) {
      if (now() - rc->second.last_driven >= params_.view_reconfig_period_ms) {
        send_installs(rc->second);
        rc->second.last_driven = now();
      }
      continue;
    }
    const std::uint64_t target = cur.version + 1;
    std::vector<GroupView> want;
    if (has_pred_ && in_interval_oo(cur.lo, cur.hi, pred_.key)) {
      // A node joined inside the range: split at the predecessor. The
      // predecessor heads the lower child; we keep the upper.
      want.push_back(GroupView{cur.lo, pred_.key, target, group_headed_by(pred_)});
      want.push_back(GroupView{pred_.key, cur.hi, target, group_headed_by(self_)});
    } else {
      std::vector<NodeRef> desired = group_headed_by(self_);
      if (same_member_set(desired, cur.members)) {
        if (rc != reconfigs_.end()) {
          // The ring flapped back to the current membership while a proposal
          // is in flight. Its Prepare may already have fenced acceptors, so
          // abandoning it would leave the range fenced with nobody driving
          // the decision that unfences it (observed as second-long
          // unavailability windows under failure-detector flapping). Keep
          // driving the existing goal to a decision; if the ring still
          // disagrees with the decided view afterwards, the next evaluation
          // proposes a correction.
          want = rc->second.proposed;
        } else if (rit->second.fenced &&
                   now() - rit->second.fenced_at >= params_.view_reconfig_period_ms) {
          // Fenced for a whole reconfiguration round with no local proposal:
          // a remote proposal stalled, or it decided and the install that
          // would supersede this range never reached us. Re-propose the
          // current membership at the next version — Paxos' adopt rule
          // completes the remote decision if any acceptor accepted one, and
          // either way the resulting install unfences the range.
          want.push_back(GroupView{cur.lo, cur.hi, target, std::move(desired)});
        } else {
          continue;  // view matches the ring; nothing to do
        }
      } else {
        want.push_back(GroupView{cur.lo, cur.hi, target, std::move(desired)});
      }
    }
    const bool same_goal =
        rc != reconfigs_.end() && rc->second.target == target &&
        rc->second.proposed.size() == want.size() &&
        std::equal(want.begin(), want.end(), rc->second.proposed.begin(),
                   [](const GroupView& a, const GroupView& b) {
                     return a.lo == b.lo && a.hi == b.hi && same_member_set(a.members, b.members);
                   });
    if (same_goal && now() - rc->second.last_driven < params_.view_reconfig_period_ms) {
      continue;  // in flight; give it a tick before bumping the ballot
    }
    Reconfig fresh;
    fresh.target = target;
    fresh.parent = cur;
    fresh.proposed = std::move(want);
    if (rc != reconfigs_.end()) fresh.highest_rejection = rc->second.highest_rejection;
    fresh.ballot = Ballot{next_ballot_round(rc == reconfigs_.end() ? nullptr : &rc->second),
                          self_.key};
    reconfigs_[hi] = std::move(fresh);
    drive_reconfig(reconfigs_[hi]);
  }
}

void ConsistentABD::drive_reconfig(Reconfig& rec) {
  ++counters_.reconfigs_proposed;
  rec.last_driven = now();
  for (const auto& m : rec.parent.members) {
    trigger(make_event<ViewPrepareMsg>(self_.addr, m.addr, rec.parent.lo, rec.parent.hi,
                                       rec.target, rec.ballot),
            network_);
  }
}

std::vector<NodeRef> ConsistentABD::install_recipients(const Reconfig& rec,
                                                       const GroupView& child) const {
  std::vector<NodeRef> recipients = child.members;
  for (const auto& m : rec.parent.members) {
    const bool present = std::any_of(recipients.begin(), recipients.end(),
                                     [&](const NodeRef& n) { return n.addr == m.addr; });
    if (!present) recipients.push_back(m);
  }
  return recipients;
}

void ConsistentABD::send_installs(Reconfig& rec) {
  for (const auto& child : rec.children) {
    std::vector<KeyState> state;
    for (const auto& [k, rep] : rec.merged_state) {
      if (rep.exists && in_interval_oc(child.lo, child.hi, k)) {
        state.push_back(KeyState{k, rep.tag, rep.value});
      }
    }
    // Installs go to the old members too, not just the new ones: a member
    // evicted by this decision is fenced (it promised the decree) and stays
    // unavailable until it learns the view that superseded its own.
    for (const auto& m : install_recipients(rec, child)) {
      const auto acked = rec.install_acks.find(child.hi);
      const bool has_acked =
          acked != rec.install_acks.end() &&
          std::find(acked->second.begin(), acked->second.end(), m.addr) != acked->second.end();
      if (has_acked) continue;
      trigger(make_event<ViewInstallMsg>(self_.addr, m.addr, rec.parent.hi, child, state),
              network_);
    }
  }
}

void ConsistentABD::merge_promise_state(Reconfig& rec, const std::vector<KeyState>& state) {
  for (const auto& ks : state) {
    Replica& rep = rec.merged_state[ks.key];
    if (!rep.exists || rep.tag < ks.tag) {
      rep.tag = ks.tag;
      rep.exists = true;
      rep.value = ks.value;
    }
  }
}

}  // namespace kompics::cats
