#pragma once

// CatsClient (Fig. 10): the application-facing component that issues
// functional requests over a PutGet port. Exposes a small callback API so
// examples, stress tests, and benchmarks can drive a node without writing
// their own component.

#include <functional>
#include <mutex>
#include <unordered_map>

#include "cats/ports.hpp"
#include "kompics/component.hpp"
#include "kompics/kompics.hpp"

namespace kompics::cats {

class CatsClient : public ComponentDefinition {
 public:
  using PutCallback = std::function<void(bool ok)>;
  using GetCallback = std::function<void(bool ok, bool found, const Value& value)>;

  CatsClient() {
    subscribe<PutResponse>(putget_, [this](const PutResponse& resp) {
      PutCallback cb;
      {
        std::lock_guard<std::mutex> g(mu_);
        auto it = puts_.find(resp.id);
        if (it == puts_.end()) return;
        cb = std::move(it->second);
        puts_.erase(it);
        ++completed_;
      }
      if (cb) cb(resp.ok);
    });
    subscribe<GetResponse>(putget_, [this](const GetResponse& resp) {
      GetCallback cb;
      {
        std::lock_guard<std::mutex> g(mu_);
        auto it = gets_.find(resp.id);
        if (it == gets_.end()) return;
        cb = std::move(it->second);
        gets_.erase(it);
        ++completed_;
      }
      if (cb) cb(resp.ok, resp.found, resp.value);
    });
  }

  /// Thread-safe: may be called from any thread (examples drive it from
  /// main; benches from load generators).
  OpId put(RingKey key, Value value, PutCallback cb = nullptr) {
    OpId id;
    {
      std::lock_guard<std::mutex> g(mu_);
      id = next_++;
      puts_[id] = std::move(cb);
    }
    trigger(make_event<PutRequest>(id, key, std::move(value)), putget_);
    return id;
  }

  OpId get(RingKey key, GetCallback cb = nullptr) {
    OpId id;
    {
      std::lock_guard<std::mutex> g(mu_);
      id = next_++;
      gets_[id] = std::move(cb);
    }
    trigger(make_event<GetRequest>(id, key), putget_);
    return id;
  }

  std::uint64_t completed() const {
    std::lock_guard<std::mutex> g(mu_);
    return completed_;
  }
  std::size_t outstanding() const {
    std::lock_guard<std::mutex> g(mu_);
    return puts_.size() + gets_.size();
  }

 private:
  Positive<PutGet> putget_ = require<PutGet>();

  mutable std::mutex mu_;
  OpId next_ = 1;
  std::uint64_t completed_ = 0;
  std::unordered_map<OpId, PutCallback> puts_;
  std::unordered_map<OpId, GetCallback> gets_;
};

}  // namespace kompics::cats
