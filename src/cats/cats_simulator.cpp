#include "cats/cats_simulator.hpp"

#include <stdexcept>

namespace kompics::cats {

using sim::NetworkEmulator;
using sim::SimTimer;

CatsSimulator::CatsSimulator(sim::SimulatorCore* core, sim::SimNetworkHubPtr hub,
                             CatsParams params)
    : core_(core), hub_(std::move(hub)), params_(params) {
  register_cats_serializers();

  // The shared bootstrap server runs as its own simulated "machine".
  boot_emulator_ = create<NetworkEmulator>();
  trigger(make_event<NetworkEmulator::Init>(boot_addr_, hub_), boot_emulator_.control());
  boot_timer_ = create<SimTimer>();
  trigger(make_event<SimTimer::Init>(core_), boot_timer_.control());
  boot_server_ = create<BootstrapServer>();
  trigger(make_event<BootstrapServer::Init>(boot_addr_, params_), boot_server_.control());
  connect(boot_server_.required<net::Network>(), boot_emulator_.provided<net::Network>());
  connect(boot_server_.required<timing::Timer>(), boot_timer_.provided<timing::Timer>());

  subscribe<ExpJoin>(experiment_, [this](const ExpJoin& e) { join(e.node_id); });
  subscribe<ExpFail>(experiment_, [this](const ExpFail& e) { fail(e.node_id); });
  subscribe<ExpPut>(experiment_, [this](const ExpPut& e) { put(e.node_id, e.key, e.value); });
  subscribe<ExpGet>(experiment_, [this](const ExpGet& e) { get(e.node_id, e.key); });
  subscribe<ExpLookup>(experiment_, [this](const ExpLookup& e) { lookup(e.node_id, e.key); });
}

void CatsSimulator::join(std::uint64_t node_id) {
  if (nodes_.count(node_id) != 0) return;  // scenario generated a duplicate id
  NodeHandle h;
  h.ref = NodeRef{node_ring_key(node_id), addr_of(node_id)};

  h.emulator = create<NetworkEmulator>();
  trigger(make_event<NetworkEmulator::Init>(h.ref.addr, hub_), h.emulator.control());
  h.timer = create<SimTimer>();
  trigger(make_event<SimTimer::Init>(core_), h.timer.control());
  h.node = create<CatsNode>(h.ref, boot_addr_, Address{}, params_);

  connect(h.node.required<net::Network>(), h.emulator.provided<net::Network>());
  connect(h.node.required<timing::Timer>(), h.timer.provided<timing::Timer>());

  // Record put/get responses flowing out of this node's PutGet port.
  subscribe<PutResponse>(h.node.provided<PutGet>(), [this](const PutResponse& resp) {
    auto it = inflight_.find(resp.id);
    if (it == inflight_.end()) return;
    OpRecord& rec = history_[it->second];
    rec.responded = now();
    rec.ok = resp.ok;
    inflight_.erase(it);
  });
  subscribe<GetResponse>(h.node.provided<PutGet>(), [this](const GetResponse& resp) {
    auto it = inflight_.find(resp.id);
    if (it == inflight_.end()) return;
    OpRecord& rec = history_[it->second];
    rec.responded = now();
    rec.ok = resp.ok;
    rec.found = resp.found;
    rec.got_value = resp.value;
    inflight_.erase(it);
  });

  // Dynamically created children start passive: activate the subtree.
  trigger(make_event<Start>(), h.emulator.control());
  trigger(make_event<Start>(), h.timer.control());
  trigger(make_event<Start>(), h.node.control());

  nodes_.emplace(node_id, std::move(h));
}

void CatsSimulator::fail(std::uint64_t node_id) {
  auto it = nodes_.find(node_id);
  if (it == nodes_.end()) return;
  // Crash semantics: unhook from the network first so no further delivery
  // reaches the dying subtree, then tear it down (§2.6 dynamic destroy).
  hub_->detach(it->second.ref.addr);
  destroy(it->second.emulator);
  destroy(it->second.timer);
  destroy(it->second.node);
  nodes_.erase(it);
}

std::optional<std::size_t> CatsSimulator::put(std::uint64_t node_id, RingKey key, Value value) {
  auto it = nodes_.find(node_id);
  if (it == nodes_.end()) return std::nullopt;
  OpRecord rec;
  rec.kind = OpRecord::Kind::kPut;
  rec.node_id = node_id;
  rec.key = key;
  rec.put_value = value;
  rec.invoked = now();
  history_.push_back(std::move(rec));
  const OpId id = next_client_op_++;
  inflight_[id] = history_.size() - 1;
  trigger(make_event<PutRequest>(id, key, std::move(value)), it->second.node.provided<PutGet>());
  return history_.size() - 1;
}

std::optional<std::size_t> CatsSimulator::get(std::uint64_t node_id, RingKey key) {
  auto it = nodes_.find(node_id);
  if (it == nodes_.end()) return std::nullopt;
  OpRecord rec;
  rec.kind = OpRecord::Kind::kGet;
  rec.node_id = node_id;
  rec.key = key;
  rec.invoked = now();
  history_.push_back(std::move(rec));
  const OpId id = next_client_op_++;
  inflight_[id] = history_.size() - 1;
  trigger(make_event<GetRequest>(id, key), it->second.node.provided<PutGet>());
  return history_.size() - 1;
}

std::vector<std::uint64_t> CatsSimulator::alive_ids() const {
  std::vector<std::uint64_t> out;
  out.reserve(nodes_.size());
  for (const auto& [id, h] : nodes_) out.push_back(id);
  return out;
}

CatsNode& CatsSimulator::node(std::uint64_t node_id) {
  auto it = nodes_.find(node_id);
  if (it == nodes_.end()) throw std::out_of_range("no such node");
  return it->second.node.definition_as<CatsNode>();
}

std::size_t CatsSimulator::ready_count() const {
  std::size_t n = 0;
  for (const auto& [id, h] : nodes_) {
    if (h.node.definition_as<CatsNode>().ready()) ++n;
  }
  return n;
}

sim::SimTimer& CatsSimulator::node_timer(std::uint64_t node_id) {
  auto it = nodes_.find(node_id);
  if (it == nodes_.end()) throw std::out_of_range("no such node");
  return it->second.timer.definition_as<sim::SimTimer>();
}

std::vector<std::string> CatsSimulator::invariant_violations() const {
  std::vector<std::string> out;
  for (const auto& [id, h] : nodes_) {
    const CatsNode& n = h.node.definition_as<CatsNode>();
    auto collect = [&](const std::vector<std::string>& vs) {
      for (const std::string& v : vs) out.push_back("node " + std::to_string(id) + ": " + v);
    };
    collect(n.abd.definition_as<ConsistentABD>().invariant_violations());
    collect(n.ring.definition_as<CatsRing>().invariant_violations());
    collect(n.router.definition_as<OneHopRouter>().invariant_violations());
  }
  return out;
}

std::optional<std::uint64_t> CatsSimulator::random_alive() {
  if (nodes_.empty()) return std::nullopt;
  const std::uint64_t idx = rng().next_below(nodes_.size());
  auto it = nodes_.begin();
  std::advance(it, static_cast<long>(idx));
  return it->first;
}

}  // namespace kompics::cats
