#include "cats/linearizability.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <unordered_set>

namespace kompics::cats {

namespace {

constexpr std::int64_t kInf = std::numeric_limits<std::int64_t>::max();

struct Checker {
  std::vector<LinOp> ops;
  std::vector<std::uint64_t> mask;  // chosen set
  std::unordered_set<std::string> visited;
  std::size_t mandatory_total = 0;
  std::size_t mandatory_chosen = 0;
  std::size_t max_states = 0;
  bool budget_exceeded = false;

  bool chosen(std::size_t i) const { return (mask[i / 64] >> (i % 64)) & 1u; }
  void set(std::size_t i) { mask[i / 64] |= 1ull << (i % 64); }
  void clear(std::size_t i) { mask[i / 64] &= ~(1ull << (i % 64)); }

  static std::int64_t response_of(const LinOp& o) {
    return (o.responded < 0 || o.optional) ? kInf : o.responded;
  }

  std::string memo_key(const std::optional<std::uint32_t>& value) const {
    std::string k;
    k.reserve(mask.size() * 8 + 5);
    for (std::uint64_t w : mask) k.append(reinterpret_cast<const char*>(&w), 8);
    const std::uint32_t v = value ? *value + 1 : 0;
    k.append(reinterpret_cast<const char*>(&v), 4);
    return k;
  }

  bool search(const std::optional<std::uint32_t>& value) {
    if (mandatory_chosen == mandatory_total) return true;  // optionals may be dropped
    if (visited.size() >= max_states) {
      budget_exceeded = true;
      return false;
    }
    if (!visited.insert(memo_key(value)).second) return false;

    // An operation may be linearized next only if its invocation precedes
    // every unchosen operation's response (otherwise some completed op
    // would be ordered after an op that started after it finished).
    std::int64_t min_response = kInf;
    for (std::size_t i = 0; i < ops.size(); ++i) {
      if (!chosen(i)) min_response = std::min(min_response, response_of(ops[i]));
    }

    // Sound greedy rule: a candidate Get that reads the current value can
    // always be linearized immediately. Gets do not change the register,
    // and candidacy (invoked <= min unchosen response) already guarantees
    // that no unchosen operation is real-time-ordered before it, so moving
    // it to the front preserves any valid linearization of the rest. This
    // collapses the dominant branching factor in read-heavy histories.
    for (std::size_t i = 0; i < ops.size(); ++i) {
      if (chosen(i) || ops[i].invoked > min_response) continue;
      const LinOp& o = ops[i];
      if (!o.is_put && !o.optional && o.value == value) {
        set(i);
        ++mandatory_chosen;
        const bool ok = search(value);
        --mandatory_chosen;
        clear(i);
        return ok;
      }
    }
    for (std::size_t i = 0; i < ops.size(); ++i) {
      if (chosen(i) || ops[i].invoked > min_response) continue;
      const LinOp& o = ops[i];
      if (!o.is_put && o.value != value) continue;  // Get must read current value
      set(i);
      if (!o.optional) ++mandatory_chosen;
      const bool ok = search(o.is_put ? o.value : value);
      if (!o.optional) --mandatory_chosen;
      clear(i);
      if (ok) return true;
    }
    return false;
  }
};

}  // namespace

LinResult check_register_history(std::vector<LinOp> ops, std::size_t max_states) {
  Checker c;
  c.ops = std::move(ops);
  c.mask.assign((c.ops.size() + 63) / 64, 0);
  c.max_states = max_states;
  for (const auto& o : c.ops) c.mandatory_total += o.optional ? 0 : 1;
  LinResult r;
  r.linearizable = c.search(std::nullopt);
  r.states = c.visited.size();
  r.budget_exceeded = c.budget_exceeded;
  if (!r.linearizable) {
    r.explanation = c.budget_exceeded
                        ? "search budget exceeded (inconclusive)"
                        : "no valid linearization order exists for " +
                              std::to_string(c.ops.size()) + " operations";
  }
  return r;
}

LinResult check_history(const std::vector<OpRecord>& history) {
  // Intern values and split the history per key (registers are independent).
  std::map<RingKey, std::vector<LinOp>> per_key;
  std::map<Value, std::uint32_t> value_ids;
  auto intern = [&value_ids](const Value& v) {
    auto [it, inserted] = value_ids.emplace(v, static_cast<std::uint32_t>(value_ids.size()));
    return it->second;
  };

  for (const auto& rec : history) {
    LinOp op;
    op.invoked = rec.invoked;
    op.responded = rec.responded;
    if (rec.kind == OpRecord::Kind::kPut) {
      op.is_put = true;
      op.value = intern(rec.put_value);
      // A put that failed or never answered may still have reached a
      // quorum: it is optional in the linearization.
      op.optional = rec.responded < 0 || !rec.ok;
    } else {
      if (rec.responded < 0 || !rec.ok) continue;  // unanswered reads constrain nothing
      op.is_put = false;
      if (rec.found) op.value = intern(rec.got_value);
    }
    per_key[rec.key].push_back(op);
  }

  for (auto& [key, ops] : per_key) {
    LinResult r = check_register_history(std::move(ops));
    if (!r.linearizable) {
      r.explanation += " (" + std::to_string(r.states) + " states)";
      r.explanation = "key " + ring_key_str(key) + ": " + r.explanation;
      return r;
    }
  }
  return LinResult{true, ""};
}

}  // namespace kompics::cats
