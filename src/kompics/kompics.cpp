#include "kompics.hpp"

#include <chrono>
#include <cstdio>
#include <thread>

#include "work_stealing_scheduler.hpp"

namespace kompics {

namespace detail {

namespace {
thread_local ComponentCore* tl_current_core = nullptr;
}  // namespace

CurrentCoreGuard::CurrentCoreGuard(ComponentCore* core) : previous_(tl_current_core) {
  tl_current_core = core;
}

CurrentCoreGuard::~CurrentCoreGuard() { tl_current_core = previous_; }

ComponentCore* current_core() { return tl_current_core; }

}  // namespace detail

Runtime::Runtime(Config config, std::unique_ptr<Scheduler> scheduler, std::unique_ptr<Clock> clock,
                 std::uint64_t seed)
    : config_(std::move(config)),
      scheduler_(std::move(scheduler)),
      clock_(std::move(clock)),
      seed_(seed) {
  // Deploy-time telemetry gates (paper §3: composition through config, not
  // code). Absent keys leave everything off — a zero-cost black box.
  telemetry_.enable_metrics(config_.get_or<bool>("telemetry.metrics", false));
  telemetry_.set_trace_sampling(config_.get_or<double>("telemetry.trace_sampling", 0.0));
  telemetry_.enable_flight_recorder(config_.get_or<bool>("telemetry.flight_recorder", false));
}

Runtime::~Runtime() {
  scheduler_->shutdown();
  if (root_.core() != nullptr) root_.core()->destroy_tree();
  root_ = Component{};
}

std::unique_ptr<Runtime> Runtime::threaded(Config config, std::size_t workers,
                                           std::uint64_t seed) {
  WorkStealingScheduler::Options opts;
  opts.workers = workers;
  return std::make_unique<Runtime>(std::move(config),
                                   std::make_unique<WorkStealingScheduler>(opts),
                                   std::make_unique<WallClock>(), seed);
}

void Runtime::shutdown() { scheduler_->shutdown(); }

void Runtime::await_quiescence() {
  while (!await_quiescence_for(3'600'000)) {
  }
}

bool Runtime::await_quiescence_for(DurationMs timeout) {
  using namespace std::chrono;
  // Fast path: a burst of work usually drains within microseconds, so a
  // bounded yield-spin resolves most waits without ever registering as a
  // waiter — which also keeps pending_sub() off its notify slow path. The
  // yields hand the CPU to the workers doing the draining.
  for (int i = 0; i < 256; ++i) {
    if (pending_.load(std::memory_order_acquire) == 0) return true;
    std::this_thread::yield();
  }
  const auto deadline = steady_clock::now() + milliseconds(timeout);
  waiters_.fetch_add(1, std::memory_order_acq_rel);
  std::unique_lock<std::mutex> lock(quiesce_mu_);
  const bool ok = quiesce_cv_.wait_until(lock, deadline, [this] {
    return pending_.load(std::memory_order_acquire) == 0;
  });
  waiters_.fetch_sub(1, std::memory_order_acq_rel);
  return ok;
}

void Runtime::pending_sub(std::int64_t k) {
  const std::int64_t now = pending_.fetch_sub(k, std::memory_order_acq_rel) - k;
  if (now == 0 && waiters_.load(std::memory_order_acquire) > 0) {
    std::lock_guard<std::mutex> g(quiesce_mu_);
    quiesce_cv_.notify_all();
  }
}

void Runtime::set_fault_policy(FaultPolicy policy) {
  std::lock_guard<std::mutex> g(fault_mu_);
  fault_policy_ = std::move(policy);
}

void Runtime::on_unhandled_fault(const Fault& fault) {
  faulted_.store(true, std::memory_order_release);
  FaultPolicy policy;
  {
    std::lock_guard<std::mutex> g(fault_mu_);
    policy = fault_policy_;
  }
  if (policy) {
    policy(fault);
    return;
  }
  // Paper §2.5: the system fault handler dumps the exception to standard
  // error and halts the execution. We mark the runtime faulted and stop
  // scheduling instead of aborting the whole process, so embedding
  // applications (and tests) can observe the failure.
  std::fprintf(stderr, "[kompics] unhandled fault in component %llu: %s\n",
               static_cast<unsigned long long>(fault.source() != nullptr ? fault.source()->id() : 0),
               fault.what().c_str());
  // When the flight recorder was on, escalate_fault captured the dispatch
  // history leading up to the fault — surface it with the report.
  const std::string dump = telemetry_.last_crash_dump();
  if (!dump.empty()) std::fprintf(stderr, "%s", dump.c_str());
  scheduler_->shutdown();
}

// The quiescence wait above observes pending_ without the producer holding
// quiesce_mu_; waiters re-check the predicate on every wakeup and
// pending_sub only notifies when the count reaches zero while a waiter is
// registered, so a waiter can block for at most one timeout slice spuriously.

}  // namespace kompics
