#pragma once

// Runtime configuration passed to every component (deploy-time composition,
// paper §3). A small typed key-value store: strings, integers, doubles,
// booleans. Components read configuration through their context instead of
// globals so the same component code runs under any runtime.

#include <cstdint>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <variant>

namespace kompics {

class Config {
 public:
  using Value = std::variant<std::string, std::int64_t, double, bool>;

  Config() = default;

  Config& set(std::string key, Value value) {
    values_[std::move(key)] = std::move(value);
    return *this;
  }

  bool contains(const std::string& key) const { return values_.count(key) != 0; }

  template <class T>
  std::optional<T> get(const std::string& key) const {
    auto it = values_.find(key);
    if (it == values_.end()) return std::nullopt;
    if (const T* v = std::get_if<T>(&it->second)) return *v;
    return std::nullopt;
  }

  template <class T>
  T get_or(const std::string& key, T fallback) const {
    if (auto v = get<T>(key)) return *v;
    return fallback;
  }

  template <class T>
  T require_value(const std::string& key) const {
    if (auto v = get<T>(key)) return *v;
    throw std::out_of_range("missing or mistyped config key: " + key);
  }

 private:
  std::map<std::string, Value> values_;
};

}  // namespace kompics
