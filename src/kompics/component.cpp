#include "component.hpp"

#include <algorithm>
#include <cassert>
#include <exception>

#include "kompics.hpp"
#include "telemetry.hpp"

namespace kompics {

ComponentCore::ComponentCore(Runtime* runtime, ComponentCore* parent, std::uint64_t id)
    : runtime_(runtime),
      parent_(parent),
      id_(id),
      name_("component-" + std::to_string(id)),
      rng_(derive_seed(runtime->seed(), id)) {
  control_ = std::make_unique<PortPair>(this, &port_type<ControlPort>(), /*provided=*/true);
  control_->inside->set_port_id(std::type_index(typeid(ControlPort)), true);
  control_->outside->set_port_id(std::type_index(typeid(ControlPort)), true);
}

ComponentCore::~ComponentCore() {
  // Coroutine protocol frames unwind first, while the FULL derived
  // definition still exists: frame locals may reference derived members,
  // which die before the base class's protocol_host_ would destroy the
  // frames on its own.
  if (definition_ != nullptr && definition_->protocol_host_ != nullptr) {
    definition_->protocol_host_->destroy_frames();
  }
  // Destroy the definition FIRST: definitions may own threads (TcpNetwork's
  // I/O loop, HttpServer's acceptor, ThreadTimer) that trigger into this
  // core's ports until their destructor joins them. Members are destroyed
  // in reverse declaration order, which would free the port pairs before
  // definition_ — a use-after-free for any still-running owned thread.
  definition_.reset();
  // No concurrency from here on: the definition's threads are joined and
  // the last shared_ptr just dropped, so no producer can reference us.
  drain_all_queues();
  delete telemetry_stats_.load(std::memory_order_acquire);
}

telemetry::ComponentStats& ComponentCore::telemetry_stats_mut() {
  telemetry::ComponentStats* st = telemetry_stats_.load(std::memory_order_relaxed);
  if (st == nullptr) {
    st = new telemetry::ComponentStats();
    telemetry_stats_.store(st, std::memory_order_release);  // publish to scrapers
  }
  return *st;
}

void ComponentCore::set_definition(std::unique_ptr<ComponentDefinition> def) {
  definition_ = std::move(def);
}

void ComponentCore::add_child(ComponentCorePtr child) {
  std::lock_guard<std::mutex> g(structure_mu_);
  children_.push_back(std::move(child));
}

void ComponentCore::remove_child(ComponentCore* child) {
  std::lock_guard<std::mutex> g(structure_mu_);
  children_.erase(std::remove_if(children_.begin(), children_.end(),
                                 [child](const ComponentCorePtr& c) { return c.get() == child; }),
                  children_.end());
}

std::vector<ComponentCorePtr> ComponentCore::children() const {
  std::lock_guard<std::mutex> g(structure_mu_);
  return children_;
}

PortPair* ComponentCore::declare_port(const PortType* type, std::type_index tid, bool provided) {
  std::lock_guard<std::mutex> g(structure_mu_);
  for (const auto& p : ports_) {
    if (p.tid == tid && p.provided == provided) {
      throw std::logic_error("port of this type and kind already declared on component " + name_);
    }
  }
  ports_.push_back(DeclaredPort{tid, provided, std::make_unique<PortPair>(this, type, provided)});
  PortPair* pair = ports_.back().pair.get();
  pair->inside->set_port_id(tid, provided);
  pair->outside->set_port_id(tid, provided);
  return pair;
}

std::vector<ComponentCore::PortInfo> ComponentCore::declared_ports() const {
  std::lock_guard<std::mutex> g(structure_mu_);
  std::vector<PortInfo> out;
  out.reserve(ports_.size());
  for (const auto& p : ports_) out.push_back(PortInfo{p.tid, p.provided, p.pair.get()});
  return out;
}

PortPair* ComponentCore::find_port(std::type_index tid, bool provided) const {
  std::lock_guard<std::mutex> g(structure_mu_);
  for (const auto& p : ports_) {
    if (p.tid == tid && p.provided == provided) return p.pair.get();
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

namespace {

// Global lock-free freelist recycling WorkItems between the threads that
// publish events and the workers that consume them. Without it every
// delivery pays a cross-thread malloc/free round-trip through the
// allocator's shared arena (the producer allocates, a worker frees).
//
// Treiber stack with a packed (pointer, tag) head word — same packing
// discipline as rcu.hpp: 8-byte-aligned pointers drop 3 low bits, leaving
// 19 bits of ABA tag below a 45-bit pointer field. A pop's window would
// need 2^19 interleaved operations for the tag to wrap back — not reachable
// in practice. Nodes are only returned to the allocator in the pool's
// destructor (after all runtime threads have joined), so the speculative
// `next` read in acquire() never touches freed memory.
class WorkItemPool {
 public:
  using WorkItem = ComponentCore::WorkItem;

  ~WorkItemPool() {
    WorkItem* it = unpack(head_.load(std::memory_order_acquire));
    while (it != nullptr) {
      WorkItem* next = it->next.load(std::memory_order_relaxed);
      delete it;
      it = next;
    }
  }

  WorkItem* acquire() {
    std::uint64_t head = head_.load(std::memory_order_acquire);
    for (;;) {
      WorkItem* top = unpack(head);
      if (top == nullptr) return new WorkItem{};
      // May read a stale value if another thread pops `top` first; the CAS
      // below fails in that case (the tag advanced) and we reload.
      WorkItem* next = top->next.load(std::memory_order_relaxed);
      if (head_.compare_exchange_weak(head, pack(next, tag(head) + 1),
                                      std::memory_order_acq_rel,
                                      std::memory_order_acquire)) {
        top->next.store(nullptr, std::memory_order_relaxed);
        return top;
      }
    }
  }

  void release(WorkItem* item) {
    if (item == nullptr) return;  // callers pass next_item()'s result as-is
    item->event.reset();
    item->half = nullptr;
    std::uint64_t head = head_.load(std::memory_order_relaxed);
    for (;;) {
      item->next.store(unpack(head), std::memory_order_relaxed);
      if (head_.compare_exchange_weak(head, pack(item, tag(head) + 1),
                                      std::memory_order_release,
                                      std::memory_order_relaxed)) {
        return;
      }
    }
  }

 private:
  static constexpr std::uint64_t kTagBits = 19;
  static constexpr std::uint64_t kTagMask = (1ULL << kTagBits) - 1;

  // The tag survives the empty state (pointer bits all zero): every push
  // and pop advances it, so a stale head word can never be reproduced by
  // any pop/push interleaving short of a full 2^19 tag wrap.
  static std::uint64_t pack(WorkItem* p, std::uint64_t tag) {
    const auto bits = reinterpret_cast<std::uintptr_t>(p);
    KOMPICS_ASSERT((bits & 7) == 0 && (bits >> 48) == 0,
                   "work item pointer not packable");
    return (static_cast<std::uint64_t>(bits) >> 3 << kTagBits) | (tag & kTagMask);
  }
  static WorkItem* unpack(std::uint64_t word) {
    return reinterpret_cast<WorkItem*>((word >> kTagBits) << 3);
  }
  static std::uint64_t tag(std::uint64_t word) { return word & kTagMask; }

  std::atomic<std::uint64_t> head_{0};
};

WorkItemPool& work_item_pool() {
  static WorkItemPool pool;
  return pool;
}

}  // namespace

void ComponentCore::enqueue_work(const EventPtr& e, PortCore* half, bool control) {
  // Pending is counted BEFORE the push makes the item consumable. Tickets
  // are fungible across a component's queued items: once this item is in
  // the queue, a worker holding a ticket from a *different* producer can
  // pop and complete it, and its pending_sub must never observe a counter
  // this enqueue hasn't paid into yet — otherwise pending_ transiently
  // reads zero with work still queued and await_quiescence returns early.
  runtime_->pending_add(1);
  WorkItem* item = work_item_pool().acquire();
  item->event = e;
  item->half = half;
  item->control = control;
  (control ? control_q_ : normal_q_).push(item);
  detail::DispatchBatch& batch = detail::DispatchBatch::current();
  if (batch.active() && batch.compatible(runtime_)) {
    batch.add(this);  // ready transition + scheduling deferred to scope exit
  } else {
    ticket(1);
  }
}

detail::DispatchBatch& detail::DispatchBatch::current() {
  thread_local DispatchBatch batch;
  return batch;
}

void detail::DispatchBatch::flush() {
  // Pending for each unit was already counted by enqueue_work (it must
  // happen before the push); only the ready transitions and the scheduler
  // hand-off are deferred here.
  to_schedule_.clear();
  for (ComponentCore* c : bumps_) {
    if (c->work_count_.fetch_add(1, std::memory_order_acq_rel) == 0) {
      to_schedule_.push_back(c->shared_from_this());
    }
  }
  bumps_.clear();
  Runtime* rt = runtime_;
  runtime_ = nullptr;
  if (!to_schedule_.empty()) rt->scheduler().schedule_batch(to_schedule_);
}

void ComponentCore::bump(std::int64_t k) {
  if (k <= 0) return;
  runtime_->pending_add(k);
  ticket(k);
}

void ComponentCore::ticket(std::int64_t k) {
  if (work_count_.fetch_add(k, std::memory_order_acq_rel) == 0) {
    runtime_->scheduler().schedule(shared_from_this());
  }
}

void ComponentCore::complete_one() {
  const std::int64_t prev = work_count_.fetch_sub(1, std::memory_order_acq_rel);
  assert(prev >= 1);
  if (prev > 1) runtime_->scheduler().schedule(shared_from_this());
  runtime_->pending_sub(1);
}

void ComponentCore::park(WorkItem* item, bool to_control) {
  (to_control ? parked_control_ : parked_normal_).push_back(item);
}

ComponentCore::WorkItem* ComponentCore::next_item() {
  if (state() == LifecycleState::kDestroyed) {
    // Drain one unit per call so bookkeeping stays exact. When retired into
    // a successor (§2.6), application events are forwarded to the matching
    // port of the replacement instead of dropped.
    WorkItem* it = nullptr;
    if (!replay_control_.empty()) {
      it = replay_control_.front();
      replay_control_.pop_front();
    } else if (!replay_normal_.empty()) {
      it = replay_normal_.front();
      replay_normal_.pop_front();
    } else if (!parked_control_.empty()) {
      it = parked_control_.front();
      parked_control_.pop_front();
    } else if (!parked_normal_.empty()) {
      it = parked_normal_.front();
      parked_normal_.pop_front();
    } else if ((it = control_q_.pop()) == nullptr) {
      it = normal_q_.pop();
    }
    if (it != nullptr) {
      ComponentCorePtr target;
      {
        std::lock_guard<std::mutex> g(structure_mu_);
        target = forward_to_;
      }
      if (target != nullptr && !it->control && it->half != nullptr &&
          it->half->owner() == this) {
        PortPair* p = target->find_port(it->half->port_tid(), it->half->port_provided());
        if (p != nullptr) {
          PortCore* half = it->half->is_inside() ? p->inside.get() : p->outside.get();
          target->enqueue_work(it->event, half, /*control=*/false);
        }
      }
    }
    work_item_pool().release(it);
    return nullptr;
  }

  const bool gate = needs_init_.load(std::memory_order_acquire) && !init_done_;

  if (!gate && !replay_control_.empty()) {
    WorkItem* it = replay_control_.front();
    replay_control_.pop_front();
    return it;
  }
  if (WorkItem* it = control_q_.pop()) {
    // Init-first gate (§2.4): only Init — and Stop, so that an
    // uninitialized component can still be passivated and replaced/
    // destroyed (otherwise §2.6 reconfiguration could deadlock waiting for
    // a Stopped that can never come) — may run before the Init arrives.
    if (gate && !event_is<Init>(*it->event) && !event_is<Stop>(*it->event)) {
      park(it, /*to_control=*/true);
      return nullptr;
    }
    return it;
  }
  if (gate) {
    // Only Init may run; park any counted normal work.
    if (WorkItem* it = normal_q_.pop()) park(it, /*to_control=*/false);
    return nullptr;
  }

  const bool active = state() == LifecycleState::kActive;
  if (active && !replay_normal_.empty()) {
    WorkItem* it = replay_normal_.front();
    replay_normal_.pop_front();
    return it;
  }
  if (WorkItem* it = normal_q_.pop()) {
    if (!active) {
      park(it, /*to_control=*/false);
      return nullptr;
    }
    return it;
  }
  if (!active && !replay_normal_.empty()) {
    // Counted replay item but the component was re-passivated: re-park.
    park(replay_normal_.front(), /*to_control=*/false);
    replay_normal_.pop_front();
    return nullptr;
  }
  return nullptr;
}

namespace {
thread_local ComponentCore* tl_running_core = nullptr;
}  // namespace

ComponentCore* ComponentCore::running_on_this_thread() { return tl_running_core; }

void ComponentCore::execute() {
  {
    // Guard must end before complete_one(): the re-schedule inside it can
    // legitimately hand this core to another worker immediately.
    KOMPICS_ASSERT_SINGLE_CONSUMER(executing_);
    if (WorkItem* item = next_item()) {
      // Exception-safe restore: escalate_fault may rethrow out of run_item.
      struct Scope {
        ComponentCore* prev;
        ~Scope() { tl_running_core = prev; }
      } scope{tl_running_core};
      tl_running_core = this;
      run_item(item);
    }
  }
  complete_one();
}

const std::vector<SubscriptionRef>& ComponentCore::matching_subs_cached(PortCore* half,
                                                                        const Event& e) {
  // Consumer-only (called from run_item under the single-consumer
  // discipline), so match_cache_/scratch_subs_ need no lock.
  const EventTypeId eid = e.kompics_type_id();
  if (!detail::type_id_is_exact(eid, e)) {
    // The dynamic type is unregistered (it reports a registered ancestor's
    // id, or the root id): a per-id cache entry would conflate distinct
    // types, so re-match directly. scratch_subs_ keeps its capacity.
    half->matching_subscriptions_into(this, e, scratch_subs_);
    return scratch_subs_;
  }
  // Epoch BEFORE scan (port.hpp contract): if a later lookup sees the same
  // epoch, the table cannot have changed since this entry was built.
  const std::uint64_t epoch = half->sub_epoch();
  MatchEntry& entry = match_cache_[MatchKey{half, eid}];
  if (entry.valid && entry.epoch == epoch) return entry.subs;
  if (match_cache_.size() > kMatchCacheMax) {
    // Pathological key churn (many ports × many event types): reset rather
    // than grow without bound. The reference into match_cache_ is
    // invalidated by clear(), so recreate the entry afterwards.
    match_cache_.clear();
    MatchEntry& fresh = match_cache_[MatchKey{half, eid}];
    fresh.epoch = epoch;
    fresh.valid = true;
    half->matching_subscriptions_into(this, e, fresh.subs);
    return fresh.subs;
  }
  entry.epoch = epoch;
  entry.valid = true;
  half->matching_subscriptions_into(this, e, entry.subs);
  return entry.subs;
}

void ComponentCore::run_item(WorkItem* item) {
  const EventPtr event = std::move(item->event);
  PortCore* half = item->half;
  const bool is_control = item->control;
  work_item_pool().release(item);

  // Telemetry prologue. With everything disabled this costs three relaxed
  // loads and `timed` stays false, so no clock is read and no name is
  // resolved (the ≤3% overhead budget of the dispatch hot path).
  telemetry::Telemetry& tel = runtime_->telemetry();
  const bool metrics = tel.metrics_enabled();
  const bool recording = tel.recorder_enabled();
  const std::uint64_t trace_word = event->kompics_trace_word();
  const bool traced = trace_word != 0 && tel.tracing_enabled();
  const bool timed = metrics || recording || traced;
  const std::uint64_t t0 = timed ? telemetry::now_ns() : 0;
  telemetry::SpanScope span;  // restores the previous active span on exit
  std::uint32_t span_id = 0;
  if (traced) span_id = span.open(tel, trace_word);
  std::uint64_t invoked = 0;
  auto observe = [&](bool faulted) {
    const std::uint64_t dur = telemetry::now_ns() - t0;
    const char* event_name = typeid(*event).name();
    if (metrics) {
      telemetry::ComponentStats& st = telemetry_stats_mut();
      st.dispatches.fetch_add(1, std::memory_order_relaxed);
      st.handler_invocations.fetch_add(invoked, std::memory_order_relaxed);
      st.handler_ns.record(dur);
    }
    if (traced) tel.record_span(trace_word, span_id, *this, event_name, t0, dur);
    if (recording) {
      tel.record_dispatch(*this, event_name, is_control, faulted,
                          telemetry::trace_of_word(trace_word), t0, dur);
    }
  };

  // Execution-time re-match (paper semantics for (un)subscribe during
  // handling), served from the epoch-validated cache.
  const auto& subs = matching_subs_cached(half, *event);
  if (definition_ != nullptr) {
    definition_->in_handler_ = true;
    definition_->current_event_ = event;
  }
  for (const auto& s : subs) {
    // Unsubscribed by an earlier handler this round (or concurrently by
    // another component's handler via a shared SubscriptionRef).
    if (!s->active.load(std::memory_order_acquire)) continue;
    try {
      s->invoke(*event);
      ++invoked;
    } catch (...) {
      if (definition_ != nullptr) {
        definition_->in_handler_ = false;
        definition_->current_event_ = nullptr;
      }
      // Record the faulting dispatch first so the §2.5 crash dump taken by
      // escalate_fault includes it as its most recent entry.
      if (timed) observe(/*faulted=*/true);
      escalate_fault(std::current_exception());
      return;
    }
  }
  if (definition_ != nullptr) {
    definition_->in_handler_ = false;
    definition_->current_event_ = nullptr;
  }
  if (timed) observe(/*faulted=*/false);

  if (is_control && half == control_inside()) builtin_lifecycle_event(*event);
}

void ComponentCore::builtin_lifecycle_event(const Event& e) {
  if (event_is<Init>(e)) {
    init_done_ = true;
    flush_init_deferred();
  } else if (event_is<Start>(e)) {
    begin_start();
  } else if (event_is<Stop>(e)) {
    begin_stop();
  }
}

void ComponentCore::begin_start() {
  if (state() != LifecycleState::kPassive) {
    emit_started();  // already active: confirm immediately
    return;
  }
  state_.store(LifecycleState::kActive, std::memory_order_release);
  flush_passive_deferred();
  // Recursive activation (§2.4), with Started aggregation over the subtree
  // (the dual of the stop protocol below).
  const auto kids = children();
  std::vector<ComponentCorePtr> passive_kids;
  for (const auto& child : kids) {
    if (child->state() == LifecycleState::kPassive) passive_kids.push_back(child);
  }
  start_pending_.store(static_cast<int>(passive_kids.size()), std::memory_order_release);
  if (passive_kids.empty()) {
    emit_started();
    return;
  }
  for (const auto& child : passive_kids) {
    child->control_outside()->trigger(std::make_shared<const Start>());
  }
}

void ComponentCore::emit_started() {
  control_inside()->trigger(std::make_shared<const Started>());
  if (parent_ != nullptr) parent_->child_started();
}

void ComponentCore::child_started() {
  int cur = start_pending_.load(std::memory_order_acquire);
  while (cur > 0) {
    if (start_pending_.compare_exchange_weak(cur, cur - 1, std::memory_order_acq_rel)) {
      if (cur == 1) emit_started();
      return;
    }
  }
}

void ComponentCore::begin_stop() {
  if (state() != LifecycleState::kActive) {
    // Already passive (or being destroyed): confirm immediately so waiting
    // reconfiguration protocols make progress.
    emit_stopped();
    return;
  }
  state_.store(LifecycleState::kPassive, std::memory_order_release);
  const auto kids = children();
  std::vector<ComponentCorePtr> active_kids;
  for (const auto& child : kids) {
    if (child->state() == LifecycleState::kActive) active_kids.push_back(child);
  }
  stop_pending_.store(static_cast<int>(active_kids.size()), std::memory_order_release);
  if (active_kids.empty()) {
    emit_stopped();
    return;
  }
  for (const auto& child : active_kids) {
    child->control_outside()->trigger(std::make_shared<const Stop>());
  }
}

void ComponentCore::emit_stopped() {
  // Stopped travels out of the component: the parent (or a reconfiguration
  // protocol) observes it on the control port's outside half.
  control_inside()->trigger(std::make_shared<const Stopped>());
  if (parent_ != nullptr) parent_->child_stopped();
}

void ComponentCore::child_stopped() {
  // Lock-free guarded decrement: only counts down while a stop protocol is
  // actually pending (a child may confirm spontaneously otherwise).
  int cur = stop_pending_.load(std::memory_order_acquire);
  while (cur > 0) {
    if (stop_pending_.compare_exchange_weak(cur, cur - 1, std::memory_order_acq_rel)) {
      if (cur == 1) emit_stopped();
      return;
    }
  }
}

void ComponentCore::flush_init_deferred() {
  const std::int64_t k = static_cast<std::int64_t>(parked_control_.size());
  while (!parked_control_.empty()) {
    replay_control_.push_back(parked_control_.front());
    parked_control_.pop_front();
  }
  bump(k);
}

void ComponentCore::flush_passive_deferred() {
  const std::int64_t k = static_cast<std::int64_t>(parked_normal_.size());
  while (!parked_normal_.empty()) {
    replay_normal_.push_back(parked_normal_.front());
    parked_normal_.pop_front();
  }
  bump(k);
}

void ComponentCore::drain_all_queues() {
  auto drop = [](std::deque<WorkItem*>& q) {
    for (WorkItem* it : q) work_item_pool().release(it);
    q.clear();
  };
  drop(replay_control_);
  drop(replay_normal_);
  drop(parked_control_);
  drop(parked_normal_);
  while (WorkItem* it = control_q_.pop()) work_item_pool().release(it);
  while (WorkItem* it = normal_q_.pop()) work_item_pool().release(it);
}

// ---------------------------------------------------------------------------
// Faults (§2.5)
// ---------------------------------------------------------------------------

void ComponentCore::escalate_fault(std::exception_ptr error) {
  std::string what = "unknown fault";
  try {
    std::rethrow_exception(error);
  } catch (const std::exception& ex) {
    what = ex.what();
  } catch (...) {
  }
  telemetry::Telemetry& tel = runtime_->telemetry();
  if (tel.metrics_enabled()) {
    telemetry_stats_mut().faults.fetch_add(1, std::memory_order_relaxed);
  }
  if (tel.recorder_enabled()) {
    // §2.5: every fault report carries the dispatch history leading to it.
    tel.capture_crash_dump(what, this);
  }
  auto fault = std::make_shared<const Fault>(error, this, what);

  // Walk up the containment hierarchy: at each level the Fault is (re-)
  // triggered on that component's control port; the first ancestor with a
  // matching Fault subscription supervises it. Unhandled faults reach the
  // runtime's fault policy (paper: dump to stderr and halt).
  ComponentCore* comp = this;
  while (comp != nullptr) {
    PortCore* out = comp->control_outside();
    if (out->has_match(*fault)) {
      out->dispatch(fault);
      return;
    }
    comp = comp->parent();
  }
  runtime_->on_unhandled_fault(*fault);
}

// ---------------------------------------------------------------------------
// Destruction
// ---------------------------------------------------------------------------

void ComponentCore::retire_into(ComponentCorePtr successor) {
  {
    std::lock_guard<std::mutex> g(structure_mu_);
    forward_to_ = std::move(successor);
  }
  destroy_tree();
}

void ComponentCore::destroy_tree() {
  // Stop definition-owned threads (ThreadTimer, TcpNetwork, HttpServer...)
  // before touching any structure. The recursion below halts every
  // definition in the subtree before children_.clear() can free a single
  // core, so no owned thread can trigger into a dying component.
  if (definition_ != nullptr) definition_->halt();
  // Cancel in-flight coroutine protocol frames while the subtree's channels
  // are still attached: cancelling an awaited request must also cancel its
  // armed timeout timer, and the CancelTimeout can only reach the Timer
  // provider before detach_all below severs the channels.
  if (definition_ != nullptr && definition_->protocol_host_ != nullptr) {
    definition_->protocol_host_->cancel_all();
  }
  std::vector<ComponentCorePtr> kids = children();
  for (const auto& child : kids) child->destroy_tree();
  {
    std::lock_guard<std::mutex> g(structure_mu_);
    children_.clear();
  }
  state_.store(LifecycleState::kDestroyed, std::memory_order_release);

  auto detach_all = [](PortCore* half) {
    for (const auto& c : half->channels()) c->destroy();
  };
  detach_all(control_->inside.get());
  detach_all(control_->outside.get());
  std::vector<PortPair*> pairs;
  {
    std::lock_guard<std::mutex> g(structure_mu_);
    for (const auto& p : ports_) pairs.push_back(p.pair.get());
  }
  for (PortPair* p : pairs) {
    detach_all(p->inside.get());
    detach_all(p->outside.get());
  }
}

// ---------------------------------------------------------------------------
// ComponentDefinition
// ---------------------------------------------------------------------------

ComponentDefinition::ComponentDefinition() : core_(detail::current_core()) {
  if (core_ == nullptr) {
    throw std::logic_error(
        "ComponentDefinition constructed outside the runtime; use Runtime::bootstrap or "
        "ComponentDefinition::create");
  }
}

ChannelRef ComponentDefinition::connect(PortCore* positive_half, PortCore* negative_half) {
  if (positive_half == nullptr || negative_half == nullptr) {
    throw std::invalid_argument("connect: null port");
  }
  if (positive_half->type() != negative_half->type()) {
    throw std::logic_error("connect: port type mismatch");
  }
  if (positive_half->polarity() != Direction::kPositive) std::swap(positive_half, negative_half);
  if (positive_half->polarity() != Direction::kPositive ||
      negative_half->polarity() != Direction::kNegative) {
    throw std::logic_error("connect: must connect a positive half to a negative half");
  }
  auto channel = std::make_shared<Channel>(positive_half, negative_half);
  positive_half->attach_channel(channel);
  negative_half->attach_channel(channel);
  return channel;
}

void ComponentDefinition::disconnect(PortCore* a, PortCore* b) {
  for (const auto& c : a->channels()) {
    if ((c->positive_end() == a && c->negative_end() == b) ||
        (c->positive_end() == b && c->negative_end() == a)) {
      c->destroy();
      return;
    }
  }
  throw std::logic_error("disconnect: no channel between these ports");
}

}  // namespace kompics
