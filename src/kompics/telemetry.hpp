#pragma once

// Kernel telemetry (ROADMAP "make hot paths measurably faster"; paper §4.1
// monitoring, §2.5 faults). Three cooperating facilities, all compiled in
// and all gated by runtime flags so the disabled path costs one relaxed
// atomic load and a predicted branch per hot-path touch point:
//
//   1. Metrics — per-component handler-execution counters and log2-bucketed
//      latency histograms, per-port publish counts, scheduler counters
//      (executed/steals/parks/wakes, folded out of WorkStealingScheduler::
//      stats()). Per-component metrics exploit the §3 mutual-exclusion
//      guarantee: handlers of one component never run concurrently, so the
//      stats block is single-writer and plain relaxed atomics suffice (the
//      atomics exist only for concurrent scrape readers). Multi-writer
//      global counters are cache-line sharded.
//
//   2. Causal tracing — a sampled trace/span id stamped into the event at
//      its first trigger() and carried through channel forwarding to every
//      handler execution. Events triggered from inside a traced handler
//      inherit the trace with the running span as parent, so a CATS
//      read/write reconstructs as a causal chain across components
//      (KompicsTesting's observation that the event stream is the natural
//      observation unit of this model). Spans land in per-thread ring
//      buffers merged at scrape time.
//
//   3. Flight recorder — a per-worker ring of the last N dispatch records
//      (component, event type, duration, fault flag). On fault escalation
//      (§2.5) the rings are merged into a crash-context dump, so every
//      fault report carries the dispatch history that led up to it.
//
// Surfacing: telemetry::render_prometheus / render_trace_json serve the
// /metrics and /trace endpoints of web::HttpServer; MonitorClient folds a
// kernel snapshot into its §4.1 status reports.

#include <array>
#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace kompics {
class Event;
class Runtime;
class ComponentCore;
}  // namespace kompics

namespace kompics::telemetry {

/// Monotonic nanoseconds (steady clock). Used for durations and record
/// ordering only — never exposed as wall time.
std::uint64_t now_ns();

// ---------------------------------------------------------------------------
// Counters
// ---------------------------------------------------------------------------

/// Multi-writer counter sharded across cache lines: writers pick a sticky
/// per-thread shard, so concurrent add() never bounces one line between
/// cores. value() sums the shards (racy-by-design snapshot).
class ShardedCounter {
 public:
  static constexpr std::size_t kShards = 16;

  void add(std::uint64_t n = 1) {
    shards_[shard_index()].v.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    std::uint64_t sum = 0;
    for (const auto& s : shards_) sum += s.v.load(std::memory_order_relaxed);
    return sum;
  }

  /// Sticky shard of the calling thread (round-robin assigned on first use).
  static std::size_t shard_index();

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> v{0};
  };
  Shard shards_[kShards];
};

/// Signed variant for gauges (attach/detach style pairs).
class ShardedGauge {
 public:
  void add(std::int64_t n) {
    shards_[ShardedCounter::shard_index()].v.fetch_add(n, std::memory_order_relaxed);
  }
  void sub(std::int64_t n) { add(-n); }
  std::int64_t value() const {
    std::int64_t sum = 0;
    for (const auto& s : shards_) sum += s.v.load(std::memory_order_relaxed);
    return sum;
  }

 private:
  struct alignas(64) Shard {
    std::atomic<std::int64_t> v{0};
  };
  Shard shards_[ShardedCounter::kShards];
};

// ---------------------------------------------------------------------------
// Latency histogram
// ---------------------------------------------------------------------------

/// Log2-bucketed duration histogram. Bucket b counts durations in
/// [2^b, 2^(b+1)) ns (bucket 0 also takes 0 ns), so 40 buckets span 1 ns to
/// ~18 minutes with a fixed 8-bit bucket computation (std::bit_width) and
/// no configuration. Writers may be concurrent (relaxed fetch_add); the
/// intended use is single-writer per instance (per-component stats under
/// the §3 mutual-exclusion guarantee) with concurrent scrape readers.
class LatencyHistogram {
 public:
  static constexpr int kBuckets = 40;

  static int bucket_of(std::uint64_t ns) {
    if (ns <= 1) return 0;
    const int b = 63 - __builtin_clzll(ns);  // floor(log2(ns))
    return b < kBuckets ? b : kBuckets - 1;
  }
  /// Inclusive upper bound of bucket b (Prometheus `le` label).
  static std::uint64_t bucket_upper_bound(int b) {
    return b >= kBuckets - 1 ? ~0ULL : (2ULL << b) - 1;
  }

  void record(std::uint64_t ns) {
    buckets_[bucket_of(ns)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_ns_.fetch_add(ns, std::memory_order_relaxed);
  }

  struct Snapshot {
    std::uint64_t count = 0;
    std::uint64_t sum_ns = 0;
    std::array<std::uint64_t, kBuckets> buckets{};
    /// Smallest inclusive bucket upper bound covering quantile q in [0,1].
    std::uint64_t quantile_upper_ns(double q) const;
  };
  Snapshot snapshot() const {
    Snapshot s;
    s.count = count_.load(std::memory_order_relaxed);
    s.sum_ns = sum_ns_.load(std::memory_order_relaxed);
    for (int i = 0; i < kBuckets; ++i) {
      s.buckets[static_cast<std::size_t>(i)] = buckets_[i].load(std::memory_order_relaxed);
    }
    return s;
  }

 private:
  std::atomic<std::uint64_t> buckets_[kBuckets]{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_ns_{0};
};

// ---------------------------------------------------------------------------
// Per-component stats
// ---------------------------------------------------------------------------

/// One block per component, allocated lazily by the executing worker the
/// first time the component runs with metrics enabled. Single-writer (§3);
/// atomics only for scrape readers.
struct ComponentStats {
  std::atomic<std::uint64_t> dispatches{0};           ///< work items executed
  std::atomic<std::uint64_t> handler_invocations{0};  ///< handlers run (≥ dispatches)
  std::atomic<std::uint64_t> faults{0};               ///< escalations from this component
  LatencyHistogram handler_ns;                        ///< per-dispatch execution time
};

// ---------------------------------------------------------------------------
// Trace & flight-recorder records
// ---------------------------------------------------------------------------

/// Fixed-width name copies so records stay valid after the component (or
/// its event's type) is gone; long names are truncated, never referenced.
inline constexpr std::size_t kNameCap = 48;

struct SpanRecord {
  std::uint32_t trace_id = 0;
  std::uint32_t span_id = 0;
  std::uint32_t parent_span = 0;  ///< 0 = root span of the trace
  std::uint64_t component_id = 0;
  std::uint64_t start_ns = 0;
  std::uint64_t dur_ns = 0;
  char component[kNameCap] = {};
  char event_type[kNameCap] = {};
};

struct DispatchRecord {
  std::uint64_t ts_ns = 0;
  std::uint64_t dur_ns = 0;
  std::uint64_t component_id = 0;
  std::uint32_t trace_id = 0;  ///< 0 when the dispatch was untraced
  bool control = false;
  bool faulted = false;
  char component[kNameCap] = {};
  char event_type[kNameCap] = {};
};

/// Packs (trace id, parent span id) into the event's single-word envelope
/// slot (event.hpp: Event::kompics_trace_word).
inline std::uint64_t pack_trace_word(std::uint32_t trace_id, std::uint32_t parent_span) {
  return (static_cast<std::uint64_t>(trace_id) << 32) | parent_span;
}
inline std::uint32_t trace_of_word(std::uint64_t w) { return static_cast<std::uint32_t>(w >> 32); }
inline std::uint32_t parent_of_word(std::uint64_t w) { return static_cast<std::uint32_t>(w); }

// ---------------------------------------------------------------------------
// Telemetry — one instance per Runtime
// ---------------------------------------------------------------------------

class Telemetry {
 public:
  Telemetry();
  ~Telemetry() = default;
  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  // ---- gates (all default off: zero-cost black box) ---------------------
  void enable_metrics(bool on) { metrics_.store(on, std::memory_order_relaxed); }
  bool metrics_enabled() const { return metrics_.load(std::memory_order_relaxed); }

  /// probability in [0,1]; 0 disables tracing entirely.
  void set_trace_sampling(double probability);
  bool tracing_enabled() const {
    return trace_threshold_.load(std::memory_order_relaxed) != 0;
  }

  void enable_flight_recorder(bool on) { recorder_.store(on, std::memory_order_relaxed); }
  bool recorder_enabled() const { return recorder_.load(std::memory_order_relaxed); }

  /// Convenience: metrics + recorder on, tracing at `sample`.
  void enable_all(double sample = 0.01) {
    enable_metrics(true);
    enable_flight_recorder(true);
    set_trace_sampling(sample);
  }

  // ---- tracing ----------------------------------------------------------
  /// Stamps an untraced event at trigger() time: inherit the executing
  /// handler's trace (parent = its span), else sample a fresh trace.
  void stamp_event(const Event& e);

  /// The executing worker's current span, inherited by events it triggers.
  struct ActiveSpan {
    std::uint32_t trace_id = 0;
    std::uint32_t span_id = 0;
  };
  /// Opens a span for a traced dispatch: allocates the span id and installs
  /// it as the thread's active span. Returns the span id.
  std::uint32_t open_span(std::uint64_t trace_word);
  /// Restores the previous active span (run_item is re-entrant through
  /// synchronous lifecycle triggers).
  void close_span(ActiveSpan previous);
  ActiveSpan active_span() const;

  void record_span(std::uint64_t trace_word, std::uint32_t span_id,
                   const ComponentCore& component, const char* event_type,
                   std::uint64_t start_ns, std::uint64_t dur_ns);

  /// Merged snapshot of every thread's span ring, oldest first.
  std::vector<SpanRecord> trace_snapshot() const;

  // ---- flight recorder --------------------------------------------------
  void record_dispatch(const ComponentCore& component, const char* event_type,
                       bool control, bool faulted, std::uint32_t trace_id,
                       std::uint64_t ts_ns, std::uint64_t dur_ns);

  std::vector<DispatchRecord> flight_snapshot() const;

  /// §2.5: merges all per-worker rings into a formatted crash-context dump,
  /// stores it (last_crash_dump) and returns it. Called by fault escalation.
  std::string capture_crash_dump(const std::string& reason, const ComponentCore* source);
  std::string last_crash_dump() const;

  // ---- global counters --------------------------------------------------
  ShardedCounter& events_published() { return events_published_; }
  ShardedCounter& traces_started() { return traces_started_; }
  ShardedCounter& spans_recorded() { return spans_recorded_; }
  ShardedCounter& crash_dumps() { return crash_dumps_; }
  const ShardedCounter& events_published() const { return events_published_; }
  const ShardedCounter& traces_started() const { return traces_started_; }
  const ShardedCounter& spans_recorded() const { return spans_recorded_; }
  const ShardedCounter& crash_dumps() const { return crash_dumps_; }

  /// Ring capacities (per thread). Fixed: bounded memory however long the
  /// process runs.
  static constexpr std::size_t kSpanRingCap = 2048;
  static constexpr std::size_t kFlightRingCap = 256;

 private:
  struct ThreadLog {
    std::thread::id owner;  ///< registry key: one ring pair per thread
    std::mutex mu;  ///< uncontended on the hot path (owner thread) — the
                    ///< scraper takes it briefly per ring
    std::vector<SpanRecord> spans;
    std::size_t span_next = 0;
    bool span_wrapped = false;
    std::vector<DispatchRecord> flight;
    std::size_t flight_next = 0;
    bool flight_wrapped = false;
  };
  ThreadLog& local_log();

  bool sample();  ///< per-thread xorshift vs. trace_threshold_

  std::atomic<bool> metrics_{false};
  std::atomic<bool> recorder_{false};
  std::atomic<std::uint64_t> trace_threshold_{0};  ///< 0 = off, 2^64-1 ≈ always
  std::atomic<std::uint32_t> next_trace_id_{1};
  std::atomic<std::uint32_t> next_span_id_{1};

  const std::uint64_t instance_id_;  ///< distinguishes runtimes in TL caches

  mutable std::mutex logs_mu_;
  std::vector<std::shared_ptr<ThreadLog>> logs_;

  mutable std::mutex crash_mu_;
  std::string last_crash_dump_;

  ShardedCounter events_published_;
  ShardedCounter traces_started_;
  ShardedCounter spans_recorded_;
  ShardedCounter crash_dumps_;
};

/// RAII for a traced dispatch: open_span on construction (when the event is
/// traced), close_span on destruction.
class SpanScope {
 public:
  SpanScope() = default;
  std::uint32_t open(Telemetry& tel, std::uint64_t trace_word) {
    tel_ = &tel;
    previous_ = tel.active_span();
    span_id_ = tel.open_span(trace_word);
    return span_id_;
  }
  ~SpanScope() {
    if (tel_ != nullptr) tel_->close_span(previous_);
  }
  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

 private:
  Telemetry* tel_ = nullptr;
  Telemetry::ActiveSpan previous_{};
  std::uint32_t span_id_ = 0;
};

// ---------------------------------------------------------------------------
// Rendering (monitoring-stack surface)
// ---------------------------------------------------------------------------

/// Prometheus text exposition of the runtime's kernel metrics: scheduler
/// counters, per-component dispatch counters and latency histograms,
/// per-port publish counts, channel queue depths, trace/recorder counters.
std::string render_prometheus(Runtime& rt);

/// JSON dump of the merged span buffer (plus recorder summary):
/// { "spans": [...], "traces": N, ... }. Spans carry parent ids, so a
/// consumer can reassemble each causal chain.
std::string render_trace_json(Runtime& rt);

/// Flat key/value snapshot of kernel counters for the §4.1 monitoring
/// rounds (MonitorClient ships these as "kernel.*" status fields).
std::vector<std::pair<std::string, std::string>> kernel_status_fields(Runtime& rt);

/// Copies a (possibly long) name into a fixed record field, truncating.
inline void copy_name(char (&dst)[kNameCap], const char* src) {
  std::size_t i = 0;
  if (src != nullptr) {
    for (; i + 1 < kNameCap && src[i] != '\0'; ++i) dst[i] = src[i];
  }
  dst[i] = '\0';
}

}  // namespace kompics::telemetry
