#include "work_stealing_scheduler.hpp"

#include <algorithm>
#include <chrono>

#include "component.hpp"

namespace kompics {

namespace {
// Identifies the worker the current thread belongs to (and its scheduler),
// so schedule() from inside a handler pushes to the local ready queue.
struct WorkerIdentity {
  const void* scheduler = nullptr;
  std::size_t index = 0;
};
thread_local WorkerIdentity tl_identity;
}  // namespace

WorkStealingScheduler::WorkStealingScheduler(Options options) : options_(options) {
  std::size_t n = options_.workers;
  if (n == 0) n = std::max(1u, std::thread::hardware_concurrency());
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) workers_.push_back(std::make_unique<Worker>());
}

WorkStealingScheduler::~WorkStealingScheduler() { shutdown(); }

void WorkStealingScheduler::start() {
  bool expected = false;
  if (!running_.compare_exchange_strong(expected, true)) return;
  stop_.store(false, std::memory_order_release);
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    workers_[i]->thread = std::thread([this, i] { worker_main(i); });
  }
}

void WorkStealingScheduler::shutdown() {
  running_.store(false, std::memory_order_release);
  stop_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> g(sleep_mu_);
    sleep_cv_.notify_all();
  }
  // A worker calling shutdown — the unhandled-fault policy does — only
  // signals: it cannot join itself, and joining its siblings while one of
  // them contends for the same join step would deadlock. Reaping is left
  // to external callers (Runtime::shutdown from user code, the scheduler
  // destructor), which can always block; join_mu_ serializes them so two
  // externals never join the same handle.
  if (tl_identity.scheduler == this) return;
  std::lock_guard<std::mutex> g(join_mu_);
  for (auto& w : workers_) {
    if (w->thread.joinable()) w->thread.join();
  }
}

void WorkStealingScheduler::schedule(ComponentCorePtr component) {
  std::size_t target;
  if (tl_identity.scheduler == this) {
    target = tl_identity.index;
  } else {
    target = round_robin_.fetch_add(1, std::memory_order_relaxed) % workers_.size();
  }
  push_to(target, std::move(component));
  // Release-bump after the push so a parked worker that observes the new
  // epoch also observes the enqueued work when it goes to steal.
  work_epoch_.fetch_add(1, std::memory_order_release);
  wake_one();
}

void WorkStealingScheduler::schedule_batch(std::vector<ComponentCorePtr>& batch) {
  if (batch.empty()) return;
  if (batch.size() == 1) {
    schedule(std::move(batch.front()));
    batch.clear();
    return;
  }
  // Spread the batch over the workers in contiguous chunks: one queue lock
  // per worker instead of one per component, one epoch bump and one wake
  // round instead of batch.size() of each. A fan-out trigger with dozens of
  // subscribers otherwise spends most of its time in schedule() overhead.
  const std::size_t n = workers_.size();
  std::size_t start;
  if (tl_identity.scheduler == this) {
    start = tl_identity.index;
  } else {
    start = round_robin_.fetch_add(1, std::memory_order_relaxed);
  }
  const std::size_t per = (batch.size() + n - 1) / n;
  std::size_t i = 0;
  for (std::size_t k = 0; i < batch.size(); ++k) {
    Worker& w = *workers_[(start + k) % n];
    const std::size_t end = std::min(batch.size(), i + per);
    std::lock_guard<std::mutex> g(w.mu);
    for (; i < end; ++i) w.queue.push_back(std::move(batch[i]));
    w.size.store(w.queue.size(), std::memory_order_release);
  }
  batch.clear();
  work_epoch_.fetch_add(1, std::memory_order_release);
  if (sleepers_.load(std::memory_order_acquire) > 0) {
    wakes_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> g(sleep_mu_);
    sleep_cv_.notify_all();
  }
}

void WorkStealingScheduler::push_to(std::size_t index, ComponentCorePtr c) {
  Worker& w = *workers_[index];
  std::lock_guard<std::mutex> g(w.mu);
  w.queue.push_back(std::move(c));
  w.size.store(w.queue.size(), std::memory_order_release);
}

ComponentCorePtr WorkStealingScheduler::pop_local(Worker& w) {
  std::lock_guard<std::mutex> g(w.mu);
  if (w.queue.empty()) return nullptr;
  ComponentCorePtr c = std::move(w.queue.front());
  w.queue.pop_front();
  w.size.store(w.queue.size(), std::memory_order_release);
  return c;
}

ComponentCorePtr WorkStealingScheduler::try_steal(std::size_t self) {
  if (!options_.stealing) return nullptr;
  // Victim selection (paper §3): the worker with the highest number of
  // ready components.
  std::size_t victim = self;
  std::size_t best = 0;
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    if (i == self) continue;
    const std::size_t s = workers_[i]->size.load(std::memory_order_acquire);
    if (s > best) {
      best = s;
      victim = i;
    }
  }
  if (victim == self || best == 0) return nullptr;

  Worker& v = *workers_[victim];
  Worker& me = *workers_[self];
  std::vector<ComponentCorePtr> batch;
  {
    std::lock_guard<std::mutex> g(v.mu);
    if (v.queue.empty()) return nullptr;
    // Steal a batch of half the victim's ready components (§3), from the
    // back so the victim keeps its oldest (FIFO-fair) work.
    std::size_t n = std::max(options_.min_steal, v.queue.size() / options_.steal_divisor);
    n = std::min(n, v.queue.size());
    for (std::size_t i = 0; i < n; ++i) {
      batch.push_back(std::move(v.queue.back()));
      v.queue.pop_back();
    }
    v.size.store(v.queue.size(), std::memory_order_release);
  }
  if (batch.empty()) return nullptr;
  ComponentCorePtr first = std::move(batch.back());
  batch.pop_back();
  if (!batch.empty()) {
    std::lock_guard<std::mutex> g(me.mu);
    for (auto& c : batch) me.queue.push_back(std::move(c));
    me.size.store(me.queue.size(), std::memory_order_release);
  }
  me.steals.fetch_add(1, std::memory_order_relaxed);
  me.stolen.fetch_add(batch.size() + 1, std::memory_order_relaxed);
  return first;
}

void WorkStealingScheduler::wake_one() {
  if (sleepers_.load(std::memory_order_acquire) > 0) {
    wakes_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> g(sleep_mu_);
    sleep_cv_.notify_one();
  }
}

void WorkStealingScheduler::worker_main(std::size_t index) {
  tl_identity = WorkerIdentity{this, index};
  Worker& me = *workers_[index];
  int spins = 0;
  while (!stop_.load(std::memory_order_acquire)) {
    // Snapshot the epoch BEFORE looking for work: anything scheduled after
    // this point changes the epoch and defeats the park below, and anything
    // scheduled before it is visible to the pop/steal attempts that follow.
    const std::uint64_t epoch = work_epoch_.load(std::memory_order_acquire);
    ComponentCorePtr c = pop_local(me);
    if (c == nullptr) c = try_steal(index);
    if (c != nullptr) {
      spins = 0;
      // Count before executing: the execution completes the unit inside
      // execute() (complete_one), so counting afterwards would let an
      // observer see quiescence while the last increment is still pending.
      me.executed.fetch_add(1, std::memory_order_relaxed);
      c->execute();
      continue;
    }
    if (++spins < 64) {
      std::this_thread::yield();
      continue;
    }
    // Park until new work is scheduled anywhere (not just on our own
    // queue — an epoch change means some queue got work we can steal).
    me.parks.fetch_add(1, std::memory_order_relaxed);
    sleepers_.fetch_add(1, std::memory_order_acq_rel);
    {
      std::unique_lock<std::mutex> lock(sleep_mu_);
      sleep_cv_.wait_for(lock, std::chrono::milliseconds(1), [this, &me, epoch] {
        return stop_.load(std::memory_order_acquire) ||
               me.size.load(std::memory_order_acquire) > 0 ||
               work_epoch_.load(std::memory_order_acquire) != epoch;
      });
    }
    sleepers_.fetch_sub(1, std::memory_order_acq_rel);
    spins = 0;
  }
  tl_identity = WorkerIdentity{};
}

WorkStealingScheduler::Stats WorkStealingScheduler::stats() const {
  Stats s;
  for (const auto& w : workers_) {
    s.executed += w->executed.load(std::memory_order_relaxed);
    s.steals += w->steals.load(std::memory_order_relaxed);
    s.stolen_components += w->stolen.load(std::memory_order_relaxed);
    s.parks += w->parks.load(std::memory_order_relaxed);
  }
  s.wakes = wakes_.load(std::memory_order_relaxed);
  return s;
}

std::vector<std::pair<std::string, std::uint64_t>> WorkStealingScheduler::telemetry_counters()
    const {
  const Stats s = stats();
  return {{"executed", s.executed},
          {"steals", s.steals},
          {"stolen_components", s.stolen_components},
          {"parks", s.parks},
          {"wakes", s.wakes},
          {"workers", worker_count()}};
}

}  // namespace kompics
