#pragma once

// RCU-style copy-on-write snapshot cell for the pub-sub hot path.
//
// The dispatch-side readers (PortCore::dispatch / arrive, Channel::forward)
// must observe a consistent subscription/channel table without taking a
// lock, while reconfiguration writers (subscribe/unsubscribe, attach/
// detach, hold/resume/plug/unplug) build a *new immutable table* and
// atomically swap it in. The classic obstacle is reclamation: a reader that
// loaded the old table pointer must keep that table alive until it is done
// scanning, with no per-thread registration and no reader-side locks.
//
// RcuCell solves it with split ("differential") reference counting:
//
//   - The cell packs {pointer, external count} into one 64-bit word.
//     Readers acquire with a single fetch_add(+1) on that word: the add
//     both publishes their reference (in the external count) and returns
//     the pointer — one uncontended RMW, wait-free, no CAS loop.
//   - Each RcuObject carries an internal count, initialized to a large
//     bias. A reader *releases* by fetch_sub(1) on the internal count of
//     the snapshot it holds — the cell word is never touched again, so a
//     concurrent swap cannot lose the release.
//   - The writer swaps with exchange(), learns how many readers ever
//     acquired through the old word (its external count E), and folds the
//     ledger together: internal += E - bias. From then on internal holds
//     exactly the number of outstanding readers; whoever moves it to zero
//     frees the object.
//
// The external count has kRcuCountBits of room between swaps. Long before
// it can wrap into the pointer bits, readers that observe a high count
// transfer a large batch of acquired references into the internal count
// and CAS the external count back down (`maybe_relieve`), so an arbitrary
// number of reads between swaps is safe.
//
// Writers serialize among themselves with the owner's existing mutex; the
// cell only makes *readers* lock-free, which is the hot-path requirement.

#include <atomic>
#include <cstdint>
#include <utility>

#include "debug.hpp"

namespace kompics::detail {

#if defined(KOMPICS_DEBUG_ASSERTS)
/// Debug-build census of live RCU-managed tables: lets tests assert that
/// copy-on-write reclamation really frees superseded tables (no reader
/// leak, no double free — a double free would drive this negative and the
/// destructor assert below fires first).
inline std::atomic<std::int64_t> g_rcu_live_objects{0};
inline std::int64_t rcu_live_objects() {
  return g_rcu_live_objects.load(std::memory_order_acquire);
}
#endif

/// Base class for snapshot tables managed by RcuCell.
class RcuObject {
 public:
  RcuObject() {
#if defined(KOMPICS_DEBUG_ASSERTS)
    g_rcu_live_objects.fetch_add(1, std::memory_order_acq_rel);
#endif
  }
  virtual ~RcuObject() {
#if defined(KOMPICS_DEBUG_ASSERTS)
    g_rcu_live_objects.fetch_sub(1, std::memory_order_acq_rel);
#endif
  }

  RcuObject(const RcuObject&) = delete;
  RcuObject& operator=(const RcuObject&) = delete;

 private:
  template <class T>
  friend class RcuCell;
  template <class T>
  friend class RcuSnapshot;

  static constexpr std::int64_t kBias = std::int64_t{1} << 40;

  // Starts at kBias ("held by a cell"). See file comment for the ledger.
  std::atomic<std::int64_t> rcu_refs_{kBias};
};

/// A reader's pinned reference to a snapshot. Movable, not copyable; the
/// snapshot stays alive (and immutable) for the guard's lifetime.
template <class T>
class RcuSnapshot {
 public:
  RcuSnapshot() = default;
  explicit RcuSnapshot(T* p) : ptr_(p) {}

  RcuSnapshot(RcuSnapshot&& o) noexcept : ptr_(std::exchange(o.ptr_, nullptr)) {}
  RcuSnapshot& operator=(RcuSnapshot&& o) noexcept {
    if (this != &o) {
      release();
      ptr_ = std::exchange(o.ptr_, nullptr);
    }
    return *this;
  }
  RcuSnapshot(const RcuSnapshot&) = delete;
  RcuSnapshot& operator=(const RcuSnapshot&) = delete;

  ~RcuSnapshot() { release(); }

  T* get() const { return ptr_; }
  T* operator->() const { return ptr_; }
  T& operator*() const { return *ptr_; }
  explicit operator bool() const { return ptr_ != nullptr; }

 private:
  void release() {
    if (ptr_ == nullptr) return;
    const RcuObject* obj = ptr_;
    const std::int64_t prev =
        const_cast<RcuObject*>(obj)->rcu_refs_.fetch_sub(1, std::memory_order_acq_rel);
    KOMPICS_ASSERT(prev >= 1, "RCU snapshot over-released");
    if (prev == 1) delete ptr_;
    ptr_ = nullptr;
  }

  T* ptr_ = nullptr;
};

template <class T>
class RcuCell {
 public:
  /// Takes ownership of `initial` (must be non-null and heap-allocated).
  explicit RcuCell(T* initial) {
    word_.store(pack(initial, 0), std::memory_order_release);
  }

  RcuCell(const RcuCell&) = delete;
  RcuCell& operator=(const RcuCell&) = delete;

  ~RcuCell() {
    // Equivalent to a final swap: fold the external ledger into the
    // internal count and drop the cell's bias reference. Any still-alive
    // snapshot guard keeps the table alive and frees it on release.
    const std::uint64_t w = word_.load(std::memory_order_acquire);
    retire(unpack_ptr(w), unpack_count(w));
  }

  /// Lock-free reader entry: one fetch_add pins the current table.
  RcuSnapshot<T> acquire() const {
    const std::uint64_t w = word_.fetch_add(1, std::memory_order_acquire);
    T* p = unpack_ptr(w);
    const std::uint64_t cnt = unpack_count(w) + 1;
    KOMPICS_ASSERT(cnt < kCountMax - 1, "RCU external count exhausted between swaps");
    if (cnt >= kRelieveThreshold) maybe_relieve(p);
    return RcuSnapshot<T>(p);
  }

  /// Writer-side raw access to the current table. Only valid while the
  /// caller holds the (external) writer mutex: no concurrent swap can
  /// retire the table out from under it.
  T* load_unlocked() const { return unpack_ptr(word_.load(std::memory_order_acquire)); }

  /// Publishes `next` (taking ownership) and retires the previous table.
  /// Only valid under the external writer mutex.
  void swap(T* next) {
    const std::uint64_t old = word_.exchange(pack(next, 0), std::memory_order_acq_rel);
    retire(unpack_ptr(old), unpack_count(old));
  }

 private:
  // Pointer is 8-byte aligned (low 3 bits zero) and ≤ 48 significant bits
  // on every supported target, so `(ptr >> 3) << kRcuCountBits` round-trips.
  static constexpr unsigned kRcuCountBits = 19;
  static constexpr std::uint64_t kCountMax = (std::uint64_t{1} << kRcuCountBits) - 1;
  static constexpr std::uint64_t kRelieveThreshold = std::uint64_t{1} << 18;
  static constexpr std::uint64_t kRelieveBatch = std::uint64_t{1} << 17;

  static std::uint64_t pack(T* p, std::uint64_t count) {
    const auto bits = reinterpret_cast<std::uintptr_t>(static_cast<const RcuObject*>(p));
    KOMPICS_ASSERT((bits & 0x7) == 0, "RCU table under-aligned");
    KOMPICS_ASSERT((bits >> 48) == 0, "RCU pointer exceeds 48 bits");
    return (static_cast<std::uint64_t>(bits) >> 3) << kRcuCountBits | count;
  }
  static T* unpack_ptr(std::uint64_t w) {
    return static_cast<T*>(reinterpret_cast<RcuObject*>(
        static_cast<std::uintptr_t>((w >> kRcuCountBits) << 3)));
  }
  static std::uint64_t unpack_count(std::uint64_t w) { return w & kCountMax; }

  static void retire(T* p, std::uint64_t external) {
    if (p == nullptr) return;
    auto* obj = const_cast<RcuObject*>(static_cast<const RcuObject*>(p));
    const std::int64_t delta = static_cast<std::int64_t>(external) - RcuObject::kBias;
    const std::int64_t prev = obj->rcu_refs_.fetch_add(delta, std::memory_order_acq_rel);
    KOMPICS_ASSERT(prev + delta >= 0, "RCU internal count went negative");
    if (prev + delta == 0) delete p;
  }

  /// Transfers a batch of acquired references from the cell's external
  /// count into the object's internal count so the external field cannot
  /// wrap between swaps. The caller holds one pinned reference on `p`, so
  /// the undo path can never be the one that frees it.
  void maybe_relieve(T* p) const {
    auto* obj = const_cast<RcuObject*>(static_cast<const RcuObject*>(p));
    obj->rcu_refs_.fetch_add(static_cast<std::int64_t>(kRelieveBatch),
                             std::memory_order_acq_rel);
    std::uint64_t cur = word_.load(std::memory_order_acquire);
    while (unpack_ptr(cur) == p && unpack_count(cur) >= kRelieveBatch) {
      if (word_.compare_exchange_weak(cur, cur - kRelieveBatch, std::memory_order_acq_rel,
                                      std::memory_order_acquire)) {
        return;  // kRelieveBatch external refs now live in the internal count
      }
    }
    // Cell was swapped (or another reader relieved it first): undo. The
    // pinned reference held by our caller guarantees prev > kRelieveBatch.
    [[maybe_unused]] const std::int64_t prev = obj->rcu_refs_.fetch_sub(
        static_cast<std::int64_t>(kRelieveBatch), std::memory_order_acq_rel);
    KOMPICS_ASSERT(prev > static_cast<std::int64_t>(kRelieveBatch),
                   "RCU relieve undo underflow");
  }

  mutable std::atomic<std::uint64_t> word_{0};
};

}  // namespace kompics::detail
