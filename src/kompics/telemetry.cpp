#include "telemetry.hpp"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <functional>
#include <set>
#include <typeinfo>

#include "channel.hpp"
#include "component.hpp"
#include "event.hpp"
#include "kompics.hpp"
#include "port.hpp"
#include "scheduler.hpp"

namespace kompics::telemetry {

std::uint64_t now_ns() {
  using namespace std::chrono;
  return static_cast<std::uint64_t>(
      duration_cast<nanoseconds>(steady_clock::now().time_since_epoch()).count());
}

// ---------------------------------------------------------------------------
// ShardedCounter
// ---------------------------------------------------------------------------

std::size_t ShardedCounter::shard_index() {
  // Sticky per-thread shard, round-robin assigned so writers spread evenly
  // regardless of thread-id hashing quality.
  static std::atomic<std::size_t> next{0};
  thread_local std::size_t mine =
      next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return mine;
}

std::uint64_t LatencyHistogram::Snapshot::quantile_upper_ns(double q) const {
  if (count == 0) return 0;
  const double want = q * static_cast<double>(count);
  std::uint64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    seen += buckets[static_cast<std::size_t>(b)];
    if (static_cast<double>(seen) >= want) return bucket_upper_bound(b);
  }
  return bucket_upper_bound(kBuckets - 1);
}

// ---------------------------------------------------------------------------
// Telemetry
// ---------------------------------------------------------------------------

namespace {

std::uint64_t fresh_instance_id() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

// Thread-local single-entry cache: (telemetry instance id -> its ThreadLog).
// Threads overwhelmingly serve one runtime; a miss just re-registers under
// the registry mutex. Holding shared_ptr keeps the log alive even if the
// owning Telemetry dies first (writes then land in an orphaned ring).
struct TlLogCache {
  std::uint64_t instance_id = 0;
  std::shared_ptr<void> log;
};
thread_local TlLogCache tl_log_cache;

thread_local Telemetry::ActiveSpan tl_active_span{};

// Per-thread xorshift64* for the sampling decision: cheaper than the
// component RngStream and needs no locking or determinism.
std::uint64_t tl_sample_rng() {
  thread_local std::uint64_t state =
      0x9e3779b97f4a7c15ULL ^
      (0x2545F4914F6CDD1DULL *
       (ShardedCounter::shard_index() + 0x632be59bd9b4e019ULL) << 1);
  state ^= state >> 12;
  state ^= state << 25;
  state ^= state >> 27;
  return state * 0x2545F4914F6CDD1DULL;
}

}  // namespace

Telemetry::Telemetry() : instance_id_(fresh_instance_id()) {}

void Telemetry::set_trace_sampling(double probability) {
  std::uint64_t threshold = 0;
  if (probability >= 1.0) {
    threshold = ~0ULL;
  } else if (probability > 0.0) {
    threshold = static_cast<std::uint64_t>(
        probability * 18446744073709551615.0);  // p * (2^64 - 1)
    if (threshold == 0) threshold = 1;
  }
  trace_threshold_.store(threshold, std::memory_order_relaxed);
}

bool Telemetry::sample() {
  const std::uint64_t threshold = trace_threshold_.load(std::memory_order_relaxed);
  if (threshold == 0) return false;
  if (threshold == ~0ULL) return true;
  return tl_sample_rng() < threshold;
}

Telemetry::ThreadLog& Telemetry::local_log() {
  if (tl_log_cache.instance_id == instance_id_ && tl_log_cache.log != nullptr) {
    return *static_cast<ThreadLog*>(tl_log_cache.log.get());
  }
  // Cache miss: a thread that alternates between runtimes re-finds its ring
  // in the registry (keyed by thread id) instead of registering a new one.
  const std::thread::id self = std::this_thread::get_id();
  std::shared_ptr<ThreadLog> log;
  {
    std::lock_guard<std::mutex> g(logs_mu_);
    for (const auto& l : logs_) {
      if (l->owner == self) {
        log = l;
        break;
      }
    }
    if (log == nullptr) {
      log = std::make_shared<ThreadLog>();
      log->owner = self;
      log->spans.resize(kSpanRingCap);
      log->flight.resize(kFlightRingCap);
      logs_.push_back(log);
    }
  }
  tl_log_cache = TlLogCache{instance_id_, log};
  return *log;
}

void Telemetry::stamp_event(const Event& e) {
  if (e.kompics_trace_word() != 0) return;  // already part of a trace
  std::uint64_t word = 0;
  if (tl_active_span.trace_id != 0) {
    // Causal inheritance: an event triggered from inside a traced handler
    // joins that trace with the running span as its parent.
    word = pack_trace_word(tl_active_span.trace_id, tl_active_span.span_id);
  } else if (sample()) {
    std::uint32_t id = next_trace_id_.fetch_add(1, std::memory_order_relaxed);
    if (id == 0) id = next_trace_id_.fetch_add(1, std::memory_order_relaxed);
    word = pack_trace_word(id, 0);
    traces_started_.add();
  } else {
    return;
  }
  e.kompics_stamp_trace(word);
}

std::uint32_t Telemetry::open_span(std::uint64_t trace_word) {
  std::uint32_t id = next_span_id_.fetch_add(1, std::memory_order_relaxed);
  if (id == 0) id = next_span_id_.fetch_add(1, std::memory_order_relaxed);
  tl_active_span = ActiveSpan{trace_of_word(trace_word), id};
  return id;
}

void Telemetry::close_span(ActiveSpan previous) { tl_active_span = previous; }

Telemetry::ActiveSpan Telemetry::active_span() const { return tl_active_span; }

void Telemetry::record_span(std::uint64_t trace_word, std::uint32_t span_id,
                            const ComponentCore& component, const char* event_type,
                            std::uint64_t start_ns, std::uint64_t dur_ns) {
  ThreadLog& log = local_log();
  SpanRecord rec;
  rec.trace_id = trace_of_word(trace_word);
  rec.span_id = span_id;
  rec.parent_span = parent_of_word(trace_word);
  rec.component_id = component.id();
  rec.start_ns = start_ns;
  rec.dur_ns = dur_ns;
  copy_name(rec.component, component.name().c_str());
  copy_name(rec.event_type, event_type);
  {
    std::lock_guard<std::mutex> g(log.mu);
    log.spans[log.span_next] = rec;
    if (++log.span_next == kSpanRingCap) {
      log.span_next = 0;
      log.span_wrapped = true;
    }
  }
  spans_recorded_.add();
}

std::vector<SpanRecord> Telemetry::trace_snapshot() const {
  std::vector<std::shared_ptr<ThreadLog>> logs;
  {
    std::lock_guard<std::mutex> g(logs_mu_);
    logs = logs_;
  }
  std::vector<SpanRecord> out;
  for (const auto& log : logs) {
    std::lock_guard<std::mutex> g(log->mu);
    const std::size_t n = log->span_wrapped ? kSpanRingCap : log->span_next;
    const std::size_t start = log->span_wrapped ? log->span_next : 0;
    for (std::size_t i = 0; i < n; ++i) {
      out.push_back(log->spans[(start + i) % kSpanRingCap]);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const SpanRecord& a, const SpanRecord& b) { return a.start_ns < b.start_ns; });
  return out;
}

void Telemetry::record_dispatch(const ComponentCore& component, const char* event_type,
                                bool control, bool faulted, std::uint32_t trace_id,
                                std::uint64_t ts_ns, std::uint64_t dur_ns) {
  ThreadLog& log = local_log();
  DispatchRecord rec;
  rec.ts_ns = ts_ns;
  rec.dur_ns = dur_ns;
  rec.component_id = component.id();
  rec.trace_id = trace_id;
  rec.control = control;
  rec.faulted = faulted;
  copy_name(rec.component, component.name().c_str());
  copy_name(rec.event_type, event_type);
  std::lock_guard<std::mutex> g(log.mu);
  log.flight[log.flight_next] = rec;
  if (++log.flight_next == kFlightRingCap) {
    log.flight_next = 0;
    log.flight_wrapped = true;
  }
}

std::vector<DispatchRecord> Telemetry::flight_snapshot() const {
  std::vector<std::shared_ptr<ThreadLog>> logs;
  {
    std::lock_guard<std::mutex> g(logs_mu_);
    logs = logs_;
  }
  std::vector<DispatchRecord> out;
  for (const auto& log : logs) {
    std::lock_guard<std::mutex> g(log->mu);
    const std::size_t n = log->flight_wrapped ? kFlightRingCap : log->flight_next;
    const std::size_t start = log->flight_wrapped ? log->flight_next : 0;
    for (std::size_t i = 0; i < n; ++i) {
      out.push_back(log->flight[(start + i) % kFlightRingCap]);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const DispatchRecord& a, const DispatchRecord& b) { return a.ts_ns < b.ts_ns; });
  return out;
}

std::string Telemetry::capture_crash_dump(const std::string& reason,
                                          const ComponentCore* source) {
  const auto records = flight_snapshot();
  std::string dump = "=== kompics flight recorder: fault";
  if (source != nullptr) {
    dump += " in component " + std::to_string(source->id()) + " (" + source->name() + ")";
  }
  dump += " ===\nreason: " + reason + "\n";
  dump += "last " + std::to_string(records.size()) + " dispatch(es), oldest first:\n";
  const std::uint64_t t_fault = now_ns();
  char line[256];
  for (const auto& r : records) {
    const double age_us =
        static_cast<double>(t_fault - r.ts_ns) / 1000.0;
    std::snprintf(line, sizeof(line),
                  "  -%10.1fus  #%-5" PRIu64 " %-32s %-40s %8" PRIu64 "ns%s%s%s\n",
                  age_us, r.component_id, r.component, r.event_type, r.dur_ns,
                  r.control ? " [control]" : "", r.faulted ? " [FAULTED]" : "",
                  r.trace_id != 0 ? " [traced]" : "");
    dump += line;
  }
  crash_dumps_.add();
  {
    std::lock_guard<std::mutex> g(crash_mu_);
    last_crash_dump_ = dump;
  }
  return dump;
}

std::string Telemetry::last_crash_dump() const {
  std::lock_guard<std::mutex> g(crash_mu_);
  return last_crash_dump_;
}

// ---------------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------------

namespace {

/// Prometheus / JSON label escaping (backslash, quote, newline).
std::string escape_label(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

void walk_tree(const ComponentCorePtr& core,
               const std::function<void(const ComponentCorePtr&)>& fn) {
  if (core == nullptr) return;
  fn(core);
  for (const auto& child : core->children()) walk_tree(child, fn);
}

struct PortHalfSample {
  std::string component;
  std::uint64_t component_id;
  std::string port;
  const char* half;
  std::uint64_t publishes;
};

}  // namespace

std::string render_prometheus(Runtime& rt) {
  Telemetry& tel = rt.telemetry();
  std::string out;
  out.reserve(8192);
  char buf[512];
  auto emit = [&](const char* fmt, auto... args) {
    std::snprintf(buf, sizeof(buf), fmt, args...);
    out += buf;
  };

  // ---- scheduler --------------------------------------------------------
  out += "# HELP kompics_scheduler_total Scheduler counters (work-stealing pool).\n";
  out += "# TYPE kompics_scheduler_total counter\n";
  for (const auto& [name, value] : rt.scheduler().telemetry_counters()) {
    emit("kompics_scheduler_total{counter=\"%s\"} %" PRIu64 "\n",
         escape_label(name).c_str(), value);
  }
  emit("kompics_pending_work %" PRId64 "\n", rt.pending());

  // ---- global telemetry counters ---------------------------------------
  emit("kompics_events_published_total %" PRIu64 "\n", tel.events_published().value());
  emit("kompics_traces_started_total %" PRIu64 "\n", tel.traces_started().value());
  emit("kompics_spans_recorded_total %" PRIu64 "\n", tel.spans_recorded().value());
  emit("kompics_crash_dumps_total %" PRIu64 "\n", tel.crash_dumps().value());

  // ---- component tree ---------------------------------------------------
  std::vector<PortHalfSample> ports;
  std::uint64_t chan_queued_total = 0, chan_queued_max = 0, chan_count = 0;
  std::set<const Channel*> seen_channels;

  out += "# HELP kompics_component_dispatches_total Work items executed per component.\n";
  out += "# TYPE kompics_component_dispatches_total counter\n";
  out +=
      "# HELP kompics_handler_latency_ns Per-component handler execution time "
      "(log2 buckets, nanoseconds).\n";
  out += "# TYPE kompics_handler_latency_ns histogram\n";

  walk_tree(rt.root().core_ptr(), [&](const ComponentCorePtr& core) {
    const std::string name = escape_label(core->name());
    const std::uint64_t id = core->id();
    emit("kompics_component_queue_length{component=\"%s\",id=\"%" PRIu64 "\"} %" PRId64 "\n",
         name.c_str(), id, core->work_count());
    if (const ComponentStats* st = core->telemetry_stats()) {
      emit("kompics_component_dispatches_total{component=\"%s\",id=\"%" PRIu64 "\"} %" PRIu64
           "\n",
           name.c_str(), id, st->dispatches.load(std::memory_order_relaxed));
      emit("kompics_component_handler_invocations_total{component=\"%s\",id=\"%" PRIu64
           "\"} %" PRIu64 "\n",
           name.c_str(), id, st->handler_invocations.load(std::memory_order_relaxed));
      emit("kompics_component_faults_total{component=\"%s\",id=\"%" PRIu64 "\"} %" PRIu64 "\n",
           name.c_str(), id, st->faults.load(std::memory_order_relaxed));
      const auto snap = st->handler_ns.snapshot();
      std::uint64_t cumulative = 0;
      for (int b = 0; b < LatencyHistogram::kBuckets; ++b) {
        const std::uint64_t c = snap.buckets[static_cast<std::size_t>(b)];
        if (c == 0) continue;  // sparse exposition: skip empty buckets
        cumulative += c;
        emit("kompics_handler_latency_ns_bucket{component=\"%s\",id=\"%" PRIu64
             "\",le=\"%" PRIu64 "\"} %" PRIu64 "\n",
             name.c_str(), id, LatencyHistogram::bucket_upper_bound(b), cumulative);
      }
      if (snap.count != 0) {
        emit("kompics_handler_latency_ns_bucket{component=\"%s\",id=\"%" PRIu64
             "\",le=\"+Inf\"} %" PRIu64 "\n",
             name.c_str(), id, snap.count);
        emit("kompics_handler_latency_ns_sum{component=\"%s\",id=\"%" PRIu64 "\"} %" PRIu64 "\n",
             name.c_str(), id, snap.sum_ns);
        emit("kompics_handler_latency_ns_count{component=\"%s\",id=\"%" PRIu64 "\"} %" PRIu64
             "\n",
             name.c_str(), id, snap.count);
      }
    }
    // Ports: publish counts + channel queue depths (each channel counted
    // once even though both ends see it).
    auto sample_half = [&](PortCore* half, const char* which, const std::string& port_name) {
      if (half == nullptr) return;
      const std::uint64_t n = half->publish_count();
      if (n != 0) {
        ports.push_back(PortHalfSample{core->name(), id, port_name, which, n});
      }
      for (const auto& ch : half->channels()) {
        if (!seen_channels.insert(ch.get()).second) continue;
        ++chan_count;
        const std::uint64_t q = ch->queued();
        chan_queued_total += q;
        chan_queued_max = std::max(chan_queued_max, q);
      }
    };
    sample_half(core->control_inside(), "inside", "Control");
    sample_half(core->control_outside(), "outside", "Control");
    for (const auto& pi : core->declared_ports()) {
      const std::string port_name = pi.pair->inside->type()->name();
      sample_half(pi.pair->inside.get(), "inside", port_name);
      sample_half(pi.pair->outside.get(), "outside", port_name);
    }
  });

  out += "# HELP kompics_port_publishes_total trigger() calls per port half.\n";
  out += "# TYPE kompics_port_publishes_total counter\n";
  for (const auto& p : ports) {
    emit("kompics_port_publishes_total{component=\"%s\",id=\"%" PRIu64
         "\",port=\"%s\",half=\"%s\"} %" PRIu64 "\n",
         escape_label(p.component).c_str(), p.component_id, escape_label(p.port).c_str(),
         p.half, p.publishes);
  }
  emit("kompics_channels %" PRIu64 "\n", chan_count);
  emit("kompics_channel_queued_events %" PRIu64 "\n", chan_queued_total);
  emit("kompics_channel_queued_events_max %" PRIu64 "\n", chan_queued_max);
  return out;
}

std::string render_trace_json(Runtime& rt) {
  Telemetry& tel = rt.telemetry();
  const auto spans = tel.trace_snapshot();
  std::string out = "{\n  \"traces_started\": " + std::to_string(tel.traces_started().value()) +
                    ",\n  \"spans_recorded\": " + std::to_string(tel.spans_recorded().value()) +
                    ",\n  \"crash_dumps\": " + std::to_string(tel.crash_dumps().value()) +
                    ",\n  \"spans\": [";
  char buf[512];
  bool first = true;
  for (const auto& s : spans) {
    std::snprintf(buf, sizeof(buf),
                  "%s\n    {\"trace\": %u, \"span\": %u, \"parent\": %u, "
                  "\"component_id\": %" PRIu64
                  ", \"component\": \"%s\", \"event\": \"%s\", \"start_ns\": %" PRIu64
                  ", \"dur_ns\": %" PRIu64 "}",
                  first ? "" : ",", s.trace_id, s.span_id, s.parent_span, s.component_id,
                  escape_label(s.component).c_str(), escape_label(s.event_type).c_str(),
                  s.start_ns, s.dur_ns);
    out += buf;
    first = false;
  }
  out += "\n  ]\n}\n";
  return out;
}

std::vector<std::pair<std::string, std::string>> kernel_status_fields(Runtime& rt) {
  Telemetry& tel = rt.telemetry();
  std::vector<std::pair<std::string, std::string>> fields;
  for (const auto& [name, value] : rt.scheduler().telemetry_counters()) {
    fields.emplace_back("kernel.sched." + name, std::to_string(value));
  }
  fields.emplace_back("kernel.events_published",
                      std::to_string(tel.events_published().value()));
  fields.emplace_back("kernel.traces_started", std::to_string(tel.traces_started().value()));
  fields.emplace_back("kernel.spans_recorded", std::to_string(tel.spans_recorded().value()));
  fields.emplace_back("kernel.crash_dumps", std::to_string(tel.crash_dumps().value()));
  fields.emplace_back("kernel.pending_work", std::to_string(rt.pending()));
  return fields;
}

}  // namespace kompics::telemetry
