#pragma once

// The Kompics runtime (paper §3): owns the component hierarchy, the
// pluggable scheduler, the clock, and the global configuration. Decoupling
// component code from its executor is what lets the same system run under
// the multi-core scheduler in production and under the deterministic
// simulation scheduler for testing (paper §1, §3).

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <typeinfo>

#include "component.hpp"
#include "config.hpp"
#include "lifecycle.hpp"
#include "scheduler.hpp"
#include "telemetry.hpp"

namespace kompics {

namespace detail {
/// Installs a ComponentCore as "the component under construction" for the
/// current thread, so ComponentDefinition constructors can declare ports and
/// children. Nests (children created from a parent constructor).
class CurrentCoreGuard {
 public:
  explicit CurrentCoreGuard(ComponentCore* core);
  ~CurrentCoreGuard();

 private:
  ComponentCore* previous_;
};
ComponentCore* current_core();
}  // namespace detail

class Runtime {
 public:
  using FaultPolicy = std::function<void(const Fault&)>;

  Runtime(Config config, std::unique_ptr<Scheduler> scheduler, std::unique_ptr<Clock> clock,
          std::uint64_t seed);
  ~Runtime();

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  /// Convenience factory: multi-core work-stealing runtime.
  /// workers == 0 selects the hardware concurrency.
  static std::unique_ptr<Runtime> threaded(Config config = {}, std::size_t workers = 0,
                                           std::uint64_t seed = 1);

  /// Creates the root component from definition Main, starts the scheduler,
  /// and activates the root (paper §2.4: bootstrap creates AND starts Main).
  template <class Main, class... Args>
  Component bootstrap(Args&&... args) {
    root_ = create_component<Main>(nullptr, std::forward<Args>(args)...);
    scheduler_->start();
    root_.control()->trigger(make_event<Start>());
    return root_;
  }

  /// Creates a component under `parent` (nullptr for the root). Used by
  /// ComponentDefinition::create.
  template <class Def, class... Args>
  Component create_component(ComponentCore* parent, Args&&... args) {
    auto core = std::make_shared<ComponentCore>(this, parent, next_component_id());
    core->set_name(typeid(Def).name());
    {
      detail::CurrentCoreGuard guard(core.get());
      core->set_definition(std::make_unique<Def>(std::forward<Args>(args)...));
    }
    if (parent != nullptr) parent->add_child(core);
    return Component(core);
  }

  Component root() const { return root_; }

  /// Stops the scheduler; pending work is abandoned.
  void shutdown();

  /// Blocks until no schedulable work remains anywhere in the runtime.
  /// (Timers and I/O threads can of course inject new work afterwards.)
  void await_quiescence();
  /// Bounded variant; returns false on timeout.
  bool await_quiescence_for(DurationMs timeout);
  std::int64_t pending() const { return pending_.load(std::memory_order_acquire); }

  Scheduler& scheduler() { return *scheduler_; }
  /// Kernel telemetry (telemetry.hpp): metrics, causal tracing, flight
  /// recorder. Always present; all gates default off unless the config
  /// carries telemetry.* keys (see the Runtime constructor).
  telemetry::Telemetry& telemetry() { return telemetry_; }
  const telemetry::Telemetry& telemetry() const { return telemetry_; }
  Clock& clock() const { return *clock_; }
  const Config& config() const { return config_; }
  std::uint64_t seed() const { return seed_; }
  std::uint64_t next_component_id() { return next_id_.fetch_add(1, std::memory_order_relaxed); }

  // ---- fault management (§2.5) ------------------------------------------
  /// Installed policy runs when a Fault reaches the top of the hierarchy
  /// unhandled. Default: dump to stderr and mark the runtime faulted.
  void set_fault_policy(FaultPolicy policy);
  void on_unhandled_fault(const Fault& fault);
  bool faulted() const { return faulted_.load(std::memory_order_acquire); }

  // ---- work accounting (used by ComponentCore) ----------------------------
  void pending_add(std::int64_t k) { pending_.fetch_add(k, std::memory_order_acq_rel); }
  void pending_sub(std::int64_t k);

 private:
  Config config_;
  std::unique_ptr<Scheduler> scheduler_;
  telemetry::Telemetry telemetry_;
  std::unique_ptr<Clock> clock_;
  std::uint64_t seed_;
  std::atomic<std::uint64_t> next_id_{1};
  Component root_;

  std::atomic<std::int64_t> pending_{0};
  std::mutex quiesce_mu_;
  std::condition_variable quiesce_cv_;
  std::atomic<int> waiters_{0};

  std::mutex fault_mu_;
  FaultPolicy fault_policy_;
  std::atomic<bool> faulted_{false};
};

template <class Def, class... Args>
Component ComponentDefinition::create(Args&&... args) {
  return core_->runtime()->create_component<Def>(core_, std::forward<Args>(args)...);
}

template <class NewDef, class... Args>
Component ComponentDefinition::replace(Component& old, const EventPtr& init_event,
                                       Args&&... ctor_args) {
  struct Moved {
    ChannelRef channel;
    std::type_index tid;
    bool provided;
  };
  auto moved = std::make_shared<std::vector<Moved>>();
  // Phase 1 — hold every channel attached to the old component's ports:
  // traffic in both directions queues inside the channels, so nothing is
  // lost and no new input reaches the old component while it stops.
  for (const auto& pi : old.core()->declared_ports()) {
    for (const auto& ch : pi.pair->outside->channels()) {
      ch->hold();
      moved->push_back(Moved{ch, pi.tid, pi.provided});
    }
  }
  // Phase 2 — create the replacement now (callers get the handle
  // immediately) and ask the old subtree to stop.
  Component fresh = create<NewDef>(std::forward<Args>(ctor_args)...);

  // Phase 3 — once the old subtree confirms Stopped (no handler running or
  // runnable anywhere below it), re-home the held channels, initialize and
  // activate the replacement, flush the queued traffic, and retire the old
  // component, forwarding any events it still had parked onto the matching
  // ports of the new one.
  auto old_core = old.core_ptr();
  auto fresh_core = fresh.core_ptr();
  auto sub_slot = std::make_shared<SubscriptionRef>();
  *sub_slot = subscribe<Stopped>(
      old_core->control_outside(),
      [this, old_core, fresh_core, moved, init_event, sub_slot](const Stopped&) {
        if (*sub_slot == nullptr) return;  // already ran
        unsubscribe(*sub_slot);
        *sub_slot = nullptr;
        for (const auto& m : *moved) {
          PortPair* old_port = old_core->find_port(m.tid, m.provided);
          PortPair* new_port = fresh_core->find_port(m.tid, m.provided);
          if (new_port == nullptr) {
            throw std::logic_error("replace: new component lacks a matching port");
          }
          m.channel->unplug(old_port->outside.get());
          m.channel->plug(new_port->outside.get());
        }
        if (init_event != nullptr) fresh_core->control_outside()->trigger(init_event);
        fresh_core->control_outside()->trigger(make_event<Start>());
        for (const auto& m : *moved) m.channel->resume();
        old_core->retire_into(fresh_core);
        core_->remove_child(old_core.get());
      });
  old.control()->trigger(make_event<Stop>());
  old = Component{};
  return fresh;
}

inline const Config& ComponentDefinition::config() const { return core_->runtime()->config(); }
inline TimeMs ComponentDefinition::now() const { return core_->runtime()->clock().now(); }

}  // namespace kompics
