#pragma once

// Lock-free multi-producer single-consumer intrusive queue (Vyukov design).
//
// Used for per-component work queues (paper §3): any worker may publish work
// to a component, but exactly one worker executes a component at a time (the
// ready-state machine in ComponentCore guarantees single-consumer
// discipline), which makes this reclamation-safe without hazard pointers.

#include <atomic>

#include "debug.hpp"

namespace kompics {

template <class Node>
class MpscQueue {
 public:
  MpscQueue() : head_(&stub_), tail_(&stub_) {}

  MpscQueue(const MpscQueue&) = delete;
  MpscQueue& operator=(const MpscQueue&) = delete;

  /// Multi-producer push. `Node` must have a `std::atomic<Node*> next`.
  void push(Node* n) {
    KOMPICS_TSAN_HAPPENS_BEFORE(n);
    n->next.store(nullptr, std::memory_order_relaxed);
    Node* prev = head_.exchange(n, std::memory_order_acq_rel);
    prev->next.store(n, std::memory_order_release);
  }

  /// Single-consumer pop. Returns nullptr when empty. Callers gate pops on a
  /// separate work counter; when the counter says an item exists, this pop
  /// spins through the brief producer push window rather than losing it.
  Node* pop() {
    KOMPICS_ASSERT_SINGLE_CONSUMER(consuming_);
    Node* tail = tail_;
    Node* next = tail->next.load(std::memory_order_acquire);
    if (tail == &stub_) {
      if (next == nullptr) {
        if (head_.load(std::memory_order_acquire) == &stub_) return nullptr;  // empty
        next = spin_for_next(tail);  // push in flight
      }
      tail_ = next;
      tail = next;
      next = next->next.load(std::memory_order_acquire);
    }
    if (next != nullptr) {
      tail_ = next;
      KOMPICS_TSAN_HAPPENS_AFTER(tail);
      return tail;
    }
    if (head_.load(std::memory_order_acquire) != tail) {
      // Producer between exchange and next-store; its node is imminent.
      tail_ = spin_for_next(tail);
      KOMPICS_TSAN_HAPPENS_AFTER(tail);
      return tail;
    }
    // Exactly one real node: re-insert the stub so it becomes poppable.
    push(&stub_);
    tail_ = spin_for_next(tail);
    KOMPICS_TSAN_HAPPENS_AFTER(tail);
    return tail;
  }

  /// Consumer-only emptiness check (approximate under concurrent pushes).
  bool empty() const {
    KOMPICS_ASSERT_SINGLE_CONSUMER(consuming_);
    return tail_ == &stub_ && head_.load(std::memory_order_acquire) == &stub_;
  }

 private:
  Node* spin_for_next(Node* n) {
    Node* next;
    do {
      next = n->next.load(std::memory_order_acquire);
    } while (next == nullptr);
    return next;
  }

  alignas(64) std::atomic<Node*> head_;  // producers
  alignas(64) Node* tail_;               // consumer only
  Node stub_;
  mutable KOMPICS_SINGLE_CONSUMER_FLAG(consuming_);
};

}  // namespace kompics
