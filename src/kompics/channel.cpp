#include "channel.hpp"

#include <stdexcept>
#include <vector>

#include "port.hpp"

namespace kompics {

void Channel::forward(const EventPtr& e, Direction d, const PortCore* from) {
  PortCore* far = nullptr;
  {
    std::lock_guard<std::mutex> g(mu_);
    const auto& filter = d == Direction::kPositive ? positive_filter_ : negative_filter_;
    if (filter && !filter(*e)) return;  // selector: not for this channel
    switch (state_) {
      case State::kDead:
        return;  // disconnected: drop (reconfiguration uses hold+unplug to avoid this)
      case State::kHeld: {
        const bool toward_positive = (from != positive_end_);
        queue_.push_back(Pending{e, d, toward_positive});
        return;
      }
      case State::kActive: {
        far = far_of(from);
        if (far == nullptr) {
          // Far end unplugged: queue until plugged back (§2.6 — no loss).
          const bool toward_positive = (from != positive_end_) || positive_end_ == nullptr;
          queue_.push_back(Pending{e, d, toward_positive});
          return;
        }
        break;
      }
    }
  }
  // Deliver outside the channel lock: dispatch takes port/component locks
  // and may recursively traverse further channels.
  far->deliver_from_channel(e, d);
}

void Channel::set_filter(Direction d, std::function<bool(const Event&)> filter) {
  std::lock_guard<std::mutex> g(mu_);
  (d == Direction::kPositive ? positive_filter_ : negative_filter_) = std::move(filter);
}

void Channel::hold() {
  std::lock_guard<std::mutex> g(mu_);
  if (state_ == State::kActive) state_ = State::kHeld;
}

void Channel::resume() {
  std::unique_lock<std::mutex> lock(mu_);
  if (state_ != State::kHeld) return;
  state_ = State::kActive;
  flush_locked(lock);
}

void Channel::flush_locked(std::unique_lock<std::mutex>& lock) {
  // Forward every queued event, in FIFO order, before releasing new traffic.
  // Events whose destination end is still unplugged stay queued.
  std::deque<Pending> ready;
  std::deque<Pending> still;
  for (auto& p : queue_) {
    PortCore* dest = p.toward_positive ? positive_end_ : negative_end_;
    if (dest == nullptr) {
      still.push_back(std::move(p));
    } else {
      ready.push_back(std::move(p));
    }
  }
  queue_ = std::move(still);
  lock.unlock();
  for (auto& p : ready) {
    PortCore* dest = p.toward_positive ? positive_end_ : negative_end_;
    if (dest != nullptr) dest->deliver_from_channel(p.event, p.direction);
  }
}

void Channel::unplug(PortCore* end) {
  std::lock_guard<std::mutex> g(mu_);
  if (end == positive_end_ && positive_end_ != nullptr) {
    unplugged_was_positive_ = true;
  } else if (end == negative_end_ && negative_end_ != nullptr) {
    unplugged_was_positive_ = false;
  } else {
    throw std::logic_error("unplug: port is not an end of this channel");
  }
  unplugged_end_ = end;
  end->detach_channel(this);
  (unplugged_was_positive_ ? positive_end_ : negative_end_) = nullptr;
}

void Channel::plug(PortCore* new_end) {
  std::unique_lock<std::mutex> lock(mu_);
  if (unplugged_end_ == nullptr) throw std::logic_error("plug: channel has no unplugged end");
  PortCore* other = unplugged_was_positive_ ? negative_end_ : positive_end_;
  if (other != nullptr) {
    if (new_end->type() != other->type()) throw std::logic_error("plug: port type mismatch");
    if (new_end->polarity() == other->polarity()) {
      throw std::logic_error("plug: polarity mismatch (must connect + to -)");
    }
  }
  (unplugged_was_positive_ ? positive_end_ : negative_end_) = new_end;
  unplugged_end_ = nullptr;
  new_end->attach_channel(shared_from_this());
  if (state_ == State::kActive) flush_locked(lock);
}

void Channel::destroy() {
  PortCore* pos;
  PortCore* neg;
  {
    std::lock_guard<std::mutex> g(mu_);
    if (state_ == State::kDead) return;
    state_ = State::kDead;
    pos = positive_end_;
    neg = negative_end_;
    positive_end_ = nullptr;
    negative_end_ = nullptr;
    queue_.clear();
  }
  if (pos != nullptr) pos->detach_channel(this);
  if (neg != nullptr) neg->detach_channel(this);
}

}  // namespace kompics
