#include "channel.hpp"

#include <stdexcept>
#include <vector>

#include "component.hpp"
#include "port.hpp"

namespace kompics {

Channel::Channel(PortCore* positive_end, PortCore* negative_end)
    : positive_end_(positive_end), negative_end_(negative_end), snap_([&] {
        auto* s = new Snap;
        s->state = State::kActive;
        s->positive_end = positive_end;
        s->negative_end = negative_end;
        return s;
      }()) {
  fast_pos_.store(positive_end, std::memory_order_relaxed);
  fast_neg_.store(negative_end, std::memory_order_relaxed);
  fast_path_.store(positive_end != nullptr && negative_end != nullptr,
                   std::memory_order_release);
}

Channel::~Channel() = default;

void Channel::publish_locked() {
  auto* s = new Snap;
  s->state = state_;
  s->positive_end = positive_end_;
  s->negative_end = negative_end_;
  s->positive_filter = positive_filter_;
  s->negative_filter = negative_filter_;
  snap_.swap(s);
  // Refresh the lock-free mirror after the snapshot swap. A forward racing
  // with this observes either configuration (or a mix its guards reject) —
  // every outcome linearizes to a point before or after the mutation, just
  // as with a pinned pre-swap snapshot.
  fast_pos_.store(positive_end_, std::memory_order_relaxed);
  fast_neg_.store(negative_end_, std::memory_order_relaxed);
  fast_path_.store(state_ == State::kActive && positive_end_ != nullptr &&
                       negative_end_ != nullptr && !positive_filter_ && !negative_filter_,
                   std::memory_order_release);
}

void Channel::forward(const EventPtr& e, Direction d, const PortCore* from) {
  // Default-configuration fast path: no snapshot pin, three plain loads.
  // The sender must match one of the mirrored ends exactly — a torn read
  // during a concurrent mutation either matches nothing (fall through to
  // the snapshot path) or yields a far end that some pre-/post-mutation
  // configuration also had, which is a linearizable delivery.
  if (fast_path_.load(std::memory_order_acquire)) {
    PortCore* pos = fast_pos_.load(std::memory_order_relaxed);
    PortCore* neg = fast_neg_.load(std::memory_order_relaxed);
    PortCore* far = nullptr;
    if (from == pos) {
      far = neg;
    } else if (from == neg) {
      far = pos;
    }
    if (far != nullptr) {
      far->deliver_from_channel(e, d);
      return;
    }
  }
  {
    const auto snap = snap_.acquire();
    const auto& filter =
        d == Direction::kPositive ? snap->positive_filter : snap->negative_filter;
    if (filter && !filter(*e)) return;  // selector: not for this channel
    if (snap->state == State::kActive) {
      PortCore* far = from == snap->positive_end ? snap->negative_end : snap->positive_end;
      if (far != nullptr) {
        // Active, fully-plugged fast path: deliver without touching the
        // channel lock. Delivery runs outside any channel-internal state
        // (dispatch takes component queues and may recursively traverse
        // further channels); the snapshot guard only pins the config.
        far->deliver_from_channel(e, d);
        return;
      }
    }
  }
  forward_slow(e, d, from);
}

void Channel::forward_slow(const EventPtr& e, Direction d, const PortCore* from) {
  PortCore* far = nullptr;
  {
    std::lock_guard<std::mutex> g(mu_);
    switch (state_) {
      case State::kDead:
        return;  // disconnected: drop (reconfiguration uses hold+unplug to avoid this)
      case State::kHeld: {
        const bool toward_positive = (from != positive_end_);
        queue_.push_back(Pending{e, d, toward_positive});
        return;
      }
      case State::kActive: {
        far = far_of_locked(from);
        if (far == nullptr) {
          // Far end unplugged: queue until plugged back (§2.6 — no loss).
          const bool toward_positive = (from != positive_end_) || positive_end_ == nullptr;
          queue_.push_back(Pending{e, d, toward_positive});
          return;
        }
        break;
      }
    }
  }
  // Deliver outside the channel lock: dispatch takes component locks and
  // may recursively traverse further channels.
  far->deliver_from_channel(e, d);
}

void Channel::set_filter(Direction d, std::function<bool(const Event&)> filter) {
  std::lock_guard<std::mutex> g(mu_);
  (d == Direction::kPositive ? positive_filter_ : negative_filter_) = std::move(filter);
  publish_locked();
}

void Channel::hold() {
  std::lock_guard<std::mutex> g(mu_);
  if (state_ == State::kActive) {
    state_ = State::kHeld;
    publish_locked();
  }
}

void Channel::resume() {
  std::unique_lock<std::mutex> lock(mu_);
  if (state_ != State::kHeld) return;
  state_ = State::kActive;
  publish_locked();
  flush_locked(lock);
}

void Channel::flush_locked(std::unique_lock<std::mutex>& lock) {
  // Forward every queued event, in FIFO order, before releasing new traffic.
  // Events whose destination end is still unplugged stay queued.
  std::deque<Pending> ready;
  std::deque<Pending> still;
  for (auto& p : queue_) {
    PortCore* dest = p.toward_positive ? positive_end_ : negative_end_;
    if (dest == nullptr) {
      still.push_back(std::move(p));
    } else {
      ready.push_back(std::move(p));
    }
  }
  queue_ = std::move(still);
  PortCore* pos = positive_end_;
  PortCore* neg = negative_end_;
  lock.unlock();
  // Replay is a synchronous propagation like trigger(): batch the ready
  // transitions of the whole backlog into one scheduler hand-off.
  detail::DispatchBatchScope batch;
  for (auto& p : ready) {
    PortCore* dest = p.toward_positive ? pos : neg;
    if (dest != nullptr) dest->deliver_from_channel(p.event, p.direction);
  }
}

void Channel::unplug(PortCore* end) {
  std::lock_guard<std::mutex> g(mu_);
  if (end == positive_end_ && positive_end_ != nullptr) {
    unplugged_was_positive_ = true;
  } else if (end == negative_end_ && negative_end_ != nullptr) {
    unplugged_was_positive_ = false;
  } else {
    throw std::logic_error("unplug: port is not an end of this channel");
  }
  unplugged_end_ = end;
  end->detach_channel(this);
  (unplugged_was_positive_ ? positive_end_ : negative_end_) = nullptr;
  publish_locked();
}

void Channel::plug(PortCore* new_end) {
  std::unique_lock<std::mutex> lock(mu_);
  if (unplugged_end_ == nullptr) throw std::logic_error("plug: channel has no unplugged end");
  PortCore* other = unplugged_was_positive_ ? negative_end_ : positive_end_;
  if (other != nullptr) {
    if (new_end->type() != other->type()) throw std::logic_error("plug: port type mismatch");
    if (new_end->polarity() == other->polarity()) {
      throw std::logic_error("plug: polarity mismatch (must connect + to -)");
    }
  }
  (unplugged_was_positive_ ? positive_end_ : negative_end_) = new_end;
  unplugged_end_ = nullptr;
  new_end->attach_channel(shared_from_this());
  publish_locked();
  if (state_ == State::kActive) flush_locked(lock);
}

void Channel::destroy() {
  PortCore* pos;
  PortCore* neg;
  {
    std::lock_guard<std::mutex> g(mu_);
    if (state_ == State::kDead) return;
    state_ = State::kDead;
    pos = positive_end_;
    neg = negative_end_;
    positive_end_ = nullptr;
    negative_end_ = nullptr;
    queue_.clear();
    publish_locked();
  }
  if (pos != nullptr) pos->detach_channel(this);
  if (neg != nullptr) neg->detach_channel(this);
}

}  // namespace kompics
