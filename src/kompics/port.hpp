#pragma once

// Ports (paper §2.1) are bidirectional, event-based component interfaces.
//
// Each port declared on a component is a *pair* of halves with opposite
// polarities, exactly as in the Java runtime:
//
//   - provide<PT>() creates the pair {inside: negative, outside: positive}
//     and hands the component the inside (negative) half — the component
//     receives requests and triggers indications through it.
//   - require<PT>() creates {inside: positive, outside: negative} — the
//     component receives indications and triggers requests.
//
// Event propagation rule (DESIGN.md §2.2). For trigger(e, H):
//   d := opposite(polarity(H));   e "arrives" at H.pair.
// When an event with direction d arrives at half A:
//   1. if polarity(A) == d, dispatch e to A's subscriptions (grouped by
//      subscriber component, enqueued on each subscriber's work queue);
//   2. forward e into every channel attached to A; the channel delivers to
//      the far half F (dispatching there iff polarity(F) == d), after which
//      e arrives at F.pair — this realizes composite pass-through.
// This one rule produces all behaviours in the paper: fan-out (Fig. 6),
// sequential multi-handler dispatch (Fig. 7), hierarchical delivery
// (Figs. 10-11), and no loop-back of an event to the component that
// triggered it.
//
// Concurrency (this file's hot-path contract): the subscription and channel
// tables are RCU copy-on-write snapshots (rcu.hpp). dispatch/arrive/
// has_match read a snapshot lock-free; subscribe/unsubscribe and channel
// attach/detach serialize on `mu_`, build a new immutable table, and swap
// it in. `sub_epoch_` increments (release) after every subscription-table
// swap so per-component match caches (component.hpp) can validate entries
// without re-scanning.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <typeindex>
#include <vector>

#include "event.hpp"
#include "handler.hpp"
#include "port_type.hpp"
#include "protocol_desc.hpp"
#include "rcu.hpp"

namespace kompics {

class Channel;
class ComponentCore;
using ChannelRef = std::shared_ptr<Channel>;

/// One half of a port pair. Owned by the declaring component; referenced by
/// channels and typed handles.
class PortCore {
 public:
  PortCore(ComponentCore* owner, const PortType* type, Direction polarity, bool inside);
  ~PortCore();

  PortCore(const PortCore&) = delete;
  PortCore& operator=(const PortCore&) = delete;

  ComponentCore* owner() const { return owner_; }
  const PortType* type() const { return type_; }
  Direction polarity() const { return polarity_; }
  bool is_inside() const { return inside_; }
  /// True when this half belongs to a component's built-in control port.
  /// Resolved once at construction (it is a property of the port type).
  bool is_control() const { return control_; }
  PortCore* pair() const { return pair_; }
  void link_pair(PortCore* p) { pair_ = p; }

  /// Identification of the declared port this half belongs to — used to map
  /// queued work onto a replacement component's matching port (§2.6).
  void set_port_id(std::type_index tid, bool provided) {
    port_tid_ = tid;
    port_provided_ = provided;
  }
  std::type_index port_tid() const { return port_tid_; }
  bool port_provided() const { return port_provided_; }

  /// Entry point used by ComponentDefinition::trigger.
  void trigger(const EventPtr& e);

  /// trigger() calls observed on this half while metrics were enabled.
  std::uint64_t publish_count() const {
    return publish_count_.load(std::memory_order_relaxed);
  }

  /// An event with direction d arrives at this half (rule step above).
  void arrive(const EventPtr& e, Direction d);

  /// Delivery from a channel: optional local dispatch, then arrival at pair.
  void deliver_from_channel(const EventPtr& e, Direction d);

  /// Dispatches e to matching subscriptions on this half; returns the number
  /// of (subscriber, handler) matches. Used directly for fault escalation.
  std::size_t dispatch(const EventPtr& e);

  /// True if at least one active subscription on this half accepts e.
  /// (Used for channel pruning, paper §2.3, and fault escalation, §2.5.)
  bool has_match(const Event& e) const;

  void add_subscription(const SubscriptionRef& s);
  void remove_subscription(const SubscriptionRef& s);

  /// Monotonic counter bumped after every subscription-table change.
  /// Readers pairing (epoch, table scan) — epoch first, acquire — get a
  /// sound cache validity token: equal epoch later implies same table.
  std::uint64_t sub_epoch() const { return sub_epoch_.load(std::memory_order_acquire); }

  /// Snapshot of the active subscriptions held by `subscriber` that accept
  /// `e` — taken at execution time so that (un)subscribe during handling
  /// behaves as in the paper (a handler that unsubscribes itself still
  /// finishes the current event, but handles no further ones).
  std::vector<SubscriptionRef> matching_subscriptions(ComponentCore* subscriber,
                                                      const Event& e) const;

  /// Same, appending into `out` (cleared first) — lets the executing
  /// worker's match cache reuse its vector capacity across events.
  void matching_subscriptions_into(ComponentCore* subscriber, const Event& e,
                                   std::vector<SubscriptionRef>& out) const;

  void attach_channel(const ChannelRef& c);
  void detach_channel(const Channel* c);
  std::vector<ChannelRef> channels() const;

 private:
  friend class ComponentCore;

  struct SubTable : detail::RcuObject {
    std::vector<SubscriptionRef> subs;
  };
  struct ChanTable : detail::RcuObject {
    std::vector<ChannelRef> channels;
  };

  ComponentCore* owner_;
  const PortType* type_;
  Direction polarity_;
  bool inside_;
  bool control_;
  PortCore* pair_ = nullptr;
  std::type_index port_tid_{typeid(void)};
  bool port_provided_ = false;

  mutable std::mutex mu_;  ///< serializes writers; readers use the snapshots
  detail::RcuCell<const SubTable> subs_;
  detail::RcuCell<const ChanTable> chans_;
  std::atomic<std::uint64_t> sub_epoch_{0};
  // Cached table sizes, stored (release) after each table swap. The hot
  // paths load them (acquire) to skip pinning a snapshot of an empty table
  // — most halves have no subscriptions or no channels. A reader that sees
  // a stale zero linearizes before the concurrent add, exactly as if it had
  // pinned the pre-swap snapshot.
  std::atomic<std::uint32_t> sub_count_{0};
  std::atomic<std::uint32_t> chan_count_{0};
  // Telemetry: bumped in trigger() only while metrics are enabled, so the
  // disabled hot path never writes this line.
  std::atomic<std::uint64_t> publish_count_{0};
};

/// A declared port: the linked pair of halves.
struct PortPair {
  PortPair(ComponentCore* owner, const PortType* type, bool provided);

  std::unique_ptr<PortCore> inside;
  std::unique_ptr<PortCore> outside;
  bool provided;
};

/// Typed handles. Positive<PT> is a half through which the holder receives
/// positive (indication) events: the handle a component gets from
/// require<PT>(), and the handle the environment gets for a child's
/// *provided* port. Negative<PT> is the dual.
///
/// The next/request/open member templates build coroutine-protocol
/// descriptors (protocol_desc.hpp); they are only awaitable inside a
/// Proto<> coroutine with protocol.hpp included.
template <class PT>
struct Positive {
  PortCore* core = nullptr;

  template <class E, class Pred = protocol::AcceptAll>
  protocol::NextDesc<E, Pred> next(Pred pred = {}) const {
    return {core, std::move(pred)};
  }
  template <class Resp, class Req, class Pred = protocol::AcceptAll>
  protocol::RequestDesc<Resp, Req, Pred> request(Req req, Pred pred = {}) const {
    return {core, std::move(req), std::move(pred)};
  }
  template <class E, class Pred = protocol::AcceptAll>
  protocol::OpenDesc<E, Pred> open(Pred pred = {}) const {
    return {core, std::move(pred)};
  }
};

template <class PT>
struct Negative {
  PortCore* core = nullptr;

  template <class E, class Pred = protocol::AcceptAll>
  protocol::NextDesc<E, Pred> next(Pred pred = {}) const {
    return {core, std::move(pred)};
  }
  template <class Resp, class Req, class Pred = protocol::AcceptAll>
  protocol::RequestDesc<Resp, Req, Pred> request(Req req, Pred pred = {}) const {
    return {core, std::move(req), std::move(pred)};
  }
  template <class E, class Pred = protocol::AcceptAll>
  protocol::OpenDesc<E, Pred> open(Pred pred = {}) const {
    return {core, std::move(pred)};
  }
};

}  // namespace kompics
