#pragma once

// Debug/diagnostics layer for the runtime's concurrency invariants.
//
// Three facilities, all free in release builds:
//
//   - KOMPICS_ASSERT(cond, msg): invariant checks that are compiled in when
//     KOMPICS_DEBUG_ASSERTS is defined (Debug builds and every
//     KOMPICS_SANITIZE build — the CMake option defines it) and compiled
//     out otherwise. Failures abort with file:line so sanitizer runs keep a
//     usable stack.
//
//   - KOMPICS_TSAN_HAPPENS_BEFORE/AFTER(addr): ThreadSanitizer ordering
//     annotations, no-ops unless the TU is built with -fsanitize=thread.
//     Used to document the Vyukov MPSC queue's push->pop handoff edge.
//
//   - SingleConsumerGuard / KOMPICS_ASSERT_SINGLE_CONSUMER: a debug-only
//     RAII check that a code region declared single-consumer (MpscQueue
//     pop/empty, ComponentCore::execute) is never entered by two threads at
//     once — turning a silent discipline violation into an immediate abort.

#include <atomic>
#include <cstdio>
#include <cstdlib>

// ---- sanitizer detection --------------------------------------------------

#if defined(__SANITIZE_THREAD__)
#define KOMPICS_TSAN_ENABLED 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define KOMPICS_TSAN_ENABLED 1
#endif
#endif

#if defined(__SANITIZE_ADDRESS__)
#define KOMPICS_ASAN_ENABLED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define KOMPICS_ASAN_ENABLED 1
#endif
#endif

// ---- TSan annotations -----------------------------------------------------

#if defined(KOMPICS_TSAN_ENABLED)
extern "C" {
void AnnotateHappensBefore(const char* file, int line, const volatile void* addr);
void AnnotateHappensAfter(const char* file, int line, const volatile void* addr);
}
#define KOMPICS_TSAN_HAPPENS_BEFORE(addr) AnnotateHappensBefore(__FILE__, __LINE__, addr)
#define KOMPICS_TSAN_HAPPENS_AFTER(addr) AnnotateHappensAfter(__FILE__, __LINE__, addr)
#else
#define KOMPICS_TSAN_HAPPENS_BEFORE(addr) ((void)0)
#define KOMPICS_TSAN_HAPPENS_AFTER(addr) ((void)0)
#endif

// ---- invariant checks -----------------------------------------------------

#if !defined(KOMPICS_DEBUG_ASSERTS) && \
    (!defined(NDEBUG) || defined(KOMPICS_TSAN_ENABLED) || defined(KOMPICS_ASAN_ENABLED))
#define KOMPICS_DEBUG_ASSERTS 1
#endif

#if defined(KOMPICS_DEBUG_ASSERTS)
#define KOMPICS_ASSERT(cond, msg)                                                     \
  do {                                                                                \
    if (!(cond)) {                                                                    \
      std::fprintf(stderr, "KOMPICS_ASSERT failed at %s:%d: %s — %s\n", __FILE__,     \
                   __LINE__, #cond, msg);                                             \
      std::abort();                                                                   \
    }                                                                                 \
  } while (0)
#else
#define KOMPICS_ASSERT(cond, msg) ((void)0)
#endif

namespace kompics::debug {

#if defined(KOMPICS_DEBUG_ASSERTS)
/// Aborts if two threads are inside guarded regions on the same flag at
/// once. Attach one flag per protected resource.
class SingleConsumerGuard {
 public:
  explicit SingleConsumerGuard(std::atomic<bool>& flag) : flag_(flag) {
    const bool was_occupied = flag_.exchange(true, std::memory_order_acquire);
    KOMPICS_ASSERT(!was_occupied, "single-consumer discipline violated: concurrent entry");
  }
  ~SingleConsumerGuard() { flag_.store(false, std::memory_order_release); }

  SingleConsumerGuard(const SingleConsumerGuard&) = delete;
  SingleConsumerGuard& operator=(const SingleConsumerGuard&) = delete;

 private:
  std::atomic<bool>& flag_;
};
#endif

}  // namespace kompics::debug

/// Declares the per-resource flag a KOMPICS_ASSERT_SINGLE_CONSUMER uses.
/// Always declared (one byte, dwarfed by cache-line padding) so member
/// lists don't change shape between build modes.
#define KOMPICS_SINGLE_CONSUMER_FLAG(name) std::atomic<bool> name{false}

#if defined(KOMPICS_DEBUG_ASSERTS)
#define KOMPICS_CONCAT_IMPL(a, b) a##b
#define KOMPICS_CONCAT(a, b) KOMPICS_CONCAT_IMPL(a, b)
#define KOMPICS_ASSERT_SINGLE_CONSUMER(flag) \
  ::kompics::debug::SingleConsumerGuard KOMPICS_CONCAT(kompics_scg_, __LINE__)(flag)
#else
#define KOMPICS_ASSERT_SINGLE_CONSUMER(flag) ((void)(flag))
#endif
