#include "kompics/protocol.hpp"

#include <algorithm>

namespace kompics::protocol {

// ---------------------------------------------------------------------------
// FrameControl — the cancellation registry
// ---------------------------------------------------------------------------

bool FrameControl::add_sub(const SubscriptionRef& s) {
  {
    std::lock_guard<std::mutex> g(mu_);
    if (!cancelled.load(std::memory_order_relaxed)) {
      subs_.push_back(s);
      return true;
    }
  }
  // Lost the race with cancel_all(): the sweep never saw this subscription,
  // so revoke it here (remove_subscription is thread-safe).
  if (s != nullptr && s->half != nullptr) s->half->remove_subscription(s);
  return false;
}

bool FrameControl::drop_sub(const SubscriptionRef& s) {
  std::lock_guard<std::mutex> g(mu_);
  auto it = std::find(subs_.begin(), subs_.end(), s);
  if (it == subs_.end()) return false;
  subs_.erase(it);
  return true;
}

bool FrameControl::add_timer(PortCore* timer_half, timing::TimeoutId id) {
  std::lock_guard<std::mutex> g(mu_);
  if (cancelled.load(std::memory_order_relaxed)) return false;
  timers_.push_back({timer_half, id});
  return true;
}

bool FrameControl::drop_timer(timing::TimeoutId id) {
  std::lock_guard<std::mutex> g(mu_);
  auto it = std::find_if(timers_.begin(), timers_.end(),
                         [id](const ArmedRec& r) { return r.id == id; });
  if (it == timers_.end()) return false;
  timers_.erase(it);
  return true;
}

// ---------------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------------

Runner& Runner::of(ComponentDefinition& def) {
  if (def.protocol_host_ == nullptr) {
    def.protocol_host_ = std::make_unique<Runner>(def);
  }
  return static_cast<Runner&>(*def.protocol_host_);
}

Runner::Runner(ComponentDefinition& def) : def_(&def) {
  PortPair* pair = def.core_->declare_port(&port_type<ProtocolPort>(),
                                           std::type_index(typeid(ProtocolPort)), true);
  resume_in_ = pair->inside.get();
  resume_out_ = pair->outside.get();
  def.subscribe<ResumeEvent>(resume_in_, [this](const ResumeEvent& e) {
    resume_leaf(e.frame, e.leaf);
  });
}

Runner::~Runner() { destroy_frames(); }

void Runner::destroy_frames() noexcept {
  // Called by ~ComponentCore before the definition is destroyed ("no
  // concurrency from here on"), so frame locals can still reference the
  // derived definition while they unwind. Destroying a suspended frame
  // unwinds it: awaiter/stream/timer destructors release their
  // registrations, and tearing_down_ keeps them from triggering
  // CancelTimeouts into ports mid-teardown (destroy_tree's cancel_all
  // already swept those while channels were attached).
  tearing_down_ = true;
  std::vector<FramePtr> frames;
  {
    std::lock_guard<std::mutex> g(live_mu_);
    frames.swap(live_);
  }
  for (auto& f : frames) {
    f->cancelled.store(true, std::memory_order_release);
    if (f->top) {
      std::coroutine_handle<> h = f->top;
      f->top = {};
      h.destroy();
    }
  }
}

void Runner::cancel_all() noexcept {
  // Called from destroy_tree(), possibly on a foreign thread, while the
  // component's channels are still attached — the only window in which an
  // armed timeout can still reach its Timer provider. Frames are NOT
  // destroyed here (the consumer may be running one); they die with the
  // definition in ~Runner. Idempotent: a second sweep finds empty lists.
  std::vector<FramePtr> frames;
  {
    std::lock_guard<std::mutex> g(live_mu_);
    frames = live_;
  }
  for (auto& f : frames) {
    f->cancelled.store(true, std::memory_order_release);
    std::vector<SubscriptionRef> subs;
    std::vector<FrameControl::ArmedRec> timers;
    {
      std::lock_guard<std::mutex> g(f->mu_);
      subs.swap(f->subs_);
      timers.swap(f->timers_);
    }
    for (auto& s : subs) {
      if (s != nullptr && s->half != nullptr) s->half->remove_subscription(s);
    }
    for (auto& t : timers) {
      try {
        t.timer_half->trigger(std::make_shared<const timing::CancelTimeout>(t.id));
      } catch (...) {
        // A torn-down timer channel is acceptable during shutdown.
      }
    }
  }
}

std::size_t Runner::live_frame_count() const {
  std::lock_guard<std::mutex> g(live_mu_);
  return live_.size();
}

void Runner::post_resume(const FramePtr& f, std::coroutine_handle<> leaf) {
  // An ordinary trigger on the hidden provided port: the event arrives at
  // the inside half, dispatches to our ResumeEvent subscription, and is
  // enqueued on the component's work queue — resumption thus rides the
  // normal §6 path (single-consumer serialization, parking while passive,
  // telemetry) with no scheduler special-casing.
  resume_out_->trigger(std::make_shared<const ResumeEvent>(f, leaf));
}

void Runner::adopt(const FramePtr& f, std::coroutine_handle<> top) {
  f->runner = this;
  f->top = top;
  {
    std::lock_guard<std::mutex> g(live_mu_);
    live_.push_back(f);
  }
  if (ComponentCore::running_on_this_thread() == def_->core_) {
    // Spawned from a handler of this very component: the caller already
    // holds the single-consumer context, so run to the first suspension
    // inline — a protocol that can answer from local state completes
    // synchronously, and a pre-suspension error surfaces out of spawn().
    top.resume();
    if (f->done) finish(f);
  } else {
    // Foreign context: another component's handler, or an external thread
    // (a test driver, a bootstrap path). Running inline here would race
    // with this component's work items the moment the segment registers a
    // subscription — the segment must serialize with handlers exactly like
    // every later resumption, so post it through the hidden port.
    post_resume(f, top);
  }
}

void Runner::resume_leaf(const FramePtr& f, std::coroutine_handle<> leaf) {
  if (f->done || f->cancelled.load(std::memory_order_acquire)) return;
  leaf.resume();
  if (f->done) finish(f);
}

void Runner::finish(const FramePtr& f) {
  {
    std::lock_guard<std::mutex> g(live_mu_);
    live_.erase(std::remove(live_.begin(), live_.end(), f), live_.end());
  }
  std::exception_ptr err = f->error;
  if (f->top) {
    std::coroutine_handle<> h = f->top;
    f->top = {};
    h.destroy();
  }
  // A frame that exited with an exception faults the component exactly like
  // a throwing handler: the throw propagates out of the invoking work item
  // (or out of spawn(), for a frame that never suspended) into the §2.5
  // escalation path.
  if (err) std::rethrow_exception(err);
}

// ---------------------------------------------------------------------------
// Arms / awaiters (non-template pieces)
// ---------------------------------------------------------------------------

namespace detail {

void MultiAwaiterBase::post() {
  if (posted || ctl == nullptr || !leaf) return;
  posted = true;
  ctl->runner->post_resume(ctl->shared_from_this(), leaf);
}

void notify_state(StreamStateBase& st) {
  if (st.waiter == nullptr) return;
  MultiAwaiterBase* w = st.waiter;
  st.waiter = nullptr;  // one fire per parked arm; later events just buffer
  w->arm_fired(st.waiter_index);
}

void release_state_sub(StreamStateBase& st) {
  if (st.sub == nullptr) return;
  if (st.ctl->drop_sub(st.sub) && st.sub->half != nullptr) {
    st.sub->half->remove_subscription(st.sub);
  }
  st.sub.reset();
  st.waiter = nullptr;
}

void SleepArm::attach(AwaitCtx cx, MultiAwaiterBase* owner, std::size_t index) {
  cx_ = cx;
  auto req = timing::schedule<ProtoTimeout>(delay_ms_);
  id_ = req->timeout_id();
  sub_ = cx.runner->subscribe_event<ProtoTimeout>(
      half_, [this, owner, index](const ProtoTimeout& t) {
        if (fired_ || t.id() != id_) return;
        fired_ = true;
        owner->arm_fired(index);
      });
  cx.ctl->add_sub(sub_);
  half_->trigger(req);
  if (!cx_.ctl->add_timer(half_, id_)) {
    // Frame cancelled between scheduling and registration: revoke here
    // (ThreadTimer tolerates a cancel racing its schedule).
    half_->trigger(std::make_shared<const timing::CancelTimeout>(id_));
  }
}

void SleepArm::detach() {
  if (sub_ == nullptr) return;
  if (cx_.ctl->drop_sub(sub_)) half_->remove_subscription(sub_);
  sub_ = nullptr;
  bool registered = cx_.ctl->drop_timer(id_);
  if (registered && !fired_ && !cx_.runner->tearing_down()) {
    // A losing when_any arm must not leave its timeout armed (the PR 1
    // ThreadTimer-leak class): cancel through the Timer port.
    half_->trigger(std::make_shared<const timing::CancelTimeout>(id_));
  }
}

ArmedTimer ArmTimerAwaiter::await_resume() {
  auto st = std::make_unique<ArmedTimerState>();
  st->ctl = cx_.ctl;
  st->runner = cx_.runner;
  st->timer_half = d_.timer_half;
  auto req = timing::schedule<ProtoTimeout>(d_.delay_ms);
  st->id = req->timeout_id();
  ArmedTimerState* s = st.get();
  s->sub = cx_.runner->subscribe_event<ProtoTimeout>(
      d_.timer_half, [s](const ProtoTimeout& t) {
        if (s->fired || t.id() != s->id) return;
        s->fired = true;
        notify_state(*s);
      });
  cx_.ctl->add_sub(s->sub);
  d_.timer_half->trigger(req);
  if (!cx_.ctl->add_timer(d_.timer_half, s->id)) {
    d_.timer_half->trigger(std::make_shared<const timing::CancelTimeout>(s->id));
  }
  return ArmedTimer(std::move(st));
}

}  // namespace detail

void ArmedTimer::cancel() {
  if (state_ == nullptr) return;
  detail::release_state_sub(*state_);
  bool registered = state_->ctl->drop_timer(state_->id);
  if (registered && !state_->fired && !state_->runner->tearing_down()) {
    state_->timer_half->trigger(std::make_shared<const timing::CancelTimeout>(state_->id));
  }
  state_.reset();
}

}  // namespace kompics::protocol
