#pragma once

// Channels (paper §2.1, §2.6): first-class FIFO bindings between two
// complementary port halves. Channels forward events in both directions and
// support the four reconfiguration commands of §2.6:
//
//   hold()    — stop forwarding; queue events in both directions.
//   resume()  — flush queued events in FIFO order, then forward as usual.
//   unplug(p) — detach one end from its port (events toward the unplugged
//               end are queued, so nothing is dropped mid-reconfiguration).
//   plug(p)   — attach the unplugged end to a (possibly different) port.
//
// A channel connects a positive half to a negative half of the same port
// type. Since a composite component's *inside* half has flipped polarity,
// the same connect() call also builds pass-through channels from a
// composite's own port to its children's ports (Figs. 10-11).

#include <deque>
#include <functional>
#include <memory>
#include <mutex>

#include "event.hpp"
#include "port_type.hpp"

namespace kompics {

class PortCore;

class Channel : public std::enable_shared_from_this<Channel> {
 public:
  enum class State : unsigned char { kActive, kHeld, kDead };

  /// Use connect() (component.hpp) instead of constructing directly.
  Channel(PortCore* positive_end, PortCore* negative_end)
      : positive_end_(positive_end), negative_end_(negative_end) {}

  /// Forward an event that left `from` toward the far end. Honors
  /// hold/unplug queuing; drops events only when the channel is dead
  /// (i.e., after disconnect).
  void forward(const EventPtr& e, Direction d, const PortCore* from);

  /// §2.6 reconfiguration commands.
  void hold();
  void resume();
  void unplug(PortCore* end);
  void plug(PortCore* new_end);

  /// Channel selector (the Java implementation's per-channel event
  /// filtering, the mechanism behind §2.3's "avoids forwarding events on
  /// channels that would not lead to any compatible subscribed handlers"):
  /// events traveling in direction `d` are forwarded only when the
  /// predicate accepts them. One filter per direction; pass nullptr to
  /// clear. Filters must be pure (they run under the channel lock).
  void set_filter(Direction d, std::function<bool(const Event&)> filter);

  /// Tears the channel down (disconnect): detaches both ends, drops queued
  /// events.
  void destroy();

  State state() const {
    std::lock_guard<std::mutex> g(mu_);
    return state_;
  }
  PortCore* positive_end() const { return positive_end_; }
  PortCore* negative_end() const { return negative_end_; }

  /// Number of events currently queued (held or awaiting plug).
  std::size_t queued() const {
    std::lock_guard<std::mutex> g(mu_);
    return queue_.size();
  }

 private:
  struct Pending {
    EventPtr event;
    Direction direction;
    bool toward_positive;  ///< destination end when queued
  };

  PortCore* far_of(const PortCore* from) const {
    return from == positive_end_ ? negative_end_ : positive_end_;
  }

  void flush_locked(std::unique_lock<std::mutex>& lock);

  mutable std::mutex mu_;
  State state_ = State::kActive;
  std::function<bool(const Event&)> positive_filter_;
  std::function<bool(const Event&)> negative_filter_;
  PortCore* positive_end_;
  PortCore* negative_end_;
  PortCore* unplugged_end_ = nullptr;  ///< remembered slot while unplugged
  bool unplugged_was_positive_ = false;
  std::deque<Pending> queue_;
};

using ChannelRef = std::shared_ptr<Channel>;

}  // namespace kompics
