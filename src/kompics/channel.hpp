#pragma once

// Channels (paper §2.1, §2.6): first-class FIFO bindings between two
// complementary port halves. Channels forward events in both directions and
// support the four reconfiguration commands of §2.6:
//
//   hold()    — stop forwarding; queue events in both directions.
//   resume()  — flush queued events in FIFO order, then forward as usual.
//   unplug(p) — detach one end from its port (events toward the unplugged
//               end are queued, so nothing is dropped mid-reconfiguration).
//   plug(p)   — attach the unplugged end to a (possibly different) port.
//
// A channel connects a positive half to a negative half of the same port
// type. Since a composite component's *inside* half has flipped polarity,
// the same connect() call also builds pass-through channels from a
// composite's own port to its children's ports (Figs. 10-11).
//
// Hot-path contract: the channel's forwarding configuration (state, ends,
// filters) is published as an RCU snapshot. `forward` on an active,
// fully-plugged channel reads the snapshot and delivers without taking the
// channel lock; only the reconfiguration states (held / unplugged / dead —
// which need the FIFO queue) fall back to `mu_`. All mutators rebuild and
// swap the snapshot under `mu_`.

#include <deque>
#include <functional>
#include <memory>
#include <mutex>

#include "event.hpp"
#include "port_type.hpp"
#include "rcu.hpp"

namespace kompics {

class PortCore;

class Channel : public std::enable_shared_from_this<Channel> {
 public:
  enum class State : unsigned char { kActive, kHeld, kDead };

  /// Use connect() (component.hpp) instead of constructing directly.
  Channel(PortCore* positive_end, PortCore* negative_end);
  ~Channel();

  /// Forward an event that left `from` toward the far end. Honors
  /// hold/unplug queuing; drops events only when the channel is dead
  /// (i.e., after disconnect).
  void forward(const EventPtr& e, Direction d, const PortCore* from);

  /// §2.6 reconfiguration commands.
  void hold();
  void resume();
  void unplug(PortCore* end);
  void plug(PortCore* new_end);

  /// Channel selector (the Java implementation's per-channel event
  /// filtering, the mechanism behind §2.3's "avoids forwarding events on
  /// channels that would not lead to any compatible subscribed handlers"):
  /// events traveling in direction `d` are forwarded only when the
  /// predicate accepts them. One filter per direction; pass nullptr to
  /// clear. Filters must be pure (the fast path runs them lock-free,
  /// concurrently with other forwards).
  void set_filter(Direction d, std::function<bool(const Event&)> filter);

  /// Tears the channel down (disconnect): detaches both ends, drops queued
  /// events.
  void destroy();

  State state() const {
    std::lock_guard<std::mutex> g(mu_);
    return state_;
  }
  PortCore* positive_end() const {
    std::lock_guard<std::mutex> g(mu_);
    return positive_end_;
  }
  PortCore* negative_end() const {
    std::lock_guard<std::mutex> g(mu_);
    return negative_end_;
  }

  /// Number of events currently queued (held or awaiting plug).
  std::size_t queued() const {
    std::lock_guard<std::mutex> g(mu_);
    return queue_.size();
  }

 private:
  struct Pending {
    EventPtr event;
    Direction direction;
    bool toward_positive;  ///< destination end when queued
  };

  /// Immutable forwarding configuration, swapped on every mutation.
  struct Snap : detail::RcuObject {
    State state = State::kActive;
    PortCore* positive_end = nullptr;
    PortCore* negative_end = nullptr;
    std::function<bool(const Event&)> positive_filter;
    std::function<bool(const Event&)> negative_filter;
  };

  PortCore* far_of_locked(const PortCore* from) const {
    return from == positive_end_ ? negative_end_ : positive_end_;
  }

  /// Rebuilds the snapshot from the authoritative fields. Call with `mu_`
  /// held after every mutation.
  void publish_locked();

  void forward_slow(const EventPtr& e, Direction d, const PortCore* from);
  void flush_locked(std::unique_lock<std::mutex>& lock);

  mutable std::mutex mu_;
  State state_ = State::kActive;
  std::function<bool(const Event&)> positive_filter_;
  std::function<bool(const Event&)> negative_filter_;
  PortCore* positive_end_;
  PortCore* negative_end_;
  PortCore* unplugged_end_ = nullptr;  ///< remembered slot while unplugged
  bool unplugged_was_positive_ = false;
  std::deque<Pending> queue_;
  detail::RcuCell<const Snap> snap_;

  // Lock-free fast-path mirror of the default configuration (active, both
  // ends plugged, no filters). forward() reads it with plain atomic loads
  // — no snapshot pin — and falls back to the snapshot path whenever the
  // flag is off or the end pointers don't line up with the sender (which
  // catches every torn read during a mutation; see forward()). Updated by
  // publish_locked() with `mu_` held.
  std::atomic<bool> fast_path_{false};
  std::atomic<PortCore*> fast_pos_{nullptr};
  std::atomic<PortCore*> fast_neg_{nullptr};
};

using ChannelRef = std::shared_ptr<Channel>;

}  // namespace kompics
