#pragma once

// Multi-core component scheduler (paper §3): a pool of worker threads, each
// with a dedicated queue of ready components. A worker that runs out of
// ready components becomes a thief: it picks the victim with the most ready
// components and steals a batch of half of them ("batching shows a
// considerable performance improvement over stealing small numbers of ready
// components"). Components' own work queues are lock-free MPSC queues; the
// ready-state machine in ComponentCore guarantees a component is never
// executed by two workers at once.
//
// The steal batch fraction and stealing itself are configurable so the A1
// ablation bench can reproduce the paper's batching claim.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "scheduler.hpp"

namespace kompics {

class WorkStealingScheduler final : public Scheduler {
 public:
  struct Options {
    std::size_t workers = 0;         ///< 0 = hardware concurrency
    bool stealing = true;            ///< disable for the A1 ablation
    std::size_t steal_divisor = 2;   ///< steal size = victim_size / divisor
    std::size_t min_steal = 1;
  };

  WorkStealingScheduler() : WorkStealingScheduler(Options{}) {}
  explicit WorkStealingScheduler(Options options);
  ~WorkStealingScheduler() override;

  void schedule(ComponentCorePtr component) override;
  void schedule_batch(std::vector<ComponentCorePtr>& batch) override;
  void start() override;
  void shutdown() override;
  std::vector<std::pair<std::string, std::uint64_t>> telemetry_counters() const override;

  std::size_t worker_count() const { return workers_.size(); }

  struct Stats {
    std::uint64_t executed = 0;
    std::uint64_t steals = 0;
    std::uint64_t stolen_components = 0;
    std::uint64_t parks = 0;
    std::uint64_t wakes = 0;  ///< condition-variable notifications issued
  };
  Stats stats() const;

 private:
  struct Worker {
    mutable std::mutex mu;
    std::deque<ComponentCorePtr> queue;
    std::atomic<std::size_t> size{0};
    std::thread thread;
    // Counters are written by the owning worker thread but read by any
    // thread through stats(); relaxed atomics make that race-free without
    // ordering cost on the hot path.
    std::atomic<std::uint64_t> executed{0};
    std::atomic<std::uint64_t> steals{0};
    std::atomic<std::uint64_t> stolen{0};
    std::atomic<std::uint64_t> parks{0};
  };

  void worker_main(std::size_t index);
  ComponentCorePtr pop_local(Worker& w);
  ComponentCorePtr try_steal(std::size_t self);
  void push_to(std::size_t index, ComponentCorePtr c);
  void wake_one();

  Options options_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::atomic<std::size_t> round_robin_{0};
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};

  // Serializes the join loop in shutdown(); see the comment there.
  std::mutex join_mu_;

  std::mutex sleep_mu_;
  std::condition_variable sleep_cv_;
  std::atomic<int> sleepers_{0};
  // Notifications are issued by arbitrary producer threads (not workers),
  // so this one lives outside the per-worker blocks. Only bumped when a
  // sleeper was actually notified — the no-sleeper fast path stays clean.
  std::atomic<std::uint64_t> wakes_{0};
  // Bumped by every schedule(); parked workers wait on it changing so a
  // sleeper notified for work pushed to *another* worker's queue wakes up
  // and steals instead of re-sleeping on its own empty queue.
  std::atomic<std::uint64_t> work_epoch_{0};
};

}  // namespace kompics
