#pragma once

// Time and randomness services (DESIGN.md §2.6). Components must obtain the
// current time and random numbers exclusively through these interfaces; the
// simulation runtime substitutes a virtual clock and seeded deterministic
// streams, which is this port of the paper's JVM bytecode instrumentation
// for running unmodified code in simulated time (§3).

#include <chrono>
#include <cstdint>
#include <random>

namespace kompics {

/// Milliseconds since an arbitrary epoch. All framework-visible time is
/// integral milliseconds, matching the granularity the paper's scenarios use.
using TimeMs = std::int64_t;
using DurationMs = std::int64_t;

/// Abstract clock: wall time in production, virtual time in simulation.
class Clock {
 public:
  virtual ~Clock() = default;
  virtual TimeMs now() const = 0;
};

/// Production clock backed by std::chrono::steady_clock.
class WallClock final : public Clock {
 public:
  TimeMs now() const override {
    using namespace std::chrono;
    return duration_cast<milliseconds>(steady_clock::now().time_since_epoch()).count();
  }
};

/// Deterministic random stream. One stream per component (derived from the
/// runtime seed and the component id) so that simulation runs are
/// reproducible and independent of scheduling order.
class RngStream {
 public:
  explicit RngStream(std::uint64_t seed) : engine_(seed) {}

  std::uint64_t next_u64() { return engine_(); }

  /// Uniform integer in [0, bound).
  std::uint64_t next_below(std::uint64_t bound) {
    return bound == 0 ? 0 : std::uniform_int_distribution<std::uint64_t>(0, bound - 1)(engine_);
  }

  double next_double() { return std::uniform_real_distribution<double>(0.0, 1.0)(engine_); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

/// Splits a seed into independent per-entity seeds (splitmix64 finalizer).
inline std::uint64_t derive_seed(std::uint64_t root, std::uint64_t salt) {
  std::uint64_t z = root + 0x9e3779b97f4a7c15ULL * (salt + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace kompics
