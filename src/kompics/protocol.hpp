#pragma once

// Coroutine protocol layer (ROADMAP item 5, DESIGN.md §9): C++20 coroutines
// as sugar over subscribe/trigger, so multi-step protocols (quorum phases,
// handshakes, lookups) read as straight-line code instead of hand-rolled
// callback state machines:
//
//   Proto<void> MyComponent::fetch(Key k) {
//     auto resp = co_await when_any(
//         net_.request<LookupResponse>(LookupRequest(id, k),
//                                      [id](const LookupResponse& r) { return r.id == id; }),
//         sleep(timer_, 200));
//     if (resp.index() == 1) co_return;            // timed out
//     use(*std::get<0>(resp));
//   }
//   ...
//   protocol::spawn(fetch(k));                     // from any handler
//
// Execution model — nothing about §3/§6 changes:
//   * Awaiting NEVER blocks a worker. A co_await parks the coroutine frame
//     inside the component; the worker returns to the scheduler.
//   * Resumption is an ordinary work item. When an awaited event fires (in
//     a subscription invoked under the component's single-consumer
//     discipline), a ResumeEvent carrying the frame is triggered on a
//     hidden provided port of the same component; it flows through the
//     normal enqueue/dispatch path and the frame resumes inside run_item —
//     so frame code runs exactly like handler code: serialized with every
//     other handler of the component, free to touch component state.
//   * Life-cycle: a passive component parks ResumeEvents like any normal
//     event (frames freeze while the component is stopped). destroy_tree()
//     cancels every in-flight frame via ProtocolHost::cancel_all() — armed
//     timeout timers are cancelled through the Timer port while channels
//     are still attached, pending subscriptions are deactivated, and the
//     suspended frames are destroyed with the definition (never resumed).
//
// Primitives (all awaitable only inside a Proto<> coroutine):
//   port.next<E>(pred)          one-shot: next matching E (not buffered)
//   port.request<Resp>(req, p)  subscribe, trigger req, await the response
//   port.open<E>(pred)          -> Stream<E>: subscribes now, buffers every
//                               match; co_await s.next() pops (the quorum
//                               primitive — no event lost between a fire
//                               and the frame's resumption)
//   sleep(timer, ms)            one timeout on the Timer port
//   arm_timer(timer, ms)        -> ArmedTimer: a deadline shared by many
//                               awaits (co_await t.wait() as a when_any arm)
//   when_any(d...), when_all(d...)   quorum-style fan-out combinators
//
// A Proto coroutine must be a non-static member of a ComponentDefinition
// subclass (or take one as its first parameter): the promise binds the
// owning component from the call's object argument (P0914).

#include <atomic>
#include <coroutine>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <tuple>
#include <type_traits>
#include <typeindex>
#include <utility>
#include <variant>
#include <vector>

#include "kompics/component.hpp"
#include "kompics/event.hpp"
#include "kompics/port.hpp"
#include "kompics/protocol_desc.hpp"
#include "timing/timer_port.hpp"

namespace kompics::protocol {

class Runner;
struct FrameControl;
using FramePtr = std::shared_ptr<FrameControl>;

template <class T>
class Proto;

namespace detail {
struct PromiseBase;
class MultiAwaiterBase;
}  // namespace detail

/// Timeout payload of every protocol sleep/deadline; correlated by id.
class ProtoTimeout : public timing::Timeout {
  KOMPICS_EVENT(ProtoTimeout, timing::Timeout);

 public:
  using timing::Timeout::Timeout;
};

/// Internal: the resumption work item. Triggered on the component's hidden
/// Protocol port when an awaited event fires; the Runner's subscription
/// resumes `leaf` (the innermost suspended coroutine of the frame).
class ResumeEvent : public Event {
  KOMPICS_EVENT(ResumeEvent, Event);

 public:
  ResumeEvent(FramePtr f, std::coroutine_handle<> l) : frame(std::move(f)), leaf(l) {}
  FramePtr frame;
  std::coroutine_handle<> leaf;
};

/// Hidden port type carrying ResumeEvents. Each component with protocol
/// frames provides exactly one (declared lazily by Runner::of).
class ProtocolPort : public PortType {
 public:
  ProtocolPort() {
    set_name("Protocol");
    request<ResumeEvent>();
  }
};

/// Result type of an elapsed sleep/deadline arm inside when_any/when_all.
struct Elapsed {};

/// Per-top-level-frame control block. Shared between the Runner (live
/// list), in-flight ResumeEvents, and the promises of the frame's coroutine
/// chain. The cleanup registry below is the cancellation contract: every
/// pending protocol subscription and armed timer of the frame is recorded
/// here, so halt-time cancel_all() can revoke them from a foreign thread.
struct FrameControl : std::enable_shared_from_this<FrameControl> {
  Runner* runner = nullptr;
  std::coroutine_handle<> top{};
  bool done = false;          // consumer-side (set at final suspend)
  std::exception_ptr error;   // consumer-side
  std::atomic<bool> cancelled{false};

  struct ArmedRec {
    PortCore* timer_half;
    timing::TimeoutId id;
  };

  /// Registers a pending subscription; false (and the sub stays inactive —
  /// caller must not rely on it firing) when the frame is already
  /// cancelled. Consumer-side callers race only with cancel_all(), which
  /// the mutex serializes.
  bool add_sub(const SubscriptionRef& s);
  /// Unregisters; true when the sub was still registered (the caller then
  /// owns removing it from its port).
  bool drop_sub(const SubscriptionRef& s);
  /// Registers an armed timer; false when already cancelled (caller
  /// triggers the CancelTimeout itself).
  bool add_timer(PortCore* timer_half, timing::TimeoutId id);
  /// True when the id was still registered (caller owns the cancel).
  bool drop_timer(timing::TimeoutId id);

 private:
  friend class Runner;
  std::mutex mu_;
  std::vector<SubscriptionRef> subs_;
  std::vector<ArmedRec> timers_;
};

/// Per-component host of coroutine protocol frames. Owns the hidden
/// Protocol port, the live-frame list, and the teardown path. Attached
/// lazily to a ComponentDefinition on the first spawn.
class Runner final : public ProtocolHost {
 public:
  /// Get-or-create the runner attached to `def`.
  static Runner& of(ComponentDefinition& def);

  explicit Runner(ComponentDefinition& def);  // use of(); public for make_unique
  ~Runner() override;

  // ---- ProtocolHost -----------------------------------------------------
  void cancel_all() noexcept override;
  void destroy_frames() noexcept override;
  std::size_t live_frame_count() const override;

  ComponentDefinition& definition() const { return *def_; }
  /// True while the runner (and its frames) are being destroyed with the
  /// definition: awaiter destructors must not trigger into ports any more.
  bool tearing_down() const { return tearing_down_; }

  // ---- internal (awaiter machinery) -------------------------------------
  /// Enqueues the frame's resumption as an ordinary work item.
  void post_resume(const FramePtr& f, std::coroutine_handle<> leaf);
  /// Takes ownership of a top-level frame. Spawned from this component's
  /// own handler context it runs inline to the first suspension; from a
  /// foreign handler or an external thread the initial run is enqueued as
  /// an ordinary work item, so every segment — including the first —
  /// serializes with the component's handlers.
  void adopt(const FramePtr& f, std::coroutine_handle<> top);

  template <class E, class F>
  SubscriptionRef subscribe_event(PortCore* half, F&& fn) {
    return def_->template subscribe<E>(half, std::forward<F>(fn));
  }
  template <class E>
  std::shared_ptr<const E> current_event_as() const {
    return def_->template current_event_as<E>();
  }

 private:
  void resume_leaf(const FramePtr& f, std::coroutine_handle<> leaf);
  /// Retires a completed frame: destroy it, then surface its error (which
  /// escalates through the invoking handler like any handler fault).
  void finish(const FramePtr& f);

  ComponentDefinition* def_;
  PortCore* resume_in_ = nullptr;   // hidden port, inside half (subscription)
  PortCore* resume_out_ = nullptr;  // hidden port, outside half (trigger)
  mutable std::mutex live_mu_;      // live_ is read by cancel_all/foreign threads
  std::vector<FramePtr> live_;
  bool tearing_down_ = false;
};

// ---------------------------------------------------------------------------
// Descriptors local to this header (the port-handle ones live in
// protocol_desc.hpp so port.hpp can build them).
// ---------------------------------------------------------------------------

/// co_await sleep(timer_, ms): one timeout scheduled on the Timer port.
struct SleepDesc {
  PortCore* timer_half = nullptr;
  std::int64_t delay_ms = 0;
};

template <class PT>
SleepDesc sleep(Positive<PT> timer, std::int64_t delay_ms) {
  return {timer.core, delay_ms};
}
inline SleepDesc sleep(PortCore* timer_half, std::int64_t delay_ms) {
  return {timer_half, delay_ms};
}

/// co_await arm_timer(timer_, ms) -> ArmedTimer (see below).
struct ArmTimerDesc {
  PortCore* timer_half = nullptr;
  std::int64_t delay_ms = 0;
};

template <class PT>
ArmTimerDesc arm_timer(Positive<PT> timer, std::int64_t delay_ms) {
  return {timer.core, delay_ms};
}

namespace detail {

struct StreamStateBase {
  MultiAwaiterBase* waiter = nullptr;
  std::size_t waiter_index = 0;
  SubscriptionRef sub;
  FrameControl* ctl = nullptr;
  Runner* runner = nullptr;
};

template <class E>
struct StreamState : StreamStateBase {
  std::deque<std::shared_ptr<const E>> buf;
  std::size_t capacity = 4096;
  std::uint64_t dropped = 0;
};

struct ArmedTimerState : StreamStateBase {
  PortCore* timer_half = nullptr;
  timing::TimeoutId id = 0;
  bool fired = false;
};

/// Notifies the waiter parked on a stream/armed-timer state, if any.
void notify_state(StreamStateBase& st);
/// Shared release path: drop + remove the state's subscription.
void release_state_sub(StreamStateBase& st);

}  // namespace detail

template <class E>
struct StreamNextDesc {
  kompics::protocol::detail::StreamState<E>* state = nullptr;
};

struct TimerWaitDesc {
  detail::ArmedTimerState* state = nullptr;
};

/// A buffered subscription owned by a coroutine frame: created with
/// co_await port.open<E>(pred), it subscribes immediately and queues every
/// matching event until popped with co_await stream.next(). Closing (or
/// destroying, e.g. when the frame unwinds) unsubscribes.
template <class E>
class Stream {
 public:
  Stream() = default;
  explicit Stream(std::unique_ptr<detail::StreamState<E>> s) : state_(std::move(s)) {}
  Stream(Stream&& o) noexcept = default;
  Stream& operator=(Stream&& o) noexcept {
    if (this != &o) {
      close();
      state_ = std::move(o.state_);
    }
    return *this;
  }
  ~Stream() { close(); }

  bool is_open() const { return state_ != nullptr; }
  std::size_t buffered() const { return state_ ? state_->buf.size() : 0; }
  std::uint64_t dropped() const { return state_ ? state_->dropped : 0; }

  /// Awaitable: pops the oldest buffered event, suspending until one exists.
  StreamNextDesc<E> next() { return {state_.get()}; }

  void close() {
    if (state_ == nullptr) return;
    detail::release_state_sub(*state_);
    state_.reset();
  }

 private:
  std::unique_ptr<detail::StreamState<E>> state_;
};

/// A deadline armed once and consulted by many awaits: the natural shape of
/// a per-attempt protocol timeout that spans several phases. Obtained with
/// co_await arm_timer(timer_, ms); a default-constructed ArmedTimer is
/// inert (its wait() arm never fires), which makes optional deadlines easy
/// to express in when_any. Destruction cancels the underlying timer through
/// the Timer port unless it already fired.
class ArmedTimer {
 public:
  ArmedTimer() = default;
  explicit ArmedTimer(std::unique_ptr<detail::ArmedTimerState> s) : state_(std::move(s)) {}
  ArmedTimer(ArmedTimer&&) noexcept = default;
  ArmedTimer& operator=(ArmedTimer&& o) noexcept {
    if (this != &o) {
      cancel();
      state_ = std::move(o.state_);
    }
    return *this;
  }
  ~ArmedTimer() { cancel(); }

  bool armed() const { return state_ != nullptr; }
  bool fired() const { return state_ != nullptr && state_->fired; }

  /// Awaitable arm: fires when the deadline elapses (never, when inert).
  TimerWaitDesc wait() { return {state_.get()}; }

  void cancel();

 private:
  std::unique_ptr<detail::ArmedTimerState> state_;
};

// ---------------------------------------------------------------------------
// Arms: the per-descriptor attach/fire/take/detach behaviors composed by the
// awaiters. All methods run under the owning component's single-consumer
// discipline — no locks needed beyond the FrameControl registry.
// ---------------------------------------------------------------------------

namespace detail {

struct AwaitCtx {
  Runner* runner = nullptr;
  FrameControl* ctl = nullptr;
};

inline constexpr std::size_t kNoWinner = static_cast<std::size_t>(-1);

class MultiAwaiterBase {
 public:
  FrameControl* ctl = nullptr;
  std::coroutine_handle<> leaf{};
  std::size_t winner = kNoWinner;
  std::size_t unfired = 0;  // when_all countdown
  bool all_mode = false;
  bool posted = false;

  void arm_fired(std::size_t index) {
    if (all_mode) {
      if (unfired > 0 && --unfired == 0) post();
    } else if (winner == kNoWinner) {
      winner = index;
      post();
    }
  }

 private:
  void post();
};

template <class E, class Pred>
class EventArm {
 public:
  using Result = std::shared_ptr<const E>;

  EventArm(PortCore* half, Pred pred) : half_(half), pred_(std::move(pred)) {}
  EventArm(EventArm&&) noexcept = default;
  ~EventArm() { detach(); }

  bool ready() const { return false; }

  void attach(AwaitCtx cx, MultiAwaiterBase* owner, std::size_t index) {
    cx_ = cx;
    sub_ = cx.runner->subscribe_event<E>(
        half_, [this, owner, index, runner = cx.runner](const E& e) {
          if (fired_ || !pred_(e)) return;
          fired_ = true;
          result_ = runner->current_event_as<E>();
          owner->arm_fired(index);
        });
    cx.ctl->add_sub(sub_);  // a cancelled frame already deactivated it
  }

  Result take() { return std::move(result_); }

  void detach() {
    if (sub_ == nullptr) return;
    if (cx_.ctl->drop_sub(sub_)) half_->remove_subscription(sub_);
    sub_ = nullptr;
  }

 protected:
  PortCore* half_;
  Pred pred_;
  AwaitCtx cx_{};
  SubscriptionRef sub_;
  bool fired_ = false;
  Result result_;
};

/// EventArm that first subscribes, then triggers the request on the same
/// half — the response cannot be dispatched before this work item returns,
/// so the subscription is always in place when it arrives.
template <class Resp, class Req, class Pred>
class RequestArm : public EventArm<Resp, Pred> {
 public:
  RequestArm(PortCore* half, Req req, Pred pred)
      : EventArm<Resp, Pred>(half, std::move(pred)), req_(std::move(req)) {}

  void attach(AwaitCtx cx, MultiAwaiterBase* owner, std::size_t index) {
    EventArm<Resp, Pred>::attach(cx, owner, index);
    this->half_->trigger(make_event<Req>(std::move(req_)));
  }

 private:
  Req req_;
};

class SleepArm {
 public:
  using Result = Elapsed;

  SleepArm(PortCore* timer_half, std::int64_t delay_ms)
      : half_(timer_half), delay_ms_(delay_ms) {}
  SleepArm(SleepArm&&) noexcept = default;
  ~SleepArm() { detach(); }

  bool ready() const { return false; }
  void attach(AwaitCtx cx, MultiAwaiterBase* owner, std::size_t index);
  Result take() { return {}; }
  void detach();

 private:
  PortCore* half_;
  std::int64_t delay_ms_;
  AwaitCtx cx_{};
  SubscriptionRef sub_;
  timing::TimeoutId id_ = 0;
  bool fired_ = false;
};

template <class E>
class StreamArm {
 public:
  using Result = std::shared_ptr<const E>;

  explicit StreamArm(StreamState<E>* s) : s_(s) {}
  StreamArm(StreamArm&& o) noexcept
      : s_(std::exchange(o.s_, nullptr)), attached_(std::exchange(o.attached_, false)) {}
  ~StreamArm() { detach(); }

  bool ready() const { return s_ != nullptr && !s_->buf.empty(); }

  void attach(AwaitCtx, MultiAwaiterBase* owner, std::size_t index) {
    if (s_ == nullptr) return;  // closed stream: inert arm
    s_->waiter = owner;
    s_->waiter_index = index;
    attached_ = true;
  }

  Result take() {
    if (s_ == nullptr || s_->buf.empty()) return nullptr;
    Result e = std::move(s_->buf.front());
    s_->buf.pop_front();
    return e;
  }

  void detach() {
    if (attached_ && s_ != nullptr) s_->waiter = nullptr;
    attached_ = false;
  }

 private:
  StreamState<E>* s_;
  bool attached_ = false;
};

class TimerWaitArm {
 public:
  using Result = Elapsed;

  explicit TimerWaitArm(ArmedTimerState* s) : s_(s) {}
  TimerWaitArm(TimerWaitArm&& o) noexcept
      : s_(std::exchange(o.s_, nullptr)), attached_(std::exchange(o.attached_, false)) {}
  ~TimerWaitArm() { detach(); }

  bool ready() const { return s_ != nullptr && s_->fired; }

  void attach(AwaitCtx, MultiAwaiterBase* owner, std::size_t index) {
    if (s_ == nullptr) return;  // inert (unarmed deadline)
    s_->waiter = owner;
    s_->waiter_index = index;
    attached_ = true;
  }

  Result take() { return {}; }

  void detach() {
    if (attached_ && s_ != nullptr) s_->waiter = nullptr;
    attached_ = false;
  }

 private:
  ArmedTimerState* s_;
  bool attached_ = false;
};

template <class E, class Pred>
EventArm<E, Pred> make_arm(NextDesc<E, Pred> d) {
  return EventArm<E, Pred>(d.half, std::move(d.pred));
}
template <class Resp, class Req, class Pred>
RequestArm<Resp, Req, Pred> make_arm(RequestDesc<Resp, Req, Pred> d) {
  return RequestArm<Resp, Req, Pred>(d.half, std::move(d.request), std::move(d.pred));
}
inline SleepArm make_arm(SleepDesc d) { return SleepArm(d.timer_half, d.delay_ms); }
template <class E>
StreamArm<E> make_arm(StreamNextDesc<E> d) {
  return StreamArm<E>(d.state);
}
inline TimerWaitArm make_arm(TimerWaitDesc d) { return TimerWaitArm(d.state); }

// ---------------------------------------------------------------------------
// Awaiters
// ---------------------------------------------------------------------------

template <class Arm>
class SingleAwaiter : public MultiAwaiterBase {
 public:
  SingleAwaiter(AwaitCtx cx, Arm arm) : cx_(cx), arm_(std::move(arm)) { ctl = cx.ctl; }

  bool await_ready() {
    if (arm_.ready()) {
      winner = 0;
      return true;
    }
    return false;
  }
  void await_suspend(std::coroutine_handle<> h) {
    leaf = h;
    arm_.attach(cx_, this, 0);
  }
  typename Arm::Result await_resume() {
    arm_.detach();
    return arm_.take();
  }

 private:
  AwaitCtx cx_;
  Arm arm_;
};

template <bool All, class... Arms>
class MultiAwaiter : public MultiAwaiterBase {
 public:
  using Result = std::conditional_t<All, std::tuple<typename Arms::Result...>,
                                    std::variant<typename Arms::Result...>>;

  MultiAwaiter(AwaitCtx cx, Arms... arms) : cx_(cx), arms_(std::move(arms)...) {
    ctl = cx.ctl;
    all_mode = All;
  }

  bool await_ready() {
    if constexpr (All) {
      bool all = true;
      for_each([&](auto& a, std::size_t) { all = all && a.ready(); });
      return all;
    } else {
      for_each([&](auto& a, std::size_t i) {
        if (winner == kNoWinner && a.ready()) winner = i;
      });
      return winner != kNoWinner;
    }
  }

  void await_suspend(std::coroutine_handle<> h) {
    leaf = h;
    if constexpr (All) {
      // Only the not-yet-ready arms still owe a fire.
      unfired = 0;
      for_each([&](auto& a, std::size_t) {
        if (!a.ready()) ++unfired;
      });
      for_each([&](auto& a, std::size_t i) {
        if (!a.ready()) a.attach(cx_, this, i);
      });
    } else {
      for_each([&](auto& a, std::size_t i) { a.attach(cx_, this, i); });
    }
  }

  Result await_resume() {
    for_each([](auto& a, std::size_t) { a.detach(); });
    if constexpr (All) {
      return std::apply(
          [](auto&... a) { return std::tuple<typename Arms::Result...>(a.take()...); },
          arms_);
    } else {
      return take_winner<0>();
    }
  }

 private:
  template <class F, std::size_t... I>
  void for_each_impl(F&& f, std::index_sequence<I...>) {
    (f(std::get<I>(arms_), I), ...);
  }
  template <class F>
  void for_each(F&& f) {
    for_each_impl(std::forward<F>(f), std::index_sequence_for<Arms...>{});
  }

  template <std::size_t I>
  Result take_winner() {
    if constexpr (I < sizeof...(Arms)) {
      if (winner == I) return Result(std::in_place_index<I>, std::get<I>(arms_).take());
      return take_winner<I + 1>();
    } else {
      throw std::logic_error("protocol: when_any resumed without a winner");
    }
  }

  AwaitCtx cx_;
  std::tuple<Arms...> arms_;
};

/// Non-suspending awaiter opening a Stream<E>: subscribes immediately (so
/// no event between open and the first next() is lost) and hands back the
/// stream object.
template <class E, class Pred>
class OpenAwaiter {
 public:
  OpenAwaiter(AwaitCtx cx, OpenDesc<E, Pred> d) : cx_(cx), d_(std::move(d)) {}

  bool await_ready() const { return true; }
  void await_suspend(std::coroutine_handle<>) const {}
  Stream<E> await_resume() {
    auto st = std::make_unique<StreamState<E>>();
    st->ctl = cx_.ctl;
    st->runner = cx_.runner;
    st->capacity = d_.capacity;
    StreamState<E>* s = st.get();
    s->sub = cx_.runner->subscribe_event<E>(
        d_.half, [s, runner = cx_.runner, pred = std::move(d_.pred)](const E& e) {
          if (!pred(e)) return;
          if (s->buf.size() >= s->capacity) {
            ++s->dropped;  // lossy-network semantics: bounded buffering
            return;
          }
          s->buf.push_back(runner->current_event_as<E>());
          notify_state(*s);
        });
    cx_.ctl->add_sub(s->sub);
    return Stream<E>(std::move(st));
  }

 private:
  AwaitCtx cx_;
  OpenDesc<E, Pred> d_;
};

/// Non-suspending awaiter arming a reusable deadline.
class ArmTimerAwaiter {
 public:
  ArmTimerAwaiter(AwaitCtx cx, ArmTimerDesc d) : cx_(cx), d_(d) {}

  bool await_ready() const { return true; }
  void await_suspend(std::coroutine_handle<>) const {}
  ArmedTimer await_resume();

 private:
  AwaitCtx cx_;
  ArmTimerDesc d_;
};

// ---------------------------------------------------------------------------
// Promise / task type
// ---------------------------------------------------------------------------

template <class T>
struct Promise;
template <class... Ds>
struct AnyDesc;
template <class... Ds>
struct AllDesc;

struct PromiseBase {
  ComponentDefinition* def = nullptr;
  FrameControl* ctl = nullptr;  // top frame's control (inherited by children)
  std::coroutine_handle<> continuation{};
  std::exception_ptr error;

  PromiseBase() = default;
  // P0914: promise constructed from the coroutine's arguments. For a member
  // coroutine the implicit object parameter is first — any Proto coroutine
  // on a ComponentDefinition subclass binds its component here.
  template <class Self, class... Args,
            class = std::enable_if_t<
                std::is_base_of_v<ComponentDefinition, std::remove_cvref_t<Self>>>>
  explicit PromiseBase(Self& self, Args&...) : def(&self) {}

  std::suspend_always initial_suspend() noexcept { return {}; }

  struct FinalAwaiter {
    PromiseBase* p;
    bool await_ready() const noexcept { return false; }
    std::coroutine_handle<> await_suspend(std::coroutine_handle<>) const noexcept {
      if (p->continuation) return p->continuation;  // nested: resume the parent
      if (p->ctl != nullptr) {  // top-level: the resumer retires the frame
        p->ctl->done = true;
        p->ctl->error = p->error;
      }
      return std::noop_coroutine();
    }
    void await_resume() const noexcept {}
  };
  FinalAwaiter final_suspend() noexcept { return {this}; }

  void unhandled_exception() { error = std::current_exception(); }

  AwaitCtx ctx() {
    if (ctl == nullptr || ctl->runner == nullptr) {
      throw std::logic_error("protocol: frame awaited outside a spawned Proto");
    }
    return {ctl->runner, ctl};
  }

  // ---- await_transform: the closed set of awaitables --------------------
  template <class E, class Pred>
  auto await_transform(NextDesc<E, Pred> d) {
    return SingleAwaiter(ctx(), make_arm(std::move(d)));
  }
  template <class Resp, class Req, class Pred>
  auto await_transform(RequestDesc<Resp, Req, Pred> d) {
    return SingleAwaiter(ctx(), make_arm(std::move(d)));
  }
  auto await_transform(SleepDesc d) { return SingleAwaiter(ctx(), make_arm(d)); }
  template <class E>
  auto await_transform(StreamNextDesc<E> d) {
    return SingleAwaiter(ctx(), make_arm(d));
  }
  auto await_transform(TimerWaitDesc d) { return SingleAwaiter(ctx(), make_arm(d)); }
  template <class E, class Pred>
  auto await_transform(OpenDesc<E, Pred> d) {
    return OpenAwaiter<E, Pred>(ctx(), std::move(d));
  }
  auto await_transform(ArmTimerDesc d) { return ArmTimerAwaiter(ctx(), d); }
  template <class... Ds>
  auto await_transform(AnyDesc<Ds...> d);
  template <class... Ds>
  auto await_transform(AllDesc<Ds...> d);
  template <class U>
  auto await_transform(Proto<U>&& p);
};

template <class... Ds>
struct AnyDesc {
  std::tuple<Ds...> arms;
};
template <class... Ds>
struct AllDesc {
  std::tuple<Ds...> arms;
};

template <class T>
struct Promise : PromiseBase {
  using PromiseBase::PromiseBase;
  std::optional<T> value;

  Proto<T> get_return_object();
  void return_value(T v) { value.emplace(std::move(v)); }
};

template <>
struct Promise<void> : PromiseBase {
  using PromiseBase::PromiseBase;

  Proto<void> get_return_object();
  void return_void() {}
};

/// Awaiting a child Proto: bind it to the parent's frame and start it via
/// symmetric transfer; its completion resumes the parent the same way.
template <class U>
struct ProtoAwaiter {
  std::coroutine_handle<Promise<U>> child;
  PromiseBase* parent;

  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<>h) {
    auto& cp = child.promise();
    cp.continuation = h;
    cp.ctl = parent->ctl;
    if (cp.def == nullptr) cp.def = parent->def;
    return child;
  }
  U await_resume() {
    auto& cp = child.promise();
    if (cp.error) std::rethrow_exception(cp.error);
    if constexpr (!std::is_void_v<U>) return std::move(*cp.value);
  }
};

}  // namespace detail

/// The protocol task type: a lazily-started coroutine bound to a component.
/// Either co_await it from another Proto (structured nesting: the child
/// runs on the same frame control and resumes the parent on completion), or
/// hand it to protocol::spawn() as a new top-level frame.
template <class T = void>
class [[nodiscard]] Proto {
 public:
  using promise_type = detail::Promise<T>;

  Proto(Proto&& o) noexcept : h_(std::exchange(o.h_, {})) {}
  Proto& operator=(Proto&& o) noexcept {
    if (this != &o) {
      if (h_) h_.destroy();
      h_ = std::exchange(o.h_, {});
    }
    return *this;
  }
  Proto(const Proto&) = delete;
  Proto& operator=(const Proto&) = delete;
  ~Proto() {
    if (h_) h_.destroy();
  }

 private:
  friend struct detail::Promise<T>;
  friend struct detail::PromiseBase;
  template <class U>
  friend void spawn(Proto<U> p);

  explicit Proto(std::coroutine_handle<detail::Promise<T>> h) : h_(h) {}
  std::coroutine_handle<detail::Promise<T>> h_;
};

namespace detail {

template <class T>
Proto<T> Promise<T>::get_return_object() {
  return Proto<T>(std::coroutine_handle<Promise<T>>::from_promise(*this));
}
inline Proto<void> Promise<void>::get_return_object() {
  return Proto<void>(std::coroutine_handle<Promise<void>>::from_promise(*this));
}

template <class... Ds>
auto PromiseBase::await_transform(AnyDesc<Ds...> d) {
  return std::apply(
      [&](Ds&... ds) {
        return MultiAwaiter<false, decltype(make_arm(std::move(ds)))...>(
            ctx(), make_arm(std::move(ds))...);
      },
      d.arms);
}
template <class... Ds>
auto PromiseBase::await_transform(AllDesc<Ds...> d) {
  return std::apply(
      [&](Ds&... ds) {
        return MultiAwaiter<true, decltype(make_arm(std::move(ds)))...>(
            ctx(), make_arm(std::move(ds))...);
      },
      d.arms);
}
template <class U>
auto PromiseBase::await_transform(Proto<U>&& p) {
  return ProtoAwaiter<U>{p.h_, this};
}

}  // namespace detail

/// when_any(d...): resolve to the first arm that fires; the losers are
/// detached (one-shot subscriptions removed, unfired sleeps cancelled
/// through the Timer port). Yields std::variant over the arm results
/// (std::shared_ptr<const E> for event arms, Elapsed for timer arms) —
/// switch on .index().
template <class... Ds>
detail::AnyDesc<Ds...> when_any(Ds... ds) {
  static_assert(sizeof...(Ds) >= 1);
  return {std::tuple<Ds...>(std::move(ds)...)};
}

/// when_all(d...): resolve once every arm has fired; yields a tuple of the
/// arm results.
template <class... Ds>
detail::AllDesc<Ds...> when_all(Ds... ds) {
  static_assert(sizeof...(Ds) >= 1);
  return {std::tuple<Ds...>(std::move(ds)...)};
}

/// Launches `p` as a new top-level frame on the component its coroutine is
/// bound to (the object of the member-coroutine call). Runs inline to the
/// first suspension; after that the frame lives in the component until it
/// completes or the component is destroyed. A protocol frame that exits
/// with an exception escalates it as a component fault (§2.5).
template <class T>
void spawn(Proto<T> p) {
  if (!p.h_) throw std::logic_error("protocol: spawn of an empty Proto");
  auto& promise = p.h_.promise();
  if (promise.def == nullptr) {
    throw std::logic_error(
        "protocol: spawn requires a coroutine bound to a ComponentDefinition "
        "(make it a member, or take the definition as the first parameter)");
  }
  Runner& runner = Runner::of(*promise.def);
  auto ctl = std::make_shared<FrameControl>();
  promise.ctl = ctl.get();
  std::coroutine_handle<> h = std::exchange(p.h_, {});
  runner.adopt(ctl, h);
}

}  // namespace kompics::protocol
