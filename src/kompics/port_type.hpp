#pragma once

// Port types (paper §2.1): a port type names two sets of event types — the
// "positive" set (indications/responses) and the "negative" set (requests) —
// that may traverse a port in each direction. A concrete port type derives
// from PortType and declares its sets in the constructor:
//
//   class Network : public PortType {
//    public:
//     Network() { positive<Message>(); negative<Message>(); }
//   };
//
// Port type instances are singletons obtained via port_type<Network>(), used
// by the runtime for fast dynamic event filtering (mirroring the Java
// implementation's singleton port-type objects).

#include <functional>
#include <string>
#include <typeinfo>
#include <vector>

#include "event.hpp"

namespace kompics {

/// Direction of travel of an event through a port.
enum class Direction : unsigned char {
  kPositive,  ///< indications / responses
  kNegative,  ///< requests
};

constexpr Direction opposite(Direction d) {
  return d == Direction::kPositive ? Direction::kNegative : Direction::kPositive;
}

class PortType {
 public:
  virtual ~PortType() = default;

  /// True when an event of e's dynamic type may pass in direction d.
  bool allows(Direction d, const Event& e) const {
    const auto& set = d == Direction::kPositive ? positive_ : negative_;
    for (const auto& entry : set) {
      if (entry.check(e)) return true;
    }
    return false;
  }

  const std::string& name() const { return name_; }

 protected:
  PortType() = default;

  /// Declares that events of type E (and subtypes) pass in the `+` direction.
  template <class E>
  void positive() {
    positive_.push_back({[](const Event& e) { return event_is<E>(e); }, typeid(E).name()});
  }

  /// Declares that events of type E (and subtypes) pass in the `-` direction.
  template <class E>
  void negative() {
    negative_.push_back({[](const Event& e) { return event_is<E>(e); }, typeid(E).name()});
  }

  /// Paper synonym: indications travel in the positive direction.
  template <class E>
  void indication() {
    positive<E>();
  }

  /// Paper synonym: requests travel in the negative direction.
  template <class E>
  void request() {
    negative<E>();
  }

  void set_name(std::string n) { name_ = std::move(n); }

 private:
  struct Entry {
    std::function<bool(const Event&)> check;
    const char* type_name;
  };
  std::vector<Entry> positive_;
  std::vector<Entry> negative_;
  std::string name_{"port"};
};

/// Singleton accessor for a port type (one shared instance per PT).
template <class PT>
const PT& port_type() {
  static const PT instance{};
  return instance;
}

}  // namespace kompics
