#pragma once

// Port types (paper §2.1): a port type names two sets of event types — the
// "positive" set (indications/responses) and the "negative" set (requests) —
// that may traverse a port in each direction. A concrete port type derives
// from PortType and declares its sets in the constructor:
//
//   class Network : public PortType {
//    public:
//     Network() { positive<Message>(); negative<Message>(); }
//   };
//
// Port type instances are singletons obtained via port_type<Network>(), used
// by the runtime for fast dynamic event filtering (mirroring the Java
// implementation's singleton port-type objects).
//
// `allows` is on the trigger hot path. For event types in the registry
// (KOMPICS_EVENT) the check is an integer ancestor-walk whose result is
// memoized per (port type, direction, event TypeId) in a flat byte array —
// after the first event of a type, one load + compare. Entries declared
// with *unregistered* event types keep the RTTI check; their verdicts
// depend on the dynamic type rather than the (possibly inherited) TypeId,
// so they are evaluated per event and never memoized.

#include <functional>
#include <memory>
#include <string>
#include <typeinfo>
#include <vector>

#include "event.hpp"

namespace kompics {

/// Direction of travel of an event through a port.
enum class Direction : unsigned char {
  kPositive,  ///< indications / responses
  kNegative,  ///< requests
};

constexpr Direction opposite(Direction d) {
  return d == Direction::kPositive ? Direction::kNegative : Direction::kPositive;
}

class PortType {
 public:
  virtual ~PortType() = default;

  /// True when an event of e's dynamic type may pass in direction d.
  bool allows(Direction d, const Event& e) const {
    const Side& side = d == Direction::kPositive ? positive_ : negative_;
    const EventTypeId eid = e.kompics_type_id();
    if (side.memo != nullptr) {
      const std::uint8_t m = side.memo[eid].load(std::memory_order_relaxed);
      if (m == kMemoAllowed) return true;
      if (m == kMemoDenied && side.rtti_entries.empty()) return false;
    }
    return allows_slow(side, eid, e);
  }

  const std::string& name() const { return name_; }

  /// Human-readable list of the event types declared for direction d, for
  /// rejection diagnostics (PortCore::trigger).
  std::string allowed_types(Direction d) const {
    const Side& side = d == Direction::kPositive ? positive_ : negative_;
    std::string out;
    for (const char* n : side.type_names) {
      if (!out.empty()) out += ", ";
      out += n;
    }
    return out.empty() ? "<none>" : out;
  }

 protected:
  PortType() = default;

  /// Declares that events of type E (and subtypes) pass in the `+` direction.
  template <class E>
  void positive() {
    declare<E>(positive_);
  }

  /// Declares that events of type E (and subtypes) pass in the `-` direction.
  template <class E>
  void negative() {
    declare<E>(negative_);
  }

  /// Paper synonym: indications travel in the positive direction.
  template <class E>
  void indication() {
    positive<E>();
  }

  /// Paper synonym: requests travel in the negative direction.
  template <class E>
  void request() {
    negative<E>();
  }

  void set_name(std::string n) { name_ = std::move(n); }

 private:
  static constexpr std::uint8_t kMemoUnknown = 0;
  static constexpr std::uint8_t kMemoAllowed = 1;
  static constexpr std::uint8_t kMemoDenied = 2;

  struct RttiEntry {
    std::function<bool(const Event&)> check;
    const char* type_name;
  };

  struct Side {
    std::vector<EventTypeId> registered_ids;  ///< entries with a TypeId
    std::vector<RttiEntry> rtti_entries;      ///< unregistered entries
    std::vector<const char*> type_names;      ///< all entries, for diagnostics
    /// Verdict memo indexed by event TypeId; covers the registered entries
    /// only (RTTI entries are per-dynamic-type and bypass it). Allocated on
    /// first declaration — singleton port types declare in their
    /// constructor, strictly before any allows().
    std::unique_ptr<std::atomic<std::uint8_t>[]> memo;
  };

  template <class E>
  void declare(Side& side) {
    static_assert(std::is_base_of_v<Event, E>, "E must derive from kompics::Event");
    side.type_names.push_back(typeid(E).name());
    if (side.memo == nullptr) {
      side.memo = std::make_unique<std::atomic<std::uint8_t>[]>(detail::kMaxEventTypes);
    }
    const EventTypeId id = detail::static_type_id_or_invalid<E>();
    if (id != kEventTypeInvalid || std::is_same_v<E, Event>) {
      side.registered_ids.push_back(id == kEventTypeInvalid ? kEventTypeRoot : id);
    } else {
      side.rtti_entries.push_back(
          RttiEntry{[](const Event& e) { return event_is<E>(e); }, typeid(E).name()});
    }
  }

  bool allows_slow(const Side& side, EventTypeId eid, const Event& e) const {
    for (const EventTypeId id : side.registered_ids) {
      if (detail::is_ancestor(id, eid)) {
        side.memo[eid].store(kMemoAllowed, std::memory_order_relaxed);
        return true;
      }
    }
    // The registered entries reject every event reporting this TypeId
    // (sound even for unregistered dynamic types, which report their
    // nearest registered ancestor's id — see event.hpp).
    if (side.memo != nullptr) side.memo[eid].store(kMemoDenied, std::memory_order_relaxed);
    for (const RttiEntry& entry : side.rtti_entries) {
      if (entry.check(e)) return true;
    }
    return false;
  }

  Side positive_;
  Side negative_;
  std::string name_{"port"};
};

/// Singleton accessor for a port type (one shared instance per PT).
template <class PT>
const PT& port_type() {
  static const PT instance{};
  return instance;
}

}  // namespace kompics
