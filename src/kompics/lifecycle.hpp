#pragma once

// Component life-cycle (paper §2.4) and fault management (§2.5).
//
// Every component implicitly provides a Control port. Parents trigger Init /
// Start / Stop on a child's control port; the child may subscribe handlers
// for them. Faults escaping a handler are wrapped in a Fault event and
// dispatched on the control port toward the parent (see fault.hpp).

#include <cstdint>
#include <exception>
#include <string>

#include "event.hpp"
#include "port_type.hpp"

namespace kompics {

/// Base type for component-specific initialization events. Subclass it to
/// carry configuration parameters; an Init handler subscribed in the
/// component constructor guarantees that Init is handled before any other
/// event (paper §2.4).
class Init : public Event {
  KOMPICS_EVENT(Init, Event);

 public:
  Init() = default;
};

/// Activates a component (and, recursively, its subcomponents).
class Start : public Event {
  KOMPICS_EVENT(Start, Event);
};

/// Confirmation that a component — and its entire subtree — has processed
/// Start and is active. The dual of Stopped; lets orchestration code know
/// when a freshly created subtree is fully operational.
class Started : public Event {
  KOMPICS_EVENT(Started, Event);
};

/// Passivates a component (and, recursively, its subcomponents).
class Stop : public Event {
  KOMPICS_EVENT(Stop, Event);
};

/// Confirmation that a component — and its entire subtree — has processed
/// Stop and is passive (no handler of the subtree is running or will run).
/// Emitted by the runtime on the component's control port; the §2.6
/// replacement recipe waits for it before unplugging channels, which is what
/// makes reconfiguration lose no events.
class Stopped : public Event {
  KOMPICS_EVENT(Stopped, Event);
};

class ComponentCore;

/// Wraps an exception that escaped an event handler (paper §2.5).
class Fault : public Event {
  KOMPICS_EVENT(Fault, Event);

 public:
  Fault(std::exception_ptr error, ComponentCore* source, std::string what)
      : error_(std::move(error)), source_(source), what_(std::move(what)) {}

  /// The original exception, rethrowable by a supervising parent.
  const std::exception_ptr& error() const { return error_; }
  /// The component whose handler faulted.
  ComponentCore* source() const { return source_; }
  /// Human-readable description of the fault.
  const std::string& what() const { return what_; }

 private:
  std::exception_ptr error_;
  ComponentCore* source_;
  std::string what_;
};

/// The Control port type: Init/Start/Stop travel toward the component
/// (negative direction); Fault travels out of it (positive direction).
class ControlPort : public PortType {
 public:
  ControlPort() {
    set_name("Control");
    request<Init>();
    request<Start>();
    request<Stop>();
    indication<Started>();
    indication<Stopped>();
    indication<Fault>();
  }
};

/// Life-cycle states of a component (paper §2.4). Components are created
/// Passive: events received while passive are queued and only executed once
/// the component is activated by a Start event.
enum class LifecycleState : std::uint8_t {
  kPassive,
  kActive,
  kDestroyed,
};

}  // namespace kompics
