#include "port.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

#include "channel.hpp"
#include "component.hpp"
#include "lifecycle.hpp"

namespace kompics {

void PortCore::trigger(const EventPtr& e) {
  if (e == nullptr) throw std::invalid_argument("trigger: null event");
  const Direction d = opposite(polarity_);
  if (!type_->allows(d, *e)) {
    throw std::logic_error("event type not allowed to pass on port '" + type_->name() +
                           "' in the triggered direction");
  }
  pair_->arrive(e, d);
}

void PortCore::arrive(const EventPtr& e, Direction d) {
  if (polarity_ == d) dispatch(e);
  for (const auto& c : channels()) c->forward(e, d, this);
}

void PortCore::deliver_from_channel(const EventPtr& e, Direction d) {
  if (polarity_ == d) dispatch(e);
  pair_->arrive(e, d);
}

std::size_t PortCore::dispatch(const EventPtr& e) {
  // Collect the distinct subscriber components with at least one accepting
  // handler; enqueue one work unit per subscriber. At execution time the
  // subscriber re-matches against its then-current subscriptions, which
  // gives the paper's semantics for subscribe/unsubscribe during handling.
  std::size_t matches = 0;
  std::vector<ComponentCore*> targets;
  {
    std::lock_guard<std::mutex> g(mu_);
    for (const auto& s : subs_) {
      if (!s->active || !s->accepts(*e)) continue;
      ++matches;
      if (std::find(targets.begin(), targets.end(), s->subscriber) == targets.end()) {
        targets.push_back(s->subscriber);
      }
    }
  }
  const bool control = dynamic_cast<const ControlPort*>(type_) != nullptr;
  // Life-cycle events must reach the owning component even without user
  // handlers: the built-in activation/passivation logic (§2.4) runs after
  // user handlers, so the owner always gets a work unit for them.
  if (control && inside_ &&
      (event_is<Init>(*e) || event_is<Start>(*e) || event_is<Stop>(*e)) &&
      std::find(targets.begin(), targets.end(), owner_) == targets.end()) {
    targets.push_back(owner_);
  }
  for (ComponentCore* t : targets) t->enqueue_work(e, this, control);
  return matches;
}

bool PortCore::has_match(const Event& e) const {
  std::lock_guard<std::mutex> g(mu_);
  for (const auto& s : subs_) {
    if (s->active && s->accepts(e)) return true;
  }
  return false;
}

void PortCore::add_subscription(const SubscriptionRef& s) {
  std::lock_guard<std::mutex> g(mu_);
  subs_.push_back(s);
}

void PortCore::remove_subscription(const SubscriptionRef& s) {
  std::lock_guard<std::mutex> g(mu_);
  s->active.store(false, std::memory_order_release);
  subs_.erase(std::remove(subs_.begin(), subs_.end(), s), subs_.end());
}

std::vector<SubscriptionRef> PortCore::matching_subscriptions(ComponentCore* subscriber,
                                                              const Event& e) const {
  std::vector<SubscriptionRef> out;
  std::lock_guard<std::mutex> g(mu_);
  for (const auto& s : subs_) {
    if (s->active && s->subscriber == subscriber && s->accepts(e)) out.push_back(s);
  }
  return out;
}

void PortCore::attach_channel(const ChannelRef& c) {
  std::lock_guard<std::mutex> g(mu_);
  channels_.push_back(c);
}

void PortCore::detach_channel(const Channel* c) {
  std::lock_guard<std::mutex> g(mu_);
  channels_.erase(std::remove_if(channels_.begin(), channels_.end(),
                                 [c](const ChannelRef& r) { return r.get() == c; }),
                  channels_.end());
}

std::vector<ChannelRef> PortCore::channels() const {
  std::lock_guard<std::mutex> g(mu_);
  return channels_;
}

PortPair::PortPair(ComponentCore* owner, const PortType* type, bool provided_)
    : provided(provided_) {
  // Provided port: requests (negative) flow toward the component, so the
  // inside half has negative polarity; the outside half is positive.
  // Required port: the dual.
  const Direction inside_pol = provided_ ? Direction::kNegative : Direction::kPositive;
  inside = std::make_unique<PortCore>(owner, type, inside_pol, /*inside=*/true);
  outside = std::make_unique<PortCore>(owner, type, opposite(inside_pol), /*inside=*/false);
  inside->link_pair(outside.get());
  outside->link_pair(inside.get());
}

}  // namespace kompics
