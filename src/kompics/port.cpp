#include "port.hpp"

#include <algorithm>
#include <stdexcept>

#include "channel.hpp"
#include "component.hpp"
#include "kompics.hpp"
#include "lifecycle.hpp"
#include "telemetry.hpp"

namespace kompics {

namespace {

// Distinct-target accumulator for dispatch: inline storage for the common
// fan-outs so the hot path performs no heap allocation.
class TargetSet {
 public:
  bool insert(ComponentCore* c) {
    for (std::size_t i = 0; i < inline_count_; ++i) {
      if (inline_[i] == c) return false;
    }
    for (ComponentCore* t : overflow_) {
      if (t == c) return false;
    }
    if (inline_count_ < kInline) {
      inline_[inline_count_++] = c;
    } else {
      overflow_.push_back(c);
    }
    return true;
  }

  template <class Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t i = 0; i < inline_count_; ++i) fn(inline_[i]);
    for (ComponentCore* t : overflow_) fn(t);
  }

 private:
  static constexpr std::size_t kInline = 8;
  ComponentCore* inline_[kInline];
  std::size_t inline_count_ = 0;
  std::vector<ComponentCore*> overflow_;
};

}  // namespace

PortCore::PortCore(ComponentCore* owner, const PortType* type, Direction polarity, bool inside)
    : owner_(owner),
      type_(type),
      polarity_(polarity),
      inside_(inside),
      // Property of the singleton port type: resolve the RTTI query once
      // here instead of on every dispatch.
      control_(dynamic_cast<const ControlPort*>(type) != nullptr),
      subs_(new SubTable),
      chans_(new ChanTable) {}

PortCore::~PortCore() = default;

void PortCore::trigger(const EventPtr& e) {
  if (e == nullptr) throw std::invalid_argument("trigger: null event");
  const Direction d = opposite(polarity_);
  if (!type_->allows(d, *e)) {
    throw std::logic_error("event type '" + std::string(typeid(*e).name()) +
                           "' not allowed to pass on port '" + type_->name() +
                           "' in the triggered direction (allowed: " +
                           type_->allowed_types(d) + ")");
  }
  // Telemetry touch points, both behind relaxed single-load gates so the
  // disabled path adds only two predicted-untaken branches here.
  telemetry::Telemetry& tel = owner_->runtime()->telemetry();
  if (tel.metrics_enabled()) {
    publish_count_.fetch_add(1, std::memory_order_relaxed);
    tel.events_published().add();
  }
  if (tel.tracing_enabled()) tel.stamp_event(*e);
  // The whole synchronous propagation below (port pair, channels, fan-out
  // dispatch) batches its scheduler hand-off into one flush at scope exit.
  detail::DispatchBatchScope batch;
  pair_->arrive(e, d);
}

void PortCore::arrive(const EventPtr& e, Direction d) {
  if (polarity_ == d) dispatch(e);
  if (chan_count_.load(std::memory_order_acquire) == 0) return;
  const auto snap = chans_.acquire();
  for (const auto& c : snap->channels) c->forward(e, d, this);
}

void PortCore::deliver_from_channel(const EventPtr& e, Direction d) {
  if (polarity_ == d) dispatch(e);
  pair_->arrive(e, d);
}

std::size_t PortCore::dispatch(const EventPtr& e) {
  // Collect the distinct subscriber components with at least one accepting
  // handler; enqueue one work unit per subscriber. At execution time the
  // subscriber re-matches against its then-current subscriptions (through
  // the epoch-validated match cache, component.cpp), which gives the
  // paper's semantics for subscribe/unsubscribe during handling.
  std::size_t matches = 0;
  TargetSet targets;
  if (sub_count_.load(std::memory_order_acquire) != 0) {
    const EventTypeId eid = e->kompics_type_id();
    const auto snap = subs_.acquire();
    for (const auto& s : snap->subs) {
      if (!s->active.load(std::memory_order_acquire) || !s->accepts(*e, eid)) continue;
      ++matches;
      targets.insert(s->subscriber);
    }
  }
  // Life-cycle events must reach the owning component even without user
  // handlers: the built-in activation/passivation logic (§2.4) runs after
  // user handlers, so the owner always gets a work unit for them.
  if (control_ && inside_ &&
      (event_is<Init>(*e) || event_is<Start>(*e) || event_is<Stop>(*e))) {
    targets.insert(owner_);
  }
  targets.for_each([&](ComponentCore* t) { t->enqueue_work(e, this, control_); });
  return matches;
}

bool PortCore::has_match(const Event& e) const {
  if (sub_count_.load(std::memory_order_acquire) == 0) return false;
  const EventTypeId eid = e.kompics_type_id();
  const auto snap = subs_.acquire();
  for (const auto& s : snap->subs) {
    if (s->active.load(std::memory_order_acquire) && s->accepts(e, eid)) return true;
  }
  return false;
}

void PortCore::add_subscription(const SubscriptionRef& s) {
  std::lock_guard<std::mutex> g(mu_);
  const SubTable* cur = subs_.load_unlocked();
  auto* next = new SubTable;
  next->subs.reserve(cur->subs.size() + 1);
  next->subs = cur->subs;
  next->subs.push_back(s);
  const auto n = static_cast<std::uint32_t>(next->subs.size());
  subs_.swap(next);
  sub_count_.store(n, std::memory_order_release);
  sub_epoch_.fetch_add(1, std::memory_order_release);
}

void PortCore::remove_subscription(const SubscriptionRef& s) {
  std::lock_guard<std::mutex> g(mu_);
  // Deactivate first: in-flight work items holding a cached match list
  // (and the current handler round) observe the removal immediately.
  s->active.store(false, std::memory_order_release);
  const SubTable* cur = subs_.load_unlocked();
  auto* next = new SubTable;
  next->subs.reserve(cur->subs.size());
  for (const auto& existing : cur->subs) {
    if (existing != s) next->subs.push_back(existing);
  }
  const auto n = static_cast<std::uint32_t>(next->subs.size());
  subs_.swap(next);
  sub_count_.store(n, std::memory_order_release);
  sub_epoch_.fetch_add(1, std::memory_order_release);
}

std::vector<SubscriptionRef> PortCore::matching_subscriptions(ComponentCore* subscriber,
                                                              const Event& e) const {
  std::vector<SubscriptionRef> out;
  matching_subscriptions_into(subscriber, e, out);
  return out;
}

void PortCore::matching_subscriptions_into(ComponentCore* subscriber, const Event& e,
                                           std::vector<SubscriptionRef>& out) const {
  out.clear();
  const EventTypeId eid = e.kompics_type_id();
  const auto snap = subs_.acquire();
  for (const auto& s : snap->subs) {
    if (s->subscriber == subscriber && s->active.load(std::memory_order_acquire) &&
        s->accepts(e, eid)) {
      out.push_back(s);
    }
  }
}

void PortCore::attach_channel(const ChannelRef& c) {
  std::lock_guard<std::mutex> g(mu_);
  const ChanTable* cur = chans_.load_unlocked();
  auto* next = new ChanTable;
  next->channels.reserve(cur->channels.size() + 1);
  next->channels = cur->channels;
  next->channels.push_back(c);
  const auto n = static_cast<std::uint32_t>(next->channels.size());
  chans_.swap(next);
  chan_count_.store(n, std::memory_order_release);
}

void PortCore::detach_channel(const Channel* c) {
  std::lock_guard<std::mutex> g(mu_);
  const ChanTable* cur = chans_.load_unlocked();
  auto* next = new ChanTable;
  next->channels.reserve(cur->channels.size());
  for (const auto& existing : cur->channels) {
    if (existing.get() != c) next->channels.push_back(existing);
  }
  const auto n = static_cast<std::uint32_t>(next->channels.size());
  chans_.swap(next);
  chan_count_.store(n, std::memory_order_release);
}

std::vector<ChannelRef> PortCore::channels() const {
  const auto snap = chans_.acquire();
  return snap->channels;
}

PortPair::PortPair(ComponentCore* owner, const PortType* type, bool provided_)
    : provided(provided_) {
  // Provided port: requests (negative) flow toward the component, so the
  // inside half has negative polarity; the outside half is positive.
  // Required port: the dual.
  const Direction inside_pol = provided_ ? Direction::kNegative : Direction::kPositive;
  inside = std::make_unique<PortCore>(owner, type, inside_pol, /*inside=*/true);
  outside = std::make_unique<PortCore>(owner, type, opposite(inside_pol), /*inside=*/false);
  inside->link_pair(outside.get());
  outside->link_pair(inside.get());
}

}  // namespace kompics
