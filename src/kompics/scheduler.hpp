#pragma once

// Scheduler abstraction (paper §3): Kompics decouples component behaviour
// from component execution. The same component code runs under the
// multi-core work-stealing scheduler (production) or the single-threaded
// deterministic simulation scheduler — only the Scheduler implementation
// changes.

#include <memory>

namespace kompics {

class ComponentCore;
using ComponentCorePtr = std::shared_ptr<ComponentCore>;

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Called exactly once per idle->ready transition of a component. The
  /// scheduler must eventually call ComponentCore::execute on it.
  virtual void schedule(ComponentCorePtr component) = 0;

  /// Starts worker threads (no-op for single-threaded schedulers).
  virtual void start() = 0;

  /// Stops accepting work and joins workers.
  virtual void shutdown() = 0;
};

}  // namespace kompics
