#pragma once

// Scheduler abstraction (paper §3): Kompics decouples component behaviour
// from component execution. The same component code runs under the
// multi-core work-stealing scheduler (production) or the single-threaded
// deterministic simulation scheduler — only the Scheduler implementation
// changes.

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace kompics {

class ComponentCore;
using ComponentCorePtr = std::shared_ptr<ComponentCore>;

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Called exactly once per idle->ready transition of a component. The
  /// scheduler must eventually call ComponentCore::execute on it.
  virtual void schedule(ComponentCorePtr component) = 0;

  /// Hands over a batch of idle->ready components in one call (one trigger
  /// fanning out to many subscribers). Consumes the batch contents and
  /// leaves `batch` empty (capacity preserved, so callers can reuse it).
  /// Schedulers override this to amortize per-schedule costs — queue locks,
  /// worker wake-ups — across the whole batch.
  virtual void schedule_batch(std::vector<ComponentCorePtr>& batch) {
    for (auto& c : batch) schedule(std::move(c));
    batch.clear();
  }

  /// Starts worker threads (no-op for single-threaded schedulers).
  virtual void start() = 0;

  /// Stops accepting work and joins workers.
  virtual void shutdown() = 0;

  /// Named counters for the telemetry surface (telemetry.hpp): /metrics
  /// exposes them as kompics_scheduler_total{counter="..."} and the §4.1
  /// monitoring rounds ship them as kernel.sched.* status fields.
  /// Single-threaded schedulers may report nothing.
  virtual std::vector<std::pair<std::string, std::uint64_t>> telemetry_counters() const {
    return {};
  }
};

}  // namespace kompics
