#pragma once

// Events are the unit of communication in Kompics (paper §2.1): passive,
// immutable, typed objects. Subtyping of events maps onto C++ inheritance
// from kompics::Event; handler and port-type matching use the event *type
// registry* below — each registered Event subclass carries a small integer
// TypeId with a precomputed ancestor chain, so subtype checks on the
// dispatch hot path are integer parent-walks instead of dynamic_cast.
// Unregistered event types keep the RTTI fallback, so plain `class X :
// public Event {}` declarations continue to work unchanged.
//
// Registering a type (opt-in, recommended for every event that crosses the
// dispatch hot path):
//
//   class Tick : public Event {
//     KOMPICS_EVENT(Tick, Event);
//    public:
//     ...
//   };
//
// The second macro argument MUST be the direct base class (itself Event or
// a registered subtype). Registration is lazy, thread-safe, idempotent and
// process-wide: the same type defined in a header and used from many
// translation units gets exactly one TypeId.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <type_traits>
#include <typeinfo>

#include "debug.hpp"

namespace kompics {

class Event;

/// Small dense integer identifying a registered event type.
using EventTypeId = std::uint32_t;

/// Sentinel: "this type is not registered" (subscriptions fall back to RTTI).
inline constexpr EventTypeId kEventTypeInvalid = 0;
/// TypeId of the root of the hierarchy, kompics::Event itself.
inline constexpr EventTypeId kEventTypeRoot = 1;

namespace detail {

/// Hard cap on distinct registered event types. Registry storage and the
/// per-port-type `allows` memos are flat arrays indexed by TypeId, so this
/// bounds their size; 4096 is two orders of magnitude above what the whole
/// repo (CATS + net + sim + web + tests) declares.
inline constexpr std::size_t kMaxEventTypes = 4096;

struct EventTypeInfo {
  EventTypeId parent = kEventTypeInvalid;
  const char* name = "";
  const std::type_info* ti = nullptr;  ///< dynamic-type exactness checks
};

// Registry storage. Entries are immutable once published; an id only
// escapes the registering thread through a function-local static whose
// guard provides the release/acquire edge, so readers never race writers.
inline EventTypeInfo g_event_types[kMaxEventTypes]{};
inline std::atomic<EventTypeId> g_event_type_count{2};  // 0 invalid, 1 root
inline std::mutex g_event_type_mu;

inline void ensure_root_registered_locked(const std::type_info& root_ti) {
  if (g_event_types[kEventTypeRoot].ti == nullptr) {
    g_event_types[kEventTypeRoot] =
        EventTypeInfo{kEventTypeInvalid, "kompics::Event", &root_ti};
  }
}

inline EventTypeId allocate_event_type(EventTypeId parent, const char* name,
                                       const std::type_info& ti,
                                       const std::type_info& root_ti) {
  std::lock_guard<std::mutex> g(g_event_type_mu);
  ensure_root_registered_locked(root_ti);
  const EventTypeId id = g_event_type_count.load(std::memory_order_relaxed);
  KOMPICS_ASSERT(id < kMaxEventTypes, "event type registry full (kMaxEventTypes)");
  g_event_types[id] = EventTypeInfo{parent, name, &ti};
  g_event_type_count.store(id + 1, std::memory_order_release);
  return id;
}

/// True when `ancestor` is `derived` or one of its registered ancestors.
/// Chains are shallow (2–4 links in practice), so a parent-walk beats any
/// precomputed set both in cache footprint and in constant factor.
inline bool is_ancestor(EventTypeId ancestor, EventTypeId derived) {
  if (ancestor == derived || ancestor == kEventTypeRoot) return true;
  while (derived != kEventTypeRoot && derived != kEventTypeInvalid) {
    derived = g_event_types[derived].parent;
    if (derived == ancestor) return true;
  }
  return false;
}

/// True when `id` names exactly the dynamic type of `e` — i.e. the reported
/// id is not merely an inherited ancestor id from an unregistered subclass.
/// Per-type caches may only be keyed by exact ids.
bool type_id_is_exact(EventTypeId id, const Event& e);

/// Detects types that registered *themselves* via KOMPICS_EVENT (the
/// KompicsSelfType typedef is inherited, so compare it against E).
template <class E, class = void>
struct is_self_registered : std::false_type {};
template <class E>
struct is_self_registered<E, std::void_t<typename E::KompicsSelfType>>
    : std::bool_constant<std::is_same_v<typename E::KompicsSelfType, E>> {};
template <class E>
inline constexpr bool is_self_registered_v = is_self_registered<E>::value;

template <class E, class Base>
EventTypeId register_event_type(const char* name);

}  // namespace detail

/// Root of the event type hierarchy. All events are immutable once
/// published: they are shared between every subscriber via
/// std::shared_ptr<const Event>, so implementations must not expose
/// mutable state.
class Event {
 public:
  using KompicsSelfType = Event;

  virtual ~Event() = default;

  /// TypeId of this class in the event type registry (the root id).
  static EventTypeId kompics_static_type_id() { return kEventTypeRoot; }

  /// TypeId of the *nearest registered ancestor* of the dynamic type (the
  /// dynamic type itself when registered). Ancestor checks against this id
  /// are exact for any registered target type under single inheritance.
  virtual EventTypeId kompics_type_id() const { return kEventTypeRoot; }

  // ---- telemetry envelope (telemetry.hpp) --------------------------------
  // One word carrying (trace id, parent span id) for sampled causal tracing.
  // Stamped at most once, at the event's first trigger(); 0 means untraced.
  // The slot is the only mutable state on an event, and it never affects
  // dispatch — it is write-once metadata riding the envelope so a trace
  // survives channel forwarding and replay unchanged.
  std::uint64_t kompics_trace_word() const {
    return kompics_trace_word_.load(std::memory_order_relaxed);
  }
  void kompics_stamp_trace(std::uint64_t word) const {
    std::uint64_t expected = 0;  // first stamp wins (events fan out to many ports)
    kompics_trace_word_.compare_exchange_strong(expected, word, std::memory_order_relaxed);
  }

 protected:
  Event() = default;
  // A copied event is a distinct publication: the trace word stays 0 so the
  // copy gets its own stamp. (Manual ops because atomics are not copyable.)
  Event(const Event&) noexcept {}
  Event& operator=(const Event&) noexcept { return *this; }

 private:
  mutable std::atomic<std::uint64_t> kompics_trace_word_{0};
};

/// Registers event type E with direct base Base in the type registry and
/// overrides the id hooks. Place inside the class definition; leaves the
/// access level `public`. Base MUST be the direct base class — skipping an
/// intermediate *registered* class mis-declares the ancestor chain.
#define KOMPICS_EVENT(E, Base)                                              \
 public:                                                                    \
  using KompicsSelfType = E;                                                \
  static ::kompics::EventTypeId kompics_static_type_id() {                  \
    static const ::kompics::EventTypeId kompics_event_id =                  \
        ::kompics::detail::register_event_type<E, Base>(#E);                \
    return kompics_event_id;                                                \
  }                                                                         \
  ::kompics::EventTypeId kompics_type_id() const override {                 \
    return kompics_static_type_id();                                        \
  }                                                                         \
  static_assert(true, "")

namespace detail {

template <class E, class Base>
EventTypeId register_event_type(const char* name) {
  static_assert(std::is_base_of_v<Event, Base>, "Base must derive from kompics::Event");
  static_assert(std::is_base_of_v<Base, E>, "Base must be a base class of E");
  static_assert(!std::is_same_v<E, Base>, "an event type cannot be its own base");
  // Registering the parent first (recursively, through its own static-id
  // hook) guarantees every ancestor entry is published before this id
  // escapes. When Base is itself unregistered this yields Base's nearest
  // registered ancestor, which keeps ancestor checks sound (the skipped,
  // unregistered middle types match via the RTTI fallback anyway).
  const EventTypeId parent = Base::kompics_static_type_id();
  return allocate_event_type(parent, name, typeid(E), typeid(Event));
}

inline bool type_id_is_exact(EventTypeId id, const Event& e) {
  const std::type_info* ti = g_event_types[id].ti;
  return ti != nullptr && *ti == typeid(e);
}

/// E's registered TypeId, or kEventTypeInvalid when E never registered.
template <class E>
EventTypeId static_type_id_or_invalid() {
  if constexpr (is_self_registered_v<E>) {
    return E::kompics_static_type_id();
  } else {
    return kEventTypeInvalid;
  }
}

}  // namespace detail

/// Shared, immutable handle to a published event.
using EventPtr = std::shared_ptr<const Event>;

/// Constructs an event of concrete type E and returns an immutable handle.
template <class E, class... Args>
EventPtr make_event(Args&&... args) {
  static_assert(std::is_base_of_v<Event, E>, "E must derive from kompics::Event");
  return std::make_shared<const E>(std::forward<Args>(args)...);
}

/// True when the dynamic type of `e` is E or a subtype of E. Registered
/// types resolve via an integer ancestor-walk; unregistered ones keep the
/// RTTI check (exactly dynamic_cast's answer under single inheritance).
template <class E>
bool event_is(const Event& e) {
  static_assert(std::is_base_of_v<Event, E>, "E must derive from kompics::Event");
  if constexpr (std::is_same_v<E, Event>) {
    return true;
  } else if constexpr (detail::is_self_registered_v<E>) {
    return detail::is_ancestor(E::kompics_static_type_id(), e.kompics_type_id());
  } else {
    return dynamic_cast<const E*>(&e) != nullptr;
  }
}

/// Downcast helper used after a successful event_is / accepts check.
template <class E>
const E& event_as(const Event& e) {
  return static_cast<const E&>(e);
}

}  // namespace kompics
