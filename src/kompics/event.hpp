#pragma once

// Events are the unit of communication in Kompics (paper §2.1): passive,
// immutable, typed objects. Subtyping of events maps onto C++ inheritance
// from kompics::Event; handler and port-type matching use RTTI, which is the
// C++ equivalent of the Java implementation's class-hierarchy checks.

#include <memory>
#include <type_traits>

namespace kompics {

/// Root of the event type hierarchy. All events are immutable once
/// published: they are shared between every subscriber via
/// std::shared_ptr<const Event>, so implementations must not expose
/// mutable state.
class Event {
 public:
  virtual ~Event() = default;

 protected:
  Event() = default;
  Event(const Event&) = default;
  Event& operator=(const Event&) = default;
};

/// Shared, immutable handle to a published event.
using EventPtr = std::shared_ptr<const Event>;

/// Constructs an event of concrete type E and returns an immutable handle.
template <class E, class... Args>
EventPtr make_event(Args&&... args) {
  static_assert(std::is_base_of_v<Event, E>, "E must derive from kompics::Event");
  return std::make_shared<const E>(std::forward<Args>(args)...);
}

/// True when the dynamic type of `e` is E or a subtype of E.
template <class E>
bool event_is(const Event& e) {
  if constexpr (std::is_same_v<E, Event>) {
    return true;
  } else {
    return dynamic_cast<const E*>(&e) != nullptr;
  }
}

/// Downcast helper used after a successful event_is / accepts check.
template <class E>
const E& event_as(const Event& e) {
  return static_cast<const E&>(e);
}

}  // namespace kompics
