#pragma once

// Components (paper §2.1): event-driven state machines that execute
// concurrently and communicate asynchronously by message passing.
//
// Users subclass ComponentDefinition; the runtime wraps each instance in a
// ComponentCore that owns its ports, its work queues, and its position in
// the containment hierarchy. Handlers of one component are mutually
// exclusive (§3): work is published to a lock-free MPSC queue and a
// ready-state counter guarantees at most one worker executes a component at
// any time.
//
// Life-cycle (§2.4): components are created passive; events received while
// passive are parked and replayed on activation. If an Init handler was
// subscribed in the constructor, every other event is parked until the
// corresponding Init is handled.

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <typeindex>
#include <unordered_map>
#include <vector>

#include "channel.hpp"
#include "clock.hpp"
#include "config.hpp"
#include "debug.hpp"
#include "event.hpp"
#include "handler.hpp"
#include "lifecycle.hpp"
#include "mpsc_queue.hpp"
#include "port.hpp"
#include "port_type.hpp"

namespace kompics {

class Runtime;
class ComponentDefinition;
class ComponentCore;
using ComponentCorePtr = std::shared_ptr<ComponentCore>;

namespace protocol {
class Runner;
}  // namespace protocol

/// Interface between a component and its coroutine-protocol runtime
/// (protocol.hpp). A definition that runs Proto<> frames owns exactly one
/// host (created lazily by protocol::Runner::of); destroy_tree() calls
/// cancel_all() right after halt(), while every channel of the subtree is
/// still attached — that is the window in which armed timeout timers can
/// still be cancelled through the Timer port.
class ProtocolHost {
 public:
  virtual ~ProtocolHost() = default;
  /// Cancels every in-flight protocol frame: no frame resumes after this
  /// returns, pending one-shot subscriptions are deactivated, and armed
  /// timers are cancelled through their Timer port. Thread-safe; idempotent.
  virtual void cancel_all() noexcept = 0;
  /// Destroys every (cancelled) frame. ~ComponentCore calls this BEFORE
  /// resetting the definition: frame locals (RAII guards, streams) may
  /// reference members of the derived definition, which are destroyed
  /// before the base class's protocol_host_ — so unwinding must happen
  /// while the full derived object is still alive. Idempotent.
  virtual void destroy_frames() noexcept = 0;
  /// Frames spawned and not yet completed (suspended frames included).
  virtual std::size_t live_frame_count() const = 0;
};

namespace detail {
class DispatchBatch;
}  // namespace detail

namespace telemetry {
struct ComponentStats;
}  // namespace telemetry

/// Handle to a (sub)component held by its creator — grants access to the
/// child's outside port halves for connect() and life-cycle triggers.
class Component {
 public:
  Component() = default;
  explicit Component(ComponentCorePtr core) : core_(std::move(core)) {}

  explicit operator bool() const { return core_ != nullptr; }
  ComponentCore* core() const { return core_.get(); }
  ComponentCorePtr core_ptr() const { return core_; }

  /// The child's control port (outside half) — target for Init/Start/Stop.
  PortCore* control() const;

  /// Outside half of the child's provided port of type PT (`+` polarity).
  template <class PT>
  Positive<PT> provided() const;

  /// Outside half of the child's required port of type PT (`-` polarity).
  template <class PT>
  Negative<PT> required() const;

  /// Access the child's definition (tests, state transfer during §2.6
  /// reconfiguration). D must be the concrete definition type.
  template <class D>
  D& definition_as() const;

 private:
  ComponentCorePtr core_;
};

class ComponentCore : public std::enable_shared_from_this<ComponentCore> {
 public:
  /// A unit of work: one event to be handled on one port half.
  struct WorkItem {
    std::atomic<WorkItem*> next{nullptr};
    EventPtr event;
    PortCore* half = nullptr;
    bool control = false;
  };

  ComponentCore(Runtime* runtime, ComponentCore* parent, std::uint64_t id);
  ~ComponentCore();

  ComponentCore(const ComponentCore&) = delete;
  ComponentCore& operator=(const ComponentCore&) = delete;

  // ---- identity / hierarchy -------------------------------------------
  std::uint64_t id() const { return id_; }
  Runtime* runtime() const { return runtime_; }
  ComponentCore* parent() const { return parent_; }
  const std::string& name() const { return name_; }
  void set_name(std::string n) { name_ = std::move(n); }

  void set_definition(std::unique_ptr<ComponentDefinition> def);
  ComponentDefinition* definition() const { return definition_.get(); }

  void add_child(ComponentCorePtr child);
  void remove_child(ComponentCore* child);
  std::vector<ComponentCorePtr> children() const;

  // ---- ports -----------------------------------------------------------
  /// Declares a provided/required port of the given type. At most one port
  /// per (type, kind) per component, as in the Java runtime.
  PortPair* declare_port(const PortType* type, std::type_index tid, bool provided);
  PortPair* find_port(std::type_index tid, bool provided) const;

  struct PortInfo {
    std::type_index tid;
    bool provided;
    PortPair* pair;
  };
  std::vector<PortInfo> declared_ports() const;

  PortCore* control_inside() const { return control_->inside.get(); }
  PortCore* control_outside() const { return control_->outside.get(); }

  // ---- execution -------------------------------------------------------
  /// Publishes one unit of work; schedules the component on the idle->ready
  /// transition. Callable from any thread.
  void enqueue_work(const EventPtr& e, PortCore* half, bool control);

  /// Executes exactly one unit of work (paper §3: one event per scheduling
  /// round) and re-schedules itself if more work is pending.
  void execute();

  LifecycleState state() const { return state_.load(std::memory_order_acquire); }
  bool needs_init() const { return needs_init_.load(std::memory_order_acquire); }
  void mark_needs_init() { needs_init_.store(true, std::memory_order_release); }

  /// Tears down this component and its subtree: detaches every channel,
  /// marks everything destroyed, drains parked work.
  void destroy_tree();

  /// §2.6 replacement support: destroys this component but forwards its
  /// still-queued application events onto the matching ports of `successor`
  /// instead of dropping them. (Control/life-cycle events are dropped;
  /// events addressed to ports of this component's children are dropped
  /// with the children.)
  void retire_into(ComponentCorePtr successor);

  /// Called (thread-safely) by a child that finished its stop protocol.
  void child_stopped();
  /// Called (thread-safely) by a child that finished its start protocol.
  void child_started();

  RngStream& rng() { return rng_; }

  /// Number of work units currently counted against this component.
  std::int64_t work_count() const { return work_count_.load(std::memory_order_acquire); }

  // ---- telemetry ---------------------------------------------------------
  /// The component's metrics block, or nullptr while it never ran with
  /// metrics enabled (lazy: 16k-node simulations with telemetry off pay
  /// nothing). Safe to read from any thread (scrape path).
  const telemetry::ComponentStats* telemetry_stats() const {
    return telemetry_stats_.load(std::memory_order_acquire);
  }

 private:
  /// Consumer-only lazy creation (run_item under the §3 single-consumer
  /// discipline is the only writer).
  telemetry::ComponentStats& telemetry_stats_mut();

 public:

 private:
  friend class ComponentDefinition;
  friend class detail::DispatchBatch;

  void bump(std::int64_t k);     // pending + ticket(k)
  void ticket(std::int64_t k);   // add k ready units; schedule on 0 -> k
  void complete_one();           // finish a unit; re-schedule if more remain
  WorkItem* next_item();         // pop respecting init/passive gating
  void run_item(WorkItem* item);

 public:
  /// The core whose work item is executing on the current thread (nullptr
  /// outside any dispatch). Distinguishes "already inside this component's
  /// single-consumer context" from a foreign handler or external thread —
  /// the protocol layer uses it to decide whether a freshly spawned frame
  /// may run inline or must be enqueued like any other work item.
  static ComponentCore* running_on_this_thread();

 private:
  const std::vector<SubscriptionRef>& matching_subs_cached(PortCore* half,
                                                           const Event& e);
  void builtin_lifecycle_event(const Event& e);
  void begin_stop();
  void emit_stopped();
  void begin_start();
  void emit_started();
  void escalate_fault(std::exception_ptr error);
  void flush_init_deferred();
  void flush_passive_deferred();
  void drain_all_queues();
  void park(WorkItem* item, bool to_control);

  Runtime* runtime_;
  ComponentCore* parent_;
  std::uint64_t id_;
  std::string name_;
  RngStream rng_;

  std::unique_ptr<ComponentDefinition> definition_;
  std::unique_ptr<PortPair> control_;

  mutable std::mutex structure_mu_;
  std::vector<ComponentCorePtr> children_;
  struct DeclaredPort {
    std::type_index tid;
    bool provided;
    std::unique_ptr<PortPair> pair;
  };
  std::vector<DeclaredPort> ports_;

  // Execution machinery. work_count_ counts schedulable units; the 0->N
  // transition enqueues the component with the scheduler, so at most one
  // worker executes it at a time (single-consumer discipline for the MPSC
  // queues and the deques below).
  std::atomic<std::int64_t> work_count_{0};
  MpscQueue<WorkItem> control_q_;
  MpscQueue<WorkItem> normal_q_;
  std::deque<WorkItem*> replay_control_;    // consumer-only
  std::deque<WorkItem*> replay_normal_;     // consumer-only
  std::deque<WorkItem*> parked_control_;    // waiting for Init
  std::deque<WorkItem*> parked_normal_;     // waiting for Start
  KOMPICS_SINGLE_CONSUMER_FLAG(executing_);  // §3: one worker at a time

  // Epoch-validated match cache for the executing worker's re-match
  // (run_item): keyed by (port half, event TypeId), valid while the stored
  // epoch equals the port's subscription epoch. Consumer-only state — the
  // single-consumer discipline above is its lock. Entries hold
  // SubscriptionRefs, so cached lists stay safe across unsubscribes (the
  // per-subscription `active` flag preserves exact semantics).
  struct MatchKey {
    const PortCore* half;
    EventTypeId id;
    bool operator==(const MatchKey& o) const { return half == o.half && id == o.id; }
  };
  struct MatchKeyHash {
    std::size_t operator()(const MatchKey& k) const {
      return std::hash<const void*>()(k.half) ^
             (static_cast<std::size_t>(k.id) * 0x9e3779b97f4a7c15ULL);
    }
  };
  struct MatchEntry {
    std::uint64_t epoch = 0;
    bool valid = false;
    std::vector<SubscriptionRef> subs;
  };
  static constexpr std::size_t kMatchCacheMax = 1024;
  std::unordered_map<MatchKey, MatchEntry, MatchKeyHash> match_cache_;  // consumer-only
  std::vector<SubscriptionRef> scratch_subs_;                           // consumer-only
  std::atomic<LifecycleState> state_{LifecycleState::kPassive};
  std::atomic<bool> needs_init_{false};
  bool init_done_ = false;  // consumer-only
  std::atomic<int> stop_pending_{0};   // children yet to confirm Stopped
  std::atomic<int> start_pending_{0};  // children yet to confirm Started
  ComponentCorePtr forward_to_;        // §2.6 retire target (under structure_mu_)
  std::atomic<telemetry::ComponentStats*> telemetry_stats_{nullptr};  // lazy, owned
};

namespace detail {

/// Thread-local accumulator that coalesces the scheduler and quiescence
/// bookkeeping of one synchronous event propagation (one trigger(), one
/// channel replay). While a scope is open on the calling thread,
/// enqueue_work() records its target here after pushing the work item;
/// the outermost scope exit then pays ONE runtime pending-counter update,
/// performs the idle->ready transitions, and hands every newly-ready
/// component to the scheduler in a single schedule_batch() call. A fan-out
/// trigger with N subscribers thus wakes the worker pool once instead of
/// N times.
///
/// Deferral is safe because a work item without its ready "ticket" is
/// merely invisible to the scheduler until the flush — it cannot be
/// completed, so the runtime's pending counter never undercounts
/// completable work. Triggers from inside a handler flush before run_item
/// returns, so the handler's own in-flight unit keeps the runtime
/// non-quiescent across the whole window.
class DispatchBatch {
 public:
  bool active() const { return depth_ > 0; }
  /// A batch only spans one runtime; a foreign component falls back to the
  /// unbatched path.
  bool compatible(Runtime* rt) const { return runtime_ == nullptr || runtime_ == rt; }

  void add(ComponentCore* c) {
    runtime_ = c->runtime_;
    bumps_.push_back(c);
  }

  void enter() { ++depth_; }
  void exit() {
    if (--depth_ == 0 && !bumps_.empty()) flush();
  }

  /// The calling thread's batch (one per thread, reused across scopes so
  /// the vectors keep their capacity).
  static DispatchBatch& current();

 private:
  void flush();

  int depth_ = 0;
  Runtime* runtime_ = nullptr;
  std::vector<ComponentCore*> bumps_;          // one entry per queued unit
  std::vector<ComponentCorePtr> to_schedule_;  // reused scratch for flush()
};

/// RAII scope delimiting one synchronous propagation; nests freely (only
/// the outermost exit flushes).
class DispatchBatchScope {
 public:
  DispatchBatchScope() : batch_(DispatchBatch::current()) { batch_.enter(); }
  ~DispatchBatchScope() { batch_.exit(); }
  DispatchBatchScope(const DispatchBatchScope&) = delete;
  DispatchBatchScope& operator=(const DispatchBatchScope&) = delete;

 private:
  DispatchBatch& batch_;
};

}  // namespace detail

/// Base class for user components. Constructors run with the owning
/// ComponentCore installed, so they may declare ports, subscribe handlers,
/// create children, and connect channels — exactly the operations of
/// paper §2.2.
class ComponentDefinition {
 public:
  virtual ~ComponentDefinition() = default;

  ComponentDefinition(const ComponentDefinition&) = delete;
  ComponentDefinition& operator=(const ComponentDefinition&) = delete;

  /// Teardown hook: stop and join any threads this definition owns.
  /// destroy_tree() calls it on every definition in the subtree before any
  /// channel is detached or any core can be freed, so an owned thread never
  /// fires into a component that is already (partially) destroyed. Must be
  /// idempotent; the destructor must still stop the threads itself for
  /// definitions that are dropped without going through destroy_tree().
  virtual void halt() {}

  /// The coroutine-protocol host attached to this definition, or nullptr
  /// while no Proto<> frame was ever spawned on it (protocol.hpp).
  ProtocolHost* protocol_host() const { return protocol_host_.get(); }

 protected:
  ComponentDefinition();

  // ---- ports -----------------------------------------------------------
  template <class PT>
  Negative<PT> provide() {
    auto* pair = core_->declare_port(&port_type<PT>(), std::type_index(typeid(PT)), true);
    return Negative<PT>{pair->inside.get()};
  }

  template <class PT>
  Positive<PT> require() {
    auto* pair = core_->declare_port(&port_type<PT>(), std::type_index(typeid(PT)), false);
    return Positive<PT>{pair->inside.get()};
  }

  /// Own control port (inside half) — subscribe Init/Start/Stop handlers
  /// here; Fault events are triggered on it by the runtime.
  PortCore* control() const { return core_->control_inside(); }

  // ---- subscriptions (§2.1, §2.2) ---------------------------------------
  template <class E>
  SubscriptionRef subscribe(const Handler<E>& h, PortCore* half) {
    return subscribe_impl<E>(half, [&h](const E& e) { h(e); });
  }
  template <class E, class PT>
  SubscriptionRef subscribe(const Handler<E>& h, Positive<PT> p) {
    return subscribe(h, p.core);
  }
  template <class E, class PT>
  SubscriptionRef subscribe(const Handler<E>& h, Negative<PT> p) {
    return subscribe(h, p.core);
  }

  /// Inline-lambda form: subscribe<EventType>(port, [this](const E&) {...}).
  template <class E, class F>
  SubscriptionRef subscribe(PortCore* half, F&& fn) {
    return subscribe_impl<E>(half, std::forward<F>(fn));
  }
  template <class E, class PT, class F>
  SubscriptionRef subscribe(Positive<PT> p, F&& fn) {
    return subscribe_impl<E>(p.core, std::forward<F>(fn));
  }
  template <class E, class PT, class F>
  SubscriptionRef subscribe(Negative<PT> p, F&& fn) {
    return subscribe_impl<E>(p.core, std::forward<F>(fn));
  }

  void unsubscribe(const SubscriptionRef& s) {
    if (s != nullptr && s->half != nullptr) s->half->remove_subscription(s);
  }

  // ---- event triggering (§2.2) ------------------------------------------
  void trigger(const EventPtr& e, PortCore* half) { half->trigger(e); }
  template <class PT>
  void trigger(const EventPtr& e, Positive<PT> p) {
    p.core->trigger(e);
  }
  template <class PT>
  void trigger(const EventPtr& e, Negative<PT> p) {
    p.core->trigger(e);
  }

  // ---- children & channels (§2.1, §2.2) ----------------------------------
  /// Defined in kompics.hpp (needs Runtime): creates a subcomponent.
  template <class Def, class... Args>
  Component create(Args&&... args);

  /// Destroys a subcomponent and its subtree.
  void destroy(Component& child) {
    if (child.core() != nullptr) {
      child.core()->destroy_tree();
      core_->remove_child(child.core());
      child = Component{};
    }
  }

  /// Connects a positive half to a negative half of the same port type.
  ChannelRef connect(PortCore* positive_half, PortCore* negative_half);
  template <class PT>
  ChannelRef connect(Positive<PT> p, Negative<PT> n) {
    return connect(p.core, n.core);
  }
  template <class PT>
  ChannelRef connect(Negative<PT> n, Positive<PT> p) {
    return connect(p.core, n.core);
  }

  void disconnect(const ChannelRef& c) {
    if (c != nullptr) c->destroy();
  }

  /// §2.6 replacement recipe: holds and unplugs every channel connected to
  /// `old`'s (non-control) outside ports, passivates `old`, creates the
  /// replacement, re-plugs the channels into the matching ports of the new
  /// component and resumes them (flushing everything queued while held),
  /// then initializes/activates the new component and destroys the old one.
  /// `init_event` (may be null) typically carries state dumped from `old` —
  /// read it via old.definition_as<OldDef>() *before* calling replace.
  /// Defined in kompics.hpp.
  template <class NewDef, class... Args>
  Component replace(Component& old, const EventPtr& init_event, Args&&... ctor_args);
  /// Finds and destroys the channel between two halves.
  void disconnect(PortCore* a, PortCore* b);
  template <class PT>
  void disconnect(Positive<PT> p, Negative<PT> n) {
    disconnect(p.core, n.core);
  }

  // ---- context -----------------------------------------------------------
  const Config& config() const;
  TimeMs now() const;

  /// The shared handle of the event currently being handled — lets a
  /// handler forward the event it received without copying (events are
  /// immutable and shared, §2.1). Only valid inside a handler.
  const EventPtr& current_event() const { return current_event_; }
  template <class E>
  std::shared_ptr<const E> current_event_as() const {
    return std::static_pointer_cast<const E>(current_event_);
  }

  RngStream& rng() { return core_->rng(); }
  Runtime& runtime() const { return *core_->runtime(); }
  ComponentCore& core() const { return *core_; }
  std::uint64_t id() const { return core_->id(); }

 private:
  template <class E, class F>
  SubscriptionRef subscribe_impl(PortCore* half, F&& fn) {
    static_assert(std::is_base_of_v<Event, E>, "E must derive from kompics::Event");
    auto sub = std::make_shared<Subscription>();
    sub->subscriber = core_;
    sub->half = half;
    // Registered event types match by integer TypeId ancestor-walk; only
    // unregistered ones pay the RTTI predicate (event.hpp).
    sub->event_type = detail::static_type_id_or_invalid<E>();
    if (sub->event_type == kEventTypeInvalid) {
      sub->rtti_accepts = [](const Event& e) { return event_is<E>(e); };
    }
    sub->invoke = [f = std::function<void(const E&)>(std::forward<F>(fn))](const Event& e) {
      f(event_as<E>(e));
    };
    // Init-first guarantee (§2.4): subscribing a handler for an Init
    // subtype on the own control port defers all other events until Init.
    if constexpr (std::is_base_of_v<Init, E>) {
      if (half == core_->control_inside() && !in_handler_) core_->mark_needs_init();
    }
    half->add_subscription(sub);
    return sub;
  }

  friend class ComponentCore;
  friend class protocol::Runner;  // protocol.hpp: hidden resume port + subscribe
  ComponentCore* core_;
  bool in_handler_ = false;   // set by ComponentCore while running handlers
  EventPtr current_event_;    // set by ComponentCore while running handlers
  std::unique_ptr<ProtocolHost> protocol_host_;  // lazily attached (protocol.hpp)
};

// ---- Component handle templates -----------------------------------------

template <class PT>
Positive<PT> Component::provided() const {
  PortPair* p = core_->find_port(std::type_index(typeid(PT)), /*provided=*/true);
  if (p == nullptr) throw std::logic_error("component does not provide this port type");
  return Positive<PT>{p->outside.get()};
}

template <class PT>
Negative<PT> Component::required() const {
  PortPair* p = core_->find_port(std::type_index(typeid(PT)), /*provided=*/false);
  if (p == nullptr) throw std::logic_error("component does not require this port type");
  return Negative<PT>{p->outside.get()};
}

template <class D>
D& Component::definition_as() const {
  auto* d = dynamic_cast<D*>(core_->definition());
  if (d == nullptr) throw std::logic_error("definition type mismatch");
  return *d;
}

inline PortCore* Component::control() const { return core_->control_outside(); }

}  // namespace kompics
