#pragma once

// Event handlers (paper §2.1): first-class procedures of a component. A
// handler accepts events of a particular type (and subtypes) and runs
// reactively when such an event arrives on a port it is subscribed to.
// Handlers of one component instance are mutually exclusive — the runtime
// never executes two handlers of the same component concurrently — so
// handlers may freely mutate component-local state.

#include <atomic>
#include <functional>
#include <memory>

#include "event.hpp"

namespace kompics {

class ComponentCore;
class PortCore;

/// Typed, first-class handler. Declared as a component member:
///
///   Handler<Message> handle_msg{[this](const Message& m) { ++messages_; }};
///
/// and attached with subscribe(handle_msg, port).
template <class E>
class Handler {
 public:
  using Fn = std::function<void(const E&)>;

  Handler() = default;
  explicit Handler(Fn fn) : fn_(std::move(fn)) {}
  Handler& operator=(Fn fn) {
    fn_ = std::move(fn);
    return *this;
  }

  void operator()(const E& e) const { fn_(e); }
  bool valid() const { return static_cast<bool>(fn_); }

 private:
  Fn fn_;
};

/// Runtime representation of one subscription: binds an accepting predicate
/// and an invoker to (subscriber component, port half). Created by
/// ComponentDefinition::subscribe and kept alive by the port.
struct Subscription {
  ComponentCore* subscriber = nullptr;
  PortCore* half = nullptr;
  std::function<bool(const Event&)> accepts;
  std::function<void(const Event&)> invoke;
  // Cleared under the port lock by unsubscribe but also read lock-free by
  // the executing worker (ComponentCore::run_item), hence atomic.
  std::atomic<bool> active{true};
};

using SubscriptionRef = std::shared_ptr<Subscription>;

}  // namespace kompics
