#pragma once

// Event handlers (paper §2.1): first-class procedures of a component. A
// handler accepts events of a particular type (and subtypes) and runs
// reactively when such an event arrives on a port it is subscribed to.
// Handlers of one component instance are mutually exclusive — the runtime
// never executes two handlers of the same component concurrently — so
// handlers may freely mutate component-local state.

#include <atomic>
#include <functional>
#include <memory>

#include "event.hpp"

namespace kompics {

class ComponentCore;
class PortCore;

/// Typed, first-class handler. Declared as a component member:
///
///   Handler<Message> handle_msg{[this](const Message& m) { ++messages_; }};
///
/// and attached with subscribe(handle_msg, port).
template <class E>
class Handler {
 public:
  using Fn = std::function<void(const E&)>;

  Handler() = default;
  explicit Handler(Fn fn) : fn_(std::move(fn)) {}
  Handler& operator=(Fn fn) {
    fn_ = std::move(fn);
    return *this;
  }

  void operator()(const E& e) const { fn_(e); }
  bool valid() const { return static_cast<bool>(fn_); }

 private:
  Fn fn_;
};

/// Runtime representation of one subscription: binds an accepted event type
/// and an invoker to (subscriber component, port half). Created by
/// ComponentDefinition::subscribe and kept alive by the port's subscription
/// table. For events in the type registry the accept check is an integer
/// ancestor-walk on `event_type`; subscriptions for unregistered event
/// types carry the RTTI fallback predicate instead.
struct Subscription {
  ComponentCore* subscriber = nullptr;
  PortCore* half = nullptr;
  /// TypeId of the subscribed event type; kEventTypeInvalid when the type
  /// is unregistered (then `rtti_accepts` decides).
  EventTypeId event_type = kEventTypeInvalid;
  std::function<bool(const Event&)> rtti_accepts;
  std::function<void(const Event&)> invoke;
  // Cleared under the port's writer lock by unsubscribe but also read
  // lock-free by the executing worker (ComponentCore::run_item), hence
  // atomic.
  std::atomic<bool> active{true};

  bool accepts(const Event& e) const {
    return event_type != kEventTypeInvalid
               ? detail::is_ancestor(event_type, e.kompics_type_id())
               : rtti_accepts(e);
  }
  /// Hot-path variant when the caller already fetched the event's TypeId.
  bool accepts(const Event& e, EventTypeId eid) const {
    return event_type != kEventTypeInvalid ? detail::is_ancestor(event_type, eid)
                                           : rtti_accepts(e);
  }
};

using SubscriptionRef = std::shared_ptr<Subscription>;

}  // namespace kompics
