#pragma once

// Inert awaitable descriptors for the coroutine protocol layer
// (protocol.hpp). A descriptor only names WHAT to await — a port half, an
// event type, a correlation predicate — and carries no binding to any
// component or frame. The binding happens when a Proto<> coroutine
// co_awaits the descriptor: the promise's await_transform attaches it to
// the awaiting component's protocol runner. Keeping descriptors inert lets
// port.hpp hand them out from the typed Positive<PT>/Negative<PT> handles
// (`co_await port.request<Pong>(Ping{...})`) without depending on the
// protocol machinery.

#include <cstddef>
#include <utility>

namespace kompics {

class PortCore;

namespace protocol {

/// Default correlation predicate: accept every event of the awaited type.
struct AcceptAll {
  template <class E>
  bool operator()(const E&) const noexcept {
    return true;
  }
};

/// co_await port.next<E>(pred): suspend until the next E arriving on `half`
/// that satisfies `pred`; yields std::shared_ptr<const E>. One-shot: events
/// arriving before the co_await (or between resumption and a later next)
/// are not buffered — use open<E>() when none may be missed.
template <class E, class Pred = AcceptAll>
struct NextDesc {
  PortCore* half = nullptr;
  Pred pred{};
};

/// co_await port.request<Resp>(Req{...}, pred): subscribe for the matching
/// Resp, trigger the request on the same half, suspend until the response;
/// yields std::shared_ptr<const Resp>.
template <class Resp, class Req, class Pred = AcceptAll>
struct RequestDesc {
  PortCore* half = nullptr;
  Req request;
  Pred pred{};
};

/// co_await port.open<E>(pred): returns a Stream<E> (protocol.hpp) that
/// subscribes immediately and buffers every matching event until consumed
/// with co_await stream.next() — the primitive for quorum collection, where
/// an event arriving between a fire and the frame's resumption must not be
/// lost. Does not suspend.
template <class E, class Pred = AcceptAll>
struct OpenDesc {
  PortCore* half = nullptr;
  Pred pred{};
  /// Buffered events beyond this are dropped (lossy-network semantics).
  std::size_t capacity = 4096;
};

}  // namespace protocol
}  // namespace kompics
