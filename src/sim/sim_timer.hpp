#pragma once

// SimTimer: Timer provider for simulation mode. Identical port contract to
// timing::ThreadTimer, but deadlines live in the SimulatorCore's virtual
// time — consumer components cannot tell the difference (paper §3).

#include <unordered_map>

#include "kompics/component.hpp"
#include "kompics/kompics.hpp"
#include "sim/simulator_core.hpp"
#include "timing/timer_port.hpp"

namespace kompics::sim {

class SimTimer : public ComponentDefinition {
 public:
  struct Init : kompics::Init {
    explicit Init(SimulatorCore* core) : core(core) {}
    SimulatorCore* core;
  };

  SimTimer() {
    subscribe<Init>(control(), [this](const Init& init) { core_ = init.core; });
    subscribe<timing::ScheduleTimeout>(timer_, [this](const timing::ScheduleTimeout& st) {
      const timing::TimeoutId tid = st.timeout_id();
      auto payload = st.payload();
      pending_[tid] = core_->schedule(skewed(st.delay_ms()), [this, tid, payload] {
        pending_.erase(tid);
        trigger(payload, timer_);
      });
    });
    subscribe<timing::SchedulePeriodicTimeout>(
        timer_, [this](const timing::SchedulePeriodicTimeout& st) {
          arm_periodic(st.timeout_id(), st.initial_delay_ms(), st.period_ms(), st.payload());
        });
    subscribe<timing::CancelTimeout>(timer_, [this](const timing::CancelTimeout& ct) {
      auto it = pending_.find(ct.id());
      if (it != pending_.end()) {
        core_->cancel(it->second);
        pending_.erase(it);
      }
    });
  }

  /// Pending simulator actions capture `this`; when the timer's node is
  /// destroyed (churn, §4.2) they must be cancelled or they would fire into
  /// freed memory once virtual time reaches them.
  ~SimTimer() override {
    if (core_ == nullptr) return;
    for (const auto& [tid, action] : pending_) core_->cancel(action);
  }

  /// Clock-skew fault injection (campaign harness): all subsequently armed
  /// delays are scaled by skew_permille/1000 — a node whose timers run slow
  /// (skew > 1000) misses failure-detector and retry deadlines relative to
  /// the rest of the world, the classic "one laggard" fault class. Already
  /// armed timeouts keep their original deadlines.
  void set_skew_permille(std::uint32_t permille) { skew_permille_ = permille == 0 ? 1 : permille; }
  std::uint32_t skew_permille() const { return skew_permille_; }

 private:
  DurationMs skewed(DurationMs delay) const {
    if (skew_permille_ == 1000) return delay;
    return static_cast<DurationMs>((static_cast<std::int64_t>(delay) * skew_permille_) / 1000);
  }

  void arm_periodic(timing::TimeoutId tid, DurationMs delay, DurationMs period,
                    timing::TimeoutPtr payload) {
    pending_[tid] = core_->schedule(skewed(delay), [this, tid, period, payload] {
      if (pending_.count(tid) == 0) return;  // cancelled
      trigger(payload, timer_);
      arm_periodic(tid, period < 1 ? 1 : period, period, payload);
    });
  }

  Negative<timing::Timer> timer_ = provide<timing::Timer>();
  SimulatorCore* core_ = nullptr;
  std::uint32_t skew_permille_ = 1000;  ///< 1000 = nominal rate
  std::unordered_map<timing::TimeoutId, ActionId> pending_;
};

}  // namespace kompics::sim
