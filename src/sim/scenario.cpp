#include "sim/scenario.hpp"

#include <chrono>
#include <map>
#include <queue>
#include <thread>

namespace kompics::sim {

// Per-run execution state of one stochastic process.
struct Scenario::ExecState {
  const StochasticProcess* def = nullptr;
  std::vector<std::size_t> remaining;  // per raise group
  std::size_t total_remaining = 0;
  bool started = false;
  bool terminated = false;
  std::vector<std::pair<DurationMs, ExecState*>> on_start;
  std::vector<std::pair<DurationMs, ExecState*>> on_term;
  bool is_terminator_anchor = false;
  DurationMs terminator_delay = 0;
};

namespace {

using StateMap = std::map<const StochasticProcess*, Scenario::ExecState>;

/// Shared driver logic, parameterized over "schedule(delay, fn)" so the same
/// composition semantics run in virtual time and in wall-clock time. All
/// scheduled continuations hold a shared_ptr to the driver (and the driver
/// holds the state map), so lifetimes outlive install().
class ScenarioDriver : public std::enable_shared_from_this<ScenarioDriver> {
 public:
  using ScheduleFn = std::function<void(DurationMs, std::function<void()>)>;

  ScenarioDriver(std::uint64_t seed, ScheduleFn schedule, std::function<void()> on_terminate,
                 std::shared_ptr<StateMap> states)
      : rng_(seed),
        schedule_(std::move(schedule)),
        on_terminate_(std::move(on_terminate)),
        states_(std::move(states)) {}

  void start_process(Scenario::ExecState* st) {
    if (st->started) return;
    st->started = true;
    for (const auto& [delay, dep] : st->on_start) {
      schedule_(delay, [self = shared_from_this(), dep] { self->start_process(dep); });
    }
    if (st->total_remaining == 0) {
      terminate_process(st);
      return;
    }
    schedule_fire(st);
  }

 private:
  void schedule_fire(Scenario::ExecState* st) {
    const DurationMs gap = st->def->inter_arrival_dist().sample_ms(rng_);
    schedule_(gap, [self = shared_from_this(), st] { self->fire(st); });
  }

  void fire(Scenario::ExecState* st) {
    // Pick a raise group weighted by remaining count: groups interleave
    // randomly, matching the paper's churn example (500 joins randomly
    // interleaved with 500 failures).
    std::uint64_t pick = rng_.next_below(st->total_remaining);
    std::size_t g = 0;
    while (pick >= st->remaining[g]) {
      pick -= st->remaining[g];
      ++g;
    }
    st->def->groups()[g].fire(rng_);
    --st->remaining[g];
    --st->total_remaining;
    if (st->total_remaining == 0) {
      terminate_process(st);
    } else {
      schedule_fire(st);
    }
  }

  void terminate_process(Scenario::ExecState* st) {
    st->terminated = true;
    for (const auto& [delay, dep] : st->on_term) {
      schedule_(delay, [self = shared_from_this(), dep] { self->start_process(dep); });
    }
    if (st->is_terminator_anchor) {
      schedule_(st->terminator_delay, [self = shared_from_this()] { self->on_terminate_(); });
    }
  }

  RngStream rng_;
  ScheduleFn schedule_;
  std::function<void()> on_terminate_;
  std::shared_ptr<StateMap> states_;  // keeps ExecState pointers valid
};

std::shared_ptr<StateMap> build_states(
    const std::vector<ProcessRef>& processes,
    const std::vector<std::tuple<DurationMs, ProcessRef, ProcessRef>>& start_rules,
    const std::vector<std::tuple<DurationMs, ProcessRef, ProcessRef>>& term_rules,
    bool has_terminator, const std::pair<DurationMs, ProcessRef>& terminator) {
  auto states = std::make_shared<StateMap>();
  for (const auto& p : processes) {
    Scenario::ExecState st;
    st.def = p.get();
    for (const auto& g : p->groups()) {
      st.remaining.push_back(g.count);
      st.total_remaining += g.count;
    }
    (*states)[p.get()] = std::move(st);
  }
  for (const auto& [delay, prev, next] : start_rules) {
    (*states)[prev.get()].on_start.push_back({delay, &(*states)[next.get()]});
  }
  for (const auto& [delay, prev, next] : term_rules) {
    (*states)[prev.get()].on_term.push_back({delay, &(*states)[next.get()]});
  }
  if (has_terminator) {
    auto& st = (*states)[terminator.second.get()];
    st.is_terminator_anchor = true;
    st.terminator_delay = terminator.first;
  }
  return states;
}

}  // namespace

void Scenario::install(Simulation& sim) {
  std::vector<std::tuple<DurationMs, ProcessRef, ProcessRef>> starts, terms;
  for (const auto& r : start_rules_) starts.emplace_back(r.delay, r.prev, r.next);
  for (const auto& r : term_rules_) terms.emplace_back(r.delay, r.prev, r.next);
  auto states = build_states(processes_, starts, terms, has_terminator_, terminator_);

  auto terminated = terminated_;
  *terminated = false;
  Simulation* simp = &sim;
  auto driver = std::make_shared<ScenarioDriver>(
      seed_,
      [simp](DurationMs delay, std::function<void()> fn) {
        simp->core().schedule(delay, std::move(fn));
      },
      [simp, terminated] {
        *terminated = true;
        simp->stop();
      },
      states);

  for (const auto& root : roots_) {
    ExecState* st = &(*states)[root.p.get()];
    sim.core().schedule(root.at, [driver, st] { driver->start_process(st); });
  }
}

void Scenario::run_realtime(double time_scale) {
  // A tiny wall-clock discrete-event loop: same ScenarioDriver semantics,
  // but "schedule" inserts into a local deadline queue and the calling
  // thread sleeps until each deadline.
  using WallClock = std::chrono::steady_clock;
  struct Timed {
    WallClock::time_point at;
    std::uint64_t seq;
    std::function<void()> fn;
    bool operator>(const Timed& o) const { return at != o.at ? at > o.at : seq > o.seq; }
  };
  auto queue =
      std::make_shared<std::priority_queue<Timed, std::vector<Timed>, std::greater<>>>();
  auto seq = std::make_shared<std::uint64_t>(0);
  auto done = std::make_shared<bool>(false);

  std::vector<std::tuple<DurationMs, ProcessRef, ProcessRef>> starts, terms;
  for (const auto& r : start_rules_) starts.emplace_back(r.delay, r.prev, r.next);
  for (const auto& r : term_rules_) terms.emplace_back(r.delay, r.prev, r.next);
  auto states = build_states(processes_, starts, terms, has_terminator_, terminator_);

  auto terminated = terminated_;
  *terminated = false;
  auto driver = std::make_shared<ScenarioDriver>(
      seed_,
      [queue, seq, time_scale](DurationMs delay, std::function<void()> fn) {
        const auto at = WallClock::now() + std::chrono::microseconds(static_cast<std::int64_t>(
                                               static_cast<double>(delay) * 1000.0 * time_scale));
        queue->push(Timed{at, (*seq)++, std::move(fn)});
      },
      [done, terminated] {
        *terminated = true;
        *done = true;
      },
      states);

  for (const auto& root : roots_) {
    ExecState* st = &(*states)[root.p.get()];
    const auto at = WallClock::now() + std::chrono::microseconds(static_cast<std::int64_t>(
                                           static_cast<double>(root.at) * 1000.0 * time_scale));
    queue->push(Timed{at, (*seq)++, [driver, st] { driver->start_process(st); }});
  }

  while (!*done && !queue->empty()) {
    Timed next = queue->top();
    queue->pop();
    auto fn = std::move(next.fn);
    const auto at = next.at;
    std::this_thread::sleep_until(at);
    fn();
  }
}

}  // namespace kompics::sim
