#pragma once

// Experiment-scenario DSL (paper §4.4): a scenario is a parallel and/or
// sequential composition of stochastic processes. Each process is a finite
// random sequence of operations with a configurable inter-arrival-time
// distribution; raise groups within one process interleave randomly
// (the paper's churn process: 500 joins randomly interleaved with 500
// failures). C++ rendering of the paper's Java DSL:
//
//   auto boot = scenario.process("boot")
//       .inter_arrival(Dist::exponential(2000))
//       .raise(1000, cats_join, Dist::uniform_bits(16));
//   auto churn = ...;
//   scenario.start(boot);
//   scenario.start_after_termination_of(2000, boot, churn);
//   scenario.start_after_start_of(3000, churn, lookups);
//   scenario.terminate_after_termination_of(1000, lookups);
//   scenario.run(simulation);            // deterministic, virtual time
//   scenario.run_realtime(0.1);          // same scenario, wall-clock mode
//
// The same scenario object drives both the simulation architecture and the
// local interactive execution architecture (paper Fig. 12 / §4.3).

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/distributions.hpp"
#include "sim/simulation.hpp"

namespace kompics::sim {

class Scenario;

/// Builder for one stochastic process. Obtained from Scenario::process().
class StochasticProcess {
 public:
  StochasticProcess& inter_arrival(Dist d) {
    inter_ = std::move(d);
    return *this;
  }

  /// Operation with no operands.
  StochasticProcess& raise(std::size_t count, std::function<void()> op) {
    groups_.push_back(Group{count, [op = std::move(op)](RngStream&) { op(); }});
    return *this;
  }

  /// Operation with one sampled operand (paper's Operation1).
  StochasticProcess& raise(std::size_t count, std::function<void(std::uint64_t)> op, Dist d1) {
    groups_.push_back(Group{count, [op = std::move(op), d1 = std::move(d1)](RngStream& rng) {
                              op(d1.sample_u64(rng));
                            }});
    return *this;
  }

  /// Operation with two sampled operands (paper's Operation2, e.g.
  /// catsLookup(node, key)).
  StochasticProcess& raise(std::size_t count,
                           std::function<void(std::uint64_t, std::uint64_t)> op, Dist d1,
                           Dist d2) {
    groups_.push_back(
        Group{count, [op = std::move(op), d1 = std::move(d1), d2 = std::move(d2)](RngStream& rng) {
                op(d1.sample_u64(rng), d2.sample_u64(rng));
              }});
    return *this;
  }

  const std::string& name() const { return name_; }
  std::size_t total_events() const {
    std::size_t n = 0;
    for (const auto& g : groups_) n += g.count;
    return n;
  }

  struct Group {
    std::size_t count;
    std::function<void(RngStream&)> fire;
  };
  const std::vector<Group>& groups() const { return groups_; }
  const Dist& inter_arrival_dist() const { return inter_; }

 private:
  friend class Scenario;
  explicit StochasticProcess(std::string name) : name_(std::move(name)) {}

  std::string name_;
  Dist inter_ = Dist::constant(0);
  std::vector<Group> groups_;
};

using ProcessRef = std::shared_ptr<StochasticProcess>;

class Scenario {
 public:
  explicit Scenario(std::uint64_t seed = 1) : seed_(seed) {}

  void set_seed(std::uint64_t seed) { seed_ = seed; }

  /// Creates a new (empty) stochastic process owned by this scenario.
  ProcessRef process(std::string name) {
    auto p = std::shared_ptr<StochasticProcess>(new StochasticProcess(std::move(name)));
    processes_.push_back(p);
    return p;
  }

  // ---- composition (paper §4.4) -------------------------------------------
  void start(const ProcessRef& p) { start_at(0, p); }
  void start_at(DurationMs at, const ProcessRef& p) { roots_.push_back({at, p}); }
  void start_after_termination_of(DurationMs delay, const ProcessRef& prev,
                                  const ProcessRef& next) {
    term_rules_.push_back({delay, prev, next});
  }
  void start_after_start_of(DurationMs delay, const ProcessRef& prev, const ProcessRef& next) {
    start_rules_.push_back({delay, prev, next});
  }
  /// The whole experiment terminates `delay` after `last` terminates.
  void terminate_after_termination_of(DurationMs delay, const ProcessRef& last) {
    terminator_ = {delay, last};
    has_terminator_ = true;
  }

  // ---- execution ------------------------------------------------------------
  /// Installs the scenario into a simulation (schedules the root processes)
  /// without running it; combine with sim.run()/run_until() for stepped
  /// control.
  void install(Simulation& sim);

  /// install + sim.run(). Returns virtual termination time.
  TimeMs run(Simulation& sim) {
    install(sim);
    sim.run();
    return sim.now();
  }

  /// Drives the same scenario against a real-time runtime (paper §4.3,
  /// Fig. 12 right): the calling thread sleeps between operations.
  /// `time_scale` < 1 compresses time (0.1 => 10x faster than specified).
  void run_realtime(double time_scale = 1.0);

  bool terminated() const { return *terminated_; }

  struct ExecState;  // per-run process state (scenario.cpp)

 private:
  struct Rule {
    DurationMs delay;
    ProcessRef prev;
    ProcessRef next;
  };
  struct Root {
    DurationMs at;
    ProcessRef p;
  };

  std::uint64_t seed_;
  std::vector<ProcessRef> processes_;
  std::vector<Root> roots_;
  std::vector<Rule> term_rules_;
  std::vector<Rule> start_rules_;
  std::pair<DurationMs, ProcessRef> terminator_{0, nullptr};
  bool has_terminator_ = false;
  std::shared_ptr<bool> terminated_ = std::make_shared<bool>(false);
};

}  // namespace kompics::sim
