#pragma once

// Distributions for the experiment-scenario DSL (paper §4.4): constant,
// uniform, exponential, and normal inter-arrival times / operand samples.
// All sampling is driven by a seeded RngStream so scenarios replay exactly.

#include <cmath>
#include <cstdint>
#include <functional>
#include <random>

#include "kompics/clock.hpp"

namespace kompics::sim {

class Dist {
 public:
  /// Always `v`.
  static Dist constant(double v) {
    return Dist([v](RngStream&) { return v; });
  }

  /// Uniform real in [lo, hi].
  static Dist uniform(double lo, double hi) {
    return Dist([lo, hi](RngStream& rng) {
      return std::uniform_real_distribution<double>(lo, hi)(rng.engine());
    });
  }

  /// Uniform integer in [0, 2^bits) — the paper's `uniform(16)` operand
  /// distribution for ring identifiers.
  static Dist uniform_bits(int bits) {
    const std::uint64_t bound = bits >= 64 ? ~0ull : (1ull << bits);
    return Dist([bound](RngStream& rng) {
      return static_cast<double>(bound == ~0ull ? rng.next_u64() : rng.next_below(bound));
    });
  }

  /// Uniform integer in [lo, hi].
  static Dist uniform_int(std::uint64_t lo, std::uint64_t hi) {
    return Dist([lo, hi](RngStream& rng) {
      return static_cast<double>(lo + rng.next_below(hi - lo + 1));
    });
  }

  /// Exponential with the given mean (paper: exponential(2000) has mean 2s).
  static Dist exponential(double mean) {
    return Dist([mean](RngStream& rng) {
      return std::exponential_distribution<double>(1.0 / mean)(rng.engine());
    });
  }

  /// Normal(mean, stddev), truncated at zero (delays cannot be negative).
  static Dist normal(double mean, double stddev) {
    return Dist([mean, stddev](RngStream& rng) {
      const double v = std::normal_distribution<double>(mean, stddev)(rng.engine());
      return v < 0.0 ? 0.0 : v;
    });
  }

  double sample(RngStream& rng) const { return fn_(rng); }
  std::uint64_t sample_u64(RngStream& rng) const {
    const double v = fn_(rng);
    return v <= 0.0 ? 0 : static_cast<std::uint64_t>(v);
  }
  DurationMs sample_ms(RngStream& rng) const {
    const double v = fn_(rng);
    return v <= 0.0 ? 0 : static_cast<DurationMs>(std::llround(v));
  }

 private:
  explicit Dist(std::function<double(RngStream&)> fn) : fn_(std::move(fn)) {}
  std::function<double(RngStream&)> fn_;
};

}  // namespace kompics::sim
