#pragma once

// Discrete-event simulator core (paper §3 "deterministic simulation mode"
// and §4.2's generic NetworkEmulator/ExperimentDriver). Maintains a virtual
// clock and a totally ordered queue of timed actions; ties are broken by
// insertion sequence, so identical runs replay identically.
//
// Performance note: actions live directly in the heap entries (one
// allocation per closure, none for bookkeeping); cancellation uses a
// tombstone set that is scrubbed as tombstoned entries surface at the top
// of the heap. This keeps per-event cost flat as worlds grow to tens of
// thousands of simulated nodes (bench_e3_sim16k).

#include <cstdint>
#include <functional>
#include <queue>
#include <sstream>
#include <string>
#include <unordered_set>
#include <vector>

#include "kompics/clock.hpp"

namespace kompics::sim {

using ActionId = std::uint64_t;

class SimulatorCore {
 public:
  explicit SimulatorCore(TimeMs start_time = 0) : now_(start_time) {}

  TimeMs now() const { return now_; }

  /// Schedules `action` to run at now() + delay (clamped to >= 0).
  ActionId schedule(DurationMs delay, std::function<void()> action) {
    const ActionId id = next_id_++;
    const TimeMs at = now_ + (delay < 0 ? 0 : delay);
    queue_.push(Entry{at, id, std::move(action)});
    return id;
  }

  /// Cancels a scheduled action. Safe (no-op) for already-fired ids; such
  /// stale tombstones are bounded by the timer components, which only
  /// cancel timeouts they still believe are pending.
  void cancel(ActionId id) { cancelled_.insert(id); }

  bool has_pending() {
    skip_cancelled();
    return !queue_.empty();
  }
  std::size_t pending_count() const { return queue_.size(); }

  /// Virtual time of the next live action, or -1 when none.
  TimeMs next_time() {
    skip_cancelled();
    return queue_.empty() ? -1 : queue_.top().at;
  }

  /// Advances the clock to the next action and runs it. Returns false when
  /// nothing is pending.
  bool advance_one() {
    skip_cancelled();
    if (queue_.empty()) return false;
    // Moving the action out of the const top() is safe: nothing else reads
    // it before pop(), and the heap order does not depend on `action`.
    std::function<void()> action = std::move(queue_.top().action);
    now_ = queue_.top().at;
    queue_.pop();
    action();
    return true;
  }

  /// Advances the clock to `t` without executing anything (used by
  /// run_until when no action falls inside the window — virtual time still
  /// passes).
  void advance_to(TimeMs t) {
    if (t > now_) now_ = t;
  }

  /// Number of actions executed so far (progress metric for benches).
  std::uint64_t executed() const { return executed_count_; }
  void count_execution() { ++executed_count_; }

  /// Outcome of drain_until: why the loop stopped.
  enum class DrainStatus { kPredicate, kDry, kBudgetExhausted };

  struct DrainResult {
    DrainStatus status = DrainStatus::kDry;
    std::uint64_t steps = 0;  ///< actions executed before stopping
    explicit operator bool() const { return status == DrainStatus::kPredicate; }
  };

  /// Runs timed actions until `pred()` holds (checked before each step), the
  /// queue runs dry, or `max_steps` actions have executed. The step budget is
  /// the livelock guard for simulated protocols: a retry loop that never
  /// converges (e.g. two coordinators fencing each other forever) would
  /// otherwise spin virtual time forward without end. On exhaustion the
  /// caller gets kBudgetExhausted and should fail fast with
  /// pending_summary() instead of hanging the test.
  template <class Pred>
  DrainResult drain_until(Pred&& pred, std::uint64_t max_steps = 1'000'000) {
    DrainResult r;
    while (true) {
      if (pred()) {
        r.status = DrainStatus::kPredicate;
        return r;
      }
      if (r.steps >= max_steps) {
        r.status = DrainStatus::kBudgetExhausted;
        return r;
      }
      if (!advance_one()) {
        r.status = DrainStatus::kDry;
        return r;
      }
      count_execution();
      ++r.steps;
    }
  }

  /// Human-readable snapshot of the pending queue (printed when a step
  /// budget trips): live/tombstoned counts and the virtual times of the next
  /// few live actions — enough to tell a stuck protocol ("thousands of
  /// actions all at now()+50ms") from a dry one.
  std::string pending_summary(std::size_t max_entries = 8) const {
    std::ostringstream os;
    std::size_t live = 0;
    std::vector<TimeMs> next_times;
    // The underlying heap is not iterable; copy it (diagnostic path only).
    auto copy = queue_;
    while (!copy.empty()) {
      if (cancelled_.count(copy.top().id) == 0) {
        ++live;
        if (next_times.size() < max_entries) next_times.push_back(copy.top().at);
      }
      copy.pop();
    }
    os << "now=" << now_ << "ms pending=" << live << " live"
       << " (+" << (queue_.size() - live) << " tombstoned), executed=" << executed_count_;
    if (!next_times.empty()) {
      os << ", next at [";
      for (std::size_t i = 0; i < next_times.size(); ++i) {
        if (i != 0) os << ", ";
        os << next_times[i];
      }
      os << (live > next_times.size() ? ", ...]" : "]");
    }
    return os.str();
  }

 private:
  struct Entry {
    TimeMs at;
    ActionId id;
    mutable std::function<void()> action;
    bool operator>(const Entry& o) const { return at != o.at ? at > o.at : id > o.id; }
  };

  void skip_cancelled() {
    while (!queue_.empty() && !cancelled_.empty() &&
           cancelled_.count(queue_.top().id) != 0) {
      cancelled_.erase(queue_.top().id);
      queue_.pop();
    }
  }

  TimeMs now_;
  ActionId next_id_ = 1;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue_;
  std::unordered_set<ActionId> cancelled_;
  std::uint64_t executed_count_ = 0;
};

/// Clock implementation backed by the simulator — injected into the Runtime
/// so unmodified component code reads virtual time (the port of the paper's
/// bytecode instrumentation; DESIGN.md §2.6).
class SimClock final : public Clock {
 public:
  explicit SimClock(const SimulatorCore* core) : core_(core) {}
  TimeMs now() const override { return core_->now(); }

 private:
  const SimulatorCore* core_;
};

}  // namespace kompics::sim
