#pragma once

// NetworkEmulator (paper §4.2): the simulated Network provider. Every
// simulated node embeds one NetworkEmulator component; all instances share
// a SimNetworkHub that models the network: per-message latency sampled from
// a configurable distribution, probabilistic loss, and named partitions —
// the "partially synchronous, lossy, partitionable" environment CATS is
// specified for (§4).
//
// Determinism: latency/loss draws come from one seeded stream owned by the
// hub, and delivery is ordered by the SimulatorCore's (time, sequence) key,
// so a given seed replays the exact same run.

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <unordered_set>

#include "kompics/component.hpp"
#include "kompics/kompics.hpp"
#include "net/address.hpp"
#include "net/network_port.hpp"
#include "sim/simulator_core.hpp"

namespace kompics::sim {

class NetworkEmulator;

struct LinkModel {
  DurationMs min_latency = 1;
  DurationMs max_latency = 1;  ///< uniform in [min, max]
  double loss = 0.0;           ///< iid drop probability
  bool fifo = false;           ///< clamp delays so each (src,dst) link is FIFO
  double duplicate = 0.0;      ///< iid probability of a second, independent delivery
};

class SimNetworkHub {
 public:
  SimNetworkHub(SimulatorCore* core, std::uint64_t seed, LinkModel model = {})
      : core_(core), rng_(seed), model_(model) {}

  void attach(const net::Address& a, NetworkEmulator* node) { nodes_[a] = node; }
  void detach(const net::Address& a) { nodes_.erase(a); }
  bool attached(const net::Address& a) const { return nodes_.count(a) != 0; }
  std::size_t size() const { return nodes_.size(); }

  void set_model(LinkModel m) { model_ = m; }
  const LinkModel& model() const { return model_; }

  /// Splits hosts into partitions: nodes can talk only within their group.
  /// Hosts not mentioned stay in group 0.
  void partition(const std::vector<std::vector<std::uint32_t>>& groups) {
    group_.clear();
    int gid = 1;
    for (const auto& g : groups) {
      for (std::uint32_t host : g) group_[host] = gid;
      ++gid;
    }
  }
  /// Asymmetric cut: every message from a host in `from` to a host in `to`
  /// is dropped; the reverse direction still flows. Models one-directional
  /// link failures (misconfigured firewalls, asymmetric routes) — the
  /// classic trap for failure detectors and quorum protocols, where A hears
  /// B but B never hears A. Composes with partition(): a message must pass
  /// both the group check and every directional rule. Cumulative until
  /// heal().
  void partition_oneway(const std::vector<std::uint32_t>& from,
                        const std::vector<std::uint32_t>& to) {
    for (std::uint32_t f : from) {
      for (std::uint32_t t : to) {
        if (f != t) oneway_blocked_.insert((static_cast<std::uint64_t>(f) << 32) | t);
      }
    }
  }

  void heal() {
    group_.clear();
    oneway_blocked_.clear();
  }

  void send(const net::MessagePtr& m);

  struct Stats {
    std::uint64_t sent = 0;
    std::uint64_t delivered = 0;
    std::uint64_t lost = 0;
    std::uint64_t unroutable = 0;
    std::uint64_t partitioned = 0;
    std::uint64_t duplicated = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  /// Directional: reachable(a, b) asks whether a message FROM a TO b gets
  /// through. Symmetric partitions check group membership; one-way rules
  /// are checked in the send direction only.
  bool reachable(const net::Address& a, const net::Address& b) const {
    if (!oneway_blocked_.empty() &&
        oneway_blocked_.count((static_cast<std::uint64_t>(a.host) << 32) | b.host) != 0) {
      return false;
    }
    if (group_.empty()) return true;
    auto ga = group_.find(a.host);
    auto gb = group_.find(b.host);
    const int va = ga == group_.end() ? 0 : ga->second;
    const int vb = gb == group_.end() ? 0 : gb->second;
    return va == vb;
  }

  SimulatorCore* core_;
  RngStream rng_;
  LinkModel model_;
  std::unordered_map<net::Address, NetworkEmulator*> nodes_;
  std::unordered_map<std::uint32_t, int> group_;
  std::unordered_set<std::uint64_t> oneway_blocked_;  // (from << 32 | to) host pairs
  std::unordered_map<std::uint64_t, TimeMs> last_delivery_;  // (src,dst) key -> time, for fifo
  Stats stats_;
};

using SimNetworkHubPtr = std::shared_ptr<SimNetworkHub>;

class NetworkEmulator : public ComponentDefinition {
 public:
  struct Init : kompics::Init {
    Init(net::Address self, SimNetworkHubPtr hub) : self(self), hub(std::move(hub)) {}
    net::Address self;
    SimNetworkHubPtr hub;
  };

  NetworkEmulator() {
    subscribe<Init>(control(), [this](const Init& init) {
      self_ = init.self;
      hub_ = init.hub;
      hub_->attach(self_, this);
    });
    subscribe<Stop>(control(), [this](const Stop&) {
      if (hub_ != nullptr) hub_->detach(self_);
    });
    subscribe<net::Message>(network_, [this](const net::Message&) {
      hub_->send(current_event_as<net::Message>());
    });
  }

  ~NetworkEmulator() override {
    if (hub_ != nullptr && hub_->attached(self_)) hub_->detach(self_);
  }

  void deliver(const net::MessagePtr& m) { trigger(m, network_); }
  const net::Address& self() const { return self_; }

 private:
  Negative<net::Network> network_ = provide<net::Network>();
  net::Address self_;
  SimNetworkHubPtr hub_;
};

inline void SimNetworkHub::send(const net::MessagePtr& m) {
  ++stats_.sent;
  if (!reachable(m->source(), m->destination())) {
    ++stats_.partitioned;
    return;
  }
  if (model_.loss > 0.0 && rng_.next_double() < model_.loss) {
    ++stats_.lost;
    return;
  }
  auto schedule_delivery = [this, &m] {
    DurationMs delay = model_.min_latency;
    if (model_.max_latency > model_.min_latency) {
      delay += static_cast<DurationMs>(rng_.next_below(
          static_cast<std::uint64_t>(model_.max_latency - model_.min_latency) + 1));
    }
    if (model_.fifo) {
      const std::uint64_t link = m->source().key() * 0x1000003ULL ^ m->destination().key();
      TimeMs& last = last_delivery_[link];
      const TimeMs at = core_->now() + delay;
      if (at < last) delay = last - core_->now();
      last = core_->now() + delay;
    }
    core_->schedule(delay, [this, m] {
      auto it = nodes_.find(m->destination());
      if (it == nodes_.end()) {
        ++stats_.unroutable;  // node failed/destroyed while in flight
        return;
      }
      ++stats_.delivered;
      it->second->deliver(m);
    });
  };
  schedule_delivery();
  // Duplicate delivery: the same message arrives twice, at independently
  // drawn delays — models retransmission by a lower layer. Quorum counting
  // must deduplicate by replica, not count raw acks.
  if (model_.duplicate > 0.0 && rng_.next_double() < model_.duplicate) {
    ++stats_.duplicated;
    schedule_delivery();
  }
}

}  // namespace kompics::sim
