#pragma once

// Deterministic simulation mode (paper §3, §4.2): the same component code
// that runs under the multi-core scheduler is executed single-threaded in
// virtual time. The SimScheduler keeps a FIFO of ready components; when it
// drains, the Simulation advances the SimulatorCore to the next timed
// action (timer expiry, emulated message delivery, scenario operation),
// which makes new components ready, and so on — a classic discrete-event
// main loop wrapped around the unmodified component runtime.

#include <deque>
#include <memory>

#include "kompics/kompics.hpp"
#include "kompics/scheduler.hpp"
#include "sim/simulator_core.hpp"

namespace kompics::sim {

/// Single-threaded FIFO scheduler for reproducible simulation (paper §3:
/// "a special scheduler for reproducible system simulation").
class SimScheduler final : public Scheduler {
 public:
  void schedule(ComponentCorePtr component) override { ready_.push_back(std::move(component)); }
  void start() override {}
  void shutdown() override { ready_.clear(); }

  /// Executes ready components until none remain. Returns the number of
  /// work units executed.
  std::uint64_t drain() {
    std::uint64_t n = 0;
    while (!ready_.empty()) {
      ComponentCorePtr c = std::move(ready_.front());
      ready_.pop_front();
      c->execute();
      ++n;
    }
    return n;
  }

  bool idle() const { return ready_.empty(); }

 private:
  std::deque<ComponentCorePtr> ready_;
};

/// A complete simulated world: runtime + virtual clock + event queue.
class Simulation {
 public:
  explicit Simulation(Config config = {}, std::uint64_t seed = 1) {
    auto scheduler = std::make_unique<SimScheduler>();
    scheduler_ = scheduler.get();
    runtime_ = std::make_unique<Runtime>(std::move(config), std::move(scheduler),
                                         std::make_unique<SimClock>(&core_), seed);
  }

  Runtime& runtime() { return *runtime_; }
  SimulatorCore& core() { return core_; }
  TimeMs now() const { return core_.now(); }

  template <class Main, class... Args>
  Component bootstrap(Args&&... args) {
    return runtime_->bootstrap<Main>(std::forward<Args>(args)...);
  }

  /// Runs until no component work and no timed actions remain, or stop().
  /// Returns the number of component work units executed.
  std::uint64_t run() {
    std::uint64_t executed = 0;
    stopped_ = false;
    while (!stopped_) {
      executed += scheduler_->drain();
      if (stopped_ || !core_.advance_one()) break;
      core_.count_execution();
    }
    executed += scheduler_->drain();
    return executed;
  }

  /// Runs until virtual time reaches `t` (executes every action with
  /// timestamp <= t; the clock then stands at exactly t). Returns false if
  /// the simulation ran dry earlier.
  bool run_until(TimeMs t) {
    stopped_ = false;
    while (!stopped_) {
      scheduler_->drain();
      const TimeMs next = core_.next_time();
      if (next < 0) {
        core_.advance_to(t);
        return false;
      }
      if (next > t) {
        core_.advance_to(t);
        return true;
      }
      core_.advance_one();
      core_.count_execution();
    }
    return true;
  }

  /// Runs (scheduler drains interleaved with timed actions, as run()) until
  /// `pred()` holds, the world runs dry, or `max_steps` timed actions have
  /// executed — the whole-simulation rendering of
  /// SimulatorCore::drain_until. The step budget is the livelock guard: a
  /// simulated protocol that retries forever would otherwise spin virtual
  /// time without ever satisfying the predicate. On kBudgetExhausted the
  /// caller should fail fast and print core().pending_summary().
  template <class Pred>
  SimulatorCore::DrainResult drain_until(Pred&& pred, std::uint64_t max_steps = 1'000'000) {
    using Status = SimulatorCore::DrainStatus;
    SimulatorCore::DrainResult r;
    stopped_ = false;
    while (!stopped_) {
      scheduler_->drain();
      if (pred()) {
        r.status = Status::kPredicate;
        return r;
      }
      if (r.steps >= max_steps) {
        r.status = Status::kBudgetExhausted;
        return r;
      }
      if (!core_.advance_one()) {
        r.status = Status::kDry;
        return r;
      }
      core_.count_execution();
      ++r.steps;
    }
    r.status = Status::kDry;
    return r;
  }

  /// Stops the main loop from inside a handler/action.
  void stop() { stopped_ = true; }
  bool stopped() const { return stopped_; }

 private:
  SimulatorCore core_;
  SimScheduler* scheduler_ = nullptr;  // owned by runtime_
  std::unique_ptr<Runtime> runtime_;
  bool stopped_ = false;
};

}  // namespace kompics::sim
