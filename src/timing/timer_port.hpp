#pragma once

// The Timer abstraction (paper §2.1): a service port type accepting
// ScheduleTimeout / CancelTimeout requests and delivering Timeout
// indications. Components that need timeouts *require* a Timer port; the
// providing component is ThreadTimer in production and the simulation
// driver (virtual time) in simulation mode — the same consumer code runs
// under both (paper §3).

#include <atomic>
#include <cstdint>
#include <memory>

#include "kompics/event.hpp"
#include "kompics/port_type.hpp"

namespace kompics::timing {

using TimeoutId = std::uint64_t;

/// Allocates a process-unique timeout id for request/indication correlation.
inline TimeoutId fresh_timeout_id() {
  static std::atomic<TimeoutId> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

/// Base class of all timeout indications. Subclass it to carry protocol
/// data; construct with the id of the ScheduleTimeout it answers.
class Timeout : public Event {
  KOMPICS_EVENT(Timeout, Event);

 public:
  explicit Timeout(TimeoutId id) : id_(id) {}
  TimeoutId id() const { return id_; }

 private:
  TimeoutId id_;
};

using TimeoutPtr = std::shared_ptr<const Timeout>;

/// One-shot timer request: deliver `payload` after `delay_ms`.
class ScheduleTimeout : public Event {
  KOMPICS_EVENT(ScheduleTimeout, Event);

 public:
  ScheduleTimeout(std::int64_t delay_ms, TimeoutPtr payload)
      : delay_ms_(delay_ms), payload_(std::move(payload)) {}

  std::int64_t delay_ms() const { return delay_ms_; }
  const TimeoutPtr& payload() const { return payload_; }
  TimeoutId timeout_id() const { return payload_->id(); }

 private:
  std::int64_t delay_ms_;
  TimeoutPtr payload_;
};

/// Periodic timer request: deliver `payload` after `initial_delay_ms`, then
/// every `period_ms` until cancelled.
class SchedulePeriodicTimeout : public Event {
  KOMPICS_EVENT(SchedulePeriodicTimeout, Event);

 public:
  SchedulePeriodicTimeout(std::int64_t initial_delay_ms, std::int64_t period_ms,
                          TimeoutPtr payload)
      : initial_delay_ms_(initial_delay_ms), period_ms_(period_ms), payload_(std::move(payload)) {}

  std::int64_t initial_delay_ms() const { return initial_delay_ms_; }
  std::int64_t period_ms() const { return period_ms_; }
  const TimeoutPtr& payload() const { return payload_; }
  TimeoutId timeout_id() const { return payload_->id(); }

 private:
  std::int64_t initial_delay_ms_;
  std::int64_t period_ms_;
  TimeoutPtr payload_;
};

/// Cancels a pending (one-shot or periodic) timeout by id.
class CancelTimeout : public Event {
  KOMPICS_EVENT(CancelTimeout, Event);

 public:
  explicit CancelTimeout(TimeoutId id) : id_(id) {}
  TimeoutId id() const { return id_; }

 private:
  TimeoutId id_;
};

/// The Timer port type from the paper:
///   indication: Timeout
///   request:    ScheduleTimeout, SchedulePeriodicTimeout, CancelTimeout
class Timer : public PortType {
 public:
  Timer() {
    set_name("Timer");
    indication<Timeout>();
    request<ScheduleTimeout>();
    request<SchedulePeriodicTimeout>();
    request<CancelTimeout>();
  }
};

/// Convenience: build a one-shot ScheduleTimeout carrying a T (a Timeout
/// subclass) constructed from `args`, with a fresh id. Returns the request
/// event; read ->timeout_id() for cancellation.
template <class T, class... Args>
std::shared_ptr<const ScheduleTimeout> schedule(std::int64_t delay_ms, Args&&... args) {
  auto payload = std::make_shared<const T>(fresh_timeout_id(), std::forward<Args>(args)...);
  return std::make_shared<const ScheduleTimeout>(delay_ms, std::move(payload));
}

/// Convenience: periodic variant of schedule<T>.
template <class T, class... Args>
std::shared_ptr<const SchedulePeriodicTimeout> schedule_periodic(std::int64_t initial_delay_ms,
                                                                 std::int64_t period_ms,
                                                                 Args&&... args) {
  auto payload = std::make_shared<const T>(fresh_timeout_id(), std::forward<Args>(args)...);
  return std::make_shared<const SchedulePeriodicTimeout>(initial_delay_ms, period_ms,
                                                         std::move(payload));
}

}  // namespace kompics::timing
