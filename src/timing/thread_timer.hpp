#pragma once

// ThreadTimer: the production Timer provider (the paper's "JavaTimer").
// A dedicated thread sleeps on a min-heap of deadlines and triggers the
// scheduled Timeout events back through the provided Timer port. Periodic
// timeouts re-arm themselves until cancelled.

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <queue>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "kompics/component.hpp"
#include "timing/timer_port.hpp"

namespace kompics::timing {

class ThreadTimer : public ComponentDefinition {
 public:
  ThreadTimer();
  ~ThreadTimer() override;

  /// Joins the timer thread; without this, pending deadlines keep firing
  /// into sibling components while the tree is being torn down.
  void halt() override { stop_thread(); }

  /// Cancellations recorded but not yet consumed by a firing entry. Stays
  /// bounded: cancelling an id with no armed heap entry (already fired, or
  /// never armed) is a no-op instead of leaking into this set forever.
  std::size_t pending_cancellations() const;
  /// Distinct timeout ids with at least one entry still in the heap.
  std::size_t armed_timeouts() const;

 private:
  struct Entry {
    std::int64_t deadline_ms;  // wall clock (runtime clock domain)
    std::uint64_t seq;         // tie-breaker for deterministic ordering
    TimeoutPtr payload;
    std::int64_t period_ms;  // <0 for one-shot
    bool operator>(const Entry& other) const {
      return deadline_ms != other.deadline_ms ? deadline_ms > other.deadline_ms
                                              : seq > other.seq;
    }
  };

  void timer_main();
  void arm(std::int64_t delay_ms, std::int64_t period_ms, TimeoutPtr payload);
  void ensure_thread();
  void stop_thread();

  Negative<Timer> timer_ = provide<Timer>();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  std::unordered_set<TimeoutId> cancelled_;
  // id -> number of heap entries carrying it. Lets the cancel path tell a
  // pending timeout (record the cancellation) from one that already fired
  // or never existed (ignore — recording it would leak the id forever).
  std::unordered_map<TimeoutId, std::size_t> armed_;
  std::uint64_t seq_ = 0;
  bool stop_ = false;
  bool thread_running_ = false;
  std::thread thread_;
};

}  // namespace kompics::timing
