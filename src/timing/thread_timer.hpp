#pragma once

// ThreadTimer: the production Timer provider (the paper's "JavaTimer").
// A dedicated thread sleeps on a min-heap of deadlines and triggers the
// scheduled Timeout events back through the provided Timer port. Periodic
// timeouts re-arm themselves until cancelled.

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <queue>
#include <thread>
#include <unordered_set>
#include <vector>

#include "kompics/component.hpp"
#include "timing/timer_port.hpp"

namespace kompics::timing {

class ThreadTimer : public ComponentDefinition {
 public:
  ThreadTimer();
  ~ThreadTimer() override;

 private:
  struct Entry {
    std::int64_t deadline_ms;  // wall clock (runtime clock domain)
    std::uint64_t seq;         // tie-breaker for deterministic ordering
    TimeoutPtr payload;
    std::int64_t period_ms;  // <0 for one-shot
    bool operator>(const Entry& other) const {
      return deadline_ms != other.deadline_ms ? deadline_ms > other.deadline_ms
                                              : seq > other.seq;
    }
  };

  void timer_main();
  void arm(std::int64_t delay_ms, std::int64_t period_ms, TimeoutPtr payload);
  void ensure_thread();
  void stop_thread();

  Negative<Timer> timer_ = provide<Timer>();

  std::mutex mu_;
  std::condition_variable cv_;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  std::unordered_set<TimeoutId> cancelled_;
  std::uint64_t seq_ = 0;
  bool stop_ = false;
  bool thread_running_ = false;
  std::thread thread_;
};

}  // namespace kompics::timing
