#include "timing/thread_timer.hpp"

#include <chrono>

#include "kompics/kompics.hpp"

namespace kompics::timing {

ThreadTimer::ThreadTimer() {
  subscribe<ScheduleTimeout>(timer_, [this](const ScheduleTimeout& st) {
    arm(st.delay_ms(), -1, st.payload());
  });
  subscribe<SchedulePeriodicTimeout>(timer_, [this](const SchedulePeriodicTimeout& st) {
    arm(st.initial_delay_ms(), st.period_ms(), st.payload());
  });
  subscribe<CancelTimeout>(timer_, [this](const CancelTimeout& ct) {
    std::lock_guard<std::mutex> g(mu_);
    // Only record cancellations that a pending heap entry will consume;
    // cancel-after-fire and cancel-of-unknown-id must not leak the id.
    if (armed_.count(ct.id()) != 0) cancelled_.insert(ct.id());
  });
  subscribe<Start>(control(), [this](const Start&) { ensure_thread(); });
  subscribe<Stop>(control(), [this](const Stop&) { stop_thread(); });
}

ThreadTimer::~ThreadTimer() { stop_thread(); }

void ThreadTimer::arm(std::int64_t delay_ms, std::int64_t period_ms, TimeoutPtr payload) {
  ensure_thread();
  std::lock_guard<std::mutex> g(mu_);
  ++armed_[payload->id()];
  heap_.push(Entry{now() + std::max<std::int64_t>(0, delay_ms), seq_++, std::move(payload),
                   period_ms});
  cv_.notify_one();
}

std::size_t ThreadTimer::pending_cancellations() const {
  std::lock_guard<std::mutex> g(mu_);
  return cancelled_.size();
}

std::size_t ThreadTimer::armed_timeouts() const {
  std::lock_guard<std::mutex> g(mu_);
  return armed_.size();
}

void ThreadTimer::ensure_thread() {
  std::lock_guard<std::mutex> g(mu_);
  if (thread_running_) return;
  stop_ = false;
  thread_running_ = true;
  thread_ = std::thread([this] { timer_main(); });
}

void ThreadTimer::stop_thread() {
  std::thread to_join;
  {
    std::lock_guard<std::mutex> g(mu_);
    if (!thread_running_) return;
    stop_ = true;
    thread_running_ = false;
    cv_.notify_all();
    to_join = std::move(thread_);
  }
  if (to_join.joinable()) to_join.join();
}

void ThreadTimer::timer_main() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    if (heap_.empty()) {
      cv_.wait(lock, [this] { return stop_ || !heap_.empty(); });
      continue;
    }
    const std::int64_t wake = heap_.top().deadline_ms;
    const std::int64_t current = now();
    if (current < wake) {
      cv_.wait_for(lock, std::chrono::milliseconds(wake - current));
      continue;
    }
    Entry e = heap_.top();
    heap_.pop();
    const TimeoutId id = e.payload->id();
    auto armed_it = armed_.find(id);
    if (armed_it != armed_.end() && --armed_it->second == 0) armed_.erase(armed_it);
    if (cancelled_.count(id) != 0) {
      cancelled_.erase(id);  // consumed; periodic entries are not re-armed
      continue;
    }
    if (e.period_ms >= 0) {
      ++armed_[id];
      heap_.push(Entry{e.deadline_ms + std::max<std::int64_t>(1, e.period_ms), seq_++, e.payload,
                       e.period_ms});
    }
    TimeoutPtr payload = e.payload;
    lock.unlock();
    trigger(payload, timer_);  // thread-safe: publishes to subscriber queues
    lock.lock();
  }
}

}  // namespace kompics::timing
