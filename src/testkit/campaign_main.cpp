// campaign_runner: the CLI for the simulation campaign harness (ISSUE 7).
//
//   campaign_runner --seeds 2000 --jobs 8        # sweep seeds 1..2000
//   campaign_runner --seed 17                    # one seed, verbose
//   campaign_runner --seed 17 --shrink           # shrink if it fails
//   campaign_runner --replay out/seed17.schedule # replay a shrunk artifact
//
// Any failure prints the one-paste repro command for the seed and, after
// shrinking, the path of the replayable minimal-schedule artifact plus the
// --replay command for it. Exit status: 0 all passed, 1 failures, 2 usage.

#include <sys/stat.h>

#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "testkit/campaign.hpp"

namespace tk = kompics::testkit;

namespace {

struct Options {
  std::size_t seeds = 0;          // --seeds N: sweep mode
  std::uint64_t start = 1;        // --start S: first seed of the sweep
  std::size_t jobs = 1;           // --jobs J: parallel worker processes
  std::uint64_t seed = 0;         // --seed X: single-seed mode
  bool have_seed = false;
  std::string replay;             // --replay FILE: run a schedule artifact
  bool shrink = false;            // --shrink: minimize failures
  std::string out = "campaign-out";  // --out DIR: artifact directory
  bool inject_bug = false;        // --inject-stale-view-bug (self-test only)
  bool print_schedule = false;    // --print-schedule: dump and exit
};

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0 << " [--seeds N] [--start S] [--jobs J]\n"
            << "       " << argv0 << " --seed X [--shrink] [--print-schedule]\n"
            << "       " << argv0 << " --replay FILE\n"
            << "options: --out DIR (default campaign-out), --smoke (= --seeds 50),\n"
            << "         --inject-stale-view-bug (harness self-test: re-opens the\n"
            << "         pre-consistent-quorums divergence window)\n";
  return 2;
}

bool parse_u64(const char* s, std::uint64_t* out) {
  std::istringstream is(s);
  return static_cast<bool>(is >> *out) && is.eof();
}

tk::GeneratorConfig generator_for(const Options& opt) {
  tk::GeneratorConfig gen;
  gen.inject_stale_view_bug = opt.inject_bug;
  return gen;
}

std::string write_artifact(const Options& opt, const tk::FaultSchedule& schedule,
                           const std::string& stem) {
  ::mkdir(opt.out.c_str(), 0755);
  const std::string path = opt.out + "/" + stem + ".schedule";
  std::ofstream f(path);
  f << tk::to_text(schedule);
  return f.good() ? path : "";
}

/// Shrinks a failing schedule, writes the minimal artifact, and prints the
/// replay repro. Returns the artifact path (empty if writing failed).
void shrink_and_report(const Options& opt, const std::string& argv0,
                       const tk::FaultSchedule& failing) {
  std::cout << "shrinking schedule (" << failing.length() << " events)...\n";
  const tk::ShrinkResult sr = tk::shrink_schedule(failing, tk::default_run_config());
  std::cout << "shrunk " << sr.original_length << " -> " << sr.minimal_length << " events in "
            << sr.runs << " runs\n"
            << "minimal failure:\n" << sr.failure;
  const std::string path = write_artifact(opt, sr.minimal,
                                          "seed" + std::to_string(failing.seed) + "-min");
  if (path.empty()) {
    std::cout << "(could not write artifact under " << opt.out << ")\n";
  } else {
    std::cout << "minimal schedule artifact: " << path << "\n"
              << "repro: " << argv0 << " --replay " << path << "\n";
  }
}

int run_replay(const Options& opt) {
  std::ifstream f(opt.replay);
  if (!f) {
    std::cerr << "cannot open " << opt.replay << "\n";
    return 2;
  }
  tk::FaultSchedule schedule;
  std::string error;
  if (!tk::parse_schedule(f, &schedule, &error)) {
    std::cerr << opt.replay << ": " << error << "\n";
    return 2;
  }
  std::cout << "replaying " << opt.replay << " (seed " << schedule.seed << ", "
            << schedule.length() << " events, horizon " << schedule.horizon << "ms)\n";
  const tk::RunResult r = tk::run_schedule(schedule, tk::default_run_config());
  if (r.ok) {
    std::cout << "PASS: " << r.ops << " ops, " << r.steps << " steps\n";
    return 0;
  }
  std::cout << "FAIL:\n" << r.failure;
  return 1;
}

int run_single(const Options& opt, const std::string& argv0) {
  const tk::GeneratorConfig gen = generator_for(opt);
  const tk::FaultSchedule schedule = tk::generate_schedule(opt.seed, gen);
  if (opt.print_schedule) {
    std::cout << tk::to_text(schedule);
    return 0;
  }
  std::cout << "seed " << opt.seed << ": " << schedule.length() << " events, horizon "
            << schedule.horizon << "ms\n";
  const tk::RunResult r = tk::run_schedule(schedule, tk::default_run_config());
  if (r.ok) {
    std::cout << "PASS: " << r.ops << " ops, " << r.steps << " steps\n";
    return 0;
  }
  std::cout << "FAIL:\n" << r.failure
            << "repro: " << tk::seed_repro_command(argv0, opt.seed, gen) << "\n";
  if (opt.shrink) {
    shrink_and_report(opt, argv0, schedule);
  } else {
    const std::string path =
        write_artifact(opt, schedule, "seed" + std::to_string(opt.seed));
    if (!path.empty()) std::cout << "schedule artifact: " << path << "\n";
    std::cout << "(add --shrink to minimize)\n";
  }
  return 1;
}

int run_sweep(const Options& opt, const std::string& argv0) {
  const tk::GeneratorConfig gen = generator_for(opt);
  std::cout << "sweeping seeds " << opt.start << ".." << (opt.start + opt.seeds - 1) << " ("
            << opt.jobs << " worker" << (opt.jobs == 1 ? "" : "s") << ")...\n";
  const tk::SweepResult sweep =
      tk::sweep_seeds(opt.start, opt.seeds, opt.jobs, gen, tk::default_run_config());
  std::cout << sweep.passed << "/" << opt.seeds << " seeds passed\n";
  if (sweep.all_passed()) return 0;

  for (const tk::SeedOutcome& f : sweep.failures) {
    std::cout << "---- seed " << f.seed << " FAILED ----\n" << f.failure
              << "repro: " << tk::seed_repro_command(argv0, f.seed, gen) << "\n";
  }
  // Shrink the first failure: one minimal artifact per sweep keeps nightly
  // logs and uploads small; the repro commands above cover the rest.
  const std::uint64_t first = sweep.failures.front().seed;
  shrink_and_report(opt, argv0, tk::generate_schedule(first, gen));
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto value = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    std::uint64_t n = 0;
    if (a == "--seeds") {
      const char* v = value();
      if (v == nullptr || !parse_u64(v, &n)) return usage(argv[0]);
      opt.seeds = static_cast<std::size_t>(n);
    } else if (a == "--start") {
      const char* v = value();
      if (v == nullptr || !parse_u64(v, &opt.start)) return usage(argv[0]);
    } else if (a == "--jobs") {
      const char* v = value();
      if (v == nullptr || !parse_u64(v, &n) || n == 0) return usage(argv[0]);
      opt.jobs = static_cast<std::size_t>(n);
    } else if (a == "--seed") {
      const char* v = value();
      if (v == nullptr || !parse_u64(v, &opt.seed)) return usage(argv[0]);
      opt.have_seed = true;
    } else if (a == "--replay") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      opt.replay = v;
    } else if (a == "--out") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      opt.out = v;
    } else if (a == "--shrink") {
      opt.shrink = true;
    } else if (a == "--print-schedule") {
      opt.print_schedule = true;
    } else if (a == "--inject-stale-view-bug") {
      opt.inject_bug = true;
    } else if (a == "--smoke") {
      opt.seeds = 50;
    } else if (a == "--help" || a == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      std::cerr << "unknown option '" << a << "'\n";
      return usage(argv[0]);
    }
  }

  if (!opt.replay.empty()) return run_replay(opt);
  if (opt.have_seed) return run_single(opt, argv[0]);
  if (opt.seeds > 0) return run_sweep(opt, argv[0]);
  return usage(argv[0]);
}
