#pragma once

// Fault schedules for the campaign harness (ISSUE 7, tentpole part 2).
//
// A FaultSchedule is a fully self-contained, replayable description of one
// simulated run: the seed (which fixes every latency/loss/protocol RNG
// draw), the link model, and a time-ordered list of events — cluster
// membership (join/fail), workload operations (put/get), and faults
// (partial partitions — symmetric or one-directional — heals, per-node
// timer skew). Schedules are
// *generated* deterministically from a seed by generate_schedule(), so a
// sweep needs to ship only seeds; when a seed fails, the expanded schedule
// is what the shrinker mutates and what gets serialized as the replayable
// artifact (schedule files round-trip through to_text()/parse_schedule()).

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "cats/ring_key.hpp"
#include "kompics/clock.hpp"
#include "sim/network_emulator.hpp"

namespace kompics::testkit {

/// One timed action of a campaign run.
struct ScheduleEvent {
  enum class Kind : std::uint8_t {
    kJoin,       ///< node joins the cluster
    kFail,       ///< node crash-stops (subtree destroyed)
    kPut,        ///< put(node, key, {value})
    kGet,        ///< get(node, key)
    kPartition,  ///< split hosts into the given groups
    kPartitionOneWay,  ///< block groups[0] -> groups[1] traffic (reverse flows)
    kHeal,       ///< remove all partitions (symmetric and one-way)
    kSkew,       ///< scale the node's timer rate (permille, 1000 = nominal)
  };

  Kind kind = Kind::kJoin;
  TimeMs at = 0;
  std::uint64_t node = 0;                            // join/fail/put/get/skew
  cats::RingKey key = 0;                             // put/get
  std::uint8_t value = 0;                            // put
  std::uint32_t skew_permille = 1000;                // skew
  // partition: the symmetric groups; oneway: exactly two entries, traffic
  // from hosts in groups[0] toward hosts in groups[1] is dropped.
  std::vector<std::vector<std::uint32_t>> groups;
};

/// A complete replayable run description.
struct FaultSchedule {
  std::uint64_t seed = 1;
  sim::LinkModel link;
  TimeMs horizon = 0;  ///< virtual end time (run_until after the last event)
  bool inject_stale_view_bug = false;  ///< params.hpp bug emulation
  std::vector<ScheduleEvent> events;   ///< sorted by `at` (ties: list order)

  /// Shrink metric (acceptance: minimal trace <= 25% of this).
  std::size_t length() const { return events.size(); }
};

/// Knobs for the seed-driven generator. Defaults produce a rich schedule
/// (~50-80 events: staggered joins, several op volleys, 1-2 partition/heal
/// cycles, churn, timer skew) so the shrinker has real material to cut.
struct GeneratorConfig {
  std::size_t min_nodes = 4;
  std::size_t max_nodes = 6;
  std::size_t keys = 2;                  ///< distinct keys in the workload
  std::size_t min_partition_cycles = 1;  ///< partition -> volleys -> heal
  std::size_t max_partition_cycles = 2;
  std::size_t min_ops_per_volley = 3;
  std::size_t max_ops_per_volley = 7;
  bool enable_churn = true;  ///< post-heal join/crash on ~2/3 of seeds
  bool enable_skew = true;   ///< per-node timer skew on ~1/3 of seeds
  bool enable_oneway = true;  ///< ~1/3 of cuts are one-directional
  DurationMs join_stagger_ms = 300;
  DurationMs warmup_ms = 8000;       ///< after last join, before first op
  DurationMs mid_cut_settle_ms = 6000;
  DurationMs converged_settle_ms = 4000;
  DurationMs heal_settle_ms = 12000;
  DurationMs churn_settle_ms = 5000;
  DurationMs tail_ms = 7000;         ///< horizon margin after the last event
  bool inject_stale_view_bug = false;
};

/// Expands `seed` into a concrete schedule. Deterministic: same (seed,
/// config) -> identical schedule, byte for byte.
FaultSchedule generate_schedule(std::uint64_t seed, const GeneratorConfig& config = {});

/// Node id -> emulated host id. Matches CatsSimulator::addr_of (host 1 is
/// the bootstrap server).
std::uint32_t host_of(std::uint64_t node_id);

// ---- serialization -------------------------------------------------------

/// Serializes a schedule to the line-based `catscampaign v1` text format.
std::string to_text(const FaultSchedule& s);

/// Parses the to_text() format. Returns false and sets `error` on malformed
/// input. Accepts events in any order (they are re-sorted by time).
bool parse_schedule(std::istream& in, FaultSchedule* out, std::string* error);
bool parse_schedule_text(const std::string& text, FaultSchedule* out, std::string* error);

}  // namespace kompics::testkit
