#pragma once

// TestKit event-stream DSL (ROADMAP item 4; KompicsTesting, arXiv
// 1705.04669): declarative protocol tests against one component under test
// (CUT) running on the deterministic simulator.
//
// A TestContext bootstraps the CUT inside a probe component. Ports of the
// CUT the test cares about are *monitored*: the probe subscribes a
// catch-all recorder on the port's outside half, so every event the CUT
// emits there (indications on provided ports, requests on required ports)
// lands — in global emission order — on one totally ordered observed
// stream. The test then describes the expected stream declaratively:
//
//   TestContext ctx(seed, [](TestProbe& p, sim::SimulatorCore&) {
//     return p.make<ConsistentABD>();
//   });
//   auto net = ctx.monitor_required<net::Network>();
//   ctx.attach_sim_timer();
//   ctx.trigger(pg, make_event<PutRequest>(1, key, v))
//      .expect<LookupRequest>(router, [&](const LookupRequest& r) { op = r; })
//      .trigger(router, [&] { return make_event<LookupResponse>(op.id, ...); })
//      .repeat(3).expect<AbdReadMsg>(net, [&](const AbdReadMsg& m) { reads.push_back(m); })
//      .end_repeat();
//   auto result = ctx.check();   // resolves against virtual time
//
// Resolution is timeout-bounded in *virtual* time: an expect advances the
// simulation until a matching event arrives, the per-statement timeout
// expires, the world runs dry, or the step budget trips (livelock guard —
// the failure message then carries SimulatorCore::pending_summary()).
// Mismatches fail with a diff-style message: the expected statement, the
// observed head of the stream, and the recent stream tail.
//
// Composite statements: either/or_else (branch on the next observed event),
// unordered (a set of expects resolved in any arrival order), repeat(n),
// when(pred) (conditional block, pred evaluated at run time), allow/forbid
// (ambient filters), settle / expect_silence (timed quiescence).

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <type_traits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "kompics/kompics.hpp"
#include "sim/sim_timer.hpp"
#include "sim/simulation.hpp"
#include "timing/timer_port.hpp"

namespace kompics::testkit {

class TestContext;

/// Best-effort human name of an event's dynamic type (registered types
/// report their KOMPICS_EVENT name; unregistered ones the mangled RTTI one).
inline const char* event_type_name(const Event& e) {
  const EventTypeId id = e.kompics_type_id();
  if (id != kEventTypeInvalid && kompics::detail::type_id_is_exact(id, e)) {
    return kompics::detail::g_event_types[id].name;
  }
  return typeid(e).name();
}

/// The probe: root component owning the CUT (and any attached satellites,
/// e.g. a SimTimer). Exposes the protected ComponentDefinition surface the
/// TestContext drives from outside the component world.
class TestProbe : public ComponentDefinition {
 public:
  using Build = std::function<Component(TestProbe&, sim::SimulatorCore&)>;

  TestProbe(sim::SimulatorCore* core, Build build) : core_(core) { cut_ = build(*this, *core); }

  template <class D, class... A>
  Component make(A&&... a) {
    return create<D>(std::forward<A>(a)...);
  }

  Component& cut() { return cut_; }
  sim::SimulatorCore& sim_core() { return *core_; }

  /// Activates a child created after the probe started (dynamic creation
  /// leaves children passive, §2.4).
  void activate(Component& c) { trigger(make_event<Start>(), c.control()); }

  using ComponentDefinition::connect;
  using ComponentDefinition::current_event;
  using ComponentDefinition::destroy;
  using ComponentDefinition::replace;
  using ComponentDefinition::subscribe;
  using ComponentDefinition::trigger;

 private:
  sim::SimulatorCore* core_;
  Component cut_;
};

/// Handle to a monitored port (identity + display name).
struct PortHandle {
  PortCore* half = nullptr;
  std::string name;
};

/// Outcome of TestContext::check().
struct Result {
  bool ok = true;
  std::string message;
  explicit operator bool() const { return ok; }
};

namespace detail {

struct Observed {
  PortCore* half = nullptr;
  EventPtr event;
  TimeMs at = 0;
};

/// One resolvable expectation: type + optional predicate + capture.
struct ExpectSpec {
  PortCore* half = nullptr;
  std::string port_name;
  std::string type_name;
  std::function<bool(const Event&)> matches;    ///< type check + predicate
  std::function<bool(const Event&)> matches_type;  ///< type check only (diagnostics)
  std::function<void(const EventPtr&)> capture;  ///< run on match (may be null)
  bool has_predicate = false;

  std::string describe() const {
    std::string s = type_name + " out@" + port_name;
    if (has_predicate) s += " [predicate]";
    return s;
  }
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

struct Stmt {
  enum class Kind {
    kExpect,
    kTrigger,
    kExec,
    kRepeat,
    kEither,
    kUnordered,
    kWhen,
    kSettle,
  };
  Kind kind = Kind::kExec;
  int index = 0;  ///< statement number (for failure messages)

  ExpectSpec expect;                         // kExpect / kUnordered members
  std::function<EventPtr()> make_evt;        // kTrigger
  PortCore* trigger_half = nullptr;          // kTrigger
  std::string trigger_port;                  // kTrigger
  std::function<void()> exec;                // kExec
  std::function<bool()> pred;                // kWhen
  std::size_t count = 0;                     // kRepeat
  DurationMs settle_ms = 0;                  // kSettle
  bool require_silence = false;              // kSettle
  DurationMs timeout_override = -1;          // kExpect/kEither/kUnordered; -1 = default
  std::vector<StmtPtr> body;                 // kRepeat/kWhen/kUnordered
  std::vector<std::vector<StmtPtr>> branches;  // kEither
};

/// Ambient filter (allow/forbid) applied whenever the stream is popped.
struct Filter {
  PortCore* half = nullptr;  ///< nullptr = any monitored port
  std::function<bool(const Event&)> matches;
  std::string describe;
};

class Engine;  // event_stream.cpp

}  // namespace detail

class TestContext {
 public:
  /// Bootstraps a fresh simulated world (seeded) and the CUT inside a
  /// TestProbe. `build` runs in the probe's constructor: create the CUT
  /// (and any satellites) there and return it.
  explicit TestContext(std::uint64_t seed, TestProbe::Build build, Config config = {});
  ~TestContext();

  TestContext(const TestContext&) = delete;
  TestContext& operator=(const TestContext&) = delete;

  // ---- world access -----------------------------------------------------
  sim::Simulation& sim() { return sim_; }
  TestProbe& probe() { return *probe_; }
  Component& cut() { return probe_->cut(); }
  TimeMs now() const { return sim_.now(); }

  /// Triggers an Init (or any control event) at the CUT.
  void init(const EventPtr& e) { cut().control()->trigger(e); }

  // ---- monitors & attachments ------------------------------------------
  /// Monitors the CUT's provided port of type PT: indications the CUT emits
  /// there enter the observed stream; trigger(handle, request) injects.
  template <class PT>
  PortHandle monitor_provided() {
    return monitor(cut().provided<PT>().core, port_type<PT>().name());
  }

  /// Monitors the CUT's required port of type PT: requests the CUT emits
  /// there enter the observed stream; trigger(handle, indication) injects.
  template <class PT>
  PortHandle monitor_required() {
    return monitor(cut().required<PT>().core, port_type<PT>().name());
  }

  /// Creates a SimTimer on the virtual clock and connects it to the CUT's
  /// required Timer port (the standard unmonitored satellite).
  Component& attach_sim_timer();

  // ---- script configuration --------------------------------------------
  /// Virtual-time budget per expect (default 5000 ms).
  TestContext& set_default_timeout(DurationMs ms) {
    default_timeout_ = ms;
    return *this;
  }
  /// Timed-action budget per check() — the livelock guard (default 2M).
  TestContext& set_step_budget(std::uint64_t steps) {
    step_budget_ = steps;
    return *this;
  }

  // ---- DSL statements ---------------------------------------------------
  /// Expect the next observed event to be an E on `p`. F is optional: a
  /// callable returning void is a capture (runs on match); one returning
  /// bool is a predicate (the event must satisfy it to match).
  template <class E, class F>
  TestContext& expect(const PortHandle& p, F&& f) {
    return push_expect(make_spec<E>(p, std::forward<F>(f)), -1);
  }
  template <class E>
  TestContext& expect(const PortHandle& p) {
    return push_expect(make_spec<E>(p, nullptr), -1);
  }
  /// Same, with a per-statement timeout override.
  template <class E, class F>
  TestContext& expect_within(DurationMs timeout, const PortHandle& p, F&& f) {
    return push_expect(make_spec<E>(p, std::forward<F>(f)), timeout);
  }
  template <class E>
  TestContext& expect_within(DurationMs timeout, const PortHandle& p) {
    return push_expect(make_spec<E>(p, nullptr), timeout);
  }

  /// Injects an event into the CUT through a monitored port.
  TestContext& trigger(const PortHandle& p, EventPtr e);
  /// Lazy variant: the factory runs at execution time, so it can use values
  /// captured by earlier expects in the same script.
  TestContext& trigger(const PortHandle& p, std::function<EventPtr()> factory);

  /// Runs arbitrary code at this point of the script (state assertions,
  /// fault injection, ...).
  TestContext& exec(std::function<void()> fn);

  /// Advances virtual time by `ms`; events observed meanwhile stay buffered
  /// for later expects.
  TestContext& settle(DurationMs ms);
  /// Advances virtual time by `ms` and fails if any (non-allowed) event is
  /// observed in the window.
  TestContext& expect_silence(DurationMs ms);

  // Composite blocks. Every `x()` must be closed by the matching `end_x()`.
  TestContext& repeat(std::size_t n);
  TestContext& end_repeat();
  /// Branch on the next observed event: the first branch whose leading
  /// expect matches it runs; others are skipped. Each branch must start
  /// with an expect.
  TestContext& either();
  TestContext& or_else();
  TestContext& end_either();
  /// A set of expects resolved in any arrival order.
  TestContext& unordered();
  TestContext& end_unordered();
  /// Conditional block: the body runs iff pred() holds when reached.
  TestContext& when(std::function<bool()> pred);
  TestContext& end_when();

  /// Ambient allow: matching observed events are dropped silently whenever
  /// the stream is popped (periodic protocol noise). Scope: whole context.
  template <class E>
  TestContext& allow(const PortHandle& p) {
    allows_.push_back(detail::Filter{p.half, [](const Event& e) { return event_is<E>(e); },
                                     std::string(type_label<E>()) + " out@" + p.name});
    return *this;
  }
  /// Ambient forbid: observing a matching event fails the script instantly.
  template <class E>
  TestContext& forbid(const PortHandle& p) {
    forbids_.push_back(detail::Filter{p.half, [](const Event& e) { return event_is<E>(e); },
                                      std::string(type_label<E>()) + " out@" + p.name});
    return *this;
  }

  /// Resolves the script built so far against the simulation. On success
  /// the script resets (the context can stage further script + check
  /// rounds); buffered unconsumed events remain for the next round.
  Result check();

  /// Number of observed-but-unconsumed events currently buffered.
  std::size_t buffered() const { return stream_.size(); }

  std::uint64_t seed() const { return seed_; }

 private:
  friend class detail::Engine;

  template <class E>
  static const char* type_label() {
    if constexpr (kompics::detail::is_self_registered_v<E>) {
      return kompics::detail::g_event_types[E::kompics_static_type_id()].name;
    } else {
      return typeid(E).name();
    }
  }

  template <class E, class F>
  detail::ExpectSpec make_spec(const PortHandle& p, F&& f) {
    detail::ExpectSpec spec;
    spec.half = p.half;
    spec.port_name = p.name;
    spec.type_name = type_label<E>();
    spec.matches_type = [](const Event& e) { return event_is<E>(e); };
    if constexpr (std::is_same_v<std::decay_t<F>, std::nullptr_t>) {
      spec.matches = [](const Event& e) { return event_is<E>(e); };
    } else {
      using R = std::invoke_result_t<F&, const E&>;
      if constexpr (std::is_same_v<R, bool>) {
        spec.has_predicate = true;
        spec.matches = [fn = std::forward<F>(f)](const Event& e) {
          return event_is<E>(e) && fn(event_as<E>(e));
        };
      } else {
        spec.matches = [](const Event& e) { return event_is<E>(e); };
        spec.capture = [fn = std::forward<F>(f)](const EventPtr& e) {
          fn(event_as<E>(*e));
        };
      }
    }
    return spec;
  }

  PortHandle monitor(PortCore* half, const std::string& name);
  TestContext& push_expect(detail::ExpectSpec spec, DurationMs timeout);
  TestContext& push(detail::StmtPtr s);
  TestContext& close_block(detail::Stmt::Kind kind, const char* what);
  std::vector<detail::StmtPtr>* open_block();
  void builder_error(const std::string& what);
  std::string port_name_of(PortCore* half) const;

  struct BuilderBlock {
    detail::Stmt::Kind kind;
    detail::StmtPtr stmt;  ///< the composite under construction
  };

  sim::Simulation sim_;
  std::uint64_t seed_ = 0;
  Component probe_c_;
  TestProbe* probe_ = nullptr;
  Component timer_;

  std::deque<detail::Observed> stream_;
  std::unordered_map<PortCore*, std::string> port_names_;
  std::vector<detail::Filter> allows_;
  std::vector<detail::Filter> forbids_;

  std::vector<detail::StmtPtr> script_;
  std::vector<BuilderBlock> block_stack_;
  int next_stmt_index_ = 1;
  std::string build_error_;

  DurationMs default_timeout_ = 5000;
  std::uint64_t step_budget_ = 2'000'000;

  // Rolling annotated log of stream activity for failure messages.
  struct LogEntry {
    TimeMs at;
    bool injected;
    std::string port;
    std::string type;
    std::string note;
  };
  std::deque<LogEntry> log_;
  void log_event(TimeMs at, bool injected, const std::string& port, const std::string& type,
                 std::string note);
  std::string render_log_tail(std::size_t n = 12) const;
};

}  // namespace kompics::testkit
