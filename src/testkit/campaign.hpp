#pragma once

// Campaign runner (ISSUE 7, tentpole part 2): sweeps seed-generated fault
// schedules over the full CATS system on the deterministic simulator,
// checking every run with the Wing & Gong linearizability checker plus the
// per-component invariant hooks (ConsistentABD / CatsRing / OneHopRouter).
// On failure, shrink_schedule() delta-debugs the schedule — dropping
// events, removing nodes, truncating the horizon — down to a minimal still-
// failing trace that serializes as a replayable artifact.
//
// sweep_seeds() fans a sweep out over parallel worker *processes* (fork):
// each worker runs a contiguous seed block in its own address space, so a
// crash in one seed is reported instead of killing the sweep, and workers
// share nothing but their result files.

#include <cstdint>
#include <string>
#include <vector>

#include "cats/params.hpp"
#include "testkit/fault_schedule.hpp"

namespace kompics::testkit {

struct RunConfig {
  cats::CatsParams params;  ///< protocol knobs; the schedule's bug flag overrides
  std::uint64_t step_budget = 8'000'000;  ///< timed actions per run (livelock guard)
};

/// The sweep defaults (identical to the PR 6 sweep's): short op timeouts
/// and an aggressive bootstrap refresh so 60s-virtual schedules converge.
RunConfig default_run_config();

struct RunResult {
  bool ok = true;
  std::string failure;   ///< first failure (multi-line); empty when ok
  std::size_t ops = 0;   ///< operations recorded in the history
  std::uint64_t steps = 0;  ///< timed actions executed
  explicit operator bool() const { return ok; }
};

/// Replays one schedule to completion and checks it (hung operations,
/// linearizability, invariants, step budget).
RunResult run_schedule(const FaultSchedule& schedule, const RunConfig& config);

struct ShrinkOptions {
  std::size_t max_runs = 400;  ///< evaluation budget for the whole shrink
  DurationMs tail_ms = 7000;   ///< horizon margin re-applied after each cut
};

struct ShrinkResult {
  FaultSchedule minimal;            ///< smallest still-failing schedule found
  std::string failure;              ///< how the minimal schedule fails
  std::size_t original_length = 0;  ///< failing.length()
  std::size_t minimal_length = 0;   ///< minimal.length()
  std::size_t runs = 0;             ///< schedule evaluations spent
};

/// ddmin-style reduction: repeatedly re-runs candidate schedules with event
/// chunks removed (coarse to fine), then tries evicting whole nodes, then
/// single events again, re-tightening the horizon after every accepted cut.
/// `failing` must actually fail under `config`.
ShrinkResult shrink_schedule(const FaultSchedule& failing, const RunConfig& config,
                             const ShrinkOptions& options = {});

struct SeedOutcome {
  std::uint64_t seed = 0;
  bool ok = true;
  std::string failure;
};

struct SweepResult {
  std::size_t passed = 0;
  std::vector<SeedOutcome> failures;  ///< sorted by seed
  bool all_passed() const { return failures.empty(); }
};

/// Runs seeds [first_seed, first_seed + count). jobs <= 1 runs inline;
/// jobs > 1 forks that many worker processes over contiguous seed blocks.
SweepResult sweep_seeds(std::uint64_t first_seed, std::size_t count, std::size_t jobs,
                        const GeneratorConfig& generator, const RunConfig& config);

/// The one-paste repro command for a failing seed (satellite: every failure
/// must print one). `binary` is how the campaign runner was invoked.
std::string seed_repro_command(const std::string& binary, std::uint64_t seed,
                               const GeneratorConfig& generator);

}  // namespace kompics::testkit
