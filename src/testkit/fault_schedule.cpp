#include "testkit/fault_schedule.hpp"

#include <algorithm>
#include <istream>
#include <sstream>

namespace kompics::testkit {

std::uint32_t host_of(std::uint64_t node_id) { return static_cast<std::uint32_t>(node_id) + 2; }

namespace {

/// Stable sort by time: generator emits in order anyway, but parse and
/// shrink both re-normalize through this.
void sort_events(FaultSchedule& s) {
  std::stable_sort(s.events.begin(), s.events.end(),
                   [](const ScheduleEvent& a, const ScheduleEvent& b) { return a.at < b.at; });
}

}  // namespace

FaultSchedule generate_schedule(std::uint64_t seed, const GeneratorConfig& config) {
  // Independent stream: the run itself seeds its RNGs from `seed`, so the
  // generator must not consume from the same sequence.
  RngStream rng(derive_seed(seed, 0xC4A117));

  FaultSchedule s;
  s.seed = seed;
  s.inject_stale_view_bug = config.inject_stale_view_bug;

  // Link model mix mirrors the PR 6 sweep: every third seed drops packets,
  // every fifth duplicates, half the seeds reorder (non-FIFO links).
  s.link = sim::LinkModel{1, 5, 0.0, /*fifo=*/seed % 2 == 0};
  if (seed % 3 == 0) s.link.loss = 0.05;
  s.link.duplicate = seed % 5 == 0 ? 0.05 : 0.0;

  const std::size_t node_count =
      config.min_nodes + rng.next_below(config.max_nodes - config.min_nodes + 1);
  std::vector<std::uint64_t> members;  // ids currently expected alive
  TimeMs t = 1000;
  for (std::size_t i = 0; i < node_count; ++i) {
    const std::uint64_t id = (i + 1) * 10;  // 10, 20, 30, ...
    members.push_back(id);
    ScheduleEvent e;
    e.kind = ScheduleEvent::Kind::kJoin;
    e.at = t;
    e.node = id;
    s.events.push_back(e);
    t += config.join_stagger_ms;
  }
  std::uint64_t next_fresh_id = (node_count + 1) * 10;
  t += config.warmup_ms;

  std::vector<cats::RingKey> keys;
  for (std::size_t i = 0; i < config.keys; ++i) {
    keys.push_back(cats::hash_to_ring("campaign-k" + std::to_string(i)));
  }
  std::uint8_t vc = 0;

  auto emit_op = [&](TimeMs at) {
    ScheduleEvent e;
    e.at = at;
    e.node = members[rng.next_below(members.size())];
    e.key = keys[rng.next_below(keys.size())];
    if (rng.next_below(2) == 0) {
      e.kind = ScheduleEvent::Kind::kPut;
      e.value = ++vc == 0 ? ++vc : vc;  // skip 0: "not found" sentinel stays unambiguous
    } else {
      e.kind = ScheduleEvent::Kind::kGet;
    }
    s.events.push_back(e);
  };

  auto emit_volley = [&](TimeMs at) {
    const std::size_t n = config.min_ops_per_volley +
                          rng.next_below(config.max_ops_per_volley - config.min_ops_per_volley + 1);
    for (std::size_t i = 0; i < n; ++i) emit_op(at + static_cast<TimeMs>(i) * 40);
    return at + static_cast<TimeMs>(n) * 40;
  };

  /// A partition composition over the current members, chosen from the same
  /// four families as the PR 6 sweep (isolated node; 2|majority with the
  /// bootstrap server on either side; adjacent split). About a third of the
  /// cuts are one-directional: the minority side still HEARS the majority
  /// but its own messages are dropped (or the reverse) — the failure mode
  /// where one side's acks silently vanish while failure detectors on the
  /// other side stay happy.
  auto emit_partition = [&](TimeMs at) {
    ScheduleEvent e;
    e.kind = ScheduleEvent::Kind::kPartition;
    e.at = at;
    std::vector<std::uint32_t> a, b;
    b.push_back(1);  // bootstrap server host
    const std::size_t style = rng.next_below(4);
    const std::size_t pivot = rng.next_below(members.size());
    const std::size_t minority = style == 0 ? 1 : std::max<std::size_t>(1, members.size() / 2);
    for (std::size_t i = 0; i < members.size(); ++i) {
      const std::uint32_t h = host_of(members[(pivot + i) % members.size()]);
      (i < minority ? a : b).push_back(h);
    }
    if (style == 2) {
      // Bootstrap server sides with the minority.
      a.push_back(1);
      b.erase(b.begin());
    }
    if (config.enable_oneway && rng.next_below(3) == 0) {
      e.kind = ScheduleEvent::Kind::kPartitionOneWay;
      if (rng.next_below(2) == 0) std::swap(a, b);  // which direction is mute
    }
    e.groups = {std::move(a), std::move(b)};
    s.events.push_back(e);
  };

  // Pre-partition baseline.
  t = emit_volley(t) + 3000;

  const std::size_t cycles =
      config.min_partition_cycles +
      rng.next_below(config.max_partition_cycles - config.min_partition_cycles + 1);
  for (std::size_t c = 0; c < cycles; ++c) {
    if (config.enable_skew && rng.next_below(3) == 0) {
      ScheduleEvent e;
      e.kind = ScheduleEvent::Kind::kSkew;
      e.at = t;
      e.node = members[rng.next_below(members.size())];
      e.skew_permille = rng.next_below(2) == 0 ? 500 : 1800;
      s.events.push_back(e);
    }
    emit_partition(t);
    // First volley lands mid-cut (failure detectors still evicting the far
    // side); the second after each side's ring has converged on itself —
    // pre-fix, the window where both sides commit divergently.
    t = emit_volley(t + 200);
    t += config.mid_cut_settle_ms;
    t = emit_volley(t);
    t += config.converged_settle_ms;
    ScheduleEvent heal;
    heal.kind = ScheduleEvent::Kind::kHeal;
    heal.at = t;
    s.events.push_back(heal);
    t += config.heal_settle_ms;
    if (config.enable_churn && seed % 3 == 1) {
      ScheduleEvent e;
      e.kind = ScheduleEvent::Kind::kJoin;
      e.at = t;
      e.node = next_fresh_id;
      members.push_back(next_fresh_id);
      next_fresh_id += 10;
      s.events.push_back(e);
      t += config.churn_settle_ms;
    } else if (config.enable_churn && seed % 3 == 2 && members.size() > 2) {
      ScheduleEvent e;
      e.kind = ScheduleEvent::Kind::kFail;
      e.at = t;
      const std::size_t victim = rng.next_below(members.size());
      e.node = members[victim];
      members.erase(members.begin() + static_cast<std::ptrdiff_t>(victim));
      s.events.push_back(e);
      t += config.churn_settle_ms;
    }
  }

  // Post-heal volley from the survivors.
  t = emit_volley(t + 2000);
  s.horizon = t + config.tail_ms;
  sort_events(s);
  return s;
}

// ---- serialization -------------------------------------------------------

std::string to_text(const FaultSchedule& s) {
  std::ostringstream os;
  os << "catscampaign v1\n";
  os << "seed " << s.seed << "\n";
  os << "link " << s.link.min_latency << " " << s.link.max_latency << " " << s.link.loss << " "
     << (s.link.fifo ? 1 : 0) << " " << s.link.duplicate << "\n";
  os << "horizon " << s.horizon << "\n";
  os << "bug " << (s.inject_stale_view_bug ? 1 : 0) << "\n";
  for (const ScheduleEvent& e : s.events) {
    os << "event ";
    switch (e.kind) {
      case ScheduleEvent::Kind::kJoin:
        os << "join " << e.at << " " << e.node;
        break;
      case ScheduleEvent::Kind::kFail:
        os << "fail " << e.at << " " << e.node;
        break;
      case ScheduleEvent::Kind::kPut:
        os << "put " << e.at << " " << e.node << " " << e.key << " "
           << static_cast<unsigned>(e.value);
        break;
      case ScheduleEvent::Kind::kGet:
        os << "get " << e.at << " " << e.node << " " << e.key;
        break;
      case ScheduleEvent::Kind::kSkew:
        os << "skew " << e.at << " " << e.node << " " << e.skew_permille;
        break;
      case ScheduleEvent::Kind::kHeal:
        os << "heal " << e.at;
        break;
      case ScheduleEvent::Kind::kPartition:
      case ScheduleEvent::Kind::kPartitionOneWay: {
        const bool oneway = e.kind == ScheduleEvent::Kind::kPartitionOneWay;
        os << (oneway ? "oneway " : "partition ") << e.at << " ";
        for (std::size_t g = 0; g < e.groups.size(); ++g) {
          if (g != 0) os << (oneway ? ">" : "|");
          for (std::size_t i = 0; i < e.groups[g].size(); ++i) {
            if (i != 0) os << ",";
            os << e.groups[g][i];
          }
        }
        break;
      }
    }
    os << "\n";
  }
  os << "end\n";
  return os.str();
}

bool parse_schedule(std::istream& in, FaultSchedule* out, std::string* error) {
  auto fail = [&](const std::string& why) {
    if (error != nullptr) *error = why;
    return false;
  };
  FaultSchedule s;
  std::string line;
  if (!std::getline(in, line) || line != "catscampaign v1") {
    return fail("missing 'catscampaign v1' header");
  }
  bool saw_end = false;
  int lineno = 1;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string word;
    ls >> word;
    const std::string where = " (line " + std::to_string(lineno) + ")";
    if (word == "seed") {
      if (!(ls >> s.seed)) return fail("bad seed" + where);
    } else if (word == "link") {
      int fifo = 0;
      if (!(ls >> s.link.min_latency >> s.link.max_latency >> s.link.loss >> fifo >>
            s.link.duplicate)) {
        return fail("bad link line" + where);
      }
      s.link.fifo = fifo != 0;
    } else if (word == "horizon") {
      if (!(ls >> s.horizon)) return fail("bad horizon" + where);
    } else if (word == "bug") {
      int b = 0;
      if (!(ls >> b)) return fail("bad bug line" + where);
      s.inject_stale_view_bug = b != 0;
    } else if (word == "event") {
      std::string kind;
      ScheduleEvent e;
      if (!(ls >> kind >> e.at)) return fail("bad event line" + where);
      if (kind == "join" || kind == "fail") {
        e.kind = kind == "join" ? ScheduleEvent::Kind::kJoin : ScheduleEvent::Kind::kFail;
        if (!(ls >> e.node)) return fail("bad " + kind + " event" + where);
      } else if (kind == "put") {
        e.kind = ScheduleEvent::Kind::kPut;
        unsigned v = 0;
        if (!(ls >> e.node >> e.key >> v) || v > 255) return fail("bad put event" + where);
        e.value = static_cast<std::uint8_t>(v);
      } else if (kind == "get") {
        e.kind = ScheduleEvent::Kind::kGet;
        if (!(ls >> e.node >> e.key)) return fail("bad get event" + where);
      } else if (kind == "skew") {
        e.kind = ScheduleEvent::Kind::kSkew;
        if (!(ls >> e.node >> e.skew_permille)) return fail("bad skew event" + where);
      } else if (kind == "heal") {
        e.kind = ScheduleEvent::Kind::kHeal;
      } else if (kind == "partition" || kind == "oneway") {
        const bool oneway = kind == "oneway";
        e.kind = oneway ? ScheduleEvent::Kind::kPartitionOneWay : ScheduleEvent::Kind::kPartition;
        const char sep = oneway ? '>' : '|';
        std::string spec;
        if (!(ls >> spec)) return fail("bad " + kind + " event" + where);
        std::vector<std::uint32_t> group;
        std::string num;
        for (char c : spec + std::string(1, sep)) {
          if (c == ',' || c == sep) {
            if (!num.empty()) {
              group.push_back(static_cast<std::uint32_t>(std::stoul(num)));
              num.clear();
            }
            if (c == sep) {
              if (group.empty()) return fail("empty " + kind + " group" + where);
              e.groups.push_back(std::move(group));
              group.clear();
            }
          } else if (c >= '0' && c <= '9') {
            num += c;
          } else {
            return fail("bad " + kind + " spec" + where);
          }
        }
        if (oneway && e.groups.size() != 2) {
          return fail("oneway event needs exactly from>to groups" + where);
        }
      } else {
        return fail("unknown event kind '" + kind + "'" + where);
      }
      s.events.push_back(std::move(e));
    } else if (word == "end") {
      saw_end = true;
      break;
    } else {
      return fail("unknown directive '" + word + "'" + where);
    }
  }
  if (!saw_end) return fail("missing 'end'");
  sort_events(s);
  *out = std::move(s);
  return true;
}

bool parse_schedule_text(const std::string& text, FaultSchedule* out, std::string* error) {
  std::istringstream in(text);
  return parse_schedule(in, out, error);
}

}  // namespace kompics::testkit
