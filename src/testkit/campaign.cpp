#include "testkit/campaign.hpp"

#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "cats/cats_simulator.hpp"
#include "cats/linearizability.hpp"
#include "sim/simulation.hpp"

namespace kompics::testkit {

RunConfig default_run_config() {
  RunConfig cfg;
  cfg.params.op_timeout_ms = 600;
  cfg.params.op_max_retries = 2;
  cfg.params.bootstrap_refresh_ms = 2000;
  return cfg;
}

namespace {

/// Root component of one campaign run (the SimMain of the old sweep test).
class CampaignRoot : public ComponentDefinition {
 public:
  CampaignRoot(sim::SimulatorCore* core, sim::SimNetworkHubPtr hub, cats::CatsParams params) {
    simulator = create<cats::CatsSimulator>(core, std::move(hub), params);
  }
  Component simulator;
};

/// Advances the simulation to virtual time `t` under the remaining step
/// budget. On exhaustion, fails fast with the pending-queue summary
/// (satellite: never spin when a simulated protocol livelocks).
bool run_to(sim::Simulation& sim, TimeMs t, std::uint64_t& budget_left, std::uint64_t& steps,
            std::string* failure) {
  auto res = sim.drain_until(
      [&] {
        const TimeMs next = sim.core().next_time();
        return next < 0 || next > t;
      },
      budget_left);
  steps += res.steps;
  budget_left -= std::min<std::uint64_t>(budget_left, res.steps);
  if (res.status == sim::SimulatorCore::DrainStatus::kBudgetExhausted) {
    *failure = "step budget exhausted at virtual t=" + std::to_string(sim.now()) +
               "ms (livelock guard): " + sim.core().pending_summary();
    return false;
  }
  sim.core().advance_to(t);
  return true;
}

}  // namespace

RunResult run_schedule(const FaultSchedule& schedule, const RunConfig& config) {
  RunResult result;

  sim::Simulation sim(Config{}, schedule.seed);
  auto hub =
      std::make_shared<sim::SimNetworkHub>(&sim.core(), schedule.seed * 7 + 1, schedule.link);
  cats::CatsParams params = config.params;
  params.inject_stale_view_bug = schedule.inject_stale_view_bug;
  auto root = sim.bootstrap<CampaignRoot>(&sim.core(), hub, params);
  sim.run_until(1);
  auto& cats =
      root.definition_as<CampaignRoot>().simulator.definition_as<cats::CatsSimulator>();

  std::uint64_t budget_left = config.step_budget;

  // Per-component invariants are polled at every event boundary, not just at
  // the horizon: the op-table/frame-leak class (an ABD op parked in a
  // protocol frame must still count as pending, and vice versa) is only
  // observable while operations are actually in flight mid-protocol.
  std::vector<std::string> mid_run;
  auto poll_invariants = [&](TimeMs at) {
    if (mid_run.size() >= 5) return;
    for (const auto& v : cats.invariant_violations()) {
      mid_run.push_back("invariant violated at t=" + std::to_string(at) + "ms: " + v);
      if (mid_run.size() >= 5) break;
    }
  };

  for (const ScheduleEvent& e : schedule.events) {
    if (!run_to(sim, e.at, budget_left, result.steps, &result.failure)) {
      result.ok = false;
      return result;
    }
    poll_invariants(e.at);
    switch (e.kind) {
      case ScheduleEvent::Kind::kJoin:
        if (!cats.is_alive(e.node)) cats.join(e.node);
        break;
      case ScheduleEvent::Kind::kFail:
        if (cats.is_alive(e.node)) cats.fail(e.node);
        break;
      case ScheduleEvent::Kind::kPut:
        // Shrinking can leave ops addressed to never-joined or crashed
        // nodes; they are skipped, not errors.
        if (cats.is_alive(e.node)) cats.put(e.node, e.key, cats::Value{e.value});
        break;
      case ScheduleEvent::Kind::kGet:
        if (cats.is_alive(e.node)) cats.get(e.node, e.key);
        break;
      case ScheduleEvent::Kind::kPartition:
        hub->partition(e.groups);
        break;
      case ScheduleEvent::Kind::kPartitionOneWay:
        if (e.groups.size() == 2) hub->partition_oneway(e.groups[0], e.groups[1]);
        break;
      case ScheduleEvent::Kind::kHeal:
        hub->heal();
        break;
      case ScheduleEvent::Kind::kSkew:
        if (cats.is_alive(e.node)) cats.node_timer(e.node).set_skew_permille(e.skew_permille);
        break;
    }
  }
  if (!run_to(sim, schedule.horizon, budget_left, result.steps, &result.failure)) {
    result.ok = false;
    return result;
  }

  // ---- checks ------------------------------------------------------------
  std::ostringstream fail;

  const auto& history = cats.history();
  result.ops = history.size();
  std::size_t hung = 0;
  for (std::size_t i = 0; i < history.size(); ++i) {
    if (history[i].responded >= 0) continue;
    ++hung;
    if (hung <= 3) {
      fail << "operation hung: #" << i << " "
           << (history[i].kind == cats::OpRecord::Kind::kPut ? "put" : "get") << " key="
           << history[i].key << " node=" << history[i].node_id << " invoked at t="
           << history[i].invoked << "ms\n";
    }
  }
  if (hung > 3) fail << "... and " << (hung - 3) << " more hung operations\n";

  const auto lin = cats::check_history(history);
  if (!lin.linearizable) fail << "non-linearizable history: " << lin.explanation << "\n";
  if (lin.budget_exceeded) fail << "linearizability checker budget exceeded\n";

  for (const std::string& v : mid_run) fail << v << "\n";

  const auto violations = cats.invariant_violations();
  for (std::size_t i = 0; i < violations.size() && i < 5; ++i) {
    fail << "invariant violated: " << violations[i] << "\n";
  }
  if (violations.size() > 5) {
    fail << "... and " << (violations.size() - 5) << " more invariant violations\n";
  }

  result.failure = fail.str();
  result.ok = result.failure.empty();
  return result;
}

// ---- shrinking -----------------------------------------------------------

namespace {

/// Rebuilds a candidate around a reduced event list: events re-sorted and
/// the horizon re-tightened to just past the last event.
FaultSchedule with_events(const FaultSchedule& base, std::vector<ScheduleEvent> events,
                          DurationMs tail) {
  FaultSchedule s = base;
  s.events = std::move(events);
  std::stable_sort(s.events.begin(), s.events.end(),
                   [](const ScheduleEvent& a, const ScheduleEvent& b) { return a.at < b.at; });
  TimeMs last = 0;
  for (const ScheduleEvent& e : s.events) last = std::max(last, e.at);
  s.horizon = last + tail;
  return s;
}

struct ShrinkState {
  const RunConfig* config;
  ShrinkOptions options;
  std::size_t runs = 0;
  std::string last_failure;

  bool budget_left() const { return runs < options.max_runs; }

  /// A candidate is accepted iff it still fails (any failure mode counts:
  /// chasing one exact message would block cuts that expose the same bug
  /// through a different symptom).
  bool still_fails(const FaultSchedule& candidate) {
    if (!budget_left()) return false;
    ++runs;
    RunResult r = run_schedule(candidate, *config);
    if (!r.ok) last_failure = r.failure;
    return !r.ok;
  }
};

/// Classic ddmin over the event list: try removing chunks, coarse to fine.
void ddmin_events(FaultSchedule& current, ShrinkState& st) {
  std::size_t n = 2;
  while (current.events.size() >= 2 && st.budget_left()) {
    const std::size_t chunk = std::max<std::size_t>(1, current.events.size() / n);
    bool reduced = false;
    for (std::size_t start = 0; start < current.events.size() && st.budget_left();
         start += chunk) {
      std::vector<ScheduleEvent> cand;
      cand.reserve(current.events.size());
      for (std::size_t i = 0; i < current.events.size(); ++i) {
        if (i < start || i >= start + chunk) cand.push_back(current.events[i]);
      }
      if (cand.empty()) continue;
      FaultSchedule c = with_events(current, std::move(cand), st.options.tail_ms);
      if (st.still_fails(c)) {
        current = std::move(c);
        n = std::max<std::size_t>(2, n - 1);
        reduced = true;
        break;
      }
    }
    if (!reduced) {
      if (n >= current.events.size()) break;
      n = std::min(current.events.size(), n * 2);
    }
  }
}

/// Tries evicting whole nodes: drop every event addressed to the node and
/// strip its host from partition groups.
void reduce_nodes(FaultSchedule& current, ShrinkState& st) {
  std::vector<std::uint64_t> nodes;
  for (const ScheduleEvent& e : current.events) {
    if (e.kind == ScheduleEvent::Kind::kJoin &&
        std::find(nodes.begin(), nodes.end(), e.node) == nodes.end()) {
      nodes.push_back(e.node);
    }
  }
  for (std::uint64_t node : nodes) {
    if (!st.budget_left()) return;
    std::vector<ScheduleEvent> cand;
    for (ScheduleEvent e : current.events) {
      const bool addressed =
          e.node == node && e.kind != ScheduleEvent::Kind::kPartition &&
          e.kind != ScheduleEvent::Kind::kPartitionOneWay &&
          e.kind != ScheduleEvent::Kind::kHeal;
      if (addressed) continue;
      if (e.kind == ScheduleEvent::Kind::kPartition ||
          e.kind == ScheduleEvent::Kind::kPartitionOneWay) {
        for (auto& g : e.groups) {
          g.erase(std::remove(g.begin(), g.end(), host_of(node)), g.end());
        }
        e.groups.erase(std::remove_if(e.groups.begin(), e.groups.end(),
                                      [](const auto& g) { return g.empty(); }),
                       e.groups.end());
        // A symmetric cut needs two sides left; a one-way cut needs both its
        // from and to sets intact (losing either makes it a no-op).
        if (e.groups.size() < 2) continue;
      }
      cand.push_back(std::move(e));
    }
    if (cand.empty()) continue;
    FaultSchedule c = with_events(current, std::move(cand), st.options.tail_ms);
    if (st.still_fails(c)) current = std::move(c);
  }
}

/// Removal-only passes cannot drop a join while workload still addresses
/// the joined node. Merging re-addresses one node's put/get/skew events to
/// another member and THEN drops the victim's join/fail and its host from
/// partition groups — often cutting a join plus nothing else the failure
/// needed (the workload rides on a survivor).
void merge_nodes(FaultSchedule& current, ShrinkState& st) {
  std::vector<std::uint64_t> nodes;
  for (const ScheduleEvent& e : current.events) {
    if (e.kind == ScheduleEvent::Kind::kJoin &&
        std::find(nodes.begin(), nodes.end(), e.node) == nodes.end()) {
      nodes.push_back(e.node);
    }
  }
  for (std::uint64_t victim : nodes) {
    for (std::uint64_t into : nodes) {
      if (victim == into || !st.budget_left()) continue;
      std::vector<ScheduleEvent> cand;
      bool changed = false;
      for (ScheduleEvent e : current.events) {
        switch (e.kind) {
          case ScheduleEvent::Kind::kJoin:
          case ScheduleEvent::Kind::kFail:
            if (e.node == victim) { changed = true; continue; }
            break;
          case ScheduleEvent::Kind::kPut:
          case ScheduleEvent::Kind::kGet:
          case ScheduleEvent::Kind::kSkew:
            if (e.node == victim) { e.node = into; changed = true; }
            break;
          case ScheduleEvent::Kind::kPartition:
          case ScheduleEvent::Kind::kPartitionOneWay:
            for (auto& g : e.groups) {
              g.erase(std::remove(g.begin(), g.end(), host_of(victim)), g.end());
            }
            e.groups.erase(std::remove_if(e.groups.begin(), e.groups.end(),
                                          [](const auto& g) { return g.empty(); }),
                           e.groups.end());
            if (e.groups.size() < 2) continue;  // no longer a cut
            break;
          case ScheduleEvent::Kind::kHeal:
            break;
        }
        cand.push_back(std::move(e));
      }
      if (!changed || cand.empty()) continue;
      FaultSchedule c = with_events(current, std::move(cand), st.options.tail_ms);
      if (st.still_fails(c)) {
        current = std::move(c);
        break;  // victim is gone; move on to the next one
      }
    }
  }
}

/// Past 1-minimality ddmin stalls when two events are individually
/// load-bearing but jointly removable — e.g. a put and the get that
/// observes it, or a cut and its heal. Sweep event pairs until no pair
/// can be cut (bounded: only worth it once the schedule is small).
void reduce_pairs(FaultSchedule& current, ShrinkState& st) {
  bool reduced = true;
  while (reduced && current.events.size() >= 3 && current.events.size() <= 24 &&
         st.budget_left()) {
    reduced = false;
    for (std::size_t i = 0; i < current.events.size() && !reduced; ++i) {
      for (std::size_t j = i + 1; j < current.events.size() && st.budget_left(); ++j) {
        std::vector<ScheduleEvent> cand;
        for (std::size_t k = 0; k < current.events.size(); ++k) {
          if (k != i && k != j) cand.push_back(current.events[k]);
        }
        FaultSchedule c = with_events(current, std::move(cand), st.options.tail_ms);
        if (st.still_fails(c)) {
          current = std::move(c);
          reduced = true;
          break;
        }
      }
    }
  }
}

}  // namespace

ShrinkResult shrink_schedule(const FaultSchedule& failing, const RunConfig& config,
                             const ShrinkOptions& options) {
  ShrinkResult result;
  result.original_length = failing.length();

  ShrinkState st;
  st.config = &config;
  st.options = options;

  FaultSchedule current = failing;
  ddmin_events(current, st);
  reduce_nodes(current, st);
  ddmin_events(current, st);  // node eviction usually unlocks further cuts
  reduce_pairs(current, st);
  merge_nodes(current, st);
  ddmin_events(current, st);  // a cut pair or merge can re-expose single cuts

  result.minimal = std::move(current);
  result.minimal_length = result.minimal.length();
  result.runs = st.runs;
  result.failure = st.last_failure;
  if (result.failure.empty()) {
    // No candidate was ever evaluated (empty budget); re-derive from the input.
    result.failure = run_schedule(result.minimal, config).failure;
  }
  return result;
}

// ---- sweeping ------------------------------------------------------------

namespace {

std::string escape_tsv(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '\\') out += "\\\\";
    else if (c == '\n') out += "\\n";
    else if (c == '\t') out += "\\t";
    else out += c;
  }
  return out;
}

std::string unescape_tsv(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '\\' && i + 1 < s.size()) {
      ++i;
      out += s[i] == 'n' ? '\n' : s[i] == 't' ? '\t' : s[i];
    } else {
      out += s[i];
    }
  }
  return out;
}

void run_block(std::uint64_t first, std::size_t count, const GeneratorConfig& generator,
               const RunConfig& config, std::ostream& out) {
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint64_t seed = first + i;
    const RunResult r = run_schedule(generate_schedule(seed, generator), config);
    out << seed << "\t" << (r.ok ? "PASS" : "FAIL") << "\t" << escape_tsv(r.failure) << "\n";
  }
}

}  // namespace

SweepResult sweep_seeds(std::uint64_t first_seed, std::size_t count, std::size_t jobs,
                        const GeneratorConfig& generator, const RunConfig& config) {
  SweepResult result;
  if (count == 0) return result;
  jobs = std::max<std::size_t>(1, std::min(jobs, count));

  std::vector<SeedOutcome> outcomes;
  if (jobs == 1) {
    std::ostringstream buf;
    run_block(first_seed, count, generator, config, buf);
    std::istringstream in(buf.str());
    std::string line;
    while (std::getline(in, line)) {
      std::istringstream ls(line);
      SeedOutcome o;
      std::string status, message;
      ls >> o.seed >> status;
      std::getline(ls, message);
      o.ok = status == "PASS";
      o.failure = unescape_tsv(message.empty() ? message : message.substr(1));
      outcomes.push_back(std::move(o));
    }
  } else {
    // Parallel worker processes: fork one child per contiguous seed block.
    // Simulation runs are single-threaded, so fork is safe even under TSan;
    // each child shares nothing with its siblings but the result file it
    // writes before _exit.
    struct Worker {
      pid_t pid = -1;
      std::string path;
      std::uint64_t first = 0;
      std::size_t n = 0;
    };
    std::vector<Worker> workers;
    const std::size_t base = count / jobs;
    const std::size_t extra = count % jobs;
    std::uint64_t next = first_seed;
    for (std::size_t w = 0; w < jobs; ++w) {
      Worker wk;
      wk.first = next;
      wk.n = base + (w < extra ? 1 : 0);
      next += wk.n;
      if (wk.n == 0) continue;
      wk.path = "/tmp/catscampaign-" + std::to_string(getpid()) + "-" + std::to_string(w) +
                ".tsv";
      const pid_t pid = fork();
      if (pid == 0) {
        std::ofstream out(wk.path);
        run_block(wk.first, wk.n, generator, config, out);
        out.flush();
        _exit(out.good() ? 0 : 2);
      }
      if (pid < 0) {
        // Fork failed (resource limits): fall back to running inline.
        std::ofstream out(wk.path);
        run_block(wk.first, wk.n, generator, config, out);
      }
      wk.pid = pid;
      workers.push_back(std::move(wk));
    }
    for (Worker& wk : workers) {
      if (wk.pid > 0) {
        int status = 0;
        waitpid(wk.pid, &status, 0);
        if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
          SeedOutcome o;
          o.seed = wk.first;
          o.ok = false;
          o.failure = "worker process for seeds " + std::to_string(wk.first) + ".." +
                      std::to_string(wk.first + wk.n - 1) + " crashed (status " +
                      std::to_string(status) + ")";
          outcomes.push_back(o);
        }
      }
      std::ifstream in(wk.path);
      std::string line;
      while (std::getline(in, line)) {
        std::istringstream ls(line);
        SeedOutcome o;
        std::string status, message;
        ls >> o.seed >> status;
        std::getline(ls, message);
        o.ok = status == "PASS";
        o.failure = unescape_tsv(message.empty() ? message : message.substr(1));
        outcomes.push_back(std::move(o));
      }
      std::remove(wk.path.c_str());
    }
  }

  std::sort(outcomes.begin(), outcomes.end(),
            [](const SeedOutcome& a, const SeedOutcome& b) { return a.seed < b.seed; });
  for (SeedOutcome& o : outcomes) {
    if (o.ok) ++result.passed;
    else result.failures.push_back(std::move(o));
  }
  return result;
}

std::string seed_repro_command(const std::string& binary, std::uint64_t seed,
                               const GeneratorConfig& generator) {
  std::string cmd = binary + " --seed " + std::to_string(seed);
  if (generator.inject_stale_view_bug) cmd += " --inject-stale-view-bug";
  return cmd;
}

}  // namespace kompics::testkit
