#include "testkit/event_stream.hpp"

#include <algorithm>
#include <sstream>

namespace kompics::testkit {
namespace detail {

/// Resolves one built script against the simulation: pops observed events
/// off the stream, advancing virtual time (timeout-bounded, step-budgeted)
/// whenever the stream is empty. All failure text is assembled here so
/// every mismatch carries the same diff-style anatomy: what the statement
/// expected, what the stream held, and the recent annotated stream tail.
class Engine {
 public:
  explicit Engine(TestContext& ctx) : ctx_(ctx) {}

  Result run(const std::vector<StmtPtr>& script) {
    Result r;
    if (!exec_block(script)) {
      r.ok = false;
      std::ostringstream os;
      os << fail_ << "\n" << ctx_.render_log_tail() << "\n(TestContext seed=" << ctx_.seed_
         << ", virtual t=" << ctx_.now() << "ms)";
      r.message = os.str();
    }
    return r;
  }

 private:
  bool exec_block(const std::vector<StmtPtr>& stmts) {
    for (const StmtPtr& s : stmts) {
      if (!exec_stmt(*s)) return false;
    }
    return true;
  }

  bool exec_stmt(const Stmt& s) {
    switch (s.kind) {
      case Stmt::Kind::kExpect:
        return exec_expect(s);
      case Stmt::Kind::kTrigger:
        return exec_trigger(s);
      case Stmt::Kind::kExec:
        s.exec();
        return true;
      case Stmt::Kind::kRepeat:
        for (std::size_t i = 0; i < s.count; ++i) {
          if (!exec_block(s.body)) return false;
        }
        return true;
      case Stmt::Kind::kWhen:
        if (s.pred()) return exec_block(s.body);
        return true;
      case Stmt::Kind::kEither:
        return exec_either(s);
      case Stmt::Kind::kUnordered:
        return exec_unordered(s);
      case Stmt::Kind::kSettle:
        return exec_settle(s);
    }
    return true;  // unreachable
  }

  DurationMs timeout_of(const Stmt& s) const {
    return s.timeout_override >= 0 ? s.timeout_override : ctx_.default_timeout_;
  }

  // ---- stream primitives -------------------------------------------------

  /// Applies ambient filters to the stream head: drops `allow`ed events,
  /// fails on `forbid`den ones. Afterwards the head (if any) is a real
  /// observation.
  bool filter_stream() {
    while (!ctx_.stream_.empty()) {
      const Observed& o = ctx_.stream_.front();
      const char* tname = event_type_name(*o.event);
      for (const Filter& f : ctx_.forbids_) {
        if ((f.half == nullptr || f.half == o.half) && f.matches(*o.event)) {
          std::ostringstream os;
          os << "TestKit failure: forbidden event observed\n  forbid:   " << f.describe
             << "\n  observed: " << tname << " out@" << ctx_.port_name_of(o.half)
             << " at t=" << o.at << "ms";
          fail_ = os.str();
          ctx_.log_event(o.at, false, ctx_.port_name_of(o.half), tname, "FORBIDDEN");
          return false;
        }
      }
      bool dropped = false;
      for (const Filter& f : ctx_.allows_) {
        if ((f.half == nullptr || f.half == o.half) && f.matches(*o.event)) {
          ctx_.log_event(o.at, false, ctx_.port_name_of(o.half), tname, "allowed, dropped");
          ctx_.stream_.pop_front();
          dropped = true;
          break;
        }
      }
      if (!dropped) return true;
    }
    return true;
  }

  /// Advances the simulation until the (filtered) stream is non-empty.
  /// Returns false — with fail_ set — on timeout, dry world, forbid hit, or
  /// step-budget exhaustion. `what` describes the waiting statement.
  bool await_observation(DurationMs timeout, const std::string& what) {
    auto& sim = ctx_.sim_;
    auto& core = sim.core();
    const TimeMs deadline = ctx_.now() + timeout;
    while (true) {
      sim.run_until(sim.now());  // drain component work at the current time
      if (!filter_stream()) return false;
      if (!ctx_.stream_.empty()) return true;
      if (steps_used_ >= ctx_.step_budget_) {
        fail_ = budget_message(what);
        return false;
      }
      const TimeMs next = core.next_time();
      if (next < 0) {
        std::ostringstream os;
        os << "TestKit failure: simulation ran dry (no pending timed actions) while waiting"
           << " for\n  expected: " << what << "\n  at t=" << ctx_.now() << "ms";
        fail_ = os.str();
        return false;
      }
      if (next > deadline) {
        core.advance_to(deadline);
        std::ostringstream os;
        os << "TestKit failure: timeout after " << timeout << "ms (virtual) waiting for"
           << "\n  expected: " << what << "\n  observed: <no event>";
        fail_ = os.str();
        return false;
      }
      core.advance_one();
      core.count_execution();
      ++steps_used_;
    }
  }

  std::string budget_message(const std::string& what) const {
    std::ostringstream os;
    os << "TestKit failure: step budget exhausted (" << ctx_.step_budget_
       << " timed actions) — simulated protocol appears to livelock\n  while waiting for: "
       << what << "\n  " << ctx_.sim_.core().pending_summary();
    return os.str();
  }

  std::string describe_observed(const Observed& o) const {
    std::ostringstream os;
    os << event_type_name(*o.event) << " out@" << ctx_.port_name_of(o.half) << " at t=" << o.at
       << "ms";
    return os.str();
  }

  /// True when the stream head satisfies `spec` (port identity + type +
  /// predicate).
  bool head_matches(const ExpectSpec& spec) const {
    const Observed& o = ctx_.stream_.front();
    return o.half == spec.half && spec.matches(*o.event);
  }

  void consume_head(const ExpectSpec& spec, int stmt_index) {
    Observed o = std::move(ctx_.stream_.front());
    ctx_.stream_.pop_front();
    std::ostringstream note;
    note << "matched #" << stmt_index;
    ctx_.log_event(o.at, false, spec.port_name, event_type_name(*o.event), note.str());
    if (spec.capture) spec.capture(o.event);
  }

  // ---- statement execution ----------------------------------------------

  bool exec_expect(const Stmt& s) {
    if (!await_observation(timeout_of(s), s.expect.describe())) return false;
    if (!head_matches(s.expect)) {
      const Observed& o = ctx_.stream_.front();
      std::ostringstream os;
      os << "TestKit mismatch at statement #" << s.index << ":\n  expected: "
         << s.expect.describe() << "\n  observed: " << describe_observed(o);
      if (o.half == s.expect.half && s.expect.has_predicate &&
          s.expect.matches_type != nullptr && s.expect.matches_type(*o.event)) {
        os << "\n  (type matches; the predicate rejected the event)";
      }
      fail_ = os.str();
      ctx_.log_event(o.at, false, ctx_.port_name_of(o.half), event_type_name(*o.event),
                     "MISMATCH");
      return false;
    }
    consume_head(s.expect, s.index);
    return true;
  }

  bool exec_trigger(const Stmt& s) {
    EventPtr e = s.make_evt();
    ctx_.log_event(ctx_.now(), true, s.trigger_port, event_type_name(*e), "injected");
    s.trigger_half->trigger(e);
    return true;
  }

  bool exec_either(const Stmt& s) {
    const std::string what = either_heads(s);
    if (!await_observation(timeout_of(s), what)) return false;
    for (const auto& branch : s.branches) {
      if (head_matches(branch.front()->expect)) return exec_block(branch);
    }
    const Observed& o = ctx_.stream_.front();
    std::ostringstream os;
    os << "TestKit mismatch at statement #" << s.index << " (either):\n  expected one of:\n";
    for (const auto& branch : s.branches) {
      os << "    - " << branch.front()->expect.describe() << "\n";
    }
    os << "  observed: " << describe_observed(o);
    fail_ = os.str();
    ctx_.log_event(o.at, false, ctx_.port_name_of(o.half), event_type_name(*o.event),
                   "MISMATCH (either)");
    return false;
  }

  std::string either_heads(const Stmt& s) const {
    std::string what = "either of {";
    for (std::size_t i = 0; i < s.branches.size(); ++i) {
      if (i != 0) what += " | ";
      what += s.branches[i].front()->expect.describe();
    }
    return what + "}";
  }

  bool exec_unordered(const Stmt& s) {
    std::vector<const Stmt*> remaining;
    remaining.reserve(s.body.size());
    for (const StmtPtr& m : s.body) remaining.push_back(m.get());
    // One shared deadline for the whole set: resolution order is unknown, so
    // per-member deadlines would be meaningless.
    const TimeMs deadline = ctx_.now() + timeout_of(s);
    while (!remaining.empty()) {
      const DurationMs left = deadline - ctx_.now();
      if (!await_observation(left < 0 ? 0 : left, unordered_remaining(remaining))) return false;
      auto it = std::find_if(remaining.begin(), remaining.end(),
                             [this](const Stmt* m) { return head_matches(m->expect); });
      if (it == remaining.end()) {
        const Observed& o = ctx_.stream_.front();
        std::ostringstream os;
        os << "TestKit mismatch at statement #" << s.index
           << " (unordered):\n  expected (any order):\n";
        for (const Stmt* m : remaining) os << "    - " << m->expect.describe() << "\n";
        os << "  observed: " << describe_observed(o);
        fail_ = os.str();
        ctx_.log_event(o.at, false, ctx_.port_name_of(o.half), event_type_name(*o.event),
                       "MISMATCH (unordered)");
        return false;
      }
      consume_head((*it)->expect, (*it)->index);
      remaining.erase(it);
    }
    return true;
  }

  std::string unordered_remaining(const std::vector<const Stmt*>& remaining) const {
    std::string what = "unordered {";
    for (std::size_t i = 0; i < remaining.size(); ++i) {
      if (i != 0) what += ", ";
      what += remaining[i]->expect.describe();
    }
    return what + "}";
  }

  bool exec_settle(const Stmt& s) {
    auto& sim = ctx_.sim_;
    auto& core = sim.core();
    const TimeMs target = ctx_.now() + s.settle_ms;
    while (true) {
      sim.run_until(sim.now());
      if (!filter_stream()) return false;
      if (s.require_silence && !ctx_.stream_.empty()) {
        const Observed& o = ctx_.stream_.front();
        std::ostringstream os;
        os << "TestKit failure at statement #" << s.index << ": expected silence for "
           << s.settle_ms << "ms, but observed\n  " << describe_observed(o);
        fail_ = os.str();
        ctx_.log_event(o.at, false, ctx_.port_name_of(o.half), event_type_name(*o.event),
                       "SILENCE VIOLATED");
        return false;
      }
      if (steps_used_ >= ctx_.step_budget_) {
        fail_ = budget_message("settle/expect_silence window");
        return false;
      }
      const TimeMs next = core.next_time();
      if (next < 0 || next > target) {
        core.advance_to(target);
        sim.run_until(sim.now());
        if (!filter_stream()) return false;
        if (s.require_silence && !ctx_.stream_.empty()) continue;  // re-enter for the message
        return true;
      }
      core.advance_one();
      core.count_execution();
      ++steps_used_;
    }
  }

  TestContext& ctx_;
  std::string fail_;
  std::uint64_t steps_used_ = 0;
};

}  // namespace detail

// ---- TestContext --------------------------------------------------------

TestContext::TestContext(std::uint64_t seed, TestProbe::Build build, Config config)
    : sim_(std::move(config), seed), seed_(seed) {
  probe_c_ = sim_.bootstrap<TestProbe>(&sim_.core(), std::move(build));
  probe_ = &probe_c_.definition_as<TestProbe>();
  sim_.run_until(sim_.now());  // complete the start protocol at t=0
}

TestContext::~TestContext() = default;

PortHandle TestContext::monitor(PortCore* half, const std::string& name) {
  auto [it, inserted] = port_names_.emplace(half, name);
  if (inserted) {
    // Catch-all recorder: Event is the registry root, so every event the
    // CUT emits through this half enters the observed stream.
    probe_->subscribe<Event>(half, [this, half](const Event&) {
      stream_.push_back(detail::Observed{half, probe_->current_event(), sim_.now()});
    });
  }
  return PortHandle{half, it->second};
}

Component& TestContext::attach_sim_timer() {
  timer_ = probe_->make<sim::SimTimer>();
  probe_->trigger(make_event<sim::SimTimer::Init>(&sim_.core()), timer_.control());
  probe_->connect(timer_.provided<timing::Timer>(), cut().required<timing::Timer>());
  probe_->activate(timer_);
  sim_.run_until(sim_.now());
  return timer_;
}

std::string TestContext::port_name_of(PortCore* half) const {
  auto it = port_names_.find(half);
  return it != port_names_.end() ? it->second : "<unmonitored>";
}

TestContext& TestContext::push_expect(detail::ExpectSpec spec, DurationMs timeout) {
  auto s = std::make_unique<detail::Stmt>();
  s->kind = detail::Stmt::Kind::kExpect;
  s->expect = std::move(spec);
  s->timeout_override = timeout;
  return push(std::move(s));
}

TestContext& TestContext::trigger(const PortHandle& p, EventPtr e) {
  return trigger(p, [e = std::move(e)] { return e; });
}

TestContext& TestContext::trigger(const PortHandle& p, std::function<EventPtr()> factory) {
  auto s = std::make_unique<detail::Stmt>();
  s->kind = detail::Stmt::Kind::kTrigger;
  s->make_evt = std::move(factory);
  s->trigger_half = p.half;
  s->trigger_port = p.name;
  return push(std::move(s));
}

TestContext& TestContext::exec(std::function<void()> fn) {
  auto s = std::make_unique<detail::Stmt>();
  s->kind = detail::Stmt::Kind::kExec;
  s->exec = std::move(fn);
  return push(std::move(s));
}

TestContext& TestContext::settle(DurationMs ms) {
  auto s = std::make_unique<detail::Stmt>();
  s->kind = detail::Stmt::Kind::kSettle;
  s->settle_ms = ms;
  return push(std::move(s));
}

TestContext& TestContext::expect_silence(DurationMs ms) {
  auto s = std::make_unique<detail::Stmt>();
  s->kind = detail::Stmt::Kind::kSettle;
  s->settle_ms = ms;
  s->require_silence = true;
  return push(std::move(s));
}

TestContext& TestContext::repeat(std::size_t n) {
  auto s = std::make_unique<detail::Stmt>();
  s->kind = detail::Stmt::Kind::kRepeat;
  s->count = n;
  s->index = next_stmt_index_++;
  block_stack_.push_back(BuilderBlock{detail::Stmt::Kind::kRepeat, std::move(s)});
  return *this;
}

TestContext& TestContext::end_repeat() { return close_block(detail::Stmt::Kind::kRepeat, "repeat"); }

TestContext& TestContext::either() {
  auto s = std::make_unique<detail::Stmt>();
  s->kind = detail::Stmt::Kind::kEither;
  s->index = next_stmt_index_++;
  s->branches.emplace_back();
  block_stack_.push_back(BuilderBlock{detail::Stmt::Kind::kEither, std::move(s)});
  return *this;
}

TestContext& TestContext::or_else() {
  if (block_stack_.empty() || block_stack_.back().kind != detail::Stmt::Kind::kEither) {
    builder_error("or_else() outside an either() block");
    return *this;
  }
  detail::Stmt& s = *block_stack_.back().stmt;
  if (s.branches.back().empty()) {
    builder_error("either() branch is empty before or_else()");
    return *this;
  }
  s.branches.emplace_back();
  return *this;
}

TestContext& TestContext::end_either() {
  if (block_stack_.empty() || block_stack_.back().kind != detail::Stmt::Kind::kEither) {
    builder_error("end_either() without a matching either()");
    return *this;
  }
  detail::StmtPtr s = std::move(block_stack_.back().stmt);
  block_stack_.pop_back();
  for (const auto& branch : s->branches) {
    if (branch.empty() || branch.front()->kind != detail::Stmt::Kind::kExpect) {
      builder_error("every either() branch must start with an expect");
      return *this;
    }
  }
  auto* dest = open_block();
  if (dest != nullptr) dest->push_back(std::move(s));
  return *this;
}

TestContext& TestContext::unordered() {
  auto s = std::make_unique<detail::Stmt>();
  s->kind = detail::Stmt::Kind::kUnordered;
  s->index = next_stmt_index_++;
  block_stack_.push_back(BuilderBlock{detail::Stmt::Kind::kUnordered, std::move(s)});
  return *this;
}

TestContext& TestContext::end_unordered() {
  if (block_stack_.empty() || block_stack_.back().kind != detail::Stmt::Kind::kUnordered) {
    builder_error("end_unordered() without a matching unordered()");
    return *this;
  }
  for (const detail::StmtPtr& m : block_stack_.back().stmt->body) {
    if (m->kind != detail::Stmt::Kind::kExpect) {
      builder_error("unordered() blocks may contain only expect statements");
      return *this;
    }
  }
  return close_block(detail::Stmt::Kind::kUnordered, "unordered");
}

TestContext& TestContext::when(std::function<bool()> pred) {
  auto s = std::make_unique<detail::Stmt>();
  s->kind = detail::Stmt::Kind::kWhen;
  s->pred = std::move(pred);
  s->index = next_stmt_index_++;
  block_stack_.push_back(BuilderBlock{detail::Stmt::Kind::kWhen, std::move(s)});
  return *this;
}

TestContext& TestContext::end_when() { return close_block(detail::Stmt::Kind::kWhen, "when"); }

TestContext& TestContext::close_block(detail::Stmt::Kind kind, const char* what) {
  if (block_stack_.empty() || block_stack_.back().kind != kind) {
    builder_error(std::string("end_") + what + "() without a matching " + what + "()");
    return *this;
  }
  detail::StmtPtr s = std::move(block_stack_.back().stmt);
  block_stack_.pop_back();
  auto* dest = open_block();
  if (dest != nullptr) dest->push_back(std::move(s));
  return *this;
}

std::vector<detail::StmtPtr>* TestContext::open_block() {
  if (block_stack_.empty()) return &script_;
  BuilderBlock& top = block_stack_.back();
  if (top.kind == detail::Stmt::Kind::kEither) return &top.stmt->branches.back();
  return &top.stmt->body;
}

TestContext& TestContext::push(detail::StmtPtr s) {
  s->index = next_stmt_index_++;
  auto* dest = open_block();
  if (dest != nullptr) dest->push_back(std::move(s));
  return *this;
}

void TestContext::builder_error(const std::string& what) {
  if (build_error_.empty()) build_error_ = "TestKit script error: " + what;
}

Result TestContext::check() {
  Result r;
  if (!block_stack_.empty() && build_error_.empty()) {
    builder_error("check() with an unclosed block (missing end_repeat/end_either/"
                  "end_unordered/end_when)");
  }
  if (!build_error_.empty()) {
    r.ok = false;
    r.message = build_error_;
  } else {
    detail::Engine engine(*this);
    r = engine.run(script_);
  }
  // The script is one-shot either way; sim state and unconsumed stream
  // persist so a context can stage several build/check rounds.
  script_.clear();
  block_stack_.clear();
  build_error_.clear();
  next_stmt_index_ = 1;
  return r;
}

void TestContext::log_event(TimeMs at, bool injected, const std::string& port,
                            const std::string& type, std::string note) {
  log_.push_back(LogEntry{at, injected, port, type, std::move(note)});
  while (log_.size() > 64) log_.pop_front();
}

std::string TestContext::render_log_tail(std::size_t n) const {
  std::ostringstream os;
  os << "recent stream (oldest first):";
  if (log_.empty()) {
    os << " <empty>";
    return os.str();
  }
  const std::size_t start = log_.size() > n ? log_.size() - n : 0;
  if (start > 0) os << "\n  ... (" << start << " earlier entries)";
  for (std::size_t i = start; i < log_.size(); ++i) {
    const LogEntry& e = log_[i];
    os << "\n  [t=" << e.at << "ms] " << (e.injected ? "IN  " : "OUT ") << e.type << " @"
       << e.port;
    if (!e.note.empty()) os << "  (" << e.note << ")";
  }
  return os.str();
}

}  // namespace kompics::testkit
