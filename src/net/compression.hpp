#pragma once

// kz: a small from-scratch LZ77-family codec standing in for the Zlib
// compression stage of the paper's network components (§3). It exercises
// the same compress-on-send / decompress-on-receive code path; ratios are
// modest but correctness is exact (round-trip verified by property tests).
//
// Format: a stream of tokens.
//   literal run : 0x00 | var_u64 len      | len raw bytes
//   match       : 0x01 | var_u64 distance | var_u64 length   (length >= 4)
// The compressed stream is prefixed with var_u64 uncompressed size.

#include <cstdint>

#include "net/buffer.hpp"

namespace kompics::net::kz {

/// Compresses `in` into `out` (appended). Returns the compressed size.
std::size_t compress(const Bytes& in, Bytes& out);

/// Decompresses a stream produced by compress. Throws std::runtime_error on
/// malformed input.
Bytes decompress(const std::uint8_t* data, std::size_t size);
inline Bytes decompress(const Bytes& in) { return decompress(in.data(), in.size()); }

}  // namespace kompics::net::kz
