#pragma once

// Growable byte buffer with a writer/reader interface: the wire format
// substrate for message serialization (paper §3 — the Java implementation
// delegated to Kryo; we hand-roll the equivalent).
//
// Encoding: fixed-width little-endian for u8/u16/u32/u64, LEB128 varints
// (with zig-zag for signed), length-prefixed byte strings.

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

namespace kompics::net {

using Bytes = std::vector<std::uint8_t>;

class BufferWriter {
 public:
  explicit BufferWriter(Bytes& out) : out_(out) {}

  void u8(std::uint8_t v) { out_.push_back(v); }

  void u16(std::uint16_t v) {
    out_.push_back(static_cast<std::uint8_t>(v));
    out_.push_back(static_cast<std::uint8_t>(v >> 8));
  }

  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }

  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }

  /// LEB128 variable-length unsigned integer.
  void var_u64(std::uint64_t v) {
    while (v >= 0x80) {
      out_.push_back(static_cast<std::uint8_t>(v) | 0x80);
      v >>= 7;
    }
    out_.push_back(static_cast<std::uint8_t>(v));
  }

  /// Zig-zag + LEB128 signed integer.
  void var_i64(std::int64_t v) {
    var_u64((static_cast<std::uint64_t>(v) << 1) ^ static_cast<std::uint64_t>(v >> 63));
  }

  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
  }

  void boolean(bool v) { u8(v ? 1 : 0); }

  void bytes(const std::uint8_t* data, std::size_t n) {
    var_u64(n);
    out_.insert(out_.end(), data, data + n);
  }
  void bytes(const Bytes& b) { bytes(b.data(), b.size()); }

  void str(const std::string& s) {
    bytes(reinterpret_cast<const std::uint8_t*>(s.data()), s.size());
  }

  /// Raw append without length prefix (framing layers).
  void raw(const std::uint8_t* data, std::size_t n) { out_.insert(out_.end(), data, data + n); }

  std::size_t size() const { return out_.size(); }

  /// Patches a previously written u32 at `offset` (length back-fill).
  void patch_u32(std::size_t offset, std::uint32_t v) {
    if (offset + 4 > out_.size()) throw std::out_of_range("patch_u32 out of range");
    for (int i = 0; i < 4; ++i) out_[offset + i] = static_cast<std::uint8_t>(v >> (8 * i));
  }

 private:
  Bytes& out_;
};

class BufferReader {
 public:
  BufferReader(const std::uint8_t* data, std::size_t n) : data_(data), size_(n) {}
  explicit BufferReader(const Bytes& b) : BufferReader(b.data(), b.size()) {}

  std::uint8_t u8() {
    need(1);
    return data_[pos_++];
  }

  std::uint16_t u16() {
    need(2);
    std::uint16_t v = static_cast<std::uint16_t>(data_[pos_]) |
                      static_cast<std::uint16_t>(data_[pos_ + 1]) << 8;
    pos_ += 2;
    return v;
  }

  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(data_[pos_ + i]) << (8 * i);
    pos_ += 4;
    return v;
  }

  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
    pos_ += 8;
    return v;
  }

  std::uint64_t var_u64() {
    std::uint64_t v = 0;
    int shift = 0;
    while (true) {
      need(1);
      const std::uint8_t b = data_[pos_++];
      if (shift >= 64) throw std::runtime_error("varint overflow");
      v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
      if ((b & 0x80) == 0) break;
      shift += 7;
    }
    return v;
  }

  std::int64_t var_i64() {
    const std::uint64_t z = var_u64();
    return static_cast<std::int64_t>(z >> 1) ^ -static_cast<std::int64_t>(z & 1);
  }

  double f64() {
    const std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  bool boolean() { return u8() != 0; }

  Bytes bytes() {
    const std::uint64_t n = var_u64();
    need(n);
    Bytes b(data_ + pos_, data_ + pos_ + n);
    pos_ += n;
    return b;
  }

  std::string str() {
    const std::uint64_t n = var_u64();
    need(n);
    std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return s;
  }

  std::size_t remaining() const { return size_ - pos_; }
  std::size_t position() const { return pos_; }
  const std::uint8_t* cursor() const { return data_ + pos_; }
  void skip(std::size_t n) {
    need(n);
    pos_ += n;
  }

 private:
  void need(std::uint64_t n) const {
    if (pos_ + n > size_) throw std::runtime_error("buffer underflow");
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace kompics::net
