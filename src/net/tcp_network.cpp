#include "net/tcp_network.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "net/compression.hpp"
#include "net/serialization.hpp"

namespace kompics::net {

namespace {

constexpr std::uint8_t kFlagCompressed = 0x01;
constexpr std::size_t kMaxFrame = 64u << 20;  // 64 MiB sanity bound

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

void set_nodelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

TcpNetwork::TcpNetwork() {
  subscribe<Init>(control(), [this](const Init& init) { boot(init.self, init.options); });
  subscribe<Stop>(control(), [this](const Stop&) { shutdown_io(); });
  subscribe<Message>(network_, [this](const Message& m) { post_send(m); });
}

TcpNetwork::~TcpNetwork() { shutdown_io(); }

void TcpNetwork::boot(Address self, const Options& opts) {
  self_ = self;
  options_ = opts;

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw std::runtime_error("socket() failed");
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(self.host);
  addr.sin_port = htons(self.port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("bind() failed for " + self.to_string() + ": " +
                             std::strerror(errno));
  }
  if (::listen(listen_fd_, options_.listen_backlog) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("listen() failed");
  }
  set_nonblocking(listen_fd_);

  epoll_fd_ = ::epoll_create1(0);
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK);
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  ev.data.fd = wake_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);

  io_stop_.store(false);
  io_running_.store(true);
  io_thread_ = std::thread([this] { io_main(); });
}

void TcpNetwork::shutdown_io() {
  if (!io_running_.exchange(false)) return;
  io_stop_.store(true);
  wake_io();
  if (io_thread_.joinable()) io_thread_.join();
  for (auto& [fd, conn] : conns_) ::close(fd);
  conns_.clear();
  out_by_peer_.clear();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  listen_fd_ = wake_fd_ = epoll_fd_ = -1;
}

void TcpNetwork::wake_io() {
  if (wake_fd_ >= 0) {
    std::uint64_t one = 1;
    [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
  }
}

Bytes TcpNetwork::frame_message(const Message& m, bool* failed) {
  *failed = false;
  Bytes body;
  try {
    SerializationRegistry::instance().serialize(m, body);
  } catch (const std::exception& e) {
    *failed = true;
    trigger(make_event<SendFailed>(current_event_as<Message>(), e.what()), netctl_);
    return {};
  }
  std::uint8_t flags = 0;
  if (options_.compress && body.size() >= options_.compress_threshold) {
    Bytes packed;
    kz::compress(body, packed);
    if (packed.size() < body.size()) {
      body = std::move(packed);
      flags = kFlagCompressed;
    }
  }
  Bytes frame;
  frame.reserve(body.size() + 5);
  BufferWriter w(frame);
  w.u32(static_cast<std::uint32_t>(body.size() + 1));
  w.u8(flags);
  w.raw(body.data(), body.size());
  return frame;
}

void TcpNetwork::post_send(const Message& m) {
  if (!io_running_.load(std::memory_order_acquire)) {
    trigger(make_event<SendFailed>(current_event_as<Message>(), "network not started"), netctl_);
    return;
  }
  bool failed = false;
  Bytes frame = frame_message(m, &failed);
  if (failed) {
    std::lock_guard<std::mutex> g(counters_mu_);
    ++counters_.send_failures;
    return;
  }
  {
    std::lock_guard<std::mutex> g(out_mu_);
    pending_out_.emplace_back(m.destination(), std::move(frame));
  }
  wake_io();
}

// ---------------------------------------------------------------------------
// I/O thread
// ---------------------------------------------------------------------------

void TcpNetwork::io_main() {
  constexpr int kMaxEvents = 64;
  epoll_event events[kMaxEvents];
  while (!io_stop_.load(std::memory_order_acquire)) {
    const int n = ::epoll_wait(epoll_fd_, events, kMaxEvents, 100);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == listen_fd_) {
        io_handle_listener();
      } else if (fd == wake_fd_) {
        io_handle_wake();
      } else {
        io_handle_conn(fd, events[i].events);
      }
    }
  }
}

void TcpNetwork::io_handle_listener() {
  while (true) {
    sockaddr_in peer{};
    socklen_t len = sizeof(peer);
    const int fd = ::accept(listen_fd_, reinterpret_cast<sockaddr*>(&peer), &len);
    if (fd < 0) break;
    set_nonblocking(fd);
    set_nodelay(fd);
    Conn c;
    c.fd = fd;
    c.connected = true;
    conns_[fd] = std::move(c);
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
    conns_[fd].registered = true;
    std::lock_guard<std::mutex> g(counters_mu_);
    ++counters_.connections_accepted;
  }
}

void TcpNetwork::io_handle_wake() {
  std::uint64_t buf;
  while (::read(wake_fd_, &buf, sizeof(buf)) > 0) {
  }
  io_process_outgoing_queue();
}

void TcpNetwork::io_process_outgoing_queue() {
  std::vector<std::pair<Address, Bytes>> batch;
  {
    std::lock_guard<std::mutex> g(out_mu_);
    batch.swap(pending_out_);
  }
  for (auto& [dest, frame] : batch) {
    Conn& c = io_conn_for(dest);
    if (c.fd < 0) {
      trigger(make_event<SendFailed>(nullptr, "connect to " + dest.to_string() + " failed"),
              netctl_);
      std::lock_guard<std::mutex> g(counters_mu_);
      ++counters_.send_failures;
      continue;
    }
    c.outbox.push_back(std::move(frame));
    if (c.connected) io_flush_writes(c);
  }
}

TcpNetwork::Conn& TcpNetwork::io_conn_for(const Address& dest) {
  static Conn invalid;
  auto it = out_by_peer_.find(dest);
  if (it != out_by_peer_.end()) return conns_[it->second];

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    invalid = Conn{};
    return invalid;
  }
  set_nonblocking(fd);
  set_nodelay(fd);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(dest.host);
  addr.sin_port = htons(dest.port);
  const int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS) {
    ::close(fd);
    invalid = Conn{};
    return invalid;
  }
  Conn c;
  c.fd = fd;
  c.peer = dest;
  c.connected = (rc == 0);
  conns_[fd] = std::move(c);
  out_by_peer_[dest] = fd;
  epoll_event ev{};
  ev.events = EPOLLIN | EPOLLOUT;
  ev.data.fd = fd;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
  conns_[fd].registered = true;
  {
    std::lock_guard<std::mutex> g(counters_mu_);
    ++counters_.connections_opened;
  }
  return conns_[fd];
}

void TcpNetwork::io_handle_conn(int fd, std::uint32_t events) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  Conn& c = it->second;

  if ((events & (EPOLLERR | EPOLLHUP)) != 0) {
    io_close_conn(fd, "peer error/hangup");
    return;
  }
  if ((events & EPOLLOUT) != 0) {
    if (!c.connected) {
      int err = 0;
      socklen_t len = sizeof(err);
      ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len);
      if (err != 0) {
        io_close_conn(fd, "connect failed");
        return;
      }
      c.connected = true;
    }
    io_flush_writes(c);
    if (conns_.count(fd) == 0) return;  // closed during flush
  }
  if ((events & EPOLLIN) != 0) io_read(c);
}

void TcpNetwork::io_flush_writes(Conn& c) {
  while (!c.outbox.empty()) {
    const Bytes& front = c.outbox.front();
    const ssize_t n = ::send(c.fd, front.data() + c.out_offset, front.size() - c.out_offset,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      io_close_conn(c.fd, "send failed");
      return;
    }
    {
      std::lock_guard<std::mutex> g(counters_mu_);
      counters_.bytes_sent += static_cast<std::uint64_t>(n);
    }
    c.out_offset += static_cast<std::size_t>(n);
    if (c.out_offset == front.size()) {
      c.outbox.pop_front();
      c.out_offset = 0;
      std::lock_guard<std::mutex> g(counters_mu_);
      ++counters_.messages_sent;
    }
  }
  // Keep EPOLLOUT armed only while there is pending output.
  epoll_event ev{};
  ev.events = EPOLLIN | (c.outbox.empty() ? 0u : static_cast<std::uint32_t>(EPOLLOUT));
  ev.data.fd = c.fd;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, c.fd, &ev);
}

void TcpNetwork::io_read(Conn& c) {
  std::uint8_t buf[16 * 1024];
  while (true) {
    const ssize_t n = ::recv(c.fd, buf, sizeof(buf), 0);
    if (n == 0) {
      io_close_conn(c.fd, "peer closed");
      return;
    }
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      io_close_conn(c.fd, "recv failed");
      return;
    }
    {
      std::lock_guard<std::mutex> g(counters_mu_);
      counters_.bytes_received += static_cast<std::uint64_t>(n);
    }
    c.inbox.insert(c.inbox.end(), buf, buf + n);
    // Extract complete frames.
    std::size_t pos = 0;
    while (c.inbox.size() - pos >= 4) {
      BufferReader header(c.inbox.data() + pos, 4);
      const std::uint32_t frame_len = header.u32();
      if (frame_len == 0 || frame_len > kMaxFrame) {
        io_close_conn(c.fd, "bad frame length");
        return;
      }
      if (c.inbox.size() - pos - 4 < frame_len) break;
      const std::uint8_t* body = c.inbox.data() + pos + 4;
      try {
        const std::uint8_t flags = body[0];
        MessagePtr msg;
        if ((flags & kFlagCompressed) != 0) {
          const Bytes plain = kz::decompress(body + 1, frame_len - 1);
          msg = SerializationRegistry::instance().deserialize(plain);
        } else {
          BufferReader r(body + 1, frame_len - 1);
          msg = SerializationRegistry::instance().deserialize(r);
        }
        {
          std::lock_guard<std::mutex> g(counters_mu_);
          ++counters_.messages_received;
        }
        trigger(msg, network_);
      } catch (const std::exception& e) {
        io_close_conn(c.fd, "frame decode failed");
        return;
      }
      pos += 4 + frame_len;
    }
    if (pos > 0) c.inbox.erase(c.inbox.begin(), c.inbox.begin() + static_cast<long>(pos));
  }
}

void TcpNetwork::io_close_conn(int fd, const char* reason) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  const Conn& c = it->second;
  if (c.peer.valid()) {
    out_by_peer_.erase(c.peer);
    if (!c.outbox.empty()) {
      trigger(make_event<SendFailed>(nullptr, std::string(reason) + " (" +
                                                  std::to_string(c.outbox.size()) +
                                                  " frames dropped)"),
              netctl_);
    }
  }
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  ::close(fd);
  conns_.erase(it);
}

TcpNetwork::Counters TcpNetwork::counters() const {
  std::lock_guard<std::mutex> g(counters_mu_);
  return counters_;
}

}  // namespace kompics::net
