#pragma once

// TcpNetwork: a production Network provider over kernel TCP sockets — the
// from-scratch equivalent of the paper's pluggable NIO frameworks (Grizzly /
// Netty / MINA, §3). One epoll-driven I/O thread per component instance
// performs automatic connection management (connect-on-first-send, accept,
// teardown), length-prefixed framing, message serialization via the
// SerializationRegistry, and optional kz compression.
//
// Wire frame: [u32 length][u8 flags][body]; flags bit0 => body compressed.

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "kompics/component.hpp"
#include "kompics/kompics.hpp"
#include "net/address.hpp"
#include "net/network_port.hpp"

namespace kompics::net {

class TcpNetwork : public ComponentDefinition {
 public:
  struct Options {
    bool compress = false;
    std::size_t compress_threshold = 256;  ///< only compress bodies >= this
    int listen_backlog = 128;
  };

  struct Init : kompics::Init {
    explicit Init(Address self) : self(self) {}
    Init(Address self, Options opts) : self(self), options(opts) {}
    Address self;
    Options options{};
  };

  TcpNetwork();
  ~TcpNetwork() override;

  /// Joins the I/O thread so in-flight frames stop being delivered before
  /// the component tree around this network is torn down.
  void halt() override { shutdown_io(); }

  struct Counters {
    std::uint64_t messages_sent = 0;
    std::uint64_t messages_received = 0;
    std::uint64_t bytes_sent = 0;
    std::uint64_t bytes_received = 0;
    std::uint64_t connections_opened = 0;
    std::uint64_t connections_accepted = 0;
    std::uint64_t send_failures = 0;
  };
  Counters counters() const;
  Address self() const { return self_; }

 private:
  struct Conn {
    int fd = -1;
    bool connected = false;     // outgoing: connect() completed
    bool registered = false;    // in epoll set
    Address peer{};             // valid for outgoing connections
    std::deque<Bytes> outbox;   // frames awaiting write
    std::size_t out_offset = 0; // partial-write position in outbox.front()
    Bytes inbox;                // partial frame assembly
  };

  void boot(Address self, const Options& opts);
  void shutdown_io();
  void io_main();
  void wake_io();
  void post_send(const Message& m);
  Bytes frame_message(const Message& m, bool* failed);

  // I/O-thread-only helpers.
  void io_handle_listener();
  void io_handle_wake();
  void io_handle_conn(int fd, std::uint32_t events);
  void io_flush_writes(Conn& c);
  void io_read(Conn& c);
  void io_close_conn(int fd, const char* reason);
  Conn& io_conn_for(const Address& dest);
  void io_process_outgoing_queue();

  Negative<Network> network_ = provide<Network>();
  Negative<NetworkControl> netctl_ = provide<NetworkControl>();

  Address self_{};
  Options options_{};

  std::atomic<bool> io_running_{false};
  std::atomic<bool> io_stop_{false};
  std::thread io_thread_;
  int epoll_fd_ = -1;
  int listen_fd_ = -1;
  int wake_fd_ = -1;

  // Handler threads enqueue (dest, frame); the I/O thread drains.
  std::mutex out_mu_;
  std::vector<std::pair<Address, Bytes>> pending_out_;

  // I/O-thread-owned state.
  std::unordered_map<int, Conn> conns_;             // by fd
  std::unordered_map<Address, int> out_by_peer_;    // outgoing conns

  mutable std::mutex counters_mu_;
  Counters counters_;
};

}  // namespace kompics::net
