#pragma once

// Message serialization registry (paper §3: "each of these components
// implements automatic connection management, message serialization, and
// Zlib compression"; the Java implementation used Kryo — we hand-roll the
// equivalent).
//
// Each concrete Message subtype registers a numeric wire id plus encode /
// decode functions. The registry then turns any registered message into a
// self-describing byte string and back:
//
//   [var_u64 wire id][source address][destination address][payload...]
//
// Registration is usually done once at startup via the helper macro:
//
//   KOMPICS_REGISTER_MESSAGE(MyMsg, 17, encodeFn, decodeFn);

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <typeindex>
#include <unordered_map>

#include "net/address.hpp"
#include "net/buffer.hpp"
#include "net/network_port.hpp"

namespace kompics::net {

class SerializationRegistry {
 public:
  using Encode = std::function<void(const Message&, BufferWriter&)>;
  /// Decoders receive the already-parsed addresses plus the payload reader.
  using Decode = std::function<MessagePtr(BufferReader&, Address src, Address dst)>;

  static SerializationRegistry& instance() {
    static SerializationRegistry registry;
    return registry;
  }

  template <class T>
  void register_message(std::uint64_t wire_id, Encode encode, Decode decode) {
    static_assert(std::is_base_of_v<Message, T>, "T must derive from net::Message");
    std::lock_guard<std::mutex> g(mu_);
    if (by_id_.count(wire_id) != 0) {
      // Idempotent re-registration of the same type is fine (static init in
      // multiple translation units); clashing types on one id are a bug.
      if (id_by_type_.count(std::type_index(typeid(T))) != 0 &&
          id_by_type_.at(std::type_index(typeid(T))) == wire_id) {
        return;
      }
      throw std::logic_error("wire id already registered: " + std::to_string(wire_id));
    }
    by_id_[wire_id] = Entry{std::move(encode), std::move(decode)};
    id_by_type_[std::type_index(typeid(T))] = wire_id;
  }

  /// Serializes a registered message (dynamic type lookup).
  void serialize(const Message& m, Bytes& out) const {
    std::uint64_t id;
    const Entry* entry;
    {
      std::lock_guard<std::mutex> g(mu_);
      auto it = id_by_type_.find(std::type_index(typeid(m)));
      if (it == id_by_type_.end()) {
        throw std::logic_error(std::string("message type not registered: ") + typeid(m).name());
      }
      id = it->second;
      entry = &by_id_.at(id);
    }
    BufferWriter w(out);
    w.var_u64(id);
    m.source().write(w);
    m.destination().write(w);
    entry->encode(m, w);
  }

  MessagePtr deserialize(BufferReader& r) const {
    const std::uint64_t id = r.var_u64();
    const Entry* entry;
    {
      std::lock_guard<std::mutex> g(mu_);
      auto it = by_id_.find(id);
      if (it == by_id_.end()) {
        throw std::runtime_error("unknown wire id: " + std::to_string(id));
      }
      entry = &it->second;
    }
    const Address src = Address::read(r);
    const Address dst = Address::read(r);
    return entry->decode(r, src, dst);
  }

  MessagePtr deserialize(const Bytes& data) const {
    BufferReader r(data);
    return deserialize(r);
  }

  bool is_registered(const Message& m) const {
    std::lock_guard<std::mutex> g(mu_);
    return id_by_type_.count(std::type_index(typeid(m))) != 0;
  }

 private:
  struct Entry {
    Encode encode;
    Decode decode;
  };

  mutable std::mutex mu_;
  std::unordered_map<std::uint64_t, Entry> by_id_;
  std::unordered_map<std::type_index, std::uint64_t> id_by_type_;
};

/// Static-initialization helper: expands to a one-time registration.
#define KOMPICS_REGISTER_MESSAGE(Type, WireId, EncodeFn, DecodeFn)                       \
  namespace {                                                                            \
  const bool kompics_reg_##Type = [] {                                                   \
    ::kompics::net::SerializationRegistry::instance().register_message<Type>(           \
        (WireId), (EncodeFn), (DecodeFn));                                               \
    return true;                                                                         \
  }();                                                                                   \
  }

}  // namespace kompics::net
